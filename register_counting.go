package perfilter

import (
	"perfilter/internal/counting"
	"perfilter/internal/registry"
)

// The counting-Bloom extension serializes and decodes through the
// registry but is not part of the advised Kind space (no cost model, no
// sweep entry), so it registers as a wire-only format.
var _ = registry.Register(registry.Descriptor{
	Kind:      registry.NoKind,
	Name:      "counting",
	WireMagic: counting.WireMagic,
	Decode: func(data []byte) (registry.Filter, error) {
		f, err := counting.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &CountingBloomFilter{f}, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*CountingBloomFilter).f.MarshalBinary()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*CountingBloomFilter)
		return ok
	},
	Mutable: true,
})
