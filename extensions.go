package perfilter

import (
	"perfilter/internal/counting"
	"perfilter/internal/hashing"
	"perfilter/internal/scalable"
)

// This file hosts the extension surface beyond the paper's core filters:
// deletable and growable Bloom variants from the paper's related-work
// section (§7) and helpers for hashing wider keys down to the 32-bit key
// space the filters operate on. Serialization (what a distributed
// semi-join broadcast actually ships) lives in serialize.go.

// CountingBloomFilter is a blocked counting Bloom filter: a Bloom filter
// that supports deletion by keeping 4-bit saturating counters instead of
// bits (§7's classic alternative to cuckoo filters for delete-heavy
// workloads, at 4× the memory of the equivalent plain filter).
type CountingBloomFilter struct {
	f *counting.Filter
}

// NewCountingBloom returns a counting filter with nCounters counters and k
// hash functions. Precision matches a blocked Bloom filter of nCounters
// bits; memory is 4× that.
func NewCountingBloom(k uint32, nCounters uint64) (*CountingBloomFilter, error) {
	f, err := counting.New(counting.Params{K: k, Magic: true}, nCounters)
	if err != nil {
		return nil, err
	}
	return &CountingBloomFilter{f}, nil
}

// Insert implements Filter.
func (c *CountingBloomFilter) Insert(key Key) error { return c.f.Insert(key) }

// Contains implements Filter.
func (c *CountingBloomFilter) Contains(key Key) bool { return c.f.Contains(key) }

// ContainsBatch implements Filter.
func (c *CountingBloomFilter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return c.f.ContainsBatch(keys, sel)
}

// Delete decrements the key's counters. Only delete keys you inserted
// (the standard counting-filter contract).
func (c *CountingBloomFilter) Delete(key Key) bool { return c.f.Delete(key) }

// SizeBits implements Filter (true footprint, counters included).
func (c *CountingBloomFilter) SizeBits() uint64 { return c.f.SizeBits() }

// FPR implements Filter.
func (c *CountingBloomFilter) FPR(n uint64) float64 { return c.f.FPR(n) }

// Reset implements Filter.
func (c *CountingBloomFilter) Reset() { c.f.Reset() }

// String implements Filter.
func (c *CountingBloomFilter) String() string { return c.f.String() }

// StorageAligned reports whether the counter array is cache-line aligned.
func (c *CountingBloomFilter) StorageAligned() bool { return c.f.StorageAligned() }

// Overflowed reports increments lost to counter saturation (diagnostics).
func (c *CountingBloomFilter) Overflowed() uint64 { return c.f.Overflowed() }

// ScalableBloomFilter grows automatically when the key count is unknown in
// advance, keeping the compound false-positive rate under a target (§7's
// scalable Bloom filter, staged over cache-sectorized filters).
type ScalableBloomFilter struct {
	f *scalable.Filter
}

// NewScalableBloom returns a growable filter starting at initialCapacity
// keys with a compound FPR ceiling of targetFPR.
func NewScalableBloom(initialCapacity uint64, targetFPR float64) (*ScalableBloomFilter, error) {
	f, err := scalable.New(scalable.DefaultOptions(initialCapacity, targetFPR))
	if err != nil {
		return nil, err
	}
	return &ScalableBloomFilter{f}, nil
}

// Insert implements Filter; it grows the filter as needed.
func (s *ScalableBloomFilter) Insert(key Key) error { return s.f.Insert(key) }

// Contains implements Filter.
func (s *ScalableBloomFilter) Contains(key Key) bool { return s.f.Contains(key) }

// ContainsBatch implements Filter.
func (s *ScalableBloomFilter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return s.f.ContainsBatch(keys, sel)
}

// SizeBits implements Filter (sum over stages).
func (s *ScalableBloomFilter) SizeBits() uint64 { return s.f.SizeBits() }

// FPR implements Filter: the compound rate at the current fill (the n
// argument is ignored; the filter tracks its own counts).
func (s *ScalableBloomFilter) FPR(n uint64) float64 { return s.f.FPR(n) }

// Reset implements Filter.
func (s *ScalableBloomFilter) Reset() { s.f.Reset() }

// String implements Filter.
func (s *ScalableBloomFilter) String() string { return s.f.String() }

// StorageAligned reports whether every stage's storage is cache-line
// aligned.
func (s *ScalableBloomFilter) StorageAligned() bool { return s.f.StorageAligned() }

// Stages returns the current stage count.
func (s *ScalableBloomFilter) Stages() int { return s.f.Stages() }

// Count returns the inserted key count.
func (s *ScalableBloomFilter) Count() uint64 { return s.f.Count() }

var (
	_ Filter = (*CountingBloomFilter)(nil)
	_ Filter = (*ScalableBloomFilter)(nil)
)

// Hash64 folds a 64-bit key into the 32-bit key space the filters operate
// on, preserving entropy from both halves. Collisions at 32 bits are part
// of the filter's false-positive budget.
func Hash64(key uint64) Key {
	return hashing.Fold64(key * hashing.Golden64)
}

// HashString hashes an arbitrary byte string into the 32-bit key space
// (FNV-1a folded through the multiplicative finalizer).
func HashString(s string) Key {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Hash64(h)
}
