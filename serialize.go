package perfilter

import (
	"encoding/binary"
	"fmt"
	"math"

	"perfilter/internal/adaptive"
	"perfilter/internal/magic"
	"perfilter/internal/model"
	"perfilter/internal/registry"
	"perfilter/internal/sharded"
)

// Serialization turns any filter this package builds into a portable byte
// string and back — what a distributed semi-join broadcast ships to the
// probe nodes, and what the filter server persists across restarts. Every
// format is little-endian and self-describing: the first four bytes are a
// per-kind wire magic, so Unmarshal dispatches without external type
// information, and a round-tripped filter answers ContainsBatch
// byte-identically to the original.

// ShardedWireMagic is the first little-endian uint32 of a serialized
// sharded filter's envelope (per-kind payloads follow per shard). The
// value is assigned centrally in internal/magic alongside every other
// format's.
const ShardedWireMagic = magic.WireSharded // "pfLP"

// AdaptiveWireMagic is the first little-endian uint32 of a serialized
// adaptive filter: workload counters and the key log, wrapped around an
// inner sharded envelope. Persisting the log keeps restored filters fully
// migratable — without it a restored approximate filter has no replay
// source and kind changes would have to be refused. The value is assigned
// centrally in internal/magic alongside every other format's.
const AdaptiveWireMagic = magic.WireAdaptive // "pfLA"

const (
	adaptiveWireVersion = 1
	// adaptive envelope header: magic u32, version u8, flags u8 (bit0:
	// log complete, bit1: log present), reserved u16, tw f64, sigma f64,
	// bits-per-key budget f64, four workload counters u64, log length u64.
	adaptiveHeaderLen = 4 + 1 + 1 + 2 + 3*8 + 4*8 + 8

	shardedWireVersion = 1
	// envelope header: magic u32, version u8, kind u8, magic-flag u8,
	// reserved u8, seven u32 geometry fields, perShardBits u64, seq u64,
	// shard count u32.
	envHeaderLen = 8 + 7*4 + 8 + 8 + 4
	// per-shard record header: insert count u64, payload length u32.
	envShardLen = 8 + 4
)

// marshaler is the shape every serializable concrete filter exposes.
type marshaler interface {
	MarshalBinary() ([]byte, error)
}

// Marshal serializes a filter built by this package for network transfer
// or persistence (e.g. the semi-join broadcast, or the filter server's
// snapshots). Every kind serializes: blocked/register-blocked/sectorized
// Bloom (any blocked geometry), classic Bloom, counting Bloom, scalable
// Bloom, cuckoo (victim slot included), the exact set, and the Sharded
// concurrent wrapper (as an envelope of per-shard payloads). The encoder
// is the registered descriptor owning the filter's concrete type (see
// internal/registry and the register_<family>.go files).
func Marshal(f Filter) ([]byte, error) {
	if d := registry.Owner(f); d != nil && d.Marshal != nil {
		return d.Marshal(f)
	}
	return nil, fmt.Errorf("perfilter: %T does not serialize", f)
}

// Unmarshal reverses Marshal, reconstructing the filter with its type and
// parameters. The decoder is picked by the leading wire magic; decode
// failures surface the kind-specific error, wrapped with the magic that
// selected the decoder, so a corrupted payload always names the format it
// claimed to be. A sharded envelope yields a *Sharded (assert to
// ConcurrentFilter for the concurrent API).
func Unmarshal(data []byte) (Filter, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("perfilter: filter encoding truncated (%d bytes, no magic)", len(data))
	}
	magicWord := binary.LittleEndian.Uint32(data)
	d := registry.ByMagic(magicWord)
	if d == nil || d.Decode == nil {
		return nil, fmt.Errorf("perfilter: unrecognized filter encoding (magic %#08x)", magicWord)
	}
	f, err := d.Decode(data)
	if err != nil {
		// Tag the decoder failure with the dispatching magic: a corrupted
		// payload always names the format it claimed to be.
		return nil, fmt.Errorf("perfilter: decode magic %#08x: %w", magicWord, err)
	}
	return f, nil
}

// marshalEnvelope serializes the sharded wrapper: a header carrying the
// per-shard configuration (so rotation works after restore) followed by
// each shard's own wire payload. The wrapper lock pins perShard to the
// generation being snapshotted; the snapshot itself is taken under the
// rotation lock, each shard under its read lock.
func (s *Sharded) marshalEnvelope() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.s.Snapshot(func(inner sharded.Inner) ([]byte, error) {
		f, ok := inner.(Filter)
		if !ok {
			return nil, fmt.Errorf("perfilter: shard type %T does not serialize", inner)
		}
		return Marshal(f)
	})
	if err != nil {
		return nil, err
	}
	total := envHeaderLen
	for _, p := range snap.Payloads {
		total += envShardLen + len(p)
	}
	out := make([]byte, envHeaderLen, total)
	le := binary.LittleEndian
	le.PutUint32(out[0:], ShardedWireMagic)
	out[4] = shardedWireVersion
	out[5] = uint8(s.cfg.Kind)
	if s.cfg.Magic {
		out[6] = 1
	}
	le.PutUint32(out[8:], s.cfg.WordBits)
	le.PutUint32(out[12:], s.cfg.BlockBits)
	le.PutUint32(out[16:], s.cfg.SectorBits)
	le.PutUint32(out[20:], s.cfg.Groups)
	le.PutUint32(out[24:], s.cfg.K)
	le.PutUint32(out[28:], s.cfg.TagBits)
	le.PutUint32(out[32:], s.cfg.BucketSize)
	if s.cfg.Kind == Xor {
		// The xor family reuses the (otherwise unused) cuckoo slots: the
		// fingerprint width travels in the TagBits word and the fuse flag
		// in the formerly reserved byte, keeping the envelope layout (and
		// older snapshots) unchanged.
		le.PutUint32(out[28:], s.cfg.FingerprintBits)
		if s.cfg.Fuse {
			out[7] = 1
		}
	}
	le.PutUint64(out[36:], s.perShard)
	le.PutUint64(out[44:], snap.Seq)
	le.PutUint32(out[52:], uint32(len(snap.Payloads)))
	for i, p := range snap.Payloads {
		if uint64(len(p)) > math.MaxUint32 {
			return nil, fmt.Errorf("perfilter: shard %d payload (%d bytes) exceeds the envelope's 4 GiB record limit", i, len(p))
		}
		var hdr [envShardLen]byte
		le.PutUint64(hdr[0:], snap.Counts[i])
		le.PutUint32(hdr[8:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out, nil
}

// UnmarshalSharded reconstructs a sharded concurrent filter from a
// Marshal envelope, restoring the configuration, generation sequence and
// per-shard contents (probe results are byte-identical to the original's).
func UnmarshalSharded(data []byte) (*Sharded, error) {
	if len(data) < envHeaderLen {
		return nil, fmt.Errorf("perfilter: truncated sharded envelope")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != ShardedWireMagic {
		return nil, fmt.Errorf("perfilter: bad sharded envelope magic")
	}
	if data[4] != shardedWireVersion {
		return nil, fmt.Errorf("perfilter: unsupported sharded envelope version %d", data[4])
	}
	cfg := Config{
		Kind:       Kind(data[5]),
		Magic:      data[6] == 1,
		WordBits:   le.Uint32(data[8:]),
		BlockBits:  le.Uint32(data[12:]),
		SectorBits: le.Uint32(data[16:]),
		Groups:     le.Uint32(data[20:]),
		K:          le.Uint32(data[24:]),
		TagBits:    le.Uint32(data[28:]),
		BucketSize: le.Uint32(data[32:]),
	}
	if cfg.Kind == Xor {
		// Reverse the slot reuse of marshalEnvelope.
		cfg.FingerprintBits, cfg.TagBits = cfg.TagBits, 0
		cfg.Fuse = data[7] == 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("perfilter: sharded envelope config: %w", err)
	}
	perShard := le.Uint64(data[36:])
	if perShard == 0 {
		return nil, fmt.Errorf("perfilter: sharded envelope with zero per-shard bits")
	}
	seq := le.Uint64(data[44:])
	p := le.Uint32(data[52:])
	if p == 0 || p > sharded.MaxShards {
		return nil, fmt.Errorf("perfilter: sharded envelope shard count %d out of range", p)
	}
	snap := &sharded.Snapshot{
		Seq:      seq,
		Counts:   make([]uint64, p),
		Payloads: make([][]byte, p),
	}
	off := envHeaderLen
	for i := uint32(0); i < p; i++ {
		if len(data) < off+envShardLen {
			return nil, fmt.Errorf("perfilter: truncated shard %d record", i)
		}
		snap.Counts[i] = le.Uint64(data[off:])
		plen32 := le.Uint32(data[off+8:])
		off += envShardLen
		// Compare in uint64 so a crafted length cannot wrap int on 32-bit
		// platforms and slip past the bounds check into a slice panic;
		// after the check, plen fits an int on any platform.
		if uint64(len(data)-off) < uint64(plen32) {
			return nil, fmt.Errorf("perfilter: truncated shard %d payload", i)
		}
		plen := int(plen32)
		snap.Payloads[i] = data[off : off+plen]
		off += plen
	}
	if off != len(data) {
		return nil, fmt.Errorf("perfilter: %d trailing bytes after sharded envelope", len(data)-off)
	}
	sh := &Sharded{cfg: cfg}
	sh.perShard = perShard
	s, err := sharded.Restore(snap, func(payload []byte) (sharded.Inner, error) {
		f, err := Unmarshal(payload)
		if err != nil {
			return nil, err
		}
		// The payload's own magic picked the decoder; it must agree with
		// the envelope's declared kind (a mismatch means a stitched or
		// corrupted envelope).
		d := registry.Lookup(model.Kind(cfg.Kind))
		if d == nil || d.Owns == nil || !d.Owns(f) {
			return nil, fmt.Errorf("perfilter: shard payload type %T does not match envelope kind %s", f, cfg.Kind)
		}
		return f, nil
	}, sh.factory(perShard))
	if err != nil {
		return nil, err
	}
	sh.s = s
	return sh, nil
}

// marshalAdaptive serializes the adaptive wrapper: the configured workload
// hints, the tracked counters, the key log and the inner sharded envelope.
// The inner envelope is captured first and the log after it, so the log is
// always a superset of the envelope's keys (a writer appends to the log
// before inserting) and the restored pair keeps the migration guarantee.
func (a *Adaptive) marshalAdaptive() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	inner, err := a.s.marshalEnvelope()
	if err != nil {
		return nil, err
	}
	var keys []Key
	flags := uint8(0)
	if log := a.log.Load(); log != nil {
		flags |= 2
		if a.logComplete.Load() {
			flags |= 1
		}
		keys = log.Snapshot().Keys()
	}
	c := a.stats.Snapshot()
	w := a.opts.Workload
	out := make([]byte, adaptiveHeaderLen, adaptiveHeaderLen+4*len(keys)+len(inner))
	le := binary.LittleEndian
	le.PutUint32(out[0:], AdaptiveWireMagic)
	out[4] = adaptiveWireVersion
	out[5] = flags
	le.PutUint64(out[8:], math.Float64bits(w.Tw))
	le.PutUint64(out[16:], math.Float64bits(w.Sigma))
	le.PutUint64(out[24:], math.Float64bits(w.BitsPerKeyBudget))
	le.PutUint64(out[32:], c.Inserts)
	le.PutUint64(out[40:], c.Probes)
	le.PutUint64(out[48:], c.Positives)
	le.PutUint64(out[56:], c.Batches)
	le.PutUint64(out[64:], uint64(len(keys)))
	for _, k := range keys {
		out = le.AppendUint32(out, k)
	}
	return append(out, inner...), nil
}

// UnmarshalAdaptive reconstructs an adaptive filter from a Marshal
// envelope: the inner sharded filter (probe results byte-identical to the
// original's), the workload counters, and the key log, so the restored
// filter can keep migrating losslessly. opts supplies the runtime pieces
// that are not persisted (policy, tuner interval, decision history depth);
// zero workload fields fall back to the persisted ones.
func UnmarshalAdaptive(data []byte, opts AdaptiveOptions) (*Adaptive, error) {
	if len(data) < adaptiveHeaderLen {
		return nil, fmt.Errorf("perfilter: truncated adaptive envelope")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != AdaptiveWireMagic {
		return nil, fmt.Errorf("perfilter: bad adaptive envelope magic")
	}
	if data[4] != adaptiveWireVersion {
		return nil, fmt.Errorf("perfilter: unsupported adaptive envelope version %d", data[4])
	}
	flags := data[5]
	tw := math.Float64frombits(le.Uint64(data[8:]))
	sigma := math.Float64frombits(le.Uint64(data[16:]))
	budget := math.Float64frombits(le.Uint64(data[24:]))
	counters := adaptive.Counters{
		Inserts:   le.Uint64(data[32:]),
		Probes:    le.Uint64(data[40:]),
		Positives: le.Uint64(data[48:]),
		Batches:   le.Uint64(data[56:]),
	}
	logLen := le.Uint64(data[64:])
	rest := data[adaptiveHeaderLen:]
	if uint64(len(rest))/4 < logLen {
		return nil, fmt.Errorf("perfilter: truncated adaptive key log (%d of %d keys)", len(rest)/4, logLen)
	}
	keys := make([]Key, logLen)
	for i := range keys {
		keys[i] = le.Uint32(rest[4*i:])
	}
	inner, err := UnmarshalSharded(rest[4*logLen:])
	if err != nil {
		return nil, err
	}
	if opts.Workload.Tw == 0 {
		opts.Workload.Tw = tw
	}
	if opts.Workload.Sigma == 0 {
		opts.Workload.Sigma = sigma
	}
	if opts.Workload.BitsPerKeyBudget == 0 {
		opts.Workload.BitsPerKeyBudget = budget
	}
	hadLog := flags&2 != 0
	complete := flags&1 != 0
	// A restored filter whose snapshot carried no log (or an incomplete
	// one) gets a fresh, incomplete log: it can track and advise but not
	// migrate until Reset.
	a := newAdaptive(inner, opts, hadLog && complete)
	if log := a.log.Load(); log != nil && hadLog {
		log.AppendBatch(keys)
	}
	a.stats.Restore(counters)
	return a, nil
}
