package perfilter

import (
	"perfilter/internal/bloom"
	"perfilter/internal/model"
	"perfilter/internal/registry"
)

// The classic (unblocked) Bloom baseline; the k=7 default matches the
// common 10-bits/key deployment.
var _ = registry.Register(registry.Descriptor{
	Kind:      model.KindClassicBloom,
	Name:      "classic",
	WireMagic: bloom.WireMagic,
	Default: model.Config{Kind: model.KindClassicBloom, Classic: bloom.Params{
		K: 7, Magic: true,
	}},
	New: func(mc model.Config, mBits uint64) (registry.Filter, error) {
		f, err := bloom.New(mc.Classic, mBits)
		if err != nil {
			return nil, err
		}
		return &classicAdapter{f}, nil
	},
	Decode: func(data []byte) (registry.Filter, error) {
		f, err := bloom.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &classicAdapter{f}, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*classicAdapter).f.MarshalBinary()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*classicAdapter)
		return ok
	},
	Mutable: true,
})
