package perfilter

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

// The golden equivalence suite pins observable behaviour across the
// kind-descriptor refactor: the exact serialized bytes of every wire
// format, the advisor's answers over a workload grid, and the adaptive
// control loop's migration verdicts. The expectations below were captured
// from the pre-registry dispatch code (hand-written switches in
// perfilter.go, serialize.go, internal/model and internal/server); any
// drift means the registry changed behaviour, not just structure.
//
// Everything pinned here is deterministic: the filters use fixed hash
// constants (no seeding), cuckoo eviction walks are derived from the
// victim tag, and xor/fuse peeling retries seeds in a fixed sequence.

// goldenKeys returns n deterministic pseudo-random keys (xorshift32,
// fixed seed) — stable across platforms and Go versions.
func goldenKeys(n int) []Key {
	keys := make([]Key, n)
	s := uint32(0x9E3779B9)
	for i := range keys {
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		keys[i] = s
	}
	return keys
}

// goldenDigest marshals f and returns len(bytes):sha256hex.
func goldenDigest(t *testing.T, f Filter) string {
	t.Helper()
	b, err := Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%d:%s", len(b), hex.EncodeToString(sum[:8]))
}

// goldenFilters builds one deterministic instance of every serializable
// shape: each model kind standalone, the extension families, a sharded
// envelope per kind, and an adaptive envelope.
func goldenFilters(t *testing.T) []struct {
	name string
	f    Filter
} {
	t.Helper()
	keys := goldenKeys(1000)
	mk := func(cfg Config, mBits uint64) Filter {
		f, err := New(cfg, mBits)
		if err != nil {
			t.Fatalf("New(%v): %v", cfg, err)
		}
		for _, k := range keys {
			if err := f.Insert(k); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		return f
	}
	var out []struct {
		name string
		f    Filter
	}
	add := func(name string, f Filter) {
		out = append(out, struct {
			name string
			f    Filter
		}{name, f})
	}

	add("blocked", mk(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}, 1<<16))
	add("register-blocked", mk(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 64,
		SectorBits: 64, Groups: 1, K: 4, Magic: false}, 1<<16))
	add("classic", mk(Config{Kind: ClassicBloom, K: 7, Magic: true}, 1<<16))
	add("cuckoo", mk(Config{Kind: Cuckoo, TagBits: 16, BucketSize: 2, Magic: true},
		CuckooSizeForKeys(16, 2, 1000)))
	add("exact", mk(Config{Kind: Exact}, 1000))

	xf, err := BuildXor(keys, 8, false)
	if err != nil {
		t.Fatalf("BuildXor: %v", err)
	}
	add("xor8", xf)
	ff, err := BuildXor(keys, 16, true)
	if err != nil {
		t.Fatalf("BuildXor fuse: %v", err)
	}
	add("fuse16", ff)

	// An unsealed xor filter (buffered keys) exercises the pending-phase
	// wire format.
	uf, err := New(Config{Kind: Xor, FingerprintBits: 8}, 1<<14)
	if err != nil {
		t.Fatalf("New xor: %v", err)
	}
	for _, k := range keys[:100] {
		_ = uf.Insert(k)
	}
	add("xor8-unsealed", uf)

	cb, err := NewCountingBloom(4, 1<<12)
	if err != nil {
		t.Fatalf("NewCountingBloom: %v", err)
	}
	for _, k := range keys {
		_ = cb.Insert(k)
	}
	add("counting", cb)

	sb, err := NewScalableBloom(256, 0.01)
	if err != nil {
		t.Fatalf("NewScalableBloom: %v", err)
	}
	for _, k := range keys {
		_ = sb.Insert(k)
	}
	add("scalable", sb)

	// Sharded envelopes: one per kind, fixed 4 shards.
	shardCfgs := []struct {
		name string
		cfg  Config
	}{
		{"sharded-blocked", Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
			SectorBits: 64, Groups: 2, K: 8, Magic: true}},
		{"sharded-classic", Config{Kind: ClassicBloom, K: 7, Magic: true}},
		{"sharded-cuckoo", Config{Kind: Cuckoo, TagBits: 16, BucketSize: 2, Magic: true}},
		{"sharded-exact", Config{Kind: Exact}},
		{"sharded-fuse8", Config{Kind: Xor, FingerprintBits: 8, Fuse: true}},
	}
	for _, sc := range shardCfgs {
		s, err := NewSharded(sc.cfg, 1<<18, 4)
		if err != nil {
			t.Fatalf("NewSharded(%s): %v", sc.name, err)
		}
		if _, err := s.InsertBatch(keys); err != nil {
			t.Fatalf("InsertBatch(%s): %v", sc.name, err)
		}
		add(sc.name, s)
	}

	// Adaptive envelope: counters + key log + inner sharded envelope.
	a, err := NewAdaptive(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}, 1<<18,
		AdaptiveOptions{Workload: Workload{Tw: 1024, Sigma: 0.125,
			BitsPerKeyBudget: 16, Platform: PlatformSKX}, Shards: 4})
	if err != nil {
		t.Fatalf("NewAdaptive: %v", err)
	}
	if _, err := a.InsertBatch(keys); err != nil {
		t.Fatalf("adaptive InsertBatch: %v", err)
	}
	a.ContainsBatch(keys[:512], nil)
	add("adaptive", a)
	return out
}

// goldenEnvelopes holds the pinned wire digests ("len:sha256prefix"),
// captured pre-refactor. See TestGoldenCapture to regenerate.
var goldenEnvelopes = map[string]string{
	"blocked":          "8222:22e26a22aca31164",
	"register-blocked": "8222:e6da436eccda5799",
	"classic":          "8206:a1ad4dc6c283656f",
	"cuckoo":           "2427:1da721560a4e22d3",
	"exact":            "16400:20cfd0ac2352bf5d",
	"xor8":             "1319:a90ec6c06c148d49",
	"fuse16":           "2872:69d17c67a77bf8ea",
	"xor8-unsealed":    "456:323b75edbb0c7576",
	"counting":         "2078:c828cc5a5d046016",
	"scalable":         "3802:4421f6d8dbc8c432",
	"sharded-blocked":  "32992:57f89df1a7f171e8",
	"sharded-classic":  "32928:f932839a46a49d32",
	"sharded-cuckoo":   "33044:4ece7649219d1391",
	"sharded-exact":    "65704:7781e385ce24f545",
	"sharded-fuse8":    "4328:a790110bdc576c86",
	"adaptive":         "37064:339e2dae7b2ef836",
}

// TestGoldenEnvelopes pins the serialized bytes of every wire format, and
// checks each round-trips through Unmarshal with identical probe results.
func TestGoldenEnvelopes(t *testing.T) {
	for _, g := range goldenFilters(t) {
		got := goldenDigest(t, g.f)
		want, ok := goldenEnvelopes[g.name]
		if !ok {
			t.Errorf("%s: no pinned digest", g.name)
			continue
		}
		if got != want {
			t.Errorf("%s: envelope digest %s, pinned %s (serialized bytes changed)", g.name, got, want)
		}
		b, err := Marshal(g.f)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", g.name, err)
		}
		rt, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", g.name, err)
		}
		probes := goldenKeys(4000)
		if got, want := rt.ContainsBatch(probes, nil), g.f.ContainsBatch(probes, nil); !equalSel(got, want) {
			t.Errorf("%s: round-tripped probe results differ", g.name)
		}
	}
}

func equalSel(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// goldenWorkloads is the advisory grid: problem sizes and work savings
// spanning the skyline's regions, crossed with the hint flags that gate
// family enumeration.
func goldenWorkloads() []Workload {
	var out []Workload
	for _, n := range []uint64{1 << 14, 1 << 20, 1 << 26} {
		for _, tw := range []float64{16, 1024, 1 << 16} {
			for _, h := range []struct{ full, exact, ro bool }{
				{false, false, false},
				{false, false, true},
				{true, true, true},
			} {
				out = append(out, Workload{
					N: n, Tw: tw, Sigma: 0.1, BitsPerKeyBudget: 16,
					Platform: PlatformSKX, FullSpace: h.full,
					AllowExact: h.exact, ReadMostly: h.ro,
				})
			}
		}
	}
	// A 20 bits/key budget admits the fuse16 layout (≈18.1 bits/key), so
	// these two pin the xor family's win region and its rebuild surcharge.
	for _, tw := range []float64{1024, 1 << 16} {
		out = append(out, Workload{
			N: 1 << 20, Tw: tw, Sigma: 0.1, BitsPerKeyBudget: 20,
			Platform: PlatformSKX, ReadMostly: true,
		})
	}
	return out
}

func adviseLine(a Advice, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	return fmt.Sprintf("%s m=%d f=%.3e tl=%.4f rho=%.4f ben=%v",
		a.Config, a.MBits, a.FPR, a.LookupCycles, a.Overhead, a.Beneficial)
}

// goldenAdvise holds the pinned Advise answers for goldenWorkloads, in
// order, captured pre-refactor on the SKX preset (host-independent).
var goldenAdvise = []string{
	"bloom/sectorized[B=64,S=32,k=4,pow2] m=262144 f=5.282e-03 tl=1.8275 rho=1.9120 ben=true",
	"bloom/sectorized[B=64,S=32,k=4,pow2] m=262144 f=5.282e-03 tl=1.8275 rho=1.9120 ben=true",
	"bloom/cache-sectorized[B=128,S=8,z=4,k=4,pow2] m=262144 f=3.682e-03 tl=1.4138 rho=1.4727 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] m=262144 f=1.006e-03 tl=2.1625 rho=3.1923 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] m=262144 f=1.006e-03 tl=2.1625 rho=3.1923 ben=true",
	"bloom/cache-sectorized[B=512,S=8,z=8,k=8,pow2] m=262144 f=8.678e-04 tl=1.5813 rho=2.4699 ben=true",
	"cuckoo[l=12,b=2,magic] m=262152 f=7.322e-04 tl=2.6963 rho=50.6832 ben=true",
	"cuckoo[l=12,b=2,magic] m=262152 f=7.322e-04 tl=2.6963 rho=50.6832 ben=true",
	"exact[robin-hood] m=2097152 f=0.000e+00 tl=8.3562 rho=8.3562 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=2,k=4,pow2] m=8388608 f=2.742e-02 tl=3.3256 rho=3.7644 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=2,k=4,pow2] m=8388608 f=2.742e-02 tl=3.3256 rho=3.7644 ben=true",
	"bloom/cache-sectorized[B=512,S=8,z=4,k=4,pow2] m=8388608 f=2.501e-02 tl=2.8969 rho=3.2970 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] m=16777216 f=1.006e-03 tl=6.6391 rho=7.6689 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] m=16777216 f=1.006e-03 tl=6.6391 rho=7.6689 ben=true",
	"bloom/cache-sectorized[B=512,S=8,z=8,k=8,pow2] m=16777216 f=8.678e-04 tl=6.0578 rho=6.9464 ben=true",
	"cuckoo[l=12,b=2,magic] m=16777368 f=7.322e-04 tl=11.6494 rho=59.6373 ben=true",
	"cuckoo[l=12,b=2,magic] m=16777368 f=7.322e-04 tl=11.6494 rho=59.6373 ben=true",
	"exact[robin-hood] m=134217728 f=0.000e+00 tl=21.1087 rho=21.1087 ben=true",
	"bloom/cache-sectorized[B=256,S=32,z=2,k=2,pow2] m=268435456 f=1.553e-01 tl=27.0935 rho=29.5787 ben=false",
	"bloom/cache-sectorized[B=256,S=32,z=2,k=2,pow2] m=268435456 f=1.553e-01 tl=27.0935 rho=29.5787 ben=false",
	"bloom/cache-sectorized[B=256,S=16,z=2,k=2,pow2] m=268435456 f=1.553e-01 tl=26.7023 rho=29.1875 ben=false",
	"bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] m=1073741824 f=1.006e-03 tl=38.1153 rho=39.1451 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] m=1073741824 f=1.006e-03 tl=38.1153 rho=39.1451 ben=true",
	"bloom/cache-sectorized[B=512,S=8,z=8,k=8,pow2] m=1073741824 f=8.678e-04 tl=37.5340 rho=38.4226 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=8,k=8,pow2] m=1073741824 f=8.678e-04 tl=38.3653 rho=95.2378 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=8,k=8,pow2] m=1073741824 f=8.678e-04 tl=38.3653 rho=95.2378 ben=true",
	"exact[robin-hood] m=8589934592 f=0.000e+00 tl=57.4236 rho=57.4236 ben=true",
	"bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] m=16777216 f=1.006e-03 tl=6.6391 rho=7.6689 ben=true",
	"fuse16 m=18874880 f=1.526e-05 tl=11.5839 rho=12.5862 ben=true",
}

// TestGoldenAdvise pins the advisor's output over the workload grid.
func TestGoldenAdvise(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping advisory sweep goldens in -short mode")
	}
	ws := goldenWorkloads()
	if len(goldenAdvise) != len(ws) {
		t.Fatalf("pinned %d advise lines for %d workloads", len(goldenAdvise), len(ws))
	}
	for i, w := range ws {
		got := adviseLine(Advise(w))
		if got != goldenAdvise[i] {
			t.Errorf("workload %d (%+v):\n got %s\nwant %s", i, w, got, goldenAdvise[i])
		}
	}
}

// goldenDecisions pins the adaptive control loop's verdicts for two
// synthetic histories: a write-heavy cuckoo filter that should stay put,
// and a read-only xor filter that must migrate once writes resume.
var goldenDecisions = []string{
	`cur=bloom/cache-sectorized[B=512,S=64,z=2,k=8,magic] best=bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] kindChange=false migrate=false reason="improvement -34.0% below margin 15.0%"`,
	`cur=bloom/cache-sectorized[B=512,S=64,z=2,k=8,magic] best=bloom/sectorized[B=64,S=32,k=4,pow2] kindChange=false migrate=true reason="improvement 19.7% clears margin 15.0%"`,
	`cur=fuse8 best=bloom/cache-sectorized[B=512,S=32,z=4,k=8,pow2] kindChange=true migrate=true reason="improvement 47.7% clears margin 15.0%"`,
}

func decisionLine(adv AdaptiveAdvice, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	return fmt.Sprintf("cur=%s best=%s kindChange=%v migrate=%v reason=%q",
		adv.Current.Config, adv.Best.Config, adv.KindChange, adv.WouldMigrate, adv.Reason)
}

// TestGoldenMigrationDecisions pins the control loop's migration verdicts.
func TestGoldenMigrationDecisions(t *testing.T) {
	keys := goldenKeys(4096)
	var got []string

	// Scenario 1: blocked-Bloom filter under a tracked mixed workload —
	// the verdict and its reason are functions of the counters only.
	a, err := NewAdaptive(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}, 1<<18,
		AdaptiveOptions{Workload: Workload{Tw: 1024, Sigma: 0.125,
			BitsPerKeyBudget: 16, Platform: PlatformSKX}, Shards: 4})
	if err != nil {
		t.Fatalf("NewAdaptive: %v", err)
	}
	if _, err := a.InsertBatch(keys); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	for i := 0; i < 8; i++ {
		a.ContainsBatch(keys, nil)
	}
	got = append(got, decisionLine(a.Advice()))
	// The same history at a tiny tw must flip the recommendation toward
	// the cheapest-lookup family.
	got = append(got, decisionLine(a.AdviceTw(16)))

	// Scenario 2: an xor filter whose window shows writes resumed — the
	// immutable-family override must force a migration verdict.
	x, err := NewAdaptive(Config{Kind: Xor, FingerprintBits: 8, Fuse: true}, 1<<18,
		AdaptiveOptions{Workload: Workload{Tw: 1024, Sigma: 0.125,
			BitsPerKeyBudget: 16, Platform: PlatformSKX}, Shards: 4})
	if err != nil {
		t.Fatalf("NewAdaptive xor: %v", err)
	}
	if _, err := x.InsertBatch(keys); err != nil {
		t.Fatalf("InsertBatch xor: %v", err)
	}
	x.ContainsBatch(keys, nil)
	got = append(got, decisionLine(x.Advice()))

	if len(goldenDecisions) != len(got) {
		t.Fatalf("pinned %d decision lines, computed %d:\n%s",
			len(goldenDecisions), len(got), strings.Join(got, "\n"))
	}
	for i := range got {
		if got[i] != goldenDecisions[i] {
			t.Errorf("decision %d:\n got %s\nwant %s", i, got[i], goldenDecisions[i])
		}
	}
}

// TestGoldenCapture prints the current values in pinnable form; run with
//
//	go test -run TestGoldenCapture -v
//
// and paste the output over the golden tables above when intentionally
// changing a wire format or the cost model.
func TestGoldenCapture(t *testing.T) {
	for _, g := range goldenFilters(t) {
		t.Logf("envelope %q: %q,", g.name, goldenDigest(t, g.f))
	}
	for _, w := range goldenWorkloads() {
		t.Logf("advise %q,", adviseLine(Advise(w)))
	}
}
