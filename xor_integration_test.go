package perfilter

import (
	"bytes"
	"strings"
	"testing"
)

// TestAdviseReadMostlyGatesXor: the immutable family must be enumerable
// exactly when the workload declares itself read-mostly. At a high-tw,
// large-n point (deep inside the skyline's X region) the advisor must
// pick it — and must never pick it for the same workload without the
// declaration.
func TestAdviseReadMostlyGatesXor(t *testing.T) {
	w := Workload{N: 1 << 20, Tw: 1 << 20, Sigma: 0.01, BitsPerKeyBudget: 20, Platform: PlatformSKX}
	mutable, err := Advise(w)
	if err != nil {
		t.Fatal(err)
	}
	if mutable.Config.Kind == Xor {
		t.Fatalf("advisor picked the immutable family without the read-mostly declaration: %s", mutable.Config)
	}
	w.ReadMostly = true
	adv, err := Advise(w)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Config.Kind != Xor {
		t.Fatalf("read-mostly advisor picked %s at tw=2^20, want the xor family", adv.Config)
	}
	if adv.Overhead >= mutable.Overhead {
		t.Fatalf("xor pick does not improve ρ: %.3f vs mutable %.3f", adv.Overhead, mutable.Overhead)
	}
	bpk := float64(adv.MBits) / float64(w.N)
	if bpk < 4 || bpk > 20.01 {
		t.Fatalf("advised xor size %.2f bits/key outside the budget", bpk)
	}
	// The advised configuration must actually construct and hold keys.
	f, err := New(adv.Config, adv.MBits)
	if err != nil {
		t.Fatal(err)
	}
	x := f.(*XorFilter)
	for k := Key(0); k < 10_000; k++ {
		if err := x.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Seal(); err != nil {
		t.Fatal(err)
	}
	for k := Key(0); k < 10_000; k++ {
		if !x.Contains(k) {
			t.Fatal("false negative after advised build")
		}
	}
	// At a tiny tw the rebuild surcharge must price the family out even
	// for a read-mostly workload.
	w.Tw = 16
	small, err := Advise(w)
	if err != nil {
		t.Fatal(err)
	}
	if small.Config.Kind == Xor {
		t.Fatal("xor advised at tw=16; the rebuild surcharge is not priced in")
	}
}

// TestEvaluateOverheadXorSurcharge: pricing a deployed xor configuration
// must include the rebuild surcharge, so current-vs-best comparisons in
// the control loop are apples to apples with Advise's candidates.
func TestEvaluateOverheadXorSurcharge(t *testing.T) {
	w := Workload{N: 1 << 16, Tw: 1 << 10, Platform: PlatformSKX}
	cfg := Config{Kind: Xor, FingerprintBits: 8}
	adv, err := EvaluateOverhead(w, cfg, 10*(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	base := adv.LookupCycles + adv.FPR*w.Tw
	if adv.Overhead <= base {
		t.Fatalf("overhead %.4f does not exceed tl + f·tw = %.4f (no surcharge)", adv.Overhead, base)
	}
}

// TestShardedXorRotationSealsAndRoundTrips covers the sharded lifecycle
// of the build-once family: a rotation's fill populates staged shards,
// the rotation seals them, probes then run the O(1) table test, and the
// sharded envelope round-trips byte-identically.
func TestShardedXorRotationSealsAndRoundTrips(t *testing.T) {
	const n = 50_000
	cfg := Config{Kind: Xor, FingerprintBits: 8, Fuse: true}
	s, err := NewSharded(cfg, uint64(n)*10, 4) // size hint only; shards size themselves at seal
	if err != nil {
		t.Fatal(err)
	}
	build, probe := buildKeys(n)
	if err := s.Rotate(0, func(insert func(Key) error) error {
		for _, k := range build {
			if err := insert(k); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s.String(), "building") {
		t.Fatalf("shards not sealed after rotation: %s", s.String())
	}
	for _, k := range build[:1000] {
		if !s.Contains(k) {
			t.Fatal("false negative after sealed rotation")
		}
	}
	// Post-seal inserts take the overflow path and stay queryable.
	if err := s.Insert(0xFEEDFACE); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(0xFEEDFACE) {
		t.Fatal("overflow insert not queryable")
	}
	want := s.ContainsBatch(probe, nil)
	data, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := back.(*Sharded)
	if !ok {
		t.Fatalf("restored %T, want *Sharded", back)
	}
	if restored.Config() != cfg {
		t.Fatalf("restored config %+v, want %+v", restored.Config(), cfg)
	}
	got := restored.ContainsBatch(probe, nil)
	if !bytes.Equal(selBytes(want), selBytes(got)) {
		t.Fatal("sharded xor round trip changed probe results")
	}
	if !restored.Contains(0xFEEDFACE) {
		t.Fatal("overflow key lost in the envelope round trip")
	}
}
