// Package perfilter is a Go implementation of performance-optimal
// filtering (Lang, Neumann, Kemper, Boncz: "Performance-Optimal Filtering:
// Bloom Overtakes Cuckoo at High Throughput", PVLDB 12(5), 2019).
//
// It provides the paper's filter family — classic, blocked,
// register-blocked, sectorized and cache-sectorized Bloom filters, cuckoo
// filters with partial-key cuckoo hashing, and an exact hash set — behind a
// single batched interface, together with the performance model that picks
// the configuration minimizing the filtering overhead
//
//	ρ(F) = tl(F) + f(F)·tw
//
// for a concrete workload (problem size n, work saved per pruned probe tw,
// true-hit rate σ, memory budget).
//
// Quick start:
//
//	f, _ := perfilter.NewCacheSectorizedBloom(8, 2, n*16)
//	for _, k := range buildKeys {
//		f.Insert(k)
//	}
//	sel := f.ContainsBatch(probeKeys, nil) // positions that may match
//
// Or let the model choose:
//
//	advice, _ := perfilter.Advise(perfilter.Workload{
//		N: 1e6, Tw: 200, Sigma: 0.1, BitsPerKeyBudget: 16,
//	})
//	f, _ := perfilter.New(advice.Config, advice.MBits)
//
// All sizes are given and reported in bits; constructors round up to each
// structure's addressing granularity (powers of two, or "magic modulo"
// sizes within 0.014% of the request). Filters are safe for concurrent
// readers; writes need external synchronization — or use NewSharded,
// which partitions any configuration across per-shard locks for
// multi-core writers, scatter/gather batch probes, and atomic generation
// rotation (see ConcurrentFilter).
package perfilter

import (
	"fmt"

	"perfilter/internal/blocked"
	"perfilter/internal/bloom"
	"perfilter/internal/core"
	"perfilter/internal/cuckoo"
	"perfilter/internal/exact"
	"perfilter/internal/model"
	"perfilter/internal/registry"
	"perfilter/internal/xor"
)

// Key is the key type: 32-bit integers, as in the paper's evaluation.
// Hash wider keys down to 32 bits before insertion if needed.
type Key = uint32

// ErrFull is returned by Insert when a cuckoo filter cannot place a key.
// Bloom filters never return it.
var ErrFull = cuckoo.ErrFull

// Filter is the unified filter interface (§5 of the paper): scalar and
// batched membership tests, with the batched form producing a selection
// vector of matching positions.
type Filter interface {
	// Insert adds a key. Only cuckoo filters can fail (ErrFull).
	Insert(key Key) error
	// Contains reports whether key may be in the set. Inserted keys are
	// always reported (no false negatives).
	Contains(key Key) bool
	// ContainsBatch appends to sel the positions i for which keys[i] may
	// be contained and returns the extended slice. Identical results to
	// calling Contains per key, but amortized per-key cost.
	ContainsBatch(keys []Key, sel []uint32) []uint32
	// SizeBits is the actual size in bits after rounding.
	SizeBits() uint64
	// FPR is the analytic expected false-positive rate with n keys stored.
	FPR(n uint64) float64
	// Reset clears the filter for reuse.
	Reset()
	// String describes the configuration.
	String() string
}

// Kind selects a filter family.
type Kind uint8

const (
	// BlockedBloom covers register-blocked, plain blocked, sectorized and
	// cache-sectorized Bloom filters, distinguished by Config geometry.
	BlockedBloom Kind = iota
	// ClassicBloom is the unblocked Bloom filter baseline.
	ClassicBloom
	// Cuckoo is the cuckoo filter (supports Delete; see CuckooFilter).
	Cuckoo
	// Exact is a Robin Hood hash set: no false positives, ~64+ bits/key.
	Exact
	// Xor is the immutable xor/fuse filter family (Graf & Lemire):
	// 2^-w FPR at ≈1.23·w bits/key (≈1.13·w fuse), solved by peeling from
	// the complete key set. Filters of this kind build in phases — buffer
	// inserts, Seal, then serve — and absorb post-seal writes in a side
	// buffer until the next rebuild; see XorFilter.
	Xor
)

// String returns the canonical kind name from the model's kind-spec table
// (the public and model Kind spaces are numerically identical).
func (k Kind) String() string { return model.Kind(k).String() }

// Config describes a filter configuration in the paper's parameter space.
// Zero-valued fields that don't apply to the Kind are ignored.
type Config struct {
	Kind Kind

	// Bloom geometry (BlockedBloom): word size W ∈ {32,64}, block size
	// B ∈ {32..512} bits, sector size S | B, sector groups Z, hash count K.
	// See internal/blocked for the variant semantics.
	WordBits   uint32
	BlockBits  uint32
	SectorBits uint32
	Groups     uint32
	K          uint32 // also used by ClassicBloom

	// Cuckoo geometry: signature bits l ∈ {4,8,12,16,32} and bucket size
	// b ∈ {1,2,4,8}.
	TagBits    uint32
	BucketSize uint32

	// Xor geometry: fingerprint width w ∈ {8,16} and the binary-fuse
	// layout flag.
	FingerprintBits uint32
	Fuse            bool

	// Magic selects magic-modulo addressing (near-arbitrary sizes) over
	// power-of-two addressing.
	Magic bool
}

// toModel converts to the internal model configuration.
func (c Config) toModel() (model.Config, error) {
	switch c.Kind {
	case BlockedBloom:
		p := blocked.Params{
			WordBits: c.WordBits, BlockBits: c.BlockBits,
			SectorBits: c.SectorBits, Z: c.Groups, K: c.K, Magic: c.Magic,
		}
		return model.Config{Kind: model.KindBlockedBloom, Bloom: p}, p.Validate()
	case ClassicBloom:
		p := bloom.Params{K: c.K, Magic: c.Magic}
		return model.Config{Kind: model.KindClassicBloom, Classic: p}, p.Validate()
	case Cuckoo:
		p := cuckoo.Params{TagBits: c.TagBits, BucketSize: c.BucketSize, Magic: c.Magic}
		return model.Config{Kind: model.KindCuckoo, Cuckoo: p}, p.Validate()
	case Xor:
		p := xor.Params{FingerprintBits: c.FingerprintBits, Fuse: c.Fuse}
		return model.Config{Kind: model.KindXor, Xor: p}, p.Validate()
	case Exact:
		return model.Config{Kind: model.KindExact}, nil
	default:
		return model.Config{}, fmt.Errorf("perfilter: invalid kind %d", c.Kind)
	}
}

// fromModel converts an internal model configuration to the public form.
func fromModel(mc model.Config) Config {
	switch mc.Kind {
	case model.KindBlockedBloom:
		return Config{
			Kind: BlockedBloom, WordBits: mc.Bloom.WordBits,
			BlockBits: mc.Bloom.BlockBits, SectorBits: mc.Bloom.SectorBits,
			Groups: mc.Bloom.Z, K: mc.Bloom.K, Magic: mc.Bloom.Magic,
		}
	case model.KindClassicBloom:
		return Config{Kind: ClassicBloom, K: mc.Classic.K, Magic: mc.Classic.Magic}
	case model.KindCuckoo:
		return Config{
			Kind: Cuckoo, TagBits: mc.Cuckoo.TagBits,
			BucketSize: mc.Cuckoo.BucketSize, Magic: mc.Cuckoo.Magic,
		}
	case model.KindXor:
		return Config{
			Kind: Xor, FingerprintBits: mc.Xor.FingerprintBits,
			Fuse: mc.Xor.Fuse,
		}
	default:
		return Config{Kind: Exact}
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	_, err := c.toModel()
	return err
}

// String renders the configuration in the paper's notation.
func (c Config) String() string {
	mc, err := c.toModel()
	if err != nil {
		return fmt.Sprintf("invalid(%v)", err)
	}
	return mc.String()
}

// FPR evaluates the configuration's analytic false-positive model at the
// given size and key count without building a filter.
func (c Config) FPR(mBits, n uint64) float64 {
	mc, err := c.toModel()
	if err != nil {
		return 1
	}
	return mc.FPR(mBits, n)
}

// New builds a filter of (at least) mBits for the configuration, through
// the family's registered descriptor (see internal/registry and the
// register_<family>.go files). For Exact, mBits is interpreted as a
// capacity hint in keys when below 2^16, else as bits (64 bits per slot).
func New(c Config, mBits uint64) (Filter, error) {
	mc, err := c.toModel()
	if err != nil {
		return nil, err
	}
	d := registry.Lookup(mc.Kind)
	if !d.Constructible() {
		return nil, fmt.Errorf("perfilter: no registered family for kind %s", c.Kind)
	}
	return d.New(mc, mBits)
}

// NewRegisterBlockedBloom returns a register-blocked Bloom filter
// (B = W = 64 bits) with k hash bits — the cheapest-lookup filter in the
// paper, optimal at very small tw.
func NewRegisterBlockedBloom(k uint32, mBits uint64) (Filter, error) {
	return New(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 64,
		SectorBits: 64, Groups: 1, K: k, Magic: true}, mBits)
}

// NewBlockedBloom returns a cache-line blocked Bloom filter (Putze et al.):
// B = 512 bits, no sectorization.
func NewBlockedBloom(k uint32, mBits uint64) (Filter, error) {
	return New(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 512, Groups: 1, K: k, Magic: true}, mBits)
}

// NewSectorizedBloom returns a word-sectorized blocked Bloom filter:
// B = 512, S = 64, k spread over all 8 sectors (k must be a multiple of 8).
func NewSectorizedBloom(k uint32, mBits uint64) (Filter, error) {
	return New(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 8, K: k, Magic: true}, mBits)
}

// NewCacheSectorizedBloom returns the paper's new cache-sectorized variant:
// B = 512, S = 64, z groups (k must be a multiple of z). The headline
// configuration is k=8, z=2.
func NewCacheSectorizedBloom(k, z uint32, mBits uint64) (Filter, error) {
	return New(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: z, K: k, Magic: true}, mBits)
}

// NewClassicBloom returns the classic (unblocked) Bloom filter.
func NewClassicBloom(k uint32, mBits uint64) (Filter, error) {
	return New(Config{Kind: ClassicBloom, K: k, Magic: true}, mBits)
}

// NewCuckoo returns a cuckoo filter with the given signature length and
// bucket size. Use CuckooSizeForKeys to pick mBits for a planned key count.
func NewCuckoo(tagBits, bucketSize uint32, mBits uint64) (*CuckooFilter, error) {
	p := cuckoo.Params{TagBits: tagBits, BucketSize: bucketSize, Magic: true}
	f, err := cuckoo.New(p, mBits)
	if err != nil {
		return nil, err
	}
	return &CuckooFilter{f}, nil
}

// CuckooSizeForKeys returns a size (bits) that fits n keys within the
// practical load limit for the bucket size.
func CuckooSizeForKeys(tagBits, bucketSize uint32, n uint64) uint64 {
	return cuckoo.Params{TagBits: tagBits, BucketSize: bucketSize}.SizeForKeys(n)
}

// NewExact returns an exact filter (Robin Hood hash set) for about
// n keys; it can grow beyond that.
func NewExact(n int) Filter {
	return &exactAdapter{exact.New(n)}
}

// BuildXor constructs a sealed xor/fuse filter directly from a key slice
// (duplicates are deduplicated) — the natural entry point for the
// family's build-once contract. fingerprintBits selects w ∈ {8,16}
// (FPR 2^-w); fuse selects the binary-fuse layout (≈1.13·w instead of
// ≈1.23·w bits/key, better probe locality).
func BuildXor(keys []Key, fingerprintBits uint32, fuse bool) (*XorFilter, error) {
	f, err := xor.Build(xor.Params{FingerprintBits: fingerprintBits, Fuse: fuse}, keys)
	if err != nil {
		return nil, err
	}
	return &XorFilter{f}, nil
}

// CuckooFilter is the Filter implementation for cuckoo filters, exposing
// the family's extra capabilities: deletion and duplicate (bag) support.
type CuckooFilter struct {
	f *cuckoo.Filter
}

// Insert implements Filter; it can return ErrFull.
func (c *CuckooFilter) Insert(key Key) error { return c.f.Insert(key) }

// Contains implements Filter.
func (c *CuckooFilter) Contains(key Key) bool { return c.f.Contains(key) }

// ContainsBatch implements Filter.
func (c *CuckooFilter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return c.f.ContainsBatch(keys, sel)
}

// Delete removes one occurrence of key. Only delete keys that were
// inserted; deleting arbitrary keys can evict a colliding key's signature.
func (c *CuckooFilter) Delete(key Key) bool { return c.f.Delete(key) }

// LoadFactor returns the table occupancy.
func (c *CuckooFilter) LoadFactor() float64 { return c.f.LoadFactor() }

// Count returns the number of stored signatures.
func (c *CuckooFilter) Count() uint64 { return c.f.Count() }

// SizeBits implements Filter.
func (c *CuckooFilter) SizeBits() uint64 { return c.f.SizeBits() }

// FPR implements Filter.
func (c *CuckooFilter) FPR(n uint64) float64 { return c.f.FPR(n) }

// Reset implements Filter.
func (c *CuckooFilter) Reset() { c.f.Reset() }

// String implements Filter.
func (c *CuckooFilter) String() string { return c.f.Params().String() }

// StorageAligned reports whether the tag array is cache-line aligned.
func (c *CuckooFilter) StorageAligned() bool { return c.f.StorageAligned() }

// XorFilter is the Filter implementation for the immutable xor/fuse
// family, exposing its build-once lifecycle: inserts buffer until Seal
// solves the fingerprint table, and inserts after Seal park in an
// overflow set that probes also consult (so the no-false-negative
// contract holds for writers racing a sealed generation). Sharded
// rotations seal staged xor shards automatically after their fill
// completes; standalone users populate via New + Insert + Seal, or build
// in one step with BuildXor. Folding overflow keys into the table takes a
// rebuild from the full key set — the adaptive wrapper's key-log
// migration does exactly that.
type XorFilter struct {
	f *xor.Filter
}

// Insert implements Filter; it never fails (buffered pre-seal, overflow
// post-seal).
func (x *XorFilter) Insert(key Key) error { return x.f.Insert(key) }

// Contains implements Filter.
func (x *XorFilter) Contains(key Key) bool { return x.f.Contains(key) }

// ContainsBatch implements Filter.
func (x *XorFilter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return x.f.ContainsBatch(keys, sel)
}

// Seal solves the table from the buffered keys (idempotent once sealed).
func (x *XorFilter) Seal() error { return x.f.Seal() }

// Sealed reports whether the table has been solved.
func (x *XorFilter) Sealed() bool { return x.f.Sealed() }

// OverflowLen returns the number of post-seal keys awaiting a rebuild.
func (x *XorFilter) OverflowLen() int { return x.f.OverflowLen() }

// Count returns the number of keys the filter answers for.
func (x *XorFilter) Count() uint64 { return x.f.Count() }

// SizeBits implements Filter.
func (x *XorFilter) SizeBits() uint64 { return x.f.SizeBits() }

// FPR implements Filter (2^-w, independent of n).
func (x *XorFilter) FPR(n uint64) float64 { return x.f.FPR(n) }

// Reset implements Filter, returning to the empty building phase.
func (x *XorFilter) Reset() { x.f.Reset() }

// String implements Filter.
func (x *XorFilter) String() string { return x.f.String() }

// StorageAligned reports whether the fingerprint table is cache-line
// aligned (vacuously true before Seal).
func (x *XorFilter) StorageAligned() bool { return x.f.StorageAligned() }

// blockedAdapter adapts blocked.Probe (whose Insert cannot fail).
type blockedAdapter struct {
	f blocked.Probe
}

func (a *blockedAdapter) Insert(key Key) error { a.f.Insert(key); return nil }
func (a *blockedAdapter) Contains(key Key) bool {
	return a.f.Contains(key)
}
func (a *blockedAdapter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return a.f.ContainsBatch(keys, sel)
}
func (a *blockedAdapter) SizeBits() uint64     { return a.f.SizeBits() }
func (a *blockedAdapter) FPR(n uint64) float64 { return a.f.FPR(n) }
func (a *blockedAdapter) Reset()               { a.f.Reset() }
func (a *blockedAdapter) String() string       { return a.f.Params().String() }
func (a *blockedAdapter) StorageAligned() bool {
	r, ok := a.f.(interface{ StorageAligned() bool })
	return ok && r.StorageAligned()
}

type classicAdapter struct {
	f *bloom.Filter
}

func (a *classicAdapter) Insert(key Key) error { a.f.Insert(key); return nil }
func (a *classicAdapter) Contains(key Key) bool {
	return a.f.Contains(key)
}
func (a *classicAdapter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return a.f.ContainsBatch(keys, sel)
}
func (a *classicAdapter) SizeBits() uint64     { return a.f.SizeBits() }
func (a *classicAdapter) FPR(n uint64) float64 { return a.f.FPR(n) }
func (a *classicAdapter) Reset()               { a.f.Reset() }
func (a *classicAdapter) String() string       { return a.f.Params().String() }
func (a *classicAdapter) StorageAligned() bool { return a.f.StorageAligned() }

type exactAdapter struct {
	s *exact.Set
}

func (a *exactAdapter) Insert(key Key) error {
	a.s.Insert(key)
	return nil
}
func (a *exactAdapter) Contains(key Key) bool { return a.s.Contains(key) }
func (a *exactAdapter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return a.s.ContainsBatch(keys, sel)
}
func (a *exactAdapter) SizeBits() uint64     { return a.s.SizeBits() }
func (a *exactAdapter) FPR(n uint64) float64 { return 0 }
func (a *exactAdapter) Reset()               { a.s.Reset() }
func (a *exactAdapter) String() string       { return a.s.String() }
func (a *exactAdapter) StorageAligned() bool { return a.s.StorageAligned() }

// compile-time interface checks
var (
	_ Filter           = (*blockedAdapter)(nil)
	_ Filter           = (*classicAdapter)(nil)
	_ Filter           = (*CuckooFilter)(nil)
	_ Filter           = (*XorFilter)(nil)
	_ Filter           = (*exactAdapter)(nil)
	_ core.BatchProber = (Filter)(nil)
)
