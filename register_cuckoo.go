package perfilter

import (
	"perfilter/internal/cuckoo"
	"perfilter/internal/model"
	"perfilter/internal/registry"
)

// The cuckoo filter; the (l=16, b=2) default is the paper's
// high-precision headline configuration.
var _ = registry.Register(registry.Descriptor{
	Kind:      model.KindCuckoo,
	Name:      "cuckoo",
	WireMagic: cuckoo.WireMagic,
	Default: model.Config{Kind: model.KindCuckoo, Cuckoo: cuckoo.Params{
		TagBits: 16, BucketSize: 2, Magic: true,
	}},
	New: func(mc model.Config, mBits uint64) (registry.Filter, error) {
		f, err := cuckoo.New(mc.Cuckoo, mBits)
		if err != nil {
			return nil, err
		}
		return &CuckooFilter{f}, nil
	},
	Decode: func(data []byte) (registry.Filter, error) {
		f, err := cuckoo.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &CuckooFilter{f}, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*CuckooFilter).f.MarshalBinary()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*CuckooFilter)
		return ok
	},
	Mutable: true,
})
