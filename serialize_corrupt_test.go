package perfilter

import (
	"encoding/binary"
	"strings"
	"testing"
)

// corruptTestEncodings builds one small marshaled image per family —
// every leading wire magic Unmarshal dispatches on, including the
// sharded and adaptive envelopes.
func corruptTestEncodings(t testing.TB) map[string][]byte {
	const n = 2000
	build, _ := buildKeys(n)
	out := make(map[string][]byte)
	add := func(name string, f Filter, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range build {
			if err := f.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		if x, ok := f.(*XorFilter); ok {
			if err := x.Seal(); err != nil {
				t.Fatal(err)
			}
		}
		data, err := Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	bloomF, err := NewCacheSectorizedBloom(8, 2, n*16)
	add("blocked", bloomF, err)
	classicF, err := NewClassicBloom(7, n*16)
	add("classic", classicF, err)
	cuckooF, err := NewCuckoo(16, 4, CuckooSizeForKeys(16, 4, n))
	add("cuckoo", cuckooF, err)
	countingF, err := NewCountingBloom(8, n*16)
	add("counting", countingF, err)
	scalableF, err := NewScalableBloom(n, 0.01)
	add("scalable", scalableF, err)
	xorF, err := New(Config{Kind: Xor, FingerprintBits: 8}, 0)
	add("xor", xorF, err)
	fuseF, err := New(Config{Kind: Xor, FingerprintBits: 16, Fuse: true}, 0)
	add("fuse", fuseF, err)
	add("exact", NewExact(n), nil)
	shardedF, err := NewSharded(Config{Kind: BlockedBloom, WordBits: 64,
		BlockBits: 512, SectorBits: 64, Groups: 2, K: 8, Magic: true}, n*16, 4)
	add("sharded", shardedF, err)
	adaptiveF, err := NewAdaptive(Config{Kind: Cuckoo, TagBits: 16,
		BucketSize: 4, Magic: true}, CuckooSizeForKeys(16, 4, n)*2, AdaptiveOptions{Shards: 2})
	add("adaptive", adaptiveF, err)
	return out
}

// TestUnmarshalCorruptNamesMagic is the decode-robustness table test:
// for every family's wire image, any truncation must return an error —
// never panic — and every decode error must name the magic it was
// dispatched on (so operators can tell *what* refused to load from a
// mixed snapshot directory). Unknown magics must be named too.
func TestUnmarshalCorruptNamesMagic(t *testing.T) {
	for name, data := range corruptTestEncodings(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := Unmarshal(data); err != nil {
				t.Fatalf("intact image rejected: %v", err)
			}
			// Every short prefix, plus byte-off-the-end cuts near the
			// header/payload boundary and the tail.
			cuts := make(map[int]bool)
			for cut := 0; cut < len(data) && cut < 128; cut++ {
				cuts[cut] = true
			}
			for _, cut := range []int{len(data) - 1, len(data) - 4, len(data) / 2} {
				if cut > 0 {
					cuts[cut] = true
				}
			}
			for cut := range cuts {
				_, err := Unmarshal(data[:cut])
				if err == nil {
					t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
				}
				if !strings.Contains(err.Error(), "magic") {
					t.Fatalf("truncation to %d: error does not name the magic: %v", cut, err)
				}
			}
			// An unknown magic is named in hex.
			bad := append([]byte(nil), data...)
			binary.LittleEndian.PutUint32(bad, 0xDEADBEEF)
			_, err := Unmarshal(bad)
			if err == nil || !strings.Contains(err.Error(), "0xdeadbeef") {
				t.Fatalf("unknown magic not named: %v", err)
			}
			// A flipped byte mid-payload either still decodes (bit arrays
			// carry no checksum) or fails while naming the magic — but
			// must never panic.
			flip := append([]byte(nil), data...)
			flip[len(flip)/2] ^= 0xFF
			if _, err := Unmarshal(flip); err != nil && !strings.Contains(err.Error(), "magic") {
				t.Fatalf("flipped byte: error does not name the magic: %v", err)
			}
		})
	}
}

// FuzzUnmarshal feeds arbitrary bytes to the decode dispatcher: it must
// never panic, and every rejection must name the magic (or its absence).
// The seed corpus covers every family's real wire image.
func FuzzUnmarshal(f *testing.F) {
	for _, data := range corruptTestEncodings(f) {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x4C, 0x66, 0x70})
	f.Fuzz(func(t *testing.T, data []byte) {
		filt, err := Unmarshal(data)
		if err == nil {
			if filt == nil {
				t.Fatal("nil filter with nil error")
			}
			return
		}
		if !strings.Contains(err.Error(), "magic") {
			t.Fatalf("decode error does not name the magic: %v", err)
		}
	})
}
