package perfilter

// One benchmark per table and figure of the paper's evaluation (§6), plus
// the ablations DESIGN.md calls out. Each benchmark drives the shared
// experiment runners in internal/bench (the cmd/filter-* tools run the
// same code at higher measurement effort) and prints the regenerated
// table/series once, so
//
//	go test -bench=. -benchmem
//
// both measures the harness and emits every reproduced artifact.
// EXPERIMENTS.md records how each output compares to the paper.

import (
	"fmt"
	"sync"
	"testing"

	"perfilter/internal/bench"
	"perfilter/internal/blocked"
	"perfilter/internal/bloom"
	"perfilter/internal/core"
	"perfilter/internal/model"
	"perfilter/internal/rng"
)

var printedFigures sync.Map

// printFigure emits a regenerated artifact exactly once per process.
func printFigure(name, content string) {
	if _, dup := printedFigures.LoadOrStore(name, true); !dup {
		fmt.Printf("\n===== %s =====\n%s\n", name, content)
	}
}

func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Table1Platforms()
		printFigure("Table 1: hardware platforms (presets + host)", out)
	}
}

func BenchmarkFig01SkylineSummary(b *testing.B) {
	skx := model.SKX()
	for i := 0; i < b.N; i++ {
		out := bench.Fig1Summary(skx, skx.L3, false)
		printFigure("Figure 1: performance-optimal filter types incl. exact region", out)
	}
}

func BenchmarkFig02JoinPushdown(b *testing.B) {
	// The Fig. 2 scenario measured end-to-end: σ=0.05 probe pipeline with
	// and without pushdown (see examples/joinpushdown for the full sweep).
	bp := benchWorkload(b)
	ht := benchHashTable(bp)
	filter, err := NewRegisterBlockedBloom(4, uint64(len(bp.build))*12)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range bp.build {
		filter.Insert(k)
	}
	sel := make([]uint32, 0, 1024)
	b.ResetTimer()
	var surv int
	for i := 0; i < b.N; i++ {
		for off := 0; off+1024 <= len(bp.probe); off += 1024 {
			sel = filter.ContainsBatch(bp.probe[off:off+1024], sel[:0])
			for _, pos := range sel {
				if ht.probe(bp.probe[off : off+1024][pos]) {
					surv++
				}
			}
		}
	}
	_ = surv
}

func BenchmarkFig03OverheadCurve(b *testing.B) {
	cfg := model.Config{Kind: model.KindBlockedBloom,
		Bloom: blocked.CacheSectorizedParams(64, 512, 2, 8, true)}
	skx := model.SKX()
	for i := 0; i < b.N; i++ {
		s := bench.Fig3OverheadCurve(cfg, 1<<22, 1024, skx)
		printFigure("Figure 3: overhead rho vs filter size", bench.Format([]bench.Series{s}))
	}
}

func BenchmarkFig04BlockingImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fprOut := bench.Format(bench.Fig4BlockingImpact())
		kOut := bench.Format(bench.Fig4OptimalK())
		printFigure("Figure 4a: FPR impact of blocking", fprOut)
		printFigure("Figure 4b: optimal k", kOut)
	}
}

func BenchmarkFig05Sectorization(b *testing.B) {
	eff := bench.QuickEffort()
	for i := 0; i < b.N; i++ {
		cache := bench.Format(bench.Fig5Sectorization(16<<10*8, 16, eff))
		dram := bench.Format(bench.Fig5Sectorization(64<<20*8, 16, eff))
		printFigure("Figure 5a: sectorization throughput, 16 KiB filter", cache)
		printFigure("Figure 5b: sectorization throughput, 64 MiB filter", dram)
	}
}

func BenchmarkFig07SectorizationFPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Format(bench.Fig7SectorizationFPR())
		printFigure("Figure 7: sectorized vs cache-sectorized FPR", out)
	}
}

func BenchmarkFig08CuckooFPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Format(bench.Fig8CuckooFPR())
		printFigure("Figure 8: cuckoo FPR by signature length and bucket size", out)
	}
}

func BenchmarkFig09MagicModulo(b *testing.B) {
	eff := bench.QuickEffort()
	for i := 0; i < b.N; i++ {
		out := bench.Format(bench.Fig9MagicModulo(1<<26, eff))
		printFigure("Figure 9: magic vs pow2 lookup cost across sizes", out)
	}
}

func BenchmarkFig10Skylines(b *testing.B) {
	models := []model.CostModel{model.Xeon(), model.KNL(), model.SKX(), model.Ryzen()}
	for i := 0; i < b.N; i++ {
		out := bench.Fig10Skylines(models, false)
		printFigure("Figure 10: skylines of performance-optimal filter types", out)
	}
}

func BenchmarkFig11SpeedupFPR(b *testing.B) {
	skx := model.SKX()
	for i := 0; i < b.N; i++ {
		out := bench.Fig11SpeedupAndFPR(skx, false)
		printFigure("Figure 11: winner speedups and FPR (SKX)", out)
	}
}

func BenchmarkFig12BloomConfigSkyline(b *testing.B) {
	skx := model.SKX()
	caches := [3]uint64{skx.L1, skx.L2, skx.L3}
	for i := 0; i < b.N; i++ {
		out := bench.Fig12BloomFacets(skx, caches, false)
		printFigure("Figure 12: winning Bloom configuration facets (SKX)", out)
	}
}

func BenchmarkFig13CuckooConfigSkyline(b *testing.B) {
	skx := model.SKX()
	caches := [3]uint64{skx.L1, skx.L2, skx.L3}
	for i := 0; i < b.N; i++ {
		out := bench.Fig13CuckooFacets(skx, caches, false)
		printFigure("Figure 13: winning Cuckoo configuration facets (SKX)", out)
	}
}

func BenchmarkFig14LookupScaling(b *testing.B) {
	eff := bench.QuickEffort()
	for i := 0; i < b.N; i++ {
		out := bench.Format(bench.Fig14LookupScaling(1<<16, 1<<28, eff))
		printFigure("Figure 14: cycles per lookup vs filter size (host)", out)
	}
}

func BenchmarkFig15BatchSpeedup(b *testing.B) {
	eff := bench.QuickEffort()
	for i := 0; i < b.N; i++ {
		out := bench.FormatFig15(bench.Fig15BatchSpeedup(eff))
		printFigure("Figure 15: batch-kernel speedups (host)", out)
	}
}

// ---- Ablation benches (DESIGN.md §6) ----

// BenchmarkAblationMagicVsPow2 isolates the magic-modulo overhead on the
// register-blocked filter (the paper's §5.2 "modest overhead" claim).
func BenchmarkAblationMagicVsPow2(b *testing.B) {
	for _, useMagic := range []bool{false, true} {
		name := "pow2"
		if useMagic {
			name = "magic"
		}
		b.Run(name, func(b *testing.B) {
			f, err := New(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 64,
				SectorBits: 64, Groups: 1, K: 4, Magic: useMagic}, 1<<20)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.NewMT19937(1)
			for i := 0; i < 1<<16; i++ {
				f.Insert(r.Uint32())
			}
			probe := benchProbe()
			sel := make([]uint32, 0, len(probe))
			b.SetBytes(int64(4 * len(probe)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel = f.ContainsBatch(probe, sel[:0])
			}
		})
	}
}

// BenchmarkAblationBatchWidth measures the observable effect of the batch
// design: batched kernels vs one-key-at-a-time scalar calls (the kernel
// unroll width itself is the compile-time constant simd.Width).
func BenchmarkAblationBatchWidth(b *testing.B) {
	f, err := NewCacheSectorizedBloom(8, 2, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewMT19937(2)
	for i := 0; i < 1<<16; i++ {
		f.Insert(r.Uint32())
	}
	probe := benchProbe()
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(4 * len(probe)))
		hits := 0
		for i := 0; i < b.N; i++ {
			for _, k := range probe {
				if f.Contains(k) {
					hits++
				}
			}
		}
		_ = hits
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(int64(4 * len(probe)))
		sel := make([]uint32, 0, len(probe))
		for i := 0; i < b.N; i++ {
			sel = f.ContainsBatch(probe, sel[:0])
		}
	})
}

// BenchmarkAblationCuckooBucket regenerates the b=2-beats-b=4 finding.
func BenchmarkAblationCuckooBucket(b *testing.B) {
	eff := bench.QuickEffort()
	for i := 0; i < b.N; i++ {
		s := bench.AblationCuckooBucket(1<<14, eff)
		printFigure("Ablation: cuckoo bucket size overhead at tw=2^14",
			bench.Format([]bench.Series{s}))
	}
}

// BenchmarkAblationSubwordSectors compares a register-blocked filter with
// and without sub-word sectorization (the paper's §6 outlier 5: no lookup
// effect, worse FPR — "not beneficial in practice").
func BenchmarkAblationSubwordSectors(b *testing.B) {
	configs := map[string]Config{
		"plain":   {Kind: BlockedBloom, WordBits: 32, BlockBits: 32, SectorBits: 32, Groups: 1, K: 4},
		"subword": {Kind: BlockedBloom, WordBits: 32, BlockBits: 32, SectorBits: 8, Groups: 4, K: 4},
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			f, err := New(cfg, 1<<18)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.NewMT19937(3)
			for i := 0; i < 1<<14; i++ {
				f.Insert(r.Uint32())
			}
			b.Logf("model FPR at 16 bpk: %.5f", f.FPR(1<<14))
			probe := benchProbe()
			sel := make([]uint32, 0, len(probe))
			b.SetBytes(int64(4 * len(probe)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel = f.ContainsBatch(probe, sel[:0])
			}
		})
	}
}

// BenchmarkAblationClassicShortCircuit contrasts the classic filter's
// cheap short-circuiting negatives with its expensive positives — the
// t−l ≪ t+l asymmetry that §2 uses to motivate the simplified model.
func BenchmarkAblationClassicShortCircuit(b *testing.B) {
	f, err := bloom.New(bloom.Params{K: 8}, 1<<22)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewMT19937(4)
	inserted := make([]core.Key, 1<<16)
	for i := range inserted {
		inserted[i] = r.Uint32()
		f.Insert(inserted[i])
	}
	negatives := benchProbe()
	b.Run("negative-probes", func(b *testing.B) {
		hits := 0
		b.SetBytes(int64(4 * len(negatives)))
		for i := 0; i < b.N; i++ {
			for _, k := range negatives {
				if f.Contains(k) {
					hits++
				}
			}
		}
		_ = hits
	})
	b.Run("positive-probes", func(b *testing.B) {
		probe := inserted[:1024]
		hits := 0
		b.SetBytes(int64(4 * len(probe)))
		for i := 0; i < b.N; i++ {
			for _, k := range probe {
				if f.Contains(k) {
					hits++
				}
			}
		}
		_ = hits
	})
}

// ---- helpers ----

func benchProbe() []core.Key {
	r := rng.NewMT19937(0xBEEF)
	probe := make([]core.Key, 1024)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	return probe
}

type benchBP struct {
	build []core.Key
	probe []core.Key
}

func benchWorkload(b *testing.B) *benchBP {
	b.Helper()
	r := rng.NewMT19937(42)
	bp := &benchBP{
		build: make([]core.Key, 1<<15),
		probe: make([]core.Key, 1<<17),
	}
	for i := range bp.build {
		bp.build[i] = r.Uint32() | 1
	}
	for i := range bp.probe {
		if r.Uint32n(20) == 0 { // σ = 0.05
			bp.probe[i] = bp.build[r.Uint32n(uint32(len(bp.build)))]
		} else {
			bp.probe[i] = r.Uint32() &^ 1
		}
	}
	return bp
}

type miniHT struct {
	keys []core.Key
	used []bool
	mask uint32
}

func benchHashTable(bp *benchBP) *miniHT {
	size := uint32(1)
	for float64(size)*0.7 < float64(len(bp.build)) {
		size <<= 1
	}
	ht := &miniHT{keys: make([]core.Key, size), used: make([]bool, size), mask: size - 1}
	for _, k := range bp.build {
		idx := k * 2654435761 & ht.mask
		for ht.used[idx] && ht.keys[idx] != k {
			idx = (idx + 1) & ht.mask
		}
		ht.keys[idx], ht.used[idx] = k, true
	}
	return ht
}

func (ht *miniHT) probe(k core.Key) bool {
	idx := k * 2654435761 & ht.mask
	for ht.used[idx] {
		if ht.keys[idx] == k {
			return true
		}
		idx = (idx + 1) & ht.mask
	}
	return false
}
