package perfilter

import (
	"perfilter/internal/magic"
	"perfilter/internal/registry"
)

// The sharded concurrent wrapper's envelope format (a header carrying the
// per-shard configuration followed by each shard's own wire payload).
// Wire-only: a Sharded is built around an inner kind via NewSharded, not
// through New.
var _ = registry.Register(registry.Descriptor{
	Kind:      registry.NoKind,
	Name:      "sharded",
	WireMagic: magic.WireSharded,
	Decode: func(data []byte) (registry.Filter, error) {
		s, err := UnmarshalSharded(data)
		if err != nil {
			return nil, err
		}
		return s, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*Sharded).marshalEnvelope()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*Sharded)
		return ok
	},
	Mutable: true,
})
