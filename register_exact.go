package perfilter

import (
	"perfilter/internal/exact"
	"perfilter/internal/model"
	"perfilter/internal/registry"
)

// The exact Robin Hood hash set: no false positives, ~64+ bits/key.
// Standalone construction keeps New's historical capacity-hint regime
// (mBits below 2^16 is a key-count hint, larger values are bits at 64
// bits per slot); shards always use the bits regime so a small per-shard
// split never flips into the hint interpretation.
var _ = registry.Register(registry.Descriptor{
	Kind:      model.KindExact,
	Name:      "exact",
	WireMagic: exact.WireMagic,
	Default:   model.Config{Kind: model.KindExact},
	New: func(mc model.Config, mBits uint64) (registry.Filter, error) {
		capacity := mBits
		if capacity >= 1<<16 {
			capacity /= 64
		}
		return &exactAdapter{exact.New(int(capacity))}, nil
	},
	NewShard: func(mc model.Config, perShardBits uint64) (registry.Filter, error) {
		capacity := perShardBits / 64
		if capacity == 0 {
			capacity = 1
		}
		return &exactAdapter{exact.New(int(capacity))}, nil
	},
	Decode: func(data []byte) (registry.Filter, error) {
		s, err := exact.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &exactAdapter{s}, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*exactAdapter).s.MarshalBinary()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*exactAdapter)
		return ok
	},
	Mutable: true,
})
