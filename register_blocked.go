package perfilter

import (
	"fmt"

	"perfilter/internal/blocked"
	"perfilter/internal/model"
	"perfilter/internal/registry"
)

// The blocked-Bloom family: register-blocked, plain blocked, sectorized
// and cache-sectorized variants, distinguished by Config geometry. The
// default is the paper's cache-sectorized headline (B=512, S=64, z=2,
// k=8). The "" alias makes it the server's default create kind.
var _ = registry.Register(registry.Descriptor{
	Kind:      model.KindBlockedBloom,
	Name:      "bloom",
	Aliases:   []string{""},
	WireMagic: blocked.WireMagic,
	Default: model.Config{Kind: model.KindBlockedBloom, Bloom: blocked.Params{
		WordBits: 64, BlockBits: 512, SectorBits: 64, Z: 2, K: 8, Magic: true,
	}},
	New: func(mc model.Config, mBits uint64) (registry.Filter, error) {
		f, err := blocked.New(mc.Bloom, mBits)
		if err != nil {
			return nil, err
		}
		return &blockedAdapter{f}, nil
	},
	Decode: func(data []byte) (registry.Filter, error) {
		f, err := blocked.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &blockedAdapter{f}, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		m, ok := f.(*blockedAdapter).f.(marshaler)
		if !ok {
			return nil, fmt.Errorf("perfilter: filter does not serialize")
		}
		return m.MarshalBinary()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*blockedAdapter)
		return ok
	},
	Mutable: true,
})
