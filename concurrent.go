package perfilter

import (
	"context"
	"fmt"
	"sync"

	"perfilter/internal/registry"
	"perfilter/internal/sharded"
)

// ConcurrentFilter is a Filter that is additionally safe for concurrent
// writers, and that can be rebuilt under live read traffic. NewSharded
// returns the hash-partitioned implementation.
type ConcurrentFilter interface {
	Filter
	// InsertConcurrent adds a key; unlike the base interface's Insert
	// (whose contract elsewhere requires external write synchronization),
	// it is documented safe to call from any number of goroutines. For
	// the sharded implementation the two are the same method.
	InsertConcurrent(key Key) error
	// NumShards returns the partition count.
	NumShards() int
	// Rotate atomically replaces the filter's contents with a freshly
	// built generation of mBits total bits (0 keeps the current size).
	// fill, if non-nil, is called before the swap with a concurrency-safe
	// insert into the staging generation, while readers continue on the
	// old one. Inserts that observe the staging generation (it is
	// published before fill starts, and every insert re-checks it as its
	// final step) are routed into both the retiring and the staging
	// generation and survive the swap; inserts that predate it survive
	// only if fill's source observes them — replay a key log that writers
	// append to before inserting, and no acknowledged write is lost.
	Rotate(mBits uint64, fill func(insert func(Key) error) error) error
	// Stats snapshots shard occupancy and rotation state.
	Stats() ShardStats
}

// ShardStats is a point-in-time snapshot of a sharded filter.
type ShardStats = sharded.Stats

// Sharded is the ConcurrentFilter implementation: cfg split across P
// hash-selected shards, each a standalone filter of mBits/P bits behind
// its own reader/writer lock, with batched probes scatter/gathered across
// shards and atomic generation rotation. See internal/sharded for the
// design.
type Sharded struct {
	s   *sharded.Filter
	cfg Config
	// mu serializes the wrapper-level rotate (its read-modify-write of
	// perShard) and the serialization snapshot, so a Marshal never pairs
	// one rotation's shard payloads with another's per-shard size.
	mu sync.Mutex
	// perShard is the current per-shard size request in bits, recorded so
	// serialization (serialize.go) can rebuild an equivalent factory on
	// restore; guarded by mu.
	perShard uint64
}

// NewSharded builds a sharded concurrent filter: cfg at (at least) mBits
// total, partitioned across the given shard count (rounded up to a power
// of two; <= 0 picks RecommendShards' default for this host and N ≈
// mBits/12). Each shard is an independent filter of mBits/P bits, so
// per-shard false-positive behaviour matches a standalone filter of that
// size holding 1/P of the keys. Unlike New, mBits is always interpreted
// as bits for the Exact kind (64 bits per slot), never as a capacity
// hint — splitting would otherwise flip a bits-sized request into the
// hint regime per shard.
func NewSharded(cfg Config, mBits uint64, shards int) (*Sharded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		// Estimate the key count the size implies: the sweep's 12
		// bits/key midpoint for approximate filters, 64 bits/slot for
		// exact sets.
		est := mBits / 12
		if cfg.Kind == Exact {
			est = mBits / 64
		}
		shards = RecommendShards(est, 0)
	}
	perShard, p := sharded.SplitBits(mBits, shards)
	if perShard == 0 {
		return nil, fmt.Errorf("perfilter: %d bits cannot be split across %d shards", mBits, p)
	}
	sh := &Sharded{cfg: cfg, perShard: perShard}
	s, err := sharded.New(sh.factory(perShard), p)
	if err != nil {
		return nil, err
	}
	sh.s = s
	return sh, nil
}

// factory builds one shard of the given size under the wrapper's current
// configuration; see factoryFor.
func (s *Sharded) factory(perShardBits uint64) sharded.Factory {
	return factoryFor(s.cfg, perShardBits)
}

// factoryFor builds one shard of the given size, in bits for every kind:
// the descriptor's NewShard override (the exact set's bits regime) takes
// precedence over its standalone constructor, so a small per-shard split
// never lands in New's below-2^16 capacity-hint regime. cfg is captured by
// value: the factory outlives the Rotate/Migrate call that installed it,
// and must keep building the generation it was made for even after a later
// Migrate changes the wrapper's configuration.
func factoryFor(cfg Config, perShardBits uint64) sharded.Factory {
	return func() (sharded.Inner, error) {
		mc, err := cfg.toModel()
		if err != nil {
			return nil, err
		}
		d := registry.Lookup(mc.Kind)
		if !d.Constructible() {
			return nil, fmt.Errorf("perfilter: no registered family for kind %s", cfg.Kind)
		}
		if d.NewShard != nil {
			return d.NewShard(mc, perShardBits)
		}
		return d.New(mc, perShardBits)
	}
}

// Insert implements Filter; it is safe for concurrent use (the interface
// comment's "writes need external synchronization" does not apply here).
func (s *Sharded) Insert(key Key) error { return s.s.Insert(key) }

// InsertConcurrent implements ConcurrentFilter; identical to Insert.
func (s *Sharded) InsertConcurrent(key Key) error { return s.s.Insert(key) }

// InsertBatch adds a batch of keys, taking each shard's write lock once
// per batch instead of once per key. It returns the number of keys
// inserted; on error the inserted keys are not an input-order prefix
// (keys are processed in shard order), so recover from ErrFull by
// rotating larger and replaying the batch.
func (s *Sharded) InsertBatch(keys []Key) (int, error) { return s.s.InsertBatch(keys) }

// InsertBatchCtx is InsertBatch with request-scoped tracing: a sampled
// span in ctx gains per-shard "shard.insert" children (see
// internal/sharded).
func (s *Sharded) InsertBatchCtx(ctx context.Context, keys []Key) (int, error) {
	return s.s.InsertBatchCtx(ctx, keys)
}

// Contains implements Filter.
func (s *Sharded) Contains(key Key) bool { return s.s.Contains(key) }

// ContainsBatch implements Filter: the probe batch is partitioned by
// shard, probed in parallel for large batches, and merged back into one
// ascending, position-preserving selection vector — byte-identical to
// probing the shards one at a time.
func (s *Sharded) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return s.s.ContainsBatch(keys, sel)
}

// ContainsBatchCtx is ContainsBatch with request-scoped tracing: a
// sampled span in ctx gains per-shard "shard.probe" children (see
// internal/sharded).
func (s *Sharded) ContainsBatchCtx(ctx context.Context, keys []Key, sel []uint32) []uint32 {
	return s.s.ContainsBatchCtx(ctx, keys, sel)
}

// SizeBits implements Filter (summed over shards).
func (s *Sharded) SizeBits() uint64 { return s.s.SizeBits() }

// FPR implements Filter: the per-shard model at n/P keys.
func (s *Sharded) FPR(n uint64) float64 { return s.s.FPR(n) }

// Reset implements Filter, clearing every shard in place.
func (s *Sharded) Reset() { s.s.Reset() }

// String implements Filter.
func (s *Sharded) String() string { return s.s.String() }

// NumShards implements ConcurrentFilter.
func (s *Sharded) NumShards() int { return s.s.NumShards() }

// Count returns the number of successful inserts into the current
// generation.
func (s *Sharded) Count() uint64 { return s.s.Count() }

// Generation returns the rotation sequence number (0 until the first
// Rotate).
func (s *Sharded) Generation() uint64 { return s.s.Generation() }

// Stats implements ConcurrentFilter.
func (s *Sharded) Stats() ShardStats { return s.s.Stats() }

// StorageAligned reports whether every shard's word storage is
// cache-line aligned (always true for filters built by NewSharded).
func (s *Sharded) StorageAligned() bool { return s.s.StorageAligned() }

// Close releases the filter's persistent batch-gather workers (see
// internal/sharded). The filter remains fully usable afterwards — large
// batches just run on their caller's goroutine. Optional: a finalizer
// performs the same teardown when the filter becomes unreachable.
func (s *Sharded) Close() { s.s.Close() }

// Skew reports the per-shard insert-count imbalance as max/mean
// (1 = perfectly even, P = all keys on one shard) — the balance
// diagnostic behind the server's shard-skew gauge.
func (s *Sharded) Skew() float64 { return s.s.Skew() }

// Rotate implements ConcurrentFilter: it builds a replacement generation
// of mBits total bits (0 keeps the current size) off to the side, runs
// fill against it if non-nil, then swaps it in with one atomic store.
// Readers never block, and the staging generation doubles as a dual-write
// target from before fill starts until after the swap: an insert whose
// final re-check observes the window is present afterwards. Inserts that
// complete before the window opens (including ones racing the new
// generation's construction) are dropped unless fill's source observes
// them — rotation replaces contents; pair fill with a key log that
// writers append to before inserting and every acknowledged key is
// retained.
func (s *Sharded) Rotate(mBits uint64, fill func(insert func(Key) error) error) error {
	return s.RotateCtx(context.Background(), mBits, fill)
}

// RotateCtx is Rotate with request-scoped tracing: a sampled span in ctx
// gains a "sharded.rotate" child (and "sharded.seal" grandchild for
// build-once kinds).
func (s *Sharded) RotateCtx(ctx context.Context, mBits uint64, fill func(insert func(Key) error) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var factory sharded.Factory
	perShard := s.perShard
	if mBits != 0 {
		var p int
		perShard, p = sharded.SplitBits(mBits, s.s.NumShards())
		if perShard == 0 {
			return fmt.Errorf("perfilter: %d bits cannot be split across %d shards", mBits, p)
		}
		factory = s.factory(perShard)
	}
	if err := s.s.RotateCtx(ctx, factory, fill); err != nil {
		return err
	}
	s.perShard = perShard
	return nil
}

// Migrate is a configuration-changing Rotate: it swaps in a freshly built
// generation of a *different* filter configuration (including a different
// Kind — Bloom→Cuckoo or Cuckoo→Bloom) at mBits total bits (0 keeps the
// current size), with the same losslessness contract as Rotate. fill
// repopulates the staged generation; because approximate filters cannot
// enumerate their keys, a kind change needs an external key source — pair
// fill with a key log that writers append to before inserting (what
// perfilter.NewAdaptive maintains) and no acknowledged write is lost. On
// error the filter is unchanged, still serving its previous configuration.
func (s *Sharded) Migrate(cfg Config, mBits uint64, fill func(insert func(Key) error) error) error {
	return s.MigrateCtx(context.Background(), cfg, mBits, fill)
}

// MigrateCtx is Migrate with request-scoped tracing (see RotateCtx).
func (s *Sharded) MigrateCtx(ctx context.Context, cfg Config, mBits uint64, fill func(insert func(Key) error) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	shards := s.s.NumShards()
	if mBits == 0 {
		mBits = s.perShard * uint64(shards)
	}
	perShard, p := sharded.SplitBits(mBits, shards)
	if perShard == 0 {
		return fmt.Errorf("perfilter: %d bits cannot be split across %d shards", mBits, p)
	}
	if err := s.s.RotateCtx(ctx, factoryFor(cfg, perShard), fill); err != nil {
		return err
	}
	s.cfg = cfg
	s.perShard = perShard
	return nil
}

// Config returns the per-shard filter configuration the wrapper currently
// serves (Migrate changes it).
func (s *Sharded) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// compile-time interface checks
var (
	_ Filter           = (*Sharded)(nil)
	_ ConcurrentFilter = (*Sharded)(nil)
)
