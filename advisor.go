package perfilter

import (
	"fmt"
	"math"
	"runtime"

	"perfilter/internal/model"
	"perfilter/internal/sharded"
)

// Platform selects the cost model behind Advise: the host's analytic model
// or one of the paper's Table 1 machines.
type Platform uint8

const (
	// PlatformHost models the detected host machine.
	PlatformHost Platform = iota
	// PlatformXeon models the Intel Xeon E5-2680v4 (AVX2).
	PlatformXeon
	// PlatformKNL models the Intel Xeon Phi 7210 (Knights Landing).
	PlatformKNL
	// PlatformSKX models the Intel i9-7900X (Skylake-X) — the paper's
	// default evaluation platform.
	PlatformSKX
	// PlatformRyzen models the AMD Ryzen Threadripper 1950X.
	PlatformRyzen
)

func (p Platform) machine() model.Machine {
	switch p {
	case PlatformXeon:
		return model.Xeon()
	case PlatformKNL:
		return model.KNL()
	case PlatformSKX:
		return model.SKX()
	case PlatformRyzen:
		return model.Ryzen()
	default:
		return model.HostMachine()
	}
}

// Workload describes the filtering decision's inputs (§2): how many keys
// the filter will hold, what a pruned probe saves, how often probes truly
// hit, and the memory budget.
type Workload struct {
	// N is the number of build-side keys the filter will represent.
	N uint64
	// Tw is the work saved per true-negative probe, in CPU cycles
	// (Figure 1 gives reference points: a cache miss ≈ 10^2, a network
	// tuple ≈ 10^4, an SSD read ≈ 10^5-10^6, a disk seek ≈ 10^7).
	Tw float64
	// Sigma is the fraction of probes that truly match (join hit rate).
	// Used for the is-filtering-beneficial test; 0 if unknown.
	Sigma float64
	// BitsPerKeyBudget caps the filter memory (the paper sweeps 4-20).
	// 0 defaults to 20.
	BitsPerKeyBudget float64
	// Platform selects the cost model (default: the host).
	Platform Platform
	// AllowExact additionally considers an exact hash set (~75 bits/key,
	// ignores the budget) — Figure 1's low-n/high-tw region.
	AllowExact bool
	// FullSpace enumerates the paper's complete configuration space
	// instead of the curated default subset (slower, marginally better).
	FullSpace bool
	// ReadMostly declares the key set effectively static after build,
	// making the immutable xor/fuse family eligible: it beats both
	// mutable families on bits-per-key and precision, but absorbing
	// writes takes a key-log rebuild, so the advisor offers it only when
	// writes are declared (or observed, by the adaptive control loop) to
	// be rare — at most ReadMostlyMaxInsertFraction of operations. Its
	// overhead additionally carries a rebuild surcharge amortized over
	// the lookup budget (model.XorBuildSurcharge).
	ReadMostly bool
}

// ReadMostlyMaxInsertFraction is the insert share (inserts over inserts
// plus probes, measured since the last migration) at or below which the
// adaptive control loop considers a tracked workload read-mostly and
// lets the advisor enumerate the immutable xor/fuse family.
const ReadMostlyMaxInsertFraction = 0.02

// Advice is the performance-optimal recommendation.
type Advice struct {
	// Config is the recommended configuration; build it with New(Config,
	// MBits).
	Config Config
	// MBits is the recommended filter size in bits.
	MBits uint64
	// FPR is the expected false-positive rate at that size.
	FPR float64
	// LookupCycles is the modeled lookup cost tl.
	LookupCycles float64
	// Overhead is ρ = tl + f·tw (Eq. 1), the per-probe cost of filtering.
	Overhead float64
	// Beneficial reports whether filtering helps at all given Sigma:
	// ρ < (1−σ)·tw (§2). A performance-optimal filter can still be a net
	// loss when almost every probe hits.
	Beneficial bool
	// Shards is the recommended NewSharded partition count for this
	// workload on this host (see RecommendShards); 1 means sharding buys
	// nothing and a plain New(Config, MBits) filter is preferable.
	Shards int
	// Model names the cost model used.
	Model string
}

// RecommendShards returns a shard count for NewSharded: the smallest
// power of two that gives every expected writer (writers <= 0 means
// GOMAXPROCS) a low-contention shard — 4× the writer count, the standard
// rule of thumb for striped locks — capped so each shard still holds a
// useful share of the n keys, and by sharded.MaxShards. Single-writer
// workloads (writers == 1, e.g. on a 1-CPU host) get 1: there is no
// contention to relieve, and an unsharded filter has strictly cheaper
// lookups. The policy lives in sharded.Recommend so the benchmark
// harness shares it.
func RecommendShards(n uint64, writers int) int {
	if writers <= 0 {
		writers = runtime.GOMAXPROCS(0)
	}
	return sharded.Recommend(n, writers)
}

// Advise returns the performance-optimal filter for the workload: the
// configuration and size minimizing ρ(F) = tl(F) + f(F)·tw over the
// paper's configuration space, subject to the memory budget and cuckoo
// load-factor feasibility.
func Advise(w Workload) (Advice, error) {
	if w.N == 0 {
		return Advice{}, fmt.Errorf("perfilter: workload needs N > 0")
	}
	if w.Tw < 0 || w.Sigma < 0 || w.Sigma > 1 {
		return Advice{}, fmt.Errorf("perfilter: invalid Tw or Sigma")
	}
	budget := w.BitsPerKeyBudget
	if budget == 0 {
		budget = 20
	}
	if budget < 4 {
		return Advice{}, fmt.Errorf("perfilter: budget below 4 bits/key is not in the model's validated range")
	}
	machine := w.Platform.machine()
	opts := model.DefaultSweepOpts()
	opts.MaxBitsPerKey = budget
	opts.MStepsPerOctave = 8
	if w.AllowExact {
		opts.MaxExactBytes = math.MaxUint64
	}
	grid := model.Grid{Ns: []uint64{w.N}, Tws: []float64{w.Tw}}
	kinds := model.EnumerableKinds(model.EnumHints{
		FullSpace:  w.FullSpace,
		AllowExact: w.AllowExact,
		ReadMostly: w.ReadMostly,
	})
	sky := model.ComputeSkyline(grid, model.ConfigsFor(kinds, w.FullSpace), machine, opts)
	_, best := sky.Cells[0][0].Winner(kinds...)
	if math.IsInf(best.Rho, 1) {
		return Advice{}, fmt.Errorf("perfilter: no feasible configuration within %.1f bits/key", budget)
	}
	mBits := best.MBits
	if best.Config.Kind == model.KindExact {
		mBits = model.ExactBits(w.N)
	}
	return Advice{
		Config:       fromModel(best.Config),
		MBits:        mBits,
		FPR:          best.F,
		LookupCycles: best.Tl,
		Overhead:     best.Rho,
		Beneficial:   model.Beneficial(best.Rho, w.Sigma, w.Tw),
		Shards:       RecommendShards(w.N, 0),
		Model:        machine.Name(),
	}, nil
}

// EvaluateOverhead models a *specific* configuration at a specific size
// under the workload, returning the same Advice fields Advise computes for
// its winner — the per-probe overhead ρ = tl + f·tw, the lookup cost tl
// and the analytic FPR at w.N keys. This is the comparison side of the
// adaptive control loop: Advise names the best configuration for the
// observed workload, EvaluateOverhead prices the configuration currently
// deployed, and the hysteresis policy migrates only when the gap is worth
// it. MBits and Shards in the returned Advice echo the inputs.
func EvaluateOverhead(w Workload, cfg Config, mBits uint64) (Advice, error) {
	if w.N == 0 {
		return Advice{}, fmt.Errorf("perfilter: workload needs N > 0")
	}
	if w.Tw < 0 || w.Sigma < 0 || w.Sigma > 1 {
		return Advice{}, fmt.Errorf("perfilter: invalid Tw or Sigma")
	}
	mc, err := cfg.toModel()
	if err != nil {
		return Advice{}, err
	}
	machine := w.Platform.machine()
	if mc.Kind == model.KindExact {
		mBits = model.ExactBits(w.N)
	}
	tl := machine.LookupCycles(mc, mBits)
	f := mc.FPR(mBits, w.N)
	rho := model.Overhead(tl, f, w.Tw)
	// Price a deployed immutable filter the same way Advise prices a
	// candidate one: its writes cost a key-log rebuild, amortized over the
	// lookup budget. Mutable families carry no surcharge (zero).
	rho += model.BuildSurchargeFor(mc.Kind, w.Tw)
	return Advice{
		Config:       cfg,
		MBits:        mBits,
		FPR:          f,
		LookupCycles: tl,
		Overhead:     rho,
		Beneficial:   model.Beneficial(rho, w.Sigma, w.Tw),
		Model:        machine.Name(),
	}, nil
}

// BuildAdvised is a convenience that runs Advise and constructs the
// recommended filter.
func BuildAdvised(w Workload) (Filter, Advice, error) {
	advice, err := Advise(w)
	if err != nil {
		return nil, Advice{}, err
	}
	f, err := New(advice.Config, advice.MBits)
	if err != nil {
		return nil, Advice{}, err
	}
	return f, advice, nil
}
