package perfilter

import (
	"perfilter/internal/model"
	"perfilter/internal/registry"
)

// Registry-derived kind vocabulary: the server's create/migrate paths and
// the CLIs resolve kind strings and enumerate valid kinds through these,
// so a newly registered family shows up everywhere without touching any
// of them.

// KindByName resolves a registered family name or alias to its Kind. The
// empty string is an alias for the blocked-Bloom default. Wire-only
// formats (counting, scalable, the sharded and adaptive envelopes) do not
// resolve: they are not constructible through New.
func KindByName(name string) (Kind, bool) {
	d := registry.ByName(name)
	if !d.Constructible() {
		return 0, false
	}
	return Kind(d.Kind), true
}

// KindNames returns the constructible family names in Kind order — the
// vocabulary KindByName accepts (plus aliases).
func KindNames() []string { return registry.KindNames() }

// DefaultConfig returns the family's headline default configuration (what
// the filter server builds when a create request names only the kind):
// the cache-sectorized blocked Bloom (B=512, S=64, z=2, k=8), the k=7
// classic filter, the (l=16, b=2) cuckoo filter, the 8-bit xor filter, or
// the exact set.
func DefaultConfig(k Kind) Config {
	if d := registry.Lookup(model.Kind(k)); d != nil {
		return fromModel(d.Default)
	}
	return Config{Kind: k}
}

// KindMutable reports whether the family absorbs inserts in place; the
// immutable xor/fuse family instead rebuilds from a key log (see
// XorFilter and the adaptive wrapper's migration path).
func KindMutable(k Kind) bool {
	d := registry.Lookup(model.Kind(k))
	return d == nil || d.Mutable
}
