package perfilter

import (
	"perfilter/internal/model"
	"perfilter/internal/registry"
	"perfilter/internal/xor"
)

// The immutable xor/fuse family: build-once (Mutable false — the adaptive
// control loop migrates back to a mutable family when writes resume) and
// Sealable (the sharded wrapper solves staged shards after a rotation's
// fill). The default is the 8-bit classic layout; no magic addressing —
// the table is sized by key count, not by an addressable budget.
var _ = registry.Register(registry.Descriptor{
	Kind:      model.KindXor,
	Name:      "xor",
	WireMagic: xor.WireMagic,
	Default: model.Config{Kind: model.KindXor, Xor: xor.Params{
		FingerprintBits: 8,
	}},
	New: func(mc model.Config, mBits uint64) (registry.Filter, error) {
		f, err := xor.New(mc.Xor, mBits)
		if err != nil {
			return nil, err
		}
		return &XorFilter{f}, nil
	},
	Decode: func(data []byte) (registry.Filter, error) {
		f, err := xor.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &XorFilter{f}, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*XorFilter).f.MarshalBinary()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*XorFilter)
		return ok
	},
	Mutable:  false,
	Sealable: true,
})
