package perfilter

import (
	"perfilter/internal/magic"
	"perfilter/internal/registry"
)

// The adaptive wrapper's envelope format: workload counters and the key
// log wrapped around an inner sharded envelope. Wire-only, like the
// sharded envelope it contains.
var _ = registry.Register(registry.Descriptor{
	Kind:      registry.NoKind,
	Name:      "adaptive",
	WireMagic: magic.WireAdaptive,
	Decode: func(data []byte) (registry.Filter, error) {
		f, err := UnmarshalAdaptive(data, AdaptiveOptions{})
		if err != nil {
			return nil, err
		}
		return f, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*Adaptive).marshalAdaptive()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*Adaptive)
		return ok
	},
	Mutable: true,
})
