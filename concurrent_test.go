package perfilter

import (
	"sync"
	"testing"

	"perfilter/internal/rng"
)

// The filters document "safe for concurrent readers": verify that a filter
// frozen after its build phase answers consistently from many goroutines.
// Run with -race for the full guarantee (the race detector sees any
// read/write overlap these tests would miss).
func TestConcurrentReaders(t *testing.T) {
	builders := map[string]func() (Filter, error){
		"register-blocked": func() (Filter, error) { return NewRegisterBlockedBloom(4, 1<<16) },
		"cache-sectorized": func() (Filter, error) { return NewCacheSectorizedBloom(8, 2, 1<<16) },
		"classic":          func() (Filter, error) { return NewClassicBloom(7, 1<<16) },
		"cuckoo": func() (Filter, error) {
			return NewCuckoo(16, 2, CuckooSizeForKeys(16, 2, 4000))
		},
		"exact": func() (Filter, error) { return NewExact(4000), nil },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f, err := build()
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(7)
			keys := make([]uint32, 4000)
			for i := range keys {
				keys[i] = r.Uint32()
				if err := f.Insert(keys[i]); err != nil {
					t.Fatal(err)
				}
			}
			// Reference answers, single-threaded.
			probe := make([]uint32, 2048)
			for i := range probe {
				if i%2 == 0 {
					probe[i] = keys[i%len(keys)]
				} else {
					probe[i] = r.Uint32()
				}
			}
			want := make([]bool, len(probe))
			for i, k := range probe {
				want[i] = f.Contains(k)
			}
			// Hammer from 8 goroutines: scalar and batched reads must both
			// reproduce the reference answers.
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					sel := make([]uint32, 0, len(probe))
					for rep := 0; rep < 50; rep++ {
						for i, k := range probe {
							if f.Contains(k) != want[i] {
								errs <- name + ": scalar answer changed under concurrency"
								return
							}
						}
						sel = f.ContainsBatch(probe, sel[:0])
						j := 0
						for i := range probe {
							got := j < len(sel) && sel[j] == uint32(i)
							if got != want[i] {
								errs <- name + ": batch answer changed under concurrency"
								return
							}
							if got {
								j++
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}
