package perfilter

import (
	"fmt"
	"sync"
	"testing"

	"perfilter/internal/rng"
)

// The filters document "safe for concurrent readers": verify that a filter
// frozen after its build phase answers consistently from many goroutines.
// Run with -race for the full guarantee (the race detector sees any
// read/write overlap these tests would miss).
func TestConcurrentReaders(t *testing.T) {
	builders := map[string]func() (Filter, error){
		"register-blocked": func() (Filter, error) { return NewRegisterBlockedBloom(4, 1<<16) },
		"cache-sectorized": func() (Filter, error) { return NewCacheSectorizedBloom(8, 2, 1<<16) },
		"classic":          func() (Filter, error) { return NewClassicBloom(7, 1<<16) },
		"cuckoo": func() (Filter, error) {
			return NewCuckoo(16, 2, CuckooSizeForKeys(16, 2, 4000))
		},
		"exact": func() (Filter, error) { return NewExact(4000), nil },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f, err := build()
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(7)
			keys := make([]uint32, 4000)
			for i := range keys {
				keys[i] = r.Uint32()
				if err := f.Insert(keys[i]); err != nil {
					t.Fatal(err)
				}
			}
			// Reference answers, single-threaded.
			probe := make([]uint32, 2048)
			for i := range probe {
				if i%2 == 0 {
					probe[i] = keys[i%len(keys)]
				} else {
					probe[i] = r.Uint32()
				}
			}
			want := make([]bool, len(probe))
			for i, k := range probe {
				want[i] = f.Contains(k)
			}
			// Hammer from 8 goroutines: scalar and batched reads must both
			// reproduce the reference answers.
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					sel := make([]uint32, 0, len(probe))
					for rep := 0; rep < 50; rep++ {
						for i, k := range probe {
							if f.Contains(k) != want[i] {
								errs <- name + ": scalar answer changed under concurrency"
								return
							}
						}
						sel = f.ContainsBatch(probe, sel[:0])
						j := 0
						for i := range probe {
							got := j < len(sel) && sel[j] == uint32(i)
							if got != want[i] {
								errs <- name + ": batch answer changed under concurrency"
								return
							}
							if got {
								j++
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}

// --- sharded concurrent filter ---

// equivalenceKinds is the full filter family NewSharded wraps.
func equivalenceKinds(n uint64) []struct {
	name  string
	cfg   Config
	mBits uint64
} {
	return []struct {
		name  string
		cfg   Config
		mBits uint64
	}{
		{"cache-sectorized", Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
			SectorBits: 64, Groups: 2, K: 8, Magic: true}, n * 16},
		{"register-blocked", Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 64,
			SectorBits: 64, Groups: 1, K: 4, Magic: true}, n * 16},
		{"classic", Config{Kind: ClassicBloom, K: 7, Magic: true}, n * 16},
		// Sized with headroom: shard key counts are binomial, and b=2
		// tables saturate at ~84% load.
		{"cuckoo", Config{Kind: Cuckoo, TagBits: 16, BucketSize: 2, Magic: true},
			CuckooSizeForKeys(16, 2, n+n/8)},
		{"exact", Config{Kind: Exact}, n * 128},
	}
}

// TestShardedEquivalence asserts the tentpole contract: for every filter
// kind, the sharded scatter/gather ContainsBatch returns a selection
// vector byte-identical to unsharded filters probed one key at a time —
// the per-shard standalone filters built with the same partition (the
// kernels and kick RNGs are deterministic, so shard i and its reference
// receive identical insert sequences and hold identical state).
func TestShardedEquivalence(t *testing.T) {
	n := uint64(1_000_000)
	if testing.Short() {
		n = 100_000
	}
	const shards = 8
	for _, k := range equivalenceKinds(n) {
		k := k
		t.Run(k.name, func(t *testing.T) {
			sh, err := NewSharded(k.cfg, k.mBits, shards)
			if err != nil {
				t.Fatal(err)
			}
			if sh.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", sh.NumShards(), shards)
			}
			refs := make([]Filter, shards)
			for i := range refs {
				if refs[i], err = New(k.cfg, k.mBits/shards); err != nil {
					t.Fatal(err)
				}
			}
			r := rng.NewMT19937(2024)
			for i := uint64(0); i < n; i++ {
				key := r.Uint32() | 1
				if err := sh.InsertConcurrent(key); err != nil {
					t.Fatalf("sharded insert %d: %v", i, err)
				}
				if err := refs[sh.s.ShardOf(key)].Insert(key); err != nil {
					t.Fatalf("reference insert %d: %v", i, err)
				}
			}
			// Probe n keys, half inserted, half never-inserted.
			probe := make([]Key, n)
			for i := range probe {
				if i%2 == 0 {
					probe[i] = r.Uint32() | 1
				} else {
					probe[i] = r.Uint32() &^ 1
				}
			}
			got := sh.ContainsBatch(probe, nil)
			want := make([]uint32, 0, len(probe))
			for i, key := range probe {
				if refs[sh.s.ShardOf(key)].Contains(key) {
					want = append(want, uint32(i))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("selection length %d, reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("selection[%d] = %d, reference %d", i, got[i], want[i])
				}
			}
			// The exact kind has no false positives, so its sharded output
			// must additionally byte-match one monolithic unsharded filter.
			if k.cfg.Kind == Exact {
				mono := NewExact(int(n))
				r2 := rng.NewMT19937(2024)
				for i := uint64(0); i < n; i++ {
					if err := mono.Insert(r2.Uint32() | 1); err != nil {
						t.Fatal(err)
					}
				}
				monoSel := mono.ContainsBatch(probe, nil)
				if len(monoSel) != len(got) {
					t.Fatalf("exact: sharded %d selections, unsharded %d", len(got), len(monoSel))
				}
				for i := range got {
					if got[i] != monoSel[i] {
						t.Fatalf("exact: selection[%d] = %d, unsharded %d", i, got[i], monoSel[i])
					}
				}
			}
		})
	}
}

// TestShardedConcurrentInsertProbe hammers InsertConcurrent and
// ContainsBatch on one sharded filter from many goroutines; run with
// -race for the full guarantee.
func TestShardedConcurrentInsertProbe(t *testing.T) {
	sh, err := NewSharded(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}, 1<<22, 8)
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers, perWriter = 4, 4, 10_000
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			r := rng.NewMT19937(uint32(1000 + w))
			for i := 0; i < perWriter; i++ {
				k := r.Uint32()
				if err := sh.InsertConcurrent(k); err != nil {
					errs <- err
					return
				}
				if !sh.Contains(k) {
					errs <- fmt.Errorf("writer %d: key %d not visible after insert", w, k)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			r := rng.NewMT19937(uint32(2000 + g))
			probe := make([]Key, 1024)
			sel := make([]uint32, 0, len(probe))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range probe {
					probe[i] = r.Uint32()
				}
				sel = sh.ContainsBatch(probe, sel[:0])
				for i := 1; i < len(sel); i++ {
					if sel[i] <= sel[i-1] {
						errs <- fmt.Errorf("reader %d: selection vector not ascending", g)
						return
					}
				}
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := sh.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
}

// TestShardedRotationUnderLoad rotates a sharded filter repeatedly while
// readers hammer it. A pinned key set is re-inserted by each rotation's
// fill, so it must stay visible in every generation; reads must never
// block or observe a torn shard array (the race detector checks the
// latter).
func TestShardedRotationUnderLoad(t *testing.T) {
	sh, err := NewSharded(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}, 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(77)
	pinned := make([]Key, 10_000)
	for i := range pinned {
		pinned[i] = r.Uint32()
		if err := sh.InsertConcurrent(pinned[i]); err != nil {
			t.Fatal(err)
		}
	}
	const readers = 4
	var readerWG sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			sel := make([]uint32, 0, len(pinned))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sel = sh.ContainsBatch(pinned, sel[:0])
				// Pinned keys live in every generation: a shorter
				// selection vector would be a false negative.
				if len(sel) != len(pinned) {
					errs <- fmt.Errorf("reader %d: %d of %d pinned keys visible", g, len(sel), len(pinned))
					return
				}
			}
		}(g)
	}
	const rotations = 20
	for rot := 1; rot <= rotations; rot++ {
		err := sh.Rotate(0, func(insert func(Key) error) error {
			for _, k := range pinned {
				if err := insert(k); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if sh.Generation() != uint64(rot) {
			t.Fatalf("generation = %d after rotation %d", sh.Generation(), rot)
		}
	}
	close(stop)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := sh.Count(); got != uint64(len(pinned)) {
		t.Fatalf("Count = %d after final rotation, want %d", got, len(pinned))
	}
	// Resizing rotation: double the bits, keys preserved by fill.
	if err := sh.Rotate(1<<21, func(insert func(Key) error) error {
		for _, k := range pinned {
			if err := insert(k); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sh.SizeBits() < 1<<21 {
		t.Fatalf("SizeBits = %d after resizing rotation to %d", sh.SizeBits(), 1<<21)
	}
	sel := sh.ContainsBatch(pinned, nil)
	if len(sel) != len(pinned) {
		t.Fatalf("%d of %d pinned keys survived the resizing rotation", len(sel), len(pinned))
	}
}

// TestInsertBatchErrFullRecovery pins the documented ErrFull contract:
// the keys inserted before a cuckoo shard saturates are NOT an
// input-order prefix (the batch is applied shard by shard), and the
// documented recovery — rotate to a larger generation and replay the
// whole batch — recovers every key.
func TestInsertBatchErrFullRecovery(t *testing.T) {
	// A deliberately undersized sharded cuckoo filter: 8 shards sized for
	// ~4k keys total, fed a 40k-key batch.
	const n = 40_000
	sh, err := NewSharded(Config{Kind: Cuckoo, TagBits: 16, BucketSize: 4, Magic: true},
		CuckooSizeForKeys(16, 4, n/10), 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(23)
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	inserted, err := sh.InsertBatch(keys)
	if err == nil {
		t.Fatalf("undersized cuckoo absorbed all %d keys", n)
	}
	if inserted == 0 || inserted >= n {
		t.Fatalf("inserted = %d of %d on ErrFull", inserted, n)
	}
	// Non-prefix: at least one key beyond position `inserted` made it in
	// before the saturating shard errored — because the batch is applied
	// in shard order, not input order. (Cuckoo filters have no false
	// negatives, so Contains is authoritative here; a tail key answering
	// true in a mostly-empty filter is a contained key, not noise.)
	tailHit := false
	for _, k := range keys[inserted:] {
		if sh.Contains(k) {
			tailHit = true
			break
		}
	}
	if !tailHit {
		t.Fatal("inserted keys form an input-order prefix; the documented non-prefix semantics no longer hold")
	}
	// Documented recovery: rotate to a larger generation and replay the
	// whole batch. Every key must land this time.
	if err := sh.Rotate(CuckooSizeForKeys(16, 4, n+n/8), nil); err != nil {
		t.Fatal(err)
	}
	replayed, err := sh.InsertBatch(keys)
	if err != nil {
		t.Fatalf("replay after rotate-larger failed: %v", err)
	}
	if replayed != n {
		t.Fatalf("replay inserted %d of %d", replayed, n)
	}
	sel := sh.ContainsBatch(keys, nil)
	if len(sel) != n {
		t.Fatalf("%d of %d keys present after rotate-and-replay", len(sel), n)
	}
}

func TestRecommendShards(t *testing.T) {
	if got := RecommendShards(1<<20, 8); got != 32 {
		t.Errorf("RecommendShards(1M, 8) = %d, want 32 (4 stripes per writer)", got)
	}
	// A single writer has no contention to relieve.
	if got := RecommendShards(1<<20, 1); got != 1 {
		t.Errorf("RecommendShards(1M, 1) = %d, want 1", got)
	}
	// Tiny workloads collapse to fewer shards than writers ask for.
	if got := RecommendShards(4096, 64); got != 1 {
		t.Errorf("RecommendShards(4096, 64) = %d, want 1", got)
	}
	if got := RecommendShards(1<<30, 1<<20); got > 1024 {
		t.Errorf("RecommendShards(1G, 1M) = %d, exceeds MaxShards", got)
	}
	// The advisor surfaces the recommendation.
	advice, err := Advise(Workload{N: 1 << 20, Tw: 500})
	if err != nil {
		t.Fatal(err)
	}
	if advice.Shards < 1 {
		t.Errorf("Advice.Shards = %d", advice.Shards)
	}
}
