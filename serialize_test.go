package perfilter

import (
	"bytes"
	"strings"
	"testing"

	"perfilter/internal/rng"
)

// roundTripKeys is the property-test scale: 1M keys, the paper's standard
// problem size (cut under -short to keep the race runs fast).
func roundTripKeys(t *testing.T) int {
	if testing.Short() {
		return 100_000
	}
	return 1_000_000
}

// buildKeys returns n deterministic build keys and a probe batch that
// mixes inserted and never-inserted keys.
func buildKeys(n int) (build, probe []Key) {
	r := rng.NewMT19937(9001)
	build = make([]Key, n)
	for i := range build {
		build[i] = r.Uint32() | 1
	}
	probe = make([]Key, n)
	for i := range probe {
		if i%2 == 0 {
			probe[i] = build[(i*7)%n]
		} else {
			probe[i] = r.Uint32() &^ 1
		}
	}
	return build, probe
}

// TestMarshalRoundTripAllKinds is the serialization property test: every
// filter kind satisfies Marshal → Unmarshal → byte-identical ContainsBatch
// selection vectors on the full key set.
func TestMarshalRoundTripAllKinds(t *testing.T) {
	n := roundTripKeys(t)
	build, probe := buildKeys(n)
	un := uint64(n)
	cases := []struct {
		name  string
		build func() (Filter, error)
	}{
		{"cache-sectorized", func() (Filter, error) { return NewCacheSectorizedBloom(8, 2, un*16) }},
		{"register-blocked", func() (Filter, error) { return NewRegisterBlockedBloom(2, un*16) }},
		{"blocked-512", func() (Filter, error) { return NewBlockedBloom(8, un*16) }},
		{"classic", func() (Filter, error) { return NewClassicBloom(7, un*16) }},
		{"counting", func() (Filter, error) {
			f, err := NewCountingBloom(8, un*16)
			return f, err
		}},
		{"scalable", func() (Filter, error) {
			f, err := NewScalableBloom(un/8, 0.01)
			return f, err
		}},
		{"cuckoo", func() (Filter, error) {
			f, err := NewCuckoo(16, 4, CuckooSizeForKeys(16, 4, un))
			return f, err
		}},
		{"exact", func() (Filter, error) { return NewExact(n), nil }},
		{"xor8", func() (Filter, error) { return New(Config{Kind: Xor, FingerprintBits: 8}, 0) }},
		{"fuse16", func() (Filter, error) { return New(Config{Kind: Xor, FingerprintBits: 16, Fuse: true}, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range build {
				if err := f.Insert(k); err != nil {
					t.Fatal(err)
				}
			}
			// The build-once family serializes (and probes) its solved
			// table; seal it the way a sharded rotation would.
			if x, ok := f.(*XorFilter); ok {
				if err := x.Seal(); err != nil {
					t.Fatal(err)
				}
			}
			data, err := Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.String() != f.String() || back.SizeBits() != f.SizeBits() {
				t.Fatalf("metadata changed: %q/%d vs %q/%d",
					back.String(), back.SizeBits(), f.String(), f.SizeBits())
			}
			want := f.ContainsBatch(probe, nil)
			got := back.ContainsBatch(probe, nil)
			if len(got) != len(want) {
				t.Fatalf("selection length %d after round trip, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("selection[%d] = %d after round trip, want %d", i, got[i], want[i])
				}
			}
			// The round trip must be byte-stable: re-marshaling the restored
			// filter reproduces the wire image exactly.
			again, err := Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatal("re-marshaled bytes differ from the original encoding")
			}
		})
	}
}

// TestMarshalRoundTripSharded covers the envelope format: every sharded
// kind round-trips with identical probe selections, preserved stats, and
// a still-working rotation path afterwards.
func TestMarshalRoundTripSharded(t *testing.T) {
	n := roundTripKeys(t)
	build, probe := buildKeys(n)
	un := uint64(n)
	cases := []struct {
		name  string
		cfg   Config
		mBits uint64
	}{
		{"bloom", Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
			SectorBits: 64, Groups: 2, K: 8, Magic: true}, un * 16},
		{"classic", Config{Kind: ClassicBloom, K: 7, Magic: true}, un * 16},
		{"cuckoo", Config{Kind: Cuckoo, TagBits: 16, BucketSize: 4, Magic: true},
			CuckooSizeForKeys(16, 4, un) * 115 / 100},
		{"exact", Config{Kind: Exact}, un * 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewSharded(tc.cfg, tc.mBits, 8)
			if err != nil {
				t.Fatal(err)
			}
			// Rotate once so the envelope records a non-zero sequence, then
			// fill the live generation through the batch path.
			if err := f.Rotate(0, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := f.InsertBatch(build); err != nil {
				t.Fatal(err)
			}
			data, err := Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			back, ok := got.(*Sharded)
			if !ok {
				t.Fatalf("envelope deserialized to %T", got)
			}
			if back.NumShards() != f.NumShards() || back.Generation() != f.Generation() ||
				back.Count() != f.Count() || back.SizeBits() != f.SizeBits() ||
				back.Config() != f.Config() {
				t.Fatalf("restored wrapper state differs: %s vs %s", back, f)
			}
			want := f.ContainsBatch(probe, nil)
			sel := back.ContainsBatch(probe, nil)
			if len(sel) != len(want) {
				t.Fatalf("selection length %d after round trip, want %d", len(sel), len(want))
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("selection[%d] = %d after round trip, want %d", i, sel[i], want[i])
				}
			}
			// Rotation still works on the restored wrapper (the factory was
			// rebuilt from the envelope's configuration).
			if err := back.Rotate(0, nil); err != nil {
				t.Fatal(err)
			}
			if back.Generation() != f.Generation()+1 {
				t.Fatalf("generation %d after post-restore rotation", back.Generation())
			}
		})
	}
}

// TestUnmarshalReportsDecoderError pins the dispatch fix: a payload that
// names a kind but fails to decode must surface that kind's error, not a
// generic "unrecognized encoding" (the old behaviour tried decoders in
// sequence and swallowed the real failure).
func TestUnmarshalReportsDecoderError(t *testing.T) {
	f, err := NewCacheSectorizedBloom(8, 2, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the version byte: the magic still says "blocked", so the
	// blocked decoder must be the one that reports.
	corrupt := bytes.Clone(data)
	corrupt[4] = 0xFF
	_, err = Unmarshal(corrupt)
	if err == nil {
		t.Fatal("corrupt payload accepted")
	}
	if !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("corrupt blocked payload reported %q, want the blocked decoder's error", err)
	}
	// Truncated body, same story.
	_, err = Unmarshal(data[:len(data)-3])
	if err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("truncated blocked payload reported %v, want the blocked decoder's error", err)
	}
}

// TestExactUnmarshalRejectsUnboundedDist pins the decode-time bound on
// Robin Hood probe distances: a crafted payload with dist values larger
// than the table must be rejected, or Contains on the restored set would
// never hit its termination condition and spin forever.
func TestExactUnmarshalRejectsUnboundedDist(t *testing.T) {
	f := NewExact(10)
	for i := uint32(1); i <= 10; i++ {
		f.Insert(i)
	}
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	evil := bytes.Clone(data)
	// Overwrite every slot's dist (second uint32 of each 8-byte slot
	// record, after the 16-byte header) with MaxUint32.
	for off := 16 + 4; off+4 <= len(evil); off += 8 {
		for i := 0; i < 4; i++ {
			evil[off+i] = 0xFF
		}
	}
	if _, err := Unmarshal(evil); err == nil {
		t.Fatal("unbounded probe distances accepted")
	}
	// And a count inconsistent with the occupied slots is rejected too.
	evil = bytes.Clone(data)
	evil[12], evil[13], evil[14], evil[15] = 0, 0, 0, 0 // count = 0
	if _, err := Unmarshal(evil); err == nil {
		t.Fatal("count/occupancy mismatch accepted")
	}
}

// TestShardedEnvelopeRejectsCorruption exercises the envelope's bounds
// checks: truncations and nonsense headers error out instead of panicking.
func TestShardedEnvelopeRejectsCorruption(t *testing.T) {
	f, err := NewSharded(Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1000; i++ {
		if err := f.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += len(data) / 37 {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	bad := bytes.Clone(data)
	bad[5] = 200 // nonsense kind byte
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("nonsense kind accepted")
	}
	if _, err := Unmarshal(append(bytes.Clone(data), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
