package perfilter

import "testing"

// TestStorageAlignedAllKinds is the cache-line alignment property test:
// every constructible kind allocates its word storage through the
// internal/mem aligned allocator, and deserialization restores that
// guarantee — a filter must never lose its alignment (and with it the
// one-line-per-probe property of the blocked kernels, §3–4 of the paper)
// by going through a Marshal/Unmarshal round trip.
func TestStorageAlignedAllKinds(t *testing.T) {
	const n = 10_000
	build, _ := buildKeys(n)
	const un = uint64(n)
	cases := []struct {
		name  string
		build func() (Filter, error)
	}{
		{"cache-sectorized", func() (Filter, error) { return NewCacheSectorizedBloom(8, 2, un*16) }},
		{"register-blocked", func() (Filter, error) { return NewRegisterBlockedBloom(2, un*16) }},
		{"sectorized", func() (Filter, error) { return NewSectorizedBloom(8, un*16) }},
		{"blocked-512", func() (Filter, error) { return NewBlockedBloom(8, un*16) }},
		{"classic", func() (Filter, error) { return NewClassicBloom(7, un*16) }},
		{"counting", func() (Filter, error) {
			f, err := NewCountingBloom(8, un*16)
			return f, err
		}},
		{"scalable", func() (Filter, error) {
			f, err := NewScalableBloom(un/8, 0.01)
			return f, err
		}},
		{"cuckoo", func() (Filter, error) {
			f, err := NewCuckoo(16, 4, CuckooSizeForKeys(16, 4, un))
			return f, err
		}},
		{"exact", func() (Filter, error) { return NewExact(n), nil }},
		{"xor8", func() (Filter, error) { return New(Config{Kind: Xor, FingerprintBits: 8}, 0) }},
		{"fuse16", func() (Filter, error) { return New(Config{Kind: Xor, FingerprintBits: 16, Fuse: true}, 0) }},
	}
	assertAligned := func(t *testing.T, f Filter, when string) {
		t.Helper()
		a, ok := f.(interface{ StorageAligned() bool })
		if !ok {
			t.Fatalf("%s: %T does not report storage alignment", when, f)
		}
		if !a.StorageAligned() {
			t.Fatalf("%s: %T word storage is not cache-line aligned", when, f)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			assertAligned(t, f, "fresh")
			for _, k := range build {
				if err := f.Insert(k); err != nil {
					t.Fatal(err)
				}
			}
			if x, ok := f.(*XorFilter); ok {
				if err := x.Seal(); err != nil {
					t.Fatal(err)
				}
			}
			// Growth / sealing must not regress alignment (exact grows its
			// table, scalable appends stages, xor solves into fresh arrays).
			assertAligned(t, f, "loaded")
			data, err := Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			assertAligned(t, back, "after round trip")
		})
	}
}

// TestStorageAlignedSharded covers the concurrency plane: every shard of
// a Sharded (and the Adaptive wrapper around it) reports aligned storage,
// both freshly built and restored from the envelope format.
func TestStorageAlignedSharded(t *testing.T) {
	const n = 10_000
	build, _ := buildKeys(n)
	cfg := Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}
	s, err := NewSharded(cfg, uint64(n)*16, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range build {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if !s.StorageAligned() {
		t.Fatal("sharded: some shard's word storage is not cache-line aligned")
	}
	data, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSharded(data)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if !back.StorageAligned() {
		t.Fatal("sharded: alignment lost across the envelope round trip")
	}

	a, err := NewAdaptive(cfg, uint64(n)*16, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !a.StorageAligned() {
		t.Fatal("adaptive: word storage is not cache-line aligned")
	}
}
