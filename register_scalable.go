package perfilter

import (
	"perfilter/internal/registry"
	"perfilter/internal/scalable"
)

// The scalable-Bloom extension, like counting, is a wire-only
// registration: it serializes through the registry but sits outside the
// advised Kind space.
var _ = registry.Register(registry.Descriptor{
	Kind:      registry.NoKind,
	Name:      "scalable",
	WireMagic: scalable.WireMagic,
	Decode: func(data []byte) (registry.Filter, error) {
		f, err := scalable.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return &ScalableBloomFilter{f}, nil
	},
	Marshal: func(f registry.Filter) ([]byte, error) {
		return f.(*ScalableBloomFilter).f.MarshalBinary()
	},
	Owns: func(f registry.Filter) bool {
		_, ok := f.(*ScalableBloomFilter)
		return ok
	},
	Mutable: true,
})
