// Filter-server client walkthrough: starts the server in-process on a
// loopback port, then drives it the way a remote client would — create a
// filter from a workload description, push keys through the binary insert
// plane, probe a batch, read stats, rotate the filter under traffic,
// migrate it and read the decision trace, scrape /metrics and /healthz,
// and finally snapshot it and "restart" into a second server that
// restores the filter with identical probe results.
//
// The server's own control-plane events (create, rotate, migrate,
// snapshot) appear interleaved on stderr as log/slog lines — that is the
// structured logging the observability layer replaces log.Printf with.
//
//	go run ./examples/filterserver
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"perfilter/internal/server"
)

func main() {
	// Serve on an ephemeral loopback port with a throwaway snapshot
	// directory. A real deployment runs cmd/filter-server -data-dir
	// instead; everything below is plain HTTP either way.
	dataDir, err := os.MkdirTemp("", "filterserver-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(server.Options{DataDir: dataDir}).Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("filter-server at", base)

	// Control plane: create a filter sized by the paper's cost model for
	// n=1M keys where each pruned probe saves ~500 cycles.
	info := postJSON(base+"/v1/filters", map[string]any{
		"name":   "users",
		"advise": map[string]any{"n": 1_000_000, "tw": 500, "bits_per_key": 16},
	})
	fmt.Printf("created %q: %s, %.0f KiB, %v shards\n",
		info["name"], info["config"], info["size_bits"].(float64)/8192, info["shards"])

	// Data plane: insert 1M keys, 64 KiB (16k keys) per request.
	key := func(i uint32) uint32 { return i*0x9E3779B1 + 7 }
	const n, batch = 1_000_000, 16_384
	buf := make([]byte, 4*batch)
	for lo := uint32(0); lo < n; lo += batch {
		for i := uint32(0); i < batch; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], key(lo+i))
		}
		resp, err := http.Post(base+"/v1/filters/users/insert", "application/octet-stream", bytes.NewReader(buf))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("insert batch at %d: status %d", lo, resp.StatusCode)
		}
	}
	fmt.Printf("inserted %d keys\n", n)

	// Probe a mixed batch: even positions hold inserted keys, odd ones
	// keys that were never inserted.
	probe := make([]byte, 4*1024)
	for i := uint32(0); i < 1024; i++ {
		k := key((i * 997) % n)
		if i%2 == 1 {
			k = 0x80000000 + i // outside the inserted stream
		}
		binary.LittleEndian.PutUint32(probe[4*i:], k)
	}
	resp, err := http.Post(base+"/v1/filters/users/probe", "application/octet-stream", bytes.NewReader(probe))
	if err != nil {
		log.Fatal(err)
	}
	sel, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("probe: status %d err %v", resp.StatusCode, err)
	}
	hits, falsePos := 0, 0
	for i := 0; i+4 <= len(sel); i += 4 {
		if pos := binary.LittleEndian.Uint32(sel[i:]); pos%2 == 0 {
			hits++
		} else {
			falsePos++
		}
	}
	fmt.Printf("probe batch of 1024: %d true candidates, %d false positives (selection vector = %d positions)\n",
		hits, falsePos, len(sel)/4)

	// Stats, then rotate to a fresh generation while the filter stays
	// servable, and confirm the old keys are gone.
	stats := getJSON(base + "/v1/filters/users")
	fmt.Printf("stats: count=%v generation=%v fpr=%.2g\n",
		stats["filter"].(map[string]any)["count"],
		stats["filter"].(map[string]any)["generation"],
		stats["filter"].(map[string]any)["fpr_at_count"])

	rot := postJSON(base+"/v1/filters/users/rotate", map[string]any{})
	fmt.Printf("rotated: generation=%v count=%v\n", rot["generation"], rot["count"])

	// The fresh generation no longer contains the old keys: re-probing
	// the same batch should select (almost) nothing.
	resp, err = http.Post(base+"/v1/filters/users/probe", "application/octet-stream", bytes.NewReader(probe))
	if err != nil {
		log.Fatal(err)
	}
	sel, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("post-rotation probe: status %d err %v", resp.StatusCode, err)
	}
	fmt.Printf("probe after rotation: %d of 1024 keys still selected\n", len(sel)/4)

	// Observability: liveness with build identity, then a /metrics scrape.
	// Every layer exports to the same exposition — the server's batch-plane
	// latency histograms, the sharded layer's rotation timings, and the
	// adaptive control loop's migration counters.
	health := getJSON(base + "/healthz")
	fmt.Printf("healthz: status=%v go=%v uptime=%.1fs\n",
		health["status"], health["go_version"], health["uptime_seconds"])
	metResp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	exposition, _ := io.ReadAll(metResp.Body)
	metResp.Body.Close()
	fmt.Println("selected /metrics lines:")
	for _, line := range strings.Split(string(exposition), "\n") {
		if strings.HasPrefix(line, "perfilter_server_keys_total") ||
			strings.HasPrefix(line, "perfilter_server_filter_shard_skew") ||
			strings.HasPrefix(line, "perfilter_sharded_rotations_total") ||
			strings.HasPrefix(line, "perfilter_server_probe_duration_ns_count") {
			fmt.Println("  " + line)
		}
	}

	// Force one migration so the decision trace has an entry, then read
	// it back: each decision records the tracked window, the modeled
	// ρ comparison and whether the filter migrated.
	postJSON(base+"/v1/filters/users/migrate", map[string]any{"force": true})
	trace := getJSON(base + "/v1/filters/users/trace")
	fmt.Printf("decision trace: %v total decision(s)\n", trace["total"])
	if ds, ok := trace["decisions"].([]any); ok {
		for _, raw := range ds {
			d := raw.(map[string]any)
			fmt.Printf("  %v -> %v migrated=%v (%v)\n",
				d["current"], d["best"], d["migrated"], d["reason"])
		}
	}

	// Durability: refill the rotated filter, snapshot it to the data dir,
	// then "restart" — a second server restoring from the same directory
	// answers the same probe with byte-identical results.
	for lo := uint32(0); lo < n; lo += batch {
		for i := uint32(0); i < batch; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], key(lo+i))
		}
		resp, err := http.Post(base+"/v1/filters/users/insert", "application/octet-stream", bytes.NewReader(buf))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	snap := postJSON(base+"/v1/filters/users/snapshot", map[string]any{})
	fmt.Printf("snapshot: %.0f KiB at %v\n", snap["bytes"].(float64)/1024, snap["path"])
	before, err := http.Post(base+"/v1/filters/users/probe", "application/octet-stream", bytes.NewReader(probe))
	if err != nil {
		log.Fatal(err)
	}
	selBefore, _ := io.ReadAll(before.Body)
	before.Body.Close()

	reg2 := server.New(server.Options{DataDir: dataDir})
	if _, err := reg2.LoadAll(); err != nil {
		log.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln2, reg2.Handler())
	base2 := "http://" + ln2.Addr().String()
	after, err := http.Post(base2+"/v1/filters/users/probe", "application/octet-stream", bytes.NewReader(probe))
	if err != nil {
		log.Fatal(err)
	}
	selAfter, _ := io.ReadAll(after.Body)
	after.Body.Close()
	fmt.Printf("restored server at %s: probe selections byte-identical across restart: %v\n",
		base2, bytes.Equal(selBefore, selAfter))
}

func postJSON(url string, body map[string]any) map[string]any {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: status %d: %v", url, resp.StatusCode, out)
	}
	return out
}

func getJSON(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}
