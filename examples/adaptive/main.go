// Command adaptive demonstrates online re-optimization: the paper's
// advisor answers "which filter?" once, at build time — but its answer
// depends on n, and n moves. An adaptive filter tracks its own workload
// (inserts, probes, observed hit fraction), periodically re-runs the
// advisor against what it *saw*, and migrates itself — size and kind,
// Bloom↔Cuckoo — losslessly when the modeled overhead win clears a
// hysteresis margin.
//
// The demo streams keys into a filter advised for n=4096 at tw=400 (the
// Cuckoo regime) until it holds 16× the modeled Bloom/Cuckoo crossover
// point, printing every decision the control loop takes along the way.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"perfilter"
)

func main() {
	const tw = 400 // cycles saved per pruned probe: the crossover regime
	start := uint64(4096)

	a, advice, err := perfilter.NewAdaptiveAdvised(perfilter.AdaptiveOptions{
		Workload: perfilter.Workload{N: start, Tw: tw, Sigma: 0.05, BitsPerKeyBudget: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advised for n=%d at tw=%d: %s (%d bits), modeled overhead %.2f cycles/probe\n",
		start, tw, advice.Config, advice.MBits, advice.Overhead)

	// Find where the static advisor flips to Bloom, so we can grow past it.
	crossover := start
	for {
		adv, err := perfilter.Advise(perfilter.Workload{N: crossover, Tw: tw, BitsPerKeyBudget: 16})
		if err != nil {
			log.Fatal(err)
		}
		if adv.Config.Kind == perfilter.BlockedBloom {
			break
		}
		crossover *= 2
	}
	fmt.Printf("the model says Bloom overtakes Cuckoo at n=%d\n\n", crossover)

	// Stream keys in waves; after each wave, one control-loop pass. In a
	// server you would instead set AdaptiveOptions.Interval (or run
	// filter-server -autotune) and let the background tuner pace this.
	var n perfilter.Key
	batch := make([]perfilter.Key, 2048)
	for uint64(n) < 2*crossover {
		for i := range batch {
			batch[i] = n + perfilter.Key(i)
		}
		if _, err := a.InsertBatch(batch); err != nil {
			log.Fatal(err)
		}
		n += perfilter.Key(len(batch))
		if _, err := a.Reoptimize(); err != nil {
			log.Fatal(err)
		}
		// Probes feed the σ estimate (and are what the filter is for).
		a.ContainsBatch(batch[:512], nil)
	}

	fmt.Println("control-loop decisions that migrated the filter:")
	for _, d := range a.Decisions() {
		if !d.Migrated {
			continue
		}
		fmt.Printf("  n=%-8d %s -> %s  (%s)\n", d.N, d.Current, d.Best, d.Reason)
	}

	// Losslessness: every inserted key is still claimed present.
	all := make([]perfilter.Key, n)
	for i := range all {
		all[i] = perfilter.Key(i)
	}
	sel := a.ContainsBatch(all, nil)
	fmt.Printf("\nfinal: n=%d kind=%s size=%d bits; %d/%d inserted keys present (no false negatives)\n",
		n, a.Config().Kind, a.SizeBits(), len(sel), len(all))

	adv, err := a.Advice()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advice against the tracked workload (n=%d, sigma=%.3f): %s — %s\n",
		adv.Workload.N, adv.Workload.Sigma, adv.Best.Config, adv.Reason)
}
