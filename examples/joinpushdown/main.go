// Join pushdown: the paper's motivating scenario (Fig. 2). A fact table
// probes a hash table built from a filtered dimension table; pushing an
// approximate filter into the scan eliminates non-joining tuples before
// they incur per-tuple pipeline work. The example sweeps the join hit rate
// σ and shows where filtering pays off and where it backfires (σ → 1).
//
//	go run ./examples/joinpushdown
package main

import (
	"fmt"
	"log"
	"time"

	"perfilter"
)

// dimension/fact sizes and the per-tuple pipeline work the filter can save.
// The work must exceed the filter's own overhead ρ for pushdown to pay
// (§2: install iff ρ < (1−σ)·tw); ~500 cycles models a short pre-join
// pipeline segment (decompression + expression evaluation).
const (
	dimKeys   = 50_000
	factRows  = 1_000_000
	workIters = 500 // ≈ cycles of pre-join work per surviving tuple
)

func main() {
	fmt.Println("selective join pushdown (Fig. 2 scenario)")
	fmt.Printf("dimension=%d keys, fact=%d rows, per-tuple work ≈%d cycles\n\n",
		dimKeys, factRows, workIters)
	fmt.Printf("%8s %12s %12s %10s %10s\n",
		"sigma", "no-filter", "with-filter", "speedup", "passed")

	for _, sigma := range []float64{0.01, 0.05, 0.25, 0.5, 0.9, 1.0} {
		runPoint(sigma)
	}
	fmt.Println("\nfiltering helps while rho < (1-sigma)*tw; at sigma→1 it backfires (§2).")
}

func runPoint(sigma float64) {
	dim := make([]uint32, dimKeys)
	members := make(map[uint32]bool, dimKeys)
	for i := range dim {
		k := uint32(i)*2654435761 + 99
		dim[i] = k
		members[k] = true
	}
	ht := buildHashTable(dim)

	// Fact rows: a sigma fraction join, the rest never do.
	fact := make([]uint32, factRows)
	hit := uint32(sigma * (1 << 24))
	rngState := uint32(7)
	for i := range fact {
		rngState = rngState*1664525 + 1013904223
		if rngState>>8&(1<<24-1) < hit {
			fact[i] = dim[rngState%dimKeys]
		} else {
			fact[i] = rngState | 1<<31 // disjoint key space
		}
	}

	// The advisor's pick for this regime (high throughput, low tw) is a
	// register-blocked Bloom filter: cheapest lookups, adequate precision.
	filter, err := perfilter.NewRegisterBlockedBloom(4, dimKeys*12)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range dim {
		filter.Insert(k)
	}

	noFilter, matches1 := pipeline(fact, ht, nil)
	withFilter, matches2 := pipeline(fact, ht, filter)
	if matches1 != matches2 {
		log.Fatalf("filter changed the join result: %d vs %d", matches1, matches2)
	}
	passed := 0
	sel := filter.ContainsBatch(fact[:65536], nil)
	passed = len(sel)
	fmt.Printf("%8.2f %12v %12v %9.2fx %9.1f%%\n",
		sigma, noFilter.Round(time.Millisecond), withFilter.Round(time.Millisecond),
		float64(noFilter)/float64(withFilter), 100*float64(passed)/65536)
}

// pipeline scans the fact table in vectors, optionally filters, burns the
// per-tuple work for survivors, and probes the join hash table.
func pipeline(fact []uint32, ht *hashTable, filter perfilter.Filter) (time.Duration, uint64) {
	const batch = 1024
	var matches uint64
	var sink uint64
	sel := make([]uint32, 0, batch)
	start := time.Now()
	for off := 0; off < len(fact); off += batch {
		end := min(off+batch, len(fact))
		vec := fact[off:end]
		if filter != nil {
			sel = filter.ContainsBatch(vec, sel[:0])
			for _, pos := range sel {
				sink += work(workIters)
				if ht.probe(vec[pos]) {
					matches++
				}
			}
		} else {
			for _, k := range vec {
				sink += work(workIters)
				if ht.probe(k) {
					matches++
				}
			}
		}
	}
	_ = sink
	return time.Since(start), matches
}

// work burns ~n cycles of serially dependent ALU work (stand-in for
// decompression, expression evaluation, exchange…).
//
//go:noinline
func work(n int) uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		x += x >> 17
	}
	return x
}

// hashTable is a minimal linear-probing join table.
type hashTable struct {
	keys []uint32
	used []bool
	mask uint32
}

func buildHashTable(keys []uint32) *hashTable {
	size := uint32(16)
	for float64(size)*0.7 < float64(len(keys)) {
		size <<= 1
	}
	ht := &hashTable{keys: make([]uint32, size), used: make([]bool, size), mask: size - 1}
	for _, k := range keys {
		idx := k * 2654435761 & ht.mask
		for ht.used[idx] {
			if ht.keys[idx] == k {
				break
			}
			idx = (idx + 1) & ht.mask
		}
		ht.keys[idx], ht.used[idx] = k, true
	}
	return ht
}

func (ht *hashTable) probe(k uint32) bool {
	idx := k * 2654435761 & ht.mask
	for ht.used[idx] {
		if ht.keys[idx] == k {
			return true
		}
		idx = (idx + 1) & ht.mask
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
