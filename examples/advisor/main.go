// Advisor: ask the performance model which filter to use for the
// workloads of Figure 1 — from avoiding a CPU cache miss (high throughput,
// Bloom territory) through network tuples and SSD reads (Cuckoo territory)
// to small problems with huge savings (exact-structure territory).
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"perfilter"
)

func main() {
	type scenario struct {
		name string
		w    perfilter.Workload
	}
	scenarios := []scenario{
		{"join pushdown (avoid a cache miss)", perfilter.Workload{
			N: 10_000_000, Tw: 150, Sigma: 0.10, Platform: perfilter.PlatformSKX}},
		{"distributed semi-join (network tuple)", perfilter.Workload{
			N: 1_000_000, Tw: 10_000, Sigma: 0.05, Platform: perfilter.PlatformSKX}},
		{"LSM run skipping (NVMe read)", perfilter.Workload{
			N: 200_000, Tw: 300_000, Sigma: 0.02, Platform: perfilter.PlatformSKX}},
		{"cold-storage index (disk seek, small n)", perfilter.Workload{
			N: 20_000, Tw: 20_000_000, Sigma: 0.02,
			Platform: perfilter.PlatformSKX, AllowExact: true}},
		{"filter would backfire (σ≈1)", perfilter.Workload{
			N: 1_000_000, Tw: 150, Sigma: 0.98, Platform: perfilter.PlatformSKX}},
	}

	fmt.Println("performance-optimal filtering advisor (cost model: Skylake-X preset)")
	for _, sc := range scenarios {
		advice, err := perfilter.Advise(sc.w)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "install"
		if !advice.Beneficial {
			verdict = "do NOT filter"
		}
		fmt.Printf("\n%s\n  n=%d  tw=%.0f cycles  σ=%.2f\n", sc.name, sc.w.N, sc.w.Tw, sc.w.Sigma)
		fmt.Printf("  → %s at %.1f bits/key (f=%.2g, tl=%.1f cyc, ρ=%.1f cyc) — %s\n",
			advice.Config, float64(advice.MBits)/float64(sc.w.N),
			advice.FPR, advice.LookupCycles, advice.Overhead, verdict)
	}

	// Build the recommendation for the first scenario and use it.
	f, advice, err := perfilter.BuildAdvised(scenarios[0].w)
	if err != nil {
		log.Fatal(err)
	}
	f.Insert(12345)
	fmt.Printf("\nbuilt the first recommendation (%s): contains(12345)=%v, contains(777)=%v\n",
		advice.Config, f.Contains(12345), f.Contains(777))
}
