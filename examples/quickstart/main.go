// Quickstart: build a filter, insert keys, probe scalar and batched, and
// compare the measured false-positive rate against the analytic model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"perfilter"
)

func main() {
	const n = 100_000
	const bitsPerKey = 16

	// The paper's headline Bloom variant: cache-sectorized, k=8, z=2.
	f, err := perfilter.NewCacheSectorizedBloom(8, 2, n*bitsPerKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter: %s, %d bits (%.1f KiB)\n",
		f, f.SizeBits(), float64(f.SizeBits())/8/1024)

	// Insert n keys. (Any deterministic stream works for the demo; the
	// multiplier is chosen unrelated to the filter's internal hashing so
	// the measured FPR reflects random-key behaviour.)
	key := func(i uint32) uint32 { return i*0x85EBCA6B + 12345 }
	for i := uint32(0); i < n; i++ {
		if err := f.Insert(key(i)); err != nil {
			log.Fatal(err)
		}
	}

	// Scalar probes: inserted keys are always found.
	if !f.Contains(key(0)) || !f.Contains(key(n-1)) {
		log.Fatal("false negative — impossible")
	}

	// Batched probes produce a selection vector of candidate positions:
	// the interface the paper's vectorized pipelines consume.
	probe := []uint32{key(1), 42, key(2), 43, key(3)}
	sel := f.ContainsBatch(probe, nil)
	fmt.Printf("batch probe %v -> candidate positions %v\n", probe, sel)

	// Measured vs modeled false-positive rate, probing well-mixed keys
	// disjoint from the inserted stream (inserted keys are ≡ 12345 mod the
	// odd multiplier's orbit; a xorshift stream collides only negligibly).
	fp := 0
	const probes = 1_000_000
	x := uint32(0xDEADBEEF)
	for i := 0; i < probes; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		if f.Contains(x) {
			fp++
		}
	}
	fmt.Printf("false-positive rate: measured %.5f, model %.5f\n",
		float64(fp)/probes, f.FPR(n))

	// The same memory spent on a cuckoo filter buys a lower FPR — at a
	// higher lookup cost. That trade-off is the subject of the paper.
	cf, err := perfilter.NewCuckoo(16, 2, perfilter.CuckooSizeForKeys(16, 2, n))
	if err != nil {
		log.Fatal(err)
	}
	for i := uint32(0); i < n; i++ {
		if err := cf.Insert(key(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cuckoo alternative: %s, %.1f bits/key, model FPR %.6f, load %.2f\n",
		cf, float64(cf.SizeBits())/n, cf.FPR(n), cf.LoadFactor())
}
