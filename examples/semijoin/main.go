// Distributed semi-join: before shuffling probe tuples between MPP
// workers, the build side broadcasts a Bloom filter so tuples without a
// join partner are never serialized or sent (§1, the Impala-style exchange
// optimization). The network here is in-process channels with byte
// accounting; the cost saved per suppressed tuple corresponds to the
// "tuple over network (amortized)" reference point of Figure 1.
//
//	go run ./examples/semijoin
package main

import (
	"fmt"
	"log"
	"sync"

	"perfilter"
)

const (
	workers    = 4
	buildKeys  = 100_000
	probeRows  = 2_000_000
	sigma      = 0.08 // fraction of probe rows with a join partner
	tupleBytes = 12   // serialized probe tuple (key + rowid)
)

// message is one exchange transfer to a worker.
type message struct {
	tuples []uint32
}

func main() {
	build, probe := makeData()

	fmt.Printf("distributed semi-join: %d workers, %d build keys, %d probe rows, σ=%.2f\n\n",
		workers, buildKeys, probeRows, sigma)

	shippedPlain, matchesPlain := exchange(build, probe, nil)
	filters := buildFilters(build)
	shippedFiltered, matchesFiltered := exchange(build, probe, filters)

	if matchesPlain != matchesFiltered {
		log.Fatalf("filter changed the join result: %d vs %d", matchesPlain, matchesFiltered)
	}

	var filterBytes uint64
	for _, f := range filters {
		filterBytes += f.SizeBits() / 8
	}
	filterBytes *= workers // broadcast: every probe node receives all filters

	fmt.Printf("%-22s %14s %14s\n", "", "no filter", "bloom broadcast")
	fmt.Printf("%-22s %14d %14d\n", "tuples shipped", shippedPlain, shippedFiltered)
	fmt.Printf("%-22s %13.1fM %13.1fM\n", "bytes on the wire",
		float64(shippedPlain*tupleBytes)/1e6, float64(shippedFiltered*tupleBytes)/1e6)
	fmt.Printf("%-22s %14s %13.1fM\n", "filter broadcast", "-", float64(filterBytes)/1e6)
	fmt.Printf("%-22s %14d %14d\n", "join matches", matchesPlain, matchesFiltered)
	saved := float64(shippedPlain-shippedFiltered)*tupleBytes - float64(filterBytes)
	fmt.Printf("\nnet bytes saved: %.1f MB (%.0f%% of the exchange)\n",
		saved/1e6, 100*saved/float64(shippedPlain*tupleBytes))
}

// makeData builds the key sets: build keys are odd, non-joining probe keys
// even, so membership is exact by construction.
func makeData() ([]uint32, []uint32) {
	build := make([]uint32, buildKeys)
	for i := range build {
		build[i] = (uint32(i)*2654435761 + 17) | 1
	}
	probe := make([]uint32, probeRows)
	state := uint32(99)
	sigmaRuntime := float64(sigma)
	hit := uint32(sigmaRuntime * (1 << 24))
	for i := range probe {
		state = state*1664525 + 1013904223
		if state>>8&(1<<24-1) < hit {
			probe[i] = build[state%buildKeys]
		} else {
			probe[i] = state &^ 1
		}
	}
	return build, probe
}

// buildFilters creates one filter per worker partition.
func buildFilters(build []uint32) []perfilter.Filter {
	filters := make([]perfilter.Filter, workers)
	parts := make([][]uint32, workers)
	for _, k := range build {
		w := partition(k)
		parts[w] = append(parts[w], k)
	}
	for w := range filters {
		f, err := perfilter.NewCacheSectorizedBloom(8, 2, uint64(len(parts[w])+1)*16)
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range parts[w] {
			f.Insert(k)
		}
		filters[w] = f
	}
	return filters
}

func partition(k uint32) int {
	return int(uint64(k*2654435761) * workers >> 32)
}

// exchange routes probe tuples to their owning worker (suppressing
// non-candidates when filters are present), then each worker probes its
// build partition concurrently.
func exchange(build, probe []uint32, filters []perfilter.Filter) (shipped, matches uint64) {
	// Per-worker build-side membership.
	tables := make([]map[uint32]bool, workers)
	for w := range tables {
		tables[w] = make(map[uint32]bool)
	}
	for _, k := range build {
		tables[partition(k)][k] = true
	}

	// Route and (optionally) filter.
	outbox := make([]message, workers)
	const batch = 1024
	sel := make([]uint32, 0, batch)
	byWorker := make([][]uint32, workers)
	for _, k := range probe {
		w := partition(k)
		byWorker[w] = append(byWorker[w], k)
	}
	for w := 0; w < workers; w++ {
		if filters == nil {
			outbox[w].tuples = byWorker[w]
			continue
		}
		kept := make([]uint32, 0, len(byWorker[w])/4)
		keys := byWorker[w]
		for off := 0; off < len(keys); off += batch {
			end := off + batch
			if end > len(keys) {
				end = len(keys)
			}
			vec := keys[off:end]
			sel = filters[w].ContainsBatch(vec, sel[:0])
			for _, pos := range sel {
				kept = append(kept, vec[pos])
			}
		}
		outbox[w].tuples = kept
	}

	// "Send" and probe concurrently.
	results := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var m uint64
			for _, k := range outbox[w].tuples {
				if tables[w][k] {
					m++
				}
			}
			results[w] = m
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		shipped += uint64(len(outbox[w].tuples))
		matches += results[w]
	}
	return shipped, matches
}
