// LSM-tree point lookups: the high-tw use case (Fig. 1 right side). Every
// sorted run carries a filter; negative probes that the filter rejects
// save one (simulated) storage read. Because a storage read costs ~10^5+
// cycles, precision matters more than lookup cost here — the regime where
// the paper finds cuckoo filters beat blocked Bloom filters.
//
//	go run ./examples/lsmtree
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"perfilter"
)

const (
	runsCount  = 8
	keysPerRun = 200_000
	probes     = 60_000
	// Simulated storage read: ~50k cycles ≈ a fast NVMe read.
	readWork = 50_000
	// Equal memory budget for both filters, chosen so the cuckoo variant
	// (l=16, b=2) is feasible: ≈19.1 bits/key.
	bitsPerKey = 20
)

// run is one immutable sorted run plus its filter.
type run struct {
	keys   []uint32
	filter perfilter.Filter
}

func main() {
	fmt.Printf("LSM tree: %d runs × %d keys, %d negative probes, read ≈%d cycles\n\n",
		runsCount, keysPerRun, probes, readWork)
	fmt.Printf("%-24s %10s %10s %12s %12s\n",
		"per-run filter", "reads", "wasted", "elapsed", "model-fpr")

	for _, mode := range []string{"none", "bloom", "cuckoo"} {
		runPoint(mode)
	}
	fmt.Println("\ncuckoo's lower f avoids more wasted reads: at this tw it wins (Fig. 1).")
}

func runPoint(mode string) {
	runs := make([]*run, runsCount)
	for ri := range runs {
		keys := make([]uint32, keysPerRun)
		for i := range keys {
			// Odd keys only; probes use even keys → all probes negative.
			keys[i] = (uint32(ri*keysPerRun+i)*2654435761 + 1) | 1
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		r := &run{keys: keys}
		switch mode {
		case "bloom":
			f, err := perfilter.NewCacheSectorizedBloom(8, 2, keysPerRun*bitsPerKey)
			if err != nil {
				log.Fatal(err)
			}
			for _, k := range keys {
				f.Insert(k)
			}
			r.filter = f
		case "cuckoo":
			f, err := perfilter.NewCuckoo(16, 2, keysPerRun*bitsPerKey)
			if err != nil {
				log.Fatal(err)
			}
			for _, k := range keys {
				if err := f.Insert(k); err != nil {
					log.Fatal(err)
				}
			}
			r.filter = f
		}
		runs[ri] = r
	}

	var reads, wasted uint64
	var sink uint64
	start := time.Now()
	for i := 0; i < probes; i++ {
		key := uint32(i) * 7 &^ 1 // even → never present
		for _, r := range runs {
			if r.filter != nil && !r.filter.Contains(key) {
				continue // saved a storage read
			}
			reads++
			sink += work(readWork)
			idx := sort.Search(len(r.keys), func(j int) bool { return r.keys[j] >= key })
			if idx >= len(r.keys) || r.keys[idx] != key {
				wasted++
			}
		}
	}
	elapsed := time.Since(start)
	_ = sink

	modelFPR := "-"
	if runs[0].filter != nil {
		modelFPR = fmt.Sprintf("%.6f", runs[0].filter.FPR(keysPerRun))
	}
	fmt.Printf("%-24s %10d %10d %12v %12s\n",
		mode, reads, wasted, elapsed.Round(time.Millisecond), modelFPR)
}

//go:noinline
func work(n int) uint64 {
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < n; i++ {
		x += x >> 17
	}
	return x
}
