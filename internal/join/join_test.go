package join

import (
	"testing"

	"perfilter/internal/blocked"
	"perfilter/internal/cuckoo"
	"perfilter/internal/workload"
)

func setup(t *testing.T, n, probes int, sigma float64) (*workload.BuildProbe, *HashTable) {
	t.Helper()
	bp := workload.NewBuildProbe(n, probes, sigma, 11)
	ht := BuildHashTable(bp.Build, Payloads(bp.Build))
	return bp, ht
}

func TestHashTableProbe(t *testing.T) {
	keys := []uint32{1, 2, 3, 1 << 30}
	ht := BuildHashTable(keys, Payloads(keys))
	for _, k := range keys {
		p, ok := ht.Probe(k)
		if !ok || p != uint64(k)*2654435761+1 {
			t.Fatalf("probe %d: ok=%v payload=%d", k, ok, p)
		}
	}
	if _, ok := ht.Probe(999); ok {
		t.Fatal("phantom match")
	}
	if ht.Len() != 4 {
		t.Fatalf("Len=%d", ht.Len())
	}
}

func TestHashTableDuplicatesKeepFirst(t *testing.T) {
	ht := BuildHashTable([]uint32{5, 5}, []uint64{10, 20})
	p, ok := ht.Probe(5)
	if !ok || p != 10 {
		t.Fatalf("dup handling: ok=%v p=%d", ok, p)
	}
	if ht.Len() != 1 {
		t.Fatalf("Len=%d", ht.Len())
	}
}

func TestHashTableMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildHashTable([]uint32{1}, nil)
}

func TestPipelineWithoutFilter(t *testing.T) {
	bp, ht := setup(t, 2000, 10000, 0.25)
	res := Run(bp.Probe, ht, Config{TwUnits: 10})
	if res.Scanned != 10000 || res.AfterFilter != 10000 {
		t.Fatalf("scan counts wrong: %+v", res)
	}
	if res.Matches != 2500 {
		t.Fatalf("matches=%d want 2500 (σ=0.25)", res.Matches)
	}
}

// TestFilterNeverChangesResults is the correctness core of pushdown: an
// approximate filter with no false negatives must leave the join result
// (match count and aggregate) bit-identical.
func TestFilterNeverChangesResults(t *testing.T) {
	bp, ht := setup(t, 4000, 20000, 0.1)
	filters := map[string]interface {
		ContainsBatch([]uint32, []uint32) []uint32
	}{}
	bf, err := blocked.New(blocked.CacheSectorizedParams(64, 512, 2, 8, true), uint64(len(bp.Build)*16))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range bp.Build {
		bf.Insert(k)
	}
	filters["bloom"] = bf
	cf, err := cuckoo.New(cuckoo.Params{TagBits: 16, BucketSize: 2, Magic: true},
		cuckoo.Params{TagBits: 16, BucketSize: 2}.SizeForKeys(uint64(len(bp.Build))))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range bp.Build {
		if err := cf.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	filters["cuckoo"] = cf

	base := Run(bp.Probe, ht, Config{TwUnits: 0})
	for name, f := range filters {
		got := Run(bp.Probe, ht, Config{Filter: f, TwUnits: 0})
		if got.Matches != base.Matches || got.Agg != base.Agg {
			t.Fatalf("%s: result changed: %+v vs %+v", name, got, base)
		}
		if got.AfterFilter >= got.Scanned {
			t.Fatalf("%s: filter eliminated nothing at σ=0.1", name)
		}
		if got.AfterFilter < got.Matches {
			t.Fatalf("%s: filter dropped joinable tuples", name)
		}
	}
}

func TestFilterEliminationRate(t *testing.T) {
	// At σ=0.1 with f≈0.4%, the filter should pass ≈ σ + f of tuples.
	bp, ht := setup(t, 8000, 40000, 0.1)
	bf, _ := blocked.New(blocked.CacheSectorizedParams(64, 512, 2, 8, false), uint64(len(bp.Build)*16))
	for _, k := range bp.Build {
		bf.Insert(k)
	}
	res := Run(bp.Probe, ht, Config{Filter: bf, TwUnits: 0})
	passRate := float64(res.AfterFilter) / float64(res.Scanned)
	f := bf.FPR(uint64(len(bp.Build)))
	want := 0.1 + f*0.9
	if passRate < want*0.9 || passRate > want*1.1+0.01 {
		t.Fatalf("pass rate %.4f, want ≈%.4f", passRate, want)
	}
	_ = ht
}

func TestSpeedupAtLowSelectivity(t *testing.T) {
	// The end-to-end claim: with σ=0.05 and meaningful per-tuple work,
	// pushdown must make the pipeline faster.
	bp, ht := setup(t, 4000, 50000, 0.05)
	bf, _ := blocked.New(blocked.RegisterBlockedParams(64, 4, false), uint64(len(bp.Build)*12))
	for _, k := range bp.Build {
		bf.Insert(k)
	}
	speedup, with, without := SelectivitySweepPoint(bp.Probe, ht, bf, 400)
	if with.Matches != without.Matches {
		t.Fatal("filter changed results")
	}
	if speedup < 1.5 {
		t.Fatalf("speedup %.2f at σ=0.05, tw=400; expected >1.5×", speedup)
	}
}

func TestNoSpeedupAtFullSelectivity(t *testing.T) {
	// σ=1: every tuple joins; the filter only adds overhead (§1's
	// "backfire" case). The speedup must hover at or below ~1.
	bp, ht := setup(t, 4000, 30000, 1.0)
	bf, _ := blocked.New(blocked.RegisterBlockedParams(64, 4, false), uint64(len(bp.Build)*12))
	for _, k := range bp.Build {
		bf.Insert(k)
	}
	speedup, with, _ := SelectivitySweepPoint(bp.Probe, ht, bf, 200)
	if with.AfterFilter != with.Scanned {
		t.Fatal("filter dropped matching tuples at σ=1")
	}
	if speedup > 1.15 {
		t.Fatalf("speedup %.2f at σ=1 — impossible", speedup)
	}
}

func TestBatchBoundaries(t *testing.T) {
	bp, ht := setup(t, 100, 2049, 0.5) // probe size not a batch multiple
	res := Run(bp.Probe, ht, Config{Batch: 1024})
	if res.Scanned != 2049 {
		t.Fatalf("scanned %d", res.Scanned)
	}
	res2 := Run(bp.Probe, ht, Config{Batch: 7})
	if res2.Matches != res.Matches || res2.Agg != res.Agg {
		t.Fatal("batch size changed results")
	}
}

func BenchmarkPipeline(b *testing.B) {
	bp := workload.NewBuildProbe(1<<14, 1<<16, 0.05, 3)
	ht := BuildHashTable(bp.Build, Payloads(bp.Build))
	bf, _ := blocked.New(blocked.CacheSectorizedParams(64, 512, 2, 8, false), uint64(len(bp.Build)*16))
	for _, k := range bp.Build {
		bf.Insert(k)
	}
	b.Run("no-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(bp.Probe, ht, Config{TwUnits: 100})
		}
	})
	b.Run("bloom-pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(bp.Probe, ht, Config{Filter: bf, TwUnits: 100})
		}
	})
}
