package blocked

import (
	"fmt"
	"math/bits"

	"perfilter/internal/core"
	"perfilter/internal/hashing"
	"perfilter/internal/magic"
	"perfilter/internal/mem"
	"perfilter/internal/rng"
)

// Word constrains the machine word type a filter is built on.
type Word interface {
	~uint32 | ~uint64
}

// Probe is the type-erased view of a blocked Bloom filter, independent of
// the word type. All filters in the repository satisfy a compatible batched
// contract (see core.BatchProber).
type Probe interface {
	core.BatchProber
	// Insert adds a key. Inserts never fail for Bloom filters.
	Insert(key core.Key)
	// Contains reports whether key may be in the set (no false negatives).
	Contains(key core.Key) bool
	// SizeBits returns the actual filter size in bits after rounding.
	SizeBits() uint64
	// NumBlocks returns the block count the addressing resolves into.
	NumBlocks() uint32
	// Params returns the configuration.
	Params() Params
	// FPR returns the analytic expected false-positive rate with n keys.
	FPR(n uint64) float64
	// PopCount returns the number of set bits (for load diagnostics).
	PopCount() uint64
	// Reset clears the filter.
	Reset()
}

// Filter is a blocked Bloom filter over word type W. Use New to construct a
// validated instance.
type Filter[W Word] struct {
	params Params
	words  []W

	numBlocks uint32
	blockMask uint32        // power-of-two addressing
	dv        magic.Divider // magic addressing

	// Derived constants, hoisted out of the per-key loops.
	wordBits      uint32
	wordsPerBlock uint32
	sectors       uint32 // s = B/S
	groups        uint32 // z
	secPerGroup   uint32 // g = s/z
	kPerGroup     uint32 // k/z
	log2Sector    uint32 // log2(S)
	log2Group     uint32 // log2(g); 0 bits consumed when g == 1
	log2Word      uint32 // log2(W)
	sectorMask    uint32 // S-1, for sub-word sector offsets

	// Chunked hash-bit drawing: bit-address fields are consumed from the
	// sink fieldsPerChunk at a time (one Next per chunk) and extracted
	// with independent shifts, shortening the serial dependency through
	// the sink's word. All code paths (Insert, Contains, batch kernels)
	// share drawMask/drawPositions, so the consumed bit stream — and
	// therefore every answer — is identical across paths.
	fieldsPerChunk uint32 // fields per 32-bit draw: 32 / log2(S)
	chunkBits      uint32 // fieldsPerChunk · log2(S)

	// Draw plan: the paper compiles one branch-free function per filter
	// configuration (§5); the equivalent here is precomputing, per draw,
	// which hash word and shift the bits come from. The plan replays the
	// sink's consumption (including its refill boundaries) so kernels can
	// evaluate all draws as independent shifts of at most planWords
	// precomputed hash words — no serial dependency, no branches.
	// TestBatchMatchesScalar pins the equivalence to the sink paths.
	planWords      uint32         // hash words one lookup needs (≤ 6)
	blockLoc       drawLoc        // 32-bit block-address draw
	secLoc         [16]drawLoc    // per group: sector-select draw
	chunkLoc       [16][6]drawLoc // per group: chunk draws
	chunksPerGroup uint32         // chunk draws per group
	groupMask      uint32         // secPerGroup − 1
	chunkMask      uint32         // (1 << chunkBits) − 1
}

// drawLoc addresses one hash-bit draw: bits [shift, shift+width) of hash
// word `word`, counted from bit 0 (i.e. value = hw[word] >> shift & mask).
type drawLoc struct {
	word  uint8
	shift uint8
}

// New builds a filter of the requested size (in bits) with the given
// parameters. The size is rounded up to whole blocks, and then to the next
// power-of-two block count (power-of-two addressing) or the next class-(ii)
// magic divisor (magic addressing). The actual size is available via
// SizeBits.
func New(p Params, mBits uint64) (Probe, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mBits == 0 {
		return nil, fmt.Errorf("blocked: size must be positive")
	}
	if p.WordBits == 32 {
		return newFilter[uint32](p, mBits)
	}
	return newFilter[uint64](p, mBits)
}

func newFilter[W Word](p Params, mBits uint64) (*Filter[W], error) {
	f := &Filter[W]{params: p}
	f.wordBits = p.WordBits
	f.wordsPerBlock = p.WordsPerBlock()
	f.sectors = p.Sectors()
	f.groups = p.Z
	f.secPerGroup = f.sectors / f.groups
	f.kPerGroup = p.K / p.Z
	f.log2Sector = log2u32(p.SectorBits)
	f.log2Group = log2u32(f.secPerGroup)
	f.log2Word = log2u32(p.WordBits)
	f.sectorMask = p.SectorBits - 1
	f.fieldsPerChunk = 32 / f.log2Sector
	if f.fieldsPerChunk > f.kPerGroup {
		f.fieldsPerChunk = f.kPerGroup
	}
	f.chunkBits = f.fieldsPerChunk * f.log2Sector
	f.groupMask = f.secPerGroup - 1
	f.chunkMask = uint32(1)<<f.chunkBits - 1
	f.buildPlan()

	blocks := (mBits + uint64(p.BlockBits) - 1) / uint64(p.BlockBits)
	if blocks == 0 {
		blocks = 1
	}
	if p.Magic {
		if blocks > 0xFFFFFFFF {
			return nil, fmt.Errorf("blocked: %d blocks exceed 2^32", blocks)
		}
		f.dv = magic.Next(uint32(blocks))
		f.numBlocks = f.dv.D()
	} else {
		pow := nextPow2u64(blocks)
		if pow >= 1<<32 {
			return nil, fmt.Errorf("blocked: %d blocks exceed addressing range", pow)
		}
		f.numBlocks = uint32(pow)
		f.blockMask = uint32(pow) - 1
	}
	// Cache-line-aligned storage: blocks are sized in cache-line
	// multiples (or even fractions), so with element 0 on a 64-byte
	// boundary no block straddles a line — the single-access probe cost
	// the paper's layout assumes.
	f.words = mem.Aligned[W](int(uint64(f.numBlocks) * uint64(f.wordsPerBlock)))
	return f, nil
}

// NewMisaligned is New with the storage alignment guarantee deliberately
// broken (element 0 sits one word past a cache-line boundary, so
// line-sized blocks straddle two lines). It exists solely as the control
// arm of the aligned-vs-misaligned benchmark in internal/bench; no
// production caller should use it.
func NewMisaligned(p Params, mBits uint64) (Probe, error) {
	pr, err := New(p, mBits)
	if err != nil {
		return nil, err
	}
	switch f := pr.(type) {
	case *Filter[uint32]:
		f.words = mem.Misaligned[uint32](len(f.words))
	case *Filter[uint64]:
		f.words = mem.Misaligned[uint64](len(f.words))
	}
	return pr, nil
}

// StorageAligned reports whether the word array starts on a cache-line
// boundary (always true for filters from New; false only for
// NewMisaligned's benchmark control).
func (f *Filter[W]) StorageAligned() bool { return mem.IsAligned(f.words) }

// blockIndex consumes 32 hash bits and maps them onto [0, numBlocks).
// Power-of-two and magic addressing consume the same number of bits so the
// two modes are directly comparable in FPR terms.
func (f *Filter[W]) blockIndex(s *hashing.Sink) uint32 {
	h := s.Next(32)
	if f.params.Magic {
		return f.dv.Mod(h)
	}
	return h & f.blockMask
}

// buildPlan replays the sink's draw sequence symbolically, recording for
// every draw the hash word and shift it resolves to. The sink consumes from
// the top of 64-bit words and discards the remainder of a word when a draw
// does not fit (refill); the plan replicates both rules exactly.
func (f *Filter[W]) buildPlan() {
	var wordIdx, off uint32
	next := func(n uint32) drawLoc {
		if n == 0 {
			return drawLoc{}
		}
		if 64-off < n {
			wordIdx++
			off = 0
		}
		loc := drawLoc{word: uint8(wordIdx), shift: uint8(64 - off - n)}
		off += n
		return loc
	}
	f.blockLoc = next(32)
	if f.groups > 16 {
		panic("blocked: plan supports at most 16 groups")
	}
	for g := uint32(0); g < f.groups; g++ {
		f.secLoc[g] = next(f.log2Group)
		c := uint32(0)
		for remaining := f.kPerGroup; remaining > 0; c++ {
			nf := f.fieldsPerChunk
			if nf > remaining {
				nf = remaining
			}
			f.chunkLoc[g][c] = next(f.chunkBits)
			remaining -= nf
		}
		f.chunksPerGroup = c
	}
	f.planWords = wordIdx + 1
	if f.planWords > 6 {
		panic("blocked: draw plan exceeds 6 hash words")
	}
}

// hashWords computes the hash words the plan indexes into: word 0 is the
// multiplicative hash, later words are the sink's refill outputs.
func (f *Filter[W]) hashWords(key core.Key, hw *[6]uint64) {
	hw[0] = hashing.Mult64(key)
	for w := uint32(1); w < f.planWords; w++ {
		hw[w] = rng.Mix64(uint64(key) + uint64(w)*hashing.Golden64)
	}
}

// planBlockIndex maps the planned block-address draw onto [0, numBlocks).
func (f *Filter[W]) planBlockIndex(hw *[6]uint64) uint32 {
	h := uint32(hw[f.blockLoc.word] >> f.blockLoc.shift)
	if f.params.Magic {
		return f.dv.Mod(h)
	}
	return h & f.blockMask
}

// planGroupMask evaluates one group's planned draws: the selected sector
// and the k/z-bit sector-relative search mask (valid when S ≤ W).
func (f *Filter[W]) planGroupMask(hw *[6]uint64, g uint32) (sector uint32, mask W) {
	sl := f.secLoc[g]
	sector = uint32(hw[sl.word]>>sl.shift) & f.groupMask
	wb := f.wordBits - 1
	fi := uint32(0)
	for c := uint32(0); c < f.chunksPerGroup; c++ {
		cl := f.chunkLoc[g][c]
		chunk := uint32(hw[cl.word]>>cl.shift) & f.chunkMask
		top := f.fieldsPerChunk
		if rem := f.kPerGroup - fi; top > rem {
			top = rem
		}
		for j := uint32(0); j < top; j++ {
			pos := chunk >> ((f.fieldsPerChunk - 1 - j) * f.log2Sector) & f.sectorMask
			mask |= W(1) << (pos & wb)
		}
		fi += top
	}
	return sector, mask
}

// planGroupPositions evaluates one group's planned draws into sector-
// relative bit positions (for sectors spanning multiple words).
func (f *Filter[W]) planGroupPositions(hw *[6]uint64, g uint32, dst *[16]uint32) (sector, n uint32) {
	sl := f.secLoc[g]
	sector = uint32(hw[sl.word]>>sl.shift) & f.groupMask
	fi := uint32(0)
	for c := uint32(0); c < f.chunksPerGroup; c++ {
		cl := f.chunkLoc[g][c]
		chunk := uint32(hw[cl.word]>>cl.shift) & f.chunkMask
		top := f.fieldsPerChunk
		if rem := f.kPerGroup - fi; top > rem {
			top = rem
		}
		for j := uint32(0); j < top; j++ {
			dst[fi+j] = chunk >> ((f.fieldsPerChunk - 1 - j) * f.log2Sector) & f.sectorMask
		}
		fi += top
	}
	return sector, fi
}

// drawMask consumes one group's bit-address fields and returns the k/z-bit
// search mask, sector-relative (valid when S ≤ W). The fields are drawn in
// whole chunks; field extraction uses independent shifts for ILP.
func (f *Filter[W]) drawMask(sink *hashing.Sink) W {
	var mask W
	wb := f.wordBits - 1
	for remaining := f.kPerGroup; remaining > 0; {
		nf := f.fieldsPerChunk
		if nf > remaining {
			nf = remaining
		}
		c := sink.Next(f.chunkBits)
		for fi := uint32(0); fi < nf; fi++ {
			pos := c >> ((f.fieldsPerChunk - 1 - fi) * f.log2Sector) & f.sectorMask
			mask |= W(1) << (pos & wb)
		}
		remaining -= nf
	}
	return mask
}

// drawPositions consumes one group's bit-address fields into dst (used when
// sectors span multiple words). Returns the field count (k/z ≤ 16).
func (f *Filter[W]) drawPositions(sink *hashing.Sink, dst *[16]uint32) uint32 {
	i := uint32(0)
	for remaining := f.kPerGroup; remaining > 0; {
		nf := f.fieldsPerChunk
		if nf > remaining {
			nf = remaining
		}
		c := sink.Next(f.chunkBits)
		for fi := uint32(0); fi < nf; fi++ {
			dst[i] = c >> ((f.fieldsPerChunk - 1 - fi) * f.log2Sector) & f.sectorMask
			i++
		}
		remaining -= nf
	}
	return i
}

// Insert adds key to the filter.
func (f *Filter[W]) Insert(key core.Key) {
	sink := hashing.NewSink(key)
	base := uint64(f.blockIndex(&sink)) * uint64(f.wordsPerBlock)
	if f.params.SectorBits <= f.wordBits {
		for g := uint32(0); g < f.groups; g++ {
			sector := g*f.secPerGroup + sink.Next(f.log2Group)
			startBit := sector << f.log2Sector
			mask := f.drawMask(&sink) << (startBit & (f.wordBits - 1))
			f.words[base+uint64(startBit>>f.log2Word)] |= mask
		}
		return
	}
	var pos [16]uint32
	for g := uint32(0); g < f.groups; g++ {
		sector := g*f.secPerGroup + sink.Next(f.log2Group)
		startBit := sector << f.log2Sector
		n := f.drawPositions(&sink, &pos)
		for j := uint32(0); j < n; j++ {
			p := startBit + pos[j]
			f.words[base+uint64(p>>f.log2Word)] |= W(1) << (p & (f.wordBits - 1))
		}
	}
}

// Contains reports whether key may be in the set. The test is branch-free
// within a block (blocked filters do equal work for positive and negative
// probes, §2), except for the plain-blocked variant where bits span words.
func (f *Filter[W]) Contains(key core.Key) bool {
	sink := hashing.NewSink(key)
	base := uint64(f.blockIndex(&sink)) * uint64(f.wordsPerBlock)
	if f.params.SectorBits <= f.wordBits {
		// Every group's bits land in one word: build the search mask and
		// compare once per group (Listing 2 generalized).
		all := W(1)
		for g := uint32(0); g < f.groups; g++ {
			sector := g*f.secPerGroup + sink.Next(f.log2Group)
			startBit := sector << f.log2Sector
			mask := f.drawMask(&sink) << (startBit & (f.wordBits - 1))
			word := f.words[base+uint64(startBit>>f.log2Word)]
			if word&mask != mask {
				all = 0
			}
		}
		return all != 0
	}
	// Sectors span multiple words (plain blocked S == B > W, or mid-size
	// sectors): walk groups and sectors, testing each bit in its word
	// (Listing 1), with early exit on the first missing bit.
	var pos [16]uint32
	for g := uint32(0); g < f.groups; g++ {
		sector := g*f.secPerGroup + sink.Next(f.log2Group)
		startBit := sector << f.log2Sector
		n := f.drawPositions(&sink, &pos)
		for j := uint32(0); j < n; j++ {
			p := startBit + pos[j]
			word := f.words[base+uint64(p>>f.log2Word)]
			if word&(W(1)<<(p&(f.wordBits-1))) == 0 {
				return false
			}
		}
	}
	return true
}

// SizeBits returns the actual size in bits.
func (f *Filter[W]) SizeBits() uint64 {
	return uint64(f.numBlocks) * uint64(f.params.BlockBits)
}

// NumBlocks returns the number of blocks.
func (f *Filter[W]) NumBlocks() uint32 { return f.numBlocks }

// Params returns the configuration.
func (f *Filter[W]) Params() Params { return f.params }

// FPR returns the analytic false-positive rate for n inserted keys.
func (f *Filter[W]) FPR(n uint64) float64 { return f.params.FPR(f.SizeBits(), n) }

// PopCount returns the number of set bits.
func (f *Filter[W]) PopCount() uint64 {
	var total uint64
	for _, w := range f.words {
		total += uint64(bits.OnesCount64(uint64(w)))
	}
	return total
}

// Reset clears all bits.
func (f *Filter[W]) Reset() {
	clear(f.words)
}

func nextPow2u64(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(x-1))
}
