package blocked

import (
	"testing"

	"perfilter/internal/rng"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, p := range []Params{
		RegisterBlockedParams(32, 4, false),
		RegisterBlockedParams(64, 5, true),
		CacheSectorizedParams(64, 512, 2, 8, true),
		SectorizedParams(32, 512, 16, false),
		PlainBlockedParams(64, 512, 8, true),
	} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, 1<<15)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(1)
			keys := make([]uint32, 1000)
			for i := range keys {
				keys[i] = r.Uint32()
				f.Insert(keys[i])
			}
			data, err := f.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Params() != p || back.SizeBits() != f.SizeBits() {
				t.Fatal("metadata changed in round trip")
			}
			// Identical answers on inserted keys and on random probes.
			for _, k := range keys {
				if !back.Contains(k) {
					t.Fatalf("false negative after round trip (key %d)", k)
				}
			}
			probe := rng.NewSplitMix64(2)
			for i := 0; i < 5000; i++ {
				k := probe.Uint32()
				if back.Contains(k) != f.Contains(k) {
					t.Fatalf("answer changed for key %d", k)
				}
			}
		})
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	f, _ := New(RegisterBlockedParams(64, 4, false), 1<<12)
	f.Insert(1)
	data, _ := f.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()

	cases := map[string]func([]byte) []byte{
		"truncated-header": func(d []byte) []byte { return d[:10] },
		"bad-magic": func(d []byte) []byte {
			c := append([]byte(nil), d...)
			c[0] ^= 0xFF
			return c
		},
		"bad-version": func(d []byte) []byte {
			c := append([]byte(nil), d...)
			c[4] = 99
			return c
		},
		"bad-params": func(d []byte) []byte {
			c := append([]byte(nil), d...)
			c[6] = 17 // word bits
			return c
		},
		"truncated-body": func(d []byte) []byte { return d[:len(d)-4] },
	}
	for name, corrupt := range cases {
		if _, err := Unmarshal(corrupt(data)); err == nil {
			t.Fatalf("%s: corruption accepted", name)
		}
	}
}

func TestSerializeEmptyFilter(t *testing.T) {
	f, _ := New(CacheSectorizedParams(64, 512, 2, 8, false), 1<<12)
	data, err := f.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.PopCount() != 0 {
		t.Fatal("empty filter gained bits")
	}
}
