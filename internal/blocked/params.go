package blocked

import (
	"fmt"
	"math/bits"

	"perfilter/internal/fpr"
)

// Params describes a blocked Bloom filter configuration. The zero value is
// invalid; fill every field and check Validate (or use one of the preset
// constructors below).
type Params struct {
	// WordBits is the processor word size the filter is built on: 32 or 64.
	// The paper's SIMD kernels operate on 32-bit lanes; scalar code favors
	// 64-bit words.
	WordBits uint32
	// BlockBits is the block size B in bits. Must be a power of two, a
	// multiple of WordBits, and at most 512 (one cache line).
	BlockBits uint32
	// SectorBits is the sector size S in bits; S must divide B. S == B
	// means no sectorization (plain blocked / register-blocked).
	SectorBits uint32
	// Z is the number of sector groups per block. Z == s (= B/S) means
	// plain sectorization (each sector is its own group, chosen
	// deterministically); 1 < Z < s means cache-sectorization (one sector
	// chosen per group). Z must divide s.
	Z uint32
	// K is the total number of bits set/tested per key, 1..fpr.MaxK.
	// Must be a multiple of Z.
	K uint32
	// Magic selects magic-modulo block addressing; false selects
	// power-of-two addressing (block count rounded up to a power of two).
	Magic bool
}

// Variant labels the blocked Bloom filter sub-family a Params falls into.
type Variant uint8

const (
	// RegisterBlocked: B == WordBits (Listing 2).
	RegisterBlocked Variant = iota
	// PlainBlocked: S == B > WordBits (Listing 1).
	PlainBlocked
	// Sectorized: S < B, one group per sector (Eq. 4).
	Sectorized
	// CacheSectorized: S < B, 1 < Z < s (Eq. 5).
	CacheSectorized
)

func (v Variant) String() string {
	switch v {
	case RegisterBlocked:
		return "register-blocked"
	case PlainBlocked:
		return "blocked"
	case Sectorized:
		return "sectorized"
	case CacheSectorized:
		return "cache-sectorized"
	default:
		return "invalid"
	}
}

// Validate checks all structural constraints from §3 of the paper.
func (p Params) Validate() error {
	if p.WordBits != 32 && p.WordBits != 64 {
		return fmt.Errorf("blocked: word size %d not in {32, 64}", p.WordBits)
	}
	if p.BlockBits < p.WordBits || p.BlockBits > 512 ||
		!isPow2(p.BlockBits) || p.BlockBits%p.WordBits != 0 {
		return fmt.Errorf("blocked: block size %d invalid for word size %d",
			p.BlockBits, p.WordBits)
	}
	if p.SectorBits < 8 || p.SectorBits > p.BlockBits ||
		!isPow2(p.SectorBits) || p.BlockBits%p.SectorBits != 0 {
		return fmt.Errorf("blocked: sector size %d invalid for block size %d",
			p.SectorBits, p.BlockBits)
	}
	s := p.BlockBits / p.SectorBits
	if p.Z == 0 || s%p.Z != 0 {
		return fmt.Errorf("blocked: z=%d must divide sector count %d", p.Z, s)
	}
	if p.Z != s && p.Z == 1 && s > 1 {
		return fmt.Errorf("blocked: z=1 with %d sectors is redundant "+
			"(equivalent to a smaller block size); use Z == sectors or Z > 1", s)
	}
	if p.K == 0 || p.K > fpr.MaxK {
		return fmt.Errorf("blocked: k=%d out of range [1, %d]", p.K, fpr.MaxK)
	}
	if p.K%p.Z != 0 {
		return fmt.Errorf("blocked: k=%d must be a multiple of z=%d", p.K, p.Z)
	}
	return nil
}

// Variant classifies the configuration; Params must be valid.
func (p Params) Variant() Variant {
	s := p.BlockBits / p.SectorBits
	switch {
	case p.BlockBits == p.WordBits && p.SectorBits == p.BlockBits:
		return RegisterBlocked
	case s == 1:
		return PlainBlocked
	case p.Z == s:
		return Sectorized
	default:
		return CacheSectorized
	}
}

// Sectors returns s = B/S.
func (p Params) Sectors() uint32 { return p.BlockBits / p.SectorBits }

// WordsPerBlock returns B/W.
func (p Params) WordsPerBlock() uint32 { return p.BlockBits / p.WordBits }

// WordsAccessed returns how many words one lookup touches: the key quantity
// behind the paper's CPU- vs bandwidth-efficiency trade-off (1 for
// register-blocked, z for cache-sectorized, s for sectorized, up to k for
// plain blocked).
func (p Params) WordsAccessed() uint32 {
	switch p.Variant() {
	case RegisterBlocked:
		return 1
	case PlainBlocked:
		w := p.K
		if max := p.WordsPerBlock(); w > max {
			w = max
		}
		return w
	case Sectorized:
		if p.SectorBits >= p.WordBits {
			return p.Sectors() * (p.SectorBits / p.WordBits)
		}
		// Sub-word sectors share words.
		return p.Sectors() * p.SectorBits / p.WordBits
	default: // CacheSectorized
		words := p.Z * p.SectorBits / p.WordBits
		if words == 0 {
			words = p.Z
		}
		return words
	}
}

// FPR evaluates the matching analytic model (Eq. 3/4/5) for a filter of
// mBits total size holding n keys.
func (p Params) FPR(mBits uint64, n uint64) float64 {
	m := float64(mBits)
	nn := float64(n)
	s := p.Sectors()
	switch {
	case s == 1:
		return fpr.Blocked(m, nn, p.K, p.BlockBits)
	case p.Z == s:
		return fpr.Sectorized(m, nn, p.K, p.BlockBits, p.SectorBits)
	default:
		return fpr.CacheSectorized(m, nn, p.K, p.BlockBits, p.SectorBits, p.Z)
	}
}

// String renders the configuration in the paper's notation.
func (p Params) String() string {
	mod := "pow2"
	if p.Magic {
		mod = "magic"
	}
	switch p.Variant() {
	case RegisterBlocked:
		return fmt.Sprintf("bloom/register[B=%d,k=%d,%s]", p.BlockBits, p.K, mod)
	case PlainBlocked:
		return fmt.Sprintf("bloom/blocked[B=%d,k=%d,%s]", p.BlockBits, p.K, mod)
	case Sectorized:
		return fmt.Sprintf("bloom/sectorized[B=%d,S=%d,k=%d,%s]",
			p.BlockBits, p.SectorBits, p.K, mod)
	default:
		return fmt.Sprintf("bloom/cache-sectorized[B=%d,S=%d,z=%d,k=%d,%s]",
			p.BlockBits, p.SectorBits, p.Z, p.K, mod)
	}
}

// RegisterBlockedParams returns the register-blocked preset (B = W = S).
func RegisterBlockedParams(wordBits, k uint32, useMagic bool) Params {
	return Params{
		WordBits: wordBits, BlockBits: wordBits, SectorBits: wordBits,
		Z: 1, K: k, Magic: useMagic,
	}
}

// PlainBlockedParams returns the classic cache-line blocked preset of Putze
// et al. (S = B).
func PlainBlockedParams(wordBits, blockBits, k uint32, useMagic bool) Params {
	return Params{
		WordBits: wordBits, BlockBits: blockBits, SectorBits: blockBits,
		Z: 1, K: k, Magic: useMagic,
	}
}

// SectorizedParams returns the word-sectorized preset (S = W, z = s).
func SectorizedParams(wordBits, blockBits, k uint32, useMagic bool) Params {
	return Params{
		WordBits: wordBits, BlockBits: blockBits, SectorBits: wordBits,
		Z: blockBits / wordBits, K: k, Magic: useMagic,
	}
}

// CacheSectorizedParams returns the cache-sectorized preset (S = W).
func CacheSectorizedParams(wordBits, blockBits, z, k uint32, useMagic bool) Params {
	return Params{
		WordBits: wordBits, BlockBits: blockBits, SectorBits: wordBits,
		Z: z, K: k, Magic: useMagic,
	}
}

func isPow2(x uint32) bool { return x != 0 && x&(x-1) == 0 }

func log2u32(x uint32) uint32 { return uint32(bits.Len32(x)) - 1 }
