package blocked

import (
	"fmt"
	"testing"
	"testing/quick"

	"perfilter/internal/rng"
)

// allParams enumerates a representative slice of the paper's configuration
// space across every variant and both addressing modes.
func allParams() []Params {
	var ps []Params
	for _, useMagic := range []bool{false, true} {
		for _, w := range []uint32{32, 64} {
			// Register-blocked, k ∈ {1, 4, 8}.
			for _, k := range []uint32{1, 4, 8} {
				ps = append(ps, RegisterBlockedParams(w, k, useMagic))
			}
			// Plain blocked cache line.
			ps = append(ps, PlainBlockedParams(w, 512, 8, useMagic))
			ps = append(ps, PlainBlockedParams(w, 256, 5, useMagic))
			// Sectorized.
			ps = append(ps, SectorizedParams(w, 512, 512/w, useMagic))
			ps = append(ps, SectorizedParams(w, 256, 2*256/w, useMagic))
			// Cache-sectorized.
			ps = append(ps, CacheSectorizedParams(w, 512, 2, 8, useMagic))
			ps = append(ps, CacheSectorizedParams(w, 512, 4, 8, useMagic))
		}
		// Sub-word sectors (the paper's outlier case 5): B=W=32, S=8.
		ps = append(ps, Params{WordBits: 32, BlockBits: 32, SectorBits: 8,
			Z: 4, K: 4, Magic: useMagic})
		// 64-bit words with 32-bit sectors.
		ps = append(ps, Params{WordBits: 64, BlockBits: 512, SectorBits: 32,
			Z: 2, K: 8, Magic: useMagic})
	}
	return ps
}

func TestNoFalseNegatives(t *testing.T) {
	for _, p := range allParams() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(42)
			keys := make([]uint32, 2000)
			for i := range keys {
				keys[i] = r.Uint32()
				f.Insert(keys[i])
			}
			for _, k := range keys {
				if !f.Contains(k) {
					t.Fatalf("false negative for key %d", k)
				}
			}
		})
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	for _, p := range allParams() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(7)
			for i := 0; i < 500; i++ {
				f.Insert(r.Uint32())
			}
			probe := make([]uint32, 1000)
			for i := range probe {
				probe[i] = r.Uint32()
			}
			sel := f.ContainsBatch(probe, nil)
			j := 0
			for i, k := range probe {
				want := f.Contains(k)
				got := j < len(sel) && sel[j] == uint32(i)
				if got != want {
					t.Fatalf("position %d: batch=%v scalar=%v", i, got, want)
				}
				if got {
					j++
				}
			}
			if j != len(sel) {
				t.Fatalf("selection vector has %d extra entries", len(sel)-j)
			}
		})
	}
}

func TestBatchAppendsToExistingSel(t *testing.T) {
	f, err := New(RegisterBlockedParams(32, 4, false), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	f.Insert(1)
	f.Insert(2)
	pre := []uint32{111, 222}
	sel := f.ContainsBatch([]uint32{1, 2}, pre)
	if len(sel) != 4 || sel[0] != 111 || sel[1] != 222 || sel[2] != 0 || sel[3] != 1 {
		t.Fatalf("append semantics broken: %v", sel)
	}
}

func TestBatchReusesCapacity(t *testing.T) {
	f, _ := New(CacheSectorizedParams(64, 512, 2, 8, false), 1<<12)
	f.Insert(5)
	buf := make([]uint32, 0, 64)
	sel := f.ContainsBatch([]uint32{5}, buf)
	if &sel[:1][0] != &buf[:1][0] {
		t.Fatal("expected in-place reuse of the provided buffer")
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	for _, p := range allParams() {
		f, err := New(p, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewSplitMix64(3)
		for i := 0; i < 200; i++ {
			if f.Contains(r.Uint32()) {
				t.Fatalf("%s: empty filter claimed containment", p)
			}
		}
		if sel := f.ContainsBatch([]uint32{1, 2, 3}, nil); len(sel) != 0 {
			t.Fatalf("%s: empty filter batch returned %v", p, sel)
		}
	}
}

func TestResetClears(t *testing.T) {
	f, _ := New(SectorizedParams(64, 512, 8, true), 1<<12)
	for i := uint32(0); i < 100; i++ {
		f.Insert(i)
	}
	if f.PopCount() == 0 {
		t.Fatal("expected set bits after inserts")
	}
	f.Reset()
	if f.PopCount() != 0 {
		t.Fatal("Reset left bits set")
	}
	if f.Contains(5) {
		t.Fatal("Contains true after Reset")
	}
}

func TestSizeRounding(t *testing.T) {
	// Power-of-two addressing rounds the block count up to a power of two.
	f, _ := New(PlainBlockedParams(64, 512, 8, false), 1000*512)
	if nb := f.NumBlocks(); nb != 1024 {
		t.Fatalf("pow2 blocks = %d, want 1024", nb)
	}
	// Magic addressing stays within 0.0134% of the request (Eq. 10).
	fm, _ := New(PlainBlockedParams(64, 512, 8, true), 1000*512)
	if nb := fm.NumBlocks(); nb < 1000 || float64(nb) > 1000*1.000134+1 {
		t.Fatalf("magic blocks = %d, want ≈1000", nb)
	}
	if fm.SizeBits() != uint64(fm.NumBlocks())*512 {
		t.Fatal("SizeBits inconsistent with block count")
	}
}

func TestMeasuredFPRMatchesModel(t *testing.T) {
	// Measured false-positive rate must track the analytic model within
	// sampling tolerance for each variant (the models are exact for the
	// idealized hash; the sink is close enough at these scales).
	cases := []Params{
		RegisterBlockedParams(32, 4, false),
		RegisterBlockedParams(64, 5, true),
		PlainBlockedParams(64, 512, 8, false),
		SectorizedParams(64, 512, 8, false),
		CacheSectorizedParams(64, 512, 2, 8, true),
	}
	const n = 1 << 15
	const probes = 1 << 17
	for _, p := range cases {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, n*12) // 12 bits per key
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(99)
			inserted := make(map[uint32]bool, n)
			for len(inserted) < n {
				k := r.Uint32()
				if !inserted[k] {
					inserted[k] = true
					f.Insert(k)
				}
			}
			fp := 0
			tested := 0
			for tested < probes {
				k := r.Uint32()
				if inserted[k] {
					continue
				}
				tested++
				if f.Contains(k) {
					fp++
				}
			}
			measured := float64(fp) / float64(probes)
			model := f.FPR(n)
			// 3-sigma binomial tolerance plus 20% model slack.
			if measured > model*1.25+0.002 || measured < model*0.75-0.002 {
				t.Fatalf("measured FPR %.5f vs model %.5f", measured, model)
			}
		})
	}
}

func TestVariantClassification(t *testing.T) {
	cases := []struct {
		p Params
		v Variant
	}{
		{RegisterBlockedParams(32, 4, false), RegisterBlocked},
		{RegisterBlockedParams(64, 4, false), RegisterBlocked},
		{PlainBlockedParams(64, 512, 8, false), PlainBlocked},
		{SectorizedParams(64, 512, 8, false), Sectorized},
		{CacheSectorizedParams(64, 512, 2, 8, false), CacheSectorized},
	}
	for _, c := range cases {
		if got := c.p.Variant(); got != c.v {
			t.Fatalf("%+v classified as %v, want %v", c.p, got, c.v)
		}
	}
}

func TestWordsAccessed(t *testing.T) {
	if w := RegisterBlockedParams(64, 8, false).WordsAccessed(); w != 1 {
		t.Fatalf("register-blocked accesses %d words", w)
	}
	if w := CacheSectorizedParams(64, 512, 2, 8, false).WordsAccessed(); w != 2 {
		t.Fatalf("cache-sectorized z=2 accesses %d words", w)
	}
	if w := SectorizedParams(64, 512, 8, false).WordsAccessed(); w != 8 {
		t.Fatalf("sectorized 8-word block accesses %d words", w)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Params{
		{WordBits: 16, BlockBits: 32, SectorBits: 32, Z: 1, K: 4},     // word size
		{WordBits: 32, BlockBits: 48, SectorBits: 16, Z: 1, K: 4},     // non-pow2 block
		{WordBits: 64, BlockBits: 32, SectorBits: 32, Z: 1, K: 4},     // block < word
		{WordBits: 32, BlockBits: 1024, SectorBits: 32, Z: 32, K: 16}, // block > cache line
		{WordBits: 32, BlockBits: 512, SectorBits: 4, Z: 1, K: 4},     // sector < 8 bits
		{WordBits: 32, BlockBits: 512, SectorBits: 1024, Z: 1, K: 4},  // sector > block
		{WordBits: 32, BlockBits: 512, SectorBits: 32, Z: 3, K: 6},    // z doesn't divide s
		{WordBits: 32, BlockBits: 512, SectorBits: 32, Z: 1, K: 8},    // z=1 with sectors
		{WordBits: 32, BlockBits: 512, SectorBits: 32, Z: 16, K: 0},   // k=0
		{WordBits: 32, BlockBits: 512, SectorBits: 32, Z: 16, K: 17},  // k>16... also not multiple
		{WordBits: 32, BlockBits: 512, SectorBits: 64, Z: 8, K: 12},   // k not multiple of z
		{WordBits: 32, BlockBits: 512, SectorBits: 64, Z: 2, K: 7},    // k not multiple of z
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d (%+v): expected validation error", i, p)
		}
		if _, err := New(p, 1<<12); err == nil {
			t.Fatalf("case %d: New accepted invalid params", i)
		}
	}
	if _, err := New(RegisterBlockedParams(32, 4, false), 0); err == nil {
		t.Fatal("New accepted zero size")
	}
}

func TestQuickNoFalseNegativeProperty(t *testing.T) {
	f, _ := New(CacheSectorizedParams(64, 512, 2, 8, true), 1<<14)
	if err := quick.Check(func(key uint32) bool {
		f.Insert(key)
		return f.Contains(key)
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBatchSingleton(t *testing.T) {
	f, _ := New(RegisterBlockedParams(64, 4, true), 1<<14)
	r := rng.NewSplitMix64(11)
	for i := 0; i < 256; i++ {
		f.Insert(r.Uint32())
	}
	if err := quick.Check(func(key uint32) bool {
		sel := f.ContainsBatch([]uint32{key}, nil)
		return (len(sel) == 1) == f.Contains(key)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateInsertIdempotent(t *testing.T) {
	f, _ := New(SectorizedParams(32, 512, 16, false), 1<<12)
	f.Insert(42)
	bits := f.PopCount()
	f.Insert(42)
	if f.PopCount() != bits {
		t.Fatal("re-inserting a key changed the bit pattern")
	}
}

func TestBatchSizesIncludingTails(t *testing.T) {
	// Exercise the unrolled kernels' tail handling at every remainder.
	f, _ := New(RegisterBlockedParams(32, 4, false), 1<<12)
	r := rng.NewSplitMix64(5)
	for i := 0; i < 100; i++ {
		f.Insert(r.Uint32())
	}
	for size := 0; size <= 20; size++ {
		probe := make([]uint32, size)
		for i := range probe {
			probe[i] = r.Uint32()
		}
		sel := f.ContainsBatch(probe, nil)
		want := 0
		for _, k := range probe {
			if f.Contains(k) {
				want++
			}
		}
		if len(sel) != want {
			t.Fatalf("size %d: batch found %d, scalar %d", size, len(sel), want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := CacheSectorizedParams(64, 512, 2, 8, true)
	want := "bloom/cache-sectorized[B=512,S=64,z=2,k=8,magic]"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	for _, v := range []Variant{RegisterBlocked, PlainBlocked, Sectorized, CacheSectorized} {
		if v.String() == "invalid" {
			t.Fatal("valid variant renders as invalid")
		}
	}
}

func TestFPRAccessorsAgree(t *testing.T) {
	p := CacheSectorizedParams(64, 512, 2, 8, false)
	f, _ := New(p, 1<<16)
	if f.FPR(1000) != p.FPR(f.SizeBits(), 1000) {
		t.Fatal("Probe.FPR disagrees with Params.FPR")
	}
}

func TestManyConfigsSmoke(t *testing.T) {
	// Broad smoke test over the paper's sweep dimensions: B ∈ {4..64}B,
	// S ∈ {1..64}B (≥1 byte), W ∈ {32,64}, valid (z, k) combos.
	count := 0
	for _, w := range []uint32{32, 64} {
		for _, B := range []uint32{32, 64, 128, 256, 512} {
			if B < w {
				continue
			}
			for _, S := range []uint32{8, 16, 32, 64, 128, 256, 512} {
				if S > B || B%S != 0 {
					continue
				}
				s := B / S
				for _, z := range []uint32{1, 2, 4, 8, 16} {
					if z > s || s%z != 0 || (z == 1 && s > 1) {
						continue
					}
					for _, k := range []uint32{1, 2, 4, 6, 8, 16} {
						if k%z != 0 {
							continue
						}
						p := Params{WordBits: w, BlockBits: B, SectorBits: S, Z: z, K: k}
						if p.Validate() != nil {
							continue
						}
						f, err := New(p, 1<<13)
						if err != nil {
							t.Fatalf("%s: %v", p, err)
						}
						f.Insert(123)
						f.Insert(456)
						if !f.Contains(123) || !f.Contains(456) {
							t.Fatalf("%s: false negative", p)
						}
						if got := f.ContainsBatch([]uint32{123, 456}, nil); len(got) != 2 {
							t.Fatalf("%s: batch lost keys: %v", p, got)
						}
						count++
					}
				}
			}
		}
	}
	if count < 40 {
		t.Fatalf("smoke test covered only %d configurations", count)
	}
}

func BenchmarkVariants(b *testing.B) {
	configs := []Params{
		RegisterBlockedParams(32, 4, false),
		RegisterBlockedParams(32, 4, true),
		SectorizedParams(32, 512, 16, false),
		CacheSectorizedParams(32, 512, 2, 8, false),
		CacheSectorizedParams(32, 512, 2, 8, true),
		PlainBlockedParams(64, 512, 8, false),
	}
	for _, p := range configs {
		p := p
		b.Run(fmt.Sprintf("%s", p), func(b *testing.B) {
			f, _ := New(p, 1<<17) // 16 KiB, L1-resident
			r := rng.NewMT19937(1)
			for i := 0; i < 1<<13; i++ {
				f.Insert(r.Uint32())
			}
			probe := make([]uint32, 1024)
			for i := range probe {
				probe[i] = r.Uint32()
			}
			sel := make([]uint32, 0, 1024)
			b.SetBytes(int64(len(probe) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel = f.ContainsBatch(probe, sel[:0])
			}
		})
	}
}
