package blocked

import (
	"perfilter/internal/core"
	"perfilter/internal/hashing"
	"perfilter/internal/rng"
	"perfilter/internal/simd"
)

// Software-pipeline depths of the batch kernels: hashes, block addresses
// and search masks for this many keys are computed before the
// corresponding words are loaded and tested, mirroring the paper's
// one-key-per-SIMD-lane GATHER kernels (§5.1, see package simd). The
// compute phase runs several groups of simd.Width ahead of the load
// phase, so the out-of-order window always holds multiple independent
// cache misses.
//
// Each kernel's depth is a constant >= simd.Width chosen by benchmark
// (BenchmarkPipelineDepth; the system-level numbers land in
// BENCH_kernels.json via `filter-bench -fig kernels`): two groups ahead
// beat one by ~8% on the cache-missing register-blocked probe, while
// four groups ahead gave the win back — the per-key address/mask state
// starts spilling — and the cache-sectorized kernel, which carries z
// addresses and masks per key (8× the register kernel's state), showed
// the same shape. Both kernels therefore precompute two simd.Width
// groups ahead of the load phase.
const (
	registerUnroll = 2 * simd.Width // batchRegister
	cacheUnroll    = 2 * simd.Width // batchCacheSectorized
)

// ContainsBatch appends to sel the positions of the keys that may be
// contained and returns the extended selection vector. The kernel is
// selected once per batch (the paper compiles one branch-free function per
// configuration; we hoist the dispatch out of the loop instead). Results
// are bit-identical to calling Contains per key.
//
// len(keys) must fit in a uint32 position; callers batch at vector
// granularity (core.DefaultBatch) in practice.
func (f *Filter[W]) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	buf, cnt := simd.GrowSel(sel, len(keys))
	switch {
	case f.params.Variant() == RegisterBlocked:
		cnt = f.batchRegister(keys, buf, cnt)
	case f.params.SectorBits == f.wordBits && f.secPerGroup > 1:
		cnt = f.batchCacheSectorized(keys, buf, cnt)
	case f.params.SectorBits == f.wordBits && f.secPerGroup == 1:
		cnt = f.batchSectorized(keys, buf, cnt)
	default:
		cnt = f.batchGeneric(keys, buf, cnt)
	}
	return buf[:cnt]
}

// batchRegister is the register-blocked kernel (Listing 2): one word load
// and one comparison per key. The pipeline phase computes registerUnroll
// block addresses and search masks, then the gather phase loads and tests.
func (f *Filter[W]) batchRegister(keys []core.Key, out []uint32, cnt int) int {
	// Hoist every per-config constant into locals: the paper compiles one
	// branch-free function per configuration; hoisting gives the Go
	// compiler the same freedom (no reloads across the hw writes).
	var (
		n        = len(keys)
		kpg      = f.kPerGroup
		fpc      = f.fieldsPerChunk
		cpg      = f.chunksPerGroup
		l2s      = f.log2Sector
		secMask  = f.sectorMask
		chkMask  = f.chunkMask
		wb       = f.wordBits - 1
		bLoc     = f.blockLoc
		chunks   = f.chunkLoc[0]
		useMagic = f.params.Magic
		dv       = f.dv
		bMask    = f.blockMask
		planW    = f.planWords
		hw       [6]uint64
		idx      [registerUnroll]uint32
		mask     [registerUnroll]W
	)
	i := 0
	for ; i+registerUnroll <= n; i += registerUnroll {
		for l := 0; l < registerUnroll; l++ {
			key := keys[i+l]
			hw[0] = hashing.Mult64(key)
			for w := uint32(1); w < planW; w++ {
				hw[w] = rng.Mix64(uint64(key) + uint64(w)*hashing.Golden64)
			}
			h := uint32(hw[bLoc.word] >> bLoc.shift)
			if useMagic {
				idx[l] = dv.Mod(h)
			} else {
				idx[l] = h & bMask
			}
			var m W
			fi := uint32(0)
			for c := uint32(0); c < cpg; c++ {
				cl := chunks[c]
				chunk := uint32(hw[cl.word]>>cl.shift) & chkMask
				top := fpc
				if rem := kpg - fi; top > rem {
					top = rem
				}
				sh := (fpc - 1) * l2s
				for j := uint32(0); j < top; j++ {
					m |= W(1) << (chunk >> sh & secMask & wb)
					sh -= l2s
				}
				fi += top
			}
			mask[l] = m
		}
		for l := 0; l < registerUnroll; l++ {
			w := f.words[idx[l]]
			out[cnt] = uint32(i + l)
			var inc int
			if w&mask[l] == mask[l] {
				inc = 1
			}
			cnt += inc
		}
	}
	for ; i < n; i++ {
		out[cnt] = uint32(i)
		var inc int
		if f.Contains(keys[i]) {
			inc = 1
		}
		cnt += inc
	}
	return cnt
}

// batchCacheSectorized is the cache-sectorized kernel for word-sized
// sectors: per key, z words of one cache line are gathered and tested. The
// hash-bit consumption order matches Insert exactly (per group: sector
// select, then k/z bit positions).
func (f *Filter[W]) batchCacheSectorized(keys []core.Key, out []uint32, cnt int) int {
	var (
		wpb      = uint64(f.wordsPerBlock)
		g        = f.secPerGroup
		z        = f.groups
		n        = len(keys)
		kpg      = f.kPerGroup
		fpc      = f.fieldsPerChunk
		cpg      = f.chunksPerGroup
		l2s      = f.log2Sector
		secMask  = f.sectorMask
		gMask    = f.groupMask
		chkMask  = f.chunkMask
		wb       = f.wordBits - 1
		bLoc     = f.blockLoc
		secLoc   = f.secLoc
		chunkLoc = f.chunkLoc
		useMagic = f.params.Magic
		dv       = f.dv
		bMask    = f.blockMask
		planW    = f.planWords
		hw       [6]uint64
		widx     [cacheUnroll][8]uint64 // cache-sectorized has z < s ≤ 16 ⇒ z ≤ 8
		mask     [cacheUnroll][8]W
	)
	i := 0
	for ; i+cacheUnroll <= n; i += cacheUnroll {
		for l := 0; l < cacheUnroll; l++ {
			key := keys[i+l]
			hw[0] = hashing.Mult64(key)
			for w := uint32(1); w < planW; w++ {
				hw[w] = rng.Mix64(uint64(key) + uint64(w)*hashing.Golden64)
			}
			h := uint32(hw[bLoc.word] >> bLoc.shift)
			var block uint32
			if useMagic {
				block = dv.Mod(h)
			} else {
				block = h & bMask
			}
			base := uint64(block) * wpb
			for gi := uint32(0); gi < z; gi++ {
				sl := secLoc[gi]
				sector := uint32(hw[sl.word]>>sl.shift) & gMask
				var m W
				fi := uint32(0)
				for c := uint32(0); c < cpg; c++ {
					cl := chunkLoc[gi][c]
					chunk := uint32(hw[cl.word]>>cl.shift) & chkMask
					top := fpc
					if rem := kpg - fi; top > rem {
						top = rem
					}
					sh := (fpc - 1) * l2s
					for j := uint32(0); j < top; j++ {
						m |= W(1) << (chunk >> sh & secMask & wb)
						sh -= l2s
					}
					fi += top
				}
				widx[l][gi] = base + uint64(gi*g+sector)
				mask[l][gi] = m
			}
		}
		for l := 0; l < cacheUnroll; l++ {
			var missing W
			for gi := uint32(0); gi < z; gi++ {
				w := f.words[widx[l][gi]]
				m := mask[l][gi]
				missing |= w&m ^ m
			}
			out[cnt] = uint32(i + l)
			var inc int
			if missing == 0 {
				inc = 1
			}
			cnt += inc
		}
	}
	for ; i < n; i++ {
		out[cnt] = uint32(i)
		var inc int
		if f.Contains(keys[i]) {
			inc = 1
		}
		cnt += inc
	}
	return cnt
}

// batchSectorized is the fully sectorized kernel (z == s, word-sized
// sectors): the s words of the block are read sequentially, each tested
// against a k/s-bit mask.
func (f *Filter[W]) batchSectorized(keys []core.Key, out []uint32, cnt int) int {
	var (
		wpb      = uint64(f.wordsPerBlock)
		s        = f.sectors
		kpg      = f.kPerGroup
		fpc      = f.fieldsPerChunk
		cpg      = f.chunksPerGroup
		l2s      = f.log2Sector
		secMask  = f.sectorMask
		chkMask  = f.chunkMask
		wb       = f.wordBits - 1
		bLoc     = f.blockLoc
		chunkLoc = f.chunkLoc
		useMagic = f.params.Magic
		dv       = f.dv
		bMask    = f.blockMask
		planW    = f.planWords
		hw       [6]uint64
	)
	for i, key := range keys {
		hw[0] = hashing.Mult64(key)
		for w := uint32(1); w < planW; w++ {
			hw[w] = rng.Mix64(uint64(key) + uint64(w)*hashing.Golden64)
		}
		h := uint32(hw[bLoc.word] >> bLoc.shift)
		var block uint32
		if useMagic {
			block = dv.Mod(h)
		} else {
			block = h & bMask
		}
		base := uint64(block) * wpb
		var missing W
		for si := uint32(0); si < s; si++ {
			var m W
			fi := uint32(0)
			for c := uint32(0); c < cpg; c++ {
				cl := chunkLoc[si][c]
				chunk := uint32(hw[cl.word]>>cl.shift) & chkMask
				top := fpc
				if rem := kpg - fi; top > rem {
					top = rem
				}
				sh := (fpc - 1) * l2s
				for j := uint32(0); j < top; j++ {
					m |= W(1) << (chunk >> sh & secMask & wb)
					sh -= l2s
				}
				fi += top
			}
			w := f.words[base+uint64(si)]
			missing |= w&m ^ m
		}
		out[cnt] = uint32(i)
		var inc int
		if missing == 0 {
			inc = 1
		}
		cnt += inc
	}
	return cnt
}

// batchGeneric covers plain-blocked and sub-word-sector configurations
// with a branch-free bit walk (Listing 1): all k bits are tested with no
// early exit, matching the paper's SIMD kernels where positive and negative
// probes cost the same (t+l == t−l, §2). Results are identical to the
// short-circuiting scalar path.
func (f *Filter[W]) batchGeneric(keys []core.Key, out []uint32, cnt int) int {
	var (
		wpb = uint64(f.wordsPerBlock)
		z   = f.groups
		l2s = f.log2Sector
		l2w = f.log2Word
		wb  = f.wordBits - 1
		hw  [6]uint64
	)
	var pos [16]uint32
	for i, key := range keys {
		f.hashWords(key, &hw)
		base := uint64(f.planBlockIndex(&hw)) * wpb
		missing := W(0)
		for g := uint32(0); g < z; g++ {
			sector, nf := f.planGroupPositions(&hw, g, &pos)
			startBit := (g*f.secPerGroup + sector) << l2s
			for j := uint32(0); j < nf; j++ {
				p := startBit + pos[j]
				word := f.words[base+uint64(p>>l2w)]
				// Accumulate "bit absent" without branching.
				missing |= ^word >> (p & wb) & 1
			}
		}
		out[cnt] = uint32(i)
		var inc int
		if missing == 0 {
			inc = 1
		}
		cnt += inc
	}
	return cnt
}
