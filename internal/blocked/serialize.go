package blocked

import (
	"encoding/binary"
	"fmt"

	"perfilter/internal/core"
	"perfilter/internal/magic"
)

// Serialization lets filters travel: the distributed semi-join use case
// (§1, [21]) broadcasts the build side's filter to every probe node. The
// format is a fixed little-endian header (magic, version, parameters,
// block count) followed by the raw word array. Filters deserialize on any
// architecture; word order is canonicalized to little-endian.

// WireMagic is the first little-endian uint32 of every serialized blocked
// filter; the perfilter package dispatches decoders on it. The value is
// assigned centrally in internal/magic alongside every other format's.
const WireMagic = magic.WireBlocked // "pfLB"

const (
	wireMagic   = WireMagic
	wireVersion = 1
)

// headerLen is the serialized header size in bytes.
const headerLen = 4 + 1 + 1 + 4 + 4 + 4 + 4 + 4 + 4

// MarshalBinary serializes the filter (header + words).
func (f *Filter[W]) MarshalBinary() ([]byte, error) {
	wordBytes := int(f.wordBits / 8)
	out := make([]byte, headerLen+len(f.words)*wordBytes)
	le := binary.LittleEndian
	le.PutUint32(out[0:], wireMagic)
	out[4] = wireVersion
	if f.params.Magic {
		out[5] = 1
	}
	le.PutUint32(out[6:], f.params.WordBits)
	le.PutUint32(out[10:], f.params.BlockBits)
	le.PutUint32(out[14:], f.params.SectorBits)
	le.PutUint32(out[18:], f.params.Z)
	le.PutUint32(out[22:], f.params.K)
	le.PutUint32(out[26:], f.numBlocks)
	body := out[headerLen:]
	switch f.wordBits {
	case 32:
		for i, w := range f.words {
			le.PutUint32(body[i*4:], uint32(w))
		}
	default:
		for i, w := range f.words {
			le.PutUint64(body[i*8:], uint64(w))
		}
	}
	return out, nil
}

// Unmarshal reconstructs a filter from MarshalBinary output.
func Unmarshal(data []byte) (Probe, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("blocked: truncated header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != wireMagic {
		return nil, fmt.Errorf("blocked: bad magic")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("blocked: unsupported version %d", data[4])
	}
	p := Params{
		Magic:      data[5] == 1,
		WordBits:   le.Uint32(data[6:]),
		BlockBits:  le.Uint32(data[10:]),
		SectorBits: le.Uint32(data[14:]),
		Z:          le.Uint32(data[18:]),
		K:          le.Uint32(data[22:]),
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	numBlocks := le.Uint32(data[26:])
	if numBlocks == 0 {
		return nil, fmt.Errorf("blocked: zero blocks")
	}
	// Reject sizes the input cannot possibly carry before allocating the
	// word array: a crafted header must not buy a multi-gigabyte make().
	if uint64(numBlocks)*uint64(p.BlockBits) > uint64(len(data))*8 {
		return nil, fmt.Errorf("blocked: %d blocks of %d bits exceed the %d-byte encoding", numBlocks, p.BlockBits, len(data))
	}
	// Rebuild through New so all derived state (plan, divider) is fresh,
	// then overwrite the words. Size by exact bit count: New rounds the
	// same way the original constructor did, so block counts must agree.
	mBits := uint64(numBlocks) * uint64(p.BlockBits)
	probe, err := New(p, mBits)
	if err != nil {
		return nil, err
	}
	body := data[headerLen:]
	switch f := probe.(type) {
	case *Filter[uint32]:
		if f.numBlocks != numBlocks {
			return nil, fmt.Errorf("blocked: block count mismatch (%d vs %d)", f.numBlocks, numBlocks)
		}
		if len(body) != len(f.words)*4 {
			return nil, fmt.Errorf("blocked: body length %d, want %d", len(body), len(f.words)*4)
		}
		for i := range f.words {
			f.words[i] = le.Uint32(body[i*4:])
		}
	case *Filter[uint64]:
		if f.numBlocks != numBlocks {
			return nil, fmt.Errorf("blocked: block count mismatch (%d vs %d)", f.numBlocks, numBlocks)
		}
		if len(body) != len(f.words)*8 {
			return nil, fmt.Errorf("blocked: body length %d, want %d", len(body), len(f.words)*8)
		}
		for i := range f.words {
			f.words[i] = le.Uint64(body[i*8:])
		}
	}
	return probe, nil
}

// ensure both instantiations implement the marshaler shape used by the
// public API.
var (
	_ interface{ MarshalBinary() ([]byte, error) } = (*Filter[uint32])(nil)
	_ interface{ MarshalBinary() ([]byte, error) } = (*Filter[uint64])(nil)
	_ core.BatchProber                             = (*Filter[uint32])(nil)
)
