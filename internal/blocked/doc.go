// Package blocked implements the paper's blocked Bloom filter family (§3)
// behind a single parameterized implementation:
//
//   - plain blocked (Putze et al.): block = cache line, each of the k bits
//     addressed anywhere in the block (Listing 1);
//   - register-blocked (§3.1, new in the paper): block = one processor word,
//     all k bits tested with a single comparison (Listing 2);
//   - sectorized (§3.2): the block is divided into s = B/S word-sized
//     sectors and each key sets k/s bits in every sector, giving a
//     sequential access pattern and word-at-a-time bit tests;
//   - cache-sectorized (§3.2, new in the paper): the s sectors are grouped
//     into z groups; a key selects one sector per group (by hash) and sets
//     k/z bits there, spreading bits over the whole cache line while
//     accessing only z words.
//
// The block partitioning of the cache-sectorized variant (the paper's
// Figure 6) for B=512, S=64, z=2:
//
//	block (512 bits = 1 cache line)
//	┌────────────────────────────┬────────────────────────────┐
//	│   group Z0: S0 S1 S2 S3    │   group Z1: S4 S5 S6 S7    │
//	└────────────────────────────┴────────────────────────────┘
//	 insert/lookup: pick one Si per group, set/test k/z bits in it
//
// All variants share one hash-bit consumption discipline (package hashing),
// so the scalar path, the batch kernels, and the analytic FPR models in
// package fpr agree bit-for-bit. Block addressing is either a power-of-two
// mask or magic modulo (package magic), selectable per filter.
//
// Filters are safe for concurrent readers; inserts require external
// synchronization. Memory is allocated in whole blocks; Go's allocator
// page-aligns the backing array for all but the tiniest filters, so blocks
// do not straddle cache lines in practice.
package blocked
