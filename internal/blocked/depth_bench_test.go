package blocked

import (
	"fmt"
	"testing"

	"perfilter/internal/rng"
	"perfilter/internal/simd"
)

// TestPipelinedKernelsMatchGeneric pins the pipelined kernels to the
// generic bit-walk kernel at batch lengths straddling every pipeline
// boundary (empty, sub-depth, exact multiples, off-by-one around them),
// so a depth change can never silently break the remainder loop or the
// group-ahead mask precompute.
func TestPipelinedKernelsMatchGeneric(t *testing.T) {
	configs := []struct {
		name   string
		p      Params
		unroll int
	}{
		{"register", RegisterBlockedParams(64, 8, false), registerUnroll},
		{"register-magic", RegisterBlockedParams(32, 4, true), registerUnroll},
		{"cachesec", CacheSectorizedParams(64, 512, 2, 8, false), cacheUnroll},
		{"cachesec-magic", CacheSectorizedParams(64, 512, 2, 8, true), cacheUnroll},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			if cfg.unroll < simd.Width {
				t.Fatalf("pipeline depth %d below simd.Width=%d", cfg.unroll, simd.Width)
			}
			pr, err := New(cfg.p, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			switch f := pr.(type) {
			case *Filter[uint32]:
				checkGenericParity(t, f, cfg.unroll)
			case *Filter[uint64]:
				checkGenericParity(t, f, cfg.unroll)
			default:
				t.Fatalf("unexpected probe type %T", pr)
			}
		})
	}
}

func checkGenericParity[W Word](t *testing.T, f *Filter[W], u int) {
	t.Helper()
	r := rng.NewMT19937(11)
	for i := 0; i < 2000; i++ {
		f.Insert(r.Uint32())
	}
	lens := []int{0, 1, u - 1, u, u + 1, 2*u - 1, 2 * u, 2*u + 1, 3*u + 3, 1024}
	for _, n := range lens {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = r.Uint32()
		}
		got := f.ContainsBatch(keys, nil)
		wantBuf := make([]uint32, n)
		wantCnt := f.batchGeneric(keys, wantBuf, 0)
		want := wantBuf[:wantCnt]
		if len(got) != len(want) {
			t.Fatalf("n=%d: pipelined %d hits, generic %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: position %d: pipelined %d, generic %d", n, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkPipelineDepth probes the two pipelined kernels at an
// L1-resident and a cache-missing filter size — the measurement behind
// the registerUnroll/cacheUnroll depth constants in kernels.go.
func BenchmarkPipelineDepth(b *testing.B) {
	configs := []struct {
		name string
		p    Params
	}{
		{"register", RegisterBlockedParams(64, 8, false)},
		{"cachesec", CacheSectorizedParams(64, 512, 2, 8, true)},
	}
	for _, size := range []uint64{1 << 17, 1 << 26, 1 << 29} {
		for _, cfg := range configs {
			b.Run(fmt.Sprintf("%s/bits=2^%d", cfg.name, log2u64(size)), func(b *testing.B) {
				f, err := New(cfg.p, size)
				if err != nil {
					b.Fatal(err)
				}
				r := rng.NewMT19937(1)
				for i := 0; i < 1<<13; i++ {
					f.Insert(r.Uint32())
				}
				probe := make([]uint32, 1024)
				for i := range probe {
					probe[i] = r.Uint32()
				}
				sel := make([]uint32, 0, 1024)
				b.SetBytes(int64(len(probe) * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sel = f.ContainsBatch(probe, sel[:0])
				}
			})
		}
	}
}

func log2u64(x uint64) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}
