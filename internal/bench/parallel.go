package bench

import (
	"runtime"
	"sync"
	"time"

	"perfilter/internal/blocked"
	"perfilter/internal/core"
	"perfilter/internal/rng"
	"perfilter/internal/sharded"
)

// The parallel-throughput experiment extends the paper's single-threaded
// cost model to the service setting: aggregate insert and probe
// throughput versus goroutine count, for the sharded wrapper against the
// only alternative the base kernels allow — one filter behind one mutex
// ("writes need external synchronization"). The headline cache-sectorized
// configuration is used for both sides so the delta is purely the
// synchronization strategy.

// probeInner adapts blocked.Probe to sharded.Inner.
type probeInner struct{ f blocked.Probe }

func (p probeInner) Insert(key core.Key) error { p.f.Insert(key); return nil }
func (p probeInner) Contains(key core.Key) bool {
	return p.f.Contains(key)
}
func (p probeInner) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	return p.f.ContainsBatch(keys, sel)
}
func (p probeInner) SizeBits() uint64     { return p.f.SizeBits() }
func (p probeInner) FPR(n uint64) float64 { return p.f.FPR(n) }
func (p probeInner) Reset()               { p.f.Reset() }
func (p probeInner) String() string       { return p.f.Params().String() }

func headlineParams() blocked.Params {
	return blocked.CacheSectorizedParams(64, 512, 2, 8, true)
}

func newSharded(mBits uint64, shards int) (*sharded.Filter, error) {
	// SplitBits applies the same rounding sharded.New will, so the
	// sharded side totals the same memory as the baseline.
	perShard, shards := sharded.SplitBits(mBits, shards)
	return sharded.New(func() (sharded.Inner, error) {
		f, err := blocked.New(headlineParams(), perShard)
		if err != nil {
			return nil, err
		}
		return probeInner{f}, nil
	}, shards)
}

// mutexFilter is the baseline: the same total filter behind one lock.
type mutexFilter struct {
	mu sync.Mutex
	f  blocked.Probe
}

// measureParallel runs work on each of g goroutines until the deadline
// and returns aggregate operations per second. Each worker gets an
// independent seed; work returns its operation count.
func measureParallel(g int, d time.Duration, work func(seed uint32, deadline time.Time) uint64) float64 {
	start := time.Now()
	deadline := start.Add(d)
	totals := make([]uint64, g)
	var wg sync.WaitGroup
	wg.Add(g)
	for w := 0; w < g; w++ {
		go func(w int) {
			defer wg.Done()
			totals[w] = work(uint32(1+w), deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var sum uint64
	for _, t := range totals {
		sum += t
	}
	return float64(sum) / elapsed
}

// defaultShards picks the shard count for the experiment: the library's
// own recommendation at the largest tested concurrency, with a key count
// large enough not to trigger the tiny-workload collapse.
func defaultShards(goroutines []int) int {
	maxG := 1
	for _, g := range goroutines {
		if g > maxG {
			maxG = g
		}
	}
	return sharded.Recommend(1<<30, maxG)
}

// ParallelInsert measures aggregate insert throughput (keys/second) for
// each goroutine count: the sharded filter (per-shard locks) against the
// mutex-guarded monolithic baseline, both mBits total. shards <= 0 picks
// defaultShards.
func ParallelInsert(goroutines []int, shards int, mBits uint64, eff Effort) []Series {
	if shards <= 0 {
		shards = defaultShards(goroutines)
	}
	shardedS := Series{
		Name: "sharded", XLabel: "goroutines", YLabel: "keys/s",
	}
	mutexS := Series{
		Name: "mutex", XLabel: "goroutines", YLabel: "keys/s",
	}
	for _, g := range goroutines {
		sf, err := newSharded(mBits, shards)
		if err != nil {
			panic(err)
		}
		y := measureParallel(g, eff.MinTime, func(seed uint32, deadline time.Time) uint64 {
			r := rng.NewMT19937(seed)
			var n uint64
			for time.Now().Before(deadline) {
				for i := 0; i < 4096; i++ {
					sf.Insert(r.Uint32())
				}
				n += 4096
			}
			return n
		})
		shardedS.X = append(shardedS.X, float64(g))
		shardedS.Y = append(shardedS.Y, y)

		mf, err := blocked.New(headlineParams(), mBits)
		if err != nil {
			panic(err)
		}
		base := &mutexFilter{f: mf}
		y = measureParallel(g, eff.MinTime, func(seed uint32, deadline time.Time) uint64 {
			r := rng.NewMT19937(seed)
			var n uint64
			for time.Now().Before(deadline) {
				for i := 0; i < 4096; i++ {
					k := r.Uint32()
					base.mu.Lock()
					base.f.Insert(k)
					base.mu.Unlock()
				}
				n += 4096
			}
			return n
		})
		mutexS.X = append(mutexS.X, float64(g))
		mutexS.Y = append(mutexS.Y, y)
	}
	return []Series{shardedS, mutexS}
}

// ParallelProbe measures aggregate batched-probe throughput (keys/second,
// batches of core.DefaultBatch) for each goroutine count: the sharded
// filter's scatter/gather against the mutex-guarded baseline. Both are
// pre-filled with the same number of keys (12 bits/key, capped at
// maxFill).
func ParallelProbe(goroutines []int, shards int, mBits uint64, eff Effort) []Series {
	if shards <= 0 {
		shards = defaultShards(goroutines)
	}
	n := int(mBits / 12)
	if n > maxFill {
		n = maxFill
	}
	sf, err := newSharded(mBits, shards)
	if err != nil {
		panic(err)
	}
	mf, err := blocked.New(headlineParams(), mBits)
	if err != nil {
		panic(err)
	}
	fillR := rng.NewMT19937(99)
	for i := 0; i < n; i++ {
		k := fillR.Uint32()
		sf.Insert(k)
		mf.Insert(k)
	}
	base := &mutexFilter{f: mf}

	shardedS := Series{Name: "sharded", XLabel: "goroutines", YLabel: "keys/s"}
	mutexS := Series{Name: "mutex", XLabel: "goroutines", YLabel: "keys/s"}
	for _, g := range goroutines {
		y := measureParallel(g, eff.MinTime, func(seed uint32, deadline time.Time) uint64 {
			r := rng.NewMT19937(seed)
			keys := make([]core.Key, core.DefaultBatch)
			sel := make(core.SelVec, 0, len(keys))
			var cnt uint64
			for time.Now().Before(deadline) {
				for i := range keys {
					keys[i] = r.Uint32()
				}
				sel = sf.ContainsBatch(keys, sel[:0])
				cnt += uint64(len(keys))
			}
			return cnt
		})
		shardedS.X = append(shardedS.X, float64(g))
		shardedS.Y = append(shardedS.Y, y)

		y = measureParallel(g, eff.MinTime, func(seed uint32, deadline time.Time) uint64 {
			r := rng.NewMT19937(seed)
			keys := make([]core.Key, core.DefaultBatch)
			sel := make(core.SelVec, 0, len(keys))
			var cnt uint64
			for time.Now().Before(deadline) {
				for i := range keys {
					keys[i] = r.Uint32()
				}
				base.mu.Lock()
				sel = base.f.ContainsBatch(keys, sel[:0])
				base.mu.Unlock()
				cnt += uint64(len(keys))
			}
			return cnt
		})
		mutexS.X = append(mutexS.X, float64(g))
		mutexS.Y = append(mutexS.Y, y)
	}
	return []Series{shardedS, mutexS}
}

// GoroutineCounts returns the experiment's default X axis: powers of two
// up to and including max (GOMAXPROCS when max <= 0).
func GoroutineCounts(max int) []int {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	var out []int
	for g := 1; g < max; g <<= 1 {
		out = append(out, g)
	}
	return append(out, max)
}
