package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// RegressionTolerance is the fraction of baseline throughput a series may
// lose before the comparison fails: 25%, loose enough to absorb shared-CI
// noise but tight enough to catch a disabled fast path (a dead worker
// pool or a lost alignment guarantee costs far more than this).
const RegressionTolerance = 0.25

// BaselineDelta is one series' comparison against the baseline run.
type BaselineDelta struct {
	Name     string  // series name
	Baseline float64 // baseline mean Y
	Current  float64 // this run's mean Y
	Ratio    float64 // Current / Baseline
	Fail     bool    // Ratio below 1 - tolerance
}

// BaselineReport is the full comparison: one delta per series present in
// both runs, plus the names only one side has (never a failure — the
// figure's series set may grow across commits).
type BaselineReport struct {
	Deltas    []BaselineDelta
	Unmatched []string
}

// Regressed reports whether any matched series fell below tolerance.
func (r BaselineReport) Regressed() bool {
	for _, d := range r.Deltas {
		if d.Fail {
			return true
		}
	}
	return false
}

// Format renders the comparison as aligned comment lines.
func (r BaselineReport) Format() string {
	var b strings.Builder
	for _, d := range r.Deltas {
		status := "ok"
		if d.Fail {
			status = "REGRESSED"
		}
		fmt.Fprintf(&b, "# baseline %-12s %10.2f -> %10.2f  (%5.1f%%)  %s\n",
			d.Name, d.Baseline, d.Current, 100*d.Ratio, status)
	}
	for _, name := range r.Unmatched {
		fmt.Fprintf(&b, "# baseline %-12s (no counterpart; skipped)\n", name)
	}
	return b.String()
}

// mean returns the arithmetic mean of ys (0 for an empty series).
func mean(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	var sum float64
	for _, y := range ys {
		sum += y
	}
	return sum / float64(len(ys))
}

// CompareBaseline reads a prior run's BENCH_*.json from path and compares
// each of this run's series against its same-named baseline series by
// mean Y (throughput). A series fails when it retains less than
// 1-tolerance of the baseline mean; series present on only one side are
// reported but never fail.
func CompareBaseline(path string, current []Series, tolerance float64) (BaselineReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BaselineReport{}, fmt.Errorf("bench: read baseline: %w", err)
	}
	var base Summary
	if err := json.Unmarshal(data, &base); err != nil {
		return BaselineReport{}, fmt.Errorf("bench: parse baseline %s: %w", path, err)
	}
	baseMeans := make(map[string]float64, len(base.Series))
	for _, s := range base.Series {
		baseMeans[s.Name] = mean(s.Y)
	}
	var report BaselineReport
	matched := make(map[string]bool, len(current))
	for _, s := range current {
		bm, ok := baseMeans[s.Name]
		if !ok {
			report.Unmatched = append(report.Unmatched, s.Name)
			continue
		}
		matched[s.Name] = true
		cm := mean(s.Y)
		d := BaselineDelta{Name: s.Name, Baseline: bm, Current: cm}
		if bm > 0 {
			d.Ratio = cm / bm
			d.Fail = d.Ratio < 1-tolerance
		} else {
			d.Ratio = 1
		}
		report.Deltas = append(report.Deltas, d)
	}
	for _, s := range base.Series {
		if !matched[s.Name] {
			report.Unmatched = append(report.Unmatched, s.Name+" (baseline only)")
		}
	}
	return report, nil
}
