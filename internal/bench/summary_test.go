package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSummaryWriteJSON(t *testing.T) {
	s := NewSummary("parallel", true, 4, []Series{
		{Name: "sharded", XLabel: "goroutines", YLabel: "keys/s",
			X: []float64{1, 2}, Y: []float64{1e6, 2e6}},
	})
	if len(s.FPR) == 0 {
		t.Fatal("summary carries no FPR entries")
	}
	for _, f := range s.FPR {
		if f.FPR <= 0 || f.FPR >= 1 {
			t.Fatalf("%s: analytic FPR %v out of (0,1)", f.Config, f.FPR)
		}
		if f.MBits != 4<<23 || f.N != f.MBits/16 {
			t.Fatalf("%s: size/fill %d/%d inconsistent with 4 MiB at 16 bits/key", f.Config, f.MBits, f.N)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if back.Experiment != "parallel" || !back.Quick || back.SizeMiB != 4 ||
		len(back.Series) != 1 || len(back.FPR) != len(s.FPR) {
		t.Fatalf("round-tripped summary differs: %+v", back)
	}
}
