package bench

import "testing"

func TestParallelThroughputShape(t *testing.T) {
	counts := []int{1, 2}
	for _, series := range [][]Series{
		ParallelInsert(counts, 8, 1<<20, QuickEffort()),
		ParallelProbe(counts, 8, 1<<20, QuickEffort()),
	} {
		if len(series) != 2 || series[0].Name != "sharded" || series[1].Name != "mutex" {
			t.Fatalf("unexpected series: %+v", series)
		}
		for _, s := range series {
			if len(s.X) != len(counts) || len(s.Y) != len(counts) {
				t.Fatalf("series %s: %d/%d points, want %d", s.Name, len(s.X), len(s.Y), len(counts))
			}
			for i, y := range s.Y {
				if y <= 0 {
					t.Fatalf("series %s: non-positive throughput %.1f at %d goroutines", s.Name, y, counts[i])
				}
			}
		}
	}
}

func TestGoroutineCounts(t *testing.T) {
	got := GoroutineCounts(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("GoroutineCounts(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GoroutineCounts(8) = %v, want %v", got, want)
		}
	}
	if got := GoroutineCounts(6); got[len(got)-1] != 6 {
		t.Fatalf("GoroutineCounts(6) = %v, must end at 6", got)
	}
}
