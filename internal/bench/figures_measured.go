package bench

import (
	"fmt"
	"time"

	"perfilter/internal/blocked"
	"perfilter/internal/core"
	"perfilter/internal/cuckoo"
	"perfilter/internal/model"
)

// Effort controls measurement duration (quick for tests/benches, long for
// the CLI's publication-quality runs).
type Effort struct {
	MinTime time.Duration
	Threads int // 0 = all cores (only Figure 5 is multithreaded)
}

// QuickEffort keeps every measured figure under a few seconds.
func QuickEffort() Effort { return Effort{MinTime: 2 * time.Millisecond} }

// FullEffort is the CLI default.
func FullEffort() Effort { return Effort{MinTime: 100 * time.Millisecond} }

// maxFill caps the keys inserted while building measurement filters. The
// branch-free kernels' lookup cost is load-independent (every probe reads
// the same words regardless of their content), so capping keeps huge-filter
// experiments affordable without changing what is measured.
const maxFill = 2 << 20

// buildBlocked constructs and fills a blocked filter at 12 bits/key.
func buildBlocked(p blocked.Params, mBits uint64) blocked.Probe {
	f, err := blocked.New(p, mBits)
	if err != nil {
		panic(err)
	}
	n := int(mBits / 12)
	if n > maxFill {
		n = maxFill
	}
	fill(func(k core.Key) bool { f.Insert(k); return true }, n, 0xF11)
	return f
}

// buildCuckoo constructs and fills a cuckoo filter to 80% of its load limit.
func buildCuckoo(p cuckoo.Params, mBits uint64) *cuckoo.Filter {
	f, err := cuckoo.New(p, mBits)
	if err != nil {
		panic(err)
	}
	n := int(0.8 * float64(f.NumBuckets()) * float64(p.BucketSize))
	if n > maxFill {
		n = maxFill
	}
	fill(func(k core.Key) bool { return f.Insert(k) == nil }, n, 0xF11)
	return f
}

// Fig5Sectorization reproduces Figure 5: multi-threaded lookup throughput
// for blocked filters with one sector vs word-sectorized filters, as the
// block size grows from one word to a cache line. sizeBits selects the
// cache- or DRAM-resident panel (the paper uses 16 KiB and 256 MiB).
func Fig5Sectorization(sizeBits uint64, k uint32, eff Effort) []Series {
	threads := eff.Threads
	if threads <= 0 {
		threads = host().Cores
	}
	probe := probeKeys(core.DefaultBatch, 0xABC)
	blockedSeries := Series{Name: "blocked-one-sector", XLabel: "words-per-block", YLabel: "Mlookups/s"}
	sectorSeries := Series{Name: "sectorized", XLabel: "words-per-block", YLabel: "Mlookups/s"}
	for _, wpb := range []uint32{1, 2, 4, 8, 16} {
		blockBits := wpb * 32
		// One sector spanning the whole block (random access, Listing 1).
		pb := blocked.Params{WordBits: 32, BlockBits: blockBits,
			SectorBits: blockBits, Z: 1, K: k}
		fb := buildBlocked(pb, sizeBits)
		blockedSeries.X = append(blockedSeries.X, float64(wpb))
		blockedSeries.Y = append(blockedSeries.Y,
			measureThroughput(fb, probe, threads, eff.MinTime)/1e6)
		// Word-sized sectors (sequential access, Listing 2 per word).
		ps := blocked.Params{WordBits: 32, BlockBits: blockBits,
			SectorBits: 32, Z: wpb, K: k}
		if err := ps.Validate(); err != nil {
			panic(err)
		}
		fs := buildBlocked(ps, sizeBits)
		sectorSeries.X = append(sectorSeries.X, float64(wpb))
		sectorSeries.Y = append(sectorSeries.Y,
			measureThroughput(fs, probe, threads, eff.MinTime)/1e6)
	}
	return []Series{blockedSeries, sectorSeries}
}

// Fig9MagicModulo reproduces Figure 9: lookup cost across filter sizes for
// the cache-sectorized filter (k=8, B=512, z=2), power-of-two vs magic
// sizes. Magic fills the gaps between the power-of-two points; around
// cache-capacity boundaries the flexibility wins, and its overhead
// elsewhere stays modest.
func Fig9MagicModulo(maxBits uint64, eff Effort) []Series {
	h := host()
	probe := probeKeys(core.DefaultBatch, 0x919)
	pow2 := Series{Name: "pow2", XLabel: "filter-MiB", YLabel: "cycles/lookup"}
	magic := Series{Name: "magic", XLabel: "filter-MiB", YLabel: "cycles/lookup"}
	for mBits := uint64(1 << 20); mBits <= maxBits; mBits = mBits * 5 / 4 {
		p := blocked.CacheSectorizedParams(32, 512, 2, 8, false)
		isPow2 := mBits&(mBits-1) == 0
		if isPow2 {
			f := buildBlocked(p, mBits)
			ns := measureBatchNs(f, probe, eff.MinTime)
			pow2.X = append(pow2.X, float64(mBits)/8/(1<<20))
			pow2.Y = append(pow2.Y, ns*h.CyclesPerNs)
		}
		pm := p
		pm.Magic = true
		fm := buildBlocked(pm, mBits)
		ns := measureBatchNs(fm, probe, eff.MinTime)
		magic.X = append(magic.X, float64(mBits)/8/(1<<20))
		magic.Y = append(magic.Y, ns*h.CyclesPerNs)
	}
	return []Series{magic, pow2}
}

// Fig14LookupScaling reproduces Figure 14: cycles per lookup across filter
// sizes for the paper's three representative filters (register-blocked
// B=32 k=4; cache-sectorized B=512 k=8 z=2; cuckoo b=2 l=16).
func Fig14LookupScaling(minBits, maxBits uint64, eff Effort) []Series {
	h := host()
	probe := probeKeys(core.DefaultBatch, 0x1414)
	type entry struct {
		name  string
		build func(mBits uint64) core.BatchProber
	}
	entries := []entry{
		{"register-blocked(B=32,k=4)", func(m uint64) core.BatchProber {
			return buildBlocked(blocked.RegisterBlockedParams(32, 4, false), m)
		}},
		{"cache-sectorized(B=512,k=8,z=2)", func(m uint64) core.BatchProber {
			return buildBlocked(blocked.CacheSectorizedParams(32, 512, 2, 8, false), m)
		}},
		{"cuckoo(b=2,l=16)", func(m uint64) core.BatchProber {
			return buildCuckoo(cuckoo.Params{TagBits: 16, BucketSize: 2}, m)
		}},
	}
	var out []Series
	for _, e := range entries {
		s := Series{Name: e.name, XLabel: "filter-KiB", YLabel: "cycles/lookup"}
		for mBits := minBits; mBits <= maxBits; mBits *= 4 {
			f := e.build(mBits)
			ns := measureBatchNs(f, probe, eff.MinTime)
			s.X = append(s.X, float64(mBits)/8/1024)
			s.Y = append(s.Y, ns*h.CyclesPerNs)
		}
		out = append(out, s)
	}
	return out
}

// Fig15Row is one bar group of Figure 15: a filter's scalar and batched
// lookup costs with power-of-two and magic addressing, on an L1-resident
// filter, single-threaded.
type Fig15Row struct {
	Filter            string
	ScalarPow2Cycles  float64
	BatchPow2Cycles   float64
	SpeedupPow2       float64
	ScalarMagicCycles float64
	BatchMagicCycles  float64
	SpeedupMagic      float64
}

// Fig15BatchSpeedup reproduces Figure 15 on the host: the batched
// ("software SIMD") kernels against one-key-at-a-time lookups for the three
// representative filters. The paper's hardware-SIMD speedups reach 10×;
// pure-Go batching is bounded by loop/branch amortization — EXPERIMENTS.md
// discusses the gap.
func Fig15BatchSpeedup(eff Effort) []Fig15Row {
	const mBits = 16 << 10 * 8 // 16 KiB, L1-resident
	h := host()
	probe := probeKeys(core.DefaultBatch, 0x1515)
	type filterPair struct {
		name string
		mk   func(useMagic bool) prober
	}
	pairs := []filterPair{
		{"cuckoo(b=2,l=16)", func(m bool) prober {
			return buildCuckoo(cuckoo.Params{TagBits: 16, BucketSize: 2, Magic: m}, mBits)
		}},
		{"register-blocked(B=32,k=4)", func(m bool) prober {
			return buildBlocked(blocked.RegisterBlockedParams(32, 4, m), mBits).(prober)
		}},
		{"cache-sectorized(B=512,k=8,z=2)", func(m bool) prober {
			return buildBlocked(blocked.CacheSectorizedParams(32, 512, 2, 8, m), mBits).(prober)
		}},
	}
	var rows []Fig15Row
	for _, p := range pairs {
		row := Fig15Row{Filter: p.name}
		fp := p.mk(false)
		row.ScalarPow2Cycles = measureScalarNs(fp, probe, eff.MinTime) * h.CyclesPerNs
		row.BatchPow2Cycles = measureBatchNs(fp, probe, eff.MinTime) * h.CyclesPerNs
		row.SpeedupPow2 = row.ScalarPow2Cycles / row.BatchPow2Cycles
		fm := p.mk(true)
		row.ScalarMagicCycles = measureScalarNs(fm, probe, eff.MinTime) * h.CyclesPerNs
		row.BatchMagicCycles = measureBatchNs(fm, probe, eff.MinTime) * h.CyclesPerNs
		row.SpeedupMagic = row.ScalarMagicCycles / row.BatchMagicCycles
		rows = append(rows, row)
	}
	return rows
}

// FormatFig15 renders Figure 15 rows as a table.
func FormatFig15(rows []Fig15Row) string {
	out := fmt.Sprintf("%-34s %12s %12s %8s %12s %12s %8s\n",
		"filter", "scalar-pow2", "batch-pow2", "speedup", "scalar-magic", "batch-magic", "speedup")
	for _, r := range rows {
		out += fmt.Sprintf("%-34s %12.2f %12.2f %8.2f %12.2f %12.2f %8.2f\n",
			r.Filter, r.ScalarPow2Cycles, r.BatchPow2Cycles, r.SpeedupPow2,
			r.ScalarMagicCycles, r.BatchMagicCycles, r.SpeedupMagic)
	}
	return out + "(cycles per lookup, 16 KiB filters, single thread)\n"
}

// AblationCuckooBucket measures the paper's b=2-beats-b=4 finding (§6,
// Fig. 13b) directly: overhead ρ at a mid-range tw for bucket sizes 1, 2
// and 4 at equal memory budget.
func AblationCuckooBucket(tw float64, eff Effort) Series {
	h := host()
	probe := probeKeys(core.DefaultBatch, 0xB0B)
	s := Series{Name: fmt.Sprintf("cuckoo-rho(tw=%g)", tw),
		XLabel: "bucket-size", YLabel: "overhead-cycles"}
	const n = 40000
	for _, b := range []uint32{1, 2, 4} {
		p := cuckoo.Params{TagBits: 12, BucketSize: b, Magic: true}
		mBits := p.SizeForKeys(n)
		f, err := cuckoo.New(p, mBits)
		if err != nil {
			panic(err)
		}
		fill(func(k core.Key) bool { return f.Insert(k) == nil }, n, 0xB0B1)
		ns := measureBatchNs(f, probe, eff.MinTime)
		rho := model.Overhead(ns*h.CyclesPerNs, f.FPR(n), tw)
		s.X = append(s.X, float64(b))
		s.Y = append(s.Y, rho)
	}
	return s
}

// AblationBatchWidthNote: the batch kernels' unroll width is a compile-time
// constant (simd.Width); the root bench_test.go measures the batch-vs-scalar
// ratio instead, which is the observable consequence of the width choice.
