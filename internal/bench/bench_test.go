package bench

import (
	"strings"
	"testing"
	"time"

	"perfilter/internal/blocked"
	"perfilter/internal/model"
)

func TestFormatSeries(t *testing.T) {
	s := []Series{
		{Name: "a", XLabel: "x", YLabel: "y", X: []float64{1, 2}, Y: []float64{3, 4}},
		{Name: "b", XLabel: "x", YLabel: "y", X: []float64{1, 2}, Y: []float64{5}},
	}
	out := Format(s)
	if !strings.Contains(out, "a(y)") || !strings.Contains(out, "b(y)") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "\t-") {
		t.Fatal("missing-value placeholder absent")
	}
	if Format(nil) != "(no data)\n" {
		t.Fatal("empty format wrong")
	}
}

func TestFig3Shape(t *testing.T) {
	cfg := model.Config{Kind: model.KindBlockedBloom,
		Bloom: blocked.CacheSectorizedParams(64, 512, 2, 8, true)}
	s := Fig3OverheadCurve(cfg, 1<<22, 1024, model.SKX())
	if len(s.X) < 10 {
		t.Fatal("too few points")
	}
	// U-shape: the minimum must be interior, not at either end.
	minIdx := 0
	for i, y := range s.Y {
		if y < s.Y[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(s.Y)-1 {
		t.Fatalf("overhead curve not U-shaped: min at %d/%d", minIdx, len(s.Y))
	}
}

func TestFig4Ordering(t *testing.T) {
	series := Fig4BlockingImpact()
	if len(series) != 4 {
		t.Fatal("want 4 series")
	}
	// At every bits-per-key: classic ≤ blocked512 ≤ blocked64 ≤ blocked32.
	for i := range series[0].X {
		c, b512, b64, b32 := series[0].Y[i], series[3].Y[i], series[2].Y[i], series[1].Y[i]
		if !(c <= b512*1.000001 && b512 <= b64*1.000001 && b64 <= b32*1.000001) {
			t.Fatalf("ordering broken at %v bpk: %g %g %g %g",
				series[0].X[i], c, b512, b64, b32)
		}
	}
	ks := Fig4OptimalK()
	for _, s := range ks {
		for _, k := range s.Y {
			if k < 1 || k > 16 {
				t.Fatalf("optimal k %v out of range", k)
			}
		}
	}
}

func TestFig7CacheSectorizedBeatsSectorized(t *testing.T) {
	series := Fig7SectorizationFPR()
	var cs4, sect Series
	for _, s := range series {
		switch s.Name {
		case "cache-sectorized-z4":
			cs4 = s
		case "sectorized":
			sect = s
		}
	}
	for i := range cs4.X {
		if cs4.Y[i] > sect.Y[i]*1.000001 {
			t.Fatalf("at %v bpk cache-sectorized (%g) worse than sectorized (%g)",
				cs4.X[i], cs4.Y[i], sect.Y[i])
		}
	}
}

func TestFig8Monotonicity(t *testing.T) {
	series := Fig8CuckooFPR()
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	for i := range byName["l8-b4"].X {
		if byName["l16-b4"].Y[i] >= byName["l12-b4"].Y[i] ||
			byName["l12-b4"].Y[i] >= byName["l8-b4"].Y[i] {
			t.Fatal("longer signatures must lower FPR")
		}
		if byName["l8-b2"].Y[i] >= byName["l8-b4"].Y[i] ||
			byName["l8-b4"].Y[i] >= byName["l8-b8"].Y[i] {
			t.Fatal("bigger buckets must raise FPR")
		}
	}
}

func TestFig10AllPlatforms(t *testing.T) {
	models := []model.CostModel{model.Xeon(), model.KNL(), model.SKX(), model.Ryzen()}
	out := Fig10Skylines(models, false)
	if strings.Count(out, "skyline") != 4 {
		t.Fatal("expected 4 platform maps")
	}
	if !strings.Contains(out, "B") || !strings.Contains(out, "C") {
		t.Fatal("maps missing regions")
	}
}

func TestFig11Maps(t *testing.T) {
	out := Fig11SpeedupAndFPR(model.SKX(), false)
	if !strings.Contains(out, "Fig. 11a") || !strings.Contains(out, "Fig. 11b") {
		t.Fatal("missing panels")
	}
}

func TestFig12And13Facets(t *testing.T) {
	caches := [3]uint64{32 << 10, 1 << 20, 14 << 20}
	f12 := Fig12BloomFacets(model.SKX(), caches, false)
	for _, want := range []string{"12a", "12b", "12c", "12d", "12e", "12f", "12g"} {
		if !strings.Contains(f12, want) {
			t.Fatalf("Fig12 missing facet %s", want)
		}
	}
	f13 := Fig13CuckooFacets(model.SKX(), caches, false)
	for _, want := range []string{"13a", "13b", "13c", "13d"} {
		if !strings.Contains(f13, want) {
			t.Fatalf("Fig13 missing facet %s", want)
		}
	}
}

func TestFig1IncludesExactRegion(t *testing.T) {
	out := Fig1Summary(model.SKX(), 14<<20, false)
	if !strings.Contains(out, "E") {
		t.Fatal("no exact region in Fig 1 map")
	}
	if !strings.Contains(out, "B") || !strings.Contains(out, "C") {
		t.Fatal("missing filter regions")
	}
}

func TestTable1(t *testing.T) {
	out := Table1Platforms()
	for _, want := range []string{"Xeon", "Knights", "Skylake", "Ryzen", "host"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %s:\n%s", want, out)
		}
	}
}

func TestFig5Measured(t *testing.T) {
	// Moderate single-threaded effort: the multi-threaded quick mode is
	// too noisy for assertions on this class of host.
	eff := Effort{MinTime: 10 * time.Millisecond, Threads: 1}
	series := Fig5Sectorization(16<<10*8, 16, eff)
	if len(series) != 2 || len(series[0].X) != 5 {
		t.Fatal("unexpected shape")
	}
	for _, s := range series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s[%d]: non-positive throughput", s.Name, i)
			}
		}
	}
	// The paper's ≈2× sectorization advantage at 16 words is a SIMD-gather
	// phenomenon; branch-free scalar kernels run the two layouts at parity
	// (EXPERIMENTS.md, Figure 5). The reproducible assertions: both curves
	// decline from one word to a full cache line, and sectorized stays
	// within parity bounds of one-sector blocked at 16 words.
	last := len(series[0].Y) - 1
	for _, s := range series {
		if s.Y[last] >= s.Y[0] {
			t.Fatalf("%s: throughput did not decline with block size (%.1f -> %.1f M/s)",
				s.Name, s.Y[0], s.Y[last])
		}
	}
	ratio := series[1].Y[last] / series[0].Y[last]
	if ratio < 1.0/3 || ratio > 4 {
		t.Fatalf("sectorized/blocked ratio %.2f at 16 words outside parity bounds", ratio)
	}
}

func TestFig9Measured(t *testing.T) {
	series := Fig9MagicModulo(1<<23, QuickEffort())
	if len(series) != 2 {
		t.Fatal("want magic + pow2 series")
	}
	if len(series[0].X) <= len(series[1].X) {
		t.Fatal("magic must cover more sizes than pow2")
	}
}

func TestFig14Measured(t *testing.T) {
	series := Fig14LookupScaling(1<<17, 1<<23, QuickEffort())
	if len(series) != 3 {
		t.Fatal("want 3 filters")
	}
	for _, s := range series {
		if len(s.X) < 2 {
			t.Fatalf("%s: too few sizes", s.Name)
		}
		for _, y := range s.Y {
			if y <= 0 || y > 10000 {
				t.Fatalf("%s: implausible %v cycles", s.Name, y)
			}
		}
	}
}

func TestFig15Measured(t *testing.T) {
	rows := Fig15BatchSpeedup(QuickEffort())
	if len(rows) != 3 {
		t.Fatal("want 3 filters")
	}
	out := FormatFig15(rows)
	if !strings.Contains(out, "cuckoo") || !strings.Contains(out, "register-blocked") {
		t.Fatal("table incomplete")
	}
	for _, r := range rows {
		if r.BatchPow2Cycles <= 0 || r.ScalarPow2Cycles <= 0 {
			t.Fatalf("%s: non-positive measurements", r.Filter)
		}
	}
}

func TestAblationCuckooBucket(t *testing.T) {
	s := AblationCuckooBucket(1<<14, QuickEffort())
	if len(s.X) != 3 {
		t.Fatal("want b ∈ {1,2,4}")
	}
	for _, y := range s.Y {
		if y <= 0 {
			t.Fatal("non-positive overhead")
		}
	}
}
