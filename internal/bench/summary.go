package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"perfilter/internal/adaptive"
	"perfilter/internal/blocked"
	"perfilter/internal/cuckoo"
	"perfilter/internal/model"
)

// Summary is the machine-readable result of one filter-bench run —
// written as BENCH_*.json so CI can archive throughput/FPR trajectories
// across commits instead of scraping stdout.
type Summary struct {
	Experiment string           `json:"experiment"`
	Quick      bool             `json:"quick"`
	SizeMiB    uint64           `json:"size_mib"`
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Series     []Series         `json:"series"`
	Fig15      []Fig15Row       `json:"fig15,omitempty"`
	Adaptive   *AdaptiveSummary `json:"adaptive,omitempty"`
	FPR        []FPRSummary     `json:"fpr"`
}

// AdaptiveSummary is the -adaptive scenario's machine-readable record:
// the paper's Bloom-overtakes-Cuckoo crossover happening *live*, with the
// control loop's decisions alongside the modeled boundary so CI archives
// where (and that) the filter kind flipped.
type AdaptiveSummary struct {
	Tw               float64             `json:"tw"`
	StartN           uint64              `json:"start_n"`
	FinalN           uint64              `json:"final_n"`
	StartKind        string              `json:"start_kind"`
	FinalKind        string              `json:"final_kind"`
	ModeledCrossover uint64              `json:"modeled_crossover_n"`
	KindFlipN        uint64              `json:"kind_flip_n"`
	Migrations       int                 `json:"migrations"`
	Decisions        []adaptive.Decision `json:"decisions"`
}

// FPRSummary is one headline configuration's analytic false-positive rate
// at the run's filter size and the sweep's 16 bits/key fill.
type FPRSummary struct {
	Config string  `json:"config"`
	MBits  uint64  `json:"mbits"`
	N      uint64  `json:"n"`
	FPR    float64 `json:"fpr"`
}

// headlineConfigs are the paper's flagship configurations, reported in
// every summary so FPR is tracked alongside throughput.
func headlineConfigs() []model.Config {
	return []model.Config{
		{Kind: model.KindBlockedBloom, Bloom: blocked.CacheSectorizedParams(64, 512, 2, 8, true)},
		{Kind: model.KindBlockedBloom, Bloom: blocked.RegisterBlockedParams(64, 2, true)},
		{Kind: model.KindCuckoo, Cuckoo: cuckoo.Params{TagBits: 16, BucketSize: 2, Magic: true}},
	}
}

// NewSummary assembles a Summary for the run: the experiment's series
// plus the headline configurations' analytic FPR at the run's size.
func NewSummary(experiment string, quick bool, sizeMiB uint64, series []Series) Summary {
	mBits := sizeMiB << 23
	n := mBits / 16 // the sweep's 16 bits/key midpoint
	s := Summary{
		Experiment: experiment,
		Quick:      quick,
		SizeMiB:    sizeMiB,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Series:     series,
	}
	for _, cfg := range headlineConfigs() {
		s.FPR = append(s.FPR, FPRSummary{
			Config: cfg.String(), MBits: mBits, N: n, FPR: cfg.FPR(mBits, n),
		})
	}
	return s
}

// WriteJSON writes the summary to path (indented, trailing newline).
func (s Summary) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal summary: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
