package bench

import (
	"fmt"
	"math"
	"strings"

	"perfilter/internal/fpr"
	"perfilter/internal/model"
)

// Fig3OverheadCurve reproduces Figure 3: the overhead ρ as a function of
// the filter size m for a fixed configuration, problem size and tw. The
// curve is U-shaped: too small → false positives dominate; too large →
// lookups miss cache.
func Fig3OverheadCurve(cfg model.Config, n uint64, tw float64, cost model.CostModel) Series {
	s := Series{
		Name:   fmt.Sprintf("rho(%s, n=%d, tw=%g)", cfg, n, tw),
		XLabel: "bits-per-key",
		YLabel: "overhead-cycles",
	}
	for bpk := 2.0; bpk <= 64; bpk *= math.Pow(2, 0.125) {
		m := cfg.ActualBits(uint64(bpk * float64(n)))
		f := cfg.FPR(m, n)
		tl := cost.LookupCycles(cfg, m)
		s.X = append(s.X, float64(m)/float64(n))
		s.Y = append(s.Y, model.Overhead(tl, f, tw))
	}
	return s
}

// Fig4BlockingImpact reproduces Figure 4a: false-positive rate vs
// bits-per-key for the classic filter and blocked filters with B ∈
// {32, 64, 512}, each at its optimal k.
func Fig4BlockingImpact() []Series {
	bpks := seq(4, 20, 0.5)
	mk := func(name string, f func(bpk float64) float64) Series {
		s := Series{Name: name, XLabel: "bits-per-key", YLabel: "fpr"}
		for _, bpk := range bpks {
			s.X = append(s.X, bpk)
			s.Y = append(s.Y, f(bpk))
		}
		return s
	}
	const scale = 1 << 20 // evaluate classic at scale to avoid small-m bias
	return []Series{
		mk("classic", func(bpk float64) float64 {
			return fpr.Std(bpk*scale, scale, fpr.OptimalKStd(bpk))
		}),
		mk("blocked32", func(bpk float64) float64 {
			return fpr.Blocked(bpk, 1, fpr.OptimalKBlocked(bpk, 32), 32)
		}),
		mk("blocked64", func(bpk float64) float64 {
			return fpr.Blocked(bpk, 1, fpr.OptimalKBlocked(bpk, 64), 64)
		}),
		mk("blocked512", func(bpk float64) float64 {
			return fpr.Blocked(bpk, 1, fpr.OptimalKBlocked(bpk, 512), 512)
		}),
	}
}

// Fig4OptimalK reproduces Figure 4b: the optimal k per bits-per-key rate.
func Fig4OptimalK() []Series {
	bpks := seq(4, 20, 0.5)
	mk := func(name string, f func(bpk float64) uint32) Series {
		s := Series{Name: name, XLabel: "bits-per-key", YLabel: "optimal-k"}
		for _, bpk := range bpks {
			s.X = append(s.X, bpk)
			s.Y = append(s.Y, float64(f(bpk)))
		}
		return s
	}
	return []Series{
		mk("classic", fpr.OptimalKStd),
		mk("blocked32", func(b float64) uint32 { return fpr.OptimalKBlocked(b, 32) }),
		mk("blocked64", func(b float64) uint32 { return fpr.OptimalKBlocked(b, 64) }),
		mk("blocked512", func(b float64) uint32 { return fpr.OptimalKBlocked(b, 512) }),
	}
}

// Fig7SectorizationFPR reproduces Figure 7: FPR of sectorized vs
// cache-sectorized blocks at k=8, alongside the register-blocked and plain
// blocked references (dashed lines in the paper).
func Fig7SectorizationFPR() []Series {
	bpks := seq(8, 20, 0.5)
	mk := func(name string, f func(bpk float64) float64) Series {
		s := Series{Name: name, XLabel: "bits-per-key", YLabel: "fpr"}
		for _, bpk := range bpks {
			s.X = append(s.X, bpk)
			s.Y = append(s.Y, f(bpk))
		}
		return s
	}
	return []Series{
		// 4 words accessed, bits spread over a 512-bit line.
		mk("cache-sectorized-z4", func(b float64) float64 {
			return fpr.CacheSectorized(b, 1, 8, 512, 64, 4)
		}),
		// 2 words accessed, same spread.
		mk("cache-sectorized-z2", func(b float64) float64 {
			return fpr.CacheSectorized(b, 1, 8, 512, 64, 2)
		}),
		// 4 words accessed, bits confined to a 256-bit block.
		mk("sectorized", func(b float64) float64 {
			return fpr.Sectorized(b, 1, 8, 256, 64)
		}),
		mk("register-blocked", func(b float64) float64 {
			return fpr.Blocked(b, 1, 8, 32)
		}),
		mk("blocked", func(b float64) float64 {
			return fpr.Blocked(b, 1, 8, 512)
		}),
	}
}

// Fig8CuckooFPR reproduces Figure 8: cuckoo FPR vs bits-per-key for
// (a) signature lengths at b=4 and (b) bucket sizes at l=8.
func Fig8CuckooFPR() []Series {
	bpks := seq(10, 20, 0.5)
	mk := func(name string, l, b uint32) Series {
		s := Series{Name: name, XLabel: "bits-per-key", YLabel: "fpr"}
		for _, bpk := range bpks {
			s.X = append(s.X, bpk)
			s.Y = append(s.Y, fpr.CuckooFromSize(bpk, 1, l, b))
		}
		return s
	}
	return []Series{
		mk("l8-b4", 8, 4), mk("l12-b4", 12, 4), mk("l16-b4", 16, 4),
		mk("l8-b2", 8, 2), mk("l8-b8", 8, 8),
	}
}

// Fig10Skylines reproduces Figure 10: the Bloom-vs-Cuckoo type map on all
// four Table 1 platforms (or any cost models passed in).
func Fig10Skylines(models []model.CostModel, full bool) string {
	grid := model.DefaultGrid(full)
	configs := model.DefaultConfigs(full)
	opts := model.DefaultSweepOpts()
	var b strings.Builder
	for _, cm := range models {
		sky := model.ComputeSkyline(grid, configs, cm, opts)
		b.WriteString(sky.RenderTypeMap())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig11SpeedupAndFPR reproduces Figure 11: per-cell speedup of the winner
// over the losing family (a) and the winner's false-positive rate (b),
// both rendered as coarse ASCII maps.
func Fig11SpeedupAndFPR(cm model.CostModel, full bool) string {
	grid := model.DefaultGrid(full)
	sky := model.ComputeSkyline(grid, model.DefaultConfigs(full), cm, model.DefaultSweepOpts())
	var b strings.Builder
	b.WriteString("speedup of best filter over its counterpart (Fig. 11a):\n")
	b.WriteString(renderMap(sky, func(c model.Cell) byte {
		s := c.Speedup()
		switch {
		case s < 1.05:
			return '.'
		case s < 1.25:
			return '1'
		case s < 1.5:
			return '2'
		case s < 2:
			return '3'
		case s < 3:
			return '4'
		case s < 5:
			return '5'
		default:
			return '+'
		}
	}))
	b.WriteString("\nfalse-positive rate of the winning filter (Fig. 11b):\n")
	b.WriteString(renderMap(sky, func(c model.Cell) byte {
		_, best := c.Winner(model.KindBlockedBloom, model.KindCuckoo)
		switch {
		case math.IsInf(best.Rho, 1):
			return ' '
		case best.F < 1e-4:
			return '5'
		case best.F < 1e-3:
			return '4'
		case best.F < 1e-2:
			return '3'
		case best.F < 1e-1:
			return '2'
		default:
			return '1'
		}
	}))
	b.WriteString("legend 11b: 5: f<1e-4  4: <1e-3  3: <1e-2  2: <1e-1  1: >=1e-1\n")
	return b.String()
}

// Fig12BloomFacets reproduces Figure 12: facet maps of the winning Bloom
// configuration (variant, block size, sector count, z, k, modulo, size
// class).
func Fig12BloomFacets(cm model.CostModel, caches [3]uint64, full bool) string {
	grid := model.DefaultGrid(full)
	sky := model.ComputeSkyline(grid, model.DefaultConfigs(full), cm, model.DefaultSweepOpts())
	bloomBest := func(c model.Cell) (model.Best, bool) {
		b := c.ByKind[model.KindBlockedBloom]
		return b, !math.IsInf(b.Rho, 1)
	}
	var b strings.Builder
	facet := func(title, legend string, f func(model.Best) byte) {
		fmt.Fprintf(&b, "%s:\n", title)
		b.WriteString(renderMap(sky, func(c model.Cell) byte {
			best, ok := bloomBest(c)
			if !ok {
				return ' '
			}
			return f(best)
		}))
		fmt.Fprintf(&b, "legend: %s\n\n", legend)
	}
	facet("Bloom variant (Fig. 12a)", "R register-blocked, B blocked, S sectorized, C cache-sectorized",
		func(best model.Best) byte {
			switch best.Config.Bloom.Variant().String() {
			case "register-blocked":
				return 'R'
			case "blocked":
				return 'B'
			case "sectorized":
				return 'S'
			default:
				return 'C'
			}
		})
	facet("block size bytes (Fig. 12b)", "4/8/16/32/64 bytes → 4,8,g,h,j",
		func(best model.Best) byte {
			switch best.Config.Bloom.BlockBits {
			case 32:
				return '4'
			case 64:
				return '8'
			case 128:
				return 'g'
			case 256:
				return 'h'
			default:
				return 'j'
			}
		})
	facet("sector count (Fig. 12c)", "1,2,4,8,g=16",
		func(best model.Best) byte { return countChar(best.Config.Bloom.Sectors()) })
	facet("cache-sectorization z (Fig. 12d)", "1,2,4,8",
		func(best model.Best) byte { return countChar(best.Config.Bloom.Z) })
	facet("hash functions k (Fig. 12e)", "1..9, g=10+",
		func(best model.Best) byte { return countDigit(best.Config.Bloom.K) })
	facet("modulo (Fig. 12f)", "P pow2, M magic",
		func(best model.Best) byte {
			if best.Config.Bloom.Magic {
				return 'M'
			}
			return 'P'
		})
	facet("filter size class (Fig. 12g)", "1 ≤L1, 2 ≤L2, 3 ≤L3, 4 larger",
		func(best model.Best) byte { return sizeClass(best.MBits/8, caches) })
	return b.String()
}

// Fig13CuckooFacets reproduces Figure 13: facet maps of the winning Cuckoo
// configuration (signature length, bucket size, modulo, size class).
func Fig13CuckooFacets(cm model.CostModel, caches [3]uint64, full bool) string {
	grid := model.DefaultGrid(full)
	sky := model.ComputeSkyline(grid, model.DefaultConfigs(full), cm, model.DefaultSweepOpts())
	var b strings.Builder
	facet := func(title, legend string, f func(model.Best) byte) {
		fmt.Fprintf(&b, "%s:\n", title)
		b.WriteString(renderMap(sky, func(c model.Cell) byte {
			best := c.ByKind[model.KindCuckoo]
			if math.IsInf(best.Rho, 1) {
				return ' '
			}
			return f(best)
		}))
		fmt.Fprintf(&b, "legend: %s\n\n", legend)
	}
	facet("signature bits (Fig. 13a)", "4,8,c=12,g=16,w=32",
		func(best model.Best) byte {
			switch best.Config.Cuckoo.TagBits {
			case 4:
				return '4'
			case 8:
				return '8'
			case 12:
				return 'c'
			case 16:
				return 'g'
			default:
				return 'w'
			}
		})
	facet("bucket size (Fig. 13b)", "1,2,4,8",
		func(best model.Best) byte { return countChar(best.Config.Cuckoo.BucketSize) })
	facet("modulo (Fig. 13c)", "P pow2, M magic",
		func(best model.Best) byte {
			if best.Config.Cuckoo.Magic {
				return 'M'
			}
			return 'P'
		})
	facet("filter size class (Fig. 13d)", "1 ≤L1, 2 ≤L2, 3 ≤L3, 4 larger",
		func(best model.Best) byte { return sizeClass(best.MBits/8, caches) })
	return b.String()
}

// Fig1Summary reproduces the conceptual Figure 1: the winner map including
// the exact-structure region (bounded by an L3-resident footprint).
func Fig1Summary(cm model.CostModel, l3Bytes uint64, full bool) string {
	grid := model.DefaultGrid(full)
	opts := model.DefaultSweepOpts()
	opts.MaxExactBytes = l3Bytes
	sky := model.ComputeSkyline(grid, model.DefaultConfigs(full), cm, opts)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 winner map (%s): B bloom, C cuckoo, E exact; rows n (top=large), cols tw\n", cm.Name())
	b.WriteString(renderMap(sky, func(c model.Cell) byte {
		kind, best := c.Winner()
		if math.IsInf(best.Rho, 1) {
			return '.'
		}
		switch kind {
		case model.KindBlockedBloom:
			return 'B'
		case model.KindCuckoo:
			return 'C'
		case model.KindExact:
			return 'E'
		default:
			return 'x'
		}
	}))
	return b.String()
}

// renderMap draws one character per (n, tw) cell, rows descending in n.
func renderMap(sky *model.Skyline, cell func(model.Cell) byte) string {
	var b strings.Builder
	for ni := len(sky.Grid.Ns) - 1; ni >= 0; ni-- {
		row := make([]byte, len(sky.Grid.Tws))
		for ti := range sky.Grid.Tws {
			row[ti] = cell(sky.Cells[ni][ti])
		}
		fmt.Fprintf(&b, "n=%-10d %s\n", sky.Grid.Ns[ni], string(row))
	}
	return b.String()
}

func countChar(x uint32) byte {
	switch {
	case x <= 9:
		return byte('0' + x)
	case x == 16:
		return 'g'
	default:
		return '+'
	}
}

func countDigit(x uint32) byte {
	if x <= 9 {
		return byte('0' + x)
	}
	return 'g'
}

func sizeClass(bytes uint64, caches [3]uint64) byte {
	switch {
	case bytes <= caches[0]:
		return '1'
	case bytes <= caches[1]:
		return '2'
	case caches[2] > 0 && bytes <= caches[2]:
		return '3'
	default:
		return '4'
	}
}

func seq(from, to, step float64) []float64 {
	var out []float64
	for x := from; x <= to+1e-9; x += step {
		out = append(out, x)
	}
	return out
}

// Table1Platforms renders the paper's Table 1 presets next to the host.
func Table1Platforms() string {
	var b strings.Builder
	b.WriteString("platform             L1      L2      L3      SIMD  GHz   threads\n")
	for _, m := range model.Presets() {
		fmt.Fprintf(&b, "%-20s %-7s %-7s %-7s %-5d %-5.1f %d\n",
			m.MachineName, kib(m.L1), kib(m.L2), kib(m.L3),
			m.SIMDBits, m.GHz, m.Threads)
	}
	h := host()
	fmt.Fprintf(&b, "%-20s %-7s %-7s %-7s %-5s %-5.1f %d (measured host)\n",
		trunc(h.Name, 20), kib(h.L1), kib(h.L2), kib(h.L3), "-", h.CyclesPerNs, h.Cores)
	return b.String()
}

func kib(b uint64) string {
	switch {
	case b == 0:
		return "-"
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	default:
		return fmt.Sprintf("%dKiB", b>>10)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
