package bench

import (
	"runtime"
	"time"

	"perfilter/internal/blocked"
	"perfilter/internal/core"
	"perfilter/internal/rng"
)

// The kernels experiment records the two hot-path mechanisms this library
// adds beneath the paper's cost model, so CI can catch a regression in
// either:
//
//   - pool-on / pool-off: batched probe throughput of the sharded filter
//     with its persistent gather workers enabled vs every batch running on
//     the caller's goroutine, across batch sizes straddling the fan-out
//     threshold. Below the threshold the two series must coincide (the
//     pool only engages at parallelBatchMin); above it the pooled series
//     shows what the persistent workers buy on this host.
//
//   - aligned / misaligned: the cache-sectorized probe kernel on word
//     storage starting exactly at a cache-line boundary vs storage
//     deliberately offset one word past it, across filter sizes from
//     L1-resident to DRAM. Misalignment makes some blocks straddle two
//     lines, breaking the one-memory-access-per-probe property (§3), so
//     the aligned series is the guarantee the mem allocator exists to keep.

// measureBatches probes f with fresh pseudo-random batches of batchLen
// keys until the deadline and returns millions of keys per second.
func measureBatches(probe func(keys []core.Key, sel core.SelVec) core.SelVec, batchLen int, d time.Duration) float64 {
	r := rng.NewMT19937(0xBE)
	keys := make([]core.Key, batchLen)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	sel := make(core.SelVec, 0, batchLen)
	// One warm-up batch keys the lazy paths (scratch pools, pool spin-up).
	sel = probe(keys, sel[:0])
	start := time.Now()
	deadline := start.Add(d)
	var n uint64
	for time.Now().Before(deadline) {
		sel = probe(keys, sel[:0])
		n += uint64(batchLen)
	}
	return float64(n) / time.Since(start).Seconds() / 1e6
}

// poolWorkersOn is the worker count the pool-on series forces: the
// default sizing, but at least one worker so the pool mechanism is
// exercised (and measured) even on a single-CPU host where the default
// would be zero.
func poolWorkersOn() int {
	if w := runtime.GOMAXPROCS(0) - 1; w > 0 {
		return w
	}
	return 1
}

// KernelsPool measures sharded batched-probe throughput (Mkeys/s) across
// batch sizes, persistent worker pool on vs off. mBits is the total
// filter size.
func KernelsPool(shards int, mBits uint64, eff Effort) []Series {
	if shards <= 0 {
		shards = 8
	}
	batchLens := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	on := Series{Name: "pool-on", XLabel: "batch", YLabel: "Mkeys/s"}
	off := Series{Name: "pool-off", XLabel: "batch", YLabel: "Mkeys/s"}
	for _, workers := range []int{poolWorkersOn(), 0} {
		sf, err := newSharded(mBits, shards)
		if err != nil {
			panic(err)
		}
		sf.SetPoolSize(workers)
		n := int(mBits / 12)
		if n > maxFill {
			n = maxFill
		}
		fill(func(k core.Key) bool { sf.Insert(k); return true }, n, 0xF11)
		for _, bl := range batchLens {
			y := measureBatches(sf.ContainsBatch, bl, eff.MinTime)
			if workers > 0 {
				on.X = append(on.X, float64(bl))
				on.Y = append(on.Y, y)
			} else {
				off.X = append(off.X, float64(bl))
				off.Y = append(off.Y, y)
			}
		}
		sf.Close()
	}
	return []Series{on, off}
}

// KernelsAlignment measures the cache-sectorized probe kernel (Mkeys/s,
// batches of core.DefaultBatch) on aligned vs deliberately misaligned
// word storage across filter sizes.
func KernelsAlignment(eff Effort) []Series {
	sizes := []uint64{1 << 17, 1 << 23, 1 << 26}
	aligned := Series{Name: "aligned", XLabel: "log2(m)", YLabel: "Mkeys/s"}
	misaligned := Series{Name: "misaligned", XLabel: "log2(m)", YLabel: "Mkeys/s"}
	for _, mBits := range sizes {
		for _, mis := range []bool{false, true} {
			var f blocked.Probe
			var err error
			if mis {
				f, err = blocked.NewMisaligned(headlineParams(), mBits)
			} else {
				f, err = blocked.New(headlineParams(), mBits)
			}
			if err != nil {
				panic(err)
			}
			n := int(mBits / 12)
			if n > maxFill {
				n = maxFill
			}
			fill(func(k core.Key) bool { f.Insert(k); return true }, n, 0xF11)
			y := measureBatches(f.ContainsBatch, core.DefaultBatch, eff.MinTime)
			x := float64(log2(mBits))
			if mis {
				misaligned.X = append(misaligned.X, x)
				misaligned.Y = append(misaligned.Y, y)
			} else {
				aligned.X = append(aligned.X, x)
				aligned.Y = append(aligned.Y, y)
			}
		}
	}
	return []Series{aligned, misaligned}
}

// Kernels runs both hot-path sub-experiments (see the package comment
// above) and returns their four series.
func Kernels(shards int, mBits uint64, eff Effort) []Series {
	return append(KernelsPool(shards, mBits, eff), KernelsAlignment(eff)...)
}

// log2 returns floor(log2(x)) for x > 0.
func log2(x uint64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
