// Package bench contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (§6). Each Fig* function
// returns printable series/tables; cmd/filter-* binaries and the root
// bench_test.go both drive these runners, so `go test -bench` and the CLI
// produce the same experiments.
//
// Measured experiments (Figs. 5, 9, 14, 15) run on the host and report
// cycles via the platform package's calibrated cycle rate. Analytic
// experiments (Figs. 1, 3, 4, 7, 8, 10-13) evaluate the fpr/model packages
// and can additionally be parameterized with the paper's Table 1 platform
// presets. EXPERIMENTS.md records how each output compares to the paper.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"perfilter/internal/core"
	"perfilter/internal/platform"
	"perfilter/internal/rng"
)

// Series is one plotted line: paired X/Y values with labels. The JSON
// tags shape the BENCH_*.json summaries filter-bench emits for CI.
type Series struct {
	Name   string    `json:"name"`
	XLabel string    `json:"x_label"`
	YLabel string    `json:"y_label"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
}

// Format renders series as aligned columns (x once, one y column per
// series), suitable for terminals and gnuplot alike.
func Format(series []Series) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s", series[0].XLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s(%s)", s.Name, s.YLabel)
	}
	b.WriteByte('\n')
	for i := range series[0].X {
		fmt.Fprintf(&b, "%.6g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "\t%.6g", s.Y[i])
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// prober is the scalar+batch lookup contract the measured experiments use.
type prober interface {
	core.BatchProber
	Contains(core.Key) bool
}

// fill inserts n random keys through the given insert function.
func fill(insert func(core.Key) bool, n int, seed uint32) {
	r := rng.NewMT19937(seed)
	for i := 0; i < n; i++ {
		if !insert(r.Uint32()) {
			return
		}
	}
}

// probeKeys generates a random probe batch (almost all negative — the
// high-throughput scenario).
func probeKeys(n int, seed uint32) []core.Key {
	r := rng.NewMT19937(seed)
	out := make([]core.Key, n)
	for i := range out {
		out[i] = r.Uint32()
	}
	return out
}

// measureBatchNs times batched lookups, returning ns per lookup.
func measureBatchNs(p core.BatchProber, probe []core.Key, minTime time.Duration) float64 {
	sel := make(core.SelVec, 0, len(probe))
	sel = p.ContainsBatch(probe, sel[:0]) // warmup
	var lookups int64
	start := time.Now()
	for time.Since(start) < minTime {
		for rep := 0; rep < 4; rep++ {
			sel = p.ContainsBatch(probe, sel[:0])
			lookups += int64(len(probe))
		}
	}
	_ = sel
	return float64(time.Since(start).Nanoseconds()) / float64(lookups)
}

// measureScalarNs times one-key-at-a-time lookups, returning ns per lookup.
func measureScalarNs(p prober, probe []core.Key, minTime time.Duration) float64 {
	var hits int
	for _, k := range probe { // warmup
		if p.Contains(k) {
			hits++
		}
	}
	var lookups int64
	start := time.Now()
	for time.Since(start) < minTime {
		for _, k := range probe {
			if p.Contains(k) {
				hits++
			}
		}
		lookups += int64(len(probe))
	}
	_ = hits
	return float64(time.Since(start).Nanoseconds()) / float64(lookups)
}

// measureThroughput runs batched lookups from `threads` goroutines against
// one shared filter and returns aggregate lookups per second (Figure 5's
// metric, M/sec).
func measureThroughput(p core.BatchProber, probe []core.Key, threads int, minTime time.Duration) float64 {
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	counts := make([]int64, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sel := make(core.SelVec, 0, len(probe))
			// Offset each thread's probe window to avoid lockstep.
			local := probe[(t*37)%len(probe):]
			if len(local) < 64 {
				local = probe
			}
			for time.Since(start) < minTime {
				sel = p.ContainsBatch(local, sel[:0])
				counts[t] += int64(len(local))
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total int64
	for _, c := range counts {
		total += c
	}
	return float64(total) / elapsed
}

// hostInfo caches platform detection for all measured experiments.
var (
	hostOnce sync.Once
	hostVal  platform.Info
)

func host() platform.Info {
	hostOnce.Do(func() { hostVal = platform.Detect() })
	return hostVal
}
