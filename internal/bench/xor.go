package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"perfilter/internal/blocked"
	"perfilter/internal/bloom"
	"perfilter/internal/core"
	"perfilter/internal/cuckoo"
	"perfilter/internal/exact"
	"perfilter/internal/model"
	"perfilter/internal/rng"
	"perfilter/internal/xor"
)

// Experiments for the xor/fuse family (beyond the paper, which predates
// it): build and probe throughput across the variants, the measured-vs-
// modeled FPR table all families share, and the read-mostly skyline that
// shows where the family wins.

// xorVariants is the family in enumeration order.
var xorVariants = []xor.Params{
	{FingerprintBits: 8},
	{FingerprintBits: 16},
	{FingerprintBits: 8, Fuse: true},
	{FingerprintBits: 16, Fuse: true},
}

// XorThroughput measures the xor family's two costs on the host: solve
// (build) throughput in Mkeys/s — the price an immutable filter pays per
// rebuild — and batched probe cost in cycles/lookup, per variant across
// problem sizes. The cache-sectorized headline Bloom filter is included
// as the probe baseline.
func XorThroughput(eff Effort) []Series {
	h := host()
	probe := probeKeys(core.DefaultBatch, 0x0A0B)
	ns := []int{1 << 16, 1 << 20}
	var out []Series
	for _, p := range xorVariants {
		build := Series{Name: p.String() + "-build", XLabel: "keys", YLabel: "Mkeys/s"}
		lookup := Series{Name: p.String() + "-probe", XLabel: "keys", YLabel: "cycles/lookup"}
		for _, n := range ns {
			keys := probeKeys(n, 0xB111)
			start := time.Now()
			f, err := xor.Build(p, keys)
			if err != nil {
				panic(err)
			}
			elapsed := time.Since(start)
			build.X = append(build.X, float64(n))
			build.Y = append(build.Y, float64(n)/elapsed.Seconds()/1e6)
			lookup.X = append(lookup.X, float64(n))
			lookup.Y = append(lookup.Y, measureBatchNs(f, probe, eff.MinTime)*h.CyclesPerNs)
		}
		out = append(out, build, lookup)
	}
	baseline := Series{Name: "bloom-probe-baseline", XLabel: "keys", YLabel: "cycles/lookup"}
	for _, n := range ns {
		p := blocked.CacheSectorizedParams(64, 512, 2, 8, true)
		f := buildBlocked(p, uint64(n)*12)
		baseline.X = append(baseline.X, float64(n))
		baseline.Y = append(baseline.Y, measureBatchNs(f, probe, eff.MinTime)*h.CyclesPerNs)
	}
	return append(out, baseline)
}

// MeasuredFPRRow is one line of the measured-vs-modeled FPR table: a
// family's observed false-positive rate on disjoint probe keys against
// the analytic model's prediction at the same size and load.
type MeasuredFPRRow struct {
	Name       string
	BitsPerKey float64
	Measured   float64
	Model      float64
}

// MeasuredFPRRows builds every filter family at a comparable budget
// (≈16 bits/key for the mutable families, the key-count-determined size
// for xor and exact), inserts n keys and measures the false-positive
// rate over disjoint probes. cmd/filter-fpr prints the table and its
// test asserts every row is within 2× of the model.
func MeasuredFPRRows(n int) []MeasuredFPRRow {
	keys := probeKeys(n, 0xFA15)
	member := make(map[core.Key]bool, n)
	for _, k := range keys {
		member[k] = true
	}
	const probes = 1 << 18
	measure := func(contains func(core.Key) bool) float64 {
		r := rng.NewMT19937(0xFA16)
		fp, tested := 0, 0
		for i := 0; i < probes; i++ {
			k := r.Uint32()
			if member[k] {
				continue
			}
			tested++
			if contains(k) {
				fp++
			}
		}
		return float64(fp) / float64(tested)
	}
	var rows []MeasuredFPRRow
	add := func(name string, sizeBits uint64, measured, modeled float64) {
		rows = append(rows, MeasuredFPRRow{
			Name: name, BitsPerKey: float64(sizeBits) / float64(n),
			Measured: measured, Model: modeled,
		})
	}

	bp := blocked.CacheSectorizedParams(64, 512, 2, 8, true)
	bf, err := blocked.New(bp, uint64(n)*16)
	if err != nil {
		panic(err)
	}
	for _, k := range keys {
		bf.Insert(k)
	}
	add(bp.String(), bf.SizeBits(), measure(bf.Contains), bf.FPR(uint64(n)))

	cp := bloom.Params{K: 7, Magic: true}
	cf, err := bloom.New(cp, uint64(n)*16)
	if err != nil {
		panic(err)
	}
	for _, k := range keys {
		cf.Insert(k)
	}
	add(cp.String(), cf.SizeBits(), measure(cf.Contains), cf.FPR(uint64(n)))

	kp := cuckoo.Params{TagBits: 16, BucketSize: 2, Magic: true}
	kf, err := cuckoo.New(kp, kp.SizeForKeys(uint64(n)))
	if err != nil {
		panic(err)
	}
	for _, k := range keys {
		if err := kf.Insert(k); err != nil {
			panic(err)
		}
	}
	add(kp.String(), kf.SizeBits(), measure(kf.Contains), kf.FPR(uint64(n)))

	for _, xp := range xorVariants {
		xf, err := xor.Build(xp, keys)
		if err != nil {
			panic(err)
		}
		add(xp.String(), xf.SizeBits(), measure(xf.Contains), xp.FPR())
	}

	ef := exact.New(n)
	for _, k := range keys {
		ef.Insert(k)
	}
	add("exact[robin-hood]", ef.SizeBits(), measure(ef.Contains), 0)
	return rows
}

// FormatMeasuredFPR renders the table.
func FormatMeasuredFPR(rows []MeasuredFPRRow) string {
	out := fmt.Sprintf("%-34s %10s %12s %12s %8s\n",
		"filter", "bits/key", "measured-f", "model-f", "ratio")
	for _, r := range rows {
		ratio := "-"
		if r.Model > 0 {
			ratio = fmt.Sprintf("%.2f", r.Measured/r.Model)
		}
		out += fmt.Sprintf("%-34s %10.2f %12.6f %12.6f %8s\n",
			r.Name, r.BitsPerKey, r.Measured, r.Model, ratio)
	}
	return out
}

// XorSkyline renders the read-mostly skyline: the Figure 10-style type
// map with the immutable xor/fuse family enabled (an 'X' region appears
// at high tw, where 2^-w precision at ~10-20 bits/key beats both mutable
// families once the rebuild surcharge amortizes), followed by the
// mutable families' crossover boundary for reference.
func XorSkyline(models []model.CostModel, full bool) string {
	grid := model.DefaultGrid(full)
	kinds := model.EnumerableKinds(model.EnumHints{FullSpace: full, ReadMostly: true})
	configs := model.ConfigsFor(kinds, full)
	opts := model.DefaultSweepOpts()
	var b strings.Builder
	for _, cm := range models {
		sky := model.ComputeSkyline(grid, configs, cm, opts)
		b.WriteString("read-mostly type map (B=blocked bloom, C=cuckoo, X=xor/fuse")
		if full {
			b.WriteString(", S=classic")
		}
		b.WriteString("):\n")
		b.WriteString(sky.RenderTypeMapKinds(kinds...))
		b.WriteString("bloom-to-cuckoo crossover tw per n (mutable families only):\n")
		for ni, tw := range sky.CrossoverTw() {
			if math.IsInf(tw, 1) {
				fmt.Fprintf(&b, "n=%-12d crossover=none (bloom wins the whole row)\n", sky.Grid.Ns[ni])
			} else {
				fmt.Fprintf(&b, "n=%-12d crossover_tw=2^%.0f\n", sky.Grid.Ns[ni], math.Log2(tw))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
