package simd

import "testing"

func TestGrowSelFreshAllocation(t *testing.T) {
	buf, cnt := GrowSel(nil, 10)
	if len(buf) != 10 || cnt != 0 {
		t.Fatalf("len=%d cnt=%d", len(buf), cnt)
	}
}

func TestGrowSelPreservesPrefix(t *testing.T) {
	sel := []uint32{7, 8, 9}
	buf, cnt := GrowSel(sel, 5)
	if cnt != 3 || len(buf) != 8 {
		t.Fatalf("cnt=%d len=%d", cnt, len(buf))
	}
	for i, v := range []uint32{7, 8, 9} {
		if buf[i] != v {
			t.Fatalf("prefix lost at %d", i)
		}
	}
}

func TestGrowSelReusesCapacity(t *testing.T) {
	sel := make([]uint32, 2, 16)
	sel[0], sel[1] = 1, 2
	buf, cnt := GrowSel(sel, 4)
	if cnt != 2 || len(buf) != 6 {
		t.Fatalf("cnt=%d len=%d", cnt, len(buf))
	}
	if &buf[0] != &sel[0] {
		t.Fatal("expected in-place growth within capacity")
	}
}

func TestGrowSelZeroAdd(t *testing.T) {
	sel := []uint32{1}
	buf, cnt := GrowSel(sel, 0)
	if cnt != 1 || len(buf) != 1 {
		t.Fatalf("cnt=%d len=%d", cnt, len(buf))
	}
}

func TestB2I(t *testing.T) {
	if B2I(true) != 1 || B2I(false) != 0 {
		t.Fatal("B2I broken")
	}
}

func TestWidthMatchesAVX2Lanes(t *testing.T) {
	if Width != 8 {
		t.Fatalf("Width = %d; kernels and docs assume 8 (AVX2 32-bit lanes)", Width)
	}
}
