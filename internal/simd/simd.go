// Package simd hosts the shared pieces of the repository's "software SIMD"
// batch kernels.
//
// The paper's hot loops execute one filter lookup per 32-bit SIMD lane using
// AVX2/AVX-512 GATHER instructions (§5.1). Pure Go (stdlib only, no
// assembly) has no vector intrinsics, so the kernels here reproduce the
// *algorithmic* content of that design instead:
//
//   - lookups are batched: hashing/addressing for Width keys is completed
//     before any filter memory is touched, giving the out-of-order core
//     independent loads to overlap (the software analogue of GATHER);
//   - results are materialized branch-free into selection vectors
//     (position lists of 32-bit indexes), exactly the interface the paper's
//     unified contains functions expose;
//   - per-batch dispatch replaces the paper's per-configuration template
//     instantiation: the kernel switch happens once per batch, never per key.
//
// DESIGN.md §4 documents why this substitution preserves the paper's
// relative shapes while compressing absolute SIMD speedups.
package simd

// Width is the software pipeline width of the batch kernels: the number of
// keys whose hashes and addresses are computed before their filter words
// are loaded. Eight matches one AVX2 register of 32-bit lanes; the unrolled
// kernels therefore mirror the paper's 8-lane AVX2 configuration.
const Width = 8

// GrowSel extends sel by add writable slots, reallocating if necessary, and
// returns the full-length buffer together with the current write position.
// Kernels write candidate positions with the branch-free pattern
//
//	buf[cnt] = pos; if match { cnt++ }
//
// and finally return buf[:cnt].
func GrowSel(sel []uint32, add int) (buf []uint32, cnt int) {
	cnt = len(sel)
	need := cnt + add
	if cap(sel) < need {
		buf = make([]uint32, need)
		copy(buf, sel)
		return buf, cnt
	}
	return sel[:need], cnt
}

// B2I converts a match flag to 0/1 for branch-free selection-vector
// advancement. The compiler lowers this to a conditional set, not a branch.
func B2I(b bool) int {
	if b {
		return 1
	}
	return 0
}
