// Package semijoin implements the distributed semi-join optimization the
// paper cites for MPP exchange operators (§1, [21]): before shuffling
// probe-side tuples between compute nodes, the build side broadcasts an
// approximate filter so tuples without a join partner are never sent.
//
// The "network" is an in-process exchange between goroutine workers with
// per-message and per-byte cost accounting; the work saved per suppressed
// tuple (serialization + transfer + remote probe) corresponds to a large tw
// in the paper's model — one of the mid-range reference points in Figure 1
// ("tuple over network, amortized"). See DESIGN.md §4 for the simulation
// rationale.
package semijoin

import (
	"sync"

	"perfilter/internal/core"
	"perfilter/internal/hashing"
	"perfilter/internal/join"
)

// NetCost models the cost of the simulated interconnect, in cycles.
type NetCost struct {
	// PerMessage is the fixed cost of one exchange message (syscalls,
	// framing, NIC doorbell).
	PerMessage uint64
	// PerTupleBytes is the serialized size of one probe tuple.
	PerTupleBytes uint64
	// PerByte is the transfer cost per byte.
	PerByte uint64
}

// DefaultNetCost approximates an amortized 10GbE exchange: large messages,
// ~1 cycle/byte effective, 12-byte tuples (key + rowid).
func DefaultNetCost() NetCost {
	return NetCost{PerMessage: 20000, PerTupleBytes: 12, PerByte: 1}
}

// TupleCost returns the modeled cycles to ship n tuples in one message.
func (c NetCost) TupleCost(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return c.PerMessage + n*c.PerTupleBytes*c.PerByte
}

// Stats aggregates a run.
type Stats struct {
	// TuplesShipped counts probe tuples sent across the exchange.
	TuplesShipped uint64
	// TuplesSuppressed counts probe tuples the broadcast filter dropped
	// before shipping.
	TuplesSuppressed uint64
	// Messages counts exchange messages.
	Messages uint64
	// NetCycles is the modeled network cost (NetCost applied).
	NetCycles uint64
	// FilterBroadcastBytes is the one-time cost of shipping the filter to
	// every probe node.
	FilterBroadcastBytes uint64
	// Matches and Agg are the join result (for cross-checking).
	Matches uint64
	Agg     uint64
}

// Cluster is a simulated MPP cluster: build-side rows are hash-partitioned
// across Workers nodes, each holding a join hash table of its partition.
type Cluster struct {
	Workers int
	Net     NetCost
	tables  []*join.HashTable
	filters []core.BatchProber // optional per-partition broadcast filters
}

// NewCluster partitions the build side by key hash and builds one hash
// table per worker.
func NewCluster(workers int, buildKeys []core.Key, net NetCost) *Cluster {
	if workers < 1 {
		panic("semijoin: need at least one worker")
	}
	parts := make([][]core.Key, workers)
	for _, k := range buildKeys {
		w := partition(k, workers)
		parts[w] = append(parts[w], k)
	}
	c := &Cluster{Workers: workers, Net: net}
	c.tables = make([]*join.HashTable, workers)
	for w := 0; w < workers; w++ {
		c.tables[w] = join.BuildHashTable(parts[w], join.Payloads(parts[w]))
	}
	return c
}

// partition routes a key to its owning worker (multiplicative hash high
// bits, reduced without modulo bias).
func partition(k core.Key, workers int) int {
	h := uint64(hashing.Mult32(k))
	return int(h * uint64(workers) >> 32)
}

// InstallFilters builds one approximate filter per partition (from a
// factory, so callers choose Bloom/Cuckoo/exact and sizing) and accounts
// its broadcast cost: every probe node needs every partition's filter.
func (c *Cluster) InstallFilters(build []core.Key, factory func(keys []core.Key) (core.BatchProber, uint64)) uint64 {
	parts := make([][]core.Key, c.Workers)
	for _, k := range build {
		w := partition(k, c.Workers)
		parts[w] = append(parts[w], k)
	}
	c.filters = make([]core.BatchProber, c.Workers)
	var totalBits uint64
	for w := 0; w < c.Workers; w++ {
		f, bits := factory(parts[w])
		c.filters[w] = f
		totalBits += bits
	}
	// Broadcast: every one of the Workers probe nodes receives all filters.
	return totalBits / 8 * uint64(c.Workers)
}

// RemoveFilters disables the semi-join optimization.
func (c *Cluster) RemoveFilters() { c.filters = nil }

// Run executes the distributed probe: probe tuples are routed to their
// partition's worker; with filters installed, each tuple is tested locally
// before shipping. Workers probe their hash tables concurrently and the
// coordinator folds the partial aggregates.
func (c *Cluster) Run(probe []core.Key) Stats {
	var stats Stats
	// Route (and locally filter) the probe stream per destination worker.
	outbox := make([][]core.Key, c.Workers)
	batchBuf := make([]core.Key, 0, core.DefaultBatch)
	sel := make(core.SelVec, 0, core.DefaultBatch)
	for w := 0; w < c.Workers; w++ {
		outbox[w] = outbox[w][:0]
	}
	// Partition first (cheap local work).
	for _, k := range probe {
		outbox[partition(k, c.Workers)] = append(outbox[partition(k, c.Workers)], k)
	}
	// Apply the broadcast filter per destination, batched.
	if c.filters != nil {
		for w := 0; w < c.Workers; w++ {
			kept := outbox[w][:0]
			keys := outbox[w]
			for off := 0; off < len(keys); off += core.DefaultBatch {
				end := off + core.DefaultBatch
				if end > len(keys) {
					end = len(keys)
				}
				batchBuf = append(batchBuf[:0], keys[off:end]...)
				sel = c.filters[w].ContainsBatch(batchBuf, sel[:0])
				for _, pos := range sel {
					kept = append(kept, batchBuf[pos])
				}
			}
			stats.TuplesSuppressed += uint64(len(keys) - len(kept))
			outbox[w] = kept
		}
	}
	// Exchange + remote probe, one goroutine per worker.
	partial := make([]Stats, c.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			msg := outbox[w]
			ps := &partial[w]
			if len(msg) > 0 {
				ps.Messages = 1
				ps.TuplesShipped = uint64(len(msg))
				ps.NetCycles = c.Net.TupleCost(uint64(len(msg)))
			}
			for _, k := range msg {
				if payload, ok := c.tables[w].Probe(k); ok {
					ps.Matches++
					ps.Agg += payload
				}
			}
		}(w)
	}
	wg.Wait()
	for _, ps := range partial {
		stats.TuplesShipped += ps.TuplesShipped
		stats.Messages += ps.Messages
		stats.NetCycles += ps.NetCycles
		stats.Matches += ps.Matches
		stats.Agg += ps.Agg
	}
	return stats
}
