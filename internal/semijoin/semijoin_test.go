package semijoin

import (
	"testing"

	"perfilter/internal/blocked"
	"perfilter/internal/core"
	"perfilter/internal/join"
	"perfilter/internal/workload"
)

// bloomFactory builds a per-partition cache-sectorized Bloom filter at 16
// bits per key.
func bloomFactory(keys []core.Key) (core.BatchProber, uint64) {
	n := uint64(len(keys))
	if n == 0 {
		n = 1
	}
	f, err := blocked.New(blocked.CacheSectorizedParams(64, 512, 2, 8, true), n*16)
	if err != nil {
		panic(err)
	}
	for _, k := range keys {
		f.Insert(k)
	}
	return f, f.SizeBits()
}

func setup(t *testing.T, workers, n, probes int, sigma float64) (*Cluster, *workload.BuildProbe) {
	t.Helper()
	bp := workload.NewBuildProbe(n, probes, sigma, 31)
	return NewCluster(workers, bp.Build, DefaultNetCost()), bp
}

func expectedAgg(bp *workload.BuildProbe) (matches, agg uint64) {
	ht := join.BuildHashTable(bp.Build, join.Payloads(bp.Build))
	for _, k := range bp.Probe {
		if p, ok := ht.Probe(k); ok {
			matches++
			agg += p
		}
	}
	return matches, agg
}

func TestResultsMatchSingleNodeJoin(t *testing.T) {
	c, bp := setup(t, 4, 5000, 20000, 0.2)
	wantMatches, wantAgg := expectedAgg(bp)

	noFilter := c.Run(bp.Probe)
	if noFilter.Matches != wantMatches || noFilter.Agg != wantAgg {
		t.Fatalf("unfiltered: got (%d,%d), want (%d,%d)",
			noFilter.Matches, noFilter.Agg, wantMatches, wantAgg)
	}

	c.InstallFilters(bp.Build, bloomFactory)
	filtered := c.Run(bp.Probe)
	if filtered.Matches != wantMatches || filtered.Agg != wantAgg {
		t.Fatalf("filtered: got (%d,%d), want (%d,%d)",
			filtered.Matches, filtered.Agg, wantMatches, wantAgg)
	}
}

func TestFilterSuppressesTraffic(t *testing.T) {
	c, bp := setup(t, 4, 5000, 40000, 0.1)
	before := c.Run(bp.Probe)
	c.InstallFilters(bp.Build, bloomFactory)
	after := c.Run(bp.Probe)

	if after.TuplesShipped >= before.TuplesShipped {
		t.Fatalf("filter did not reduce traffic: %d vs %d",
			after.TuplesShipped, before.TuplesShipped)
	}
	// At σ=0.1 with a good filter, shipped ≈ 10% + f.
	frac := float64(after.TuplesShipped) / float64(before.TuplesShipped)
	if frac > 0.15 {
		t.Fatalf("shipped fraction %.3f, expected ≈0.10", frac)
	}
	if after.TuplesSuppressed+after.TuplesShipped != before.TuplesShipped {
		t.Fatal("suppressed + shipped != total")
	}
	if after.NetCycles >= before.NetCycles {
		t.Fatal("network cost did not shrink")
	}
}

func TestBroadcastCostAccounted(t *testing.T) {
	c, bp := setup(t, 8, 10000, 100, 0.5)
	bytes := c.InstallFilters(bp.Build, bloomFactory)
	// 10k keys × 16 bpk = 20 KB of filters, × 8 receiving nodes ≥ 160 KB.
	if bytes < 8*10000*16/8 {
		t.Fatalf("broadcast bytes %d implausibly low", bytes)
	}
}

func TestSingleWorkerDegenerate(t *testing.T) {
	c, bp := setup(t, 1, 1000, 5000, 0.3)
	wantMatches, wantAgg := expectedAgg(bp)
	got := c.Run(bp.Probe)
	if got.Matches != wantMatches || got.Agg != wantAgg {
		t.Fatal("single-worker cluster wrong")
	}
	if got.Messages != 1 {
		t.Fatalf("messages=%d", got.Messages)
	}
}

func TestManyWorkersPartitionEverything(t *testing.T) {
	c, bp := setup(t, 16, 4000, 30000, 0.25)
	wantMatches, wantAgg := expectedAgg(bp)
	got := c.Run(bp.Probe)
	if got.Matches != wantMatches || got.Agg != wantAgg {
		t.Fatal("16-worker cluster wrong")
	}
	if got.TuplesShipped != 30000 {
		t.Fatalf("shipped %d, want all 30000 without filters", got.TuplesShipped)
	}
}

func TestRemoveFilters(t *testing.T) {
	c, bp := setup(t, 2, 1000, 2000, 0.0)
	c.InstallFilters(bp.Build, bloomFactory)
	c.RemoveFilters()
	got := c.Run(bp.Probe)
	if got.TuplesSuppressed != 0 || got.TuplesShipped != 2000 {
		t.Fatal("RemoveFilters did not disable suppression")
	}
}

func TestZeroSigmaSuppressesAlmostAll(t *testing.T) {
	c, bp := setup(t, 4, 5000, 20000, 0.0)
	c.InstallFilters(bp.Build, bloomFactory)
	got := c.Run(bp.Probe)
	if got.Matches != 0 {
		t.Fatal("phantom matches at σ=0")
	}
	if float64(got.TuplesShipped)/20000 > 0.02 {
		t.Fatalf("shipped %d tuples at σ=0 (false positives only expected)",
			got.TuplesShipped)
	}
}

func TestNetCostModel(t *testing.T) {
	nc := NetCost{PerMessage: 100, PerTupleBytes: 10, PerByte: 2}
	if nc.TupleCost(0) != 0 {
		t.Fatal("empty message should be free")
	}
	if nc.TupleCost(5) != 100+5*10*2 {
		t.Fatalf("TupleCost(5) = %d", nc.TupleCost(5))
	}
}

func TestPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(0, []uint32{1}, DefaultNetCost())
}

func BenchmarkExchange(b *testing.B) {
	bp := workload.NewBuildProbe(1<<14, 1<<16, 0.1, 5)
	c := NewCluster(4, bp.Build, DefaultNetCost())
	b.Run("no-filter", func(b *testing.B) {
		c.RemoveFilters()
		for i := 0; i < b.N; i++ {
			c.Run(bp.Probe)
		}
	})
	b.Run("bloom-broadcast", func(b *testing.B) {
		c.InstallFilters(bp.Build, func(keys []core.Key) (core.BatchProber, uint64) {
			f, _ := blocked.New(blocked.CacheSectorizedParams(64, 512, 2, 8, true),
				uint64(len(keys)+1)*16)
			for _, k := range keys {
				f.Insert(k)
			}
			return f, f.SizeBits()
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Run(bp.Probe)
		}
	})
}
