package adaptive

import "sync"

// Trace is a fixed-size ring buffer of re-optimization Decisions: the
// control loop's flight recorder. Every Reoptimize verdict — migrated
// or rejected — is appended; once the buffer is full the oldest entry
// is overwritten, so the trace always holds the last Cap decisions and
// a total count of everything ever recorded. The server exposes it at
// GET /v1/filters/{name}/trace so an operator can see *why* the tuner
// did (or did not) act without scraping logs.
//
// All methods are safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	buf   []Decision
	next  int    // index the next Add writes to
	n     int    // live entries (== len(buf) once wrapped)
	total uint64 // decisions ever recorded, including overwritten ones
}

// NewTrace returns a trace retaining the last capacity decisions
// (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Decision, capacity)}
}

// Cap returns the retention capacity.
func (t *Trace) Cap() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Add records one decision, overwriting the oldest once full.
func (t *Trace) Add(d Decision) {
	t.mu.Lock()
	t.buf[t.next] = d
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of retained decisions.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the number of decisions ever recorded (monotone; the
// trace endpoint reports it so a scraper can tell how many decisions
// the window dropped).
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained decisions, oldest first.
func (t *Trace) Snapshot() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Decision, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Last returns the most recent decision satisfying keep (nil keeps
// any), or false when none is retained — how the stats endpoint finds
// the last actual migration without copying the whole window.
func (t *Trace) Last(keep func(Decision) bool) (Decision, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i <= t.n; i++ {
		idx := t.next - i
		if idx < 0 {
			idx += len(t.buf)
		}
		if keep == nil || keep(t.buf[idx]) {
			return t.buf[idx], true
		}
	}
	return Decision{}, false
}
