package adaptive

import (
	"sync"

	"perfilter/internal/core"
	"perfilter/internal/hashing"
)

// logStripes is the key log's lock-stripe count: enough to keep concurrent
// writers off each other's locks, few enough that a snapshot walk stays
// cheap. Must be a power of two.
const logStripes = 16

// KeyLog is an append-only, lock-striped record of every key inserted into
// an adaptive filter — the replay source that makes kind-changing
// migrations lossless. Approximate filters cannot enumerate their keys
// (Bloom stores bit positions, Cuckoo stores partial-key tags), so
// rebuilding a Bloom filter as a Cuckoo filter (or vice versa) requires
// the original keys; the log keeps them at 4 bytes each, comparable to the
// filter itself at the sweep's 16 bits/key midpoint.
//
// Appends take one stripe lock chosen by key hash; snapshots take each
// stripe lock briefly to capture a stable prefix. The log is a
// conservative superset of the filter's contents: a writer appends before
// inserting (the lossless-rotation recipe from internal/sharded), so a
// crash between the two leaves an extra logged key, which on replay adds
// at most a false positive — legal under the one-sided filter contract.
type KeyLog struct {
	stripes [logStripes]logStripe
}

type logStripe struct {
	mu   sync.Mutex
	keys []core.Key
	_    [4]uint64 // pad to keep neighbouring stripe locks off one line
}

// Append records one key. Call before inserting the key into the filter so
// the log-then-insert window overlaps every migration's snapshot-then-swap
// window (no acknowledged key is ever lost).
func (l *KeyLog) Append(k core.Key) {
	s := &l.stripes[hashing.TagHash(k)&(logStripes-1)]
	s.mu.Lock()
	s.keys = append(s.keys, k)
	s.mu.Unlock()
}

// AppendBatch records a batch of keys, grouping lock acquisitions so each
// stripe's lock is taken at most once per call.
func (l *KeyLog) AppendBatch(keys []core.Key) {
	if len(keys) == 0 {
		return
	}
	// One hash pass, then one lock acquisition per touched stripe.
	ids := make([]uint8, len(keys))
	var touched [logStripes]bool
	for i, k := range keys {
		id := uint8(hashing.TagHash(k) & (logStripes - 1))
		ids[i] = id
		touched[id] = true
	}
	for si := range l.stripes {
		if !touched[si] {
			continue
		}
		s := &l.stripes[si]
		s.mu.Lock()
		for i, k := range keys {
			if ids[i] == uint8(si) {
				s.keys = append(s.keys, k)
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the total number of logged keys (a live snapshot).
func (l *KeyLog) Len() uint64 {
	var n uint64
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		n += uint64(len(s.keys))
		s.mu.Unlock()
	}
	return n
}

// Snapshot captures a stable view of every stripe: full-slice expressions
// over the current prefixes, so later appends reallocate rather than
// mutate the captured storage. Keys appended after the snapshot are
// exactly the ones a migration's dual-write window must (and does) catch.
func (l *KeyLog) Snapshot() LogSnapshot {
	var snap LogSnapshot
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		snap.stripes[i] = s.keys[:len(s.keys):len(s.keys)]
		snap.n += uint64(len(s.keys))
		s.mu.Unlock()
	}
	return snap
}

// Reset discards all logged keys (paired with a content-clearing rotation
// or Reset of the filter the log shadows).
func (l *KeyLog) Reset() {
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		s.keys = nil
		s.mu.Unlock()
	}
}

// LogSnapshot is a stable point-in-time view of a KeyLog.
type LogSnapshot struct {
	stripes [logStripes][]core.Key
	n       uint64
}

// Len returns the snapshot's key count (duplicates included).
func (s LogSnapshot) Len() uint64 { return s.n }

// Replay feeds every captured key to insert, stopping at the first error.
// When dedup is true, each distinct key is replayed once — the right mode
// for migrations (re-inserting a duplicate buys nothing for Bloom filters
// and can saturate a Cuckoo bucket).
func (s LogSnapshot) Replay(insert func(core.Key) error, dedup bool) error {
	var seen map[core.Key]struct{}
	if dedup {
		seen = make(map[core.Key]struct{}, s.n)
	}
	for _, stripe := range s.stripes {
		for _, k := range stripe {
			if dedup {
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
			}
			if err := insert(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// Keys flattens the snapshot into one slice (serialization path).
func (s LogSnapshot) Keys() []core.Key {
	out := make([]core.Key, 0, s.n)
	for _, stripe := range s.stripes {
		out = append(out, stripe...)
	}
	return out
}
