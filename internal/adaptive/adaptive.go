// Package adaptive holds the workload-tracking and control-loop substrate
// behind perfilter.NewAdaptive: cheap atomic workload counters, the
// hysteresis policy deciding when a re-advised configuration is worth a
// live migration, an append-only striped key log that makes migrations
// lossless (any filter kind can be rebuilt from it), and the background
// tuner goroutine driving periodic re-optimization.
//
// The paper's central observation is that the performance-optimal filter
// *changes* as the workload moves (n and tw shift the Bloom/Cuckoo
// boundary, §2 and Fig. 1). A filter advised once at build time is
// therefore silently wrong after the workload outgrows it. This package
// supplies the mechanism; the policy-free model evaluation stays in the
// root package (which owns Advise) and is injected as a callback, keeping
// the import direction root → internal consistent with the rest of the
// repository.
package adaptive

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stats accumulates the observed workload with lock-free atomic counters —
// cheap enough to sit on every insert and probe of a production filter.
type Stats struct {
	inserts   atomic.Uint64
	probes    atomic.Uint64
	positives atomic.Uint64
	batches   atomic.Uint64
}

// RecordInsert counts n acknowledged inserts.
func (s *Stats) RecordInsert(n uint64) { s.inserts.Add(n) }

// RecordProbe counts one probe batch: probed keys and positive answers.
func (s *Stats) RecordProbe(probed, positive uint64) {
	s.probes.Add(probed)
	s.positives.Add(positive)
	s.batches.Add(1)
}

// Reset zeroes all counters (a new generation's history starts fresh).
func (s *Stats) Reset() {
	s.inserts.Store(0)
	s.probes.Store(0)
	s.positives.Store(0)
	s.batches.Store(0)
}

// Restore overwrites the counters from a snapshot (the deserialization
// path; not concurrency-safe against recording).
func (s *Stats) Restore(c Counters) {
	s.inserts.Store(c.Inserts)
	s.probes.Store(c.Probes)
	s.positives.Store(c.Positives)
	s.batches.Store(c.Batches)
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() Counters {
	return Counters{
		Inserts:   s.inserts.Load(),
		Probes:    s.probes.Load(),
		Positives: s.positives.Load(),
		Batches:   s.batches.Load(),
	}
}

// Counters is one observation of the tracked workload.
type Counters struct {
	Inserts   uint64 `json:"inserts"`
	Probes    uint64 `json:"probes"`
	Positives uint64 `json:"positives"`
	Batches   uint64 `json:"batches"`
}

// Sub returns the counter deltas since a baseline snapshot — the window
// the control loop evaluates (e.g. "since the last migration") rather
// than a filter's whole history. Counters are monotone, so saturating
// subtraction only guards against a baseline from a newer snapshot.
func (c Counters) Sub(base Counters) Counters {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Counters{
		Inserts:   sub(c.Inserts, base.Inserts),
		Probes:    sub(c.Probes, base.Probes),
		Positives: sub(c.Positives, base.Positives),
		Batches:   sub(c.Batches, base.Batches),
	}
}

// InsertFraction returns the share of observed operations that were
// inserts. With nothing observed it returns 1 — "all writes" — so an
// idle window can never pass for a read-mostly one (the gate that makes
// immutable filter families eligible must see actual probe traffic).
func (c Counters) InsertFraction() float64 {
	ops := c.Inserts + c.Probes
	if ops == 0 {
		return 1
	}
	return float64(c.Inserts) / float64(ops)
}

// Sigma estimates the true-hit fraction σ from the observed positive
// fraction. The estimate includes false positives, so it overstates σ by
// at most the filter's FPR — negligible against the ρ comparison it feeds
// (σ only gates the is-filtering-beneficial test). fallback is returned
// when no probes have been observed yet.
func (c Counters) Sigma(fallback float64) float64 {
	if c.Probes == 0 {
		return fallback
	}
	return float64(c.Positives) / float64(c.Probes)
}

// Policy is the hysteresis rule deciding when a re-advised configuration
// justifies a live migration. Migration is not free (the key log is
// replayed into a staged generation), so the modeled win must clear a
// margin before the tuner acts, and a minimum of observed work must have
// accumulated so one early probe burst cannot thrash the filter.
type Policy struct {
	// Margin is the fractional ρ improvement required to migrate: the
	// candidate must satisfy ρ_new < (1−Margin)·ρ_cur. Default 0.15.
	Margin float64
	// MinInserts gates migration until the filter has seen at least this
	// many inserts. Default 1024.
	MinInserts uint64
	// Cooldown is the minimum time between two migrations. Default 0 (the
	// re-advise interval already paces the loop).
	Cooldown time.Duration
}

// WithDefaults fills zero fields with the defaults above.
func (p Policy) WithDefaults() Policy {
	if p.Margin == 0 {
		p.Margin = 0.15
	}
	if p.MinInserts == 0 {
		p.MinInserts = 1024
	}
	return p
}

// CooldownCleared reports whether the cooldown gate permits a migration:
// no cooldown configured, no migration history (sinceLast < 0), or
// enough time elapsed. The writes-resumed override in the root package
// shares this gate, so the convention lives in exactly one place.
func (p Policy) CooldownCleared(sinceLast time.Duration) bool {
	return p.Cooldown <= 0 || sinceLast < 0 || sinceLast >= p.Cooldown
}

// ShouldMigrate applies the hysteresis rule to a modeled comparison and
// returns the verdict with a human-readable reason (surfaced through the
// server's advice endpoint and the bench's decision records).
func (p Policy) ShouldMigrate(curRho, bestRho float64, inserts uint64, sinceLast time.Duration) (bool, string) {
	if inserts < p.MinInserts {
		return false, fmt.Sprintf("only %d inserts observed (min %d)", inserts, p.MinInserts)
	}
	if !p.CooldownCleared(sinceLast) {
		return false, fmt.Sprintf("cooling down (%s of %s)", sinceLast.Round(time.Millisecond), p.Cooldown)
	}
	if curRho <= 0 {
		return false, "current overhead not modeled"
	}
	improvement := 1 - bestRho/curRho
	if improvement < p.Margin {
		return false, fmt.Sprintf("improvement %.1f%% below margin %.1f%%", improvement*100, p.Margin*100)
	}
	return true, fmt.Sprintf("improvement %.1f%% clears margin %.1f%%", improvement*100, p.Margin*100)
}

// Decision records one re-optimization pass: what the tracker saw, what
// the model recommended, and whether the filter migrated. Decisions are
// JSON-friendly so the server's advice and trace endpoints and the bench
// summary can emit them verbatim.
type Decision struct {
	At          time.Time `json:"at"`
	N           uint64    `json:"n"`
	Sigma       float64   `json:"sigma"`
	Current     string    `json:"current"`
	CurrentRho  float64   `json:"current_rho"`
	Best        string    `json:"best"`
	BestMBits   uint64    `json:"best_mbits"`
	BestRho     float64   `json:"best_rho"`
	KindChanged bool      `json:"kind_changed"`
	Migrated    bool      `json:"migrated"`
	Reason      string    `json:"reason"`
	// Margin is the hysteresis margin the ρ comparison was held to.
	Margin float64 `json:"margin,omitempty"`
	// Window is the tracked workload since the last migration at decision
	// time — the counters the σ estimate and the read-mostly gate were
	// computed from.
	Window Counters `json:"window,omitempty"`
}

// Tuner drives a re-optimization step on a fixed interval from a
// background goroutine. The step callback owns all policy and migration
// logic; the tuner only paces it and serializes Start/Stop.
type Tuner struct {
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// Start launches the loop, invoking step every interval until Stop. A
// second Start without an intervening Stop is a no-op.
func (t *Tuner) Start(interval time.Duration, step func()) {
	if interval <= 0 || step == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	t.stop, t.done = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				step()
			}
		}
	}()
}

// Stop halts the loop and waits for the in-flight step, if any, to finish.
// Stopping a tuner that was never started is a no-op.
func (t *Tuner) Stop() {
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Running reports whether the background loop is active.
func (t *Tuner) Running() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stop != nil
}
