package adaptive

import (
	"sync"
	"testing"
	"time"

	"perfilter/internal/core"
)

func TestStatsSnapshotAndSigma(t *testing.T) {
	var s Stats
	s.RecordInsert(10)
	s.RecordInsert(5)
	s.RecordProbe(100, 25)
	s.RecordProbe(100, 15)
	c := s.Snapshot()
	if c.Inserts != 15 || c.Probes != 200 || c.Positives != 40 || c.Batches != 2 {
		t.Fatalf("counters = %+v", c)
	}
	if got := c.Sigma(0.9); got != 0.2 {
		t.Fatalf("sigma = %v, want 0.2", got)
	}
	if got := (Counters{}).Sigma(0.9); got != 0.9 {
		t.Fatalf("sigma fallback = %v, want 0.9", got)
	}
	s.Reset()
	if c := s.Snapshot(); c != (Counters{}) {
		t.Fatalf("after reset: %+v", c)
	}
	s.Restore(Counters{Inserts: 7, Probes: 8, Positives: 3, Batches: 1})
	if c := s.Snapshot(); c.Inserts != 7 || c.Probes != 8 {
		t.Fatalf("after restore: %+v", c)
	}
}

func TestPolicyHysteresis(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.Margin != 0.15 || p.MinInserts != 1024 {
		t.Fatalf("defaults = %+v", p)
	}
	// Below the insert floor: never migrate, however large the win.
	if ok, _ := p.ShouldMigrate(100, 1, 10, -1); ok {
		t.Fatal("migrated below MinInserts")
	}
	// Improvement below the margin: hold.
	if ok, reason := p.ShouldMigrate(100, 90, 5000, -1); ok {
		t.Fatalf("migrated on a 10%% win (margin 15%%): %s", reason)
	}
	// Clear improvement: go.
	if ok, reason := p.ShouldMigrate(100, 50, 5000, -1); !ok {
		t.Fatalf("refused a 50%% win: %s", reason)
	}
	// Cooldown gates a migration that would otherwise fire.
	p.Cooldown = time.Hour
	if ok, _ := p.ShouldMigrate(100, 50, 5000, time.Minute); ok {
		t.Fatal("migrated inside the cooldown")
	}
	if ok, _ := p.ShouldMigrate(100, 50, 5000, 2*time.Hour); !ok {
		t.Fatal("refused after the cooldown elapsed")
	}
	// Unknown history (sinceLast < 0) means no cooldown applies.
	if ok, _ := p.ShouldMigrate(100, 50, 5000, -1); !ok {
		t.Fatal("refused with no migration history")
	}
}

func TestKeyLogAppendSnapshotReplay(t *testing.T) {
	var l KeyLog
	for i := 0; i < 1000; i++ {
		l.Append(core.Key(i))
	}
	l.AppendBatch([]core.Key{1, 2, 3, 1000, 1001})
	if got := l.Len(); got != 1005 {
		t.Fatalf("Len = %d, want 1005", got)
	}
	snap := l.Snapshot()
	// Appends after the snapshot must not leak into it.
	l.Append(9999)
	if snap.Len() != 1005 {
		t.Fatalf("snapshot len = %d, want 1005", snap.Len())
	}
	seen := make(map[core.Key]int)
	if err := snap.Replay(func(k core.Key) error { seen[k]++; return nil }, false); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1002 { // 0..1001
		t.Fatalf("distinct replayed = %d, want 1002", len(seen))
	}
	if seen[1] != 2 || seen[2] != 2 || seen[3] != 2 {
		t.Fatalf("duplicates not replayed without dedup: %d %d %d", seen[1], seen[2], seen[3])
	}
	if seen[9999] != 0 {
		t.Fatal("post-snapshot key leaked into replay")
	}
	// Dedup mode replays each distinct key exactly once.
	clear(seen)
	if err := snap.Replay(func(k core.Key) error { seen[k]++; return nil }, true); err != nil {
		t.Fatal(err)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d replayed %d times under dedup", k, n)
		}
	}
	if len(seen) != 1002 {
		t.Fatalf("distinct dedup-replayed = %d, want 1002", len(seen))
	}
	if got := len(snap.Keys()); got != 1005 {
		t.Fatalf("Keys len = %d, want 1005", got)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset left keys behind")
	}
}

// TestKeyLogConcurrent hammers Append/AppendBatch/Snapshot from many
// goroutines; run with -race. Every appended key must be in the final
// snapshot exactly once per append.
func TestKeyLogConcurrent(t *testing.T) {
	var l KeyLog
	const writers = 8
	perWriter := 5000
	if testing.Short() {
		perWriter = 1000
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]core.Key, 0, 16)
			for i := 0; i < perWriter; i++ {
				k := core.Key(i*writers + w)
				if i%16 == 15 {
					batch = append(batch, k)
					l.AppendBatch(batch)
					batch = batch[:0]
				} else {
					batch = append(batch, k)
					l.Append(k)
					batch = batch[:0]
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				l.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	total := uint64(writers * perWriter)
	if got := l.Len(); got != total {
		t.Fatalf("Len = %d, want %d", got, total)
	}
	seen := make(map[core.Key]bool, total)
	if err := l.Snapshot().Replay(func(k core.Key) error { seen[k] = true; return nil }, false); err != nil {
		t.Fatal(err)
	}
	if uint64(len(seen)) != total {
		t.Fatalf("distinct keys = %d, want %d", len(seen), total)
	}
}

func TestTunerStartStop(t *testing.T) {
	var tn Tuner
	fired := make(chan struct{}, 16)
	tn.Start(time.Millisecond, func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	if !tn.Running() {
		t.Fatal("tuner not running after Start")
	}
	// At least one tick lands well within a second.
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("tuner never ticked")
	}
	tn.Stop()
	if tn.Running() {
		t.Fatal("tuner running after Stop")
	}
	tn.Stop() // idempotent
}

// TestTraceRing pins the decision trace's ring semantics: capacity
// bounds retention, overwrites drop oldest-first, Total counts every
// record, and Last finds the newest matching entry.
func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	if tr.Cap() != 4 || tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("fresh trace: cap=%d len=%d total=%d", tr.Cap(), tr.Len(), tr.Total())
	}
	for i := 1; i <= 10; i++ {
		tr.Add(Decision{N: uint64(i), Migrated: i%3 == 0})
	}
	if tr.Len() != 4 || tr.Total() != 10 {
		t.Fatalf("after 10 adds: len=%d total=%d", tr.Len(), tr.Total())
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for i, d := range snap {
		if want := uint64(7 + i); d.N != want {
			t.Fatalf("snapshot[%d].N = %d, want %d (oldest first)", i, d.N, want)
		}
	}
	last, ok := tr.Last(nil)
	if !ok || last.N != 10 {
		t.Fatalf("Last(nil) = %+v, %v", last, ok)
	}
	mig, ok := tr.Last(func(d Decision) bool { return d.Migrated })
	if !ok || mig.N != 9 {
		t.Fatalf("Last(migrated) = %+v, %v", mig, ok)
	}
	if _, ok := tr.Last(func(d Decision) bool { return d.N > 100 }); ok {
		t.Fatal("Last matched a decision that is not retained")
	}
}

// TestTraceConcurrent drives Add/Snapshot/Last from many goroutines;
// meaningful under -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			tr.Add(Decision{N: uint64(i)})
		}
	}()
	for i := 0; i < 200; i++ {
		tr.Snapshot()
		tr.Last(nil)
		tr.Len()
	}
	<-done
	if tr.Total() != 5000 {
		t.Fatalf("total %d, want 5000", tr.Total())
	}
}
