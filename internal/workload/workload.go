// Package workload generates the evaluation workloads of §6: uniformly
// distributed random 32-bit integer keys produced by a Mersenne Twister
// (matching the paper's use of the C++ STL engine), probe streams with an
// exact true-hit rate σ, optional Zipf skew, and a calibrated artificial
// work loop that stands in for the "work saved" tw in end-to-end
// experiments.
package workload

import (
	"math"

	"perfilter/internal/core"
	"perfilter/internal/exact"
	"perfilter/internal/rng"
)

// BuildProbe is a build-side key set plus a probe stream.
type BuildProbe struct {
	// Build holds n distinct keys (the dimension-table side of Fig. 2).
	Build []core.Key
	// Probe holds the probe stream; a σ fraction are members of Build.
	Probe []core.Key
	// Sigma is the exact fraction of probes with a build-side match.
	Sigma float64
}

// NewBuildProbe generates n distinct build keys and probeCount probes of
// which ⌊σ·probeCount⌉ are uniformly drawn build keys and the rest are
// guaranteed non-members. Deterministic in seed. n is limited to 2^26 keys
// (the dedup structures keep everything exact).
func NewBuildProbe(n, probeCount int, sigma float64, seed uint32) *BuildProbe {
	if n <= 0 || probeCount < 0 {
		panic("workload: sizes must be positive")
	}
	if n > 1<<26 {
		panic("workload: n capped at 2^26")
	}
	if sigma < 0 || sigma > 1 {
		panic("workload: sigma must be in [0,1]")
	}
	r := rng.NewMT19937(seed)
	members := exact.New(n)
	build := make([]core.Key, 0, n)
	for len(build) < n {
		k := r.Uint32()
		if members.Insert(k) {
			build = append(build, k)
		}
	}

	probe := make([]core.Key, probeCount)
	hits := int(math.Round(sigma * float64(probeCount)))
	// Choose hit positions by shuffling an index permutation prefix, so
	// hits are uniformly interleaved (no branch-predictor gifts).
	perm := make([]int32, probeCount)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := 0; i < hits; i++ {
		j := i + int(r.Uint32n(uint32(probeCount-i)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	isHit := make([]bool, probeCount)
	for i := 0; i < hits; i++ {
		isHit[perm[i]] = true
	}
	for i := range probe {
		if isHit[i] {
			probe[i] = build[r.Uint32n(uint32(n))]
			continue
		}
		for {
			k := r.Uint32()
			if !members.Contains(k) {
				probe[i] = k
				break
			}
		}
	}
	return &BuildProbe{Build: build, Probe: probe, Sigma: sigma}
}

// Zipf draws ranks in [0, n) with probability ∝ 1/(rank+1)^s using Knuth's
// rejection-inversion method (no precomputed tables, O(1) per draw). Used
// for skewed probe mixes — an extension beyond the paper's uniform keys.
type Zipf struct {
	r                *rng.MT19937
	n                float64
	s                float64
	oneMinusS        float64
	hIntegralX1      float64
	hIntegralNumberN float64
	scale            float64
}

// NewZipf creates a generator over [0, n) with exponent s > 0, s ≠ 1
// handled together with s == 1 via the integral transform.
func NewZipf(n uint32, s float64, seed uint32) *Zipf {
	if n == 0 || s <= 0 {
		panic("workload: invalid zipf parameters")
	}
	z := &Zipf{r: rng.NewMT19937(seed), n: float64(n), s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumberN = z.hIntegral(z.n + 0.5)
	z.scale = z.hIntegralNumberN - z.hIntegralX1
	return z
}

// hIntegral is the antiderivative of x^-s (with the s=1 log special case).
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with the x→0 series.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with the x→0 series.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1/3.0)*(1+x*0.25))
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() uint32 {
	for {
		u := z.hIntegralNumberN + z.r.Float64()*(-z.scale)
		// u is uniform in (hIntegralX1, hIntegralNumberN].
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		if k-x <= 0.5 || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint32(k - 1)
		}
	}
}

// Work burns approximately `units` dependent ALU operations (≈1 cycle
// each): the tunable per-tuple work that stands in for tw in end-to-end
// experiments (hash-table probes, I/O, network sends). The chain is
// serially dependent so out-of-order execution cannot collapse it.
//
//go:noinline
func Work(units int) uint64 {
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < units; i++ {
		x += x>>17 ^ 0x9E3779B97F4A7C15
	}
	return x
}

// SelectivityOf measures the exact member fraction of probe against build —
// a test/diagnostic helper.
func SelectivityOf(bp *BuildProbe) float64 {
	set := exact.New(len(bp.Build))
	for _, k := range bp.Build {
		set.Insert(k)
	}
	hits := 0
	for _, k := range bp.Probe {
		if set.Contains(k) {
			hits++
		}
	}
	if len(bp.Probe) == 0 {
		return 0
	}
	return float64(hits) / float64(len(bp.Probe))
}
