package workload

import (
	"math"
	"testing"
)

func TestBuildProbeDistinctBuildKeys(t *testing.T) {
	bp := NewBuildProbe(5000, 1000, 0.5, 1)
	seen := map[uint32]bool{}
	for _, k := range bp.Build {
		if seen[k] {
			t.Fatalf("duplicate build key %d", k)
		}
		seen[k] = true
	}
	if len(bp.Build) != 5000 || len(bp.Probe) != 1000 {
		t.Fatal("sizes wrong")
	}
}

func TestBuildProbeExactSelectivity(t *testing.T) {
	for _, sigma := range []float64{0, 0.1, 0.5, 0.9, 1.0} {
		bp := NewBuildProbe(4000, 10000, sigma, 7)
		got := SelectivityOf(bp)
		if math.Abs(got-sigma) > 1e-4+0.5/10000 {
			t.Fatalf("sigma %v: measured %v", sigma, got)
		}
	}
}

func TestBuildProbeDeterminism(t *testing.T) {
	a := NewBuildProbe(100, 200, 0.3, 42)
	b := NewBuildProbe(100, 200, 0.3, 42)
	for i := range a.Build {
		if a.Build[i] != b.Build[i] {
			t.Fatal("build keys nondeterministic")
		}
	}
	for i := range a.Probe {
		if a.Probe[i] != b.Probe[i] {
			t.Fatal("probe keys nondeterministic")
		}
	}
	c := NewBuildProbe(100, 200, 0.3, 43)
	same := 0
	for i := range a.Probe {
		if a.Probe[i] == c.Probe[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds produced similar streams")
	}
}

func TestBuildProbeHitsUniformlyPlaced(t *testing.T) {
	// The hit positions must not cluster at the front (branch-predictor
	// neutrality): compare hit counts in the two halves.
	bp := NewBuildProbe(2000, 20000, 0.5, 3)
	set := map[uint32]bool{}
	for _, k := range bp.Build {
		set[k] = true
	}
	firstHalf := 0
	for i, k := range bp.Probe {
		if set[k] && i < len(bp.Probe)/2 {
			firstHalf++
		}
	}
	if firstHalf < 4500 || firstHalf > 5500 {
		t.Fatalf("hits skewed: %d/10000 in first half", firstHalf)
	}
}

func TestBuildProbePanics(t *testing.T) {
	cases := []func(){
		func() { NewBuildProbe(0, 10, 0.5, 1) },
		func() { NewBuildProbe(10, -1, 0.5, 1) },
		func() { NewBuildProbe(10, 10, -0.1, 1) },
		func() { NewBuildProbe(10, 10, 1.1, 1) },
		func() { NewZipf(0, 1, 1) },
		func() { NewZipf(10, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(1000, 1.1, 5)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("rank %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With s=1.2 over 10k ranks, the top rank must dominate and the
	// frequency must decay roughly like a power law.
	z := NewZipf(10000, 1.2, 9)
	counts := make([]int, 10000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[99]*5 {
		t.Fatalf("rank 0 (%d) not dominating rank 99 (%d)", counts[0], counts[99])
	}
	// Theoretical ratio counts[0]/counts[9] = 10^1.2 ≈ 15.8; allow wide
	// sampling tolerance.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 7 || ratio > 35 {
		t.Fatalf("rank0/rank9 ratio %.1f, want ≈15.8", ratio)
	}
}

func TestZipfNearOne(t *testing.T) {
	// s=1 exercises the log-integral special case.
	z := NewZipf(100, 1.0, 2)
	seen := map[uint32]bool{}
	for i := 0; i < 20000; i++ {
		seen[z.Next()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("s=1 zipf covered only %d/100 ranks", len(seen))
	}
}

func TestWorkScalesLinearly(t *testing.T) {
	if Work(0) == 0 {
		t.Fatal("Work(0) must still return the seed state")
	}
	// Work must not be optimized away and must take longer for more units;
	// verify via monotone growth of a coarse timer would be flaky, so just
	// confirm different unit counts give different final states.
	if Work(10) == Work(20) {
		t.Fatal("work chain collapsed")
	}
}

func BenchmarkWork1000(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Work(1000)
	}
	_ = sink
}

func BenchmarkBuildProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewBuildProbe(1<<14, 1<<14, 0.1, uint32(i))
	}
}
