// Package calibrate implements the paper's one-time calibration phase (§2,
// §5.1): microbenchmark the actual lookup cost tl of filter configurations
// on the target platform, producing data a MeasuredModel can feed into the
// performance-optimal filtering model in place of the analytic presets.
//
// Measurements run batched lookups over a mostly-negative probe mix (the
// high-throughput scenario the paper targets), convert wall time to CPU
// cycles with the platform's estimated cycle rate, and record one point per
// (configuration, filter size). Results serialize to JSON so the
// calibration can be performed once per machine (cmd/filter-calibrate) and
// reused.
package calibrate

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"perfilter/internal/blocked"
	"perfilter/internal/bloom"
	"perfilter/internal/core"
	"perfilter/internal/cuckoo"
	"perfilter/internal/exact"
	"perfilter/internal/model"
	"perfilter/internal/platform"
	"perfilter/internal/rng"
)

// Point is one measured (configuration, size) sample.
type Point struct {
	Config          string  `json:"config"` // canonical Config.String()
	MBits           uint64  `json:"m_bits"`
	NsPerLookup     float64 `json:"ns_per_lookup"`
	CyclesPerLookup float64 `json:"cycles_per_lookup"`
}

// Result is a complete calibration run.
type Result struct {
	Platform    string  `json:"platform"`
	CyclesPerNs float64 `json:"cycles_per_ns"`
	Batch       int     `json:"batch"`
	Points      []Point `json:"points"`
}

// Opts controls measurement effort.
type Opts struct {
	// MinTime is the minimum measurement duration per point; longer gives
	// steadier numbers.
	MinTime time.Duration
	// Batch is the lookup batch size (the paper's unified interface takes
	// whole key lists).
	Batch int
	// LoadBitsPerKey sets how full filters are during measurement (lookup
	// cost is load-independent for these filters, but a realistic fill
	// exercises realistic bit patterns). Default 12.
	LoadBitsPerKey float64
}

// DefaultOpts returns measurement settings good enough for model use.
func DefaultOpts() Opts {
	return Opts{MinTime: 2 * time.Millisecond, Batch: core.DefaultBatch, LoadBitsPerKey: 12}
}

// prober unifies the filters under test.
type prober interface {
	ContainsBatch([]core.Key, core.SelVec) core.SelVec
}

// build constructs a filter for the given model config and size, filled at
// opts.LoadBitsPerKey.
func build(c model.Config, mBits uint64, opts Opts) (prober, error) {
	n := int(float64(mBits) / opts.LoadBitsPerKey)
	if n < 1 {
		n = 1
	}
	r := rng.NewMT19937(0xCA11B)
	switch c.Kind {
	case model.KindBlockedBloom:
		f, err := blocked.New(c.Bloom, mBits)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			f.Insert(r.Uint32())
		}
		return f, nil
	case model.KindClassicBloom:
		f, err := bloom.New(c.Classic, mBits)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			f.Insert(r.Uint32())
		}
		return f, nil
	case model.KindCuckoo:
		f, err := cuckoo.New(c.Cuckoo, mBits)
		if err != nil {
			return nil, err
		}
		// Fill to 90% of the practical load limit or the requested load,
		// whichever is lower; stop early if the table saturates.
		maxN := int(0.9 * float64(f.NumBuckets()) * float64(c.Cuckoo.BucketSize))
		if n > maxN {
			n = maxN
		}
		for i := 0; i < n; i++ {
			if err := f.Insert(r.Uint32()); err != nil {
				break
			}
		}
		return f, nil
	case model.KindExact:
		n := int(mBits / 64)
		s := exact.New(n)
		for i := 0; i < n*4/5; i++ {
			s.Insert(r.Uint32())
		}
		return s, nil
	default:
		return nil, fmt.Errorf("calibrate: unknown kind %d", c.Kind)
	}
}

// MeasurePoint times batched lookups for one configuration and size,
// returning nanoseconds per lookup.
func MeasurePoint(c model.Config, mBits uint64, opts Opts) (float64, error) {
	f, err := build(c, mBits, opts)
	if err != nil {
		return 0, err
	}
	r := rng.NewMT19937(0xBEEF)
	probe := make([]core.Key, opts.Batch)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	sel := make(core.SelVec, 0, opts.Batch)

	// Warm up: touch the filter and let the batch kernel settle.
	sel = f.ContainsBatch(probe, sel[:0])

	var lookups int64
	start := time.Now()
	for time.Since(start) < opts.MinTime {
		for rep := 0; rep < 8; rep++ {
			sel = f.ContainsBatch(probe, sel[:0])
			lookups += int64(len(probe))
		}
	}
	elapsed := time.Since(start)
	_ = sel
	return float64(elapsed.Nanoseconds()) / float64(lookups), nil
}

// Run measures every (config, size) combination and assembles a Result.
func Run(configs []model.Config, sizesBits []uint64, opts Opts) (*Result, error) {
	info := platform.Detect()
	res := &Result{
		Platform:    info.Name,
		CyclesPerNs: info.CyclesPerNs,
		Batch:       opts.Batch,
	}
	for _, c := range configs {
		for _, mBits := range sizesBits {
			actual := c.ActualBits(mBits)
			ns, err := MeasurePoint(c, actual, opts)
			if err != nil {
				return nil, fmt.Errorf("calibrate %s @ %d bits: %w", c, actual, err)
			}
			res.Points = append(res.Points, Point{
				Config:          c.String(),
				MBits:           actual,
				NsPerLookup:     ns,
				CyclesPerLookup: ns * info.CyclesPerNs,
			})
		}
	}
	return res, nil
}

// Marshal serializes a Result to JSON.
func (r *Result) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Unmarshal parses a Result from JSON.
func Unmarshal(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// MeasuredModel is a model.CostModel backed by calibration data. Lookup
// costs between measured sizes are interpolated linearly in log(size);
// outside the measured range the nearest point is used. Configurations that
// were not calibrated report +Inf, which makes skyline sweeps skip them —
// calibrate the configurations you intend to sweep.
type MeasuredModel struct {
	name   string
	points map[string][]Point // by config string, sorted by MBits
}

// NewMeasuredModel indexes a calibration result.
func NewMeasuredModel(res *Result) *MeasuredModel {
	m := &MeasuredModel{
		name:   "measured(" + res.Platform + ")",
		points: make(map[string][]Point),
	}
	for _, p := range res.Points {
		m.points[p.Config] = append(m.points[p.Config], p)
	}
	for k := range m.points {
		ps := m.points[k]
		sort.Slice(ps, func(i, j int) bool { return ps[i].MBits < ps[j].MBits })
	}
	return m
}

// Name implements model.CostModel.
func (m *MeasuredModel) Name() string { return m.name }

// Configs returns the calibrated configuration names.
func (m *MeasuredModel) Configs() []string {
	out := make([]string, 0, len(m.points))
	for k := range m.points {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LookupCycles implements model.CostModel.
func (m *MeasuredModel) LookupCycles(c model.Config, mBits uint64) float64 {
	ps, ok := m.points[c.String()]
	if !ok || len(ps) == 0 {
		return math.Inf(1)
	}
	if mBits <= ps[0].MBits {
		return ps[0].CyclesPerLookup
	}
	if mBits >= ps[len(ps)-1].MBits {
		return ps[len(ps)-1].CyclesPerLookup
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].MBits >= mBits })
	lo, hi := ps[i-1], ps[i]
	t := (math.Log(float64(mBits)) - math.Log(float64(lo.MBits))) /
		(math.Log(float64(hi.MBits)) - math.Log(float64(lo.MBits)))
	return lo.CyclesPerLookup + t*(hi.CyclesPerLookup-lo.CyclesPerLookup)
}
