package calibrate

import (
	"math"
	"testing"
	"time"

	"perfilter/internal/blocked"
	"perfilter/internal/bloom"
	"perfilter/internal/cuckoo"
	"perfilter/internal/model"
)

func quickOpts() Opts {
	o := DefaultOpts()
	o.MinTime = 200 * time.Microsecond
	return o
}

func testConfigs() []model.Config {
	// Note the cuckoo config uses magic modulo: at 16-bit signatures and
	// b=2 the feasible load window (α ≤ 0.84) demands ≥19.05 bits per key,
	// and power-of-two sizing cannot land inside a [19.05, 20] bits/key
	// budget at all — the situation §5.2 introduces magic modulo for.
	return []model.Config{
		{Kind: model.KindBlockedBloom, Bloom: blocked.RegisterBlockedParams(64, 4, false)},
		{Kind: model.KindCuckoo, Cuckoo: cuckoo.Params{TagBits: 16, BucketSize: 2, Magic: true}},
	}
}

func TestRunProducesPoints(t *testing.T) {
	sizes := []uint64{1 << 15, 1 << 18}
	res, err := Run(testConfigs(), sizes, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.NsPerLookup <= 0 || p.NsPerLookup > 10000 {
			t.Fatalf("%s @ %d: implausible %v ns/lookup", p.Config, p.MBits, p.NsPerLookup)
		}
		if p.CyclesPerLookup <= 0 {
			t.Fatalf("non-positive cycles")
		}
	}
	if res.CyclesPerNs <= 0 || res.Platform == "" {
		t.Fatal("platform metadata missing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := &Result{
		Platform:    "test",
		CyclesPerNs: 3,
		Batch:       1024,
		Points: []Point{
			{Config: "a", MBits: 100, NsPerLookup: 1.5, CyclesPerLookup: 4.5},
		},
	}
	data, err := res.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform != "test" || len(back.Points) != 1 || back.Points[0].MBits != 100 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Fatal("accepted invalid JSON")
	}
}

func TestMeasuredModelInterpolation(t *testing.T) {
	cfg := testConfigs()[0]
	res := &Result{
		Platform: "synthetic", CyclesPerNs: 1, Batch: 1024,
		Points: []Point{
			{Config: cfg.String(), MBits: 1 << 10, CyclesPerLookup: 2},
			{Config: cfg.String(), MBits: 1 << 20, CyclesPerLookup: 10},
		},
	}
	m := NewMeasuredModel(res)
	if got := m.LookupCycles(cfg, 1<<10); got != 2 {
		t.Fatalf("at lower bound: %v", got)
	}
	if got := m.LookupCycles(cfg, 1<<20); got != 10 {
		t.Fatalf("at upper bound: %v", got)
	}
	// Log-midpoint (2^15) interpolates halfway.
	if got := m.LookupCycles(cfg, 1<<15); math.Abs(got-6) > 1e-9 {
		t.Fatalf("midpoint: %v, want 6", got)
	}
	// Clamping outside the range.
	if got := m.LookupCycles(cfg, 1); got != 2 {
		t.Fatalf("below range: %v", got)
	}
	if got := m.LookupCycles(cfg, 1<<30); got != 10 {
		t.Fatalf("above range: %v", got)
	}
	// Uncalibrated config → +Inf (skylines skip it).
	other := testConfigs()[1]
	if got := m.LookupCycles(other, 1<<15); !math.IsInf(got, 1) {
		t.Fatalf("uncalibrated config: %v, want +Inf", got)
	}
	if m.Name() != "measured(synthetic)" {
		t.Fatalf("Name() = %q", m.Name())
	}
	if len(m.Configs()) != 1 {
		t.Fatal("Configs() wrong")
	}
}

func TestMeasuredModelInSkyline(t *testing.T) {
	// End-to-end: calibrate two configs on the host and run a tiny skyline
	// from the measurements.
	sizes := []uint64{1 << 14, 1 << 17, 1 << 20}
	configs := testConfigs()
	res, err := Run(configs, sizes, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	mm := NewMeasuredModel(res)
	grid := model.Grid{Ns: []uint64{4096}, Tws: []float64{16, 1 << 20}}
	sky := model.ComputeSkyline(grid, configs, mm, model.DefaultSweepOpts())
	// At tw=2^20 the measured cuckoo must win on precision.
	kind, best := sky.Cells[0][1].Winner(model.KindBlockedBloom, model.KindCuckoo)
	if math.IsInf(best.Rho, 1) {
		t.Fatal("no feasible measured config")
	}
	if kind != model.KindCuckoo {
		t.Fatalf("winner at tw=2^20 is %v; expected cuckoo on precision", kind)
	}
}

func TestMeasurePointAllKinds(t *testing.T) {
	opts := quickOpts()
	kinds := []model.Config{
		{Kind: model.KindBlockedBloom, Bloom: blocked.CacheSectorizedParams(64, 512, 2, 8, true)},
		{Kind: model.KindClassicBloom, Classic: bloom.Params{K: 7}},
		{Kind: model.KindCuckoo, Cuckoo: cuckoo.Params{TagBits: 8, BucketSize: 4}},
		{Kind: model.KindExact},
	}
	for _, c := range kinds {
		ns, err := MeasurePoint(c, 1<<16, opts)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if ns <= 0 {
			t.Fatalf("%s: ns=%v", c, ns)
		}
	}
}
