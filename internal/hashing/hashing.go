// Package hashing implements the multiplicative hashing scheme the paper
// uses for both Bloom and Cuckoo filters (§5), together with a "bit sink"
// that doles out hash bits exactly the way the paper's lookup pseudocode
// consumes them (Listings 1 and 2: "h = consume log2(·) hash bits").
//
// Multiplicative hashing computes h(x) = x·C mod 2^w for an odd constant C.
// The high-order bits of the product are the well-mixed ones, so the sink
// always consumes bits from the top of the current hash word. When a lookup
// needs more bits than one 64-bit product provides (large k, large blocks),
// the sink refills with an inexpensive strong remix of the key and a counter,
// which keeps successive refills independent.
package hashing

import "perfilter/internal/rng"

// Hash constants. Golden32/Golden64 are ⌊2^w/φ⌋ rounded to odd (Knuth's
// multiplicative constants); Murmur32 is the MurmurHash2 multiplier, used
// as a second, independent multiplicative constant for signature hashing in
// the cuckoo filter so that tag→alt-bucket mixing is decoupled from key
// hashing.
const (
	Golden32 uint32 = 0x9E3779B1
	Golden64 uint64 = 0x9E3779B97F4A7C15
	Murmur32 uint32 = 0x5BD1E995
)

// Mult32 is 32-bit multiplicative hashing: the full product x·C mod 2^32.
// Callers that need p well-mixed bits should take the top p bits.
func Mult32(x uint32) uint32 {
	return x * Golden32
}

// Mult64 widens a 32-bit key and computes the 64-bit multiplicative hash.
// The top bits carry the most entropy.
func Mult64(x uint32) uint64 {
	return uint64(x) * Golden64
}

// TagHash hashes a cuckoo-filter signature ("tag") with an independent
// multiplicative constant. It is used to derive the alternate bucket index
// (Eq. 6: i2 = i1 ⊕ hash(signature)).
func TagHash(sig uint32) uint32 {
	return sig * Murmur32
}

// Fold64 compresses a 64-bit hash to 32 bits by xor-folding, preserving
// entropy from both halves.
func Fold64(h uint64) uint32 {
	return uint32(h>>32) ^ uint32(h)
}

// Sink is a stream of hash bits derived from one key. It is a value type;
// create one per lookup with NewSink and consume with Next. Copies are
// independent streams positioned at the copy point, which the blocked-filter
// kernels exploit to share the block-address bits between insert and lookup.
type Sink struct {
	key   uint64 // widened original key, used for refills
	word  uint64 // current hash word; bits are consumed from the top
	ctr   uint64 // refill counter
	avail uint32 // unconsumed bits remaining in word
}

// NewSink returns a sink positioned at the first (multiplicative) hash word
// of key.
func NewSink(key uint32) Sink {
	return Sink{
		key:   uint64(key),
		word:  Mult64(key),
		avail: 64,
	}
}

// Next consumes the next n hash bits (0 ≤ n ≤ 32) from the top of the
// stream and returns them right-aligned. Consuming 0 bits returns 0.
func (s *Sink) Next(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	if s.avail < n {
		s.refill()
	}
	v := uint32(s.word >> (64 - n))
	s.word <<= n
	s.avail -= n
	return v
}

// refill replaces the current word with an independent remix of the key.
// rng.Mix64 is a fixed 64-bit permutation with full avalanche, so words for
// different counter values are uncorrelated even for adjacent keys.
func (s *Sink) refill() {
	s.ctr++
	s.word = rng.Mix64(s.key + s.ctr*Golden64)
	s.avail = 64
}

// BitsForBlocked returns the total number of hash bits a blocked Bloom
// filter lookup consumes: log2(m/B) block-address bits plus k·log2(B)
// bit-address bits (§3.1). It exists so tests can assert the sink never
// exhausts its stream quality within one lookup.
func BitsForBlocked(blockAddrBits, k, blockBits uint32) uint32 {
	return blockAddrBits + k*log2u32(blockBits)
}

func log2u32(x uint32) uint32 {
	var n uint32
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
