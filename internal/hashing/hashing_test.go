package hashing

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMult32IsMultiplication(t *testing.T) {
	for _, x := range []uint32{0, 1, 2, 12345, 1 << 31, 0xFFFFFFFF} {
		if Mult32(x) != x*Golden32 {
			t.Fatalf("Mult32(%d) mismatch", x)
		}
	}
}

func TestMult64TopBitsDistribution(t *testing.T) {
	// Sequential keys must spread across buckets when addressed by the top
	// bits — the defining property of multiplicative hashing.
	const p = 8
	var buckets [1 << p]int
	const n = 1 << 16
	for i := uint32(0); i < n; i++ {
		buckets[Mult64(i)>>(64-p)]++
	}
	want := n / (1 << p)
	for b, c := range buckets {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d: %d keys, expected ~%d", b, c, want)
		}
	}
}

func TestFold64(t *testing.T) {
	if Fold64(0) != 0 {
		t.Fatal("Fold64(0) != 0")
	}
	if Fold64(0xFFFFFFFF00000000) != 0xFFFFFFFF {
		t.Fatal("high-half fold wrong")
	}
	if Fold64(0x00000000FFFFFFFF) != 0xFFFFFFFF {
		t.Fatal("low-half fold wrong")
	}
}

func TestSinkDeterminism(t *testing.T) {
	a := NewSink(42)
	b := NewSink(42)
	widths := []uint32{5, 9, 32, 1, 17, 32, 32, 6, 6, 6, 6, 6}
	for i, w := range widths {
		if x, y := a.Next(w), b.Next(w); x != y {
			t.Fatalf("draw %d (width %d): %d vs %d", i, w, x, y)
		}
	}
}

func TestSinkZeroWidth(t *testing.T) {
	s := NewSink(7)
	before := s
	if s.Next(0) != 0 {
		t.Fatal("Next(0) != 0")
	}
	if s != before {
		t.Fatal("Next(0) mutated the sink")
	}
}

func TestSinkWidthBounds(t *testing.T) {
	s := NewSink(123)
	for i := 0; i < 100; i++ {
		for _, w := range []uint32{1, 3, 6, 9, 17, 32} {
			v := s.Next(w)
			if w < 32 && v >= 1<<w {
				t.Fatalf("Next(%d) = %d exceeds width", w, v)
			}
		}
	}
}

func TestSinkFirstWordIsMultiplicative(t *testing.T) {
	// The first 32 bits drawn must equal the top 32 bits of key·Golden64:
	// that is what makes the scheme "multiplicative hashing".
	if err := quick.Check(func(key uint32) bool {
		s := NewSink(key)
		return s.Next(32) == uint32(Mult64(key)>>32)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSinkSplitConsumption(t *testing.T) {
	// Drawing 8+8 bits must yield the same bits as drawing 16 at once.
	if err := quick.Check(func(key uint32) bool {
		a := NewSink(key)
		b := NewSink(key)
		hi := a.Next(8)
		lo := a.Next(8)
		return hi<<8|lo == b.Next(16)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSinkRefillIndependence(t *testing.T) {
	// Bits drawn after a refill must not repeat the first word.
	s := NewSink(99)
	first := s.Next(32)
	second := s.Next(32) // exhausts word
	third := s.Next(32)  // forces refill
	if first == third && second == third {
		t.Fatal("refilled word identical to first word")
	}
}

func TestSinkAdjacentKeysDiverge(t *testing.T) {
	// Adjacent keys should produce very different bit streams, including
	// deep into the refill region.
	diff := 0
	for i := 0; i < 64; i++ {
		a, b := NewSink(uint32(i)), NewSink(uint32(i+1))
		for d := 0; d < 8; d++ { // 256 bits, 3 refills
			if a.Next(32) != b.Next(32) {
				diff++
			}
		}
	}
	if diff < 64*8*9/10 {
		t.Fatalf("adjacent keys agreed too often: %d/512 draws differed", diff)
	}
}

func TestSinkUniformityPerDraw(t *testing.T) {
	// Each 6-bit draw position should be roughly uniform over many keys.
	const draws = 10
	const width = 6
	var buckets [draws][1 << width]int
	const keys = 1 << 14
	for k := uint32(0); k < keys; k++ {
		s := NewSink(k * 2654435761) // scatter the key space
		for d := 0; d < draws; d++ {
			buckets[d][s.Next(width)]++
		}
	}
	want := keys / (1 << width)
	for d := 0; d < draws; d++ {
		for v, c := range buckets[d] {
			if c < want/2 || c > want*2 {
				t.Fatalf("draw %d value %d: count %d, expected ~%d", d, v, c, want)
			}
		}
	}
}

func TestTagHashNonTrivial(t *testing.T) {
	seen := map[uint32]bool{}
	for sig := uint32(1); sig < 1<<12; sig++ {
		seen[TagHash(sig)>>20] = true
	}
	if len(seen) < 1<<10 {
		t.Fatalf("TagHash top bits cover only %d values", len(seen))
	}
}

func TestBitsForBlocked(t *testing.T) {
	// Register-blocked, B=32, k=4, 2^20 blocks: 20 + 4·5 = 40 bits.
	if got := BitsForBlocked(20, 4, 32); got != 40 {
		t.Fatalf("got %d, want 40", got)
	}
	// Cache-line block, B=512, k=16: k·9 bits.
	if got := BitsForBlocked(10, 16, 512); got != 10+16*9 {
		t.Fatalf("got %d", got)
	}
}

func TestAvalancheOfRefillWords(t *testing.T) {
	// Refill words for consecutive counters must differ in ~32 bits.
	s1 := NewSink(5)
	s1.Next(32)
	s1.Next(32)
	w1 := uint64(s1.Next(32))<<32 | uint64(s1.Next(32))
	w2 := uint64(s1.Next(32))<<32 | uint64(s1.Next(32))
	d := bits.OnesCount64(w1 ^ w2)
	if d < 10 || d > 54 {
		t.Fatalf("refill avalanche weak: %d differing bits", d)
	}
}

func BenchmarkSinkLookupPattern(b *testing.B) {
	// Models a k=8, B=512, z=2 cache-sectorized lookup's hash consumption.
	var sink uint32
	for i := 0; i < b.N; i++ {
		s := NewSink(uint32(i))
		sink += s.Next(20) // block address
		sink += s.Next(2)  // sector-in-group (×2)
		sink += s.Next(2)
		for j := 0; j < 8; j++ {
			sink += s.Next(6) // bit address
		}
	}
	_ = sink
}
