// Package counting implements a counting Bloom filter (§7 of the paper
// cites Bonomi et al.'s construction as the classic way to give Bloom
// filters deletions): each position holds a small saturating counter
// instead of one bit. Insert increments the k counters, Delete decrements
// them, Contains tests them all for non-zero.
//
// The layout is register-blocked in the paper's spirit: a block is a group
// of 4-bit counters packed into 64-bit words, all k counters of a key
// within one block, so lookups keep the one-cache-line guarantee. Counters
// saturate at 15 and, once saturated, are never decremented (the standard
// safety rule that preserves the no-false-negative guarantee at the cost
// of residual bits after heavy churn).
//
// Memory accounting is honest: 4 bits per counter means a counting filter
// needs 4× the memory of a register-blocked filter at the same (m, k)
// precision — the trade the paper's related-work section points at when it
// recommends cuckoo filters for delete-heavy workloads.
package counting

import (
	"fmt"

	"perfilter/internal/core"
	"perfilter/internal/fpr"
	"perfilter/internal/hashing"
	"perfilter/internal/magic"
	"perfilter/internal/mem"
	"perfilter/internal/simd"
)

// CounterBits is the width of each counter (4 bits saturating at 15, the
// standard choice: overflow probability is negligible at practical loads).
const CounterBits = 4

// counterMax is the saturation value.
const counterMax = 1<<CounterBits - 1

// BlockCounters is the number of counters per block: 128 counters of
// 4 bits = 512 bits = one cache line.
const BlockCounters = 128

// Params configures a counting filter.
type Params struct {
	// K is the number of counters touched per key, 1..fpr.MaxK.
	K uint32
	// Magic selects magic-modulo block addressing.
	Magic bool
}

// Validate checks the configuration.
func (p Params) Validate() error {
	if p.K == 0 || p.K > fpr.MaxK {
		return fmt.Errorf("counting: k=%d out of range [1, %d]", p.K, fpr.MaxK)
	}
	return nil
}

// String renders the configuration.
func (p Params) String() string {
	mod := "pow2"
	if p.Magic {
		mod = "magic"
	}
	return fmt.Sprintf("bloom/counting[k=%d,%s]", p.K, mod)
}

// Filter is a blocked counting Bloom filter.
type Filter struct {
	params     Params
	words      []uint64 // 16 counters per word, 8 words per block
	numBlocks  uint32
	blockMask  uint32
	dv         magic.Divider
	count      uint64 // live insertions (diagnostics)
	overflowed uint64 // counters that ever saturated
}

// wordsPerBlock is BlockCounters·CounterBits/64.
const wordsPerBlock = BlockCounters * CounterBits / 64

// New builds a filter with at least nCounters counters (each CounterBits
// wide). The equivalent plain-Bloom size for precision math is nCounters
// bits; memory is CounterBits× that.
func New(p Params, nCounters uint64) (*Filter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if nCounters == 0 {
		return nil, fmt.Errorf("counting: size must be positive")
	}
	f := &Filter{params: p}
	blocks := (nCounters + BlockCounters - 1) / BlockCounters
	if p.Magic {
		if blocks > 0xFFFFFFFF {
			return nil, fmt.Errorf("counting: too many blocks")
		}
		f.dv = magic.Next(uint32(blocks))
		f.numBlocks = f.dv.D()
	} else {
		pow := uint64(1)
		for pow < blocks {
			pow <<= 1
		}
		if pow >= 1<<32 {
			return nil, fmt.Errorf("counting: too many blocks")
		}
		f.numBlocks = uint32(pow)
		f.blockMask = uint32(pow) - 1
	}
	f.words = mem.Aligned[uint64](int(uint64(f.numBlocks) * wordsPerBlock))
	return f, nil
}

// StorageAligned reports whether the counter array starts on a cache-line
// boundary (always true for filters from New).
func (f *Filter) StorageAligned() bool { return mem.IsAligned(f.words) }

// counterPos resolves a key's i-th counter to (word index, bit shift).
// The consumption discipline matches the register-blocked filters: one
// 32-bit block draw, then 7-bit counter indexes (log2(128)).
func (f *Filter) positions(key core.Key, visit func(word uint64, shift uint32)) {
	sink := hashing.NewSink(key)
	h := sink.Next(32)
	var block uint32
	if f.params.Magic {
		block = f.dv.Mod(h)
	} else {
		block = h & f.blockMask
	}
	base := uint64(block) * wordsPerBlock
	for i := uint32(0); i < f.params.K; i++ {
		c := sink.Next(7) // counter index within block
		word := base + uint64(c>>4)
		shift := (c & 15) * CounterBits
		visit(word, shift)
	}
}

// Insert adds a key, incrementing its k counters (saturating).
func (f *Filter) Insert(key core.Key) error {
	f.positions(key, func(w uint64, sh uint32) {
		cur := f.words[w] >> sh & counterMax
		if cur == counterMax {
			f.overflowed++
			return // saturated: sticky
		}
		f.words[w] += 1 << sh
	})
	f.count++
	return nil
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key core.Key) bool {
	ok := true
	f.positions(key, func(w uint64, sh uint32) {
		if f.words[w]>>sh&counterMax == 0 {
			ok = false
		}
	})
	return ok
}

// ContainsBatch implements the shared batched contract.
func (f *Filter) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	buf, cnt := simd.GrowSel(sel, len(keys))
	for i, key := range keys {
		buf[cnt] = uint32(i)
		cnt += simd.B2I(f.Contains(key))
	}
	return buf[:cnt]
}

// Delete decrements the key's counters. Only delete keys that were
// inserted: deleting absent keys can introduce false negatives for other
// keys (the standard counting-filter caveat). Returns false without
// mutating anything if any counter is already zero (key definitely absent).
func (f *Filter) Delete(key core.Key) bool {
	if !f.Contains(key) {
		return false
	}
	f.positions(key, func(w uint64, sh uint32) {
		cur := f.words[w] >> sh & counterMax
		if cur == 0 || cur == counterMax {
			return // absent (impossible here) or saturated: sticky
		}
		f.words[w] -= 1 << sh
	})
	f.count--
	return true
}

// SizeBits returns the true memory footprint in bits.
func (f *Filter) SizeBits() uint64 {
	return uint64(f.numBlocks) * BlockCounters * CounterBits
}

// FPR returns the analytic false-positive rate: precision equals a blocked
// Bloom filter with one bit per counter (a counter is "set" iff non-zero).
func (f *Filter) FPR(n uint64) float64 {
	mEquivalent := float64(f.numBlocks) * BlockCounters
	return fpr.Blocked(mEquivalent, float64(n), f.params.K, BlockCounters)
}

// Count returns the live insertion count.
func (f *Filter) Count() uint64 { return f.count }

// Overflowed reports how many increments hit saturated counters — a
// diagnostic for whether 4-bit counters suffice for the workload.
func (f *Filter) Overflowed() uint64 { return f.overflowed }

// Params returns the configuration.
func (f *Filter) Params() Params { return f.params }

// Reset clears the filter.
func (f *Filter) Reset() {
	clear(f.words)
	f.count = 0
	f.overflowed = 0
}

// String describes the filter.
func (f *Filter) String() string { return f.params.String() }
