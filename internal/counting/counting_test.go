package counting

import (
	"testing"
	"testing/quick"

	"perfilter/internal/rng"
)

func TestInsertContainsDelete(t *testing.T) {
	for _, p := range []Params{{K: 4}, {K: 7, Magic: true}} {
		f, err := New(p, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewMT19937(1)
		keys := make([]uint32, 2000)
		for i := range keys {
			keys[i] = r.Uint32()
			if err := f.Insert(keys[i]); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range keys {
			if !f.Contains(k) {
				t.Fatalf("%s: false negative", p)
			}
		}
		// Delete every key; all deletions must succeed.
		for _, k := range keys {
			if !f.Delete(k) {
				t.Fatalf("%s: delete failed", p)
			}
		}
		if f.Count() != 0 {
			t.Fatalf("count %d after deleting everything", f.Count())
		}
		// Most probes must now be negative again (saturated counters may
		// leave residue, but none should exist at this load).
		neg := 0
		probe := rng.NewSplitMix64(2)
		for i := 0; i < 2000; i++ {
			if !f.Contains(probe.Uint32()) {
				neg++
			}
		}
		if neg < 1990 {
			t.Fatalf("%s: only %d/2000 negative after full deletion", p, neg)
		}
	}
}

func TestDeleteAbsentIsSafeNoop(t *testing.T) {
	f, _ := New(Params{K: 4}, 1<<14)
	f.Insert(1)
	if f.Delete(999999) {
		t.Fatal("deleted an absent key")
	}
	if !f.Contains(1) {
		t.Fatal("unrelated key lost")
	}
}

func TestDeletePreservesOtherKeys(t *testing.T) {
	// Insert overlapping keys, delete half, the other half must remain.
	f, _ := New(Params{K: 5}, 1<<15)
	r := rng.NewMT19937(3)
	keep := make([]uint32, 1000)
	drop := make([]uint32, 1000)
	for i := range keep {
		keep[i] = r.Uint32()
		drop[i] = r.Uint32()
		f.Insert(keep[i])
		f.Insert(drop[i])
	}
	for _, k := range drop {
		f.Delete(k)
	}
	for _, k := range keep {
		if !f.Contains(k) {
			t.Fatal("delete of another key removed a live key")
		}
	}
}

func TestDuplicateInsertsNeedMatchingDeletes(t *testing.T) {
	f, _ := New(Params{K: 4}, 1<<14)
	for i := 0; i < 3; i++ {
		f.Insert(42)
	}
	f.Delete(42)
	f.Delete(42)
	if !f.Contains(42) {
		t.Fatal("key vanished before its last copy was deleted")
	}
	f.Delete(42)
	if f.Contains(42) {
		t.Fatal("key survived all its deletes")
	}
}

func TestSaturationIsSticky(t *testing.T) {
	f, _ := New(Params{K: 1}, 256)
	// Hammer one key far past the counter max.
	for i := 0; i < 100; i++ {
		f.Insert(7)
	}
	if f.Overflowed() == 0 {
		t.Fatal("expected overflow events")
	}
	// Deleting 100 times must not produce a false negative for a saturated
	// counter (it stays at max).
	for i := 0; i < 100; i++ {
		f.Delete(7)
	}
	if !f.Contains(7) {
		t.Fatal("saturated counter was decremented to zero")
	}
}

func TestFPRMatchesBlockedModel(t *testing.T) {
	const n = 1 << 13
	f, _ := New(Params{K: 5}, n*12) // 12 counters/key
	r := rng.NewMT19937(9)
	inserted := map[uint32]bool{}
	for len(inserted) < n {
		k := r.Uint32()
		if !inserted[k] {
			inserted[k] = true
			f.Insert(k)
		}
	}
	model := f.FPR(n)
	fp, tested := 0, 0
	for tested < 1<<17 {
		k := r.Uint32()
		if inserted[k] {
			continue
		}
		tested++
		if f.Contains(k) {
			fp++
		}
	}
	measured := float64(fp) / float64(tested)
	if measured > model*1.3+0.002 || measured < model*0.7-0.002 {
		t.Fatalf("measured %.5f vs model %.5f", measured, model)
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	f, _ := New(Params{K: 4, Magic: true}, 1<<14)
	r := rng.NewMT19937(5)
	for i := 0; i < 500; i++ {
		f.Insert(r.Uint32())
	}
	probe := make([]uint32, 777)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	sel := f.ContainsBatch(probe, nil)
	j := 0
	for i, k := range probe {
		want := f.Contains(k)
		got := j < len(sel) && sel[j] == uint32(i)
		if got != want {
			t.Fatalf("pos %d mismatch", i)
		}
		if got {
			j++
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	f, _ := New(Params{K: 4}, 1000)
	if f.SizeBits() != uint64(f.numBlocks)*BlockCounters*CounterBits {
		t.Fatal("SizeBits wrong")
	}
	// 4 bits per counter: footprint is 4× the equivalent bit count.
	if f.SizeBits() < 4*uint64(f.numBlocks)*BlockCounters/4 {
		t.Fatal("counter width not accounted")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Params{K: 0}, 100); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := New(Params{K: 17}, 100); err == nil {
		t.Fatal("accepted k>16")
	}
	if _, err := New(Params{K: 4}, 0); err == nil {
		t.Fatal("accepted zero size")
	}
}

func TestQuickInsertDeleteInverse(t *testing.T) {
	f, _ := New(Params{K: 4}, 1<<16)
	if err := quick.Check(func(key uint32) bool {
		f.Insert(key)
		if !f.Contains(key) {
			return false
		}
		return f.Delete(key)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	f, _ := New(Params{K: 4}, 1<<12)
	f.Insert(5)
	f.Reset()
	if f.Contains(5) || f.Count() != 0 {
		t.Fatal("reset incomplete")
	}
}
