package counting

import (
	"encoding/binary"
	"fmt"

	"perfilter/internal/magic"
)

// Serialization mirrors package blocked's: a fixed little-endian header
// (magic, version, parameters, block count, diagnostics) followed by the
// raw counter words, canonicalized to little-endian.

// WireMagic is the first little-endian uint32 of every serialized
// counting filter; the perfilter package dispatches decoders on it. The
// value is assigned centrally in internal/magic alongside every other
// format's.
const WireMagic = magic.WireCounting // "pfLN"

const (
	wireVersion = 1
	headerLen   = 4 + 1 + 1 + 4 + 4 + 8 + 8
)

// MarshalBinary serializes the filter (header + counter words).
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, headerLen+len(f.words)*8)
	le := binary.LittleEndian
	le.PutUint32(out[0:], WireMagic)
	out[4] = wireVersion
	if f.params.Magic {
		out[5] = 1
	}
	le.PutUint32(out[6:], f.params.K)
	le.PutUint32(out[10:], f.numBlocks)
	le.PutUint64(out[14:], f.count)
	le.PutUint64(out[22:], f.overflowed)
	for i, w := range f.words {
		le.PutUint64(out[headerLen+i*8:], w)
	}
	return out, nil
}

// Unmarshal reconstructs a filter from MarshalBinary output.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("counting: truncated header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != WireMagic {
		return nil, fmt.Errorf("counting: bad magic")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("counting: unsupported version %d", data[4])
	}
	p := Params{Magic: data[5] == 1, K: le.Uint32(data[6:])}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	numBlocks := le.Uint32(data[10:])
	if numBlocks == 0 {
		return nil, fmt.Errorf("counting: zero blocks")
	}
	// Reject sizes the input cannot possibly carry before allocating the
	// word array (see the equivalent guard in package blocked).
	if uint64(numBlocks)*BlockCounters*CounterBits > uint64(len(data))*8 {
		return nil, fmt.Errorf("counting: %d blocks exceed the %d-byte encoding", numBlocks, len(data))
	}
	// Rebuild through New at the exact rounded counter count; the block
	// count must reproduce (New rounds an already-rounded size to itself).
	f, err := New(p, uint64(numBlocks)*BlockCounters)
	if err != nil {
		return nil, err
	}
	if f.numBlocks != numBlocks {
		return nil, fmt.Errorf("counting: block count mismatch (%d vs %d)",
			f.numBlocks, numBlocks)
	}
	if len(data) != headerLen+len(f.words)*8 {
		return nil, fmt.Errorf("counting: body length %d, want %d",
			len(data)-headerLen, len(f.words)*8)
	}
	f.count = le.Uint64(data[14:])
	f.overflowed = le.Uint64(data[22:])
	for i := range f.words {
		f.words[i] = le.Uint64(data[headerLen+i*8:])
	}
	return f, nil
}
