// Package magic implements "magic modulo" (§5.2 of the paper): replacing
// the integer division inside `hash mod C` with a multiply-and-shift by a
// precomputed magic number, so filters can use (almost) arbitrary sizes
// instead of powers of two.
//
// Magic numbers for unsigned division fall into two classes: (i) those that
// need a multiply-shift-add instruction sequence and (ii) those that need
// only a multiply and a shift. Because a filter may slightly overshoot its
// desired size, Next searches upward from the desired divisor for the first
// class-(ii) divisor, saving the trailing add exactly as the paper describes.
// The paper reports the overshoot is at most 0.0134% for up to 2^32 blocks;
// TestNextOvershoot verifies the same bound for this implementation.
//
// Note: the paper's Eq. 9 prints the remainder as
// h − (mulhi_u32(h, magicNo) >> shift) ∗ h; the trailing factor must be the
// divisor C, not h, and that is what Mod computes.
package magic

import "math/bits"

// Divider divides and reduces 32-bit values by a fixed divisor using a
// precomputed magic number. The zero value is invalid; construct with
// Compute or Next.
type Divider struct {
	d   uint32 // divisor
	m   uint32 // magic multiplier
	s   uint32 // post-multiply shift
	add bool   // class (i): needs the n−t fixup sequence
}

// Compute returns the Divider for d using the minimal magic number for
// unsigned 32-bit division (the classic algorithm from Hacker's Delight
// §10-9, "magicu"). d must be ≥ 1. Divisors that are powers of two yield a
// pure shift (class (ii)); d == 1 yields the identity.
func Compute(d uint32) Divider {
	if d == 0 {
		panic("magic: divisor must be >= 1")
	}
	if d == 1 {
		return Divider{d: 1, m: 0, s: 0, add: false}
	}
	if d&(d-1) == 0 {
		// Power of two: mulhi(n, 2^(32-k)) == n >> k with no further shift.
		k := uint32(bits.TrailingZeros32(d))
		return Divider{d: d, m: 1 << (32 - k), s: 0, add: false}
	}

	// magicu: search for the smallest p ≥ 32 such that a 32/33-bit magic
	// exists. All arithmetic is 32-bit unsigned exactly as in the reference
	// formulation; q2/r2 track the candidate magic, q1/r1 the bound.
	var (
		p        = uint32(31)
		nc       = uint32(0xFFFFFFFF) - (uint32(0)-d)%d
		q1       = uint32(0x80000000) / nc
		r1       = uint32(0x80000000) - q1*nc
		q2       = uint32(0x7FFFFFFF) / d
		r2       = uint32(0x7FFFFFFF) - q2*d
		needsAdd = false
		delta    uint32
	)
	for {
		p++
		if r1 >= nc-r1 {
			q1 = 2*q1 + 1
			r1 = 2*r1 - nc
		} else {
			q1 = 2 * q1
			r1 = 2 * r1
		}
		if r2+1 >= d-r2 {
			if q2 >= 0x7FFFFFFF {
				needsAdd = true
			}
			q2 = 2*q2 + 1
			r2 = 2*r2 + 1 - d
		} else {
			if q2 >= 0x80000000 {
				needsAdd = true
			}
			q2 = 2 * q2
			r2 = 2*r2 + 1
		}
		delta = d - 1 - r2
		if p >= 64 || (q1 >= delta && !(q1 == delta && r1 == 0)) {
			break
		}
	}
	return Divider{d: d, m: q2 + 1, s: p - 32, add: needsAdd}
}

// Next returns the Divider for the smallest divisor ≥ d whose magic number
// is class (ii) — multiply-shift only, no trailing add. This is the paper's
// nextMagicNo: filters round their block/bucket count up to this divisor.
func Next(d uint32) Divider {
	for {
		dv := Compute(d)
		if !dv.add {
			return dv
		}
		d++ // cannot overflow in practice: powers of two are class (ii)
	}
}

// D returns the divisor.
func (v Divider) D() uint32 { return v.d }

// NeedsAdd reports whether the divider is class (i) (multiply-shift-add).
func (v Divider) NeedsAdd() bool { return v.add }

// Magic returns the magic multiplier and shift (for documentation and
// serialization of calibration results).
func (v Divider) Magic() (m, s uint32) { return v.m, v.s }

// Div returns n / d.
func (v Divider) Div(n uint32) uint32 {
	if v.d == 1 {
		return n
	}
	t := mulhi(n, v.m)
	if v.add {
		// Class (i) fixup: q = (t + (n−t)/2) >> (s−1). The intermediate
		// t + (n−t)/2 cannot overflow because (n−t)/2 ≤ 2^31.
		return (t + (n-t)>>1) >> (v.s - 1)
	}
	return t >> v.s
}

// Mod returns n mod d via n − Div(n)·d (Eq. 9, corrected).
func (v Divider) Mod(n uint32) uint32 {
	return n - v.Div(n)*v.d
}

// mulhi multiplies two 32-bit integers producing a 64-bit intermediate and
// returns the upper 32 bits — the paper's mulhi_u32.
func mulhi(a, b uint32) uint32 {
	return uint32(uint64(a) * uint64(b) >> 32)
}

// NextSize implements the paper's Eq. 10: given a desired size in units
// (e.g. bits) and the granule x (block bits for Bloom, l·b for Cuckoo),
// it returns the actual unit count x·Next(⌈desired/x⌉) and the Divider
// addressing the ⌈desired/x⌉-rounded block count.
func NextSize(desired uint64, x uint32) (actual uint64, dv Divider) {
	if x == 0 {
		panic("magic: granule must be >= 1")
	}
	blocks := (desired + uint64(x) - 1) / uint64(x)
	if blocks == 0 {
		blocks = 1
	}
	if blocks > 0xFFFFFFFF {
		panic("magic: more than 2^32 blocks requested")
	}
	dv = Next(uint32(blocks))
	return uint64(dv.d) * uint64(x), dv
}
