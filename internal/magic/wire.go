package magic

// Wire magics: the first little-endian uint32 of every serialized filter
// format in the module, declared together so the full namespace is visible
// in one place and collisions are impossible to miss (TestWireMagicsUnique
// asserts uniqueness). Each family's serializer references its constant
// (directly or through a package-local alias), and the kind-descriptor
// registry keys its decoder dispatch on them. The values spell "pfL?" in
// little-endian ASCII and are frozen: changing one breaks every snapshot
// written by an earlier build.
const (
	// WireBlocked tags blocked / register-blocked / sectorized /
	// cache-sectorized Bloom filters (internal/blocked).
	WireBlocked = 0x70664C42 // "pfLB"
	// WireClassic tags classic (unblocked) Bloom filters (internal/bloom).
	WireClassic = 0x70664C4B // "pfLK"
	// WireCuckoo tags cuckoo filters (internal/cuckoo).
	WireCuckoo = 0x70664C43 // "pfLC"
	// WireExact tags the exact Robin Hood hash set (internal/exact).
	WireExact = 0x70664C45 // "pfLE"
	// WireXor tags xor/fuse filters (internal/xor).
	WireXor = 0x70664C58 // "pfLX"
	// WireCounting tags counting Bloom filters (internal/counting).
	WireCounting = 0x70664C4E // "pfLN"
	// WireScalable tags scalable Bloom filters (internal/scalable).
	WireScalable = 0x70664C47 // "pfLG"
	// WireSharded tags the sharded concurrent wrapper's envelope of
	// per-shard payloads (root package).
	WireSharded = 0x70664C50 // "pfLP"
	// WireAdaptive tags the adaptive wrapper's envelope: workload counters
	// and key log around an inner sharded envelope (root package).
	WireAdaptive = 0x70664C41 // "pfLA"
)

// WireMagics lists every assigned wire magic; new formats must append
// here so the uniqueness test covers them.
func WireMagics() []uint32 {
	return []uint32{
		WireBlocked, WireClassic, WireCuckoo, WireExact, WireXor,
		WireCounting, WireScalable, WireSharded, WireAdaptive,
	}
}
