package magic

import (
	"testing"
	"testing/quick"

	"perfilter/internal/rng"
)

// divisor set covering small values, primes, powers of two, and values just
// off powers of two.
var testDivisors = []uint32{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 25, 100, 127, 128,
	129, 255, 256, 257, 641, 1000, 1023, 1024, 1025, 4097, 65535, 65536, 65537,
	1000003, 1 << 20, (1 << 20) + 7, 1<<24 - 1, 1 << 30, 1<<31 - 1, 1 << 31,
	(1 << 31) + 1, 0xFFFFFFFE, 0xFFFFFFFF,
}

var testValues = []uint32{
	0, 1, 2, 3, 100, 12345, 1 << 16, 1<<20 - 1, 1 << 24, 1<<31 - 1, 1 << 31,
	(1 << 31) + 1, 0xDEADBEEF, 0xFFFFFFFE, 0xFFFFFFFF,
}

func TestDivMatchesHardwareDivision(t *testing.T) {
	for _, d := range testDivisors {
		dv := Compute(d)
		for _, n := range testValues {
			if got, want := dv.Div(n), n/d; got != want {
				t.Fatalf("Div(%d)/%d = %d, want %d (magic=%#x shift=%d add=%v)",
					n, d, got, want, dv.m, dv.s, dv.add)
			}
		}
	}
}

func TestModMatchesHardwareModulo(t *testing.T) {
	for _, d := range testDivisors {
		dv := Compute(d)
		for _, n := range testValues {
			if got, want := dv.Mod(n), n%d; got != want {
				t.Fatalf("Mod(%d) mod %d = %d, want %d", n, d, got, want)
			}
		}
	}
}

func TestDivRandomized(t *testing.T) {
	r := rng.NewSplitMix64(2024)
	for i := 0; i < 2000; i++ {
		d := r.Uint32()
		if d == 0 {
			d = 1
		}
		dv := Compute(d)
		for j := 0; j < 50; j++ {
			n := r.Uint32()
			if dv.Div(n) != n/d {
				t.Fatalf("d=%d n=%d: %d != %d", d, n, dv.Div(n), n/d)
			}
			if dv.Mod(n) != n%d {
				t.Fatalf("mod d=%d n=%d", d, n)
			}
		}
	}
}

func TestQuickDivProperty(t *testing.T) {
	if err := quick.Check(func(d, n uint32) bool {
		if d == 0 {
			d = 1
		}
		dv := Compute(d)
		return dv.Div(n) == n/d && dv.Mod(n) == n%d
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveSmallDivisors(t *testing.T) {
	// For every divisor up to 2^12, check a dense value sample including
	// multiples of d and their neighbours (the hard cases for magic math).
	for d := uint32(1); d <= 1<<12; d++ {
		dv := Compute(d)
		for _, base := range []uint32{0, d, 2 * d, 1000 * d, 0xFFFFFFFF / d * d} {
			for off := -2; off <= 2; off++ {
				n := base + uint32(off)
				if dv.Div(n) != n/d {
					t.Fatalf("d=%d n=%d: div %d want %d", d, n, dv.Div(n), n/d)
				}
			}
		}
	}
}

func TestPowersOfTwoAreNoAdd(t *testing.T) {
	for k := 0; k < 32; k++ {
		d := uint32(1) << k
		if Compute(d).NeedsAdd() {
			t.Fatalf("pow2 divisor %d classified as needing add", d)
		}
	}
}

func TestAddClassExists(t *testing.T) {
	// d = 7 is the textbook class-(i) divisor for 32-bit unsigned division.
	if !Compute(7).NeedsAdd() {
		t.Fatal("expected divisor 7 to need the add fixup")
	}
}

func TestNextReturnsNoAdd(t *testing.T) {
	r := rng.NewSplitMix64(7)
	for i := 0; i < 500; i++ {
		d := r.Uint32()%(1<<28) + 1
		dv := Next(d)
		if dv.NeedsAdd() {
			t.Fatalf("Next(%d) returned class-(i) divisor %d", d, dv.D())
		}
		if dv.D() < d {
			t.Fatalf("Next(%d) went down to %d", d, dv.D())
		}
	}
}

func TestNextOvershoot(t *testing.T) {
	// The paper reports the actual block count is at most 0.0134% above the
	// desired count. Verify the overshoot bound over a broad sample.
	r := rng.NewSplitMix64(99)
	worst := 0.0
	for i := 0; i < 3000; i++ {
		d := r.Uint32()%(1<<30) + 1<<10 // realistic block counts
		dv := Next(d)
		over := float64(dv.D()-d) / float64(d)
		if over > worst {
			worst = over
		}
	}
	if worst > 0.000134 {
		t.Fatalf("worst overshoot %.6f%% exceeds paper's 0.0134%%", worst*100)
	}
}

func TestNextIsIdempotentOnNoAdd(t *testing.T) {
	for _, d := range []uint32{2, 4, 1024, 5, 25} {
		if Compute(d).NeedsAdd() {
			continue
		}
		if got := Next(d).D(); got != d {
			t.Fatalf("Next(%d) = %d for an already-class-(ii) divisor", d, got)
		}
	}
}

func TestNextSize(t *testing.T) {
	actual, dv := NextSize(1_000_000, 512)
	if actual%512 != 0 {
		t.Fatal("actual size not a multiple of the granule")
	}
	if actual < 1_000_000 {
		t.Fatalf("actual %d below desired", actual)
	}
	wantBlocks := uint32((1_000_000 + 511) / 512)
	if dv.D() < wantBlocks {
		t.Fatalf("divider %d below desired blocks %d", dv.D(), wantBlocks)
	}
	if dv.NeedsAdd() {
		t.Fatal("NextSize returned class-(i) divider")
	}
}

func TestNextSizeTinyDesired(t *testing.T) {
	actual, dv := NextSize(1, 64)
	if actual != 64 || dv.D() != 1 {
		t.Fatalf("got actual=%d blocks=%d", actual, dv.D())
	}
}

func TestNextSizePanicsOnZeroGranule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NextSize(100, 0)
}

func TestComputePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compute(0)
}

func TestDividerOne(t *testing.T) {
	dv := Compute(1)
	for _, n := range testValues {
		if dv.Div(n) != n || dv.Mod(n) != 0 {
			t.Fatalf("identity divider wrong for %d", n)
		}
	}
}

func BenchmarkMagicMod(b *testing.B) {
	dv := Next(1000003)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += dv.Mod(uint32(i) * 2654435761)
	}
	_ = sink
}

func BenchmarkHardwareMod(b *testing.B) {
	d := Next(1000003).D()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += (uint32(i) * 2654435761) % d
	}
	_ = sink
}

func BenchmarkPow2Mask(b *testing.B) {
	mask := uint32(1<<20 - 1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += (uint32(i) * 2654435761) & mask
	}
	_ = sink
}
