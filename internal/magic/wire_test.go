package magic

import "testing"

// TestWireMagicsUnique guards the wire-format namespace: every serialized
// filter's leading uint32 must select exactly one decoder, so no two
// formats may share a magic.
func TestWireMagicsUnique(t *testing.T) {
	seen := make(map[uint32]int)
	for i, m := range WireMagics() {
		if prev, dup := seen[m]; dup {
			t.Errorf("wire magic %#08x assigned twice (entries %d and %d)", m, prev, i)
		}
		seen[m] = i
	}
	if len(seen) != 9 {
		t.Errorf("expected 9 wire magics, found %d", len(seen))
	}
}

// TestWireMagicsASCII documents the mnemonic: read high byte to low, every
// magic spells "pfL?" with a distinct family letter (so the hex literal
// 0x70664C42 reads as "pfLB").
func TestWireMagicsASCII(t *testing.T) {
	letters := make(map[byte]bool)
	for _, m := range WireMagics() {
		hi, b1, b2, lo := byte(m>>24), byte(m>>16), byte(m>>8), byte(m)
		if hi != 'p' || b1 != 'f' || b2 != 'L' {
			t.Errorf("magic %#08x does not spell pfL? (got %c%c%c%c)", m, hi, b1, b2, lo)
		}
		if letters[lo] {
			t.Errorf("magic family letter %c reused", lo)
		}
		letters[lo] = true
	}
}
