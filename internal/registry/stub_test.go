package registry_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"perfilter/internal/model"
	"perfilter/internal/registry"
)

// stubFilter is a minimal registry.Filter: an exact map behind the
// batched interface, with a toy length-prefixed wire format.
type stubFilter struct {
	keys map[registry.Key]bool
	bits uint64
}

func newStub(mBits uint64) *stubFilter {
	return &stubFilter{keys: map[registry.Key]bool{}, bits: mBits}
}

func (s *stubFilter) Insert(key registry.Key) error  { s.keys[key] = true; return nil }
func (s *stubFilter) Contains(key registry.Key) bool { return s.keys[key] }
func (s *stubFilter) ContainsBatch(keys []registry.Key, sel []uint32) []uint32 {
	for i, k := range keys {
		if s.keys[k] {
			sel = append(sel, uint32(i))
		}
	}
	return sel
}
func (s *stubFilter) SizeBits() uint64     { return s.bits }
func (s *stubFilter) FPR(n uint64) float64 { return 0 }
func (s *stubFilter) Reset()               { clear(s.keys) }
func (s *stubFilter) String() string       { return "stub" }

// stubWireMagic spells "pfLZ" like the real assignments but is not in
// internal/magic: the stub never ships.
const stubWireMagic = 0x70664C5A

// stubKind sits outside the model's Kind space; the registry accepts any
// non-colliding kind value, so a test family needs no model changes.
const stubKind = model.Kind(0x40)

// TestStubKindRegistration demonstrates the extension contract the
// registry exists for: installing one descriptor — the moral equivalent
// of one register_<family>.go file — makes a new family constructible,
// name-resolvable, magic-dispatchable and enumerable, with no edits to
// any dispatch site. Unregister restores the table for the other tests.
func TestStubKindRegistration(t *testing.T) {
	baseline := len(registry.All())
	registry.Register(registry.Descriptor{
		Kind:      stubKind,
		Name:      "stub",
		Aliases:   []string{"stub-exact"},
		WireMagic: stubWireMagic,
		Default:   model.Config{Kind: stubKind},
		New: func(mc model.Config, mBits uint64) (registry.Filter, error) {
			return newStub(mBits), nil
		},
		Decode: func(data []byte) (registry.Filter, error) {
			if len(data) < 8 {
				return nil, fmt.Errorf("stub: truncated")
			}
			n := binary.LittleEndian.Uint32(data[4:])
			if uint64(len(data)) < 8+4*uint64(n) {
				return nil, fmt.Errorf("stub: truncated key block")
			}
			f := newStub(uint64(n) * 32)
			for i := uint32(0); i < n; i++ {
				f.keys[binary.LittleEndian.Uint32(data[8+4*i:])] = true
			}
			return f, nil
		},
		Marshal: func(f registry.Filter) ([]byte, error) {
			s := f.(*stubFilter)
			out := binary.LittleEndian.AppendUint32(nil, stubWireMagic)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(s.keys)))
			for k := range s.keys {
				out = binary.LittleEndian.AppendUint32(out, k)
			}
			return out, nil
		},
		Owns: func(f registry.Filter) bool {
			_, ok := f.(*stubFilter)
			return ok
		},
		Mutable: true,
	})
	defer func() {
		registry.Unregister("stub")
		if got := len(registry.All()); got != baseline {
			t.Fatalf("Unregister left %d descriptors, want %d", got, baseline)
		}
		if registry.ByName("stub") != nil || registry.ByMagic(stubWireMagic) != nil ||
			registry.Lookup(stubKind) != nil {
			t.Fatal("stub descriptor still resolvable after Unregister")
		}
	}()

	d := registry.Lookup(stubKind)
	if !d.Constructible() {
		t.Fatal("stub kind not constructible after Register")
	}
	if registry.ByName("stub") != d || registry.ByName("stub-exact") != d {
		t.Fatal("stub name/alias do not resolve")
	}
	if registry.ByMagic(stubWireMagic) != d {
		t.Fatal("stub wire magic does not dispatch")
	}
	found := false
	for _, name := range registry.KindNames() {
		if name == "stub" {
			found = true
		}
	}
	if !found {
		t.Fatalf("KindNames %v does not include the stub", registry.KindNames())
	}

	f, err := d.New(d.Default, 1024)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(100)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	data, err := d.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := registry.ByMagic(stubWireMagic).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Owns(g) {
		t.Fatalf("decoded stub is %T", g)
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatalf("decoded stub lost key %d", k)
		}
	}
}
