// Conformance suite for the kind-descriptor registry: importing the root
// package populates the table (each family's register_<family>.go runs at
// package initialization), and these tests assert the registry, the
// model's kind-spec table and the wire-magic assignments all agree — the
// invariants a new family must satisfy by adding exactly one descriptor
// file plus one model spec file.
package registry_test

import (
	"bytes"
	"fmt"
	"testing"

	"perfilter"
	"perfilter/internal/magic"
	"perfilter/internal/model"
	"perfilter/internal/registry"
)

// testKeys returns n deterministic keys (xorshift32).
func testKeys(n int) []registry.Key {
	keys := make([]registry.Key, n)
	s := uint32(0x243F6A88)
	for i := range keys {
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		keys[i] = s
	}
	return keys
}

// TestEveryModelKindHasDescriptor asserts the registry covers the model's
// whole Kind space with constructible descriptors whose names match
// Kind.String() — NumKinds cannot drift from the registered families.
func TestEveryModelKindHasDescriptor(t *testing.T) {
	for k := model.Kind(0); int(k) < model.NumKinds(); k++ {
		d := registry.Lookup(k)
		if !d.Constructible() {
			t.Fatalf("kind %d (%s) has no constructible descriptor", k, k)
		}
		if d.Name != k.String() {
			t.Errorf("kind %s: descriptor name %q != Kind.String() %q", k, d.Name, k.String())
		}
		if d.Default.Kind != k {
			t.Errorf("kind %s: default config declares kind %s", k, d.Default.Kind)
		}
		if err := d.Default.Validate(); err != nil {
			t.Errorf("kind %s: default config invalid: %v", k, err)
		}
		if d.WireMagic == 0 {
			t.Errorf("kind %s: no wire magic", k)
		}
		if registry.ByName(d.Name) != d {
			t.Errorf("kind %s: ByName(%q) does not resolve to its descriptor", k, d.Name)
		}
	}
}

// TestDescriptorRoundTrip builds each constructible family from its
// default configuration, inserts keys, serializes through the
// descriptor's Marshal and decodes through the magic-keyed Decode,
// asserting probe-for-probe equivalence — the registry's replacement for
// serialize.go's former per-kind dispatch must reproduce it exactly.
func TestDescriptorRoundTrip(t *testing.T) {
	keys := testKeys(500)
	probes := testKeys(4000)
	for k := model.Kind(0); int(k) < model.NumKinds(); k++ {
		d := registry.Lookup(k)
		t.Run(d.Name, func(t *testing.T) {
			f, err := d.New(d.Default, 1<<16)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for _, key := range keys {
				if err := f.Insert(key); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			if d.Sealable {
				// The Sealable flag promises the build-once contract;
				// honour it before serializing a solved table.
				sealer, ok := f.(interface{ Seal() error })
				if !ok {
					t.Fatalf("Sealable descriptor built %T without Seal", f)
				}
				if err := sealer.Seal(); err != nil {
					t.Fatalf("Seal: %v", err)
				}
			}
			data, err := d.Marshal(f)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			dd := registry.ByMagic(d.WireMagic)
			if dd != d {
				t.Fatalf("ByMagic(%#08x) resolves to %v, want %s", d.WireMagic, dd, d.Name)
			}
			g, err := dd.Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !d.Owns(g) {
				t.Fatalf("decoded %T not owned by descriptor %s", g, d.Name)
			}
			want := f.ContainsBatch(probes, nil)
			got := g.ContainsBatch(probes, nil)
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("round-trip probe mismatch: %d vs %d hits", len(want), len(got))
			}
			data2, err := d.Marshal(g)
			if err != nil {
				t.Fatalf("re-Marshal: %v", err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatalf("re-encoded payload differs (%d vs %d bytes)", len(data), len(data2))
			}
		})
	}
}

// TestCostEntryPresence asserts the model's spec table prices every
// registered family: a descriptor without a cost entry would silently
// fall out of every sweep.
func TestCostEntryPresence(t *testing.T) {
	m := model.SKX()
	for k := model.Kind(0); int(k) < model.NumKinds(); k++ {
		d := registry.Lookup(k)
		if tl := m.Cycles(d.Default, 1<<20, true); tl <= 0 {
			t.Errorf("kind %s: cost model returns %v cycles", k, tl)
		}
		if cfgs := model.ConfigsFor([]model.Kind{k}, false); len(cfgs) == 0 {
			t.Errorf("kind %s: spec enumerates no configurations", k)
		}
	}
}

// TestEnumerableKindsParity asserts the advisor's eligibility gates and
// the registry agree: every kind a sweep can pick has a constructible
// descriptor, and the widest hints enumerate exactly the registered
// model-kind space.
func TestEnumerableKindsParity(t *testing.T) {
	for _, h := range []model.EnumHints{
		{},
		{FullSpace: true},
		{AllowExact: true},
		{ReadMostly: true},
		{FullSpace: true, AllowExact: true, ReadMostly: true},
	} {
		for _, k := range model.EnumerableKinds(h) {
			if !registry.Lookup(k).Constructible() {
				t.Errorf("hints %+v enumerate kind %s with no descriptor", h, k)
			}
		}
	}
	full := model.EnumerableKinds(model.EnumHints{FullSpace: true, AllowExact: true, ReadMostly: true})
	if len(full) != model.NumKinds() {
		t.Errorf("widest hints enumerate %d kinds, want %d", len(full), model.NumKinds())
	}
	names := registry.KindNames()
	if len(names) != model.NumKinds() {
		t.Errorf("KindNames lists %d kinds, want %d: %v", len(names), model.NumKinds(), names)
	}
	for i, k := range full {
		if names[i] != k.String() {
			t.Errorf("KindNames[%d] = %q, want %q", i, names[i], k.String())
		}
	}
}

// TestMutabilityParity asserts the registry's capability flags agree with
// the model's spec table (an immutable family is exactly one carrying a
// rebuild surcharge) and with the built filters' actual capabilities.
func TestMutabilityParity(t *testing.T) {
	for k := model.Kind(0); int(k) < model.NumKinds(); k++ {
		d := registry.Lookup(k)
		if d.Mutable != model.KindMutable(k) {
			t.Errorf("kind %s: descriptor Mutable=%v, model KindMutable=%v",
				k, d.Mutable, model.KindMutable(k))
		}
		if d.Sealable && d.Mutable {
			t.Errorf("kind %s: sealable yet mutable", k)
		}
		f, err := d.New(d.Default, 1<<16)
		if err != nil {
			t.Fatalf("kind %s: New: %v", k, err)
		}
		_, seals := f.(interface{ Seal() error })
		if seals != d.Sealable {
			t.Errorf("kind %s: Sealable=%v but %T implements Seal=%v", k, d.Sealable, f, seals)
		}
	}
}

// TestWireMagicParity asserts the registry's magics are exactly the
// centrally assigned set in internal/magic — no descriptor invents one.
func TestWireMagicParity(t *testing.T) {
	assigned := map[uint32]bool{}
	for _, m := range magic.WireMagics() {
		assigned[m] = true
	}
	regMagics := registry.WireMagics()
	if len(regMagics) != len(assigned) {
		t.Errorf("registry has %d wire magics, internal/magic assigns %d", len(regMagics), len(assigned))
	}
	for _, m := range regMagics {
		if !assigned[m] {
			t.Errorf("registry magic %#08x not assigned in internal/magic", m)
		}
	}
}

// TestPublicKindAPI asserts the root package's registry-derived helpers:
// name resolution (including the "" alias for the default family), the
// enumerated vocabulary, and default configurations that validate.
func TestPublicKindAPI(t *testing.T) {
	if k, ok := perfilter.KindByName(""); !ok || k != perfilter.BlockedBloom {
		t.Errorf(`KindByName("") = %v, %v; want BlockedBloom`, k, ok)
	}
	for _, name := range perfilter.KindNames() {
		k, ok := perfilter.KindByName(name)
		if !ok {
			t.Errorf("KindByName(%q) does not resolve", name)
			continue
		}
		if k.String() != name {
			t.Errorf("KindByName(%q) = kind %q", name, k.String())
		}
		if err := perfilter.DefaultConfig(k).Validate(); err != nil {
			t.Errorf("DefaultConfig(%s) invalid: %v", name, err)
		}
	}
	if _, ok := perfilter.KindByName("quotient"); ok {
		t.Error(`KindByName("quotient") resolved`)
	}
	// Wire-only formats are not constructible kinds.
	for _, name := range []string{"counting", "scalable", "sharded", "adaptive"} {
		if _, ok := perfilter.KindByName(name); ok {
			t.Errorf("wire-only format %q resolved to a constructible kind", name)
		}
	}
}
