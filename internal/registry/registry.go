// Package registry is the kind-descriptor table behind every per-kind
// dispatch in the filter stack. Each filter family registers one immutable
// Descriptor — its canonical name and aliases, wire magic, constructors,
// decoder and capability flags — from an explicit register_<family>.go
// file in the root package (a plain package-level `var _ = Register(...)`
// expression, no init() functions, no blank-import side effects). The
// construction, serialization, sharding and adaptive layers then resolve
// kinds through lookups here instead of hand-written switches, so adding a
// family is one descriptor file plus a model spec (internal/model's
// kind-spec table carries the analytic side: cost entry, enumeration and
// its EnumHints gate, keyed by the same model.Kind — the registry
// conformance suite asserts the two tables agree).
//
// The package defines its own Filter interface with exactly the root
// package's method set (Key and SelVec are aliases of the same core
// types), so descriptors constructed in the root package convert
// implicitly in both directions and no import cycle arises: registry
// imports only core and model; the root package imports registry.
package registry

import (
	"fmt"
	"sort"

	"perfilter/internal/core"
	"perfilter/internal/model"
)

// Key is the key type, an alias of the root package's.
type Key = core.Key

// Filter restates the root package's Filter interface method-for-method;
// any perfilter.Filter satisfies it and vice versa.
type Filter interface {
	Insert(key Key) error
	Contains(key Key) bool
	ContainsBatch(keys []Key, sel core.SelVec) core.SelVec
	SizeBits() uint64
	FPR(n uint64) float64
	Reset()
	String() string
}

// NoKind marks a wire-only descriptor: a serialization format (counting,
// scalable, the sharded and adaptive envelopes) that decodes through the
// registry but is not part of the model's Kind space and cannot be built
// through New(Config, mBits).
const NoKind = model.Kind(0xFF)

// Descriptor is one family's registration. All fields are set once at
// registration and never mutated.
type Descriptor struct {
	// Kind is the model-side identity, or NoKind for wire-only formats.
	// Cost modeling, sweep enumeration and the EnumHints gate for this
	// kind live in internal/model's spec table under the same value.
	Kind model.Kind
	// Name is the canonical kind string (matches Kind.String() for
	// constructible kinds).
	Name string
	// Aliases are additional accepted names (e.g. "" selects the default
	// family on the server's create path).
	Aliases []string
	// WireMagic is the first little-endian uint32 of the family's
	// serialized form (assigned centrally in internal/magic).
	WireMagic uint32
	// Default is the family's headline default configuration — what the
	// server's create path uses when the request names only the kind.
	Default model.Config

	// New builds a filter of (at least) mBits; nil for wire-only formats.
	// mc.Kind is always Kind.
	New func(mc model.Config, mBits uint64) (Filter, error)
	// NewShard, when non-nil, overrides New for per-shard construction
	// under the sharded wrapper (the exact set interprets a standalone
	// mBits below 2^16 as a capacity hint; shards must always use the
	// bits regime).
	NewShard func(mc model.Config, perShardBits uint64) (Filter, error)
	// Decode reverses the family's MarshalBinary; Unmarshal dispatches to
	// it by WireMagic.
	Decode func(data []byte) (Filter, error)
	// Marshal serializes a filter owned by this family (Owns(f) == true).
	Marshal func(f Filter) ([]byte, error)
	// Owns reports whether f is this family's concrete filter type.
	Owns func(f Filter) bool

	// Mutable reports whether the family absorbs inserts in place. An
	// immutable (build-once) family amortizes rebuilds into its advised
	// overhead, and the adaptive control loop falls back to a mutable
	// family when writes resume on it.
	Mutable bool
	// Sealable marks build-once families whose shards implement
	// Seal() error: the sharded wrapper solves staged shards after a
	// rotation's fill completes.
	Sealable bool
}

// Constructible reports whether the descriptor can build filters (it is a
// filter family, not just a wire format).
func (d *Descriptor) Constructible() bool { return d != nil && d.New != nil }

var (
	descriptors []*Descriptor
	byKind      = map[model.Kind]*Descriptor{}
	byMagic     = map[uint32]*Descriptor{}
	byName      = map[string]*Descriptor{}
)

// Register installs a descriptor. It panics on a duplicate name, alias,
// kind or wire magic, or on a descriptor missing its identity — each is a
// programming error any test run must surface immediately. It returns
// struct{}{} so families register with a package-level
// `var _ = registry.Register(...)` expression.
func Register(d Descriptor) struct{} {
	if d.Name == "" {
		panic("registry: descriptor without a name")
	}
	if d.WireMagic != 0 && byMagic[d.WireMagic] != nil {
		panic(fmt.Sprintf("registry: duplicate wire magic %#08x (%s vs %s)",
			d.WireMagic, d.Name, byMagic[d.WireMagic].Name))
	}
	if d.Kind != NoKind && byKind[d.Kind] != nil {
		panic(fmt.Sprintf("registry: duplicate kind %s (%s vs %s)",
			d.Kind, d.Name, byKind[d.Kind].Name))
	}
	if byName[d.Name] != nil {
		panic(fmt.Sprintf("registry: duplicate name %q", d.Name))
	}
	for _, a := range d.Aliases {
		if byName[a] != nil {
			panic(fmt.Sprintf("registry: duplicate alias %q (%s vs %s)",
				a, d.Name, byName[a].Name))
		}
	}
	c := d
	descriptors = append(descriptors, &c)
	if c.Kind != NoKind {
		byKind[c.Kind] = &c
	}
	if c.WireMagic != 0 {
		byMagic[c.WireMagic] = &c
	}
	byName[c.Name] = &c
	for _, a := range c.Aliases {
		byName[a] = &c
	}
	return struct{}{}
}

// Unregister removes a descriptor by canonical name. It exists so tests
// can install a temporary stub family and restore the table; production
// code never unregisters.
func Unregister(name string) {
	d := byName[name]
	if d == nil || d.Name != name {
		return
	}
	for i, e := range descriptors {
		if e == d {
			descriptors = append(descriptors[:i], descriptors[i+1:]...)
			break
		}
	}
	if d.Kind != NoKind && byKind[d.Kind] == d {
		delete(byKind, d.Kind)
	}
	if byMagic[d.WireMagic] == d {
		delete(byMagic, d.WireMagic)
	}
	delete(byName, d.Name)
	for _, a := range d.Aliases {
		if byName[a] == d {
			delete(byName, a)
		}
	}
}

// Lookup returns the descriptor for a constructible kind, or nil.
func Lookup(k model.Kind) *Descriptor { return byKind[k] }

// ByMagic returns the descriptor owning a wire magic, or nil.
func ByMagic(m uint32) *Descriptor { return byMagic[m] }

// ByName resolves a canonical name or alias, or nil.
func ByName(name string) *Descriptor { return byName[name] }

// Owner returns the descriptor whose concrete filter type f is, or nil.
// Concrete types are disjoint across families, so at most one matches.
func Owner(f Filter) *Descriptor {
	for _, d := range descriptors {
		if d.Owns != nil && d.Owns(f) {
			return d
		}
	}
	return nil
}

// All returns every descriptor: constructible families first in Kind
// order, then wire-only formats by name. The slice is fresh; the
// descriptors are shared.
func All() []*Descriptor {
	out := make([]*Descriptor, len(descriptors))
	copy(out, descriptors)
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Constructible(), out[j].Constructible()
		if ci != cj {
			return ci
		}
		if ci && out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// KindNames returns the constructible family names in Kind order — the
// vocabulary the server and the CLIs accept and enumerate in errors.
func KindNames() []string {
	var names []string
	for _, d := range All() {
		if d.Constructible() {
			names = append(names, d.Name)
		}
	}
	return names
}

// WireMagics returns every registered wire magic (unordered use only).
func WireMagics() []uint32 {
	out := make([]uint32, 0, len(byMagic))
	for m := range byMagic {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
