package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"perfilter/internal/rng"
)

// newQuiet builds a server whose structured log output is discarded, so
// control-plane events exercised by tests do not spam the test log.
func newQuiet(opts Options) *Server {
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return New(opts)
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newQuiet(Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON response: %v", method, url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %v)", method, url, resp.StatusCode, wantStatus, out)
	}
	return out
}

func leBytes(keys []uint32) []byte {
	b := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(b[4*i:], k)
	}
	return b
}

func postBinary(t *testing.T, url string, keys []uint32) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(leBytes(keys)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestLifecycleBinaryRoundTrip(t *testing.T) {
	ts := newTestServer(t)

	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "events", Kind: "bloom", MBits: 1 << 20, Shards: 4,
	}, http.StatusCreated)

	// Insert 10k keys through the binary plane.
	r := rng.NewMT19937(11)
	keys := make([]uint32, 10_000)
	for i := range keys {
		keys[i] = r.Uint32() | 1
	}
	resp := postBinary(t, ts.URL+"/v1/filters/events/insert", keys)
	var ins struct {
		Inserted int    `json:"inserted"`
		Count    uint64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ins); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ins.Inserted != len(keys) || ins.Count != uint64(len(keys)) {
		t.Fatalf("insert: status %d, %+v", resp.StatusCode, ins)
	}

	// Probe a batch mixing inserted and (almost certainly) absent keys.
	probe := make([]uint32, 4096)
	for i := range probe {
		if i%2 == 0 {
			probe[i] = keys[i%len(keys)]
		} else {
			probe[i] = r.Uint32() &^ 1
		}
	}
	resp = postBinary(t, ts.URL+"/v1/filters/events/probe", probe)
	raw, sel := make([]byte, 0), []uint32(nil)
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	raw = buf.Bytes()
	if resp.StatusCode != http.StatusOK || len(raw)%4 != 0 {
		t.Fatalf("probe: status %d, %d bytes", resp.StatusCode, len(raw))
	}
	for i := 0; i+4 <= len(raw); i += 4 {
		sel = append(sel, binary.LittleEndian.Uint32(raw[i:]))
	}
	// Every inserted position must be selected (no false negatives), and
	// the vector must be ascending.
	selSet := make(map[uint32]bool, len(sel))
	for i, p := range sel {
		selSet[p] = true
		if i > 0 && sel[i] <= sel[i-1] {
			t.Fatal("selection vector not ascending")
		}
	}
	falsePos := 0
	for i := range probe {
		if i%2 == 0 && !selSet[uint32(i)] {
			t.Fatalf("false negative at probe position %d", i)
		}
		if i%2 == 1 && selSet[uint32(i)] {
			falsePos++
		}
	}
	// 1 MiB / 10k keys ≈ 105 bits/key: false positives should be rare.
	if falsePos > len(probe)/10 {
		t.Fatalf("%d false positives in %d negative probes", falsePos, len(probe)/2)
	}

	// Stats reflect the inserts.
	st := doJSON(t, "GET", ts.URL+"/v1/filters/events", nil, http.StatusOK)
	info := st["filter"].(map[string]any)
	if info["count"].(float64) != float64(len(keys)) || info["shards"].(float64) != 4 {
		t.Fatalf("stats: %v", info)
	}

	// Rotate to a fresh generation: keys are gone, generation bumps.
	rot := doJSON(t, "POST", ts.URL+"/v1/filters/events/rotate", map[string]any{}, http.StatusOK)
	if rot["generation"].(float64) != 1 || rot["count"].(float64) != 0 {
		t.Fatalf("rotate: %v", rot)
	}
	out := doJSON(t, "POST", ts.URL+"/v1/filters/events/probe?format=json",
		map[string]any{"keys": probe[:64]}, http.StatusOK)
	if pos, ok := out["positions"].([]any); ok && len(pos) > 3 {
		t.Fatalf("after rotation, %d of 64 probes still hit", len(pos))
	}

	// Delete, then 404.
	doJSON(t, "DELETE", ts.URL+"/v1/filters/events", nil, http.StatusOK)
	doJSON(t, "GET", ts.URL+"/v1/filters/events", nil, http.StatusNotFound)
}

func TestCreateViaAdvise(t *testing.T) {
	ts := newTestServer(t)
	out := doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name:   "advised",
		Advise: &AdviseRequest{N: 100_000, Tw: 500, BitsPerKey: 16},
	}, http.StatusCreated)
	if out["size_bits"].(float64) <= 0 || out["shards"].(float64) < 1 {
		t.Fatalf("advised create: %v", out)
	}
	list := doJSON(t, "GET", ts.URL+"/v1/filters", nil, http.StatusOK)
	if n := len(list["filters"].([]any)); n != 1 {
		t.Fatalf("list: %d filters", n)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)

	// Oversized filters are refused before any allocation happens.
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "huge", MBits: 1 << 40}, http.StatusBadRequest)

	// Bad names and configs.
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "bad name!", MBits: 1 << 20}, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "x"}, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "x", Kind: "tardis", MBits: 1 << 20}, http.StatusBadRequest)

	// Duplicate create conflicts.
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "x", Kind: "exact", MBits: 1 << 20}, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "x", Kind: "exact", MBits: 1 << 20}, http.StatusConflict)

	// Rotation respects the size cap too.
	doJSON(t, "POST", ts.URL+"/v1/filters/x/rotate", map[string]any{"mbits": uint64(1) << 40}, http.StatusBadRequest)

	// Misaligned binary body.
	resp, err := http.Post(ts.URL+"/v1/filters/x/insert", "application/octet-stream", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misaligned insert: status %d", resp.StatusCode)
	}

	// Unknown filter on every data/control endpoint.
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/filters/nope/insert"},
		{"POST", "/v1/filters/nope/probe"},
		{"POST", "/v1/filters/nope/rotate"},
		{"DELETE", "/v1/filters/nope"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, bytes.NewReader(nil))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

func TestCuckooFullReportsProgress(t *testing.T) {
	ts := newTestServer(t)
	// A tiny cuckoo filter saturates quickly; the server must report how
	// many keys landed before ErrFull.
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "tiny", Kind: "cuckoo", MBits: 1 << 12, Shards: 1,
	}, http.StatusCreated)
	r := rng.NewMT19937(5)
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	resp := postBinary(t, ts.URL+"/v1/filters/tiny/insert", keys)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("saturating insert: status %d, want 507", resp.StatusCode)
	}
	var out struct {
		Inserted int    `json:"inserted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Inserted == 0 || out.Error == "" {
		t.Fatalf("saturating insert: %+v", out)
	}
}

// TestConcurrentClients drives inserts and probes against one filter from
// many goroutines; run with -race to check the full handler stack.
func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "shared", Kind: "bloom", MBits: 1 << 22, Shards: 8,
	}, http.StatusCreated)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.NewMT19937(uint32(300 + c))
			keys := make([]uint32, 2048)
			for rep := 0; rep < 5; rep++ {
				for i := range keys {
					keys[i] = r.Uint32()
				}
				in, err := http.Post(ts.URL+"/v1/filters/shared/insert",
					"application/octet-stream", bytes.NewReader(leBytes(keys)))
				if err != nil {
					errs <- err
					return
				}
				in.Body.Close()
				if in.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: insert status %d", c, in.StatusCode)
					return
				}
				pr, err := http.Post(ts.URL+"/v1/filters/shared/probe",
					"application/octet-stream", bytes.NewReader(leBytes(keys)))
				if err != nil {
					errs <- err
					return
				}
				buf := new(bytes.Buffer)
				buf.ReadFrom(pr.Body)
				pr.Body.Close()
				if pr.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: probe status %d", c, pr.StatusCode)
					return
				}
				// Just-inserted keys must all be selected.
				if buf.Len() != 4*len(keys) {
					errs <- fmt.Errorf("client %d: %d of %d own keys selected", c, buf.Len()/4, len(keys))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTotalMemoryBudget(t *testing.T) {
	// Total budget fits two 1 Mbit filters but not three. The bloom kind
	// builds at (almost exactly) the requested size; the budget accounts
	// the built size, so kinds that round up (exact: 2x) reserve more.
	ts := httptest.NewServer(newQuiet(Options{MaxTotalBits: 2 << 20}).Handler())
	defer ts.Close()
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "a", Kind: "bloom", MBits: 1 << 20}, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "b", Kind: "bloom", MBits: 1 << 20}, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "c", Kind: "bloom", MBits: 1 << 20}, http.StatusInsufficientStorage)
	// Growth by rotation is budgeted too.
	doJSON(t, "POST", ts.URL+"/v1/filters/a/rotate", map[string]any{"mbits": uint64(2) << 20}, http.StatusInsufficientStorage)
	// Freeing a filter frees its budget.
	doJSON(t, "DELETE", ts.URL+"/v1/filters/b", nil, http.StatusOK)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "c", Kind: "bloom", MBits: 1 << 20}, http.StatusCreated)
}

// TestSnapshotRestartEquivalence is the durability acceptance test: a
// server with a data dir snapshots its filters, a second server restores
// from the same dir, and every probe answers byte-identically — the
// "kill and restart filter-server" scenario, minus the process boundary.
func TestSnapshotRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	ts := httptest.NewServer(newQuiet(Options{DataDir: dir}).Handler())
	defer ts.Close()

	nKeys := 100_000
	if testing.Short() {
		nKeys = 20_000
	}
	specs := []CreateRequest{
		{Name: "bloom8", Kind: "bloom", MBits: uint64(nKeys) * 16, Shards: 4},
		{Name: "classic", Kind: "classic", MBits: uint64(nKeys) * 16, Shards: 2},
		{Name: "cuckoo", Kind: "cuckoo", MBits: uint64(nKeys) * 24, Shards: 4},
		{Name: "exact", Kind: "exact", MBits: uint64(nKeys) * 128, Shards: 2},
	}
	r := rng.NewMT19937(4242)
	keys := make([]uint32, nKeys)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	probe := make([]uint32, nKeys)
	for i := range probe {
		if i%2 == 0 {
			probe[i] = keys[i]
		} else {
			probe[i] = r.Uint32()
		}
	}
	preSel := map[string][]byte{}
	preInfo := map[string]map[string]any{}
	for _, spec := range specs {
		doJSON(t, "POST", ts.URL+"/v1/filters", spec, http.StatusCreated)
		// A rotation before the fill gives the snapshot a non-zero
		// generation to carry across the restart.
		doJSON(t, "POST", ts.URL+"/v1/filters/"+spec.Name+"/rotate", nil, http.StatusOK)
		resp := postBinary(t, ts.URL+"/v1/filters/"+spec.Name+"/insert", keys)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: insert status %d", spec.Name, resp.StatusCode)
		}
		resp = postBinary(t, ts.URL+"/v1/filters/"+spec.Name+"/probe", probe)
		sel := new(bytes.Buffer)
		sel.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: probe status %d", spec.Name, resp.StatusCode)
		}
		preSel[spec.Name] = sel.Bytes()
		preInfo[spec.Name] = doJSON(t, "GET", ts.URL+"/v1/filters/"+spec.Name, nil, http.StatusOK)
		// Snapshot on demand via the endpoint.
		out := doJSON(t, "POST", ts.URL+"/v1/filters/"+spec.Name+"/snapshot", nil, http.StatusOK)
		if out["bytes"].(float64) <= 0 {
			t.Fatalf("%s: snapshot wrote %v bytes", spec.Name, out["bytes"])
		}
	}

	// "Restart": a brand-new server restores from the same directory.
	reg2 := newQuiet(Options{DataDir: dir})
	loaded, err := reg2.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if loaded != len(specs) {
		t.Fatalf("restored %d of %d filters", loaded, len(specs))
	}
	ts2 := httptest.NewServer(reg2.Handler())
	defer ts2.Close()
	for _, spec := range specs {
		resp := postBinary(t, ts2.URL+"/v1/filters/"+spec.Name+"/probe", probe)
		sel := new(bytes.Buffer)
		sel.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: post-restart probe status %d", spec.Name, resp.StatusCode)
		}
		if !bytes.Equal(sel.Bytes(), preSel[spec.Name]) {
			t.Fatalf("%s: probe selection changed across restart (%d vs %d bytes)",
				spec.Name, sel.Len(), len(preSel[spec.Name]))
		}
		info := doJSON(t, "GET", ts2.URL+"/v1/filters/"+spec.Name, nil, http.StatusOK)
		pre := preInfo[spec.Name]["filter"].(map[string]any)
		post := info["filter"].(map[string]any)
		for _, field := range []string{"config", "kind", "size_bits", "shards", "count", "generation"} {
			if pre[field] != post[field] {
				t.Fatalf("%s: %s changed across restart: %v vs %v", spec.Name, field, pre[field], post[field])
			}
		}
	}

	// Restored filters count against the budget: a tiny-budget server
	// must refuse to restore what it cannot hold.
	regTiny := newQuiet(Options{DataDir: dir, MaxTotalBits: 1})
	loaded, err = regTiny.LoadAll()
	if loaded != 0 || err == nil {
		t.Fatalf("tiny-budget restore: loaded %d, err %v", loaded, err)
	}

	// A deleted filter's snapshot goes with it: no resurrection.
	doJSON(t, "DELETE", ts2.URL+"/v1/filters/exact", nil, http.StatusOK)
	reg3 := newQuiet(Options{DataDir: dir})
	if loaded, _ = reg3.LoadAll(); loaded != len(specs)-1 {
		t.Fatalf("restored %d filters after delete, want %d", loaded, len(specs)-1)
	}
}

// TestAdviceAndMigrateEndpoints drives the adaptive control plane: the
// advice endpoint reports the tracked workload and the re-advised
// optimum, and the migrate endpoint applies it — including a kind change
// — losslessly and with the memory budget re-accounted.
func TestAdviceAndMigrateEndpoints(t *testing.T) {
	ts := newTestServer(t)
	// A cuckoo filter at a tw where bloom is optimal for the workload it
	// will actually see: the advisor should want to switch kinds.
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "adapt", Kind: "cuckoo", MBits: 1 << 21, Shards: 2, Tw: 100,
	}, http.StatusCreated)

	r := rng.NewMT19937(77)
	keys := make([]uint32, 50_000)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	resp := postBinary(t, ts.URL+"/v1/filters/adapt/insert", keys)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	resp = postBinary(t, ts.URL+"/v1/filters/adapt/probe", keys[:4096])
	resp.Body.Close()

	adv := doJSON(t, "GET", ts.URL+"/v1/filters/adapt/advice", nil, http.StatusOK)
	if adv["n"].(float64) != float64(len(keys)) {
		t.Fatalf("advice n = %v, want %d", adv["n"], len(keys))
	}
	if adv["tw"].(float64) != 100 {
		t.Fatalf("advice tw = %v, want 100", adv["tw"])
	}
	cur := adv["current"].(map[string]any)
	best := adv["best"].(map[string]any)
	if cur["kind"] != "cuckoo" {
		t.Fatalf("current kind %v", cur["kind"])
	}
	if best["kind"] != "bloom" || adv["kind_change"] != true {
		t.Fatalf("at tw=100 the advisor should recommend bloom, got %v (kind_change %v)",
			best["kind"], adv["kind_change"])
	}
	if cur["overhead"].(float64) <= best["overhead"].(float64) {
		t.Fatalf("recommended overhead %v not below current %v", best["overhead"], cur["overhead"])
	}
	// The tw override explores a different regime without mutating state.
	explore := doJSON(t, "GET", ts.URL+"/v1/filters/adapt/advice?tw=100000", nil, http.StatusOK)
	if explore["tw"].(float64) != 100000 {
		t.Fatalf("override tw = %v", explore["tw"])
	}
	doJSON(t, "GET", ts.URL+"/v1/filters/adapt/advice?tw=bogus", nil, http.StatusBadRequest)

	// Migrate on recommendation (forced, in case hysteresis holds).
	out := doJSON(t, "POST", ts.URL+"/v1/filters/adapt/migrate", map[string]any{"force": true}, http.StatusOK)
	if out["migrated"] != true {
		t.Fatalf("migrate: %v", out)
	}
	info := doJSON(t, "GET", ts.URL+"/v1/filters/adapt", nil, http.StatusOK)
	if kind := info["filter"].(map[string]any)["kind"]; kind != "bloom" {
		t.Fatalf("post-migration kind %v, want bloom", kind)
	}
	// Zero false negatives across the kind change.
	resp = postBinary(t, ts.URL+"/v1/filters/adapt/probe", keys)
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if buf.Len() != 4*len(keys) {
		t.Fatalf("%d of %d keys selected after migration", buf.Len()/4, len(keys))
	}
	// A second recommendation-mode migrate is a no-op: already optimal.
	out = doJSON(t, "POST", ts.URL+"/v1/filters/adapt/migrate", nil, http.StatusOK)
	if out["migrated"] != false {
		t.Fatalf("repeat migrate: %v", out)
	}

	// Explicit-target mode with an oversized request hits the cap.
	doJSON(t, "POST", ts.URL+"/v1/filters/adapt/migrate",
		MigrateRequest{Kind: "bloom", MBits: 1 << 40}, http.StatusBadRequest)
	// Explicit resize within budget works and preserves contents.
	out = doJSON(t, "POST", ts.URL+"/v1/filters/adapt/migrate",
		MigrateRequest{MBits: 1 << 22}, http.StatusOK)
	if out["migrated"] != true {
		t.Fatalf("resize migrate: %v", out)
	}
	resp = postBinary(t, ts.URL+"/v1/filters/adapt/probe", keys)
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if buf.Len() != 4*len(keys) {
		t.Fatalf("%d of %d keys selected after resize", buf.Len()/4, len(keys))
	}
	doJSON(t, "GET", ts.URL+"/v1/filters/nope/advice", nil, http.StatusNotFound)
	doJSON(t, "POST", ts.URL+"/v1/filters/nope/migrate", nil, http.StatusNotFound)
}

// TestMigrateBudgetAccounting pins that migrations reserve against the
// total memory budget like rotations do.
func TestMigrateBudgetAccounting(t *testing.T) {
	ts := httptest.NewServer(newQuiet(Options{MaxTotalBits: 3 << 20}).Handler())
	defer ts.Close()
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "a", Kind: "bloom", MBits: 1 << 20}, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "b", Kind: "bloom", MBits: 1 << 20}, http.StatusCreated)
	// Growing a past the remaining budget must be refused...
	doJSON(t, "POST", ts.URL+"/v1/filters/a/migrate",
		MigrateRequest{MBits: 3 << 20}, http.StatusInsufficientStorage)
	// ...while a fitting growth is accepted and accounted.
	doJSON(t, "POST", ts.URL+"/v1/filters/a/migrate",
		MigrateRequest{MBits: 2 << 20}, http.StatusOK)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "c", Kind: "bloom", MBits: 1 << 20}, http.StatusInsufficientStorage)
	// Shrinking a returns budget.
	doJSON(t, "POST", ts.URL+"/v1/filters/a/migrate",
		MigrateRequest{MBits: 1 << 20}, http.StatusOK)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{Name: "c", Kind: "bloom", MBits: 1 << 20}, http.StatusCreated)
}

// TestAutotuneOnce drives the server-side control loop: a filter whose
// tracked workload has outgrown its configuration is migrated by one
// autotune sweep, keys intact.
func TestAutotuneOnce(t *testing.T) {
	reg := newQuiet(Options{})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	// Sized and advised for 4k keys; it will see 200k.
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name:   "grower",
		Advise: &AdviseRequest{N: 4096, Tw: 100, BitsPerKey: 16},
	}, http.StatusCreated)
	r := rng.NewMT19937(99)
	keys := make([]uint32, 200_000)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	// Insert in chunks; tolerate 507s (the server does not auto-grow on
	// the insert path — that is exactly what autotune is for).
	for lo := 0; lo < len(keys); lo += 20_000 {
		resp := postBinary(t, ts.URL+"/v1/filters/grower/insert", keys[lo:lo+20_000])
		resp.Body.Close()
		if resp.StatusCode == http.StatusInsufficientStorage {
			results := reg.AutotuneOnce()
			if len(results) != 1 {
				t.Fatalf("autotune results: %+v", results)
			}
			if results[0].Err != "" {
				t.Fatalf("autotune: %s", results[0].Err)
			}
			// Replay the chunk after the grow (insert order within the
			// chunk does not matter for membership).
			resp = postBinary(t, ts.URL+"/v1/filters/grower/insert", keys[lo:lo+20_000])
			resp.Body.Close()
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert at %d: status %d", lo, resp.StatusCode)
		}
	}
	migrated := false
	for i := 0; i < 3 && !migrated; i++ {
		for _, res := range reg.AutotuneOnce() {
			if res.Err != "" {
				t.Fatalf("autotune: %s", res.Err)
			}
			migrated = migrated || res.Migrated
		}
	}
	if !migrated {
		t.Fatal("autotune never migrated the outgrown filter")
	}
	// The control loop's verdicts land in the decision trace: at least one
	// retained decision must be the migration that just happened.
	tr := doJSON(t, "GET", ts.URL+"/v1/filters/grower/trace", nil, http.StatusOK)
	traceMigrated := false
	for _, raw := range tr["decisions"].([]any) {
		if raw.(map[string]any)["migrated"] == true {
			traceMigrated = true
		}
	}
	if !traceMigrated {
		t.Fatalf("no migrated decision in the trace after autotune: %v", tr)
	}
	// Every acknowledged key is still present.
	resp := postBinary(t, ts.URL+"/v1/filters/grower/probe", keys)
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if buf.Len() != 4*len(keys) {
		t.Fatalf("%d of %d keys present after autotune migration", buf.Len()/4, len(keys))
	}
	// The post-migration size must be accounted: a fresh create that
	// would collide with the grown usage is still budget-checked (smoke:
	// usedBits is consistent enough to not underflow on delete).
	doJSON(t, "DELETE", ts.URL+"/v1/filters/grower", nil, http.StatusOK)
}

// BenchmarkProbeHandlerAllocs measures allocations on the binary probe
// hot path (the satellite fix pools the body, key and selection buffers;
// before pooling every request allocated all three).
func BenchmarkProbeHandlerAllocs(b *testing.B) {
	s := newQuiet(Options{})
	handler := s.Handler()
	// Create a filter and fill it through the handler stack.
	createBody, _ := json.Marshal(CreateRequest{Name: "bench", Kind: "bloom", MBits: 1 << 22, Shards: 2})
	req := httptest.NewRequest("POST", "/v1/filters", bytes.NewReader(createBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		b.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	r := rng.NewMT19937(123)
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	body := leBytes(keys)
	ins := httptest.NewRequest("POST", "/v1/filters/bench/insert", bytes.NewReader(body))
	ins.Header.Set("Content-Type", "application/octet-stream")
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, ins)
	if rec.Code != http.StatusOK {
		b.Fatalf("insert: %d", rec.Code)
	}

	rdr := bytes.NewReader(body)
	rec = httptest.NewRecorder()
	rec.Body = bytes.NewBuffer(make([]byte, 0, 4*len(keys)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Reset(body)
		rec.Body.Reset()
		req := httptest.NewRequest("POST", "/v1/filters/bench/probe", rdr)
		req.Header.Set("Content-Type", "application/octet-stream")
		handler.ServeHTTP(rec, req)
	}
}

// TestSnapshotWithoutDataDir pins the error path: snapshotting on a
// server with no data dir is a client error, not a crash.
func TestSnapshotWithoutDataDir(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "f", Kind: "bloom", MBits: 1 << 16,
	}, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/v1/filters/f/snapshot", nil, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/filters/missing/snapshot", nil, http.StatusNotFound)
}

// TestXorMigrateEndpoint drives the immutable family through the HTTP
// surface: create a Bloom filter, load keys, migrate it to kind "xor"
// explicitly (the key-log replay seals the new generation), verify the
// stats endpoint reports the xor kind plus the read-mostly window, keep
// probing (members still selected), and migrate back to bloom.
func TestXorMigrateEndpoint(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/filters",
		map[string]any{"name": "xr", "kind": "bloom", "mbits": 4 << 20}, http.StatusCreated)

	keys := make([]uint32, 20_000)
	for i := range keys {
		keys[i] = uint32(i + 1)
	}
	resp := postBinary(t, ts.URL+"/v1/filters/xr/insert", keys)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	resp.Body.Close()

	out := doJSON(t, "POST", ts.URL+"/v1/filters/xr/migrate",
		map[string]any{"kind": "xor", "fingerprint_bits": 16, "fuse": true}, http.StatusOK)
	if out["migrated"] != true {
		t.Fatalf("migrate response %v", out)
	}

	stats := doJSON(t, "GET", ts.URL+"/v1/filters/xr", nil, http.StatusOK)
	info := stats["filter"].(map[string]any)
	if info["kind"] != "xor" {
		t.Fatalf("stats kind %v after migration, want xor", info["kind"])
	}
	if _, ok := stats["read_mostly"]; !ok {
		t.Fatal("stats missing the read_mostly verdict")
	}
	if _, ok := stats["window_insert_fraction"]; !ok {
		t.Fatal("stats missing window_insert_fraction")
	}

	// Members must still be selected on the sealed xor generation.
	resp = postBinary(t, ts.URL+"/v1/filters/xr/probe", keys[:1000])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 4*1000 {
		t.Fatalf("probe selected %d of 1000 members on the xor generation", len(body)/4)
	}

	// Inserts during the xor generation are acknowledged (overflow+log)…
	late := []uint32{900_001, 900_002, 900_003}
	resp = postBinary(t, ts.URL+"/v1/filters/xr/insert", late)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("xor-era insert status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// …and survive the migration back to a mutable family.
	out = doJSON(t, "POST", ts.URL+"/v1/filters/xr/migrate",
		map[string]any{"kind": "bloom", "mbits": 4 << 20}, http.StatusOK)
	if out["migrated"] != true {
		t.Fatalf("migrate-back response %v", out)
	}
	resp = postBinary(t, ts.URL+"/v1/filters/xr/probe", late)
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 4*len(late) {
		t.Fatalf("xor-era inserts lost: %d of %d selected after migrating back", len(body)/4, len(late))
	}

	// kind "xor" also works at create time (starts in the building phase).
	doJSON(t, "POST", ts.URL+"/v1/filters",
		map[string]any{"name": "xr2", "kind": "xor", "mbits": 1 << 20}, http.StatusCreated)
	list := doJSON(t, "GET", ts.URL+"/v1/filters/xr2", nil, http.StatusOK)
	if list["filter"].(map[string]any)["kind"] != "xor" {
		t.Fatal("created xor filter does not report its kind")
	}
}
