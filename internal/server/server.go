// Package server implements the filter-server HTTP service: named sharded
// filters behind a JSON control plane and a binary batch data plane.
//
// Control plane (JSON):
//
//	POST   /v1/filters               create a named filter (explicit config
//	                                 or {"advise": workload} to let the
//	                                 paper's cost model pick one)
//	GET    /v1/filters               list filters
//	GET    /v1/filters/{name}        stats for one filter
//	DELETE /v1/filters/{name}        drop a filter
//	POST   /v1/filters/{name}/rotate swap in a fresh generation (optionally
//	                                 resized) under live traffic
//	GET    /v1/filters/{name}/advice re-run the cost model against the
//	                                 filter's *tracked* workload (observed
//	                                 n and σ): current vs recommended
//	                                 config, modeled overheads, and whether
//	                                 the hysteresis policy would migrate
//	                                 (?tw= overrides the work-saved term
//	                                 for exploration)
//	POST   /v1/filters/{name}/migrate
//	                                 migrate the filter live — losslessly,
//	                                 under traffic, including Bloom↔Cuckoo
//	                                 kind changes. Empty body applies the
//	                                 advisor's recommendation when the
//	                                 hysteresis margin clears ({"force":
//	                                 true} applies it regardless); a body
//	                                 with kind/mbits (create-style geometry
//	                                 fields) names an explicit target
//	POST   /v1/filters/{name}/snapshot
//	                                 persist the filter to the data dir
//	GET    /v1/filters/{name}/trace  the control loop's recent Reoptimize
//	                                 decisions (a fixed-size ring): for each
//	                                 pass, the tracked window, ρ_cur vs
//	                                 ρ_new, the hysteresis margin, and the
//	                                 chosen configuration
//	GET    /healthz                  liveness: uptime, Go version, VCS
//	                                 revision (always 200 while the
//	                                 process serves)
//	GET    /readyz                   readiness, split from liveness: 503
//	                                 until the DataDir restore completes
//	                                 and while a migration is in flight
//	GET    /metrics                  Prometheus text exposition for every
//	                                 layer (server batch plane, sharded
//	                                 rotation machinery, adaptive control
//	                                 loop); see internal/obs
//	GET    /metrics/history          the self-scraped ring of periodic
//	                                 registry snapshots (counter deltas +
//	                                 windowed latency quantiles);
//	                                 ?window=5m bounds the lookback
//	GET    /v1/debug/traces          sampled request-scoped trace spans,
//	                                 newest first (?min_ns=&name=&limit=);
//	                                 see internal/obs and tracing.go
//
// Every filter is wrapped in perfilter.NewAdaptive: inserts and probes
// feed atomic workload counters, and an append-only key log makes live
// migrations lossless. StartAutotune (filter-server -autotune) turns the
// advice endpoint's answer into action on a period: each filter whose
// re-advised configuration beats the deployed one by the hysteresis
// margin is migrated automatically, with the memory budget re-accounted.
// The key log costs 32 bits per logged insert, on top of the filter
// itself and outside the budget.
//
// Persistence: with Options.DataDir set, filters snapshot to
// <dir>/<name>.pf (the perfilter wire format) via the endpoint above or
// SaveAll (cmd/filter-server calls it on shutdown), and LoadAll restores
// every snapshot on start with probe results byte-identical to the
// originals. Restored filters count against the memory budget. Deleting
// a filter also deletes its snapshot, so a restart cannot resurrect it.
//
// Data plane (binary, little-endian uint32 — the repository's canonical
// key width — four bytes per key, no framing):
//
//	POST /v1/filters/{name}/insert   body: keys; response: JSON insert count
//	POST /v1/filters/{name}/probe    body: keys; response: the selection
//	                                 vector (LE uint32 positions of keys
//	                                 that may be contained), or JSON with
//	                                 ?format=json
//
// Both data-plane endpoints also accept Content-Type application/json with
// {"keys": [...]} for curl-friendly exploration; the binary form is the
// high-throughput path (a 1024-key probe is one 4 KiB POST).
//
// All handlers are safe for concurrent use: the registry is behind an
// RWMutex and every filter is a perfilter.Sharded (per-shard locks,
// scatter/gather batches, atomic rotation).
//
// Observability: every insert/probe batch is timed into log-bucketed
// latency histograms, data-plane key and byte volumes are counted
// globally and per filter, and control-plane events (create, delete,
// rotate, migrate, snapshot, autotune) are logged structurally via
// log/slog with the filter name, kind and generation. Options.Pprof
// additionally mounts net/http/pprof under /debug/pprof/.
package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perfilter"
	"perfilter/internal/adaptive"
	"perfilter/internal/obs"
)

// DefaultMaxBatchBytes caps data-plane request bodies (16 MiB = 4M keys).
const DefaultMaxBatchBytes = 16 << 20

// DefaultMaxFilterBits caps a single filter's size (2^33 bits = 1 GiB).
// Without a cap, one create or rotate request naming an absurd mbits
// would allocate it and take the process down.
const DefaultMaxFilterBits = 1 << 33

// DefaultMaxTotalBits caps the summed size of all registered filters
// (2^35 bits = 4 GiB) — the per-filter cap alone would still let a
// client OOM the server by creating many filters at the limit.
const DefaultMaxTotalBits = 1 << 35

// DefaultTw is the work saved per pruned probe assumed for filters whose
// creation named no tw: 1000 cycles, between Figure 1's cache-miss (~10^2)
// and network-tuple (~10^4) reference points.
const DefaultTw = 1000

var nameRE = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// Options configures a Server.
type Options struct {
	// MaxBatchBytes caps insert/probe request bodies; 0 means
	// DefaultMaxBatchBytes.
	MaxBatchBytes int64
	// MaxFilterBits caps a single filter's size at create/rotate; 0
	// means DefaultMaxFilterBits.
	MaxFilterBits uint64
	// MaxTotalBits caps the summed size of all filters; 0 means
	// DefaultMaxTotalBits.
	MaxTotalBits uint64
	// DataDir, when non-empty, enables persistence: snapshots are written
	// to <DataDir>/<name>.pf and restored by LoadAll. The directory is
	// created on first use.
	DataDir string
	// Tw is the default work saved per pruned probe (cycles) for filters
	// created without an explicit tw; 0 means DefaultTw. It parameterizes
	// the advice/migrate/autotune cost comparisons.
	Tw float64
	// Policy is the migration hysteresis rule shared by every filter
	// (zero fields get the adaptive package's defaults).
	Policy adaptive.Policy
	// Logger receives structured operational events (control-plane
	// lifecycle, autotune decisions, mid-stream probe write failures);
	// nil means slog.Default().
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the returned
	// handler (filter-server -pprof). Off by default: the profiling
	// surface should be an explicit operator choice.
	Pprof bool
	// Tracer samples batch-plane requests into the span ring behind
	// GET /v1/debug/traces; nil means obs.DefaultTracer (1% head
	// sampling). Tests pass their own tracer for isolation.
	Tracer *obs.Tracer
	// TraceAutoSlow makes the history scraper continuously re-derive the
	// tracer's slow-capture threshold as 2x the live probe p99
	// (filter-server -trace-slow-ns=0, the default).
	TraceAutoSlow bool
}

// Server is the filter registry plus its HTTP handlers.
type Server struct {
	mu        sync.RWMutex
	filters   map[string]*entry
	usedBits  uint64 // reserved bits across all filters, guarded by mu
	maxBytes  int64
	maxBits   uint64
	totalBits uint64
	dataDir   string
	tw        float64
	policy    adaptive.Policy
	log       *slog.Logger
	pprof     bool
	started   time.Time
	metrics   *serverMetrics
	// tracer samples batch-plane requests; history self-scrapes the
	// metrics registry (tracing.go).
	tracer        *obs.Tracer
	history       *obs.History
	traceAutoSlow bool
	// ready flips true once the DataDir restore (LoadAll) finishes —
	// immediately at construction when there is nothing to restore.
	// migrating counts in-flight migrations. Both feed GET /readyz.
	ready     atomic.Bool
	migrating atomic.Int32
	// bufs pools the binary data plane's per-request buffers (raw body,
	// decoded keys, selection vector) so the probe hot path does not
	// allocate per request.
	bufs sync.Pool
	// fileMu serializes snapshot-file publication and removal, so a
	// snapshot racing a DELETE (or a delete-recreate-snapshot sequence)
	// can neither resurrect a deleted filter nor clobber a successor's
	// freshly written snapshot.
	fileMu sync.Mutex
}

// entry is one registered filter. A nil f marks an in-flight create's
// placeholder: the name and bits are reserved, the filter not yet built.
// bits and rotating are guarded by the server mutex; the entry pointer
// itself is the reservation's identity — handlers re-check that the map
// still holds *their* entry before touching the accounting, so a
// delete/recreate race can neither resurrect a filter nor leak budget.
// The filter's configuration lives in f (migrations change it), not here.
type entry struct {
	f        *perfilter.Adaptive
	bits     uint64
	rotating bool
	created  time.Time
	// m holds the filter's pre-resolved per-name metric series, written
	// once before the entry is published so the data-plane hot path reads
	// it without a lock or a registry lookup.
	m *filterMetrics
}

// New returns an empty server.
func New(opts Options) *Server {
	maxBytes := opts.MaxBatchBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBatchBytes
	}
	maxBits := opts.MaxFilterBits
	if maxBits == 0 {
		maxBits = DefaultMaxFilterBits
	}
	totalBits := opts.MaxTotalBits
	if totalBits == 0 {
		totalBits = DefaultMaxTotalBits
	}
	tw := opts.Tw
	if tw == 0 {
		tw = DefaultTw
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer
	}
	s := &Server{
		filters:  make(map[string]*entry),
		maxBytes: maxBytes, maxBits: maxBits, totalBits: totalBits,
		dataDir: opts.DataDir, tw: tw, policy: opts.Policy.WithDefaults(),
		log: logger, pprof: opts.Pprof, started: time.Now(),
		metrics:       newServerMetrics(obs.Default),
		tracer:        tracer,
		history:       obs.NewHistory(obs.Default, 0),
		traceAutoSlow: opts.TraceAutoSlow,
	}
	// With no data dir there is nothing to restore: ready from birth.
	// Otherwise LoadAll flips the switch when the restore finishes.
	s.ready.Store(opts.DataDir == "")
	s.metrics.registerRegistryGauges(s)
	return s
}

// adaptiveOptions builds the per-filter adaptive wrapper options: the
// server owns pacing (autotune) and budget accounting, so the background
// tuner and the ErrFull auto-grow stay off — saturation surfaces as 507
// and every size change goes through the accounted migrate path.
func (s *Server) adaptiveOptions(tw, sigma, budget float64) perfilter.AdaptiveOptions {
	if tw == 0 {
		tw = s.tw
	}
	return perfilter.AdaptiveOptions{
		Workload: perfilter.Workload{Tw: tw, Sigma: sigma, BitsPerKeyBudget: budget},
		Policy:   s.policy,
		// Shards is set per filter at construction.
		DisableAutoGrow: true,
	}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", obs.Default.Handler())
	mux.Handle("GET /metrics/history", s.history.Handler())
	mux.Handle("GET /v1/debug/traces", s.tracer.Handler())
	// Control-plane handlers go through cp (tracing.go): every request
	// gets an X-Trace-Id and a debug access line with its request_id.
	mux.HandleFunc("POST /v1/filters", s.cp(s.handleCreate))
	mux.HandleFunc("GET /v1/filters", s.cp(s.handleList))
	mux.HandleFunc("GET /v1/filters/{name}", s.cp(s.handleStats))
	mux.HandleFunc("DELETE /v1/filters/{name}", s.cp(s.handleDelete))
	mux.HandleFunc("POST /v1/filters/{name}/rotate", s.cp(s.handleRotate))
	mux.HandleFunc("GET /v1/filters/{name}/advice", s.cp(s.handleAdvice))
	mux.HandleFunc("GET /v1/filters/{name}/trace", s.cp(s.handleTrace))
	mux.HandleFunc("POST /v1/filters/{name}/migrate", s.cp(s.handleMigrate))
	mux.HandleFunc("POST /v1/filters/{name}/snapshot", s.cp(s.handleSnapshot))
	// The batch plane manages its own identity (beginBatch/finish): its
	// zero-allocation budget rules out the unconditional wrapper.
	mux.HandleFunc("POST /v1/filters/{name}/insert", s.handleInsert)
	mux.HandleFunc("POST /v1/filters/{name}/probe", s.handleProbe)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleHealthz answers the liveness probe with enough identity to tell
// *which* build has been up for how long: uptime, toolchain version, and
// the VCS revision stamped into the binary (empty for un-stamped builds,
// e.g. go test binaries).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"go_version":     runtime.Version(),
		"vcs_revision":   buildRevision(),
	})
}

// buildRevision returns the VCS revision recorded by the toolchain at
// build time ("" when the binary was built outside a checkout).
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

// CreateRequest is the control-plane filter specification. Either give an
// explicit Kind (+ geometry; zero fields get the kind's headline defaults)
// and MBits, or an Advise workload and let the cost model choose both.
type CreateRequest struct {
	Name   string `json:"name"`
	Kind   string `json:"kind,omitempty"` // bloom | classic | cuckoo | exact | xor
	MBits  uint64 `json:"mbits,omitempty"`
	Shards int    `json:"shards,omitempty"` // 0 = advisor's host default

	// Bloom geometry (kind "bloom"/"classic"); zero = headline defaults
	// (cache-sectorized k=8 z=2 for bloom, k=7 for classic).
	K          uint32 `json:"k,omitempty"`
	BlockBits  uint32 `json:"block_bits,omitempty"`
	SectorBits uint32 `json:"sector_bits,omitempty"`
	Groups     uint32 `json:"groups,omitempty"`

	// Cuckoo geometry (kind "cuckoo"); zero = the paper's s=16, b=2.
	TagBits    uint32 `json:"tag_bits,omitempty"`
	BucketSize uint32 `json:"bucket_size,omitempty"`

	// Xor geometry (kind "xor"); zero fingerprint width = 8. The family
	// is immutable: it goes live on the first migration/rotation, which
	// seals the replayed key log into solved tables, and buffers any
	// writes until the next one.
	FingerprintBits uint32 `json:"fingerprint_bits,omitempty"`
	Fuse            bool   `json:"fuse,omitempty"`

	// Tw seeds the filter's tracked workload: the work saved per pruned
	// probe, in cycles, which advice/migrate/autotune compare overheads
	// against. Zero uses Advise.Tw when advising, else the server default.
	Tw float64 `json:"tw,omitempty"`

	// Advise, when non-nil, overrides Kind/MBits with the cost model's
	// performance-optimal pick for the workload.
	Advise *AdviseRequest `json:"advise,omitempty"`
}

// AdviseRequest mirrors perfilter.Workload for the control plane.
type AdviseRequest struct {
	N          uint64  `json:"n"`
	Tw         float64 `json:"tw"`
	Sigma      float64 `json:"sigma,omitempty"`
	BitsPerKey float64 `json:"bits_per_key,omitempty"`
	AllowExact bool    `json:"allow_exact,omitempty"`
	// ReadMostly makes the immutable xor/fuse family eligible (see
	// perfilter.Workload.ReadMostly).
	ReadMostly bool `json:"read_mostly,omitempty"`
}

// FilterInfo is the control-plane view of one filter.
type FilterInfo struct {
	Name       string    `json:"name"`
	Config     string    `json:"config"`
	Kind       string    `json:"kind"`
	SizeBits   uint64    `json:"size_bits"`
	Shards     int       `json:"shards"`
	Count      uint64    `json:"count"`
	Generation uint64    `json:"generation"`
	FPR        float64   `json:"fpr_at_count"`
	Created    time.Time `json:"created"`
}

func (e *entry) info(name string) FilterInfo {
	return e.infoFrom(name, e.f.Stats())
}

// infoFrom renders a FilterInfo from an already-taken snapshot, so
// handlers returning both forms report one consistent view. Kind and
// Config come from the live filter: migrations change them.
func (e *entry) infoFrom(name string, st perfilter.ShardStats) FilterInfo {
	return FilterInfo{
		Name:       name,
		Config:     e.f.String(),
		Kind:       e.f.Config().Kind.String(),
		SizeBits:   st.SizeBits,
		Shards:     st.Shards,
		Count:      st.Count,
		Generation: st.Generation,
		FPR:        e.f.FPR(st.Count),
		Created:    e.created,
	}
}

// buildConfig resolves a CreateRequest into a validated configuration,
// size and shard count.
func buildConfig(req *CreateRequest) (perfilter.Config, uint64, int, error) {
	if req.Advise != nil {
		a := req.Advise
		advice, err := perfilter.Advise(perfilter.Workload{
			N: a.N, Tw: a.Tw, Sigma: a.Sigma,
			BitsPerKeyBudget: a.BitsPerKey, AllowExact: a.AllowExact,
			ReadMostly: a.ReadMostly,
		})
		if err != nil {
			return perfilter.Config{}, 0, 0, err
		}
		shards := req.Shards
		if shards == 0 {
			shards = advice.Shards
		}
		return advice.Config, advice.MBits, shards, nil
	}
	if req.MBits == 0 {
		return perfilter.Config{}, 0, 0, errors.New("mbits required (or give \"advise\")")
	}
	// The kind vocabulary comes from the filter registry: any registered
	// family name (or alias — "" selects the blocked-Bloom default)
	// resolves; anything else is rejected naming the valid kinds. The
	// resolved family's headline defaults seed the configuration, and the
	// request's geometry fields override them (fields foreign to the kind
	// are ignored by validation, as before).
	kind, ok := perfilter.KindByName(req.Kind)
	if !ok {
		return perfilter.Config{}, 0, 0, fmt.Errorf("unknown kind %q (valid kinds: %s)",
			req.Kind, strings.Join(perfilter.KindNames(), ", "))
	}
	cfg := perfilter.DefaultConfig(kind)
	if req.BlockBits != 0 {
		cfg.BlockBits = req.BlockBits
	}
	if req.SectorBits != 0 {
		cfg.SectorBits = req.SectorBits
	}
	if req.Groups != 0 {
		cfg.Groups = req.Groups
	}
	if req.K != 0 {
		cfg.K = req.K
	}
	if req.TagBits != 0 {
		cfg.TagBits = req.TagBits
	}
	if req.BucketSize != 0 {
		cfg.BucketSize = req.BucketSize
	}
	if req.FingerprintBits != 0 {
		cfg.FingerprintBits = req.FingerprintBits
	}
	if req.Fuse {
		cfg.Fuse = true
	}
	if err := cfg.Validate(); err != nil {
		return perfilter.Config{}, 0, 0, err
	}
	return cfg, req.MBits, req.Shards, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if !nameRE.MatchString(req.Name) {
		writeErr(w, http.StatusBadRequest, errors.New("name must match [A-Za-z0-9_.-]{1,64}"))
		return
	}
	cfg, mBits, shards, err := buildConfig(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if mBits > s.maxBits {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("mbits %d exceeds the server cap of %d", mBits, s.maxBits))
		return
	}
	// Reserve the name and the memory before building: construction
	// allocates the full filter, and neither a duplicate request nor a
	// flood of creates may pay (or race) that.
	s.mu.Lock()
	if _, dup := s.filters[req.Name]; dup {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("filter %q already exists", req.Name))
		return
	}
	if s.usedBits+mBits > s.totalBits {
		avail := remaining(s.totalBits, s.usedBits)
		s.mu.Unlock()
		writeErr(w, http.StatusInsufficientStorage,
			fmt.Errorf("mbits %d exceeds the server's remaining budget of %d bits (delete or shrink filters first)", mBits, avail))
		return
	}
	ph := &entry{bits: mBits} // placeholder (f == nil)
	s.usedBits += mBits
	s.filters[req.Name] = ph
	s.mu.Unlock()
	release := func() {
		// Only our own placeholder: if a concurrent DELETE removed it,
		// that already returned the reservation.
		s.mu.Lock()
		if s.filters[req.Name] == ph {
			delete(s.filters, req.Name)
			s.usedBits -= mBits
		}
		s.mu.Unlock()
	}
	tw, sigma, budget := req.Tw, 0.0, 0.0
	if req.Advise != nil {
		if tw == 0 {
			tw = req.Advise.Tw
		}
		sigma, budget = req.Advise.Sigma, req.Advise.BitsPerKey
	}
	aOpts := s.adaptiveOptions(tw, sigma, budget)
	aOpts.Shards = shards
	f, err := perfilter.NewAdaptive(cfg, mBits, aOpts)
	if err != nil {
		release()
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Account the built size, not the request: constructors round up to
	// addressing granularity (the exact kind by up to ~2x), and the
	// budget should reflect memory actually held.
	bits := mBits
	if actual := f.SizeBits(); actual > bits {
		bits = actual
	}
	e := &entry{f: f, bits: bits, created: time.Now().UTC()}
	s.mu.Lock()
	if s.filters[req.Name] != ph {
		// Deleted (and possibly re-created by someone else) while we
		// were building; our reservation went with the placeholder.
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("filter %q was deleted during creation", req.Name))
		return
	}
	// Resolve the per-filter series under the registry lock, before the
	// entry is published: the data-plane hot path reads e.m without
	// synchronization, and a losing create must never replace a live
	// filter's series (notably the skew gauge's callback). The obs
	// registry never holds its lock while evaluating gauge callbacks, so
	// nesting it under s.mu cannot deadlock.
	e.m = s.metrics.registerFilter(req.Name, f)
	s.usedBits += bits - mBits
	s.filters[req.Name] = e
	s.mu.Unlock()
	s.log.Info("filter created",
		"filter", req.Name, "kind", cfg.Kind.String(), "config", f.String(),
		"bits", bits, "generation", f.Generation())
	writeJSON(w, http.StatusCreated, e.info(req.Name))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]FilterInfo, 0, len(s.filters))
	for name, e := range s.filters {
		if e.f == nil { // placeholder for an in-flight create
			continue
		}
		infos = append(infos, e.info(name))
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"filters": infos})
}

// lookup resolves {name} or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (string, *entry, bool) {
	name := r.PathValue("name")
	s.mu.RLock()
	e := s.filters[name]
	s.mu.RUnlock()
	if e == nil || e.f == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no filter %q", name))
		return name, nil, false
	}
	return name, e, true
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := e.f.Stats()
	window, readMostly := e.f.WorkloadWindow()
	body := map[string]any{
		"filter": e.infoFrom(name, st), "per_shard_counts": st.PerShard,
		"tracked": e.f.Counters(), "key_log_bits": e.f.LogBits(),
		// The since-last-migration window the control loop evaluates,
		// and the read-mostly verdict gating the immutable xor family.
		"window": window, "window_insert_fraction": window.InsertFraction(),
		"read_mostly":    readMostly,
		"uptime_seconds": time.Since(s.started).Seconds(),
		// Server-wide batch-plane latency quantiles (the histograms are
		// global, not per filter), estimated log-linearly within the
		// power-of-two buckets — see obs.Histogram.Quantile.
		"latency_ns": map[string]any{
			"probe":  histQuantiles(s.metrics.probeDur),
			"insert": histQuantiles(s.metrics.insertDur),
		},
	}
	if d, ok := e.f.LastMigration(); ok {
		body["last_migration"] = map[string]any{
			"at": d.At, "from": d.Current, "to": d.Best, "reason": d.Reason,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	e, ok := s.filters[name]
	if ok {
		delete(s.filters, name)
		s.usedBits -= e.bits
		// Drop the per-filter series while s.mu is still held: a
		// concurrent create re-registering the same name does so under
		// s.mu too, so a delayed unregister can never tear down the
		// recreated filter's live series.
		s.metrics.unregisterFilter(name)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no filter %q", name))
		return
	}
	// Drop the snapshot too: a restart must not resurrect a deleted
	// filter. Best-effort; a missing file is the common case. fileMu
	// orders this against an in-flight snapshot's publish-or-abort.
	if s.dataDir != "" {
		s.fileMu.Lock()
		os.Remove(s.snapshotPath(name))
		s.fileMu.Unlock()
	}
	kind := ""
	if e.f != nil {
		kind = e.f.Config().Kind.String()
		// Release the tuner and the persistent batch-gather workers
		// eagerly rather than waiting for the finalizer. Safe against
		// handlers still holding e.f: a closed pool just makes their
		// remaining batches run on the handler goroutine.
		e.f.Close()
	}
	s.log.Info("filter deleted", "filter", name, "kind", kind)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleRotate(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req struct {
		MBits uint64 `json:"mbits,omitempty"` // 0 keeps the current size
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	if req.MBits > s.maxBits {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("mbits %d exceeds the server cap of %d", req.MBits, s.maxBits))
		return
	}
	// Single-flight the rotation and reserve any resize delta under the
	// registry lock, re-checking the entry is still the registered one:
	// a concurrent DELETE releases e.bits (updated below before the lock
	// drops), so post-rotation accounting must only run while registered.
	s.mu.Lock()
	if s.filters[name] != e {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, fmt.Errorf("no filter %q", name))
		return
	}
	if e.rotating {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("filter %q is already rotating", name))
		return
	}
	prev := e.bits
	if req.MBits != 0 {
		if req.MBits > prev && s.usedBits+(req.MBits-prev) > s.totalBits {
			avail := remaining(s.totalBits, s.usedBits)
			s.mu.Unlock()
			writeErr(w, http.StatusInsufficientStorage,
				fmt.Errorf("growing to %d bits exceeds the server's remaining budget of %d bits", req.MBits, avail))
			return
		}
		s.usedBits += req.MBits - prev
		e.bits = req.MBits
	}
	e.rotating = true
	s.mu.Unlock()

	// Rotations are rare and operator-initiated: always trace them. The
	// span gains "sharded.rotate" children (dual-write window width,
	// seal) from the layers below.
	ctx, sp := s.tracer.StartRootForced(r.Context(), "server.rotate")
	sp.SetAttr("filter", name)
	sp.SetAttr("mbits", req.MBits)
	err := e.f.RotateCtx(ctx, req.MBits, nil)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()

	s.mu.Lock()
	registered := s.filters[name] == e
	if req.MBits != 0 && registered {
		if err != nil {
			s.usedBits -= req.MBits - prev
			e.bits = prev
		} else if actual := e.f.SizeBits(); actual > e.bits {
			// Re-account to the built size (constructors round up).
			s.usedBits += actual - e.bits
			e.bits = actual
		}
	}
	e.rotating = false
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.log.Info("filter rotated",
		"filter", name, "kind", e.f.Config().Kind.String(),
		"bits", e.f.SizeBits(), "generation", e.f.Generation())
	writeJSON(w, http.StatusOK, e.info(name))
}

// AdviceSide is the JSON view of one modeled configuration in an advice
// response.
type AdviceSide struct {
	Config       string  `json:"config"`
	Kind         string  `json:"kind"`
	MBits        uint64  `json:"mbits"`
	FPR          float64 `json:"fpr"`
	LookupCycles float64 `json:"lookup_cycles"`
	Overhead     float64 `json:"overhead"` // ρ = tl + f·tw
}

func adviceSide(a perfilter.Advice) AdviceSide {
	return AdviceSide{
		Config: a.Config.String(), Kind: a.Config.Kind.String(),
		MBits: a.MBits, FPR: a.FPR, LookupCycles: a.LookupCycles,
		Overhead: a.Overhead,
	}
}

// AdviceResponse is the advice endpoint's answer: the tracked workload,
// the deployed configuration's modeled overhead, the re-advised optimum,
// and the hysteresis verdict, plus the filter's recent re-optimization
// decisions.
type AdviceResponse struct {
	Name         string              `json:"name"`
	Tracked      adaptive.Counters   `json:"tracked"`
	N            uint64              `json:"n"`
	Tw           float64             `json:"tw"`
	Sigma        float64             `json:"sigma"`
	Current      AdviceSide          `json:"current"`
	Best         AdviceSide          `json:"best"`
	KindChange   bool                `json:"kind_change"`
	WouldMigrate bool                `json:"would_migrate"`
	Reason       string              `json:"reason"`
	Decisions    []adaptive.Decision `json:"decisions,omitempty"`
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	tw := 0.0 // 0 keeps the filter's configured tw
	if q := r.URL.Query().Get("tw"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad tw %q", q))
			return
		}
		tw = v
	}
	adv, err := e.f.AdviceTw(tw)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, AdviceResponse{
		Name:    name,
		Tracked: adv.Counters,
		N:       adv.Workload.N, Tw: adv.Workload.Tw, Sigma: adv.Workload.Sigma,
		Current: adviceSide(adv.Current), Best: adviceSide(adv.Best),
		KindChange: adv.KindChange, WouldMigrate: adv.WouldMigrate,
		Reason: adv.Reason, Decisions: e.f.Decisions(),
	})
}

// TraceResponse is the trace endpoint's answer: the control loop's
// recent Reoptimize decisions, oldest first. Total counts every decision
// ever recorded, so a reader can tell how much history the fixed-size
// ring has already dropped (total - len(decisions)).
type TraceResponse struct {
	Name      string              `json:"name"`
	Total     uint64              `json:"total"`
	Decisions []adaptive.Decision `json:"decisions"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		Name:      name,
		Total:     e.f.TraceTotal(),
		Decisions: e.f.Decisions(),
	})
}

// MigrateRequest selects the migration target. An empty body applies the
// advisor's recommendation for the tracked workload when the hysteresis
// margin clears; Force applies it regardless. Naming a kind (or just
// mbits) migrates to that explicit target instead — geometry fields work
// as in CreateRequest, zero mbits keeps the current size.
type MigrateRequest struct {
	Force bool `json:"force,omitempty"`

	Kind       string `json:"kind,omitempty"`
	MBits      uint64 `json:"mbits,omitempty"`
	K          uint32 `json:"k,omitempty"`
	BlockBits  uint32 `json:"block_bits,omitempty"`
	SectorBits uint32 `json:"sector_bits,omitempty"`
	Groups     uint32 `json:"groups,omitempty"`
	TagBits    uint32 `json:"tag_bits,omitempty"`
	BucketSize uint32 `json:"bucket_size,omitempty"`

	// Xor geometry (kind "xor"), as in CreateRequest.
	FingerprintBits uint32 `json:"fingerprint_bits,omitempty"`
	Fuse            bool   `json:"fuse,omitempty"`
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req MigrateRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	var cfg perfilter.Config
	var mBits uint64
	if req.Kind == "" && req.MBits == 0 {
		// Recommendation mode: act on the advisor's answer.
		adv, err := e.f.Advice()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		act := adv.WouldMigrate || req.Force
		if act && adv.Best.Config == adv.Current.Config && adv.Best.MBits == adv.Current.MBits {
			act = false
			adv.Reason = "already at the recommended configuration"
		}
		if !act {
			writeJSON(w, http.StatusOK, map[string]any{
				"migrated": false, "reason": adv.Reason,
				"current": adviceSide(adv.Current), "best": adviceSide(adv.Best),
			})
			return
		}
		cfg, mBits = adv.Best.Config, adv.Best.MBits
	} else {
		// Explicit mode: a create-style target; empty kind keeps the
		// current family (with the kind's headline geometry defaults),
		// zero mbits keeps the current size.
		cr := CreateRequest{
			Kind: req.Kind, MBits: req.MBits, K: req.K,
			BlockBits: req.BlockBits, SectorBits: req.SectorBits,
			Groups: req.Groups, TagBits: req.TagBits, BucketSize: req.BucketSize,
			FingerprintBits: req.FingerprintBits, Fuse: req.Fuse,
		}
		if cr.Kind == "" {
			cr.Kind = e.f.Config().Kind.String()
		}
		if cr.MBits == 0 {
			cr.MBits = e.f.SizeBits()
		}
		var err error
		cfg, mBits, _, err = buildConfig(&cr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	status, body := s.migrateEntry(r.Context(), name, e, cfg, mBits)
	writeJSON(w, status, body)
}

// migrateEntry performs one accounted live migration: single-flighted per
// filter, the size delta reserved against the memory budget up front
// (mirroring handleRotate) and re-accounted to the built size afterwards.
// The migration is always traced (a forced "server.migrate" root unless
// ctx already carries a span) and counted in s.migrating while the
// rebuild runs, flipping /readyz to 503.
func (s *Server) migrateEntry(ctx context.Context, name string, e *entry, cfg perfilter.Config, mBits uint64) (int, map[string]any) {
	if mBits > s.maxBits {
		return http.StatusBadRequest, errBody(fmt.Errorf("mbits %d exceeds the server cap of %d", mBits, s.maxBits))
	}
	s.mu.Lock()
	if s.filters[name] != e {
		s.mu.Unlock()
		return http.StatusNotFound, errBody(fmt.Errorf("no filter %q", name))
	}
	if e.rotating {
		s.mu.Unlock()
		return http.StatusConflict, errBody(fmt.Errorf("filter %q is already rotating", name))
	}
	prev := e.bits
	if mBits > prev && s.usedBits+(mBits-prev) > s.totalBits {
		avail := remaining(s.totalBits, s.usedBits)
		s.mu.Unlock()
		return http.StatusInsufficientStorage,
			errBody(fmt.Errorf("migrating to %d bits exceeds the server's remaining budget of %d bits", mBits, avail))
	}
	s.usedBits += mBits - prev
	e.bits = mBits
	e.rotating = true
	s.mu.Unlock()

	fromKind := e.f.Config().Kind.String()
	var sp *obs.Span
	if obs.SpanFromContext(ctx) != nil {
		ctx, sp = obs.StartSpan(ctx, "server.migrate")
	} else {
		ctx, sp = s.tracer.StartRootForced(ctx, "server.migrate")
	}
	sp.SetAttr("filter", name)
	sp.SetAttr("from", fromKind)
	sp.SetAttr("to", cfg.Kind.String())
	sp.SetAttr("mbits", mBits)
	s.migrating.Add(1)
	err := e.f.MigrateCtx(ctx, cfg, mBits)
	s.migrating.Add(-1)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()

	s.mu.Lock()
	if s.filters[name] == e {
		if err != nil {
			s.usedBits += prev - mBits
			e.bits = prev
		} else if actual := e.f.SizeBits(); actual > e.bits {
			// Re-account to the built size (constructors round up).
			s.usedBits += actual - e.bits
			e.bits = actual
		}
	}
	e.rotating = false
	s.mu.Unlock()
	if err != nil {
		s.log.Warn("filter migration failed",
			"filter", name, "kind", fromKind, "target", cfg.String(), "err", err)
		return http.StatusBadRequest, errBody(err)
	}
	s.log.Info("filter migrated",
		"filter", name, "from", fromKind, "to", cfg.Kind.String(),
		"config", cfg.String(), "bits", e.f.SizeBits(), "generation", e.f.Generation())
	return http.StatusOK, map[string]any{
		"migrated": true, "config": cfg.String(), "mbits": mBits,
		"filter": e.info(name),
	}
}

func errBody(err error) map[string]any {
	return map[string]any{"error": err.Error()}
}

// AutotuneResult records one autotune pass's verdict for one filter.
type AutotuneResult struct {
	Name     string `json:"name"`
	Migrated bool   `json:"migrated"`
	Config   string `json:"config,omitempty"` // post-migration config
	Reason   string `json:"reason,omitempty"`
	Err      string `json:"error,omitempty"`
}

// AutotuneOnce runs one re-optimization sweep over every registered
// filter: re-advise against each filter's tracked workload and migrate
// the ones whose modeled win clears the hysteresis margin, within the
// memory budget. It is the body of the -autotune loop and is exported so
// operators (and tests) can drive a sweep on demand.
func (s *Server) AutotuneOnce() []AutotuneResult {
	s.mu.RLock()
	names := make([]string, 0, len(s.filters))
	entries := make([]*entry, 0, len(s.filters))
	for name, e := range s.filters {
		if e.f == nil { // in-flight create's placeholder
			continue
		}
		names = append(names, name)
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	// One forced root span per sweep: each filter's evaluation is a
	// child carrying the modeled overheads (rho_cur vs rho_new) so an
	// operator can read *why* the loop did or did not act.
	ctx, sweep := s.tracer.StartRootForced(context.Background(), "server.autotune")
	sweep.SetAttr("filters", len(names))
	defer sweep.End()
	results := make([]AutotuneResult, 0, len(names))
	for i, name := range names {
		e := entries[i]
		ev := sweep.StartChild("autotune.filter")
		ev.SetAttr("filter", name)
		adv, err := e.f.Advice()
		if err != nil {
			ev.SetAttr("error", err.Error())
			ev.End()
			results = append(results, AutotuneResult{Name: name, Err: err.Error()})
			continue
		}
		ev.SetAttr("rho_cur", adv.Current.Overhead)
		ev.SetAttr("rho_new", adv.Best.Overhead)
		ev.SetAttr("would_migrate", adv.WouldMigrate)
		ev.SetAttr("reason", adv.Reason)
		if !adv.WouldMigrate {
			ev.End()
			results = append(results, AutotuneResult{Name: name, Reason: adv.Reason})
			continue
		}
		status, body := s.migrateEntry(obs.ContextWithSpan(ctx, ev), name, e, adv.Best.Config, adv.Best.MBits)
		ev.End()
		res := AutotuneResult{Name: name, Reason: adv.Reason}
		if status == http.StatusOK {
			res.Migrated = true
			res.Config = adv.Best.Config.String()
		} else if msg, ok := body["error"].(string); ok {
			res.Err = msg
		}
		results = append(results, res)
	}
	return results
}

// StartAutotune launches the background control loop: AutotuneOnce every
// interval until ctx is cancelled. Migrations and failures are logged;
// quiet sweeps are not.
func (s *Server) StartAutotune(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				for _, res := range s.AutotuneOnce() {
					switch {
					case res.Err != "":
						s.log.Warn("autotune pass failed", "filter", res.Name, "err", res.Err)
					case res.Migrated:
						s.log.Info("autotune migrated filter",
							"filter", res.Name, "config", res.Config, "reason", res.Reason)
					}
				}
			}
		}
	}()
}

// snapshotSuffix is the on-disk extension for persisted filters.
const snapshotSuffix = ".pf"

func (s *Server) snapshotPath(name string) string {
	return filepath.Join(s.dataDir, name+snapshotSuffix)
}

// errDeletedDuringSnapshot reports that the filter was unregistered
// between the snapshot request and its publication.
var errDeletedDuringSnapshot = errors.New("filter was deleted during snapshot")

// saveSnapshot serializes one filter and writes it atomically and
// durably: temp file, fsync, rename, directory fsync — a crash mid-write
// never leaves a truncated snapshot where the next start would read it.
// Publication happens under fileMu and only while e is still the
// registered entry, so a racing DELETE can neither be resurrected by
// this snapshot nor have a successor's snapshot clobbered by it.
// parent, when non-nil, gains a "snapshot.save" child span.
func (s *Server) saveSnapshot(parent *obs.Span, name string, e *entry) (int, error) {
	sp := parent.StartChild("snapshot.save")
	sp.SetAttr("filter", name)
	n, err := s.saveSnapshotInner(name, e)
	sp.SetAttr("bytes", n)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if err != nil {
		s.metrics.snapshotErr.Inc()
		s.log.Warn("snapshot save failed", "filter", name, "err", err)
		return n, err
	}
	s.metrics.snapshotOK.Inc()
	s.log.Info("snapshot saved",
		"filter", name, "kind", e.f.Config().Kind.String(),
		"generation", e.f.Generation(), "bytes", n, "path", s.snapshotPath(name))
	return n, nil
}

func (s *Server) saveSnapshotInner(name string, e *entry) (int, error) {
	data, err := perfilter.Marshal(e.f)
	if err != nil {
		return 0, fmt.Errorf("marshal %q: %w", name, err)
	}
	if err := os.MkdirAll(s.dataDir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(s.dataDir, name+".*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	s.mu.RLock()
	registered := s.filters[name] == e
	s.mu.RUnlock()
	if !registered {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("%q: %w", name, errDeletedDuringSnapshot)
	}
	if err := os.Rename(tmp.Name(), s.snapshotPath(name)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	// Persist the rename itself (best-effort: not every platform lets a
	// directory be fsynced).
	if d, err := os.Open(s.dataDir); err == nil {
		d.Sync()
		d.Close()
	}
	return len(data), nil
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if s.dataDir == "" {
		writeErr(w, http.StatusBadRequest,
			errors.New("server has no data dir (start filter-server with -data-dir)"))
		return
	}
	_, sp := s.tracer.StartRootForced(r.Context(), "server.snapshot")
	sp.SetAttr("filter", name)
	n, err := s.saveSnapshot(sp, name, e)
	sp.SetAttr("bytes", n)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if errors.Is(err, errDeletedDuringSnapshot) {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot": name, "bytes": n, "path": s.snapshotPath(name),
	})
}

// SaveAll snapshots every registered filter to the data dir (the shutdown
// path). Filters that fail to save are reported joined; the rest are
// still written.
func (s *Server) SaveAll() (int, error) {
	if s.dataDir == "" {
		return 0, nil
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.filters))
	entries := make([]*entry, 0, len(s.filters))
	for name, e := range s.filters {
		if e.f == nil { // in-flight create's placeholder
			continue
		}
		names = append(names, name)
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	_, sp := s.tracer.StartRootForced(context.Background(), "server.saveall")
	sp.SetAttr("filters", len(names))
	defer sp.End()
	var errs []error
	saved := 0
	for i, name := range names {
		if _, err := s.saveSnapshot(sp, name, entries[i]); err != nil {
			errs = append(errs, err)
			continue
		}
		saved++
	}
	return saved, errors.Join(errs...)
}

// LoadAll restores every *.pf snapshot in the data dir into the registry
// (the startup path), counting each against the memory budget and the
// per-filter cap. Snapshots that fail to decode or no longer fit are
// skipped and reported joined; the rest are served. Names already
// registered are skipped (first registration wins).
func (s *Server) LoadAll() (int, error) {
	// Whatever happens below, the restore attempt is over when this
	// returns: flip /readyz to ready even on a failed restore — the
	// server then serves what it has, which beats staying 503 forever.
	defer s.ready.Store(true)
	if s.dataDir == "" {
		return 0, nil
	}
	dirents, err := os.ReadDir(s.dataDir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	_, root := s.tracer.StartRootForced(context.Background(), "server.restore")
	var errs []error
	loaded := 0
	defer func() {
		root.SetAttr("loaded", loaded)
		root.End()
	}()
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		// Sweep temp files a crash left between CreateTemp and rename —
		// startup is the one moment no snapshot can be in flight.
		if strings.HasSuffix(de.Name(), ".tmp") {
			os.Remove(filepath.Join(s.dataDir, de.Name()))
			continue
		}
		if !strings.HasSuffix(de.Name(), snapshotSuffix) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), snapshotSuffix)
		if !nameRE.MatchString(name) {
			errs = append(errs, fmt.Errorf("snapshot %q: invalid filter name", de.Name()))
			continue
		}
		sp := root.StartChild("snapshot.load")
		sp.SetAttr("filter", name)
		data, err := os.ReadFile(filepath.Join(s.dataDir, de.Name()))
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			errs = append(errs, err)
			continue
		}
		// Adaptive envelopes restore the tracked workload and the key log
		// (so migration keeps working); plain sharded envelopes from
		// pre-adaptive snapshots are wrapped with an incomplete log —
		// they track and advise, but refuse to migrate until rotated.
		var f *perfilter.Adaptive
		if len(data) >= 4 && binary.LittleEndian.Uint32(data) == perfilter.AdaptiveWireMagic {
			opts := s.adaptiveOptions(0, 0, 0)
			// The snapshot's own workload (per-filter tw) outranks the
			// server default: zero fields defer to the wire values.
			opts.Workload = perfilter.Workload{}
			f, err = perfilter.UnmarshalAdaptive(data, opts)
		} else {
			var sh *perfilter.Sharded
			sh, err = perfilter.UnmarshalSharded(data)
			if err == nil {
				f = perfilter.NewAdaptiveFrom(sh, s.adaptiveOptions(0, 0, 0))
			}
		}
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			s.metrics.restoreErr.Inc()
			s.log.Warn("snapshot restore failed", "snapshot", de.Name(), "err", err)
			errs = append(errs, fmt.Errorf("snapshot %q: %w", de.Name(), err))
			continue
		}
		bits := f.SizeBits()
		info, _ := de.Info()
		created := time.Now().UTC()
		if info != nil {
			created = info.ModTime().UTC()
		}
		e := &entry{f: f, bits: bits, created: created}
		s.mu.Lock()
		var rejected error
		switch {
		case s.filters[name] != nil:
			rejected = fmt.Errorf("snapshot %q: filter already registered", name)
		case bits > s.maxBits:
			rejected = fmt.Errorf("snapshot %q: %d bits exceeds the per-filter cap of %d", name, bits, s.maxBits)
		case s.usedBits+bits > s.totalBits:
			rejected = fmt.Errorf("snapshot %q: %d bits exceeds the remaining budget of %d", name, bits, remaining(s.totalBits, s.usedBits))
		default:
			// Series registration precedes publication (see handleCreate
			// for the ordering rationale).
			e.m = s.metrics.registerFilter(name, f)
			s.usedBits += bits
			s.filters[name] = e
			loaded++
		}
		s.mu.Unlock()
		if rejected != nil {
			sp.SetAttr("error", rejected.Error())
			sp.End()
			s.metrics.restoreErr.Inc()
			s.log.Warn("snapshot restore rejected", "snapshot", de.Name(), "err", rejected)
			errs = append(errs, rejected)
			continue
		}
		sp.SetAttr("bits", bits)
		sp.SetAttr("generation", f.Generation())
		sp.End()
		s.metrics.restoreOK.Inc()
		s.log.Info("snapshot restored",
			"filter", name, "kind", f.Config().Kind.String(),
			"generation", f.Generation(), "bits", bits)
	}
	return loaded, errors.Join(errs...)
}

// probeBuffers is one data-plane request's reusable buffer set: the raw
// body bytes, the decoded key batch, and (for probes) the selection
// vector. Pooled on the server so the binary hot path runs allocation-free
// at steady state.
type probeBuffers struct {
	raw  []byte
	keys []perfilter.Key
	sel  []uint32
}

// maxPooledBufBytes caps what a returned buffer set may retain: one
// maximum-size batch must not pin 16 MiB per pooled object forever.
const maxPooledBufBytes = 4 << 20

func (s *Server) getBuffers() *probeBuffers {
	pb, _ := s.bufs.Get().(*probeBuffers)
	if pb == nil {
		pb = new(probeBuffers)
	}
	return pb
}

func (s *Server) putBuffers(pb *probeBuffers) {
	// All three buffers count against the retention cap: a JSON-path probe
	// never touches raw but can still grow keys/sel to megabytes.
	if cap(pb.raw)+4*cap(pb.keys)+4*cap(pb.sel) > maxPooledBufBytes {
		return // oversized one-offs are dropped, not pooled
	}
	s.bufs.Put(pb)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	ctx, bt := s.beginBatch(r, "server.insert", "insert", name)
	if bt.id != "" {
		w.Header().Set("X-Trace-Id", bt.id)
	}
	pb := s.getBuffers()
	defer s.putBuffers(pb)
	keys, err := s.readKeys(r, pb)
	if err != nil {
		s.metrics.insertErrs.Inc()
		writeErr(w, http.StatusBadRequest, err)
		bt.finish(s, http.StatusBadRequest, 0, 0)
		return
	}
	start := time.Now()
	inserted, err := e.f.InsertBatchCtx(ctx, keys)
	s.metrics.insertDur.Observe(time.Since(start).Nanoseconds())
	s.metrics.dataIn.Add(uint64(4 * len(keys)))
	// Keys submitted, matching the probe series' semantics; the
	// per-filter series below counts keys actually accepted (the two
	// differ only when a cuckoo shard saturates mid-batch).
	s.metrics.insertKeys.Add(uint64(len(keys)))
	e.m.insertKeys.Add(uint64(inserted))
	if err != nil {
		s.metrics.insertErrs.Inc()
		// Cuckoo saturation. inserted is a count, not an input-order
		// prefix (the batch is applied shard by shard): the caller
		// should rotate to a larger size and replay the whole batch.
		writeJSON(w, http.StatusInsufficientStorage, map[string]any{
			"error": err.Error(), "inserted": inserted, "count": e.f.Count(),
		})
		bt.finish(s, http.StatusInsufficientStorage, len(keys), inserted)
		return
	}
	s.metrics.insertReqs.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"inserted": inserted, "count": e.f.Count(),
	})
	bt.finish(s, http.StatusOK, len(keys), inserted)
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	ctx, bt := s.beginBatch(r, "server.probe", "probe", name)
	if bt.id != "" {
		w.Header().Set("X-Trace-Id", bt.id)
	}
	pb := s.getBuffers()
	defer s.putBuffers(pb)
	keys, err := s.readKeys(r, pb)
	if err != nil {
		s.metrics.probeErrs.Inc()
		writeErr(w, http.StatusBadRequest, err)
		bt.finish(s, http.StatusBadRequest, 0, 0)
		return
	}
	start := time.Now()
	sel := e.f.ContainsBatchCtx(ctx, keys, pb.sel[:0])
	pb.sel = sel
	s.metrics.probeDur.Observe(time.Since(start).Nanoseconds())
	s.metrics.dataIn.Add(uint64(4 * len(keys)))
	s.metrics.dataOut.Add(uint64(4 * len(sel)))
	s.metrics.probeKeys.Add(uint64(len(keys)))
	s.metrics.probeReqs.Inc()
	e.m.probeKeys.Add(uint64(len(keys)))
	e.m.positives.Add(uint64(len(sel)))
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]any{
			"probed": len(keys), "positions": sel,
		})
		bt.finish(s, http.StatusOK, len(keys), len(sel))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Probed-Keys", fmt.Sprint(len(keys)))
	w.Header().Set("X-Selected", fmt.Sprint(len(sel)))
	w.WriteHeader(http.StatusOK)
	if err := writeU32s(w, sel); err != nil {
		// The status line is gone; aborting leaves the client a short
		// read (Content-Length mismatch / cut connection), but the
		// truncation must at least be visible server-side instead of
		// passing silently for a complete response. The request id makes
		// the aborted request greppable even when it was never sampled.
		s.log.Warn("probe selection stream aborted after write error",
			"filter", name, "err", err, "request_id", bt.requestID(s))
	}
	bt.finish(s, http.StatusOK, len(keys), len(sel))
}

// presizeHintCap bounds how much readKeys preallocates from the declared
// Content-Length alone. A client whose header lies high (say 16 MiB for a
// ten-byte body) gets its capacity hint clamped here; the buffer still
// grows to any true body size up to the batch limit.
const presizeHintCap = 1 << 20

// readKeys decodes the data-plane key batch into pb's pooled buffers: raw
// little-endian uint32s, or {"keys": [...]} when the request is JSON (the
// curl-friendly path, which allocates). The returned slice aliases pb and
// is valid until the buffers are put back.
func (s *Server) readKeys(r *http.Request, pb *probeBuffers) ([]perfilter.Key, error) {
	body := io.LimitReader(r.Body, s.maxBytes+1)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			Keys []perfilter.Key `json:"keys"`
		}
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return nil, fmt.Errorf("bad JSON key batch: %w", err)
		}
		return req.Keys, nil
	}
	// Presize from Content-Length so a typical batch is read without
	// doubling copies — but clamp the hint defensively: it is attacker
	// controlled and may bear no relation to the actual body.
	capHint := int64(64 << 10)
	if n := r.ContentLength; n > 0 {
		capHint = n + 1
	}
	if capHint > s.maxBytes+1 {
		capHint = s.maxBytes + 1
	}
	if capHint > presizeHintCap {
		capHint = presizeHintCap
	}
	if int64(cap(pb.raw)) < capHint {
		pb.raw = make([]byte, 0, capHint)
	}
	buf := bytes.NewBuffer(pb.raw[:0])
	if _, err := io.Copy(buf, body); err != nil {
		return nil, err
	}
	raw := buf.Bytes()
	pb.raw = raw[:0] // keep any growth for the next request
	if int64(len(raw)) > s.maxBytes {
		return nil, fmt.Errorf("batch exceeds %d bytes", s.maxBytes)
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("binary batch length %d is not a multiple of 4 (little-endian uint32 keys)", len(raw))
	}
	n := len(raw) / 4
	if cap(pb.keys) < n {
		pb.keys = make([]perfilter.Key, n)
	}
	keys := pb.keys[:n]
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	pb.keys = keys
	return keys, nil
}

// writeU32s streams values as little-endian uint32s. It returns the first
// write error — previously errors were swallowed mid-stream, leaving the
// client a silently truncated selection vector the caller never learned
// about.
func writeU32s(w io.Writer, vals []uint32) error {
	buf := make([]byte, 0, 4096)
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, v)
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// remaining is total-used clamped at zero: rounding-up re-accounting (the
// built size can exceed the reserved request) may push usage slightly
// past the budget, and the error message must not underflow.
func remaining(total, used uint64) uint64 {
	if used >= total {
		return 0
	}
	return total - used
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
