package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime/debug"
	"strings"
	"sync"
	"testing"

	"perfilter/internal/obs"
	"perfilter/internal/rng"
)

// tracesOut lets CI capture a real trace dump as a build artifact:
// go test ./internal/server -run TestProbeTraceEndToEnd -traces-out TRACE_sample.json
var tracesOut = flag.String("traces-out", "",
	"write the /v1/debug/traces body fetched by TestProbeTraceEndToEnd to this file")

// syncBuffer is a mutex-guarded bytes.Buffer usable as a slog sink from
// concurrent handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestProbeTraceEndToEnd is the issue's acceptance path: a probe batch
// carrying a W3C traceparent yields (a) the same trace id echoed in the
// response header and the slog access line, and (b) a root span in
// /v1/debug/traces whose per-shard children carry shard index and
// generation seq.
func TestProbeTraceEndToEnd(t *testing.T) {
	const (
		tid = "4bf92f3577b34da6a3ce929d0e0e4736"
		tp  = "00-" + tid + "-00f067aa0ba902b7-01"
	)
	// Rate 0: only the traceparent's sampled flag gets a span into the
	// ring, so the assertions below can't be satisfied by head sampling.
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 0, RingSize: 32})
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := httptest.NewServer(New(Options{Logger: logger, Tracer: tracer}).Handler())
	defer ts.Close()

	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "traced", Kind: "bloom", MBits: 1 << 20, Shards: 4,
	}, http.StatusCreated)
	r := rng.NewMT19937(77)
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	resp := postBinary(t, ts.URL+"/v1/filters/traced/insert", keys)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/filters/traced/probe",
		bytes.NewReader(leBytes(keys[:1024])))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("Traceparent", tp)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d", resp.StatusCode)
	}

	// (a) the trace id round-trips: response header and access line.
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id = %q, want the ingested %q", got, tid)
	}
	if logs := logBuf.String(); !strings.Contains(logs, "request_id="+tid) {
		t.Fatalf("access log lacks request_id=%s:\n%s", tid, logs)
	}

	// (b) the span tree landed in the debug ring with per-shard children.
	tresp, err := http.Get(ts.URL + "/v1/debug/traces?name=server.probe")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if err != nil || tresp.StatusCode != http.StatusOK {
		t.Fatalf("traces status %d err %v", tresp.StatusCode, err)
	}
	if *tracesOut != "" {
		if err := os.WriteFile(*tracesOut, body, 0o644); err != nil {
			t.Fatalf("write %s: %v", *tracesOut, err)
		}
	}
	var dump struct {
		Spans []struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
			Attrs   []struct {
				Key   string `json:"key"`
				Value any    `json:"value"`
			} `json:"attrs"`
			Children []struct {
				Name  string `json:"name"`
				Attrs []struct {
					Key   string `json:"key"`
					Value any    `json:"value"`
				} `json:"attrs"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	for _, sp := range dump.Spans {
		if sp.TraceID != tid {
			continue
		}
		if sp.Name != "server.probe" {
			t.Fatalf("root span name %q", sp.Name)
		}
		attrs := map[string]any{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["filter"] != "traced" || attrs["keys"] != float64(1024) {
			t.Fatalf("root attrs %v", attrs)
		}
		shards := 0
		for _, c := range sp.Children {
			if c.Name != "shard.probe" {
				continue
			}
			shards++
			child := map[string]any{}
			for _, a := range c.Attrs {
				child[a.Key] = a.Value
			}
			if _, ok := child["shard"]; !ok {
				t.Fatalf("shard.probe child lacks shard index: %v", child)
			}
			if _, ok := child["generation"]; !ok {
				t.Fatalf("shard.probe child lacks generation seq: %v", child)
			}
		}
		if shards == 0 {
			t.Fatal("root span has no shard.probe children")
		}
		return
	}
	t.Fatalf("no span with trace id %s in /v1/debug/traces", tid)
}

// TestReadyzLifecycle pins the liveness/readiness split: /healthz is
// always 200 while the process serves; /readyz refuses traffic while
// the data-dir restore is pending and while a migration is in flight.
func TestReadyzLifecycle(t *testing.T) {
	// No data dir: nothing to restore, ready from birth.
	s := newQuiet(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	out := doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusOK)
	if out["status"] != "ready" {
		t.Fatalf("readyz %v", out)
	}

	// A migration in flight flips readiness but not liveness.
	s.migrating.Add(1)
	out = doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusServiceUnavailable)
	if out["status"] != "migrating" {
		t.Fatalf("readyz during migration: %v", out)
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK)
	s.migrating.Add(-1)
	doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusOK)

	// With a data dir the server starts unready until LoadAll returns.
	s2 := newQuiet(Options{DataDir: t.TempDir()})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	out = doJSON(t, "GET", ts2.URL+"/readyz", nil, http.StatusServiceUnavailable)
	if out["status"] != "starting" {
		t.Fatalf("readyz before restore: %v", out)
	}
	doJSON(t, "GET", ts2.URL+"/healthz", nil, http.StatusOK) // alive all along
	if _, err := s2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	doJSON(t, "GET", ts2.URL+"/readyz", nil, http.StatusOK)
}

// TestStatsLatencyQuantiles pins the quantile surfacing in handleStats:
// after batch traffic, the filter's stats expose server-wide probe and
// insert p50/p95/p99 estimates.
func TestStatsLatencyQuantiles(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "lq", Kind: "bloom", MBits: 1 << 20, Shards: 2,
	}, http.StatusCreated)
	keys := make([]uint32, 2048)
	for i := range keys {
		keys[i] = uint32(i) * 2654435761
	}
	resp := postBinary(t, ts.URL+"/v1/filters/lq/insert", keys)
	resp.Body.Close()
	resp = postBinary(t, ts.URL+"/v1/filters/lq/probe", keys)
	resp.Body.Close()

	st := doJSON(t, "GET", ts.URL+"/v1/filters/lq", nil, http.StatusOK)
	lat, ok := st["latency_ns"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no latency_ns: %v", st)
	}
	for _, op := range []string{"probe", "insert"} {
		q, ok := lat[op].(map[string]any)
		if !ok {
			t.Fatalf("latency_ns lacks %s: %v", op, lat)
		}
		count, _ := q["count"].(float64)
		p50, _ := q["p50_ns"].(float64)
		p95, _ := q["p95_ns"].(float64)
		p99, _ := q["p99_ns"].(float64)
		if count < 1 {
			t.Errorf("%s quantiles with count %v", op, q["count"])
		}
		if p50 <= 0 || p50 > p95 || p95 > p99 {
			t.Errorf("%s quantiles not sane: p50 %g p95 %g p99 %g", op, p50, p95, p99)
		}
	}
}

// TestControlPlaneRequestID pins the cp wrapper: every control-plane
// response echoes an X-Trace-Id (the traceparent's trace id when one was
// sent, generated otherwise) and the debug access line carries it.
func TestControlPlaneRequestID(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := httptest.NewServer(New(Options{
		Logger: logger,
		Tracer: obs.NewTracer(obs.TracerOptions{RingSize: 8}),
	}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/filters")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	generated := resp.Header.Get("X-Trace-Id")
	if len(generated) != 32 {
		t.Fatalf("generated X-Trace-Id %q", generated)
	}
	if !strings.Contains(logBuf.String(), "request_id="+generated) {
		t.Fatalf("control-plane access line lacks request_id=%s:\n%s", generated, logBuf.String())
	}

	const tid = "aaaabbbbccccddddeeeeffff00001111"
	req, _ := http.NewRequest("GET", ts.URL+"/v1/filters", nil)
	req.Header.Set("Traceparent", "00-"+tid+"-00f067aa0ba902b7-00")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id = %q, want ingested %q", got, tid)
	}
}

// TestProbeUnsampledAllocParity is the issue's alloc gate at the server
// level: with a live tracer at rate 0 (the production steady state for
// the 99% of requests that aren't sampled), the probe handler allocates
// no more than with tracing disabled outright — instrumentation is free
// until a request is actually sampled.
func TestProbeUnsampledAllocParity(t *testing.T) {
	measure := func(tracer *obs.Tracer) float64 {
		s := newQuiet(Options{Tracer: tracer})
		h := s.Handler()
		// Register the filter through the real control plane so e.m and
		// the pooled buffers are in their production state.
		rec := httptest.NewRecorder()
		body, _ := json.Marshal(CreateRequest{Name: "par", Kind: "bloom", MBits: 1 << 20, Shards: 2})
		req := httptest.NewRequest("POST", "/v1/filters", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			t.Fatalf("create status %d", rec.Code)
		}
		keys := make([]uint32, 512)
		for i := range keys {
			keys[i] = uint32(i) * 2654435761
		}
		probe := leBytes(keys)
		br := bytes.NewReader(probe)
		return testing.AllocsPerRun(200, func() {
			br.Reset(probe)
			req := httptest.NewRequest("POST", "/v1/filters/par/probe", br)
			req.Header.Set("Content-Type", "application/octet-stream")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("probe status %d", rec.Code)
			}
		})
	}

	// Pools are GC-cleared; freezing GC keeps both runs comparable.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	disabled := measure(&obs.Tracer{}) // zero value: tracing off entirely
	unsampled := measure(obs.NewTracer(obs.TracerOptions{SampleRate: 0, RingSize: 32}))
	if unsampled > disabled+0.5 {
		t.Fatalf("unsampled tracing adds allocations on the probe path: %.1f/op vs %.1f/op disabled",
			unsampled, disabled)
	}
}
