package server

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"perfilter/internal/rng"
)

// metricsOut lets CI capture a real scrape as a build artifact:
// go test ./internal/server -run TestMetricsExposition -metrics-out METRICS_sample.txt
var metricsOut = flag.String("metrics-out", "",
	"write the /metrics body scraped by TestMetricsExposition to this file")

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition drives traffic through every instrumented layer —
// server batch plane, sharded rotation machinery, adaptive control loop —
// and asserts one /metrics scrape covers them all in well-formed
// Prometheus text exposition.
func TestMetricsExposition(t *testing.T) {
	ts := httptest.NewServer(newQuiet(Options{}).Handler())
	defer ts.Close()

	// A cuckoo filter at a tw where bloom wins, so the forced migration
	// below exercises the adaptive layer's migration counters too.
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "obsmx", Kind: "cuckoo", MBits: 1 << 21, Shards: 2, Tw: 100,
	}, http.StatusCreated)
	r := rng.NewMT19937(321)
	keys := make([]uint32, 20_000)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	resp := postBinary(t, ts.URL+"/v1/filters/obsmx/insert", keys)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	resp = postBinary(t, ts.URL+"/v1/filters/obsmx/probe", keys[:4096])
	resp.Body.Close()
	// Sharded layer: one rotation.
	doJSON(t, "POST", ts.URL+"/v1/filters/obsmx/rotate", map[string]any{}, http.StatusOK)
	// Adaptive layer: one forced kind-changing migration.
	out := doJSON(t, "POST", ts.URL+"/v1/filters/obsmx/migrate", map[string]any{"force": true}, http.StatusOK)
	if out["migrated"] != true {
		t.Fatalf("migrate: %v", out)
	}

	body := scrape(t, ts)
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(body), 0o644); err != nil {
			t.Fatalf("write %s: %v", *metricsOut, err)
		}
	}

	// One instrument per layer, HELP/TYPE plus a concrete series.
	for _, want := range []string{
		// server batch plane
		"# HELP perfilter_server_probe_duration_ns ",
		"# TYPE perfilter_server_probe_duration_ns histogram",
		"# TYPE perfilter_server_insert_duration_ns histogram",
		`perfilter_server_keys_total{op="insert"}`,
		`perfilter_server_keys_total{op="probe"}`,
		`perfilter_server_requests_total{op="probe",outcome="ok"}`,
		"perfilter_server_data_in_bytes_total ",
		"perfilter_server_data_out_bytes_total ",
		// server registry gauges and per-filter series
		"# TYPE perfilter_server_filters gauge",
		"perfilter_server_used_bits ",
		`perfilter_server_filter_probe_keys_total{filter="obsmx"}`,
		`perfilter_server_filter_probe_positives_total{filter="obsmx"}`,
		`perfilter_server_filter_insert_keys_total{filter="obsmx"}`,
		`perfilter_server_filter_shard_skew{filter="obsmx"}`,
		// sharded rotation machinery
		`perfilter_sharded_rotations_total{outcome="ok"}`,
		"# TYPE perfilter_sharded_rotation_duration_ns histogram",
		"# TYPE perfilter_sharded_dual_write_window_ns histogram",
		// adaptive control loop
		"# TYPE perfilter_adaptive_migrations_total counter",
		"perfilter_adaptive_migrations_total{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The per-filter series reflect this test's traffic (>= because the
	// registry is process-wide and a -count>1 rerun accumulates).
	checkSeriesAtLeast(t, body, `perfilter_server_filter_insert_keys_total{filter="obsmx"}`, uint64(len(keys)))
	checkSeriesAtLeast(t, body, `perfilter_server_filter_probe_keys_total{filter="obsmx"}`, 4096)

	// Histogram buckets must be cumulative (non-decreasing in le order,
	// the rendered order) and end at a +Inf equal to _count.
	checkHistogramShape(t, body, "perfilter_server_probe_duration_ns")
	checkHistogramShape(t, body, "perfilter_server_insert_duration_ns")
	checkHistogramShape(t, body, "perfilter_sharded_rotation_duration_ns")

	// Deleting the filter retires its per-name series.
	doJSON(t, "DELETE", ts.URL+"/v1/filters/obsmx", nil, http.StatusOK)
	if after := scrape(t, ts); strings.Contains(after, `{filter="obsmx"}`) {
		t.Error("per-filter series survived filter deletion")
	}
}

func checkSeriesAtLeast(t *testing.T, body, series string, min uint64) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(line, series+" "), 10, 64)
		if err != nil {
			t.Errorf("series %s: bad value in %q: %v", series, line, err)
			return
		}
		if v < min {
			t.Errorf("series %s = %d, want >= %d", series, v, min)
		}
		return
	}
	t.Errorf("series %s not found", series)
}

// checkHistogramShape verifies the exposition invariants of one rendered
// histogram: buckets non-decreasing, +Inf present, _count equal to the
// +Inf cumulative.
func checkHistogramShape(t *testing.T, body, name string) {
	t.Helper()
	var (
		prev      uint64
		inf       uint64
		infSeen   bool
		count     uint64
		countSeen bool
		buckets   int
	)
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("%s: bad bucket line %q: %v", name, line, err)
			}
			if val < prev {
				t.Errorf("%s: bucket counts decreased (%d after %d) at %q", name, val, prev, line)
			}
			prev = val
			buckets++
			if strings.Contains(line, `le="+Inf"`) {
				inf, infSeen = val, true
			}
		case strings.HasPrefix(line, name+"_count"):
			val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("%s: bad count line %q: %v", name, line, err)
			}
			count, countSeen = val, true
		}
	}
	if buckets == 0 {
		t.Errorf("histogram %s not found in exposition", name)
		return
	}
	if !infSeen {
		t.Errorf("histogram %s has no +Inf bucket", name)
	}
	if !countSeen {
		t.Errorf("histogram %s has no _count", name)
	}
	if infSeen && countSeen && inf != count {
		t.Errorf("histogram %s: +Inf bucket %d != _count %d", name, inf, count)
	}
}

// TestTraceEndpoint pins the decision-trace surface: after a migration
// the trace holds at least one Migrated decision with the ρ comparison
// fields, and the stats endpoint reports it as last_migration.
func TestTraceEndpoint(t *testing.T) {
	ts := httptest.NewServer(newQuiet(Options{}).Handler())
	defer ts.Close()
	doJSON(t, "POST", ts.URL+"/v1/filters", CreateRequest{
		Name: "traced", Kind: "cuckoo", MBits: 1 << 21, Shards: 2, Tw: 100,
	}, http.StatusCreated)

	// An empty trace is a valid response, not an error.
	tr := doJSON(t, "GET", ts.URL+"/v1/filters/traced/trace", nil, http.StatusOK)
	if tr["total"].(float64) != 0 {
		t.Fatalf("fresh filter trace total = %v", tr["total"])
	}

	r := rng.NewMT19937(55)
	keys := make([]uint32, 50_000)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	resp := postBinary(t, ts.URL+"/v1/filters/traced/insert", keys)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	resp = postBinary(t, ts.URL+"/v1/filters/traced/probe", keys[:8192])
	resp.Body.Close()

	out := doJSON(t, "POST", ts.URL+"/v1/filters/traced/migrate", map[string]any{"force": true}, http.StatusOK)
	if out["migrated"] != true {
		t.Fatalf("migrate: %v", out)
	}

	tr = doJSON(t, "GET", ts.URL+"/v1/filters/traced/trace", nil, http.StatusOK)
	if tr["name"] != "traced" {
		t.Fatalf("trace name %v", tr["name"])
	}
	total := tr["total"].(float64)
	decisions, _ := tr["decisions"].([]any)
	if total < 1 || len(decisions) < 1 {
		t.Fatalf("trace after migration: total %v, %d decisions", total, len(decisions))
	}
	if float64(len(decisions)) > total {
		t.Fatalf("retained %d decisions but total says %v", len(decisions), total)
	}
	migrated := false
	for _, raw := range decisions {
		d := raw.(map[string]any)
		for _, field := range []string{"at", "current", "best", "reason"} {
			if _, ok := d[field]; !ok {
				t.Fatalf("decision missing %q: %v", field, d)
			}
		}
		if d["migrated"] == true {
			migrated = true
		}
	}
	if !migrated {
		t.Fatal("no migrated decision in the trace after a forced migration")
	}

	// The stats endpoint surfaces the same event as last_migration.
	st := doJSON(t, "GET", ts.URL+"/v1/filters/traced", nil, http.StatusOK)
	lm, ok := st["last_migration"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no last_migration: %v", st)
	}
	if lm["from"] == nil || lm["to"] == nil || lm["at"] == nil {
		t.Fatalf("last_migration incomplete: %v", lm)
	}
	if _, ok := st["uptime_seconds"].(float64); !ok {
		t.Fatalf("stats has no uptime_seconds: %v", st)
	}

	doJSON(t, "GET", ts.URL+"/v1/filters/nope/trace", nil, http.StatusNotFound)
}

// TestHealthz pins the liveness payload: uptime plus build identity.
func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(newQuiet(Options{}).Handler())
	defer ts.Close()
	out := doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz status %v", out["status"])
	}
	if up, ok := out["uptime_seconds"].(float64); !ok || up < 0 {
		t.Fatalf("healthz uptime_seconds %v", out["uptime_seconds"])
	}
	gv, ok := out["go_version"].(string)
	if !ok || !strings.HasPrefix(gv, "go") {
		t.Fatalf("healthz go_version %v", out["go_version"])
	}
	if _, ok := out["vcs_revision"].(string); !ok {
		t.Fatalf("healthz vcs_revision %v", out["vcs_revision"])
	}
}

// TestPprofGated pins that the profiling surface is opt-in.
func TestPprofGated(t *testing.T) {
	off := httptest.NewServer(newQuiet(Options{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without -pprof: status %d", resp.StatusCode)
	}

	on := httptest.NewServer(newQuiet(Options{Pprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not mounted with Pprof: status %d", resp.StatusCode)
	}
}
