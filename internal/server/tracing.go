package server

// Request-scoped tracing and readiness for the HTTP surface: batch-plane
// root spans with W3C traceparent ingestion, control-plane request ids,
// the /v1/debug/traces and /metrics/history endpoints, and the
// liveness/readiness split.
//
// The batch plane is the hot path, so its instrumentation is shaped by
// the zero-allocation budget (TestProbeUnsampledAllocParity pins it):
// an unsampled request with no traceparent and debug logging off takes
// one atomic sampling decision and carries a nil span — no id is
// generated, no header is written, no log line is built. Ids come into
// existence lazily, exactly when something will consume them: the
// request was sampled, the client sent a traceparent, debug access
// logging is enabled, or an error path needs a greppable identity.

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"perfilter/internal/obs"
)

// batchTrace carries one data-plane request's tracing state between
// beginBatch and finish. Value type: it lives on the handler's stack.
type batchTrace struct {
	name   string // root span name: "server.probe" | "server.insert"
	op     string // "probe" | "insert"
	filter string
	start  time.Time
	tp     string // raw traceparent header ("" for none)
	span   *obs.Span
	id     string // request/trace id; "" until something needs one
}

// beginBatch makes the sampling decision for one batch-plane request and
// resolves the request id if anything will consume it. The returned
// context carries the root span when sampled. name and op are both
// passed as constants: deriving one from the other would concatenate a
// string on the zero-alloc path.
func (s *Server) beginBatch(r *http.Request, name, op, filter string) (context.Context, batchTrace) {
	bt := batchTrace{
		name:   name,
		op:     op,
		filter: filter,
		start:  time.Now(),
		// The pre-canonicalized key avoids textproto's canonicalization
		// allocation on the zero-alloc path.
		tp: r.Header.Get("Traceparent"),
	}
	ctx, sp := s.tracer.StartRoot(r.Context(), name, bt.tp)
	bt.span = sp
	switch {
	case sp != nil:
		bt.id = sp.TraceIDString()
	case bt.tp != "":
		if id, ok := obs.TraceparentID(bt.tp); ok {
			bt.id = id
		}
	}
	if bt.id == "" && s.log.Enabled(r.Context(), slog.LevelDebug) {
		bt.id = s.tracer.GenIDString()
	}
	return ctx, bt
}

// requestID returns the request id, generating one on first use — the
// error-path hook: a mid-stream write failure must log a greppable id
// even for a request that never had one.
func (bt *batchTrace) requestID(s *Server) string {
	if bt.id == "" {
		bt.id = s.tracer.GenIDString()
	}
	return bt.id
}

// finish completes the request's trace: ends the sampled span (with
// outcome attrs), or — for unsampled requests — captures a post-hoc
// slow span when the duration breaches the tracer's threshold, and
// emits the debug access line.
func (bt *batchTrace) finish(s *Server, status, keys, out int) {
	durNs := time.Since(bt.start).Nanoseconds()
	if bt.span != nil {
		bt.span.SetAttr("filter", bt.filter)
		bt.span.SetAttr("status", status)
		bt.span.SetAttr("keys", keys)
		bt.span.SetAttr("out", out)
		bt.span.End()
	} else if slow := s.tracer.SlowNs(); slow > 0 && durNs > slow {
		var tid obs.TraceID
		if t, _, _, ok := obs.ParseTraceparent(bt.tp); ok {
			tid = t
		}
		s.tracer.RecordSlow(bt.name, tid, bt.start, durNs,
			obs.Attr{Key: "filter", Value: bt.filter},
			obs.Attr{Key: "status", Value: status},
			obs.Attr{Key: "keys", Value: keys},
			obs.Attr{Key: "out", Value: out})
	}
	if bt.id != "" {
		s.log.Debug("request",
			"op", bt.op, "filter", bt.filter, "status", status,
			"keys", keys, "out", out, "duration_ns", durNs,
			"request_id", bt.id)
	}
}

// histQuantiles renders one latency histogram's headline quantiles for
// handleStats.
func histQuantiles(h *obs.Histogram) map[string]any {
	return map[string]any{
		"count":  h.Count(),
		"p50_ns": h.Quantile(0.50),
		"p95_ns": h.Quantile(0.95),
		"p99_ns": h.Quantile(0.99),
	}
}

// statusWriter captures the status code a wrapped handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// cp wraps a control-plane handler with request identity: every request
// gets an id (the traceparent's trace id when one was sent, generated
// otherwise), echoed in X-Trace-Id and logged in a debug access line.
// Control-plane traffic is cold, so unconditional id generation is fine
// here — only the batch plane earns the lazy treatment.
func (s *Server) cp(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, ok := obs.TraceparentID(r.Header.Get("Traceparent"))
		if !ok {
			id = s.tracer.GenIDString()
		}
		w.Header().Set("X-Trace-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.log.Debug("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"duration_ns", time.Since(start).Nanoseconds(),
			"request_id", id)
	}
}

// handleReadyz is the readiness probe, split from /healthz liveness: a
// starting server still restoring its DataDir, or one mid-migration
// (rebuilding a filter under the dual-write window), is alive but
// should not receive fresh traffic yet.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting", "reason": "data dir restore in progress",
		})
	case s.migrating.Load() > 0:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "migrating", "migrations_in_flight": s.migrating.Load(),
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

// StartHistory launches the background metrics self-scraper: one
// registry snapshot every interval into the fixed ring behind
// GET /metrics/history. When the server was built with TraceAutoSlow,
// each scrape also re-derives the tracer's slow-capture threshold as
// 2x the probe plane's live p99 — the "latency > p99x2" rule from the
// tracing design, tracking the workload instead of a hand-set constant.
func (s *Server) StartHistory(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	go func() {
		s.history.Scrape() // prime the delta baseline
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.history.Scrape()
				if s.traceAutoSlow {
					if p99 := s.metrics.probeDur.Quantile(0.99); p99 > 0 {
						s.tracer.SetSlowNs(int64(2 * p99))
					}
				}
			}
		}
	}()
}
