package server

import (
	"perfilter/internal/obs"
)

// Metric names exported by the server layer. The sharded and adaptive
// layers register their own instruments on the same process-wide
// registry (see internal/sharded and the root adaptive control loop),
// so one GET /metrics scrape covers every layer.
const (
	metricInsertDur   = "perfilter_server_insert_duration_ns"
	metricProbeDur    = "perfilter_server_probe_duration_ns"
	metricKeysIn      = "perfilter_server_keys_total"
	metricDataIn      = "perfilter_server_data_in_bytes_total"
	metricDataOut     = "perfilter_server_data_out_bytes_total"
	metricRequests    = "perfilter_server_requests_total"
	metricFilterProbe = "perfilter_server_filter_probe_keys_total"
	metricFilterPos   = "perfilter_server_filter_probe_positives_total"
	metricFilterIns   = "perfilter_server_filter_insert_keys_total"
	metricShardSkew   = "perfilter_server_filter_shard_skew"
	metricFilters     = "perfilter_server_filters"
	metricUsedBits    = "perfilter_server_used_bits"
	metricSnapshots   = "perfilter_server_snapshot_saves_total"
	metricRestores    = "perfilter_server_snapshot_loads_total"
)

// serverMetrics holds the batch-plane instruments resolved once at
// construction, so the insert/probe hot path is two atomic histogram
// observes and a few counter adds — no registry lookups, no
// allocations.
type serverMetrics struct {
	reg *obs.Registry

	insertDur *obs.Histogram // filter InsertBatch wall time per request
	probeDur  *obs.Histogram // filter ContainsBatch wall time per request

	insertKeys *obs.Counter // keys submitted on the insert plane
	probeKeys  *obs.Counter // keys probed on the probe plane
	dataIn     *obs.Counter // decoded data-plane payload bytes in
	dataOut    *obs.Counter // selection-vector payload bytes out

	insertReqs *obs.Counter // insert requests, by outcome
	insertErrs *obs.Counter
	probeReqs  *obs.Counter // probe requests, by outcome
	probeErrs  *obs.Counter

	snapshotOK  *obs.Counter // snapshot saves, by outcome
	snapshotErr *obs.Counter
	restoreOK   *obs.Counter // snapshot loads, by outcome
	restoreErr  *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		insertDur: reg.Histogram(metricInsertDur,
			"Wall time of the filter InsertBatch call serving one insert request."),
		probeDur: reg.Histogram(metricProbeDur,
			"Wall time of the filter ContainsBatch call serving one probe request."),
		insertKeys: reg.Counter(metricKeysIn,
			"Keys processed on the binary/JSON data plane, by operation.", "op", "insert"),
		probeKeys: reg.Counter(metricKeysIn,
			"Keys processed on the binary/JSON data plane, by operation.", "op", "probe"),
		dataIn: reg.Counter(metricDataIn,
			"Decoded data-plane payload bytes received (4 bytes per key)."),
		dataOut: reg.Counter(metricDataOut,
			"Selection-vector payload bytes sent (4 bytes per selected position)."),
		insertReqs: reg.Counter(metricRequests,
			"Data-plane requests, by operation and outcome.", "op", "insert", "outcome", "ok"),
		insertErrs: reg.Counter(metricRequests,
			"Data-plane requests, by operation and outcome.", "op", "insert", "outcome", "error"),
		probeReqs: reg.Counter(metricRequests,
			"Data-plane requests, by operation and outcome.", "op", "probe", "outcome", "ok"),
		probeErrs: reg.Counter(metricRequests,
			"Data-plane requests, by operation and outcome.", "op", "probe", "outcome", "error"),
		snapshotOK: reg.Counter(metricSnapshots,
			"Filter snapshot saves, by outcome.", "outcome", "ok"),
		snapshotErr: reg.Counter(metricSnapshots,
			"Filter snapshot saves, by outcome.", "outcome", "error"),
		restoreOK: reg.Counter(metricRestores,
			"Filter snapshot restores at startup, by outcome.", "outcome", "ok"),
		restoreErr: reg.Counter(metricRestores,
			"Filter snapshot restores at startup, by outcome.", "outcome", "error"),
	}
}

// filterMetrics is one registered filter's per-name series, resolved at
// create/restore time and dropped at delete time so the exposition
// tracks the live registry. The positive-rate pair (positives/probes)
// is the live FPR⋅σ estimate the paper's cost model consumes.
type filterMetrics struct {
	probeKeys  *obs.Counter
	positives  *obs.Counter
	insertKeys *obs.Counter
}

// registerFilter creates (or re-attaches, for a recreated name) the
// per-filter series, including the shard-skew gauge, which is evaluated
// against the live filter at scrape time.
func (m *serverMetrics) registerFilter(name string, f skewer) *filterMetrics {
	fm := &filterMetrics{
		probeKeys: m.reg.Counter(metricFilterProbe,
			"Keys probed against this filter.", "filter", name),
		positives: m.reg.Counter(metricFilterPos,
			"Positive (maybe-contained) probe answers from this filter — with "+
				"probe keys, the live positive-rate estimate.", "filter", name),
		insertKeys: m.reg.Counter(metricFilterIns,
			"Keys inserted into this filter.", "filter", name),
	}
	m.reg.GaugeFunc(metricShardSkew,
		"Per-shard insert imbalance, max/mean (1 = even).",
		f.Skew, "filter", name)
	return fm
}

// unregisterFilter drops the per-filter series.
func (m *serverMetrics) unregisterFilter(name string) {
	m.reg.Remove(metricFilterProbe, "filter", name)
	m.reg.Remove(metricFilterPos, "filter", name)
	m.reg.Remove(metricFilterIns, "filter", name)
	m.reg.Remove(metricShardSkew, "filter", name)
}

// skewer is the slice of the adaptive filter the skew gauge needs.
type skewer interface{ Skew() float64 }

// registerRegistryGauges exports the server's registry-level state as
// callback gauges: filter count and reserved bits (the memory budget's
// numerator). Callbacks read live state at scrape time.
func (m *serverMetrics) registerRegistryGauges(s *Server) {
	m.reg.GaugeFunc(metricFilters,
		"Registered filters.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			n := 0
			for _, e := range s.filters {
				if e.f != nil {
					n++
				}
			}
			return float64(n)
		})
	m.reg.GaugeFunc(metricUsedBits,
		"Bits reserved against the memory budget across all filters.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.usedBits)
		})
}
