package server

import (
	"net/http"
	"strings"
	"testing"

	"perfilter"
)

// The kind vocabulary of the create and migrate paths is derived from the
// filter registry: an unknown kind is rejected with 400 and the error
// enumerates every registered constructible family, so clients learn the
// valid names from the failure itself.
func TestUnknownKindEnumeratesValidKinds(t *testing.T) {
	ts := newTestServer(t)

	wantKinds := perfilter.KindNames()
	if len(wantKinds) == 0 {
		t.Fatal("registry reports no constructible kinds")
	}

	check := func(t *testing.T, body map[string]any) {
		t.Helper()
		msg, _ := body["error"].(string)
		if !strings.Contains(msg, `unknown kind "quotient"`) {
			t.Fatalf("error %q does not name the rejected kind", msg)
		}
		for _, k := range wantKinds {
			if !strings.Contains(msg, k) {
				t.Errorf("error %q does not list registered kind %q", msg, k)
			}
		}
	}

	t.Run("create", func(t *testing.T) {
		body := doJSON(t, "POST", ts.URL+"/v1/filters",
			CreateRequest{Name: "badkind", Kind: "quotient", MBits: 1 << 16},
			http.StatusBadRequest)
		check(t, body)
	})

	t.Run("migrate", func(t *testing.T) {
		doJSON(t, "POST", ts.URL+"/v1/filters",
			CreateRequest{Name: "mig", MBits: 1 << 16}, http.StatusCreated)
		body := doJSON(t, "POST", ts.URL+"/v1/filters/mig/migrate",
			MigrateRequest{Kind: "quotient"}, http.StatusBadRequest)
		check(t, body)
	})
}

// Every registered family name creates successfully with only its
// registry defaults, and the reported kind round-trips through the
// registry's canonical names.
func TestCreateEveryRegisteredKind(t *testing.T) {
	ts := newTestServer(t)
	for _, kind := range perfilter.KindNames() {
		body := doJSON(t, "POST", ts.URL+"/v1/filters",
			CreateRequest{Name: "k-" + kind, Kind: kind, MBits: 1 << 16},
			http.StatusCreated)
		if got, _ := body["kind"].(string); got != kind {
			t.Errorf("create kind %q: reported kind %q", kind, got)
		}
	}
}
