//go:build race

package sharded

// raceEnabled reports whether the race detector is active: sync.Pool
// intentionally drops a fraction of Puts under -race, so allocation
// gates are meaningless there.
const raceEnabled = true
