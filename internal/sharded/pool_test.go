package sharded

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"perfilter/internal/rng"
)

// bigBatch returns a deterministic batch of at least parallelBatchMin
// keys, large enough to take the pooled gather path.
func bigBatch(seed uint32, n int) []Key {
	r := rng.NewMT19937(seed)
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	return keys
}

func TestPooledBatchMatchesSequential(t *testing.T) {
	f, err := New(exactFactory, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetPoolSize(3) // force real workers even on a 1-CPU host
	keys := bigBatch(1, 2*parallelBatchMin)
	inserted, err := f.InsertBatch(keys[:parallelBatchMin])
	if err != nil {
		t.Fatal(err)
	}
	if inserted != parallelBatchMin {
		t.Fatalf("inserted %d of %d", inserted, parallelBatchMin)
	}
	sel := f.ContainsBatch(keys, nil)
	// The inner filters are exact sets, so the pooled gather must report
	// exactly the inserted prefix (rng duplicates aside, positions past
	// the prefix can only be hits if their key repeats an inserted one).
	seen := map[Key]bool{}
	for _, k := range keys[:parallelBatchMin] {
		seen[k] = true
	}
	j := 0
	for i, k := range keys {
		want := seen[k]
		got := j < len(sel) && sel[j] == uint32(i)
		if got != want {
			t.Fatalf("position %d: pooled=%v want=%v", i, got, want)
		}
		if got {
			j++
		}
	}
	// And byte-identical to the sequential fallback.
	f.Close()
	seq := f.ContainsBatch(keys, nil)
	if len(seq) != len(sel) {
		t.Fatalf("sequential fallback: %d hits, pooled %d", len(seq), len(sel))
	}
	for i := range seq {
		if seq[i] != sel[i] {
			t.Fatalf("position %d: sequential %d, pooled %d", i, seq[i], sel[i])
		}
	}
}

// settledWorkers waits for the global live-worker count to stop moving
// (worker exits are asynchronous after close(quit)) and returns the
// stable value, so tests can assert deltas against a quiescent baseline.
func settledWorkers(t *testing.T) int64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	last := liveWorkers.Load()
	stableSince := time.Now()
	for time.Since(stableSince) < 100*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatalf("live-worker count never settled (now %d)", last)
		}
		time.Sleep(time.Millisecond)
		if cur := liveWorkers.Load(); cur != last {
			last = cur
			stableSince = time.Now()
		}
	}
	return last
}

// waitWorkers waits until the live-worker count reaches want.
func waitWorkers(t *testing.T, want int64, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for liveWorkers.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d live workers, want %d", msg, liveWorkers.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolLifecycle pins the teardown contract: SetPoolSize replaces
// workers, Close releases them (observably, via the live-worker count),
// is idempotent, and leaves the filter fully usable on the sequential
// fallback.
func TestPoolLifecycle(t *testing.T) {
	base := settledWorkers(t)
	f, err := New(exactFactory, 8)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPoolSize(3)
	if got := liveWorkers.Load(); got != base+3 {
		t.Fatalf("live workers after SetPoolSize(3): %d, want %d", got, base+3)
	}
	if got := f.PoolWorkers(); got != 3 {
		t.Fatalf("PoolWorkers = %d, want 3", got)
	}
	f.SetPoolSize(2) // replaces: old 3 exit, new 2 spawn
	f.Close()
	f.Close() // idempotent
	waitWorkers(t, base, "after Close")
	if got := f.PoolWorkers(); got != 0 {
		t.Fatalf("PoolWorkers after Close = %d, want 0", got)
	}
	// Closed filter still serves batches (caller's goroutine).
	keys := bigBatch(2, parallelBatchMin)
	if _, err := f.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	if got := len(f.ContainsBatch(keys, nil)); got != len(keys) {
		t.Fatalf("after Close: %d hits of %d", got, len(keys))
	}
}

// TestPoolUnderRotateMigrateReset drives pooled probes and inserts
// concurrently with generation swaps (Rotate with the same and with a
// different factory — a migration — plus Reset), then closes the pool
// and verifies no workers are stranded. Run under -race this is also the
// pool's memory-safety test: a worker observing a stale generation or a
// recycled job mid-rewrite would trip the detector.
func TestPoolUnderRotateMigrateReset(t *testing.T) {
	base := settledWorkers(t)
	f, err := New(bloomFactory(1<<16), 8)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPoolSize(3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	keys := bigBatch(3, parallelBatchMin)
	worker(func(i int) { // pooled probes
		sel := f.ContainsBatch(keys, make([]uint32, 0, len(keys)))
		_ = sel
	})
	worker(func(i int) { // pooled inserts
		if _, err := f.InsertBatch(keys); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	worker(func(i int) { // rotations, alternating configuration (migration)
		factory := bloomFactory(1 << 16)
		if i%2 == 1 {
			factory = bloomFactory(1 << 17)
		}
		if err := f.Rotate(factory, nil); err != nil {
			t.Errorf("rotate: %v", err)
		}
		if i%5 == 4 {
			f.Reset()
		}
	})
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Probes still coherent after the churn.
	if _, err := f.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	if got := len(f.ContainsBatch(keys, nil)); got != len(keys) {
		t.Fatalf("lost keys after churn: %d hits of %d", got, len(keys))
	}
	f.Close()
	waitWorkers(t, base, "after churn")
}

// TestPooledContainsBatchZeroAllocs is the hot-path allocation gate: at
// parallelBatchMin with live workers, a pooled probe batch must not
// allocate — the job, its completion channel, the scratch and the
// per-shard selections are all recycled.
func TestPooledContainsBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc gate runs without -race")
	}
	f, err := New(exactFactory, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetPoolSize(2)
	keys := bigBatch(4, parallelBatchMin)
	if _, err := f.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	sel := make([]uint32, 0, len(keys))
	for i := 0; i < 10; i++ { // warm the scratch, job and psel pools
		sel = f.ContainsBatch(keys, sel[:0])
	}
	avg := testing.AllocsPerRun(100, func() {
		sel = f.ContainsBatch(keys, sel[:0])
	})
	if avg != 0 {
		t.Fatalf("pooled ContainsBatch allocates %.1f/op, want 0", avg)
	}
}

// TestScratchRetentionCap: a spike batch above maxScratchKeys must not
// pin its buffers in the scratch pool.
func TestScratchRetentionCap(t *testing.T) {
	f, err := New(exactFactory, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spike := bigBatch(5, maxScratchKeys+1)
	f.ContainsBatch(spike, make([]uint32, 0, len(spike)))
	// The spike's scratch was discarded on Put, so the pool hands out
	// nothing sized by it.
	if sc, _ := f.scratch.Get().(*batchScratch); sc != nil {
		t.Fatalf("spike scratch (cap %d keys) was retained", cap(sc.ids))
	}
	// The cap gates on the per-key buffer high-water mark directly too.
	big := &batchScratch{ids: make([]uint16, maxScratchKeys+1)}
	f.putScratch(big)
	if sc, _ := f.scratch.Get().(*batchScratch); sc == big {
		t.Fatal("putScratch retained an over-cap scratch")
	}
}

// BenchmarkShardedContainsBatch measures the pooled scatter/gather probe
// at the parallel threshold — the acceptance benchmark for the
// persistent-pool hot path (allocs/op must stay 0).
func BenchmarkShardedContainsBatch(b *testing.B) {
	for _, workers := range []int{0, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			f, err := New(bloomFactory(1<<20), 8)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			f.SetPoolSize(workers)
			keys := bigBatch(6, parallelBatchMin)
			if _, err := f.InsertBatch(keys); err != nil {
				b.Fatal(err)
			}
			sel := make([]uint32, 0, len(keys))
			sel = f.ContainsBatch(keys, sel[:0])
			b.SetBytes(int64(len(keys) * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel = f.ContainsBatch(keys, sel[:0])
			}
		})
	}
}
