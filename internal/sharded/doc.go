// Package sharded partitions any batched filter across P hash-selected
// shards so that inserts scale with cores instead of serializing on one
// lock, while batched lookups keep the paper's selection-vector contract.
//
// The paper's cost model ρ(F) = tl(F) + f(F)·tw treats the filter as a
// single-threaded object; every kernel in this repository is safe for
// concurrent readers but requires external synchronization for writes. At
// service scale (the ROADMAP's "millions of users" north star) a single
// writer lock caps insert throughput at one core. This package restores
// multi-core scaling the standard way high-throughput hash structures do:
//
//   - Partitioning. Each key is assigned to one of P shards (P a power of
//     two) by the top bits of an independent multiplicative hash — a
//     different odd constant than the filters consume internally, so shard
//     selection does not bias the bits a shard's kernel uses and each
//     shard's false-positive behaviour matches a standalone filter of the
//     same size.
//   - Per-shard locks. Every shard pairs its filter with a sync.RWMutex.
//     Writers contend only 1/P of the time; readers proceed in parallel.
//   - Scatter/gather batches. ContainsBatch partitions the probe batch by
//     shard (one counting-sort pass), probes shards — in parallel for
//     large batches — and merges per-shard hits back into one
//     position-preserving, ascending selection vector: byte-identical to
//     probing the same P filters sequentially, and to the scalar Contains
//     path.
//   - Generation rotation. The shard array lives behind an
//     atomic.Pointer. Rotate builds a complete replacement generation off
//     to the side (optionally pre-filled by the caller while readers keep
//     hitting the old generation) and swaps it in with one atomic store,
//     so a filter can be resized or rebuilt under live traffic with no
//     stop-the-world pause.
//   - Lossless writes across rotations. While a rotation is staging, a
//     second atomic pointer publishes the staging generation as a
//     dual-write target; writers re-check it (and the current generation)
//     after every insert as their final step, so a write that observes
//     the rotation survives the swap instead of vanishing with the
//     retiring generation, and a write that predates it is the rotation
//     fill's to replay (see Rotate for the key-log recipe that makes the
//     combination airtight).
//   - Snapshots. Snapshot serializes every shard (under the rotation
//     lock) through a caller-supplied codec and Restore rebuilds the
//     filter, which is how the filter server persists across restarts.
//   - Build-once shards. A staged shard implementing Sealer (the
//     xor/fuse family) is sealed — its buffered fill keys solved into a
//     probe table — after the rotation's fill completes and before the
//     swap, under the shard's write lock; dual-writes racing the seal
//     take the shard's overflow path, so the no-false-negative contract
//     survives the window.
//
// The package is deliberately generic over an Inner interface rather than
// depending on the root perfilter package (which would be an import
// cycle); perfilter.NewSharded wires the two together, and internal/bench
// reuses the same wrapper for the parallel-throughput experiments.
package sharded
