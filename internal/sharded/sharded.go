package sharded

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"perfilter/internal/core"
	"perfilter/internal/hashing"
	"perfilter/internal/obs"
)

// Rotation instrumentation, on the process-wide registry: rotations are
// the sharded layer's only slow path, and their durations — especially
// the dual-write window, during which every insert pays double — are
// exactly what an operator needs to see before trusting live migration
// under load. Aggregated across filters; the server adds per-filter
// series where the distinction matters.
var (
	mRotations = obs.Default.Counter("perfilter_sharded_rotations_total",
		"Completed generation rotations (including migrations), by outcome.", "outcome", "ok")
	mRotationAborts = obs.Default.Counter("perfilter_sharded_rotations_total",
		"Completed generation rotations (including migrations), by outcome.", "outcome", "error")
	mRotationDur = obs.Default.Histogram("perfilter_sharded_rotation_duration_ns",
		"Wall time of one generation rotation, construction through swap.")
	mSealDur = obs.Default.Histogram("perfilter_sharded_seal_duration_ns",
		"Wall time sealing build-once (xor/fuse) shards inside a rotation.")
	mDualWriteDur = obs.Default.Histogram("perfilter_sharded_dual_write_window_ns",
		"Length of the dual-write window: staging published until staging cleared.")
)

// Key is the key type shared with the rest of the repository.
type Key = core.Key

// MaxShards bounds the shard count; beyond this, per-shard fixed costs
// (locks, scatter bookkeeping) dominate any contention win.
const MaxShards = 1024

// parallelBatchMin is the batch length below which scatter/gather probes
// the shards sequentially: goroutine handoff costs more than it saves on
// small batches (the vectorized pipelines' default batch is 1024 keys).
const parallelBatchMin = 4 * core.DefaultBatch

// Inner is the per-shard filter contract: the root package's Filter
// method set, restated locally so this package does not import perfilter
// (which imports this package). Any perfilter.Filter satisfies it.
type Inner interface {
	Insert(key Key) error
	Contains(key Key) bool
	ContainsBatch(keys []Key, sel core.SelVec) core.SelVec
	SizeBits() uint64
	FPR(n uint64) float64
	Reset()
	String() string
}

// Factory builds one shard's filter. It is called P times per generation;
// each call must return a fresh, empty filter.
type Factory func() (Inner, error)

// Sealer is implemented by build-once shards (the xor/fuse family): after
// a rotation's fill completes, Rotate calls Seal on every staged shard
// that implements it — under the shard's write lock, before the swap — so
// the new generation goes live with solved tables. Inserts that race the
// seal (the dual-write window stays open until after the swap) land in
// the shard's post-seal overflow path, preserving the no-false-negative
// contract.
type Sealer interface {
	Seal() error
}

// shard pairs one partition's filter with its lock. count is guarded by mu.
type shard struct {
	mu    sync.RWMutex
	f     Inner
	count uint64
}

// generation is one immutable shard array. The slice and the shard
// pointers never change after construction; only the filters behind the
// per-shard locks do. Readers load the current generation once per
// operation and never observe a torn rotation.
type generation struct {
	shards []*shard
	seq    uint64 // public rotation number (Generation); +1 per successful Rotate
	// id orders generations for the dual-write re-check loops. Unlike seq
	// it is consumed even by rotations whose fill errors out, so a
	// staging generation that was discarded can never share an id with a
	// later successful one — the writer loop's "newest generation holding
	// the key" comparison stays sound across aborted rotations.
	id uint64
}

// Filter is a hash-partitioned, concurrency-safe wrapper around P Inner
// filters. All methods are safe for concurrent use.
type Filter struct {
	gen atomic.Pointer[generation]
	// staging is non-nil only inside a Rotate's dual-write window: from
	// the moment the replacement generation exists until just after the
	// swap. Writers that observe it insert into both the retiring and the
	// staging generation, so an insert acknowledged during a rotation is
	// never lost to the swap (see Insert and Rotate).
	staging  atomic.Pointer[generation]
	lg       uint32 // log2(len(shards))
	factory  Factory
	rotateMu sync.Mutex // serializes Rotate, Reset and Snapshot
	lastID   uint64     // last generation id handed out; guarded by rotateMu
	scratch  sync.Pool  // *batchScratch, reused across ContainsBatch calls
	// pl is the persistent gather worker pool (pool.go), created lazily
	// by the first batch large enough to fan out; poolMu serializes its
	// creation and replacement (SetPoolSize, Close).
	pl     atomic.Pointer[pool]
	poolMu sync.Mutex
}

// batchScratch holds one ContainsBatch call's scatter/gather buffers; it
// is pooled so steady-state probing does not allocate.
type batchScratch struct {
	ids     []uint16   // per-key shard id
	offsets []uint32   // per-shard run boundaries (len P+1)
	cursor  []uint32   // scatter cursors (len P)
	skeys   []Key      // keys grouped by shard
	sidx    []uint32   // original position of each scattered key
	hits    []bool     // per-position match flags
	psel    [][]uint32 // per-shard selection buffers
}

// maxScratchKeys caps the batch size whose buffers are returned to the
// scratch pool: sync.Pool never shrinks its entries, so without the cap
// one giant batch would pin its oversized buffers for the Filter's
// lifetime. Oversized scratch is simply dropped for the GC; the next
// normal batch allocates working-set-sized buffers again. 64Ki keys is
// ~1.2 MiB of scratch — far above the batch plane's sizes, so steady
// traffic never hits the cap.
const maxScratchKeys = 1 << 16

// putScratch returns sc to the pool unless its buffers exceed the
// retention cap (cap(ids) is the high-water batch length all per-key
// buffers were sized by).
func (f *Filter) putScratch(sc *batchScratch) {
	if cap(sc.ids) > maxScratchKeys {
		return
	}
	f.scratch.Put(sc)
}

// resizeScatter prepares the buffers both batch paths share (the
// counting-sort scatter); InsertBatch needs nothing more.
func (sc *batchScratch) resizeScatter(n, p int) {
	if cap(sc.ids) < n {
		sc.ids = make([]uint16, n)
		sc.skeys = make([]Key, n)
	}
	sc.ids = sc.ids[:n]
	sc.skeys = sc.skeys[:n]
	if cap(sc.offsets) < p+1 {
		sc.offsets = make([]uint32, p+1)
		sc.cursor = make([]uint32, p)
	}
	sc.offsets = sc.offsets[:p+1]
	sc.cursor = sc.cursor[:p]
	clear(sc.offsets)
}

// resizeGather additionally prepares the probe-only buffers (position
// mapping, hit flags, per-shard selections).
func (sc *batchScratch) resizeGather(n, p int) {
	sc.resizeScatter(n, p)
	if cap(sc.sidx) < n {
		sc.sidx = make([]uint32, n)
		sc.hits = make([]bool, n)
	}
	sc.sidx = sc.sidx[:n]
	sc.hits = sc.hits[:n]
	clear(sc.hits)
	if cap(sc.psel) < p {
		sc.psel = make([][]uint32, p)
	}
	sc.psel = sc.psel[:p]
}

// New builds a sharded filter with the given shard count (rounded up to a
// power of two, clamped to [1, MaxShards]) by calling factory once per
// shard.
func New(factory Factory, shards int) (*Filter, error) {
	if factory == nil {
		return nil, fmt.Errorf("sharded: nil factory")
	}
	p := ceilPow2(shards)
	f := &Filter{factory: factory, lg: log2(p)}
	g, err := newGeneration(factory, p, 0, 0)
	if err != nil {
		return nil, err
	}
	f.gen.Store(g)
	return f, nil
}

func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SplitBits resolves a requested (total size, shard count) pair the way
// New will: the count rounded up to a power of two within [1, MaxShards],
// and the total split by ceiling division, so P shards of perShard bits
// always cover at least mBits (per-shard constructors then round up
// further to their own addressing granularity). Callers building
// per-shard factories use it so their arithmetic cannot drift from the
// wrapper's.
func SplitBits(mBits uint64, shards int) (perShard uint64, p int) {
	p = ceilPow2(shards)
	return (mBits + uint64(p) - 1) / uint64(p), p
}

// minKeysPerShard keeps Recommend from splitting below the point where
// per-shard fixed overheads (lock words, scatter bookkeeping, size
// rounding) outweigh contention relief.
const minKeysPerShard = 1 << 12

// Recommend returns a shard count for a filter expected to hold n keys
// with the given number of concurrent writers: the smallest power of two
// giving every writer 4 lock stripes (the standard striped-lock rule of
// thumb), capped so each shard still holds at least minKeysPerShard keys,
// and by MaxShards. A single writer gets 1: there is no contention to
// relieve, and an unsharded filter has strictly cheaper lookups.
func Recommend(n uint64, writers int) int {
	if writers <= 1 {
		return 1
	}
	p := 1
	for p < 4*writers && p < MaxShards {
		p <<= 1
	}
	for p > 1 && n/uint64(p) < minKeysPerShard {
		p >>= 1
	}
	return p
}

func log2(p int) uint32 {
	var lg uint32
	for 1<<lg < p {
		lg++
	}
	return lg
}

func newGeneration(factory Factory, p int, seq, id uint64) (*generation, error) {
	g := &generation{shards: make([]*shard, p), seq: seq, id: id}
	for i := range g.shards {
		inner, err := factory()
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
		}
		g.shards[i] = &shard{f: inner}
	}
	return g, nil
}

// ShardOf returns the shard index key routes to. The partition hash uses
// the Murmur multiplicative constant — independent of the Golden-ratio
// constants the filter kernels consume — so the keys landing in one shard
// still look uniformly random to that shard's kernel.
func (f *Filter) ShardOf(key Key) int {
	if f.lg == 0 {
		return 0
	}
	return int(hashing.TagHash(key) >> (32 - f.lg))
}

// NumShards returns the shard count.
func (f *Filter) NumShards() int { return 1 << f.lg }

// Generation returns the current generation's sequence number, starting
// at 0 and incremented by each Rotate.
func (f *Filter) Generation() uint64 { return f.gen.Load().seq }

// insertInto adds a key to its shard in generation g under that shard's
// write lock.
func (f *Filter) insertInto(g *generation, key Key) error {
	s := g.shards[f.ShardOf(key)]
	s.mu.Lock()
	err := s.f.Insert(key)
	if err == nil {
		s.count++
	}
	s.mu.Unlock()
	return err
}

// Insert adds a key to its shard under that shard's write lock. Only
// cuckoo shards can fail (ErrFull, when the shard's table is saturated).
//
// Inserts are lossless across rotations: after the primary insert, the
// writer re-checks the staging pointer and the current generation and
// re-inserts into any newer generation it finds, so a key acknowledged
// while a Rotate is in flight is present after the swap. An error from
// any generation is returned before the insert is acknowledged (the key
// may then be present in an older generation — harmless for approximate
// filters, whose contract is one-sided).
func (f *Filter) Insert(key Key) error {
	g := f.gen.Load()
	if err := f.insertInto(g, key); err != nil {
		return err
	}
	// top is the newest generation known to hold the key. Loop until the
	// current generation is no newer: each pass catches a rotation that
	// staged or swapped a replacement after the previous insert landed.
	// The gen re-check must be the FINAL load before acknowledging — it
	// proves no swap landed since the staging check, so any rotation the
	// staging check missed published only after this insert's earlier
	// operations (including a caller's log append), where the fill's
	// source observes them. Returning on a nil staging pointer alone
	// would let a rotation that published, filled, swapped and cleared
	// staging entirely between the two loads discard the key.
	top := g
	for {
		if st := f.staging.Load(); st != nil && st.id > top.id {
			if err := f.insertInto(st, key); err != nil {
				return err
			}
			top = st
		}
		cur := f.gen.Load()
		if cur.id <= top.id {
			return nil
		}
		if err := f.insertInto(cur, key); err != nil {
			return err
		}
		top = cur
	}
}

// InsertBatch adds a batch of keys, grouping them by shard so each
// shard's write lock is taken once per batch instead of once per key —
// the write-side counterpart of ContainsBatch's scatter, and the path
// the filter server's binary insert plane uses. It returns the number of
// keys successfully inserted. On error (a cuckoo shard saturating) the
// batch stops immediately; because keys are processed in shard order,
// the inserted keys are NOT an input-order prefix — callers recovering
// from ErrFull should rotate to a larger generation and replay the whole
// batch rather than resume mid-batch.
func (f *Filter) InsertBatch(keys []Key) (int, error) {
	return f.InsertBatchCtx(context.Background(), keys)
}

// InsertBatchCtx is InsertBatch with request-scoped tracing: when ctx
// carries a sampled span (obs.SpanFromContext non-nil), each per-shard
// run emits a "shard.insert" child span with the shard index, generation
// sequence and key count, and runs replayed into staging or successor
// generations during a rotation's dual-write window are flagged
// dual_write=true. Unsampled contexts pay one pointer lookup and
// nothing else.
func (f *Filter) InsertBatchCtx(ctx context.Context, keys []Key) (int, error) {
	parent := obs.SpanFromContext(ctx)
	n := len(keys)
	if n == 0 {
		return 0, nil
	}
	g := f.gen.Load()
	p := len(g.shards)
	var sc *batchScratch
	if p > 1 {
		sc, _ = f.scratch.Get().(*batchScratch)
		if sc == nil {
			sc = new(batchScratch)
		}
		sc.resizeScatter(n, p)
		defer f.putScratch(sc)

		ids, offsets := sc.ids, sc.offsets
		for i, k := range keys {
			s := f.ShardOf(k)
			ids[i] = uint16(s)
			offsets[s+1]++
		}
		for s := 0; s < p; s++ {
			offsets[s+1] += offsets[s]
		}
		skeys, cursor := sc.skeys, sc.cursor
		copy(cursor, offsets[:p])
		for i, k := range keys {
			s := ids[i]
			skeys[cursor[s]] = k
			cursor[s]++
		}
	}
	// The scatter is generation-independent (rotations preserve the shard
	// count), so the same grouped runs replay into staging and successor
	// generations for the lossless re-check below.
	insertAll := func(g *generation, dual bool) (int, error) {
		if p == 1 {
			var c *obs.Span
			if parent != nil {
				c = parent.StartChild("shard.insert")
				c.SetAttr("shard", 0)
				c.SetAttr("generation", g.seq)
				c.SetAttr("keys", n)
				if dual {
					c.SetAttr("dual_write", true)
				}
			}
			s := g.shards[0]
			s.mu.Lock()
			defer s.mu.Unlock()
			defer c.End()
			for i, k := range keys {
				if err := s.f.Insert(k); err != nil {
					c.SetAttr("error", err.Error())
					return i, err
				}
				s.count++
			}
			return n, nil
		}
		// Large batches take the same persistent-pool fan-out as the
		// probe gather (distinct shards, distinct write locks); the rest
		// run the shard loop on this goroutine.
		if n >= parallelBatchMin {
			if pl := f.pool(); pl.running() {
				mPoolBatchesParallel.Inc()
				return f.parallelGather(pl, g, sc, parent, p, true, dual)
			}
		}
		mPoolBatchesSeq.Inc()
		inserted := 0
		for s := 0; s < p; s++ {
			count, err := insertRun(g, sc, parent, s, dual)
			inserted += count
			if err != nil {
				return inserted, err
			}
		}
		return inserted, nil
	}

	inserted, err := insertAll(g, false)
	if err != nil {
		return inserted, err
	}
	// Lossless re-check, mirroring Insert (gen re-checked last): replay
	// the batch into any newer generation a concurrent Rotate staged or
	// swapped in. These replays are the dual-write window's cost; their
	// spans carry dual_write=true.
	top := g
	for {
		if st := f.staging.Load(); st != nil && st.id > top.id {
			if _, err := insertAll(st, true); err != nil {
				return inserted, err
			}
			top = st
		}
		cur := f.gen.Load()
		if cur.id <= top.id {
			return inserted, nil
		}
		if _, err := insertAll(cur, true); err != nil {
			return inserted, err
		}
		top = cur
	}
}

// Contains reports whether key may be in the set (no false negatives for
// keys inserted into the current generation).
func (f *Filter) Contains(key Key) bool {
	g := f.gen.Load()
	s := g.shards[f.ShardOf(key)]
	s.mu.RLock()
	ok := s.f.Contains(key)
	s.mu.RUnlock()
	return ok
}

// ContainsBatch appends to sel the positions i for which keys[i] may be
// contained and returns the extended slice. The batch is partitioned by
// shard with one counting-sort pass, the shards are probed (in parallel
// for batches of at least parallelBatchMin keys), and the per-shard hits
// are merged back in ascending position order — byte-identical to probing
// the shards sequentially and to the scalar Contains path.
func (f *Filter) ContainsBatch(keys []Key, sel core.SelVec) core.SelVec {
	return f.ContainsBatchCtx(context.Background(), keys, sel)
}

// ContainsBatchCtx is ContainsBatch with request-scoped tracing: when
// ctx carries a sampled span, each probed shard emits a "shard.probe"
// child span with the shard index, generation sequence, key count and
// hit count — safe under the parallel gather (spans lock only
// themselves). Unsampled contexts pay one pointer lookup and nothing
// else.
func (f *Filter) ContainsBatchCtx(ctx context.Context, keys []Key, sel core.SelVec) core.SelVec {
	parent := obs.SpanFromContext(ctx)
	g := f.gen.Load()
	p := len(g.shards)
	if p == 1 {
		var c *obs.Span
		if parent != nil {
			c = parent.StartChild("shard.probe")
			c.SetAttr("shard", 0)
			c.SetAttr("generation", g.seq)
			c.SetAttr("keys", len(keys))
		}
		s := g.shards[0]
		s.mu.RLock()
		before := len(sel)
		sel = s.f.ContainsBatch(keys, sel)
		s.mu.RUnlock()
		if c != nil {
			c.SetAttr("hits", len(sel)-before)
			c.End()
		}
		return sel
	}
	n := len(keys)
	if n == 0 {
		return sel
	}
	sc, _ := f.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = new(batchScratch)
	}
	sc.resizeGather(n, p)
	defer f.putScratch(sc)

	// Scatter: counting sort the batch into per-shard contiguous runs,
	// remembering each scattered key's original position.
	ids, offsets := sc.ids, sc.offsets
	for i, k := range keys {
		s := f.ShardOf(k)
		ids[i] = uint16(s)
		offsets[s+1]++
	}
	for s := 0; s < p; s++ {
		offsets[s+1] += offsets[s]
	}
	skeys, sidx, cursor := sc.skeys, sc.sidx, sc.cursor
	copy(cursor, offsets[:p])
	for i, k := range keys {
		s := ids[i]
		at := cursor[s]
		skeys[at] = k
		sidx[at] = uint32(i)
		cursor[s]++
	}

	// Gather: probe each shard's run; mark hits at original positions.
	// Distinct shards own distinct positions (and distinct psel slots),
	// so workers never write the same element. Large batches recruit the
	// persistent worker pool; everything else runs on this goroutine —
	// no goroutine is ever spawned per batch.
	parallel := false
	if n >= parallelBatchMin {
		if pl := f.pool(); pl.running() {
			parallel = true
			mPoolBatchesParallel.Inc()
			f.parallelGather(pl, g, sc, parent, p, false, false)
		}
	}
	if !parallel {
		mPoolBatchesSeq.Inc()
		for s := 0; s < p; s++ {
			probeRun(g, sc, parent, s)
		}
	}

	// Merge, preserving batch order.
	for i, hit := range sc.hits {
		if hit {
			sel = append(sel, uint32(i))
		}
	}
	return sel
}

// probeRun probes shard s's scattered run under its read lock and marks
// hits at their original batch positions — the per-shard unit both the
// sequential gather loop and the pool workers execute.
func probeRun(g *generation, sc *batchScratch, parent *obs.Span, s int) {
	lo, hi := sc.offsets[s], sc.offsets[s+1]
	if lo == hi {
		return
	}
	var c *obs.Span
	if parent != nil {
		c = parent.StartChild("shard.probe")
		c.SetAttr("shard", s)
		c.SetAttr("generation", g.seq)
		c.SetAttr("keys", int(hi-lo))
	}
	sub := sc.skeys[lo:hi]
	sh := g.shards[s]
	sh.mu.RLock()
	psel := sh.f.ContainsBatch(sub, sc.psel[s][:0])
	sh.mu.RUnlock()
	sc.psel[s] = psel
	for _, pos := range psel {
		sc.hits[sc.sidx[lo+uint32(pos)]] = true
	}
	if c != nil {
		c.SetAttr("hits", len(psel))
		c.End()
	}
}

// insertRun inserts shard s's scattered run under its write lock — the
// per-shard unit both the sequential insert loop and the pool workers
// execute. It returns how many keys landed before any error; on error
// the run stops at the failing key.
func insertRun(g *generation, sc *batchScratch, parent *obs.Span, s int, dual bool) (int, error) {
	lo, hi := sc.offsets[s], sc.offsets[s+1]
	if lo == hi {
		return 0, nil
	}
	var c *obs.Span
	if parent != nil {
		c = parent.StartChild("shard.insert")
		c.SetAttr("shard", s)
		c.SetAttr("generation", g.seq)
		c.SetAttr("keys", int(hi-lo))
		if dual {
			c.SetAttr("dual_write", true)
		}
	}
	sh := g.shards[s]
	sh.mu.Lock()
	for i, k := range sc.skeys[lo:hi] {
		if err := sh.f.Insert(k); err != nil {
			sh.mu.Unlock()
			if c != nil {
				c.SetAttr("error", err.Error())
				c.End()
			}
			return i, err
		}
		sh.count++
	}
	sh.mu.Unlock()
	if c != nil {
		c.End()
	}
	return int(hi - lo), nil
}

// Rotate builds a complete replacement generation off to the side and
// swaps it in with one atomic store. factory supplies the new shards (nil
// reuses the previous factory — e.g. to clear without resizing). fill, if
// non-nil, runs before the swap with a concurrency-safe insert into the
// staging generation, so the replacement can be populated — from a key
// log, an iterator, or parallel loaders — while readers and writers keep
// hitting the old generation.
//
// Rotations are serialized. The staging generation is published (as a
// dual-write target) before fill runs, and writers re-check it — and
// then the current generation — after every insert, so a write whose
// re-checks observe the rotation lands in the replacement generation and
// survives the swap. A write whose checks all precede the publication —
// including one racing the replacement generation's construction — is
// dropped with the retiring generation unless fill's source observes it:
// rotation replaces the filter's contents. Combine a key log that
// writers append to before inserting with a fill that replays it, and
// the two windows overlap — no acknowledged write is ever lost.
func (f *Filter) Rotate(factory Factory, fill func(insert func(Key) error) error) error {
	return f.RotateCtx(context.Background(), factory, fill)
}

// RotateCtx is Rotate with request-scoped tracing: when ctx carries a
// sampled span, the rotation emits a "sharded.rotate" child covering
// construction through swap — annotated with the shard count, target
// generation sequence, dual-write window length and, for build-once
// kinds, a nested "sharded.seal" span over the solve loop.
func (f *Filter) RotateCtx(ctx context.Context, factory Factory, fill func(insert func(Key) error) error) error {
	_, sp := obs.StartSpan(ctx, "sharded.rotate")
	start := time.Now()
	err := f.rotate(sp, factory, fill)
	mRotationDur.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		mRotationAborts.Inc()
		sp.SetAttr("error", err.Error())
	} else {
		mRotations.Inc()
	}
	sp.End()
	return err
}

func (f *Filter) rotate(sp *obs.Span, factory Factory, fill func(insert func(Key) error) error) error {
	f.rotateMu.Lock()
	defer f.rotateMu.Unlock()
	if factory == nil {
		factory = f.factory
	}
	old := f.gen.Load()
	// Consume a fresh id even if this rotation later aborts: a discarded
	// staging generation must never share an id with a successor, or a
	// stalled writer could mistake the successor for already-covered.
	f.lastID++
	ng, err := newGeneration(factory, len(old.shards), old.seq+1, f.lastID)
	if err != nil {
		return err
	}
	sp.SetAttr("shards", len(old.shards))
	sp.SetAttr("generation", ng.seq)
	// Open the dual-write window before fill starts: from here until just
	// after the swap, concurrent writers also insert into ng, covering
	// every key a fill-side snapshot (e.g. a log read) can miss. The
	// window length is observed on every exit path — it is the interval
	// during which writers pay for two inserts per key.
	windowStart := time.Now()
	closeWindow := func() {
		f.staging.Store(nil)
		windowNs := time.Since(windowStart).Nanoseconds()
		mDualWriteDur.Observe(windowNs)
		sp.SetAttr("dual_write_window_ns", windowNs)
	}
	f.staging.Store(ng)
	if fill != nil {
		insert := func(key Key) error { return f.insertInto(ng, key) }
		if err := fill(insert); err != nil {
			closeWindow()
			return fmt.Errorf("sharded: rotation fill: %w", err)
		}
	}
	// Seal build-once shards before the swap: their buffered fill keys
	// are solved into probe tables now, while readers still see the old
	// generation. Dual-writers may keep inserting into ng concurrently —
	// the shard lock serializes them against the seal, and keys arriving
	// after it take the shard's overflow path.
	if _, seals := ng.shards[0].f.(Sealer); seals {
		sealSp := sp.StartChild("sharded.seal")
		sealSp.SetAttr("shards", len(ng.shards))
		sealStart := time.Now()
		for i, s := range ng.shards {
			sealer, ok := s.f.(Sealer)
			if !ok {
				break // generations are homogeneous; no shard seals
			}
			s.mu.Lock()
			err := sealer.Seal()
			s.mu.Unlock()
			if err != nil {
				mSealDur.Observe(time.Since(sealStart).Nanoseconds())
				sealSp.SetAttr("error", err.Error())
				sealSp.End()
				closeWindow()
				return fmt.Errorf("sharded: seal shard %d: %w", i, err)
			}
		}
		mSealDur.Observe(time.Since(sealStart).Nanoseconds())
		sealSp.End()
	}
	f.factory = factory
	f.gen.Store(ng)
	closeWindow()
	return nil
}

// Reset clears every shard in place (the generation is kept; use Rotate to
// clear without blocking readers behind write locks).
func (f *Filter) Reset() {
	f.rotateMu.Lock()
	defer f.rotateMu.Unlock()
	g := f.gen.Load()
	for _, s := range g.shards {
		s.mu.Lock()
		s.f.Reset()
		s.count = 0
		s.mu.Unlock()
	}
}

// Count returns the total number of successful inserts into the current
// generation (a live snapshot; concurrent writers may change it).
func (f *Filter) Count() uint64 {
	var total uint64
	for _, s := range f.gen.Load().shards {
		s.mu.RLock()
		total += s.count
		s.mu.RUnlock()
	}
	return total
}

// SizeBits returns the summed size of all shards. Shard locks are taken
// because growable kinds (the exact set) reallocate under Insert.
func (f *Filter) SizeBits() uint64 {
	var total uint64
	for _, s := range f.gen.Load().shards {
		s.mu.RLock()
		total += s.f.SizeBits()
		s.mu.RUnlock()
	}
	return total
}

// FPR returns the analytic false-positive rate with n keys stored: the
// per-shard model evaluated at the expected n/P keys per shard (the
// partition hash spreads keys uniformly).
func (f *Filter) FPR(n uint64) float64 {
	g := f.gen.Load()
	p := uint64(len(g.shards))
	s := g.shards[0]
	s.mu.RLock()
	fpr := s.f.FPR((n + p - 1) / p)
	s.mu.RUnlock()
	return fpr
}

// StorageAligned reports whether every shard's inner filter reports
// cache-line-aligned word storage; a shard whose kind cannot report
// alignment counts as misaligned.
func (f *Filter) StorageAligned() bool {
	for _, s := range f.gen.Load().shards {
		s.mu.RLock()
		a, ok := s.f.(interface{ StorageAligned() bool })
		aligned := ok && a.StorageAligned()
		s.mu.RUnlock()
		if !aligned {
			return false
		}
	}
	return true
}

// Stats is a point-in-time snapshot of the sharded filter.
type Stats struct {
	Shards     int      // shard count P
	Generation uint64   // rotation sequence number
	SizeBits   uint64   // summed shard size
	Count      uint64   // total successful inserts this generation
	PerShard   []uint64 // per-shard insert counts (balance diagnostic)
}

// Stats snapshots shard counts and sizes.
func (f *Filter) Stats() Stats {
	g := f.gen.Load()
	st := Stats{
		Shards:     len(g.shards),
		Generation: g.seq,
		PerShard:   make([]uint64, len(g.shards)),
	}
	for i, s := range g.shards {
		s.mu.RLock()
		st.PerShard[i] = s.count
		st.SizeBits += s.f.SizeBits()
		s.mu.RUnlock()
		st.Count += st.PerShard[i]
	}
	return st
}

// Skew reports the insert-count imbalance across shards as max/mean
// (1.0 = perfectly balanced; P = everything on one shard). An empty
// filter reports 1. The partition hash should keep this near 1; a
// drifting skew gauge means the key distribution is defeating it, which
// degrades both the contention win and the per-shard FPR model.
func (f *Filter) Skew() float64 {
	g := f.gen.Load()
	var total, max uint64
	for _, s := range g.shards {
		s.mu.RLock()
		c := s.count
		s.mu.RUnlock()
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(g.shards))
	return float64(max) / mean
}

// Snapshot is a point-in-time serialized image of a sharded filter: the
// generation sequence plus every shard's payload and insert count. The
// shard count is len(Payloads); the payload encoding is whatever the
// marshal callback produced (the perfilter package uses its per-kind wire
// formats).
type Snapshot struct {
	Seq      uint64
	Counts   []uint64
	Payloads [][]byte
}

// Snapshot serializes every shard of the current generation through the
// marshal callback, each under its read lock. The rotation lock is held
// throughout, so the image is from one generation; inserts racing the
// walk may be captured or not (the usual relaxed-snapshot contract).
func (f *Filter) Snapshot(marshal func(Inner) ([]byte, error)) (*Snapshot, error) {
	f.rotateMu.Lock()
	defer f.rotateMu.Unlock()
	g := f.gen.Load()
	snap := &Snapshot{
		Seq:      g.seq,
		Counts:   make([]uint64, len(g.shards)),
		Payloads: make([][]byte, len(g.shards)),
	}
	for i, s := range g.shards {
		s.mu.RLock()
		payload, err := marshal(s.f)
		snap.Counts[i] = s.count
		s.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("sharded: marshal shard %d: %w", i, err)
		}
		snap.Payloads[i] = payload
	}
	return snap, nil
}

// Restore rebuilds a filter from a Snapshot, decoding each shard through
// the unmarshal callback. factory supplies replacement shards for future
// Rotate calls and must build filters compatible with the restored ones.
func Restore(snap *Snapshot, unmarshal func([]byte) (Inner, error), factory Factory) (*Filter, error) {
	if factory == nil {
		return nil, fmt.Errorf("sharded: nil factory")
	}
	p := len(snap.Payloads)
	if p == 0 || p&(p-1) != 0 || p > MaxShards {
		return nil, fmt.Errorf("sharded: restore: shard count %d is not a power of two in [1, %d]", p, MaxShards)
	}
	if len(snap.Counts) != p {
		return nil, fmt.Errorf("sharded: restore: %d counts for %d shards", len(snap.Counts), p)
	}
	f := &Filter{factory: factory, lg: log2(p)}
	g := &generation{shards: make([]*shard, p), seq: snap.Seq}
	for i, payload := range snap.Payloads {
		inner, err := unmarshal(payload)
		if err != nil {
			return nil, fmt.Errorf("sharded: restore shard %d: %w", i, err)
		}
		g.shards[i] = &shard{f: inner, count: snap.Counts[i]}
	}
	f.gen.Store(g)
	return f, nil
}

// String describes the wrapper and one shard's configuration.
func (f *Filter) String() string {
	g := f.gen.Load()
	s := g.shards[0]
	s.mu.RLock()
	inner := s.f.String()
	s.mu.RUnlock()
	return fmt.Sprintf("sharded[P=%d gen=%d] %s", len(g.shards), g.seq, inner)
}
