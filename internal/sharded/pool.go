package sharded

import (
	"runtime"
	"sync"
	"sync/atomic"

	"perfilter/internal/obs"
)

// Persistent gather workers.
//
// Large batches (>= parallelBatchMin keys) probe their shard runs in
// parallel. Spawning a goroutine per batch would put an allocation and a
// scheduler handoff on the steady-state hot path, so each Filter instead
// owns a small pool of long-lived workers, created lazily on the first
// qualifying batch and parked on a channel between batches. Dispatch is
// work-stealing in spirit: the caller enqueues up to poolSize wake-up
// tokens (one per idle worker it wants), then joins the shard-claim loop
// itself, so the batch completes at full speed even if every worker is
// busy with another caller's batch — a token that finds no work left is
// consumed for free.
//
// Lifecycle: workers hold a reference to the pool only, never to the
// Filter, so an abandoned Filter becomes unreachable and a finalizer
// releases its workers; Close does the same eagerly. A closed pool makes
// subsequent batches fall back to the caller's goroutine — the Filter
// stays fully usable.
var (
	poolBatchesHelp = "Batched sharded operations by gather mode " +
		"(parallel = persistent worker pool, sequential = caller's goroutine)."
	mPoolBatchesParallel = obs.Default.Counter("perfilter_sharded_pool_batches_total",
		poolBatchesHelp, "mode", "parallel")
	mPoolBatchesSeq = obs.Default.Counter("perfilter_sharded_pool_batches_total",
		poolBatchesHelp, "mode", "sequential")
	poolShardsHelp = "Per-shard runs executed by the parallel gather, by executor " +
		"(caller runs are successful steals from the dispatching goroutine's own claim loop)."
	mPoolShardsWorker = obs.Default.Counter("perfilter_sharded_pool_shards_total",
		poolShardsHelp, "executor", "worker")
	mPoolShardsCaller = obs.Default.Counter("perfilter_sharded_pool_shards_total",
		poolShardsHelp, "executor", "caller")
)

// liveWorkers counts parked-or-running pool workers across all Filters,
// surfaced as a gauge so an operator can spot pool leaks (a rising count
// with a flat filter count) at a glance.
var liveWorkers atomic.Int64

func init() {
	obs.Default.GaugeFunc("perfilter_sharded_pool_workers",
		"Live persistent gather workers across all sharded filters.",
		func() float64 { return float64(liveWorkers.Load()) })
}

// pool is one Filter's set of persistent gather workers.
type pool struct {
	ch      chan *gatherJob // wake-up tokens; cap == workers
	quit    chan struct{}   // closed by close(); never sends
	workers int             // worker goroutines spawned (0: always sequential)
	closed  atomic.Bool
}

func newPool(workers int) *pool {
	pl := &pool{workers: workers}
	if workers <= 0 {
		pl.workers = 0
		return pl
	}
	pl.ch = make(chan *gatherJob, workers)
	pl.quit = make(chan struct{})
	liveWorkers.Add(int64(workers))
	for i := 0; i < workers; i++ {
		go pl.worker()
	}
	return pl
}

// running reports whether dispatching to this pool can recruit help.
func (pl *pool) running() bool { return pl.workers > 0 && !pl.closed.Load() }

func (pl *pool) worker() {
	defer liveWorkers.Add(-1)
	for {
		select {
		case j := <-pl.ch:
			j.run(true)
			j.release()
		case <-pl.quit:
			return
		}
	}
}

// close releases the workers. Idempotent, and safe concurrently with
// dispatch: a dispatcher that raced the close and enqueued tokens nobody
// will drain still completes its batch on its own claim loop (completion
// waits on shard runs, never on token consumption); the stranded tokens
// keep their job out of the job pool and are garbage-collected with the
// channel.
func (pl *pool) close() {
	if !pl.closed.Swap(true) && pl.workers > 0 {
		close(pl.quit)
	}
}

// defaultPoolSize sizes a Filter's pool once, from GOMAXPROCS at first
// use: the dispatching caller participates, so one worker fewer than the
// parallelism target, and never more than could be useful for p shards.
func defaultPoolSize(p int) int {
	w := runtime.GOMAXPROCS(0)
	if w > p {
		w = p
	}
	return w - 1
}

// gatherJob is one batch's parallel fan-out state. Jobs are recycled
// through jobPool; a job returns there only when its reference count —
// one per enqueued token plus one for the dispatcher — drops to zero, so
// a token still sitting in a pool channel keeps its job (and nothing
// else) alive, and a recycled job can never be observed mid-rewrite.
//
// Completion and recycling are deliberately decoupled: the dispatcher
// waits for pending (shard runs outstanding), not for token consumption,
// so a busy pool can never stall a batch, and a worker picking up a
// token after the batch completed finds next >= p and returns without
// touching the scratch (which the dispatcher may already have recycled).
type gatherJob struct {
	f      *Filter
	g      *generation
	sc     *batchScratch
	parent *obs.Span
	insert bool // insert gather (write locks) vs probe gather (read locks)
	dual   bool // insert replay into a staging/successor generation

	p       int32
	next    atomic.Int32 // shard-claim cursor
	pending atomic.Int32 // shard runs not yet finished; 0 => batch done
	refs    atomic.Int32
	done    chan struct{} // buffered(1); exactly one send per batch

	inserted atomic.Int64 // insert gathers: keys successfully inserted
	failed   atomic.Bool  // insert gathers: short-circuit remaining runs
	errMu    sync.Mutex
	err      error // first insert error
}

var jobPool = sync.Pool{New: func() any {
	return &gatherJob{done: make(chan struct{}, 1)}
}}

// run claims shards until none remain. Whoever finishes the last
// outstanding run signals done. worker distinguishes the executor for
// the steal counters only.
func (j *gatherJob) run(worker bool) {
	ran := 0
	for {
		s := int(j.next.Add(1)) - 1
		if s >= int(j.p) {
			break
		}
		if j.insert {
			j.runInsert(s)
		} else {
			probeRun(j.g, j.sc, j.parent, s)
		}
		ran++
		if j.pending.Add(-1) == 0 {
			j.done <- struct{}{}
		}
	}
	if ran > 0 {
		if worker {
			mPoolShardsWorker.Add(uint64(ran))
		} else {
			mPoolShardsCaller.Add(uint64(ran))
		}
	}
}

func (j *gatherJob) runInsert(s int) {
	if j.failed.Load() {
		return // drain remaining claims cheaply after an error
	}
	count, err := insertRun(j.g, j.sc, j.parent, s, j.dual)
	j.inserted.Add(int64(count))
	if err != nil {
		j.errMu.Lock()
		if !j.failed.Load() {
			j.err = err
			j.failed.Store(true)
		}
		j.errMu.Unlock()
	}
}

func (j *gatherJob) release() {
	if j.refs.Add(-1) == 0 {
		j.f, j.g, j.sc, j.parent, j.err = nil, nil, nil, nil, nil
		jobPool.Put(j)
	}
}

// parallelGather fans one scattered batch out across the pool: enqueue up
// to min(workers, p-1) wake-up tokens, claim shards on this goroutine too,
// and wait for every shard run to finish. For insert gathers it returns
// the inserted count and the first error; remaining runs after an error
// are drained without inserting (the batch contract: keys are processed
// in shard order, so the inserted set is not an input-order prefix).
func (f *Filter) parallelGather(pl *pool, g *generation, sc *batchScratch, parent *obs.Span, p int, insert, dual bool) (int, error) {
	j := jobPool.Get().(*gatherJob)
	j.f, j.g, j.sc, j.parent = f, g, sc, parent
	j.insert, j.dual = insert, dual
	j.p = int32(p)
	j.next.Store(0)
	j.pending.Store(int32(p))
	j.inserted.Store(0)
	j.failed.Store(false)
	j.err = nil

	// Publish the full reference count before the first token becomes
	// visible; trim the unsent remainder afterwards. refs cannot reach
	// zero early: workers consume at most `sent` tokens.
	want := pl.workers
	if want > p-1 {
		want = p - 1
	}
	j.refs.Store(int32(want) + 1)
	sent := 0
	for ; sent < want; sent++ {
		select {
		case pl.ch <- j:
		default:
			// Every worker is either busy or already has a token
			// queued; more tokens would only pile up.
			goto dispatched
		}
	}
dispatched:
	if sent < want {
		j.refs.Add(int32(sent - want))
	}
	j.run(false)
	<-j.done
	inserted, err := int(j.inserted.Load()), j.err
	j.release()
	return inserted, err
}

// pool returns the Filter's worker pool, creating it (and arming the
// finalizer that tears it down) on first use.
func (f *Filter) pool() *pool {
	if pl := f.pl.Load(); pl != nil {
		return pl
	}
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	if pl := f.pl.Load(); pl != nil {
		return pl
	}
	pl := newPool(defaultPoolSize(f.NumShards()))
	if pl.workers > 0 {
		runtime.SetFinalizer(f, (*Filter).Close)
	}
	f.pl.Store(pl)
	return pl
}

// SetPoolSize replaces the persistent gather pool with one of exactly n
// workers (n <= 0: no workers, every batch runs on its caller's
// goroutine). It exists for benchmarks comparing pool-on/pool-off and for
// tests that need parallel gathers regardless of the host's GOMAXPROCS;
// production callers should let the pool size itself. Safe at any time:
// batches already dispatched to the old pool complete on their callers.
func (f *Filter) SetPoolSize(n int) {
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	if old := f.pl.Load(); old != nil {
		old.close()
	}
	pl := newPool(n)
	// SetFinalizer panics when replacing a live finalizer, so always clear
	// before re-arming.
	runtime.SetFinalizer(f, nil)
	if pl.workers > 0 {
		runtime.SetFinalizer(f, (*Filter).Close)
	}
	f.pl.Store(pl)
}

// Close releases the filter's persistent gather workers. The filter
// remains fully usable — concurrent and subsequent batches fall back to
// the caller's goroutine. Close is idempotent and safe under live
// traffic; it is also optional, since a finalizer performs the same
// teardown when the Filter becomes unreachable (parked workers reference
// only the pool, never the Filter, so they keep nothing else alive).
func (f *Filter) Close() {
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	if pl := f.pl.Load(); pl != nil {
		pl.close()
	}
	runtime.SetFinalizer(f, nil)
}

// PoolWorkers reports the number of workers the current pool was created
// with, 0 if the pool is absent, closed, or worker-less — i.e. whether
// the next qualifying batch can gather in parallel (diagnostics/tests).
func (f *Filter) PoolWorkers() int {
	pl := f.pl.Load()
	if pl == nil || !pl.running() {
		return 0
	}
	return pl.workers
}
