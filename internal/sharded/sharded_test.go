package sharded

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"perfilter/internal/blocked"
	"perfilter/internal/exact"
	"perfilter/internal/rng"
)

// exactInner adapts exact.Set (no false positives — every mismatch is a
// real merge bug, not filter noise).
type exactInner struct{ s *exact.Set }

func (e exactInner) Insert(key Key) error { e.s.Insert(key); return nil }
func (e exactInner) Contains(key Key) bool {
	return e.s.Contains(key)
}
func (e exactInner) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return e.s.ContainsBatch(keys, sel)
}
func (e exactInner) SizeBits() uint64     { return e.s.SizeBits() }
func (e exactInner) FPR(n uint64) float64 { return 0 }
func (e exactInner) Reset()               { e.s.Reset() }
func (e exactInner) String() string       { return e.s.String() }

func exactFactory() (Inner, error) { return exactInner{exact.New(1024)}, nil }

// bloomInner adapts a blocked Bloom filter.
type bloomInner struct{ f blocked.Probe }

func (b bloomInner) Insert(key Key) error { b.f.Insert(key); return nil }
func (b bloomInner) Contains(key Key) bool {
	return b.f.Contains(key)
}
func (b bloomInner) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return b.f.ContainsBatch(keys, sel)
}
func (b bloomInner) SizeBits() uint64     { return b.f.SizeBits() }
func (b bloomInner) FPR(n uint64) float64 { return b.f.FPR(n) }
func (b bloomInner) Reset()               { b.f.Reset() }
func (b bloomInner) String() string       { return b.f.Params().String() }

func bloomFactory(mBits uint64) Factory {
	return func() (Inner, error) {
		f, err := blocked.New(blocked.CacheSectorizedParams(64, 512, 2, 8, true), mBits)
		if err != nil {
			return nil, err
		}
		return bloomInner{f}, nil
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 8: 8, 9: 16, MaxShards: MaxShards, MaxShards + 1: MaxShards}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestShardOfInRange(t *testing.T) {
	f, err := New(exactFactory, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", f.NumShards())
	}
	r := rng.NewMT19937(1)
	seen := make([]int, 8)
	for i := 0; i < 1_000_000; i++ {
		seen[f.ShardOf(r.Uint32())]++
	}
	for s, c := range seen {
		// Uniform expectation 125k; a 20% band catches gross skew.
		if c < 100_000 || c > 150_000 {
			t.Errorf("shard %d got %d of 1M keys — partition hash is skewed", s, c)
		}
	}
}

// TestBatchMatchesScalar checks the core contract on the exact inner
// (zero false positives, so expected membership is computable): the
// scatter/gather batch must reproduce the scalar path byte-for-byte, in
// both the sequential (small batch) and parallel (large batch) regimes.
func TestBatchMatchesScalar(t *testing.T) {
	for _, shards := range []int{1, 2, 8, 64} {
		t.Run(fmt.Sprintf("P=%d", shards), func(t *testing.T) {
			f, err := New(exactFactory, shards)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(42)
			for i := 0; i < 20_000; i++ {
				if err := f.Insert(r.Uint32() | 1); err != nil {
					t.Fatal(err)
				}
			}
			for _, batch := range []int{0, 1, 100, parallelBatchMin, 3 * parallelBatchMin} {
				probe := make([]Key, batch)
				for i := range probe {
					if i%2 == 0 {
						probe[i] = r.Uint32() | 1 // maybe inserted
					} else {
						probe[i] = r.Uint32() &^ 1 // never inserted
					}
				}
				sel := f.ContainsBatch(probe, nil)
				j := 0
				for i, k := range probe {
					want := f.Contains(k)
					got := j < len(sel) && sel[j] == uint32(i)
					if got != want {
						t.Fatalf("batch=%d pos=%d: batch says %v, scalar says %v", batch, i, got, want)
					}
					if got {
						j++
					}
				}
				if j != len(sel) {
					t.Fatalf("batch=%d: %d trailing selection entries", batch, len(sel)-j)
				}
			}
		})
	}
}

// TestBatchMatchesSequentialShards checks scatter/gather against the
// straightforward reference: probing each shard's filter directly, one
// shard at a time, no locks — same partition, same kernels.
func TestBatchMatchesSequentialShards(t *testing.T) {
	const shards = 16
	f, err := New(bloomFactory(1<<16), shards)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(7)
	for i := 0; i < 50_000; i++ {
		if err := f.Insert(r.Uint32()); err != nil {
			t.Fatal(err)
		}
	}
	probe := make([]Key, 3*parallelBatchMin)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	got := f.ContainsBatch(probe, nil)

	g := f.gen.Load()
	var want []uint32
	for i, k := range probe {
		if g.shards[f.ShardOf(k)].f.Contains(k) {
			want = append(want, uint32(i))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("selection length %d, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("selection[%d] = %d, reference %d", i, got[i], want[i])
		}
	}
}

func TestRotate(t *testing.T) {
	f, err := New(exactFactory, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{1, 2, 3, 4, 5, 6, 7, 8}
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if f.Generation() != 0 {
		t.Fatalf("generation = %d before any rotation", f.Generation())
	}

	// Rotate with a fill that carries over the even keys only.
	err = f.Rotate(nil, func(insert func(Key) error) error {
		for _, k := range keys {
			if k%2 == 0 {
				if err := insert(k); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Generation() != 1 {
		t.Fatalf("generation = %d after rotation, want 1", f.Generation())
	}
	for _, k := range keys {
		want := k%2 == 0
		if f.Contains(k) != want {
			t.Fatalf("after rotation Contains(%d) = %v, want %v", k, !want, want)
		}
	}
	if got := f.Count(); got != 4 {
		t.Fatalf("Count = %d after rotation fill, want 4", got)
	}

	// A failing factory must leave the current generation untouched.
	boom := errors.New("boom")
	err = f.Rotate(func() (Inner, error) { return nil, boom }, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Rotate with failing factory: err = %v", err)
	}
	if f.Generation() != 1 || !f.Contains(2) {
		t.Fatal("failed rotation must not replace the live generation")
	}
}

func TestStatsAndReset(t *testing.T) {
	f, err := New(exactFactory, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(3)
	for i := 0; i < 1000; i++ {
		if err := f.Insert(r.Uint32()); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Shards != 4 || st.Count != 1000 || len(st.PerShard) != 4 {
		t.Fatalf("unexpected stats %+v", st)
	}
	var sum uint64
	for _, c := range st.PerShard {
		sum += c
	}
	if sum != st.Count {
		t.Fatalf("per-shard counts sum to %d, total %d", sum, st.Count)
	}
	if st.SizeBits == 0 || st.SizeBits != f.SizeBits() {
		t.Fatalf("SizeBits mismatch: stats %d, method %d", st.SizeBits, f.SizeBits())
	}
	f.Reset()
	if f.Count() != 0 {
		t.Fatalf("Count = %d after Reset", f.Count())
	}
}

// TestConcurrentInsertProbe hammers inserts, scalar and batched probes,
// and rotations from many goroutines; run with -race. Correctness checked
// here is "no false negatives for keys this goroutine inserted into the
// current generation"; byte-level equivalence is covered by the
// deterministic tests above.
func TestConcurrentInsertProbe(t *testing.T) {
	f, err := New(bloomFactory(1<<14), 8)
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers = 4, 4
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			r := rng.NewMT19937(uint32(100 + w))
			for i := 0; i < 20_000; i++ {
				k := r.Uint32()
				if err := f.Insert(k); err != nil {
					errCh <- err
					return
				}
				// No rotations run here, so an inserted key must be visible.
				if !f.Contains(k) {
					errCh <- fmt.Errorf("lost key %d", k)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			r := rng.NewMT19937(uint32(200 + g))
			probe := make([]Key, parallelBatchMin)
			sel := make([]uint32, 0, len(probe))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range probe {
					probe[i] = r.Uint32()
				}
				sel = f.ContainsBatch(probe, sel[:0])
				for i := 1; i < len(sel); i++ {
					if sel[i] <= sel[i-1] {
						errCh <- fmt.Errorf("selection vector not ascending")
						return
					}
				}
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := f.Count(); got != writers*20_000 {
		t.Fatalf("Count = %d after %d concurrent inserts", got, writers*20_000)
	}
}

// TestRotateLosslessUnderWriters is the lossless-rotation regression
// test: writers hammer Insert and InsertBatch while a rotator repeatedly
// swaps generations, each rotation's fill replaying a shared key log (the
// production recipe). Every key acknowledged by a writer must be present
// at the end — the dual-write window has to catch exactly the inserts
// that race a rotation's log snapshot and swap. Run with -race.
func TestRotateLosslessUnderWriters(t *testing.T) {
	f, err := New(exactFactory, 8)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	perWriter := 20_000
	if testing.Short() {
		perWriter = 5_000
	}

	// The durable key log: writers append before inserting, rotations
	// replay a snapshot of it. Keys appended after a rotation's snapshot
	// are exactly the ones only the dual-write window can save.
	var logMu sync.Mutex
	log := make([]Key, 0, writers*perWriter)
	snapshotLog := func() []Key {
		logMu.Lock()
		defer logMu.Unlock()
		return log[:len(log):len(log)]
	}

	var writerWG sync.WaitGroup
	errCh := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			batch := make([]Key, 0, 64)
			for i := 0; i < perWriter; i++ {
				// Unique key per (writer, i): no cross-writer collisions.
				k := Key(i*writers + w)
				logMu.Lock()
				log = append(log, k)
				logMu.Unlock()
				if i%3 == 2 {
					// Exercise the batch path too.
					batch = append(batch[:0], k, k^0x80000000)
					logMu.Lock()
					log = append(log, batch[1])
					logMu.Unlock()
					if _, err := f.InsertBatch(batch); err != nil {
						errCh <- err
						return
					}
				} else if err := f.Insert(k); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Rotate back-to-back until the writers finish: the final rotation's
	// log snapshot is then guaranteed to race live inserts, so without the
	// dual-write window the keys acknowledged after that snapshot would
	// vanish with the swap.
	writersDone := make(chan struct{})
	go func() {
		writerWG.Wait()
		close(writersDone)
	}()
	done := make(chan struct{})
	var rotations int
	go func() {
		defer close(done)
		for {
			select {
			case <-writersDone:
				return
			default:
			}
			err := f.Rotate(nil, func(insert func(Key) error) error {
				for _, k := range snapshotLog() {
					if err := insert(k); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				errCh <- err
				return
			}
			rotations++
		}
	}()
	<-done
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if rotations == 0 {
		t.Fatal("no rotation completed while writers ran")
	}

	acknowledged := snapshotLog()
	sel := f.ContainsBatch(acknowledged, nil)
	if len(sel) != len(acknowledged) {
		// Identify a lost key for the failure message.
		miss := 0
		for _, k := range acknowledged {
			if !f.Contains(k) {
				miss++
			}
		}
		t.Fatalf("%d of %d acknowledged keys lost across %d rotations (e.g. batch selected %d)",
			miss, len(acknowledged), rotations, len(sel))
	}
}

// TestAbortedRotationConsumesID pins the dual-write ordering invariant:
// a rotation that aborts (fill error) must still consume a generation
// id, so its discarded staging generation can never share an id with a
// later successful generation. If ids were reused, a writer stalled
// after dual-writing into the discarded staging generation would judge
// the successor generation "already covered" (same id) and skip it —
// losing an acknowledged write.
func TestAbortedRotationConsumesID(t *testing.T) {
	f, err := New(exactFactory, 2)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := f.Rotate(nil, func(insert func(Key) error) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("aborted rotation: err = %v", err)
	}
	if f.Generation() != 0 {
		t.Fatalf("generation = %d after aborted rotation, want 0", f.Generation())
	}
	if err := f.Rotate(nil, nil); err != nil {
		t.Fatal(err)
	}
	g := f.gen.Load()
	if g.seq != 1 {
		t.Fatalf("seq = %d after aborted+successful rotation, want 1", g.seq)
	}
	if g.id != 2 {
		t.Fatalf("id = %d after aborted+successful rotation, want 2 (aborted rotation must consume an id)", g.id)
	}
}

// TestSnapshotRestore round-trips the sharded wrapper through the
// Snapshot/Restore pair with a trivial per-shard codec.
func TestSnapshotRestore(t *testing.T) {
	f, err := New(exactFactory, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Rotate(nil, nil); err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(5)
	keys := make([]Key, 5000)
	for i := range keys {
		keys[i] = r.Uint32()
		if err := f.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Codec: serialize an exact shard as its raw key list.
	marshal := func(in Inner) ([]byte, error) {
		var out []byte
		for _, k := range keys {
			if in.Contains(k) {
				out = append(out,
					byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
			}
		}
		return out, nil
	}
	unmarshal := func(data []byte) (Inner, error) {
		s := exactInner{s: exact.New(len(data) / 4)}
		for i := 0; i+4 <= len(data); i += 4 {
			k := Key(data[i]) | Key(data[i+1])<<8 | Key(data[i+2])<<16 | Key(data[i+3])<<24
			if err := s.Insert(k); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	snap, err := f.Snapshot(marshal)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 || len(snap.Payloads) != 4 {
		t.Fatalf("snapshot seq=%d shards=%d", snap.Seq, len(snap.Payloads))
	}
	back, err := Restore(snap, unmarshal, exactFactory)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumShards() != 4 || back.Generation() != 1 || back.Count() != f.Count() {
		t.Fatalf("restored shards=%d gen=%d count=%d, want 4/1/%d",
			back.NumShards(), back.Generation(), back.Count(), f.Count())
	}
	sel := back.ContainsBatch(keys, nil)
	if len(sel) != len(keys) {
		t.Fatalf("%d of %d keys present after restore", len(sel), len(keys))
	}
	// Restore with a broken snapshot shape must error, not panic.
	if _, err := Restore(&Snapshot{Seq: 0, Counts: snap.Counts, Payloads: snap.Payloads[:3]}, unmarshal, exactFactory); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
	if _, err := Restore(snap, unmarshal, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestSplitBitsCeiling(t *testing.T) {
	cases := []struct {
		mBits    uint64
		shards   int
		perShard uint64
		p        int
	}{
		{1 << 20, 8, 1 << 17, 8},
		{1000, 3, 250, 4},  // exact division after rounding P
		{1001, 4, 251, 4},  // remainder rounds up, not down
		{7, 8, 1, 8},       // tiny totals still give every shard a bit
		{1, 1024, 1, 1024}, // never truncates to zero for nonzero input
		{0, 4, 0, 4},       // zero stays zero (callers reject it)
	}
	for _, tc := range cases {
		perShard, p := SplitBits(tc.mBits, tc.shards)
		if perShard != tc.perShard || p != tc.p {
			t.Errorf("SplitBits(%d, %d) = (%d, %d), want (%d, %d)",
				tc.mBits, tc.shards, perShard, p, tc.perShard, tc.p)
		}
		if tc.mBits > 0 && perShard*uint64(p) < tc.mBits {
			t.Errorf("SplitBits(%d, %d) covers only %d bits", tc.mBits, tc.shards, perShard*uint64(p))
		}
	}
}

// fullAfter is an Inner that accepts only the first capacity inserts —
// exercises InsertBatch's error path.
type fullAfter struct {
	inner    Inner
	capacity int
	n        int
}

func (f *fullAfter) Insert(key Key) error {
	if f.n >= f.capacity {
		return errors.New("full")
	}
	f.n++
	return f.inner.Insert(key)
}
func (f *fullAfter) Contains(key Key) bool { return f.inner.Contains(key) }
func (f *fullAfter) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return f.inner.ContainsBatch(keys, sel)
}
func (f *fullAfter) SizeBits() uint64     { return f.inner.SizeBits() }
func (f *fullAfter) FPR(n uint64) float64 { return 0 }
func (f *fullAfter) Reset()               { f.n = 0; f.inner.Reset() }
func (f *fullAfter) String() string       { return "fullAfter" }

func TestInsertBatch(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("P=%d", shards), func(t *testing.T) {
			f, err := New(exactFactory, shards)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(13)
			keys := make([]Key, 10_000)
			for i := range keys {
				keys[i] = r.Uint32()
			}
			n, err := f.InsertBatch(keys)
			if err != nil || n != len(keys) {
				t.Fatalf("InsertBatch = (%d, %v), want (%d, nil)", n, err, len(keys))
			}
			if got := f.Count(); got != uint64(len(keys)) {
				t.Fatalf("Count = %d after batch insert of %d", got, len(keys))
			}
			sel := f.ContainsBatch(keys, nil)
			if len(sel) != len(keys) {
				t.Fatalf("%d of %d batch-inserted keys visible", len(sel), len(keys))
			}
		})
	}
}

func TestInsertBatchStopsWhenFull(t *testing.T) {
	const perShard = 100
	f, err := New(func() (Inner, error) {
		return &fullAfter{inner: exactInner{exact.New(1024)}, capacity: perShard}, nil
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(17)
	keys := make([]Key, 4*perShard+500)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	n, err := f.InsertBatch(keys)
	if err == nil {
		t.Fatal("InsertBatch on saturating shards returned no error")
	}
	if n == 0 || uint64(n) != f.Count() {
		t.Fatalf("InsertBatch reported %d inserted, Count says %d", n, f.Count())
	}
}
