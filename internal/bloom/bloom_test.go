package bloom

import (
	"testing"
	"testing/quick"

	"perfilter/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	for _, p := range []Params{{K: 1}, {K: 7}, {K: 16}, {K: 7, Magic: true}} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(42)
			keys := make([]uint32, 3000)
			for i := range keys {
				keys[i] = r.Uint32()
				f.Insert(keys[i])
			}
			for _, k := range keys {
				if !f.Contains(k) {
					t.Fatalf("false negative for %d", k)
				}
			}
		})
	}
}

func TestEmptyRejectsAll(t *testing.T) {
	f, _ := New(Params{K: 7}, 1<<14)
	r := rng.NewSplitMix64(1)
	for i := 0; i < 1000; i++ {
		if f.Contains(r.Uint32()) {
			t.Fatal("empty filter claimed containment")
		}
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	for _, p := range []Params{{K: 7}, {K: 7, Magic: true}} {
		f, _ := New(p, 1<<14)
		r := rng.NewMT19937(5)
		for i := 0; i < 800; i++ {
			f.Insert(r.Uint32())
		}
		probe := make([]uint32, 997)
		for i := range probe {
			probe[i] = r.Uint32()
		}
		sel := f.ContainsBatch(probe, nil)
		j := 0
		for i, k := range probe {
			want := f.Contains(k)
			got := j < len(sel) && sel[j] == uint32(i)
			if got != want {
				t.Fatalf("%s pos %d: batch=%v scalar=%v", p, i, got, want)
			}
			if got {
				j++
			}
		}
	}
}

func TestMeasuredFPRMatchesModel(t *testing.T) {
	const n = 1 << 14
	for _, p := range []Params{{K: 7}, {K: 5, Magic: true}} {
		f, err := New(p, n*10) // 10 bits/key
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewMT19937(3)
		inserted := make(map[uint32]bool, n)
		for len(inserted) < n {
			k := r.Uint32()
			if !inserted[k] {
				inserted[k] = true
				f.Insert(k)
			}
		}
		model := f.FPR(n)
		fp, tested := 0, 0
		for tested < 1<<17 {
			k := r.Uint32()
			if inserted[k] {
				continue
			}
			tested++
			if f.Contains(k) {
				fp++
			}
		}
		measured := float64(fp) / float64(tested)
		if measured > model*1.3+0.002 || measured < model*0.7-0.002 {
			t.Fatalf("%s: measured %.5f vs model %.5f", p, measured, model)
		}
	}
}

func TestMagicSizing(t *testing.T) {
	f, err := New(Params{K: 7, Magic: true}, 1_000_003)
	if err != nil {
		t.Fatal(err)
	}
	if f.SizeBits() < 1_000_003 || float64(f.SizeBits()) > 1_000_003*1.001 {
		t.Fatalf("size %d far from request", f.SizeBits())
	}
	fp, _ := New(Params{K: 7}, 1_000_003)
	if fp.SizeBits() != 1<<20 {
		t.Fatalf("pow2 size %d, want 2^20", fp.SizeBits())
	}
}

func TestSizeLimits(t *testing.T) {
	if _, err := New(Params{K: 4}, 0); err == nil {
		t.Fatal("accepted zero size")
	}
	if _, err := New(Params{K: 4}, 1<<32); err == nil {
		t.Fatal("accepted oversized classic filter")
	}
	if _, err := New(Params{K: 0}, 1024); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := New(Params{K: 17}, 1024); err == nil {
		t.Fatal("accepted k>16")
	}
}

func TestReset(t *testing.T) {
	f, _ := New(Params{K: 4}, 1<<12)
	f.Insert(9)
	f.Reset()
	if f.Contains(9) {
		t.Fatal("containment after reset")
	}
}

func TestQuickProperty(t *testing.T) {
	f, _ := New(Params{K: 6, Magic: true}, 1<<16)
	if err := quick.Check(func(key uint32) bool {
		f.Insert(key)
		return f.Contains(key)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeShortCircuitCheaper documents the t−l ≪ t+l asymmetry from §2
// by comparing probe work, not time: an almost-empty filter answers most
// negative probes after one bit test.
func TestNegativeShortCircuitCheaper(t *testing.T) {
	f, _ := New(Params{K: 16}, 1<<20)
	f.Insert(1) // nearly empty: first probed bit is almost surely 0
	r := rng.NewSplitMix64(9)
	neg := 0
	for i := 0; i < 1000; i++ {
		if !f.Contains(r.Uint32()) {
			neg++
		}
	}
	if neg < 990 {
		t.Fatalf("expected ≈1000 early-exit negatives, got %d", neg)
	}
}

func BenchmarkContains(b *testing.B) {
	f, _ := New(Params{K: 7}, 1<<20)
	r := rng.NewMT19937(1)
	for i := 0; i < 1<<14; i++ {
		f.Insert(r.Uint32())
	}
	probe := make([]uint32, 1024)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	sel := make([]uint32, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = f.ContainsBatch(probe, sel[:0])
	}
}
