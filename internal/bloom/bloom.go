// Package bloom implements the classic (unblocked) Bloom filter of Bloom
// (1970): k hash functions address bits anywhere in the m-bit array.
//
// The classic filter is the paper's precision baseline (Eq. 2) and its cost
// cautionary tale (§2): negative lookups short-circuit on the first unset
// bit (t−l is small), but positive lookups must compute all k hashes and
// touch up to k cache lines (t+l ≫ t−l), and the access pattern defeats the
// SIMD batching that makes blocked filters cheap. The paper found classic
// Bloom filters never performance-optimal; this implementation exists so
// the repository can demonstrate that, and as the precision reference for
// the FPR experiments.
//
// Safe for concurrent readers; inserts require external synchronization.
package bloom

import (
	"fmt"

	"perfilter/internal/core"
	"perfilter/internal/fpr"
	"perfilter/internal/hashing"
	"perfilter/internal/magic"
	"perfilter/internal/mem"
	"perfilter/internal/simd"
)

// Params describes a classic Bloom filter configuration.
type Params struct {
	// K is the number of hash functions, 1..fpr.MaxK.
	K uint32
	// Magic selects magic-modulo bit addressing; false selects
	// power-of-two addressing.
	Magic bool
}

// Validate checks the configuration.
func (p Params) Validate() error {
	if p.K == 0 || p.K > fpr.MaxK {
		return fmt.Errorf("bloom: k=%d out of range [1, %d]", p.K, fpr.MaxK)
	}
	return nil
}

// String renders the configuration.
func (p Params) String() string {
	mod := "pow2"
	if p.Magic {
		mod = "magic"
	}
	return fmt.Sprintf("bloom/classic[k=%d,%s]", p.K, mod)
}

// FPR evaluates Eq. 2.
func (p Params) FPR(mBits, n uint64) float64 {
	return fpr.Std(float64(mBits), float64(n), p.K)
}

// Filter is a classic Bloom filter. Construct with New.
type Filter struct {
	params  Params
	words   []uint64
	mBits   uint32 // actual size in bits (≤ 2^32 − granularity)
	bitMask uint32
	dv      magic.Divider
}

// New builds a filter of the requested size in bits, rounded up to the next
// power of two (power-of-two addressing) or the next class-(ii) magic
// divisor of 64-bit words (magic addressing). Classic filters address
// individual bits with 32-bit hashes, so sizes are limited to 2^31 bits
// (256 MiB) — beyond every classic-Bloom configuration the paper evaluates.
func New(p Params, mBits uint64) (*Filter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mBits == 0 {
		return nil, fmt.Errorf("bloom: size must be positive")
	}
	if mBits > 1<<31 {
		return nil, fmt.Errorf("bloom: classic filter size %d exceeds 2^31 bits", mBits)
	}
	f := &Filter{params: p}
	if p.Magic {
		// The divider addresses individual bits; the word array is sized
		// to cover the rounded bit count.
		f.dv = magic.Next(uint32(mBits))
		f.mBits = f.dv.D()
	} else {
		pow := uint64(1)
		for pow < mBits {
			pow <<= 1
		}
		f.mBits = uint32(pow)
		f.bitMask = uint32(pow) - 1
	}
	f.words = mem.Aligned[uint64](int((uint64(f.mBits) + 63) / 64))
	return f, nil
}

// StorageAligned reports whether the word array starts on a cache-line
// boundary (always true for filters from New).
func (f *Filter) StorageAligned() bool { return mem.IsAligned(f.words) }

// bitPos consumes 32 hash bits and maps them to a bit position.
func (f *Filter) bitPos(s *hashing.Sink) uint32 {
	h := s.Next(32)
	if f.params.Magic {
		return f.dv.Mod(h)
	}
	return h & f.bitMask
}

// Insert adds a key, setting k bits anywhere in the array (up to k cache
// lines touched — the classic filter's bandwidth cost).
func (f *Filter) Insert(key core.Key) {
	s := hashing.NewSink(key)
	for i := uint32(0); i < f.params.K; i++ {
		pos := f.bitPos(&s)
		f.words[pos>>6] |= 1 << (pos & 63)
	}
}

// Contains reports whether key may be in the set. Negative probes
// short-circuit on the first unset bit: the t−l ≪ t+l asymmetry of §2.
func (f *Filter) Contains(key core.Key) bool {
	s := hashing.NewSink(key)
	for i := uint32(0); i < f.params.K; i++ {
		pos := f.bitPos(&s)
		if f.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// ContainsBatch appends matching positions to sel. Classic Bloom filters
// resist lane-parallel batching (each key needs a variable number of
// dependent probes — §7 discusses the refill problem of SIMD attempts), so
// the batch path is the scalar loop with branch-free selection writes.
func (f *Filter) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	buf, cnt := simd.GrowSel(sel, len(keys))
	for i, key := range keys {
		buf[cnt] = uint32(i)
		cnt += simd.B2I(f.Contains(key))
	}
	return buf[:cnt]
}

// SizeBits returns the actual size in bits.
func (f *Filter) SizeBits() uint64 { return uint64(f.mBits) }

// Params returns the configuration.
func (f *Filter) Params() Params { return f.params }

// FPR returns the analytic false-positive rate with n keys inserted.
func (f *Filter) FPR(n uint64) float64 { return f.params.FPR(f.SizeBits(), n) }

// Reset clears the filter.
func (f *Filter) Reset() { clear(f.words) }
