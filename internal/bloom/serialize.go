package bloom

import (
	"encoding/binary"
	"fmt"

	"perfilter/internal/magic"
)

// Serialization mirrors package blocked's: a fixed little-endian header
// (magic, version, parameters, bit count) followed by the raw word array,
// canonicalized to little-endian so filters deserialize on any
// architecture.

// WireMagic is the first little-endian uint32 of every serialized classic
// filter; the perfilter package dispatches decoders on it. The value is
// assigned centrally in internal/magic alongside every other format's.
const WireMagic = magic.WireClassic // "pfLK"

const (
	wireVersion = 1
	headerLen   = 4 + 1 + 1 + 4 + 4
)

// MarshalBinary serializes the filter (header + words).
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, headerLen+len(f.words)*8)
	le := binary.LittleEndian
	le.PutUint32(out[0:], WireMagic)
	out[4] = wireVersion
	if f.params.Magic {
		out[5] = 1
	}
	le.PutUint32(out[6:], f.params.K)
	le.PutUint32(out[10:], f.mBits)
	for i, w := range f.words {
		le.PutUint64(out[headerLen+i*8:], w)
	}
	return out, nil
}

// Unmarshal reconstructs a filter from MarshalBinary output.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("bloom: truncated header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != WireMagic {
		return nil, fmt.Errorf("bloom: bad magic")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("bloom: unsupported version %d", data[4])
	}
	p := Params{Magic: data[5] == 1, K: le.Uint32(data[6:])}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mBits := le.Uint32(data[10:])
	if mBits == 0 {
		return nil, fmt.Errorf("bloom: zero size")
	}
	// Reject sizes the input cannot possibly carry before allocating the
	// word array (see the equivalent guard in package blocked).
	if uint64(mBits) > uint64(len(data))*8 {
		return nil, fmt.Errorf("bloom: %d bits exceed the %d-byte encoding", mBits, len(data))
	}
	// Rebuild through New at the exact rounded size: both addressing modes
	// round an already-rounded size to itself, so the divider and word
	// array must come out identical to the original's.
	f, err := New(p, uint64(mBits))
	if err != nil {
		return nil, err
	}
	if f.mBits != mBits {
		return nil, fmt.Errorf("bloom: size mismatch (%d vs %d)", f.mBits, mBits)
	}
	if len(data) != headerLen+len(f.words)*8 {
		return nil, fmt.Errorf("bloom: body length %d, want %d",
			len(data)-headerLen, len(f.words)*8)
	}
	for i := range f.words {
		f.words[i] = le.Uint64(data[headerLen+i*8:])
	}
	return f, nil
}
