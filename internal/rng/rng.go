// Package rng provides the deterministic pseudo-random generators used by
// the workload generator and the filters themselves.
//
// The paper generates its evaluation data ("random 32-bit integers, uniformly
// distributed") with the Mersenne Twister engine from the C++ standard
// library; MT19937 is reimplemented here so workloads match the paper's
// construction. SplitMix64 provides cheap, high-quality seeding and is also
// used where a small fast generator is sufficient (e.g., choosing the victim
// slot during cuckoo relocation).
package rng

// MT19937 is the 32-bit Mersenne Twister (Matsumoto & Nishimura, 1998) with
// the standard parameter set, equivalent to C++'s std::mt19937.
type MT19937 struct {
	state [624]uint32
	index int
}

const (
	mtN          = 624
	mtM          = 397
	mtMatrixA    = 0x9908b0df
	mtUpperMask  = 0x80000000
	mtLowerMask  = 0x7fffffff
	mtInitMult   = 1812433253
	mtDefaultKey = 5489
)

// NewMT19937 returns a generator seeded like std::mt19937(seed).
func NewMT19937(seed uint32) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed reinitializes the generator state from a 32-bit seed using the
// reference initialization routine.
func (m *MT19937) Seed(seed uint32) {
	m.state[0] = seed
	for i := 1; i < mtN; i++ {
		m.state[i] = mtInitMult*(m.state[i-1]^(m.state[i-1]>>30)) + uint32(i)
	}
	m.index = mtN
}

// Uint32 returns the next 32-bit output of the generator.
func (m *MT19937) Uint32() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	// Tempering.
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

// generate refills the state array (the "twist" step).
func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		next := m.state[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}

// Uint64 combines two 32-bit outputs, high word first, matching the common
// idiom for drawing 64-bit values from a 32-bit engine.
func (m *MT19937) Uint64() uint64 {
	hi := uint64(m.Uint32())
	lo := uint64(m.Uint32())
	return hi<<32 | lo
}

// Uint32n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. n must be > 0.
func (m *MT19937) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	x := m.Uint32()
	mul := uint64(x) * uint64(n)
	lo := uint32(mul)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = m.Uint32()
			mul = uint64(x) * uint64(n)
			lo = uint32(mul)
		}
	}
	return uint32(mul >> 32)
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (m *MT19937) Float64() float64 {
	return float64(m.Uint64()>>11) / (1 << 53)
}

// SplitMix64 is Steele et al.'s 64-bit mixing generator. Its state update is
// a single addition, making it essentially free; the output function is a
// strong 64-bit finalizer. It is used for seeding and for the small amount
// of randomness the filters themselves need.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator with the given initial state.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next output.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return Mix64(s.state)
}

// Uint32 returns the upper 32 bits of the next 64-bit output (the
// better-mixed half).
func (s *SplitMix64) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Uint32n returns a uniform value in [0, n); n must be > 0.
func (s *SplitMix64) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	return uint32((uint64(s.Uint32()) * uint64(n)) >> 32)
}

// Mix64 is the SplitMix64 output finalizer: a fixed 64-bit permutation with
// full avalanche. Exposed because the hashing substrate reuses it to stretch
// a key's hash into an arbitrarily long bit stream.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
