package rng

import (
	"testing"
	"testing/quick"
)

// Reference outputs of std::mt19937 seeded with 5489 (the C++ default seed).
// The 10000th output (index 9999) being 4123659995 is the classic
// cross-implementation check published with the reference code.
func TestMT19937ReferenceSequence(t *testing.T) {
	m := NewMT19937(5489)
	want := []uint32{
		3499211612, 581869302, 3890346734, 3586334585, 545404204,
		4161255391, 3922919429, 949333985, 2715962298, 1323567403,
	}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d: got %d, want %d", i, got, w)
		}
	}
}

func TestMT19937TenThousandth(t *testing.T) {
	m := NewMT19937(5489)
	var v uint32
	for i := 0; i < 10000; i++ {
		v = m.Uint32()
	}
	if v != 4123659995 {
		t.Fatalf("10000th output: got %d, want 4123659995", v)
	}
}

func TestMT19937SeedDeterminism(t *testing.T) {
	a := NewMT19937(12345)
	b := NewMT19937(12345)
	for i := 0; i < 2000; i++ {
		if x, y := a.Uint32(), b.Uint32(); x != y {
			t.Fatalf("divergence at %d: %d vs %d", i, x, y)
		}
	}
}

func TestMT19937Reseed(t *testing.T) {
	m := NewMT19937(42)
	first := make([]uint32, 100)
	for i := range first {
		first[i] = m.Uint32()
	}
	m.Seed(42)
	for i := range first {
		if got := m.Uint32(); got != first[i] {
			t.Fatalf("reseed mismatch at %d", i)
		}
	}
}

func TestMT19937DifferentSeedsDiffer(t *testing.T) {
	a := NewMT19937(1)
	b := NewMT19937(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seeds 1 and 2 produced %d/1000 identical outputs", same)
	}
}

func TestUint32nBounds(t *testing.T) {
	m := NewMT19937(7)
	for _, n := range []uint32{1, 2, 3, 10, 1000, 1 << 20, 1<<31 + 3} {
		for i := 0; i < 200; i++ {
			if v := m.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint32nOneIsZero(t *testing.T) {
	m := NewMT19937(9)
	for i := 0; i < 100; i++ {
		if v := m.Uint32n(1); v != 0 {
			t.Fatalf("Uint32n(1) = %d", v)
		}
	}
}

func TestUint32nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMT19937(1).Uint32n(0)
}

func TestUint32nRoughUniformity(t *testing.T) {
	m := NewMT19937(1234)
	const n = 8
	const draws = 80000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		buckets[m.Uint32n(n)]++
	}
	want := draws / n
	for i, c := range buckets {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, expected ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	m := NewMT19937(99)
	for i := 0; i < 10000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestSplitMix64Known(t *testing.T) {
	// Reference values for seed 1234567 from the public-domain C version.
	s := NewSplitMix64(1234567)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitmix64 output %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSplitMix64Determinism(t *testing.T) {
	a, b := NewSplitMix64(77), NewSplitMix64(77)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Mix64 is a permutation of uint64; sampled collisions would disprove it.
	seen := make(map[uint64]uint64, 4096)
	for i := uint64(0); i < 4096; i++ {
		v := Mix64(i * 0x9E3779B97F4A7C15)
		if prev, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision: inputs %d and %d", prev, i)
		}
		seen[v] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	if err := quick.Check(func(x uint64) bool {
		base := Mix64(x)
		flipped := Mix64(x ^ 1)
		diff := popcount64(base ^ flipped)
		return diff >= 10 && diff <= 54
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMixUint32nBounds(t *testing.T) {
	s := NewSplitMix64(5)
	for _, n := range []uint32{1, 7, 100, 1 << 30} {
		for i := 0; i < 100; i++ {
			if v := s.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) = %d", n, v)
			}
		}
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkMT19937(b *testing.B) {
	m := NewMT19937(1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = m.Uint32()
	}
	_ = sink
}

func BenchmarkSplitMix64(b *testing.B) {
	s := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}
