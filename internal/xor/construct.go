package xor

import (
	"fmt"
	"math"

	"perfilter/internal/mem"
	"perfilter/internal/rng"
)

// Construction solves the fingerprint table by hypergraph peeling (the
// standard xor-filter algorithm): count the keys mapping to every slot,
// repeatedly peel a slot covering exactly one key onto a stack, and — if
// every key peels — assign fingerprints in reverse stack order so each
// key's three-slot xor equals its fingerprint. A random 3-uniform
// hypergraph at ≥1.23 slots per key (≥1.13 with the segmented fuse
// layout) peels with high probability; failures retry with a fresh seed,
// and every few failed seeds the table grows a notch so termination does
// not ride on luck.

const (
	// maxSeedAttempts bounds the retry loop; with size growth every
	// growEvery failures, reaching it is practically impossible.
	maxSeedAttempts = 64
	growEvery       = 4
)

// solve builds the table for a deduplicated key set.
func solve(p Params, keys []Key) (table, error) {
	n := uint64(len(keys))
	if n == 0 {
		return table{fuse: p.Fuse}, nil
	}
	slots := p.slotsForKeys(n)
	for attempt := 0; attempt < maxSeedAttempts; attempt++ {
		t := layoutFor(p, slots, n)
		t.seed = rng.Mix64(uint64(attempt)*0x9E3779B97F4A7C15 + 0xA076_1D64_78BD_642F)
		t.n = n
		if sk, ss, ok := peel(&t, keys); ok {
			assign(&t, sk, ss)
			return t, nil
		}
		if (attempt+1)%growEvery == 0 {
			slots += slots/16 + 16
		}
	}
	return table{}, fmt.Errorf("xor: peeling failed for %d keys after %d seeds", n, maxSeedAttempts)
}

// layoutFor resolves the slot budget into a concrete layout (without
// fingerprints or seed).
func layoutFor(p Params, slots uint64, n uint64) table {
	t := table{fuse: p.Fuse}
	if p.Fuse {
		// Segments are power-of-two sized so in-segment offsets mask. The
		// length follows the binary-fuse paper's rule ~2^(log3.33(n)+2.25):
		// small sets get short segments (more of them), which keeps the
		// peeling graph irregular enough to peel at the layout's space
		// factor.
		segLen := uint32(1) << 12
		if n > 1 {
			if lg := int(math.Log(float64(n))/math.Log(3.33) + 2.25); lg < 12 {
				segLen = 1 << max(lg, 3)
			}
		}
		for segLen > 8 && uint64(segLen)*6 > slots {
			segLen >>= 1
		}
		segCount := uint32((slots + uint64(segLen) - 1) / uint64(segLen))
		if segCount <= 2 {
			segCount = 3
		}
		segCount -= 2
		t.segLen, t.segCount = segLen, segCount
	} else {
		blockLen := uint32((slots + 2) / 3)
		if blockLen == 0 {
			blockLen = 1
		}
		t.segLen, t.segCount = blockLen, 3
	}
	total := t.totalSlots()
	if p.FingerprintBits == 16 {
		t.fp16 = mem.Aligned[uint16](int(total))
	} else {
		t.fp8 = mem.Aligned[uint8](int(total))
	}
	return t
}

// totalSlots returns the table length implied by the layout.
func (t *table) totalSlots() uint64 {
	if t.fuse {
		return uint64(t.segLen) * uint64(t.segCount+2)
	}
	return 3 * uint64(t.segLen)
}

// peel runs the peeling pass: it returns the peeled (key, slot) stack and
// whether every key peeled. Both layouts place a key's three slots in
// disjoint ranges, so the per-key positions are always distinct and the
// count/xor bookkeeping needs no special cases.
func peel(t *table, keys []Key) (stackKeys []Key, stackSlots []uint32, ok bool) {
	total := t.totalSlots()
	keyMask := make([]Key, total)
	count := make([]uint32, total)
	for _, k := range keys {
		h0, h1, h2, _ := t.positions(k)
		keyMask[h0] ^= k
		count[h0]++
		keyMask[h1] ^= k
		count[h1]++
		keyMask[h2] ^= k
		count[h2]++
	}
	queue := make([]uint32, 0, len(keys))
	for i := uint64(0); i < total; i++ {
		if count[i] == 1 {
			queue = append(queue, uint32(i))
		}
	}
	stackKeys = make([]Key, 0, len(keys))
	stackSlots = make([]uint32, 0, len(keys))
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if count[i] != 1 {
			continue // the slot's last key was peeled via another slot
		}
		k := keyMask[i]
		stackKeys = append(stackKeys, k)
		stackSlots = append(stackSlots, i)
		h0, h1, h2, _ := t.positions(k)
		for _, j := range [3]uint32{h0, h1, h2} {
			keyMask[j] ^= k
			count[j]--
			if count[j] == 1 {
				queue = append(queue, j)
			}
		}
	}
	return stackKeys, stackSlots, len(stackKeys) == len(keys)
}

// assign fills the fingerprint table in reverse peel order (last peeled
// first). When a key is assigned, its peel slot is still zero, so
//
//	T[slot] = fp ^ T[h0] ^ T[h1] ^ T[h2]
//
// (the slot's own zero included in the xor) makes the key's three-slot
// xor equal its fingerprint. The equality then survives all later
// assignments: those belong to earlier-peeled keys, each writing only its
// own peel slot, and a peel slot is never incident to a key that was
// still unpeeled at its peel time — i.e. never to an already-assigned
// key.
func assign(t *table, stackKeys []Key, stackSlots []uint32) {
	for i := len(stackKeys) - 1; i >= 0; i-- {
		k, slot := stackKeys[i], stackSlots[i]
		h0, h1, h2, fp := t.positions(k)
		if t.fp16 != nil {
			t.fp16[slot] = fp ^ t.fp16[h0] ^ t.fp16[h1] ^ t.fp16[h2]
		} else {
			t.fp8[slot] = uint8(fp) ^ t.fp8[h0] ^ t.fp8[h1] ^ t.fp8[h2]
		}
	}
}
