package xor

import (
	"bytes"
	"testing"

	"perfilter/internal/rng"
)

var variants = []Params{
	{FingerprintBits: 8},
	{FingerprintBits: 16},
	{FingerprintBits: 8, Fuse: true},
	{FingerprintBits: 16, Fuse: true},
}

func buildKeys(n int, seed uint32) []Key {
	r := rng.NewMT19937(seed)
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	return keys
}

func TestNoFalseNegatives(t *testing.T) {
	for _, p := range variants {
		for _, n := range []int{0, 1, 2, 17, 1000, 50_000} {
			keys := buildKeys(n, 1)
			f, err := Build(p, keys)
			if err != nil {
				t.Fatalf("%s n=%d: %v", p, n, err)
			}
			if !f.Sealed() {
				t.Fatalf("%s: Build returned an unsealed filter", p)
			}
			for _, k := range keys {
				if !f.Contains(k) {
					t.Fatalf("%s n=%d: false negative for %d", p, n, k)
				}
			}
		}
	}
}

func TestFPRWithinModel(t *testing.T) {
	const n = 100_000
	const probes = 200_000
	for _, p := range variants {
		keys := buildKeys(n, 2)
		f, err := Build(p, keys)
		if err != nil {
			t.Fatal(err)
		}
		member := make(map[Key]bool, n)
		for _, k := range keys {
			member[k] = true
		}
		r := rng.NewMT19937(99)
		fp, tested := 0, 0
		for i := 0; i < probes; i++ {
			k := r.Uint32()
			if member[k] {
				continue
			}
			tested++
			if f.Contains(k) {
				fp++
			}
		}
		measured := float64(fp) / float64(tested)
		model := p.FPR()
		if measured > model*2+1e-4 {
			t.Fatalf("%s: measured FPR %.6f vs model %.6f", p, measured, model)
		}
	}
}

func TestSpaceWithinBudget(t *testing.T) {
	const n = 100_000
	for _, p := range variants {
		f, err := Build(p, buildKeys(n, 3))
		if err != nil {
			t.Fatal(err)
		}
		bpk := float64(f.SizeBits()) / float64(n)
		// The layout rounds the slot budget up; allow ~15% on top of the
		// nominal space factor.
		budget := p.SpaceFactor() * float64(p.FingerprintBits) * 1.15
		if bpk > budget {
			t.Fatalf("%s: %.2f bits/key exceeds %.2f", p, bpk, budget)
		}
	}
}

func TestDuplicateKeysSeal(t *testing.T) {
	keys := buildKeys(1000, 4)
	dup := append(append([]Key(nil), keys...), keys...) // every key twice
	for _, p := range variants {
		f, err := Build(p, dup)
		if err != nil {
			t.Fatalf("%s: duplicate keys broke construction: %v", p, err)
		}
		if f.Count() != 1000 {
			t.Fatalf("%s: count %d after dedup, want 1000", p, f.Count())
		}
		for _, k := range keys {
			if !f.Contains(k) {
				t.Fatalf("%s: false negative for duplicated key", p)
			}
		}
	}
}

func TestLifecyclePhases(t *testing.T) {
	p := Params{FingerprintBits: 8}
	f, err := New(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := buildKeys(5000, 5)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	// Building phase: buffer scan answers exactly.
	if !f.Contains(keys[0]) || f.Sealed() {
		t.Fatal("building-phase probe or state wrong")
	}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := f.Seal(); err != nil { // idempotent
		t.Fatal(err)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatal("false negative after seal")
		}
	}
	// Overflow phase: post-seal inserts stay queryable.
	late := buildKeys(100, 6)
	for _, k := range late {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if f.OverflowLen() == 0 {
		t.Fatal("post-seal inserts did not land in overflow")
	}
	for _, k := range late {
		if !f.Contains(k) {
			t.Fatal("false negative for overflow key")
		}
	}
	f.Reset()
	if f.Sealed() || f.Contains(keys[0]) || f.Count() != 0 {
		t.Fatal("Reset did not return to the empty building phase")
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	for _, p := range variants {
		keys := buildKeys(20_000, 7)
		f, err := Build(p, keys)
		if err != nil {
			t.Fatal(err)
		}
		// Mix members and misses; also exercise the overflow fallback.
		for phase := 0; phase < 2; phase++ {
			probe := buildKeys(4096+13, 8+uint32(phase))
			copy(probe[:100], keys[:100])
			sel := f.ContainsBatch(probe, nil)
			want := make([]uint32, 0, len(probe))
			for i, k := range probe {
				if f.Contains(k) {
					want = append(want, uint32(i))
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("%s phase %d: batch %d hits, scalar %d", p, phase, len(sel), len(want))
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("%s: batch/scalar diverge at %d", p, i)
				}
			}
			f.Insert(probe[len(probe)-1]) // push into overflow for phase 1
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, p := range variants {
		keys := buildKeys(30_000, 9)
		f, err := Build(p, keys)
		if err != nil {
			t.Fatal(err)
		}
		f.Insert(0xDEADBEEF) // overflow key
		data, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		g, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		probe := buildKeys(4096, 10)
		copy(probe[:50], keys[:50])
		a := f.ContainsBatch(probe, nil)
		b := g.ContainsBatch(probe, nil)
		if !bytes.Equal(u32bytes(a), u32bytes(b)) {
			t.Fatalf("%s: round trip changed probe results", p)
		}
		if !g.Contains(0xDEADBEEF) {
			t.Fatalf("%s: overflow key lost in round trip", p)
		}
		data2, err := g.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("%s: re-marshal not byte-identical", p)
		}
	}
}

func TestSerializeUnsealed(t *testing.T) {
	p := Params{FingerprintBits: 16, Fuse: true}
	f, _ := New(p, 0)
	keys := buildKeys(500, 11)
	for _, k := range keys {
		f.Insert(k)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Sealed() {
		t.Fatal("unsealed filter restored as sealed")
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatal("pending key lost in round trip")
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	f, _ := Build(Params{FingerprintBits: 8}, buildKeys(1000, 12))
	data, _ := f.MarshalBinary()
	for _, cut := range []int{0, 3, headerLen - 1, headerLen + 5, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), data...)
	bad[16] ^= 0xFF // segment length no longer matches the slot count
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("layout mismatch accepted")
	}

	// A sealed fuse header claiming segCount == 0 must be rejected at
	// decode time: its probes would index past the table (seg+2 segments
	// are always read). Craft one consistent with its own slot count.
	fz, _ := Build(Params{FingerprintBits: 8, Fuse: true}, buildKeys(5, 13))
	raw, _ := fz.MarshalBinary()
	zero := append([]byte(nil), raw...)
	le := func(off int, v uint32) {
		zero[off], zero[off+1], zero[off+2], zero[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	segLen := uint32(len(raw)-headerLen) / 2 // table bytes / (0+2) segments
	le(16, segLen)                           // segLen
	le(20, 0)                                // segCount = 0
	zero[32], zero[33] = byte(2*segLen), byte(2*segLen>>8)
	for i := 34; i < 40; i++ {
		zero[i] = 0
	}
	// Table length unchanged, so only the layout fields are inconsistent
	// in the dangerous way. Decode must refuse, not defer a panic to the
	// first Contains.
	if f2, err := Unmarshal(zero); err == nil {
		f2.Contains(42) // would index out of range without the guard
		t.Fatal("zero segment count accepted")
	}
}

func u32bytes(v []uint32) []byte {
	out := make([]byte, 0, len(v)*4)
	for _, x := range v {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}
