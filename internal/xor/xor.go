// Package xor implements the xor filter family (Graf & Lemire, "Xor
// Filters: Faster and Smaller Than Bloom and Cuckoo Filters", see
// PAPERS.md): xor8/xor16 and their 3-wise binary-fuse layout variants.
//
// An xor filter stores one w-bit fingerprint per table slot; a key k maps
// to three slots h0(k), h1(k), h2(k) and is a member iff
//
//	fingerprint(k) == T[h0] ^ T[h1] ^ T[h2]
//
// which gives a false-positive rate of 2^-w at ≈1.23·w bits per key (the
// fuse layout tightens the constant to ≈1.13 and confines the three slots
// to three adjacent segments, improving probe locality). The structure is
// build-once: the table is solved by hypergraph peeling from the complete
// key set, and single-key inserts cannot be applied to a solved table.
//
// This package therefore models a filter lifecycle with three phases:
//
//   - building: Insert buffers keys; probes scan the buffer linearly.
//   - sealed (after Seal or Build): probes run the O(1) fingerprint test.
//   - overflow: Insert after Seal parks keys in a side hash set that
//     probes also consult, so the no-false-negative contract survives
//     writers racing a sealed generation (the sharded rotation window).
//     Overflow keys are NOT in the solved table; rebuilding them in is
//     the next migration's job (perfilter's adaptive key log replays
//     them losslessly).
//
// Construction retries peeling with fresh seeds and, every few failures,
// a slightly larger table, so Seal always terminates. Duplicate keys are
// deduplicated before peeling (a duplicated key's three slots could never
// peel).
package xor

import (
	"fmt"
	"math"

	"perfilter/internal/core"
	"perfilter/internal/fpr"
	"perfilter/internal/mem"
	"perfilter/internal/rng"
)

// Key is the key type shared with the rest of the repository.
type Key = core.Key

// Params selects the family member: fingerprint width (8 or 16 bits) and
// the table layout (three equal blocks for the classic xor layout, or
// consecutive small segments for the binary-fuse layout).
type Params struct {
	// FingerprintBits is the stored fingerprint width w ∈ {8, 16}; the
	// false-positive rate is 2^-w.
	FingerprintBits uint32
	// Fuse selects the 3-wise binary-fuse layout: the three probe slots
	// fall in three consecutive segments instead of three thirds of the
	// table, which lowers the space overhead (≈1.13 vs ≈1.23) and keeps
	// the probe's memory accesses near one another.
	Fuse bool
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.FingerprintBits != 8 && p.FingerprintBits != 16 {
		return fmt.Errorf("xor: fingerprint width %d not in {8, 16}", p.FingerprintBits)
	}
	return nil
}

// String renders the parameters in the family's usual notation.
func (p Params) String() string {
	if p.Fuse {
		return fmt.Sprintf("fuse%d", p.FingerprintBits)
	}
	return fmt.Sprintf("xor%d", p.FingerprintBits)
}

// FPR returns the analytic false-positive rate 2^-w (fpr.Xor). Unlike
// the Bloom and cuckoo models it does not depend on the load: the table
// is solved exactly for its key set. Invalid parameters report 1, the
// same convention as the root Config.FPR.
func (p Params) FPR() float64 {
	if p.Validate() != nil {
		return 1
	}
	return fpr.Xor(p.FingerprintBits)
}

// SpaceFactor is the asymptotic slots-per-key constant of the layout:
// the solved table needs ≈1.23·n slots (xor) or ≈1.13·n (fuse) for
// peeling to succeed with high probability at large n. Small fuse tables
// need more headroom (see spaceFactor), which SizeForKeys accounts for.
func (p Params) SpaceFactor() float64 {
	if p.Fuse {
		return 1.13
	}
	return 1.23
}

// spaceFactor is the n-aware slots-per-key ratio. The segmented fuse
// layout's peeling threshold degrades for small sets; the correction
// follows the binary-fuse paper's sizing rule (max(1.125, 0.875 +
// 0.25·ln(10^6)/ln(n))), so construction rarely needs a growth retry.
func (p Params) spaceFactor(n uint64) float64 {
	if !p.Fuse {
		return 1.23
	}
	if n < 16 {
		return 2 // the constant slack dominates tiny sets anyway
	}
	f := 0.875 + 0.25*math.Log(1e6)/math.Log(float64(n))
	if f < 1.125 {
		f = 1.125
	}
	return f
}

// slotsForKeys returns the table slot count construction starts from for
// n distinct keys: the layout's space factor plus a constant slack that
// keeps tiny sets peelable.
func (p Params) slotsForKeys(n uint64) uint64 {
	slots := uint64(math.Ceil(p.spaceFactor(n)*float64(n))) + 32
	if slots < 3 {
		slots = 3
	}
	return slots
}

// SizeForKeys returns the sealed filter's approximate size in bits for n
// distinct keys — the sizing rule the performance model uses (layout
// rounding adds at most a few percent on top).
func (p Params) SizeForKeys(n uint64) uint64 {
	return p.slotsForKeys(n) * uint64(p.FingerprintBits)
}

// Filter is one xor/fuse filter with the building → sealed → overflow
// lifecycle described in the package comment. It is not internally
// synchronized: like every other filter in this repository, concurrent
// readers are safe on a quiescent filter, and writes (Insert, Seal,
// Reset) need external synchronization — the sharded wrapper's per-shard
// locks provide it on the concurrent paths.
type Filter struct {
	params Params
	tab    table
	sealed bool
	// pending buffers inserts until Seal solves the table from them.
	pending []Key
	// overflow holds keys inserted after Seal: a slice in arrival order
	// (serialization) plus a set for O(1) probes.
	overflow    []Key
	overflowSet map[Key]struct{}
}

// table is the solved (immutable) probe structure.
type table struct {
	seed uint64
	// segLen/segCount describe the layout: for the fuse layout the table
	// is (segCount+2)·segLen slots and a key probes one offset in each of
	// three consecutive segments; for the xor layout segCount == 3 and
	// segLen is the block length (offsets drawn by multiply-shift rather
	// than masking). segLen is a power of two for fuse, arbitrary for xor.
	segLen   uint32
	segCount uint32
	fuse     bool
	n        uint64 // distinct keys solved into the table
	fp8      []uint8
	fp16     []uint16
}

// New returns an empty filter in the building phase. sizeHint, in bits,
// only presizes the insert buffer (the sealed size is determined by the
// key count at Seal time, not by a byte budget); 0 is fine.
func New(p Params, sizeHint uint64) (*Filter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := &Filter{params: p}
	if perKey := uint64(p.FingerprintBits); sizeHint > 0 {
		hint := sizeHint / (perKey * 2)
		if hint > 1<<24 {
			hint = 1 << 24
		}
		f.pending = make([]Key, 0, hint)
	}
	return f, nil
}

// Build constructs a sealed filter directly from a key slice (duplicates
// allowed; they are deduplicated). The input slice is not retained.
func Build(p Params, keys []Key) (*Filter, error) {
	f, err := New(p, 0)
	if err != nil {
		return nil, err
	}
	f.pending = append(f.pending, keys...)
	if err := f.Seal(); err != nil {
		return nil, err
	}
	return f, nil
}

// Params returns the filter's parameters.
func (f *Filter) Params() Params { return f.params }

// Sealed reports whether the table has been solved.
func (f *Filter) Sealed() bool { return f.sealed }

// OverflowLen returns the number of keys parked in the post-seal overflow
// buffer (keys awaiting the next rebuild).
func (f *Filter) OverflowLen() int { return len(f.overflow) }

// Insert adds a key: into the build buffer before Seal, into the overflow
// set after. It never fails — the filter has no load limit, only a
// deferred build. A post-seal insert of a key the table already answers
// for is a no-op: the membership contract is already satisfied, and
// keeping such keys out of overflow preserves the batched kernel's fast
// path (and the overflow buffer's footprint) under re-insert/upsert
// traffic.
func (f *Filter) Insert(key Key) error {
	if !f.sealed {
		f.pending = append(f.pending, key)
		return nil
	}
	if f.tab.contains(key) {
		return nil
	}
	if _, dup := f.overflowSet[key]; dup {
		return nil
	}
	if f.overflowSet == nil {
		f.overflowSet = make(map[Key]struct{}, 8)
	}
	f.overflowSet[key] = struct{}{}
	f.overflow = append(f.overflow, key)
	return nil
}

// Seal solves the table from the buffered keys and enters the sealed
// phase. Sealing an already-sealed filter is a no-op (the overflow buffer
// cannot be folded into a solved table; a rebuild from the full key set —
// e.g. the adaptive key log — is the way to absorb it). Construction
// retries peeling across seeds and growing table sizes, so an error is
// effectively impossible; it is surfaced rather than panicking to match
// the repository's constructor conventions.
func (f *Filter) Seal() error {
	if f.sealed {
		return nil
	}
	tab, err := solve(f.params, dedup(f.pending))
	if err != nil {
		return err
	}
	f.tab = tab
	f.pending = nil
	f.sealed = true
	return nil
}

// Contains reports whether key may be in the set. Sealed filters answer
// with the three-slot fingerprint test plus an overflow-set lookup;
// building filters scan the insert buffer (exact, O(pending) — the
// building phase is for construction, not serving).
func (f *Filter) Contains(key Key) bool {
	if f.sealed {
		if f.tab.contains(key) {
			return true
		}
		_, ok := f.overflowSet[key]
		return ok
	}
	for _, k := range f.pending {
		if k == key {
			return true
		}
	}
	return false
}

// SizeBits returns the filter's current footprint: the solved table plus
// 32 bits per buffered (pending or overflow) key.
func (f *Filter) SizeBits() uint64 {
	var bits uint64
	if f.sealed {
		bits = uint64(len(f.tab.fp8))*8 + uint64(len(f.tab.fp16))*16
	}
	return bits + uint64(len(f.pending)+len(f.overflow))*32
}

// Count returns the number of keys the filter answers for: solved keys
// plus buffered ones.
func (f *Filter) Count() uint64 {
	return f.tab.n + uint64(len(f.pending)+len(f.overflow))
}

// FPR returns the analytic false-positive rate (2^-w, independent of n).
func (f *Filter) FPR(n uint64) float64 { return f.params.FPR() }

// StorageAligned reports whether the fingerprint table starts on a
// cache-line boundary. An unsealed filter has no table yet and is
// vacuously aligned.
func (f *Filter) StorageAligned() bool {
	return mem.IsAligned(f.tab.fp8) && mem.IsAligned(f.tab.fp16)
}

// Reset returns the filter to the empty building phase.
func (f *Filter) Reset() {
	f.tab = table{}
	f.sealed = false
	f.pending = nil
	f.overflow = nil
	f.overflowSet = nil
}

// String describes the configuration and phase.
func (f *Filter) String() string {
	if !f.sealed {
		return f.params.String() + "[building]"
	}
	return f.params.String()
}

// hashOf mixes a key with the table seed into the 64-bit hash all probe
// math derives from. rng.Mix64 is a full-avalanche permutation, so every
// seed yields an independent hash family — what the peeling retry loop
// relies on.
func hashOf(key Key, seed uint64) uint64 {
	return rng.Mix64(uint64(key) + seed)
}

// reduce maps a 32-bit hash onto [0, n) by multiply-shift (Lemire's
// fastrange), the same reduction the repository's magic-modulo addressing
// builds on.
func reduce(x, n uint32) uint32 {
	return uint32(uint64(x) * uint64(n) >> 32)
}

// positions returns the three probe slots and the fingerprint for a key
// under the given layout. For the fuse layout the slots land at masked
// offsets inside three consecutive segments; for the xor layout each slot
// is multiply-shift-reduced into its own third of the table.
func (t *table) positions(key Key) (h0, h1, h2 uint32, fp uint16) {
	h := hashOf(key, t.seed)
	fp = fingerprint(h)
	r0, r1, r2 := uint32(h), uint32(h>>21), uint32(h>>42|h<<22)
	if t.fuse {
		seg := reduce(uint32(h>>32), t.segCount)
		mask := t.segLen - 1
		h0 = (seg+0)*t.segLen + (r0 & mask)
		h1 = (seg+1)*t.segLen + (r1 & mask)
		h2 = (seg+2)*t.segLen + (r2 & mask)
		return
	}
	h0 = reduce(r0, t.segLen)
	h1 = t.segLen + reduce(r1, t.segLen)
	h2 = 2*t.segLen + reduce(r2, t.segLen)
	return
}

// fingerprint folds the hash into a 16-bit fingerprint; 8-bit tables use
// the low byte. The fold draws on all 64 hash bits so the fingerprint is
// not a simple alias of the position bits.
func fingerprint(h uint64) uint16 {
	return uint16(h ^ (h >> 32) ^ (h >> 48))
}

// contains is the sealed probe: three loads and an xor compare.
func (t *table) contains(key Key) bool {
	if t.n == 0 {
		return false
	}
	h0, h1, h2, fp := t.positions(key)
	if t.fp16 != nil {
		return fp == t.fp16[h0]^t.fp16[h1]^t.fp16[h2]
	}
	return uint8(fp) == t.fp8[h0]^t.fp8[h1]^t.fp8[h2]
}

// dedup returns the distinct keys of the buffer (order unspecified).
func dedup(keys []Key) []Key {
	seen := make(map[Key]struct{}, len(keys))
	out := make([]Key, 0, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}
