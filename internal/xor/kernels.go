package xor

import (
	"perfilter/internal/core"
	"perfilter/internal/simd"
)

// batchUnroll is the software-pipeline width, shared with the blocked and
// cuckoo kernels (see package simd): hashes and slot addresses for this
// many keys are computed before the corresponding fingerprints are
// gathered and compared, giving the memory system batchUnroll independent
// loads in flight.
const batchUnroll = simd.Width

// ContainsBatch appends to sel the positions of the keys that may be
// contained and returns the extended selection vector. Results are
// bit-identical to calling Contains per key. The pipelined kernel runs on
// a sealed table with an empty overflow buffer — the steady state of a
// sealed generation; the (transient) building and overflow states fall
// back to the scalar path.
func (f *Filter) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	buf, cnt := simd.GrowSel(sel, len(keys))
	if !f.sealed || len(f.overflow) != 0 || f.tab.n == 0 {
		for i, k := range keys {
			buf[cnt] = uint32(i)
			var inc int
			if f.Contains(k) {
				inc = 1
			}
			cnt += inc
		}
		return buf[:cnt]
	}
	if f.tab.fp16 != nil {
		cnt = f.tab.batch16(keys, buf, cnt)
	} else {
		cnt = f.tab.batch8(keys, buf, cnt)
	}
	return buf[:cnt]
}

// batch8 is the pipelined kernel for 8-bit fingerprints.
func (t *table) batch8(keys []core.Key, out []uint32, cnt int) int {
	var (
		n   = len(keys)
		idx [batchUnroll][3]uint32
		fps [batchUnroll]uint8
		tab = t.fp8
	)
	i := 0
	for ; i+batchUnroll <= n; i += batchUnroll {
		for l := 0; l < batchUnroll; l++ {
			h0, h1, h2, fp := t.positions(keys[i+l])
			idx[l] = [3]uint32{h0, h1, h2}
			fps[l] = uint8(fp)
		}
		for l := 0; l < batchUnroll; l++ {
			v := tab[idx[l][0]] ^ tab[idx[l][1]] ^ tab[idx[l][2]]
			out[cnt] = uint32(i + l)
			var inc int
			if v == fps[l] {
				inc = 1
			}
			cnt += inc
		}
	}
	for ; i < n; i++ {
		out[cnt] = uint32(i)
		var inc int
		if t.contains(keys[i]) {
			inc = 1
		}
		cnt += inc
	}
	return cnt
}

// batch16 is the pipelined kernel for 16-bit fingerprints.
func (t *table) batch16(keys []core.Key, out []uint32, cnt int) int {
	var (
		n   = len(keys)
		idx [batchUnroll][3]uint32
		fps [batchUnroll]uint16
		tab = t.fp16
	)
	i := 0
	for ; i+batchUnroll <= n; i += batchUnroll {
		for l := 0; l < batchUnroll; l++ {
			h0, h1, h2, fp := t.positions(keys[i+l])
			idx[l] = [3]uint32{h0, h1, h2}
			fps[l] = fp
		}
		for l := 0; l < batchUnroll; l++ {
			v := tab[idx[l][0]] ^ tab[idx[l][1]] ^ tab[idx[l][2]]
			out[cnt] = uint32(i + l)
			var inc int
			if v == fps[l] {
				inc = 1
			}
			cnt += inc
		}
	}
	for ; i < n; i++ {
		out[cnt] = uint32(i)
		var inc int
		if t.contains(keys[i]) {
			inc = 1
		}
		cnt += inc
	}
	return cnt
}

// compile-time interface check
var _ core.BatchProber = (*Filter)(nil)
