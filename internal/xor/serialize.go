package xor

import (
	"encoding/binary"
	"fmt"

	"perfilter/internal/magic"
	"perfilter/internal/mem"
)

// Serialization mirrors the other families': a fixed little-endian header
// followed by the fingerprint table, then any buffered keys. All three
// lifecycle phases round-trip: a sealed table is restored verbatim (probe
// results byte-identical), and pending/overflow buffers travel as raw
// key lists so a snapshot taken mid-build or mid-rotation loses nothing.

// WireMagic is the first little-endian uint32 of every serialized xor
// filter; the perfilter package dispatches decoders on it. The value is
// assigned centrally in internal/magic alongside every other format's.
const WireMagic = magic.WireXor // "pfLX"

const (
	wireMagic   = WireMagic
	wireVersion = 1
	// header: magic u32, version u8, flags u8 (bit0 sealed, bit1 fuse),
	// fingerprint width u8, reserved u8, seed u64, segLen u32, segCount
	// u32, solved-key count u64, table slot count u64, pending count u64,
	// overflow count u64.
	headerLen = 4 + 1 + 1 + 1 + 1 + 8 + 4 + 4 + 8 + 8 + 8 + 8
)

// MarshalBinary serializes the filter (header, table, buffered keys).
func (f *Filter) MarshalBinary() ([]byte, error) {
	total := f.tab.slotCountForWire()
	w := f.params.FingerprintBits
	out := make([]byte, headerLen, headerLen+total*uint64(w)/8+
		uint64(len(f.pending)+len(f.overflow))*4)
	le := binary.LittleEndian
	le.PutUint32(out[0:], wireMagic)
	out[4] = wireVersion
	var flags uint8
	if f.sealed {
		flags |= 1
	}
	if f.params.Fuse {
		flags |= 2
	}
	out[5] = flags
	out[6] = uint8(w)
	le.PutUint64(out[8:], f.tab.seed)
	le.PutUint32(out[16:], f.tab.segLen)
	le.PutUint32(out[20:], f.tab.segCount)
	le.PutUint64(out[24:], f.tab.n)
	le.PutUint64(out[32:], total)
	le.PutUint64(out[40:], uint64(len(f.pending)))
	le.PutUint64(out[48:], uint64(len(f.overflow)))
	if f.tab.fp16 != nil {
		for _, v := range f.tab.fp16 {
			out = le.AppendUint16(out, v)
		}
	} else {
		out = append(out, f.tab.fp8...)
	}
	for _, k := range f.pending {
		out = le.AppendUint32(out, k)
	}
	for _, k := range f.overflow {
		out = le.AppendUint32(out, k)
	}
	return out, nil
}

// slotCountForWire returns the serialized table length: the layout's slot
// count when a table exists, zero for the empty/building states.
func (t *table) slotCountForWire() uint64 {
	if t.fp8 == nil && t.fp16 == nil {
		return 0
	}
	return t.totalSlots()
}

// Unmarshal reconstructs a filter from MarshalBinary output.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("xor: truncated header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != wireMagic {
		return nil, fmt.Errorf("xor: bad magic")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("xor: unsupported version %d", data[4])
	}
	flags := data[5]
	p := Params{FingerprintBits: uint32(data[6]), Fuse: flags&2 != 0}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := &Filter{params: p, sealed: flags&1 != 0}
	f.tab.seed = le.Uint64(data[8:])
	f.tab.segLen = le.Uint32(data[16:])
	f.tab.segCount = le.Uint32(data[20:])
	f.tab.fuse = p.Fuse
	f.tab.n = le.Uint64(data[24:])
	total := le.Uint64(data[32:])
	nPending := le.Uint64(data[40:])
	nOverflow := le.Uint64(data[48:])
	if total != 0 {
		if f.tab.segLen == 0 {
			return nil, fmt.Errorf("xor: zero segment length with %d slots", total)
		}
		// A fuse probe reaches into segments seg..seg+2 with seg <
		// segCount, so a zero segment count would index past the table
		// on the first Contains — reject it here, not with a panic there
		// (the constructor guarantees segCount >= 1).
		if p.Fuse && f.tab.segCount == 0 {
			return nil, fmt.Errorf("xor: zero segment count with %d slots", total)
		}
		// The layout must reproduce the slot count, or probe indexes would
		// run off the table.
		implied := f.tab.totalSlots()
		if implied != total {
			return nil, fmt.Errorf("xor: slot count %d does not match layout (%d)", total, implied)
		}
	} else if f.sealed && f.tab.n != 0 {
		return nil, fmt.Errorf("xor: sealed filter with %d keys but no table", f.tab.n)
	}
	wBytes := uint64(p.FingerprintBits) / 8
	body := data[headerLen:]
	// Bound every declared count by what the body could possibly hold
	// before doing size arithmetic with it, so a crafted header cannot
	// wrap the length check into a huge allocation: a near-2^64 slot
	// count (from a pathological segLen×segCount product) could
	// otherwise wrap total*wBytes around to a small `need`.
	if total > uint64(len(body))/wBytes {
		return nil, fmt.Errorf("xor: %d slots exceed the %d-byte encoding", total, len(data))
	}
	if nPending > uint64(len(body))/4 || nOverflow > uint64(len(body))/4 {
		return nil, fmt.Errorf("xor: truncated key buffers")
	}
	need := total*wBytes + (nPending+nOverflow)*4
	if uint64(len(body)) != need {
		return nil, fmt.Errorf("xor: body length %d, want %d", len(body), need)
	}
	if total != 0 {
		if p.FingerprintBits == 16 {
			f.tab.fp16 = mem.Aligned[uint16](int(total))
			for i := range f.tab.fp16 {
				f.tab.fp16[i] = le.Uint16(body[2*i:])
			}
		} else {
			f.tab.fp8 = mem.Aligned[uint8](int(total))
			copy(f.tab.fp8, body[:total])
		}
	}
	keyBody := body[total*wBytes:]
	if nPending > 0 {
		f.pending = make([]Key, nPending)
		for i := range f.pending {
			f.pending[i] = le.Uint32(keyBody[4*i:])
		}
	}
	keyBody = keyBody[nPending*4:]
	if nOverflow > 0 {
		f.overflow = make([]Key, nOverflow)
		f.overflowSet = make(map[Key]struct{}, nOverflow)
		for i := range f.overflow {
			k := le.Uint32(keyBody[4*i:])
			f.overflow[i] = k
			f.overflowSet[k] = struct{}{}
		}
	}
	return f, nil
}
