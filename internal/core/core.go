// Package core holds the small set of types shared by every filter kernel:
// the key type, selection vectors, and the batched-lookup contract.
//
// The paper's unified filter interface takes an entire list of keys at once
// and produces a position list ("selection vector") of 32-bit integers
// identifying the keys that may be contained (§5). All filters in this
// repository implement that contract.
package core

// Key is the key type used throughout the reproduction. The paper's
// evaluation uses uniformly distributed random 32-bit integers generated
// with a Mersenne Twister; we keep 32-bit keys as the canonical type and
// widen to 64 bits inside the hashing substrate.
type Key = uint32

// SelVec is a selection vector: a list of positions (indexes into a probed
// key batch) for which the filter reported a possible match. Positions are
// 32-bit as in the paper's implementation.
type SelVec = []uint32

// BatchProber is the batched lookup contract shared by all filters.
//
// ContainsBatch appends to sel the positions i (0-based within keys) for
// which keys[i] may be in the set, and returns the extended slice. It must
// behave exactly like calling a scalar Contains per key; property tests
// enforce this equivalence for every kernel.
type BatchProber interface {
	ContainsBatch(keys []Key, sel SelVec) SelVec
}

// DefaultBatch is the batch size used by the vectorized pipelines. 1024 keys
// of 4 bytes fit comfortably in L1 alongside a selection vector, mirroring
// vector-at-a-time query processing.
const DefaultBatch = 1024
