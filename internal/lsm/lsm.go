// Package lsm implements a log-structured merge-tree substrate: the
// high-tw filter use case from the paper's Figure 1 and §7 discussion of
// Monkey. Point lookups must consult every run that might hold the key;
// a per-run filter lets the tree skip runs, saving a (simulated) storage
// read whose cost plays the role of tw. Because storage reads cost tens of
// thousands to millions of cycles, this is the regime where the paper finds
// Cuckoo filters (lower f) beat blocked Bloom filters (cheaper lookups).
//
// The tree is single-writer, multi-reader: a memtable absorbs writes; full
// memtables flush to immutable sorted runs; when too many runs accumulate
// they are merged (full compaction). Deletes are tombstones. The storage
// device is simulated by a calibrated ALU spin per run probed
// (workload.Work), so experiments measure real elapsed time with a tunable
// tw, per DESIGN.md §4.
package lsm

import (
	"fmt"
	"sort"

	"perfilter/internal/blocked"
	"perfilter/internal/core"
	"perfilter/internal/cuckoo"
	"perfilter/internal/workload"
)

// FilterKind selects the per-run filter.
type FilterKind uint8

const (
	// NoFilter probes every run.
	NoFilter FilterKind = iota
	// BloomFilter attaches a cache-sectorized blocked Bloom filter.
	BloomFilter
	// CuckooFilter attaches a cuckoo filter (l=16, b=2, magic).
	CuckooFilter
)

// Options configures the tree.
type Options struct {
	// MemtableSize is the number of entries buffered before a flush.
	MemtableSize int
	// MaxRuns triggers a full compaction when exceeded.
	MaxRuns int
	// Filter selects the per-run filter kind.
	Filter FilterKind
	// BitsPerKey sizes Bloom run filters (Cuckoo sizes itself by load).
	BitsPerKey int
	// ReadUnits is the simulated storage cost (≈cycles) per run probed.
	ReadUnits int
}

// DefaultOptions returns a small, test-friendly configuration.
func DefaultOptions() Options {
	return Options{
		MemtableSize: 4096,
		MaxRuns:      8,
		Filter:       BloomFilter,
		BitsPerKey:   14,
		ReadUnits:    20000,
	}
}

// entry is a key-value pair; tombstone marks deletion.
type entry struct {
	key       core.Key
	value     uint64
	tombstone bool
}

// runFilter is the per-run filter contract.
type runFilter interface {
	Contains(core.Key) bool
}

// run is an immutable sorted string table (in memory; reads are charged the
// simulated storage cost).
type run struct {
	entries []entry
	filter  runFilter
}

// get searches the run, charging the storage read cost only when the
// filter passes (or is absent).
func (r *run) get(key core.Key, opts Options, stats *Stats) (entry, bool) {
	if r.filter != nil {
		stats.FilterProbes++
		if !r.filter.Contains(key) {
			stats.SkippedReads++
			return entry{}, false
		}
	}
	stats.RunReads++
	workload.Work(opts.ReadUnits)
	i := sort.Search(len(r.entries), func(i int) bool {
		return r.entries[i].key >= key
	})
	if i < len(r.entries) && r.entries[i].key == key {
		return r.entries[i], true
	}
	stats.WastedReads++ // filter false positive (or no filter installed)
	return entry{}, false
}

// Stats counts filter effectiveness and storage traffic.
type Stats struct {
	Puts         uint64
	Gets         uint64
	Flushes      uint64
	Compactions  uint64
	FilterProbes uint64
	SkippedReads uint64 // storage reads avoided by a negative filter answer
	RunReads     uint64 // storage reads performed
	WastedReads  uint64 // reads that found nothing (false positives)
}

// Tree is the LSM tree. Not safe for concurrent use.
type Tree struct {
	opts     Options
	memtable map[core.Key]entry
	runs     []*run // newest first
	Stats    Stats
}

// New creates a tree.
func New(opts Options) *Tree {
	if opts.MemtableSize <= 0 {
		opts.MemtableSize = DefaultOptions().MemtableSize
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultOptions().MaxRuns
	}
	if opts.BitsPerKey <= 0 {
		opts.BitsPerKey = DefaultOptions().BitsPerKey
	}
	return &Tree{opts: opts, memtable: make(map[core.Key]entry, opts.MemtableSize)}
}

// Put inserts or overwrites a key.
func (t *Tree) Put(key core.Key, value uint64) {
	t.Stats.Puts++
	t.memtable[key] = entry{key: key, value: value}
	t.maybeFlush()
}

// Delete writes a tombstone.
func (t *Tree) Delete(key core.Key) {
	t.Stats.Puts++
	t.memtable[key] = entry{key: key, tombstone: true}
	t.maybeFlush()
}

// Get returns the current value for key.
func (t *Tree) Get(key core.Key) (uint64, bool) {
	t.Stats.Gets++
	if e, ok := t.memtable[key]; ok {
		return e.value, !e.tombstone
	}
	for _, r := range t.runs {
		if e, ok := r.get(key, t.opts, &t.Stats); ok {
			return e.value, !e.tombstone
		}
	}
	return 0, false
}

// maybeFlush flushes a full memtable and compacts when runs pile up.
func (t *Tree) maybeFlush() {
	if len(t.memtable) < t.opts.MemtableSize {
		return
	}
	t.Flush()
	if len(t.runs) > t.opts.MaxRuns {
		t.Compact()
	}
}

// Flush turns the memtable into a new sorted run (newest first).
func (t *Tree) Flush() {
	if len(t.memtable) == 0 {
		return
	}
	t.Stats.Flushes++
	entries := make([]entry, 0, len(t.memtable))
	for _, e := range t.memtable {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	t.runs = append([]*run{t.newRun(entries)}, t.runs...)
	t.memtable = make(map[core.Key]entry, t.opts.MemtableSize)
}

// Compact merges all runs into one, dropping shadowed entries and
// tombstones that no longer shadow anything (single-level full compaction:
// tombstones at the bottom level can be discarded).
func (t *Tree) Compact() {
	if len(t.runs) <= 1 {
		return
	}
	t.Stats.Compactions++
	latest := make(map[core.Key]entry)
	// Oldest to newest so newer versions overwrite older ones.
	for i := len(t.runs) - 1; i >= 0; i-- {
		for _, e := range t.runs[i].entries {
			latest[e.key] = e
		}
	}
	entries := make([]entry, 0, len(latest))
	for _, e := range latest {
		if !e.tombstone { // bottom level: tombstones can drop
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	t.runs = []*run{t.newRun(entries)}
}

// newRun builds the immutable run and its filter.
func (t *Tree) newRun(entries []entry) *run {
	r := &run{entries: entries}
	n := uint64(len(entries))
	if n == 0 {
		return r
	}
	switch t.opts.Filter {
	case BloomFilter:
		f, err := blocked.New(
			blocked.CacheSectorizedParams(64, 512, 2, 8, true),
			n*uint64(t.opts.BitsPerKey))
		if err != nil {
			panic(fmt.Sprintf("lsm: bloom run filter: %v", err))
		}
		for _, e := range entries {
			f.Insert(e.key)
		}
		r.filter = f
	case CuckooFilter:
		p := cuckoo.Params{TagBits: 16, BucketSize: 2, Magic: true}
		f, err := cuckoo.New(p, p.SizeForKeys(n))
		if err != nil {
			panic(fmt.Sprintf("lsm: cuckoo run filter: %v", err))
		}
		for _, e := range entries {
			if err := f.Insert(e.key); err != nil {
				// Fall back to filterless on overflow (never expected at
				// SizeForKeys sizing).
				r.filter = nil
				return r
			}
		}
		r.filter = f
	}
	return r
}

// Runs returns the current run count (after compactions).
func (t *Tree) Runs() int { return len(t.runs) }

// Len returns the number of live keys (linear scan; diagnostics only).
func (t *Tree) Len() int {
	seen := make(map[core.Key]bool)
	n := 0
	for k, e := range t.memtable {
		seen[k] = true
		if !e.tombstone {
			n++
		}
	}
	for _, r := range t.runs {
		for _, e := range r.entries {
			if !seen[e.key] {
				seen[e.key] = true
				if !e.tombstone {
					n++
				}
			}
		}
	}
	return n
}
