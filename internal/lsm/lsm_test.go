package lsm

import (
	"testing"

	"perfilter/internal/rng"
)

func smallOpts(f FilterKind) Options {
	o := DefaultOptions()
	o.MemtableSize = 256
	o.MaxRuns = 4
	o.ReadUnits = 50 // keep tests fast
	o.Filter = f
	return o
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, f := range []FilterKind{NoFilter, BloomFilter, CuckooFilter} {
		tr := New(smallOpts(f))
		r := rng.NewMT19937(1)
		keys := make(map[uint32]uint64)
		for i := 0; i < 3000; i++ {
			k := r.Uint32()
			keys[k] = uint64(i)
			tr.Put(k, uint64(i))
		}
		for k, want := range keys {
			got, ok := tr.Get(k)
			if !ok || got != want {
				t.Fatalf("filter=%d key %d: got (%d,%v) want %d", f, k, got, ok, want)
			}
		}
	}
}

func TestOverwrite(t *testing.T) {
	tr := New(smallOpts(BloomFilter))
	tr.Put(42, 1)
	// Force through several flush/compaction cycles.
	r := rng.NewMT19937(2)
	for i := 0; i < 2000; i++ {
		tr.Put(r.Uint32(), 9)
	}
	tr.Put(42, 2)
	for i := 0; i < 2000; i++ {
		tr.Put(r.Uint32(), 9)
	}
	if v, ok := tr.Get(42); !ok || v != 2 {
		t.Fatalf("got (%d,%v), want latest value 2", v, ok)
	}
}

func TestDeleteTombstone(t *testing.T) {
	tr := New(smallOpts(CuckooFilter))
	r := rng.NewMT19937(3)
	tr.Put(7, 1)
	for i := 0; i < 1000; i++ {
		tr.Put(r.Uint32(), 5)
	}
	tr.Delete(7)
	for i := 0; i < 1000; i++ {
		tr.Put(r.Uint32(), 5)
	}
	if _, ok := tr.Get(7); ok {
		t.Fatal("deleted key still visible across flushes")
	}
	// Deleting again and re-inserting resurrects.
	tr.Put(7, 9)
	if v, ok := tr.Get(7); !ok || v != 9 {
		t.Fatal("reinsert after delete failed")
	}
}

func TestCompactionBoundsRuns(t *testing.T) {
	o := smallOpts(BloomFilter)
	tr := New(o)
	r := rng.NewMT19937(4)
	for i := 0; i < 20000; i++ {
		tr.Put(r.Uint32(), 1)
	}
	if tr.Runs() > o.MaxRuns+1 {
		t.Fatalf("%d runs exceed bound %d", tr.Runs(), o.MaxRuns)
	}
	if tr.Stats.Compactions == 0 {
		t.Fatal("no compactions happened")
	}
}

func TestFiltersSkipReads(t *testing.T) {
	// Negative lookups on a multi-run tree must mostly skip storage reads
	// when filters are installed, and never when they are not.
	mk := func(f FilterKind) *Tree {
		tr := New(smallOpts(f))
		r := rng.NewMT19937(5)
		for i := 0; i < 5000; i++ {
			tr.Put(r.Uint32()|1, 1) // odd keys only
		}
		return tr
	}
	for _, f := range []FilterKind{BloomFilter, CuckooFilter} {
		tr := mk(f)
		before := tr.Stats
		r := rng.NewSplitMix64(9)
		misses := 0
		for i := 0; i < 2000; i++ {
			if _, ok := tr.Get(r.Uint32() &^ 1); !ok { // even keys: absent
				misses++
			}
		}
		if misses != 2000 {
			t.Fatalf("filter=%d: phantom hits", f)
		}
		reads := tr.Stats.RunReads - before.RunReads
		skipped := tr.Stats.SkippedReads - before.SkippedReads
		if skipped == 0 {
			t.Fatalf("filter=%d: no reads skipped", f)
		}
		skipRate := float64(skipped) / float64(skipped+reads)
		if skipRate < 0.95 {
			t.Fatalf("filter=%d: skip rate %.3f too low", f, skipRate)
		}
	}
	trNo := mk(NoFilter)
	before := trNo.Stats
	trNo.Get(2)
	if trNo.Stats.SkippedReads != before.SkippedReads {
		t.Fatal("filterless tree skipped a read")
	}
	if trNo.Stats.RunReads == before.RunReads {
		t.Fatal("filterless tree read nothing")
	}
}

func TestCuckooSkipsMoreThanBloom(t *testing.T) {
	// The reason Cuckoo wins at high tw: fewer false-positive reads at
	// comparable size. Compare wasted reads over many negative lookups.
	wasted := func(f FilterKind, bpk int) uint64 {
		o := smallOpts(f)
		o.BitsPerKey = bpk
		tr := New(o)
		r := rng.NewMT19937(6)
		for i := 0; i < 8000; i++ {
			tr.Put(r.Uint32()|1, 1)
		}
		probe := rng.NewSplitMix64(10)
		for i := 0; i < 30000; i++ {
			tr.Get(probe.Uint32() &^ 1)
		}
		return tr.Stats.WastedReads
	}
	// Bloom at ~19 bits/key vs Cuckoo (l=16,b=2 → ~19 bits/key effective).
	b := wasted(BloomFilter, 19)
	c := wasted(CuckooFilter, 19)
	if c >= b {
		t.Fatalf("cuckoo wasted %d reads, bloom %d — expected cuckoo lower", c, b)
	}
}

func TestLenTracksLiveKeys(t *testing.T) {
	tr := New(smallOpts(BloomFilter))
	for i := uint32(0); i < 1000; i++ {
		tr.Put(i, uint64(i))
	}
	for i := uint32(0); i < 500; i++ {
		tr.Delete(i)
	}
	if got := tr.Len(); got != 500 {
		t.Fatalf("Len=%d want 500", got)
	}
}

func TestGetFromEmptyTree(t *testing.T) {
	tr := New(DefaultOptions())
	if _, ok := tr.Get(1); ok {
		t.Fatal("empty tree returned a value")
	}
}

func TestExplicitFlush(t *testing.T) {
	tr := New(smallOpts(NoFilter))
	tr.Put(1, 10)
	tr.Flush()
	if tr.Runs() != 1 {
		t.Fatalf("runs=%d after explicit flush", tr.Runs())
	}
	if v, ok := tr.Get(1); !ok || v != 10 {
		t.Fatal("key lost after flush")
	}
	tr.Flush() // empty memtable: no-op
	if tr.Runs() != 1 {
		t.Fatal("empty flush created a run")
	}
}

func BenchmarkGetNegative(b *testing.B) {
	for _, f := range []struct {
		name string
		kind FilterKind
	}{{"nofilter", NoFilter}, {"bloom", BloomFilter}, {"cuckoo", CuckooFilter}} {
		b.Run(f.name, func(b *testing.B) {
			o := DefaultOptions()
			o.Filter = f.kind
			o.MemtableSize = 4096
			tr := New(o)
			r := rng.NewMT19937(1)
			for i := 0; i < 40000; i++ {
				tr.Put(r.Uint32()|1, 1)
			}
			probe := rng.NewSplitMix64(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Get(probe.Uint32() &^ 1)
			}
		})
	}
}
