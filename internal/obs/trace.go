// Tracer: head-sampled retention of completed root spans in a lock-free
// ring, plus W3C traceparent ingestion so an upstream caller's trace id
// flows through the batch plane and back out in the response header.
//
// Sampling model, chosen for the probe hot path:
//
//   - Head sampling by rate: the keep/drop decision is made before the
//     root span exists, from one atomic splitmix64 step compared against
//     a precomputed threshold. Unsampled requests get (ctx, nil) — zero
//     allocations, no locks (TestSpanZeroAllocsWhenUnsampled pins this).
//   - Always-sample-on-slow: a head decision cannot know the request
//     will be slow, so slow outliers are captured post hoc — the handler
//     already measures its duration; when an unsampled request exceeds
//     SlowNs it calls RecordSlow, which synthesizes a childless root
//     span after the fact. The common fast path stays allocation-free;
//     only the rare slow request pays for its own evidence.
//   - An ingested traceparent with the sampled flag forces sampling, so
//     a caller debugging one request end-to-end always gets a span tree.
//
// Retention is a fixed ring of *Span behind atomic pointers: writers
// claim a slot with one atomic add and store unconditionally; readers
// snapshot pointers newest-first. Entries are overwritten, never freed —
// a crash-loop's last N requests are always inspectable at
// GET /v1/debug/traces.
package obs

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultTraceRing is the root-span retention if TracerOptions.RingSize
// is zero.
const DefaultTraceRing = 256

// TracerOptions configures NewTracer. The zero value is a valid "off"
// tracer: rate 0, no slow capture, default ring.
type TracerOptions struct {
	// SampleRate is the fraction of roots head-sampled into the ring:
	// <= 0 disables head sampling, >= 1 samples everything.
	SampleRate float64
	// SlowNs, when > 0, is the duration above which callers should
	// capture unsampled requests via RecordSlow (the tracer only stores
	// the threshold; measuring is the caller's job since it times the
	// request anyway).
	SlowNs int64
	// RingSize is the retained root-span count (default
	// DefaultTraceRing).
	RingSize int
	// Registry, when non-nil, receives sampling meta-counters
	// (perfilter_trace_spans_sampled_total etc.).
	Registry *Registry
}

// Tracer samples and retains root spans. The zero value is a fully
// disabled tracer: StartRoot never samples, RecordSlow is a no-op — the
// baseline the server's alloc-parity test compares against.
type Tracer struct {
	// threshold is the head-sampling cut: a uniform uint64 below it
	// samples. 0 = never, ^uint64(0) = always.
	threshold atomic.Uint64
	slowNs    atomic.Int64
	rng       atomic.Uint64 // splitmix64 state, also feeds id generation

	ring []atomic.Pointer[Span]
	head atomic.Uint64 // next slot to claim; total roots ever pushed

	// meta-counters; nil on the zero tracer.
	cSampled *Counter
	cSlow    *Counter
}

// NewTracer builds a tracer. Seeded from the wall clock — ids need to be
// unique, not unpredictable.
func NewTracer(opts TracerOptions) *Tracer {
	n := opts.RingSize
	if n <= 0 {
		n = DefaultTraceRing
	}
	t := &Tracer{ring: make([]atomic.Pointer[Span], n)}
	t.rng.Store(uint64(time.Now().UnixNano()))
	t.SetSampleRate(opts.SampleRate)
	t.slowNs.Store(opts.SlowNs)
	if opts.Registry != nil {
		t.cSampled = opts.Registry.Counter("perfilter_trace_spans_sampled_total",
			"Root spans retained in the trace ring, by reason.", "reason", "sampled")
		t.cSlow = opts.Registry.Counter("perfilter_trace_spans_sampled_total",
			"Root spans retained in the trace ring, by reason.", "reason", "slow")
	}
	return t
}

// DefaultTracer is the process-wide tracer the filter server uses unless
// overridden: 1% head sampling, slow capture off until the -trace-slow-ns
// flag (or the server's auto-threshold loop) sets it, counters on the
// Default registry.
var DefaultTracer = NewTracer(TracerOptions{SampleRate: 0.01, Registry: Default})

// SetSampleRate atomically replaces the head-sampling rate.
func (t *Tracer) SetSampleRate(rate float64) {
	switch {
	case rate <= 0 || math.IsNaN(rate):
		t.threshold.Store(0)
	case rate >= 1:
		t.threshold.Store(^uint64(0))
	default:
		t.threshold.Store(uint64(rate * float64(1<<63) * 2))
	}
}

// SetSlowNs atomically replaces the slow-capture threshold (<= 0
// disables).
func (t *Tracer) SetSlowNs(ns int64) { t.slowNs.Store(ns) }

// SlowNs returns the current slow-capture threshold in nanoseconds
// (<= 0 when disabled). Callers compare their own measured duration
// against it and invoke RecordSlow on breach.
func (t *Tracer) SlowNs() int64 { return t.slowNs.Load() }

// splitmix64 is the output function of the splitmix64 PRNG.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// next steps the tracer's PRNG: one atomic add plus the splitmix64
// mix — allocation-free and contention-tolerant (adds commute).
func (t *Tracer) next() uint64 {
	return splitmix64(t.rng.Add(0x9e3779b97f4a7c15))
}

// sampleHead makes the head-sampling decision.
func (t *Tracer) sampleHead() bool {
	th := t.threshold.Load()
	if th == 0 {
		return false
	}
	if th == ^uint64(0) {
		return true
	}
	return t.next() < th
}

func (t *Tracer) genTraceID() TraceID {
	var id TraceID
	putLeU64(id[:8], t.next())
	putLeU64(id[8:], t.next())
	return id
}

func (t *Tracer) genSpanID() SpanID {
	var id SpanID
	putLeU64(id[:], t.next())
	return id
}

// GenIDString returns a fresh 32-hex id for request correlation outside
// any span — the server's request_id when a request is unsampled and
// carries no traceparent but still needs a greppable identity (debug
// logging, error paths).
func (t *Tracer) GenIDString() string { return t.genTraceID().String() }

// StartRoot makes the sampling decision for one request and, when it
// samples, returns a live root span threaded into ctx. traceparent is
// the raw request header value ("" for none): a valid header contributes
// the trace id and remote parent, and its sampled flag forces sampling
// regardless of rate. Unsampled requests return (ctx, nil) with zero
// allocations.
func (t *Tracer) StartRoot(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	tid, pid, flags, okTP := ParseTraceparent(traceparent)
	if !(okTP && flags&1 != 0) && !t.sampleHead() {
		return ctx, nil
	}
	return t.startRoot(ctx, name, tid, pid, okTP)
}

// StartRootForced starts an always-sampled root span — for cold control
// paths (rotate, migrate, snapshot, restore, autotune) where a trace per
// invocation is cheap and always wanted.
func (t *Tracer) StartRootForced(ctx context.Context, name string) (context.Context, *Span) {
	return t.startRoot(ctx, name, TraceID{}, SpanID{}, false)
}

func (t *Tracer) startRoot(ctx context.Context, name string, tid TraceID, pid SpanID, remote bool) (context.Context, *Span) {
	if !remote || tid.IsZero() {
		tid = t.genTraceID()
	}
	s := &Span{
		tracer:   t,
		name:     name,
		traceID:  tid,
		spanID:   t.genSpanID(),
		parentID: pid,
		start:    time.Now(),
	}
	if t.cSampled != nil {
		t.cSampled.Inc()
	}
	return ContextWithSpan(ctx, s), s
}

// RecordSlow retains a post-hoc root span for a request that was not
// head-sampled but breached the slow threshold: the span is synthesized
// already-ended (childless — the tree was never built) and pushed into
// the ring with a slow_capture marker. traceID may be zero (one is
// generated). No-op on the zero tracer.
func (t *Tracer) RecordSlow(name string, traceID TraceID, start time.Time, durNs int64, attrs ...Attr) {
	if len(t.ring) == 0 {
		return
	}
	if traceID.IsZero() {
		traceID = t.genTraceID()
	}
	s := &Span{
		name:    name,
		traceID: traceID,
		spanID:  t.genSpanID(),
		start:   start,
		durNs:   durNs,
		ended:   true,
		attrs:   append(attrs, Attr{Key: "slow_capture", Value: true}),
	}
	if t.cSlow != nil {
		t.cSlow.Inc()
	}
	t.push(s)
}

// push retains a completed root span. Lock-free: claim a slot, store.
// Two writers racing the same slot (a full ring-lap apart) leave one of
// the two spans — acceptable for a debug ring.
func (t *Tracer) push(s *Span) {
	if len(t.ring) == 0 {
		return
	}
	i := t.head.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(s)
}

// TotalSampled returns the number of root spans ever pushed (retained or
// since overwritten).
func (t *Tracer) TotalSampled() uint64 { return t.head.Load() }

// Spans snapshots the retained root spans, newest first.
func (t *Tracer) Spans() []*Span {
	if len(t.ring) == 0 {
		return nil
	}
	h := t.head.Load()
	n := uint64(len(t.ring))
	if h < n {
		n = h
	}
	out := make([]*Span, 0, n)
	for i := uint64(0); i < n; i++ {
		if s := t.ring[(h-1-i)%uint64(len(t.ring))].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// tracesResponse is the GET /v1/debug/traces JSON shape.
type tracesResponse struct {
	TotalSampled uint64     `json:"total_sampled"`
	RingSize     int        `json:"ring_size"`
	Spans        []spanView `json:"spans"`
}

// Handler serves the retained spans as JSON, newest first. Query
// parameters: min_ns keeps only roots at least that slow; name keeps
// only roots with that exact name; limit caps the result count.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		minNs, _ := strconv.ParseInt(q.Get("min_ns"), 10, 64)
		name := q.Get("name")
		limit := len(t.ring)
		if v := q.Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				limit = n
			}
		}
		resp := tracesResponse{
			TotalSampled: t.TotalSampled(),
			RingSize:     len(t.ring),
			Spans:        []spanView{},
		}
		for _, s := range t.Spans() {
			if len(resp.Spans) >= limit {
				break
			}
			if name != "" && s.Name() != name {
				continue
			}
			if minNs > 0 && s.DurationNs() < minNs {
				continue
			}
			resp.Spans = append(resp.Spans, s.view())
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}

// ParseTraceparent parses a W3C trace-context traceparent header
// ("00-<32 hex trace id>-<16 hex span id>-<2 hex flags>"). It allocates
// nothing and returns ok=false for anything malformed, a version other
// than 00, or an all-zero trace id.
func ParseTraceparent(tp string) (tid TraceID, pid SpanID, flags byte, ok bool) {
	if len(tp) != 55 || tp[0] != '0' || tp[1] != '0' ||
		tp[2] != '-' || tp[35] != '-' || tp[52] != '-' {
		return TraceID{}, SpanID{}, 0, false
	}
	if !hexDecode(tid[:], tp[3:35]) || !hexDecode(pid[:], tp[36:52]) {
		return TraceID{}, SpanID{}, 0, false
	}
	var fb [1]byte
	if !hexDecode(fb[:], tp[53:55]) {
		return TraceID{}, SpanID{}, 0, false
	}
	if tid.IsZero() {
		return TraceID{}, SpanID{}, 0, false
	}
	return tid, pid, fb[0], true
}

// TraceparentID extracts just the 32-hex trace id from a traceparent
// header without allocating (the result aliases tp). ok=false when
// malformed.
func TraceparentID(tp string) (string, bool) {
	if _, _, _, ok := ParseTraceparent(tp); !ok {
		return "", false
	}
	return tp[3:35], true
}

// hexDecode decodes exactly len(dst)*2 lowercase-or-uppercase hex chars
// into dst, allocation-free. Returns false on any non-hex byte.
func hexDecode(dst []byte, src string) bool {
	if len(src) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(src[2*i])
		lo, ok2 := hexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
