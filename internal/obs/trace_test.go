package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// A well-formed traceparent with the sampled flag set (the W3C spec's
// own example ids).
const (
	tpSampled   = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tpUnsampled = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	tpTraceID   = "4bf92f3577b34da6a3ce929d0e0e4736"
)

func TestParseTraceparent(t *testing.T) {
	tid, pid, flags, ok := ParseTraceparent(tpSampled)
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if tid.String() != tpTraceID {
		t.Fatalf("trace id %s", tid)
	}
	if pid.String() != "00f067aa0ba902b7" {
		t.Fatalf("parent span id %s", pid)
	}
	if flags != 1 {
		t.Fatalf("flags %d", flags)
	}
	if id, ok := TraceparentID(tpSampled); !ok || id != tpTraceID {
		t.Fatalf("TraceparentID = %q, %v", id, ok)
	}

	// Uppercase hex is tolerated; everything structurally wrong is not.
	if _, _, _, ok := ParseTraceparent("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01"); !ok {
		t.Error("uppercase hex rejected")
	}
	for _, bad := range []string{
		"",
		"not a traceparent",
		tpSampled[:54],       // too short
		tpSampled + "0",      // too long
		"01" + tpSampled[2:], // unknown version
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad dash
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
	} {
		if _, _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted malformed traceparent %q", bad)
		}
		if _, ok := TraceparentID(bad); ok {
			t.Errorf("TraceparentID accepted %q", bad)
		}
	}
}

func TestStartRootSampling(t *testing.T) {
	off := NewTracer(TracerOptions{SampleRate: 0})
	ctx := context.Background()
	if c, sp := off.StartRoot(ctx, "r", ""); sp != nil || c != ctx {
		t.Fatal("rate-0 tracer sampled a plain request")
	}
	// The unsampled flag does not force; the sampled flag does.
	if _, sp := off.StartRoot(ctx, "r", tpUnsampled); sp != nil {
		t.Fatal("rate-0 tracer sampled flags=00")
	}
	_, sp := off.StartRoot(ctx, "r", tpSampled)
	if sp == nil {
		t.Fatal("sampled traceparent flag did not force sampling")
	}
	// The remote trace id is adopted, so the caller's id survives the hop.
	if sp.TraceIDString() != tpTraceID {
		t.Fatalf("root trace id %s, want the ingested %s", sp.TraceIDString(), tpTraceID)
	}

	on := NewTracer(TracerOptions{SampleRate: 1})
	rctx, root := on.StartRoot(ctx, "r", "")
	if root == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	if root.TraceIDString() == "" || SpanFromContext(rctx) != root {
		t.Fatal("sampled root not threaded into context")
	}

	// Forced roots ignore the rate entirely.
	if _, sp := off.StartRootForced(ctx, "forced"); sp == nil {
		t.Fatal("StartRootForced returned nil")
	}
}

func TestSpanTreeAndRingNewestFirst(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, RingSize: 4})
	names := []string{"r0", "r1", "r2", "r3", "r4", "r5"}
	for _, n := range names {
		_, sp := tr.StartRoot(context.Background(), n, "")
		sp.End()
	}
	if got := tr.TotalSampled(); got != 6 {
		t.Fatalf("TotalSampled = %d, want 6", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	for i, want := range []string{"r5", "r4", "r3", "r2"} {
		if spans[i].Name() != want {
			t.Fatalf("spans[%d] = %s, want %s (newest first)", i, spans[i].Name(), want)
		}
	}

	// A child tree shares the trace id, links parents, and carries attrs.
	ctx, root := tr.StartRoot(context.Background(), "root", "")
	cctx, child := StartSpan(ctx, "child")
	child.SetAttr("shard", 3)
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	root.SetAttr("keys", 128)
	root.End()

	v := root.view()
	if !v.Ended || v.TraceID != root.TraceIDString() {
		t.Fatalf("root view %+v", v)
	}
	if len(v.Children) != 1 || v.Children[0].Name != "child" {
		t.Fatalf("root children %+v", v.Children)
	}
	cv := v.Children[0]
	if cv.TraceID != v.TraceID || cv.ParentSpanID != v.SpanID {
		t.Fatalf("child not linked under root: %+v", cv)
	}
	if len(cv.Attrs) != 1 || cv.Attrs[0].Key != "shard" {
		t.Fatalf("child attrs %+v", cv.Attrs)
	}
	if len(cv.Children) != 1 || cv.Children[0].Name != "grandchild" ||
		cv.Children[0].ParentSpanID != cv.SpanID {
		t.Fatalf("grandchild %+v", cv.Children)
	}
}

func TestNilSpanIsInert(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Name() != "" || sp.TraceIDString() != "" || sp.DurationNs() != 0 {
		t.Fatal("nil span leaked state")
	}
	if c := sp.StartChild("c"); c != nil {
		t.Fatal("nil span produced a child")
	}
	ctx, child := StartSpan(context.Background(), "c")
	if child != nil || SpanFromContext(ctx) != nil {
		t.Fatal("StartSpan on a span-less context produced a span")
	}
}

func TestRecordSlow(t *testing.T) {
	// The zero tracer is fully disabled: no ring, no panic.
	var off Tracer
	off.RecordSlow("x", TraceID{}, time.Now(), 123)
	if off.TotalSampled() != 0 {
		t.Fatal("zero tracer retained a slow span")
	}

	tr := NewTracer(TracerOptions{RingSize: 8}) // rate 0: slow capture only
	tr.RecordSlow("server.probe", TraceID{}, time.Now(), 5_000_000,
		Attr{Key: "filter", Value: "f"})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name() != "server.probe" || s.DurationNs() != 5_000_000 {
		t.Fatalf("slow span %s dur %d", s.Name(), s.DurationNs())
	}
	v := s.view()
	if !v.Ended {
		t.Fatal("slow span not ended")
	}
	marked := false
	for _, a := range v.Attrs {
		if a.Key == "slow_capture" && a.Value == true {
			marked = true
		}
	}
	if !marked {
		t.Fatalf("slow span lacks the slow_capture marker: %+v", v.Attrs)
	}
}

func TestTracerHandlerFilters(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, RingSize: 16})
	_, fast := tr.StartRoot(context.Background(), "fast", "")
	fast.End()
	tr.RecordSlow("slow", TraceID{}, time.Now(), 9_000_000)

	get := func(query string) tracesResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/traces"+query, nil))
		if rec.Code != 200 {
			t.Fatalf("traces status %d", rec.Code)
		}
		var resp tracesResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	all := get("")
	if all.TotalSampled != 2 || all.RingSize != 16 || len(all.Spans) != 2 {
		t.Fatalf("unfiltered: total %d ring %d spans %d", all.TotalSampled, all.RingSize, len(all.Spans))
	}
	if all.Spans[0].Name != "slow" {
		t.Fatalf("not newest-first: %s", all.Spans[0].Name)
	}
	if byName := get("?name=fast"); len(byName.Spans) != 1 || byName.Spans[0].Name != "fast" {
		t.Fatalf("name filter: %+v", byName.Spans)
	}
	if slowOnly := get("?min_ns=1000000"); len(slowOnly.Spans) != 1 || slowOnly.Spans[0].Name != "slow" {
		t.Fatalf("min_ns filter: %+v", slowOnly.Spans)
	}
	if limited := get("?limit=1"); len(limited.Spans) != 1 {
		t.Fatalf("limit: %d spans", len(limited.Spans))
	}
}

// TestSpanRingConcurrent hammers the full span lifecycle — roots,
// children, attrs, End, ring reads, view snapshots — from many
// goroutines. Its value is under -race (CI runs this package with it):
// the ring claims must not tear and view must not deadlock against
// live children.
func TestSpanRingConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, RingSize: 32})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				ctx, root := tr.StartRoot(context.Background(), "root", "")
				_, c := StartSpan(ctx, "child")
				c.SetAttr("i", i)
				c.End()
				root.SetAttr("w", w)
				root.End()
				if w == 0 && i%50 == 0 {
					tr.RecordSlow("slow", TraceID{}, time.Now(), int64(i))
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range tr.Spans() {
					_ = s.view()
					_ = s.DurationNs()
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if tr.TotalSampled() < 8*300 {
		t.Fatalf("TotalSampled = %d, want >= %d", tr.TotalSampled(), 8*300)
	}
}

// TestSpanZeroAllocsWhenUnsampled pins the tracing layer's contract with
// the probe hot path: an unsampled request allocates nothing — not for
// the sampling decision, not for traceparent parsing, not for the nil
// span absorbing attrs and End.
func TestSpanZeroAllocsWhenUnsampled(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0, SlowNs: 0})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := tr.StartRoot(ctx, "server.probe", "")
		if sp != nil {
			t.Fatal("sampled at rate 0")
		}
		cc, child := StartSpan(c, "shard.probe")
		child.SetAttr("shard", "none")
		child.End()
		sp.End()
		_ = cc
		// Parsing an ingested (unsampled) traceparent is alloc-free too.
		if _, sp := tr.StartRoot(ctx, "server.probe", tpUnsampled); sp != nil {
			t.Fatal("sampled flags=00 at rate 0")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled span path allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkStartSpanUnsampled(b *testing.B) {
	tr := NewTracer(TracerOptions{SampleRate: 0})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := tr.StartRoot(ctx, "server.probe", "")
		_, child := StartSpan(c, "shard.probe")
		child.End()
		sp.End()
	}
}
