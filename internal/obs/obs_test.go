package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format end to end:
// HELP/TYPE lines, label rendering and ordering, counter/gauge/
// histogram series, and the cumulative histogram encoding.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", "op", "probe").Add(3)
	r.Counter("test_requests_total", "Requests served.", "op", "insert").Add(1)
	r.Gauge("test_temperature", "A gauge.").Set(1.5)
	r.GaugeFunc("test_live", "A callback gauge.", func() float64 { return 42 })
	h := r.Histogram("test_latency_ns", "A histogram.")
	h.Observe(1) // bucket le=1
	h.Observe(3) // bucket le=4
	h.Observe(4) // bucket le=4

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	var want strings.Builder
	want.WriteString("# HELP test_latency_ns A histogram.\n")
	want.WriteString("# TYPE test_latency_ns histogram\n")
	cum := 0
	for i := 0; i < HistogramBuckets; i++ {
		switch i {
		case 0:
			cum = 1
		case 2:
			cum = 3
		}
		fmt.Fprintf(&want, "test_latency_ns_bucket{le=\"%d\"} %d\n", uint64(1)<<uint(i), cum)
	}
	want.WriteString("test_latency_ns_bucket{le=\"+Inf\"} 3\n")
	want.WriteString("test_latency_ns_sum 8\n")
	want.WriteString("test_latency_ns_count 3\n")
	want.WriteString("# HELP test_live A callback gauge.\n")
	want.WriteString("# TYPE test_live gauge\n")
	want.WriteString("test_live 42\n")
	want.WriteString("# HELP test_requests_total Requests served.\n")
	want.WriteString("# TYPE test_requests_total counter\n")
	want.WriteString("test_requests_total{op=\"insert\"} 1\n")
	want.WriteString("test_requests_total{op=\"probe\"} 3\n")
	want.WriteString("# HELP test_temperature A gauge.\n")
	want.WriteString("# TYPE test_temperature gauge\n")
	want.WriteString("test_temperature 1.5\n")

	if got != want.String() {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want.String())
	}
}

// TestHistogramBucketMonotonicity observes a spread of values and
// checks the rendered cumulative buckets never decrease and agree with
// _count, which the exposition format requires.
func TestHistogramBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_ns", "monotonicity test")
	var wantSum uint64
	for i := int64(0); i < 5000; i++ {
		v := (i * i * 2654435761) % (1 << 40) // spread over and past the finite range
		h.Observe(v)
		wantSum += uint64(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	buckets := 0
	var infCount, count, sum uint64
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "mono_ns_bucket{le=\"+Inf\"}"):
			infCount, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, "mono_ns_bucket"):
			v, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket counts decreased: %d after %d in %q", v, prev, line)
			}
			prev = v
			buckets++
		case strings.HasPrefix(line, "mono_ns_count"):
			count, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, "mono_ns_sum"):
			sum, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		}
	}
	if buckets != HistogramBuckets {
		t.Fatalf("%d finite buckets rendered, want %d", buckets, HistogramBuckets)
	}
	if infCount < prev {
		t.Fatalf("+Inf bucket %d below last finite bucket %d", infCount, prev)
	}
	if count != 5000 || infCount != 5000 {
		t.Fatalf("count %d, +Inf %d, want 5000", count, infCount)
	}
	if sum != wantSum {
		t.Fatalf("sum %d, want %d", sum, wantSum)
	}
}

// TestHistogramBucketIndex pins the value→bucket mapping at the edges.
func TestHistogramBucketIndex(t *testing.T) {
	for _, tc := range []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 35, 35}, {1<<35 + 1, 36},
	} {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestConcurrentObserve hammers one histogram and one counter from many
// goroutines while rendering concurrently; run under -race this is the
// data-race gate for the hot-path instruments.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_ns", "concurrent observe")
	c := r.Counter("conc_total", "concurrent count")
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*1000 + i))
				c.Inc()
			}
		}(w)
	}
	// Render while observers are running: the snapshot must stay
	// internally consistent (monotone cumulative buckets).
	for i := 0; i < 10; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", got, workers*perWorker)
	}
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentRegistration races get-or-create of the *same new*
// series from many goroutines against GaugeFunc replacement and
// rendering: every caller must land on one shared instrument (no
// increments lost to a duplicate), and none of it may trip -race.
// This is the server's real pattern — POST /v1/filters registers
// per-filter series while GET /metrics scrapes.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("reg_total", "racing registration", "i", strconv.Itoa(i)).Inc()
				r.Histogram("reg_ns", "racing registration", "i", strconv.Itoa(i)).Observe(int64(i))
				r.GaugeFunc("reg_fn", "racing replacement", func() float64 { return float64(w) })
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := 0; i < 200; i++ {
		if v := r.Counter("reg_total", "racing registration", "i", strconv.Itoa(i)).Value(); v != workers {
			t.Fatalf("series i=%d counted %d increments, want %d (duplicate instrument?)", i, v, workers)
		}
	}
}

// TestObserveZeroAllocs is the allocation gate for the hot path: an
// Observe or a counter Add must not allocate, ever.
func TestObserveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_ns", "allocation gate")
	c := r.Counter("alloc_total", "allocation gate")
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(2) }); allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRemoveSeries pins the per-filter lifecycle: a removed series
// disappears from the exposition, the family's other series stay.
func TestRemoveSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("life_total", "lifecycle", "filter", "a").Add(1)
	r.Counter("life_total", "lifecycle", "filter", "b").Add(2)
	r.Remove("life_total", "filter", "a")
	r.Remove("life_total", "filter", "never-existed") // no-op
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `filter="a"`) {
		t.Fatalf("removed series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `life_total{filter="b"} 2`) {
		t.Fatalf("surviving series missing:\n%s", out)
	}
	// Re-creating the removed series starts from zero.
	if v := r.Counter("life_total", "lifecycle", "filter", "a").Value(); v != 0 {
		t.Fatalf("re-created series carries old value %d", v)
	}
}

// TestGetOrCreateSemantics pins that registering the same (name,
// labels) twice returns the same instrument — what lets package-level
// and server-level instrumentation share the default registry.
func TestGetOrCreateSemantics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "x", "k", "v")
	b := r.Counter("same_total", "x", "k", "v")
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	// Label order does not matter for identity.
	g1 := r.Gauge("g", "x", "a", "1", "b", "2")
	g2 := r.Gauge("g", "x", "b", "2", "a", "1")
	if g1 != g2 {
		t.Fatal("label order changed series identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "x")
}

// BenchmarkObserve is the hot-path benchmark the issue gates on:
// 0 allocs/op for the histogram Observe.
func BenchmarkObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns", "benchmark")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkObserveParallel measures contended Observe throughput (all
// goroutines share one histogram's atomics).
func BenchmarkObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("benchp_ns", "benchmark")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Observe(i)
			i++
		}
	})
}
