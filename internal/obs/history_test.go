package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
)

// TestHistogramQuantileKnown checks the estimator against distributions
// whose true quantiles are known. Precision follows the power-of-two
// bucket layout: the estimate always lands inside the true value's
// bucket, and the log-linear interpolation recovers smooth
// distributions much more closely than the factor-of-two bucket width.
func TestHistogramQuantileKnown(t *testing.T) {
	// Empty histogram: every quantile is 0.
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %g", got)
	}

	// Point mass: all observations equal 1000 (bucket (512, 1024]).
	// Every quantile must land inside that bucket.
	var point Histogram
	for i := 0; i < 100; i++ {
		point.Observe(1000)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := point.Quantile(q)
		if got <= 512 || got > 1024 {
			t.Errorf("point mass q=%g: %g outside the covering bucket (512, 1024]", q, got)
		}
	}

	// Uniform 1..1024: the per-bucket counts are exactly proportional to
	// the bucket widths, so log-linear interpolation is nearly exact.
	var uni Histogram
	for v := int64(1); v <= 1024; v++ {
		uni.Observe(v)
	}
	if p50 := uni.Quantile(0.5); math.Abs(p50-512) > 1e-9 {
		t.Errorf("uniform p50 = %g, want exactly 512", p50)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.95, 973}, // true 95th order statistic of 1..1024
		{0.99, 1014},
	} {
		got := uni.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.05 {
			t.Errorf("uniform q=%g: %g, want %g within 5%%", tc.q, got, tc.want)
		}
	}
	// Monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := uni.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q=%g gives %g after %g", q, cur, prev)
		}
		prev = cur
	}

	// Out-of-range and NaN q clamp instead of panicking.
	if lo, hi := uni.Quantile(-3), uni.Quantile(7); lo != uni.Quantile(0) || hi != uni.Quantile(1) {
		t.Errorf("q clamping: %g / %g", lo, hi)
	}
	if v := uni.Quantile(math.NaN()); v != uni.Quantile(0) {
		t.Errorf("NaN q = %g", v)
	}

	// Overflow: a quantile landing beyond the finite buckets reports the
	// largest finite bound rather than inventing a value.
	var over Histogram
	over.Observe(1 << 40)
	if got, want := over.Quantile(1), float64(uint64(1)<<(HistogramBuckets-1)); got != want {
		t.Errorf("overflow quantile = %g, want %g", got, want)
	}
}

// TestHistoryScrapeDeltas pins the self-scraper's windowing: the first
// scrape only primes, later scrapes record counter deltas (zero deltas
// omitted), absolute gauges, and per-interval histogram quantiles
// computed from bucket deltas — not from the cumulative distribution.
func TestHistoryScrapeDeltas(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "reqs")
	idle := r.Counter("t_idle_total", "never moves")
	g := r.Gauge("t_level", "a gauge")
	h := r.Histogram("t_latency_ns", "lat")

	// Pre-prime traffic must not appear in any window.
	c.Add(5)
	idle.Add(2)
	h.Observe(100)

	hist := NewHistory(r, 4)
	hist.Scrape() // prime
	if got := hist.Entries(0); len(got) != 0 {
		t.Fatalf("priming scrape retained %d entries", len(got))
	}

	c.Add(3)
	g.Set(7)
	h.Observe(1000)
	h.Observe(2000)
	hist.Scrape()

	entries := hist.Entries(0)
	if len(entries) != 1 {
		t.Fatalf("retained %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.IntervalNs <= 0 {
		t.Errorf("interval %d", e.IntervalNs)
	}
	if d := e.Counters["t_requests_total"]; d != 3 {
		t.Errorf("counter delta %d, want 3 (pre-prime traffic excluded)", d)
	}
	if _, ok := e.Counters["t_idle_total"]; ok {
		t.Error("zero-delta counter not omitted")
	}
	if v := e.Gauges["t_level"]; v != 7 {
		t.Errorf("gauge %g", v)
	}
	w, ok := e.Histograms["t_latency_ns"]
	if !ok {
		t.Fatal("histogram window missing")
	}
	if w.Count != 2 || w.SumNs != 3000 {
		t.Errorf("window count %d sum %d, want 2 / 3000", w.Count, w.SumNs)
	}
	// The windowed quantiles see only {1000, 2000}: p50 covers the
	// 1000 observation's bucket, p99 the 2000 one — and critically the
	// pre-prime 100 ns observation influences neither.
	if w.P50 <= 512 || w.P50 > 1024 {
		t.Errorf("window p50 %g outside (512, 1024]", w.P50)
	}
	if w.P99 <= 1024 || w.P99 > 2048 {
		t.Errorf("window p99 %g outside (1024, 2048]", w.P99)
	}
	if w.P50 > w.P95 || w.P95 > w.P99 {
		t.Errorf("window quantiles not monotone: %g %g %g", w.P50, w.P95, w.P99)
	}

	// A quiet interval records an entry with no histogram window.
	hist.Scrape()
	if e := hist.Entries(0)[0]; len(e.Histograms) != 0 {
		t.Errorf("quiet interval recorded histogram windows: %+v", e.Histograms)
	}

	// The ring holds the newest `capacity` intervals, newest first.
	for i := 0; i < 6; i++ {
		c.Inc()
		hist.Scrape()
	}
	entries = hist.Entries(0)
	if len(entries) != 4 {
		t.Fatalf("ring retained %d entries, want capacity 4", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].At.After(entries[i-1].At) {
			t.Fatal("entries not newest first")
		}
	}
}

func TestHistoryHandler(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "t")
	hist := NewHistory(r, 8)
	hist.Scrape()
	c.Add(2)
	hist.Scrape()

	rec := httptest.NewRecorder()
	hist.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history?window=1h", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var resp historyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.WindowNs != (3600 * 1e9) {
		t.Errorf("window_ns %d", resp.WindowNs)
	}
	if len(resp.Entries) != 1 || resp.Entries[0].Counters["t_total"] != 2 {
		t.Errorf("entries %+v", resp.Entries)
	}

	rec = httptest.NewRecorder()
	hist.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history?window=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad window duration: status %d, want 400", rec.Code)
	}
}
