// Package obs is the repository's dependency-free observability core:
// atomic counters and gauges, log-bucketed latency histograms with a
// lock-free, allocation-free Observe on the hot path, and a Registry
// that renders everything in the Prometheus text exposition format
// (version 0.0.4) for GET /metrics.
//
// The paper's thesis is that the performance-optimal filter depends on
// *measured* workload and hardware behaviour — lookup cycles, FPR,
// insert mix. This package turns those cost-model inputs into exported
// signals: the server's batch plane times every insert/probe batch, the
// sharded layer times rotations, seals and the dual-write window, and
// the adaptive layer counts control-loop evaluations, hysteresis
// rejections and migrations by kind pair. Instruments are get-or-create
// by (name, labels): registering the same series twice returns the same
// instrument, so package-level instrumentation composes with per-filter
// series the server adds and removes at filter lifetime boundaries.
//
// Design constraints, in priority order:
//
//  1. Hot-path cost. Histogram.Observe and Counter.Add are a handful of
//     atomic adds with zero allocations — cheap enough for every probe
//     batch of a saturated server (BenchmarkObserve pins 0 allocs/op).
//  2. No dependencies. The exposition writer speaks the Prometheus text
//     format directly; nothing outside the standard library.
//  3. Deterministic output. Families render sorted by name, series
//     sorted by label signature, so /metrics diffs are meaningful and
//     the format can be golden-tested.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramBuckets is the number of finite histogram buckets: powers of
// two from 2^0 to 2^(HistogramBuckets-1) nanoseconds (bucket i counts
// observations v with 2^(i-1) < v <= 2^i), plus an implicit +Inf
// overflow. 2^35 ns ≈ 34 s, far beyond any filter-server operation.
const HistogramBuckets = 36

// Histogram is a log-bucketed latency histogram: power-of-two
// nanosecond buckets, lock-free and allocation-free to observe. The sum
// is tracked in nanoseconds.
type Histogram struct {
	buckets  [HistogramBuckets]atomic.Uint64
	overflow atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Uint64 // total nanoseconds
}

// Observe records one latency in nanoseconds. Negative values clamp to
// zero. It is safe for any number of concurrent callers and performs no
// allocations — this is the instrument that sits on the probe hot path.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	idx := bucketIndex(uint64(ns))
	if idx >= HistogramBuckets {
		h.overflow.Add(1)
	} else {
		h.buckets[idx].Add(1)
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
}

// bucketIndex returns the smallest i with v <= 2^i (0 for v <= 1):
// the index of the finite bucket whose upper bound covers v, or
// HistogramBuckets for overflow.
func bucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(v - 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// snapshotCumulative fills cum with the cumulative bucket counts
// (cum[i] = observations <= 2^i ns) and returns the +Inf total.
// Concurrent Observes may land between bucket loads; the rendered
// count is taken as the +Inf cumulative so the exposition is always
// internally monotone.
func (h *Histogram) snapshotCumulative(cum *[HistogramBuckets]uint64) uint64 {
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return running + h.overflow.Load()
}

// Quantile estimates the q-quantile (clamped to [0, 1]) of the observed
// distribution in nanoseconds from the live buckets. Precision follows
// the bucket layout: exact rank selection across buckets, log-linear
// interpolation within the covering power-of-two bucket — so the
// estimate is always inside the true value's bucket (within a factor of
// two worst case, much closer for smooth distributions). Returns 0 with
// no observations; a quantile landing in the +Inf overflow returns the
// largest finite bound. Concurrent Observes may tear slightly between
// bucket loads, as with the exposition snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [HistogramBuckets]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return quantileFromBuckets(counts[:], h.overflow.Load(), q)
}

// quantileFromBuckets is the shared estimator behind Histogram.Quantile
// and the History self-scraper's windowed quantiles (which feed it
// bucket *deltas* between two scrapes).
func quantileFromBuckets(counts []uint64, overflow uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	total += overflow
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we want.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			frac := float64(rank-cum) / float64(c)
			if i == 0 {
				// Bucket 0 covers [0, 1] ns; interpolate linearly.
				return frac
			}
			// Bucket i covers (2^(i-1), 2^i]: log-linear puts the
			// estimate at 2^((i-1)+frac).
			return float64(uint64(1)<<(i-1)) * math.Exp2(frac)
		}
		cum += c
	}
	return float64(uint64(1) << (HistogramBuckets - 1))
}

// instrument is one registered series' value. counter/gauge/hist are
// written at most once, under the registry lock, before the series is
// ever returned to a caller — so WritePrometheus may read them without
// the lock after snapshotting the series slice. fn is the exception:
// GaugeFunc replaces it on every call, so it lives behind an atomic
// pointer.
type instrument struct {
	counter *Counter
	gauge   *Gauge
	fn      atomic.Pointer[func() float64]
	hist    *Histogram
}

// series is one (labels, instrument) pair inside a family.
type series struct {
	labels string // canonical rendered label set, "" or `{k="v",...}`
	inst   instrument
}

// family groups every series sharing a metric name: one HELP/TYPE pair,
// many label sets.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	series []*series
	byKey  map[string]*series
}

// Registry holds instrument families and renders them as Prometheus
// text exposition. The zero value is not usable; call NewRegistry.
// All methods are safe for concurrent use; instrument handles returned
// from it are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry: package-level instrumentation
// (sharded rotations, adaptive control-loop counters) registers here,
// and the filter server serves it at GET /metrics.
var Default = NewRegistry()

// getSeries resolves (name, labels) to its series, creating family and
// series on first use. init runs on the series' instrument while the
// registry lock is still held, so two concurrent get-or-create calls
// for the same new series can never each build their own instrument,
// and a concurrent WritePrometheus never observes a half-initialized
// one. Registering one name with two different types is a programming
// error and panics.
func (r *Registry) getSeries(name, help, typ string, labels []string, init func(*instrument)) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: key}
		f.byKey[key] = s
		f.series = append(f.series, s)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	}
	init(&s.inst)
	return s
}

// Counter returns the counter series (name, labels), creating it on
// first use. labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getSeries(name, help, "counter", labels, func(in *instrument) {
		if in.counter == nil {
			in.counter = new(Counter)
		}
	})
	return s.inst.counter
}

// Gauge returns the gauge series (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getSeries(name, help, "gauge", labels, func(in *instrument) {
		if in.gauge == nil {
			in.gauge = new(Gauge)
		}
	})
	return s.inst.gauge
}

// GaugeFunc registers (or replaces) a callback-backed gauge series: fn
// is evaluated at render time, so the exposition always reflects live
// state (registry memory use, shard skew) without a write on every
// change.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.getSeries(name, help, "gauge", labels, func(in *instrument) {
		in.fn.Store(&fn)
	})
}

// Histogram returns the histogram series (name, labels), creating it on
// first use. By convention histogram names end in _ns: buckets are
// powers of two nanoseconds.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.getSeries(name, help, "histogram", labels, func(in *instrument) {
		if in.hist == nil {
			in.hist = new(Histogram)
		}
	})
	return s.inst.hist
}

// Remove drops the series (name, labels) — the per-filter lifecycle
// hook: a deleted filter's series must not linger in the exposition
// forever. Removing the last series keeps the (now empty) family
// registered so HELP/TYPE stay stable; removing a series that does not
// exist is a no-op.
func (r *Registry) Remove(name string, labels ...string) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return
	}
	if _, ok := f.byKey[key]; !ok {
		return
	}
	delete(f.byKey, key)
	for i, s := range f.series {
		if s.labels == key {
			f.series = append(f.series[:i], f.series[i+1:]...)
			break
		}
	}
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name, series by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family structure under the lock; instrument values are
	// read lock-free afterwards (they are atomics).
	fams := make([]*family, len(names))
	sers := make([][]*series, len(names))
	for i, name := range names {
		f := r.families[name]
		fams[i] = f
		sers[i] = append([]*series(nil), f.series...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if len(sers[i]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range sers[i] {
			writeSeries(&b, f.name, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, name string, s *series) {
	fn := s.inst.fn.Load()
	switch {
	case s.inst.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", name, s.labels, s.inst.counter.Value())
	case fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatFloat((*fn)()))
	case s.inst.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatFloat(s.inst.gauge.Value()))
	case s.inst.hist != nil:
		h := s.inst.hist
		var cum [HistogramBuckets]uint64
		total := h.snapshotCumulative(&cum)
		for i, c := range cum {
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", strconv.FormatUint(1<<uint(i), 10)), c)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), total)
		fmt.Fprintf(b, "%s_sum%s %d\n", name, s.labels, h.Sum())
		fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, total)
	}
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// renderLabels canonicalizes alternating key/value pairs into the
// exposition label syntax, sorted by key ("" for no labels). Odd-length
// label lists are a programming error.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want key/value pairs)")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel appends one more label to an already-rendered label set
// (the histogram le label).
func withLabel(rendered, k, v string) string {
	extra := k + `="` + escapeValue(v) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func escapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// formatFloat renders a gauge value: integral values without an
// exponent, everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
