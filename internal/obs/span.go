// Request-scoped spans: the unit of the zero-dependency tracing layer
// (trace.go holds the Tracer that samples and retains them).
//
// A Span is a named interval with monotonic start/end (time.Time carries
// the monotonic clock, so durations survive wall-clock steps), free-form
// key/value attributes, and child links forming a tree under one root.
// Spans are nil-safe: every method on a nil *Span is a no-op, so
// instrumented code threads the "am I sampled?" decision through a single
// pointer instead of branching — an unsampled request carries a nil span
// in its context and pays nothing, not even an allocation.
package obs

import (
	"context"
	"encoding/hex"
	"sync"
	"time"
)

// TraceID is the W3C trace-context 16-byte trace id shared by every span
// in one request tree.
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the W3C trace-context 8-byte span id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Attr is one key/value attribute on a span. Values are rendered through
// encoding/json in the debug endpoint; stick to strings, numbers and
// bools.
type Attr struct {
	Key   string
	Value any
}

// Span is one named interval in a trace tree. A nil *Span is valid and
// inert — the unsampled fast path. Methods are safe for concurrent use;
// a span's children may start, annotate and end in parallel (the sharded
// probe fan-out does exactly that).
type Span struct {
	tracer  *Tracer // non-nil on roots; nil on children (root owns retention)
	name    string
	traceID TraceID
	spanID  SpanID
	// parentID is the remote parent from an ingested traceparent (roots)
	// or the in-process parent's span id (children); zero for a locally
	// originated root.
	parentID SpanID
	start    time.Time

	mu       sync.Mutex
	durNs    int64
	ended    bool
	attrs    []Attr
	children []*Span
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceIDString returns the 32-hex trace id ("" on nil): what the server
// echoes in X-Trace-Id and logs as request_id.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.traceID.String()
}

// SetAttr attaches one key/value attribute. No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// StartChild starts a child span, linked under s and sharing its trace
// id. Returns nil on a nil receiver, so the sampling decision made at the
// root propagates for free.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		name:     name,
		traceID:  s.traceID,
		spanID:   s.newChildID(),
		parentID: s.spanID,
		start:    time.Now(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// newChildID derives a child span id. The root's tracer PRNG is used when
// reachable; a child-of-a-child perturbs its own id (ids only need to be
// unique within the trace for display purposes).
func (s *Span) newChildID() SpanID {
	if s.tracer != nil {
		return s.tracer.genSpanID()
	}
	x := splitmix64(uint64(time.Now().UnixNano()) ^ leU64(s.spanID[:]))
	var id SpanID
	putLeU64(id[:], x)
	return id
}

// End marks the span complete, freezing its duration. A root span is
// pushed into its tracer's ring on first End; later Ends are no-ops.
// No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.durNs = time.Since(s.start).Nanoseconds()
	s.mu.Unlock()
	if s.tracer != nil {
		s.tracer.push(s)
	}
}

// DurationNs returns the frozen duration (0 before End / on nil).
func (s *Span) DurationNs() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durNs
}

// spanView is the JSON shape served by the traces debug endpoint.
type spanView struct {
	TraceID      string     `json:"trace_id"`
	SpanID       string     `json:"span_id"`
	ParentSpanID string     `json:"parent_span_id,omitempty"`
	Name         string     `json:"name"`
	Start        time.Time  `json:"start"`
	DurationNs   int64      `json:"duration_ns"`
	Ended        bool       `json:"ended"`
	Attrs        []attrView `json:"attrs,omitempty"`
	Children     []spanView `json:"children,omitempty"`
}

type attrView struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// view snapshots the span tree for rendering. Each span locks only
// itself; children are copied out before recursing, so concurrent
// StartChild/SetAttr/End calls on a still-live tree cannot deadlock the
// reader.
func (s *Span) view() spanView {
	s.mu.Lock()
	v := spanView{
		TraceID:    s.traceID.String(),
		SpanID:     s.spanID.String(),
		Name:       s.name,
		Start:      s.start,
		DurationNs: s.durNs,
		Ended:      s.ended,
	}
	if !s.parentID.IsZero() {
		v.ParentSpanID = s.parentID.String()
	}
	if len(s.attrs) > 0 {
		v.Attrs = make([]attrView, len(s.attrs))
		for i, a := range s.attrs {
			v.Attrs[i] = attrView{Key: a.Key, Value: a.Value}
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(children) > 0 {
		v.Children = make([]spanView, len(children))
		for i, c := range children {
			v.Children[i] = c.view()
		}
	}
	return v
}

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span, or nil if the request is
// unsampled (or ctx never passed through StartRoot).
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan starts a child of ctx's active span and returns a context
// carrying the child. When ctx has no active span — the request was not
// sampled — it returns (ctx, nil) without allocating, which is the
// property TestSpanZeroAllocsWhenUnsampled pins; the nil span silently
// absorbs SetAttr/End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
