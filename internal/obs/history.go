// History: a self-scraped ring of registry snapshots, so the last N
// minutes of metric movement are inspectable from the process itself —
// a latency spike or crash-loop leaves evidence at
// GET /metrics/history?window=5m without an external Prometheus.
//
// Each scrape records counter *deltas* and histogram *windows* (bucket
// deltas against the previous scrape, reduced to count/sum/p50/p95/p99),
// plus absolute gauge values. Deltas are the point: a cumulative p99
// over a day-old histogram cannot show a five-minute regression, but the
// quantile of just the observations that landed between two scrapes can.
package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// HistogramWindow summarizes one histogram's observations between two
// consecutive scrapes.
type HistogramWindow struct {
	Count uint64  `json:"count"`
	SumNs uint64  `json:"sum_ns"`
	P50   float64 `json:"p50_ns"`
	P95   float64 `json:"p95_ns"`
	P99   float64 `json:"p99_ns"`
}

// HistoryEntry is one interval between two consecutive scrapes. Map keys
// are the exposition series identity: name plus rendered labels, e.g.
// `perfilter_server_keys_total{filter="ids",op="probe"}`. Zero-delta
// counters and empty histogram windows are omitted.
type HistoryEntry struct {
	At         time.Time                  `json:"at"` // end of the interval
	IntervalNs int64                      `json:"interval_ns"`
	Counters   map[string]uint64          `json:"counter_deltas,omitempty"`
	Gauges     map[string]float64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramWindow `json:"histograms,omitempty"`
}

// histRaw is one histogram's raw cumulative state at scrape time.
type histRaw struct {
	buckets  [HistogramBuckets]uint64
	overflow uint64
	count    uint64
	sum      uint64
}

// rawSnapshot reads every series' current value. The registry lock only
// guards the family/series structure walk; instrument reads happen after
// unlock (they are atomics), and GaugeFunc callbacks in particular must
// run unlocked — several of the server's callbacks take server locks.
func (r *Registry) rawSnapshot() (counters map[string]uint64, gauges map[string]float64, hists map[string]histRaw) {
	type pending struct {
		key  string
		inst *instrument
	}
	r.mu.Lock()
	all := make([]pending, 0, 64)
	for name, f := range r.families {
		for _, s := range f.series {
			all = append(all, pending{key: name + s.labels, inst: &s.inst})
		}
	}
	r.mu.Unlock()

	counters = make(map[string]uint64)
	gauges = make(map[string]float64)
	hists = make(map[string]histRaw)
	for _, p := range all {
		fn := p.inst.fn.Load()
		switch {
		case p.inst.counter != nil:
			counters[p.key] = p.inst.counter.Value()
		case fn != nil:
			gauges[p.key] = (*fn)()
		case p.inst.gauge != nil:
			gauges[p.key] = p.inst.gauge.Value()
		case p.inst.hist != nil:
			var raw histRaw
			h := p.inst.hist
			for i := range h.buckets {
				raw.buckets[i] = h.buckets[i].Load()
			}
			raw.overflow = h.overflow.Load()
			raw.count = h.count.Load()
			raw.sum = h.sum.Load()
			hists[p.key] = raw
		}
	}
	return counters, gauges, hists
}

// History retains a fixed ring of periodic registry snapshots. All
// methods are safe for concurrent use; Scrape calls are serialized by
// the internal lock (overlapping scrapes would corrupt the delta
// baseline).
type History struct {
	reg *Registry

	mu      sync.Mutex
	entries []HistoryEntry // ring; entries[next-1] is newest
	next    int            // next slot to write
	filled  bool           // ring has wrapped at least once

	primed       bool
	prevAt       time.Time
	prevCounters map[string]uint64
	prevHists    map[string]histRaw
}

// DefaultHistoryEntries is the retained scrape count when capacity <= 0:
// 90 scrapes at the server's default 10 s interval span 15 minutes.
const DefaultHistoryEntries = 90

// NewHistory builds a history over reg retaining capacity intervals.
func NewHistory(reg *Registry, capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryEntries
	}
	return &History{reg: reg, entries: make([]HistoryEntry, capacity)}
}

// Scrape takes one snapshot. The first call only records the delta
// baseline and retains nothing; every later call appends the interval
// since the previous scrape.
func (h *History) Scrape() {
	counters, gauges, hists := h.reg.rawSnapshot()
	now := time.Now()

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.primed {
		e := HistoryEntry{
			At:         now,
			IntervalNs: now.Sub(h.prevAt).Nanoseconds(),
			Counters:   make(map[string]uint64),
			Gauges:     gauges,
			Histograms: make(map[string]HistogramWindow),
		}
		for k, cur := range counters {
			// A series created during the interval has no baseline: its
			// whole value is the delta.
			if d := cur - h.prevCounters[k]; d > 0 && cur >= h.prevCounters[k] {
				e.Counters[k] = d
			}
		}
		for k, cur := range hists {
			prev := h.prevHists[k] // zero value when new: full history is the window
			dc := cur.count - prev.count
			if dc == 0 || cur.count < prev.count {
				continue
			}
			var db [HistogramBuckets]uint64
			for i := range db {
				db[i] = cur.buckets[i] - prev.buckets[i]
			}
			e.Histograms[k] = HistogramWindow{
				Count: dc,
				SumNs: cur.sum - prev.sum,
				P50:   quantileFromBuckets(db[:], cur.overflow-prev.overflow, 0.50),
				P95:   quantileFromBuckets(db[:], cur.overflow-prev.overflow, 0.95),
				P99:   quantileFromBuckets(db[:], cur.overflow-prev.overflow, 0.99),
			}
		}
		h.entries[h.next] = e
		h.next++
		if h.next == len(h.entries) {
			h.next = 0
			h.filled = true
		}
	}
	h.primed = true
	h.prevAt = now
	h.prevCounters = counters
	h.prevHists = hists
}

// Run scrapes every interval until ctx is cancelled — the server's
// background self-scraper. It primes immediately so the first retained
// entry lands one interval in.
func (h *History) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	h.Scrape()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.Scrape()
		}
	}
}

// Entries returns the retained intervals that ended within window of the
// newest one, newest first. window <= 0 returns everything retained.
func (h *History) Entries(window time.Duration) []HistoryEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.next
	if h.filled {
		n = len(h.entries)
	}
	out := make([]HistoryEntry, 0, n)
	var newest time.Time
	for i := 0; i < n; i++ {
		e := h.entries[(h.next-1-i+len(h.entries))%len(h.entries)]
		if i == 0 {
			newest = e.At
		} else if window > 0 && newest.Sub(e.At) > window {
			break
		}
		out = append(out, e)
	}
	return out
}

// historyResponse is the GET /metrics/history JSON shape.
type historyResponse struct {
	WindowNs int64          `json:"window_ns"`
	Entries  []HistoryEntry `json:"entries"`
}

// Handler serves the retained intervals as JSON, newest first.
// ?window=5m (any time.ParseDuration string) bounds how far back from
// the newest entry to include; the default is 5 minutes, window=0
// returns everything retained.
func (h *History) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		window := 5 * time.Minute
		if v := r.URL.Query().Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				http.Error(w, `{"error":"bad window duration"}`, http.StatusBadRequest)
				return
			}
			window = d
		}
		entries := h.Entries(window)
		if entries == nil {
			entries = []HistoryEntry{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(historyResponse{WindowNs: window.Nanoseconds(), Entries: entries})
	})
}
