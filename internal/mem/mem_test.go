package mem

import (
	"testing"
	"unsafe"
)

func addrOf[T any](s []T) uintptr {
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))
}

func testAligned[T any](t *testing.T, name string) {
	t.Helper()
	for _, n := range []int{1, 2, 7, 8, 63, 64, 65, 1000, 1 << 16} {
		s := Aligned[T](n)
		if len(s) != n {
			t.Fatalf("%s: Aligned(%d) len = %d", name, n, len(s))
		}
		if got := addrOf(s) % CacheLine; got != 0 {
			t.Errorf("%s: Aligned(%d) addr %% %d = %d", name, n, CacheLine, got)
		}
		if !IsAligned(s) {
			t.Errorf("%s: IsAligned(Aligned(%d)) = false", name, n)
		}
	}
}

func TestAligned(t *testing.T) {
	// Repeat enough times that the raw allocations land on varied
	// addresses; every returned slice must still be aligned.
	for i := 0; i < 64; i++ {
		testAligned[uint8](t, "uint8")
		testAligned[uint16](t, "uint16")
		testAligned[uint32](t, "uint32")
		testAligned[uint64](t, "uint64")
	}
}

func TestAlignedEmpty(t *testing.T) {
	if s := Aligned[uint64](0); s != nil {
		t.Fatalf("Aligned(0) = %v, want nil", s)
	}
	if s := Aligned[uint64](-3); s != nil {
		t.Fatalf("Aligned(-3) = %v, want nil", s)
	}
	if !IsAligned([]uint64(nil)) {
		t.Fatal("IsAligned(nil) = false, want vacuous true")
	}
}

func TestAlignedWritable(t *testing.T) {
	s := Aligned[uint64](128)
	for i := range s {
		s[i] = uint64(i)
	}
	for i := range s {
		if s[i] != uint64(i) {
			t.Fatalf("s[%d] = %d", i, s[i])
		}
	}
	// Capacity is clipped to length: appends cannot scribble into the
	// alignment padding shared with nothing, and cannot silently
	// de-align a reallocated slice without the caller noticing length
	// growth.
	if cap(s) != len(s) {
		t.Fatalf("cap = %d, want %d", cap(s), len(s))
	}
}

// Structs whose size divides the cache line are aligned too (the exact
// set's 8-byte slot), and sizes that do not divide fall back to plain
// allocation without panicking.
func TestAlignedStructElem(t *testing.T) {
	type slot struct{ a, b uint32 }
	for i := 0; i < 64; i++ {
		s := Aligned[slot](100)
		if !IsAligned(s) {
			t.Fatal("8-byte struct slice not aligned")
		}
	}
	type odd struct{ a, b, c uint64 } // 24 bytes: does not divide 64
	s := Aligned[odd](10)
	if len(s) != 10 {
		t.Fatalf("fallback len = %d", len(s))
	}
}

func TestMisaligned(t *testing.T) {
	for i := 0; i < 64; i++ {
		s := Misaligned[uint64](256)
		if len(s) != 256 {
			t.Fatalf("len = %d", len(s))
		}
		if got := addrOf(s) % CacheLine; got != 8 {
			t.Errorf("Misaligned addr %% %d = %d, want 8", CacheLine, got)
		}
		if IsAligned(s) {
			t.Error("IsAligned(Misaligned(...)) = true")
		}
	}
}
