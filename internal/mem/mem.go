// Package mem provides cache-line-aligned backing storage for filter
// word arrays.
//
// The paper's blocked layouts (§4 of Lang et al., PVLDB 2019) assume a
// register-blocked or sectorized block occupies exactly one cache line,
// so a probe costs one memory access. Go's allocator only guarantees
// 8/16-byte alignment for ordinary slices, which lets a 512-bit block
// straddle two lines and silently doubles the miss cost. Aligned
// over-allocates by one cache line and re-slices so element 0 sits on a
// 64-byte boundary; the extra padding is retained by the returned slice's
// underlying array, so the guarantee survives for the slice's lifetime.
package mem

import "unsafe"

// CacheLine is the alignment boundary, in bytes, that Aligned guarantees
// for element 0 of every slice it returns.
const CacheLine = 64

// Aligned returns a length-n slice whose element 0 is CacheLine-aligned.
// The element size must divide CacheLine (1, 2, 4, 8, ... byte elements);
// other sizes fall back to a plain make, since no whole-element offset
// can reach the boundary. n <= 0 returns nil.
func Aligned[T any](n int) []T {
	if n <= 0 {
		return nil
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	if size == 0 || CacheLine%size != 0 {
		return make([]T, n)
	}
	pad := CacheLine / size
	buf := make([]T, n+pad)
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	off := 0
	if r := int(addr % CacheLine); r != 0 {
		off = (CacheLine - r) / size
	}
	return buf[off : off+n : off+n]
}

// IsAligned reports whether element 0 of s sits on a CacheLine boundary.
// Empty slices are vacuously aligned.
func IsAligned[T any](s []T) bool {
	if len(s) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))%CacheLine == 0
}

// Misaligned returns a length-n slice whose element 0 is deliberately NOT
// CacheLine-aligned (it sits one element past a boundary), so blocks
// straddle cache lines. It exists as the control arm for the
// aligned-vs-misaligned benchmark comparison; no filter uses it outside
// internal/bench.
func Misaligned[T any](n int) []T {
	if n <= 0 {
		return nil
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	if size == 0 || CacheLine%size != 0 || CacheLine/size < 2 {
		return make([]T, n)
	}
	pad := CacheLine / size
	buf := make([]T, n+pad)
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	// Land element 0 exactly one element past a line start.
	off := 1
	if r := int(addr % CacheLine); r != 0 {
		off = (CacheLine-r)/size + 1
	}
	return buf[off : off+n : off+n]
}
