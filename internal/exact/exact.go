// Package exact implements an exact membership structure — a Robin Hood
// open-addressing hash set of 32-bit keys — for the region of Figure 1
// where the paper recommends "better use an exact filter (hash map, tree)":
// small problem sizes with expensive work savings, where false positives
// should be avoided entirely.
//
// Robin Hood hashing bounds probe-sequence variance by displacing entries
// that are closer to their home slot than the inserting entry, and deletes
// with backward shifting so no tombstones accumulate. The set also serves
// as ground truth in the workload generators and tests.
//
// Safe for concurrent readers; writes need external synchronization.
package exact

import (
	"fmt"

	"perfilter/internal/core"
	"perfilter/internal/hashing"
	"perfilter/internal/mem"
	"perfilter/internal/simd"
)

// maxLoad is the occupancy at which the table grows. Robin Hood probing
// stays fast well past 0.8; 0.85 keeps memory overhead modest.
const maxLoad = 0.85

// Set is an exact set of 32-bit keys. The zero value is not ready; use New.
type Set struct {
	slots []slot
	mask  uint32
	count int
}

// slot holds a key and its occupancy marker. dist is the probe distance
// from the key's home slot plus one; 0 marks an empty slot.
type slot struct {
	key  core.Key
	dist uint32
}

// New returns a set pre-sized for capacity keys.
func New(capacity int) *Set {
	size := uint32(16)
	for float64(size)*maxLoad < float64(capacity) {
		size <<= 1
	}
	return &Set{slots: mem.Aligned[slot](int(size)), mask: size - 1}
}

// StorageAligned reports whether the slot array starts on a cache-line
// boundary (always true for sets from New).
func (s *Set) StorageAligned() bool { return mem.IsAligned(s.slots) }

// home returns the key's preferred slot (multiplicative hashing, top bits).
func (s *Set) home(key core.Key) uint32 {
	return uint32(hashing.Mult64(key)>>32) & s.mask
}

// Insert adds key to the set; duplicate inserts are no-ops. Returns true if
// the key was newly added.
func (s *Set) Insert(key core.Key) bool {
	if float64(s.count+1) > float64(len(s.slots))*maxLoad {
		s.grow()
	}
	// Phase 1: walk the key's probe path. The Robin Hood invariant means
	// the key, if present, appears before any slot whose occupant is closer
	// to its own home than we are to ours.
	idx := s.home(key)
	dist := uint32(1)
	for {
		sl := &s.slots[idx]
		if sl.dist == 0 {
			*sl = slot{key: key, dist: dist}
			s.count++
			return true
		}
		if sl.key == key {
			return false
		}
		if sl.dist < dist {
			break
		}
		dist++
		idx = (idx + 1) & s.mask
	}
	// Phase 2: the key is absent; place it here and ripple the displaced
	// entries forward ("steal from the rich").
	cur := slot{key: key, dist: dist}
	s.count++
	for {
		sl := &s.slots[idx]
		if sl.dist == 0 {
			*sl = cur
			return true
		}
		if sl.dist < cur.dist {
			*sl, cur = cur, *sl
		}
		cur.dist++
		idx = (idx + 1) & s.mask
	}
}

// Contains reports whether key is in the set — exactly.
func (s *Set) Contains(key core.Key) bool {
	idx := s.home(key)
	dist := uint32(1)
	for {
		sl := s.slots[idx]
		if sl.dist == 0 || sl.dist < dist {
			// An empty slot, or an entry closer to home than we would be,
			// proves the key is absent (the Robin Hood invariant).
			return false
		}
		if sl.key == key {
			return true
		}
		dist++
		idx = (idx + 1) & s.mask
	}
}

// ContainsBatch appends matching positions to sel (the shared batched
// contract; exact sets produce no false positives at all).
func (s *Set) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	buf, cnt := simd.GrowSel(sel, len(keys))
	for i, key := range keys {
		buf[cnt] = uint32(i)
		cnt += simd.B2I(s.Contains(key))
	}
	return buf[:cnt]
}

// Delete removes key, returning whether it was present. Backward-shift
// deletion maintains the Robin Hood invariant without tombstones.
func (s *Set) Delete(key core.Key) bool {
	idx := s.home(key)
	dist := uint32(1)
	for {
		sl := s.slots[idx]
		if sl.dist == 0 || sl.dist < dist {
			return false
		}
		if sl.key == key {
			break
		}
		dist++
		idx = (idx + 1) & s.mask
	}
	// Shift successors back until an empty or home-positioned entry.
	for {
		next := (idx + 1) & s.mask
		ns := s.slots[next]
		if ns.dist <= 1 {
			s.slots[idx] = slot{}
			break
		}
		ns.dist--
		s.slots[idx] = ns
		idx = next
	}
	s.count--
	return true
}

// Len returns the number of keys in the set.
func (s *Set) Len() int { return s.count }

// SizeBits returns the memory footprint in bits (8 bytes per slot), for
// apples-to-apples comparisons with the approximate filters.
func (s *Set) SizeBits() uint64 { return uint64(len(s.slots)) * 64 }

// Reset removes all keys, keeping the capacity.
func (s *Set) Reset() {
	clear(s.slots)
	s.count = 0
}

// grow doubles the table and reinserts all entries.
func (s *Set) grow() {
	old := s.slots
	s.slots = mem.Aligned[slot](2 * len(old))
	s.mask = uint32(len(s.slots)) - 1
	s.count = 0
	for _, sl := range old {
		if sl.dist != 0 {
			s.Insert(sl.key)
		}
	}
}

// String summarizes the set.
func (s *Set) String() string {
	return fmt.Sprintf("exact[n=%d,slots=%d]", s.count, len(s.slots))
}
