package exact

import (
	"testing"
	"testing/quick"

	"perfilter/internal/rng"
)

func TestInsertContains(t *testing.T) {
	s := New(1000)
	r := rng.NewMT19937(1)
	keys := map[uint32]bool{}
	for len(keys) < 1000 {
		k := r.Uint32()
		if !keys[k] {
			keys[k] = true
			if !s.Insert(k) {
				t.Fatalf("fresh insert of %d returned false", k)
			}
		}
	}
	for k := range keys {
		if !s.Contains(k) {
			t.Fatalf("missing key %d", k)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestExactness(t *testing.T) {
	// Unlike the approximate filters, the exact set must have zero false
	// positives over a large adversarial probe set.
	s := New(4096)
	r := rng.NewMT19937(2)
	inserted := map[uint32]bool{}
	for len(inserted) < 4096 {
		k := r.Uint32()
		if !inserted[k] {
			inserted[k] = true
			s.Insert(k)
		}
	}
	for i := 0; i < 1<<17; i++ {
		k := r.Uint32()
		if s.Contains(k) != inserted[k] {
			t.Fatalf("wrong answer for %d", k)
		}
	}
}

func TestDuplicateInsert(t *testing.T) {
	s := New(16)
	if !s.Insert(5) || s.Insert(5) {
		t.Fatal("duplicate handling broken")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := New(100)
	r := rng.NewMT19937(3)
	var keys []uint32
	seen := map[uint32]bool{}
	for len(keys) < 500 { // force growth and long probe chains
		k := r.Uint32()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
			s.Insert(k)
		}
	}
	// Delete every other key; the rest must remain findable.
	for i, k := range keys {
		if i%2 == 0 {
			if !s.Delete(k) {
				t.Fatalf("delete of %d failed", k)
			}
		}
	}
	for i, k := range keys {
		want := i%2 == 1
		if s.Contains(k) != want {
			t.Fatalf("key %d: contains=%v want %v", k, !want, want)
		}
	}
	if s.Delete(keys[0]) {
		t.Fatal("double delete returned true")
	}
}

func TestDeleteAbsent(t *testing.T) {
	s := New(16)
	s.Insert(1)
	if s.Delete(2) {
		t.Fatal("deleted absent key")
	}
	if !s.Contains(1) {
		t.Fatal("lost unrelated key")
	}
}

func TestGrowth(t *testing.T) {
	s := New(4) // deliberately undersized
	for i := uint32(0); i < 10000; i++ {
		s.Insert(i * 2654435761)
	}
	if s.Len() != 10000 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := uint32(0); i < 10000; i++ {
		if !s.Contains(i * 2654435761) {
			t.Fatalf("lost key %d after growth", i)
		}
	}
	load := float64(s.Len()) / float64(len(s.slots))
	if load > maxLoad {
		t.Fatalf("load %.3f exceeds bound", load)
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	s := New(256)
	r := rng.NewMT19937(4)
	for i := 0; i < 256; i++ {
		s.Insert(r.Uint32())
	}
	probe := make([]uint32, 500)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	sel := s.ContainsBatch(probe, nil)
	j := 0
	for i, k := range probe {
		want := s.Contains(k)
		got := j < len(sel) && sel[j] == uint32(i)
		if got != want {
			t.Fatalf("pos %d mismatch", i)
		}
		if got {
			j++
		}
	}
}

func TestReset(t *testing.T) {
	s := New(16)
	s.Insert(1)
	s.Reset()
	if s.Len() != 0 || s.Contains(1) {
		t.Fatal("reset incomplete")
	}
}

func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	s := New(1024)
	if err := quick.Check(func(key uint32) bool {
		fresh := s.Insert(key)
		if !s.Contains(key) {
			return false
		}
		if fresh {
			return s.Delete(key) && !s.Contains(key)
		}
		return true
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMirrorsMap(t *testing.T) {
	// Model-based test: a sequence of inserts/deletes must track the
	// behaviour of Go's built-in map exactly.
	s := New(64)
	model := map[uint32]bool{}
	r := rng.NewSplitMix64(6)
	for i := 0; i < 50000; i++ {
		k := r.Uint32n(2000) // dense range forces collisions
		switch r.Uint32n(3) {
		case 0:
			if s.Insert(k) != !model[k] {
				t.Fatalf("insert disagreement for %d", k)
			}
			model[k] = true
		case 1:
			if s.Delete(k) != model[k] {
				t.Fatalf("delete disagreement for %d", k)
			}
			delete(model, k)
		default:
			if s.Contains(k) != model[k] {
				t.Fatalf("contains disagreement for %d", k)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", s.Len(), len(model))
	}
}

func TestSizeBits(t *testing.T) {
	s := New(100)
	if s.SizeBits() != uint64(len(s.slots))*64 {
		t.Fatal("SizeBits wrong")
	}
}

func BenchmarkContains(b *testing.B) {
	s := New(1 << 16)
	r := rng.NewMT19937(1)
	for i := 0; i < 1<<16; i++ {
		s.Insert(r.Uint32())
	}
	probe := make([]uint32, 1024)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	sel := make([]uint32, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = s.ContainsBatch(probe, sel[:0])
	}
}
