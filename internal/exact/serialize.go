package exact

import (
	"encoding/binary"
	"fmt"

	"perfilter/internal/core"
	"perfilter/internal/magic"
	"perfilter/internal/mem"
)

// Serialization stores the table verbatim — every slot's key and probe
// distance — so the restored set is byte-identical to the original, not
// merely equivalent: re-inserting in scan order could tie-break Robin
// Hood displacements differently.

// WireMagic is the first little-endian uint32 of every serialized exact
// set; the perfilter package dispatches decoders on it. The value is
// assigned centrally in internal/magic alongside every other format's.
const WireMagic = magic.WireExact // "pfLE"

const (
	wireVersion = 1
	headerLen   = 4 + 1 + 3 + 4 + 4
)

// MarshalBinary serializes the set (header + slots).
func (s *Set) MarshalBinary() ([]byte, error) {
	out := make([]byte, headerLen+len(s.slots)*8)
	le := binary.LittleEndian
	le.PutUint32(out[0:], WireMagic)
	out[4] = wireVersion
	le.PutUint32(out[8:], uint32(len(s.slots)))
	le.PutUint32(out[12:], uint32(s.count))
	for i, sl := range s.slots {
		le.PutUint32(out[headerLen+i*8:], sl.key)
		le.PutUint32(out[headerLen+i*8+4:], sl.dist)
	}
	return out, nil
}

// Unmarshal reconstructs a set from MarshalBinary output.
func Unmarshal(data []byte) (*Set, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("exact: truncated header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != WireMagic {
		return nil, fmt.Errorf("exact: bad magic")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("exact: unsupported version %d", data[4])
	}
	size := le.Uint32(data[8:])
	if size < 16 || size&(size-1) != 0 {
		return nil, fmt.Errorf("exact: slot count %d is not a power of two >= 16", size)
	}
	count := le.Uint32(data[12:])
	if uint64(len(data)) != headerLen+uint64(size)*8 {
		return nil, fmt.Errorf("exact: body length %d, want %d",
			len(data)-headerLen, uint64(size)*8)
	}
	if count > size {
		return nil, fmt.Errorf("exact: count %d exceeds %d slots", count, size)
	}
	s := &Set{slots: mem.Aligned[slot](int(size)), mask: size - 1, count: int(count)}
	occupied := uint32(0)
	for i := range s.slots {
		sl := slot{
			key:  core.Key(le.Uint32(data[headerLen+i*8:])),
			dist: le.Uint32(data[headerLen+i*8+4:]),
		}
		// dist is the probe distance plus one; in any valid Robin Hood
		// table it is at most the slot count. Rejecting larger values
		// keeps the probe loops' termination invariant: corrupt or
		// crafted bytes must not be able to make Contains spin forever.
		if sl.dist > size {
			return nil, fmt.Errorf("exact: slot %d distance %d exceeds %d slots", i, sl.dist, size)
		}
		if sl.dist != 0 {
			occupied++
		}
		s.slots[i] = sl
	}
	if occupied != count {
		return nil, fmt.Errorf("exact: %d occupied slots but count %d", occupied, count)
	}
	return s, nil
}
