package cuckoo

import (
	"testing"

	"perfilter/internal/rng"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, p := range []Params{
		{TagBits: 16, BucketSize: 2},
		{TagBits: 12, BucketSize: 4, Magic: true},
		{TagBits: 8, BucketSize: 4},
	} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, 1<<15)
			if err != nil {
				t.Fatal(err)
			}
			keys := fill(t, f, 0.4, 3)
			data, err := f.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Count() != f.Count() || back.SizeBits() != f.SizeBits() {
				t.Fatal("metadata changed")
			}
			for _, k := range keys {
				if !back.Contains(k) {
					t.Fatalf("false negative after round trip")
				}
			}
			probe := rng.NewSplitMix64(9)
			for i := 0; i < 5000; i++ {
				k := probe.Uint32()
				if back.Contains(k) != f.Contains(k) {
					t.Fatalf("answer changed for %d", k)
				}
			}
			// Deletes still work on the deserialized filter.
			if !back.Delete(keys[0]) {
				t.Fatal("delete failed after round trip")
			}
		})
	}
}

func TestSerializePreservesVictim(t *testing.T) {
	p := Params{TagBits: 8, BucketSize: 1}
	f, _ := New(p, 64*8)
	r := rng.NewMT19937(1)
	var inserted []uint32
	for i := 0; i < 10000 && !f.hasVictim; i++ {
		k := r.Uint32()
		if f.Insert(k) != nil {
			break
		}
		inserted = append(inserted, k)
	}
	if !f.hasVictim {
		t.Skip("victim never engaged")
	}
	data, _ := f.MarshalBinary()
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range inserted {
		if !back.Contains(k) {
			t.Fatal("victim lost in round trip")
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	f, _ := New(Params{TagBits: 16, BucketSize: 2}, 1<<12)
	_ = f.Insert(1)
	data, _ := f.MarshalBinary()
	cases := map[string]func([]byte) []byte{
		"short":     func(d []byte) []byte { return d[:8] },
		"magic":     func(d []byte) []byte { c := append([]byte(nil), d...); c[1] ^= 0xFF; return c },
		"version":   func(d []byte) []byte { c := append([]byte(nil), d...); c[4] = 9; return c },
		"params":    func(d []byte) []byte { c := append([]byte(nil), d...); c[6] = 5; return c },
		"truncated": func(d []byte) []byte { return d[:len(d)-1] },
	}
	for name, corrupt := range cases {
		if _, err := Unmarshal(corrupt(data)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
