package cuckoo

import (
	"perfilter/internal/core"
	"perfilter/internal/simd"
)

// batchUnroll matches the blocked-Bloom kernels: per iteration the hashes
// and bucket addresses of eight keys are computed before any table words
// are touched — the software analogue of the paper's gather-based SIMD
// probe (§5.1, see package simd).
const batchUnroll = simd.Width

// ContainsBatch appends the positions of possibly-contained keys to sel and
// returns the extended selection vector. Results are identical to scalar
// Contains. Buckets that fit in a 64-bit word with 8/16/32-bit tags use a
// branch-free SWAR comparison ("one comparison per bucket"); other
// configurations and filters holding a victim fall back to the scalar path.
func (f *Filter) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	buf, cnt := simd.GrowSel(sel, len(keys))
	if f.swarOK() && !f.hasVictim {
		cnt = f.batchSWAR(keys, buf, cnt)
	} else {
		for i, key := range keys {
			buf[cnt] = uint32(i)
			var inc int
			if f.Contains(key) {
				inc = 1
			}
			cnt += inc
		}
	}
	return buf[:cnt]
}

// swarOK reports whether the configuration supports the SWAR bucket probe:
// the tag width must be a byte multiple (8/16/32) and a whole bucket must
// fit in one aligned 64-bit word. The paper likewise restricts its SIMD
// fast paths to "SIMD-friendly" 8-, 16- and 32-bit signatures.
func (f *Filter) swarOK() bool {
	l := f.params.TagBits
	if l != 8 && l != 16 && l != 32 {
		return false
	}
	return f.bucketBits <= 64 && 64%f.bucketBits == 0
}

// swarConsts returns the per-lane low-bit and high-bit constants for the
// zero-lane test, truncated to the bucket width.
func (f *Filter) swarConsts() (lo, hi, bucketMask uint64) {
	l := f.params.TagBits
	var loFull, hiFull uint64
	switch l {
	case 8:
		loFull, hiFull = 0x0101010101010101, 0x8080808080808080
	case 16:
		loFull, hiFull = 0x0001000100010001, 0x8000800080008000
	default: // 32
		loFull, hiFull = 0x0000000100000001, 0x8000000080000000
	}
	if f.bucketBits == 64 {
		return loFull, hiFull, ^uint64(0)
	}
	bucketMask = uint64(1)<<f.bucketBits - 1
	return loFull & bucketMask, hiFull & bucketMask, bucketMask
}

// broadcast replicates an l-bit tag across the b lanes of a bucket word.
func broadcast(tag uint32, l, b uint32) uint64 {
	v := uint64(tag)
	for i := uint32(1); i < b; i++ {
		v |= uint64(tag) << (i * l)
	}
	return v
}

// loadBucket reads a whole bucket as one word; swarOK guarantees buckets
// never straddle word boundaries.
func (f *Filter) loadBucket(bucket uint32) uint64 {
	bit := uint64(bucket) * uint64(f.bucketBits)
	if f.bucketBits == 64 {
		return f.words[bit>>6]
	}
	_, _, mask := f.swarConsts()
	return f.words[bit>>6] >> (bit & 63) & mask
}

// batchSWAR is the software-SIMD probe: phase 1 computes tags and both
// candidate bucket addresses for eight keys; phase 2 gathers the bucket
// words and tests all slots of both buckets branch-free.
func (f *Filter) batchSWAR(keys []core.Key, out []uint32, cnt int) int {
	lo, hi, _ := f.swarConsts()
	l, b := f.params.TagBits, f.params.BucketSize
	n := len(keys)
	i := 0
	var (
		bc     [batchUnroll]uint64 // broadcast tag
		a1, a2 [batchUnroll]uint32 // candidate buckets
	)
	for ; i+batchUnroll <= n; i += batchUnroll {
		for j := 0; j < batchUnroll; j++ {
			tag, i1 := f.tagAndIndex(keys[i+j])
			bc[j] = broadcast(tag, l, b)
			a1[j] = i1
			a2[j] = f.altIndex(i1, tag)
		}
		for j := 0; j < batchUnroll; j++ {
			x1 := f.loadBucket(a1[j]) ^ bc[j]
			x2 := f.loadBucket(a2[j]) ^ bc[j]
			// Zero-lane test on both buckets at once: a lane of x is zero
			// iff the tag matched that slot.
			z := (x1 - lo) & ^x1 & hi
			z |= (x2 - lo) & ^x2 & hi
			out[cnt] = uint32(i + j)
			var inc int
			if z != 0 {
				inc = 1
			}
			cnt += inc
		}
	}
	for ; i < n; i++ {
		out[cnt] = uint32(i)
		var inc int
		if f.Contains(keys[i]) {
			inc = 1
		}
		cnt += inc
	}
	return cnt
}
