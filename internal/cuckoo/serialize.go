package cuckoo

import (
	"encoding/binary"
	"fmt"

	"perfilter/internal/magic"
)

// Serialization mirrors package blocked's: a fixed little-endian header
// followed by the packed tag words, plus the victim slot so a parked tag
// survives the round trip with no false negatives.

// WireMagic is the first little-endian uint32 of every serialized cuckoo
// filter; the perfilter package dispatches decoders on it. The value is
// assigned centrally in internal/magic alongside every other format's.
const WireMagic = magic.WireCuckoo // "pfLC"

const (
	wireMagic   = WireMagic
	wireVersion = 1
	headerLen   = 4 + 1 + 1 + 4 + 4 + 4 + 8 + 4 + 4 + 1
)

// MarshalBinary serializes the filter.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, headerLen+len(f.words)*8)
	le := binary.LittleEndian
	le.PutUint32(out[0:], wireMagic)
	out[4] = wireVersion
	if f.params.Magic {
		out[5] = 1
	}
	le.PutUint32(out[6:], f.params.TagBits)
	le.PutUint32(out[10:], f.params.BucketSize)
	le.PutUint32(out[14:], f.numBuckets)
	le.PutUint64(out[18:], f.count)
	le.PutUint32(out[26:], f.victim)
	le.PutUint32(out[30:], f.victimIdx)
	if f.hasVictim {
		out[34] = 1
	}
	for i, w := range f.words {
		le.PutUint64(out[headerLen+i*8:], w)
	}
	return out, nil
}

// Unmarshal reconstructs a filter from MarshalBinary output.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("cuckoo: truncated header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != wireMagic {
		return nil, fmt.Errorf("cuckoo: bad magic")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("cuckoo: unsupported version %d", data[4])
	}
	p := Params{
		Magic:      data[5] == 1,
		TagBits:    le.Uint32(data[6:]),
		BucketSize: le.Uint32(data[10:]),
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	numBuckets := le.Uint32(data[14:])
	if numBuckets == 0 {
		return nil, fmt.Errorf("cuckoo: zero buckets")
	}
	// Reject sizes the input cannot possibly carry before allocating the
	// word array (see the equivalent guard in package blocked).
	if uint64(numBuckets)*uint64(p.TagBits)*uint64(p.BucketSize) > uint64(len(data))*8 {
		return nil, fmt.Errorf("cuckoo: %d buckets exceed the %d-byte encoding", numBuckets, len(data))
	}
	f, err := New(p, uint64(numBuckets)*uint64(p.TagBits)*uint64(p.BucketSize))
	if err != nil {
		return nil, err
	}
	if f.numBuckets != numBuckets {
		return nil, fmt.Errorf("cuckoo: bucket count mismatch (%d vs %d)",
			f.numBuckets, numBuckets)
	}
	if len(data) != headerLen+len(f.words)*8 {
		return nil, fmt.Errorf("cuckoo: body length %d, want %d",
			len(data)-headerLen, len(f.words)*8)
	}
	f.count = le.Uint64(data[18:])
	f.victim = le.Uint32(data[26:])
	f.victimIdx = le.Uint32(data[30:])
	f.hasVictim = data[34] == 1
	for i := range f.words {
		f.words[i] = le.Uint64(data[headerLen+i*8:])
	}
	return f, nil
}
