package cuckoo

import (
	"testing"
	"testing/quick"

	"perfilter/internal/rng"
)

func allParams() []Params {
	var ps []Params
	for _, useMagic := range []bool{false, true} {
		for _, l := range []uint32{4, 8, 12, 16, 32} {
			for _, b := range []uint32{1, 2, 4, 8} {
				ps = append(ps, Params{TagBits: l, BucketSize: b, Magic: useMagic})
			}
		}
	}
	return ps
}

// fill inserts distinct random keys until the target load factor or the
// first ErrFull (short-fingerprint configurations like l=4, b=1 saturate
// well below the theoretical limits), returning the successfully inserted
// keys. The no-false-negative guarantee only covers successful inserts.
func fill(t *testing.T, f *Filter, load float64, seed uint32) []uint32 {
	t.Helper()
	r := rng.NewMT19937(seed)
	target := uint64(load * float64(f.NumBuckets()) * float64(f.Params().BucketSize))
	keys := make([]uint32, 0, target)
	seen := make(map[uint32]bool, target)
	for uint64(len(keys)) < target {
		k := r.Uint32()
		if seen[k] {
			continue
		}
		seen[k] = true
		if err := f.Insert(k); err != nil {
			break
		}
		keys = append(keys, k)
	}
	return keys
}

// mustFill is fill with a hard assertion that the target load was reached.
func mustFill(t *testing.T, f *Filter, load float64, seed uint32) []uint32 {
	t.Helper()
	keys := fill(t, f, load, seed)
	if f.LoadFactor() < load-0.01 {
		t.Fatalf("reached load %.3f, wanted %.3f", f.LoadFactor(), load)
	}
	return keys
}

func TestNoFalseNegatives(t *testing.T) {
	for _, p := range allParams() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			// Stay at half the practical load limit so inserts can't fail.
			keys := fill(t, f, 0.45*float64(loadLimit(p.BucketSize)), 42)
			for _, k := range keys {
				if !f.Contains(k) {
					t.Fatalf("false negative for key %d", k)
				}
			}
		})
	}
}

func loadLimit(b uint32) float64 {
	switch b {
	case 1:
		return 0.50
	case 2:
		return 0.84
	case 4:
		return 0.95
	default:
		return 0.98
	}
}

func TestAchievesPaperLoadFactors(t *testing.T) {
	// §4: partial-key cuckoo hashing reaches ~50%, 84%, 95% occupancy for
	// b = 1, 2, 4. Verify we can fill to slightly below those limits.
	cases := []struct {
		b    uint32
		load float64
	}{
		{1, 0.47}, {2, 0.80}, {4, 0.92}, {8, 0.95},
	}
	for _, c := range cases {
		p := Params{TagBits: 12, BucketSize: c.b}
		f, err := New(p, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		keys := mustFill(t, f, c.load, 7)
		for _, k := range keys {
			if !f.Contains(k) {
				t.Fatalf("b=%d: false negative at high load", c.b)
			}
		}
	}
}

func TestAltIndexInvolution(t *testing.T) {
	// Partial-key cuckoo hashing requires altIndex to be an involution for
	// both addressing modes (Eq. 7 for pow2, Eq. 11 for magic).
	for _, p := range []Params{
		{TagBits: 16, BucketSize: 2, Magic: false},
		{TagBits: 16, BucketSize: 2, Magic: true},
		{TagBits: 8, BucketSize: 4, Magic: true},
	} {
		f, err := New(p, 999*32) // non-pow2 request exercises magic sizing
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewSplitMix64(13)
		for i := 0; i < 20000; i++ {
			bucket := r.Uint32n(f.NumBuckets())
			tag := r.Uint32n(1<<p.TagBits-1) + 1
			alt := f.altIndex(bucket, tag)
			if alt >= f.NumBuckets() {
				t.Fatalf("%s: alt index %d out of range %d", p, alt, f.NumBuckets())
			}
			if back := f.altIndex(alt, tag); back != bucket {
				t.Fatalf("%s: involution broken: %d -> %d -> %d (tag %d)",
					p, bucket, alt, back, tag)
			}
		}
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	for _, p := range allParams() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, 1<<15)
			if err != nil {
				t.Fatal(err)
			}
			fill(t, f, 0.4*loadLimit(p.BucketSize), 3)
			r := rng.NewMT19937(77)
			probe := make([]uint32, 999) // odd size exercises the tail
			for i := range probe {
				probe[i] = r.Uint32()
			}
			sel := f.ContainsBatch(probe, nil)
			j := 0
			for i, k := range probe {
				want := f.Contains(k)
				got := j < len(sel) && sel[j] == uint32(i)
				if got != want {
					t.Fatalf("position %d: batch=%v scalar=%v", i, got, want)
				}
				if got {
					j++
				}
			}
			if j != len(sel) {
				t.Fatalf("%d unexplained selection entries", len(sel)-j)
			}
		})
	}
}

func TestDeleteRestoresNegative(t *testing.T) {
	for _, p := range []Params{
		{TagBits: 16, BucketSize: 2},
		{TagBits: 12, BucketSize: 4, Magic: true},
		{TagBits: 8, BucketSize: 4},
	} {
		f, err := New(p, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		keys := mustFill(t, f, 0.3, 11)
		for _, k := range keys {
			if !f.Delete(k) {
				t.Fatalf("%s: delete of inserted key %d failed", p, k)
			}
		}
		if f.Count() != 0 {
			t.Fatalf("%s: count %d after deleting everything", p, f.Count())
		}
		// With all tags removed the filter must reject everything.
		r := rng.NewSplitMix64(5)
		for i := 0; i < 1000; i++ {
			if f.Contains(r.Uint32()) {
				t.Fatalf("%s: containment after full deletion", p)
			}
		}
	}
}

func TestDeleteAbsentReturnsFalse(t *testing.T) {
	f, _ := New(Params{TagBits: 16, BucketSize: 2}, 1<<14)
	if f.Delete(12345) {
		t.Fatal("delete on empty filter returned true")
	}
	if err := f.Insert(1); err != nil {
		t.Fatal(err)
	}
	if !f.Delete(1) || f.Delete(1) {
		t.Fatal("double delete misbehaved")
	}
}

func TestBagSemantics(t *testing.T) {
	// The paper highlights that cuckoo filters support duplicates: insert
	// the same key several times, delete it the same number of times.
	f, _ := New(Params{TagBits: 16, BucketSize: 4}, 1<<14)
	const dups = 4
	for i := 0; i < dups; i++ {
		if err := f.Insert(42); err != nil {
			t.Fatalf("duplicate insert %d: %v", i, err)
		}
	}
	for i := 0; i < dups; i++ {
		if !f.Contains(42) {
			t.Fatalf("lost key after %d deletes", i)
		}
		if !f.Delete(42) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if f.Contains(42) && f.Count() != 0 {
		t.Fatal("key still present after deleting all duplicates")
	}
}

func TestVictimPath(t *testing.T) {
	// Overfill a tiny filter until an insert parks a victim; the victim's
	// key must still be found, and batch must agree with scalar.
	p := Params{TagBits: 8, BucketSize: 1}
	f, err := New(p, 64*8) // 64 single-slot buckets
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(1)
	var inserted []uint32
	sawVictim := false
	for i := 0; i < 10000; i++ {
		k := r.Uint32()
		if err := f.Insert(k); err != nil {
			break
		}
		inserted = append(inserted, k)
		if f.hasVictim {
			sawVictim = true
			break
		}
	}
	if !sawVictim {
		t.Skip("victim slot never engaged at this size/seed")
	}
	for _, k := range inserted {
		if !f.Contains(k) {
			t.Fatalf("false negative with victim engaged (key %d)", k)
		}
	}
	sel := f.ContainsBatch(inserted, nil)
	if len(sel) != len(inserted) {
		t.Fatalf("batch with victim: %d/%d found", len(sel), len(inserted))
	}
}

func TestInsertEventuallyFull(t *testing.T) {
	p := Params{TagBits: 4, BucketSize: 1}
	f, _ := New(p, 32*4)
	r := rng.NewMT19937(2)
	var err error
	for i := 0; i < 100000; i++ {
		if err = f.Insert(r.Uint32()); err != nil {
			break
		}
	}
	if err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
}

func TestMeasuredFPRMatchesModel(t *testing.T) {
	cases := []Params{
		{TagBits: 8, BucketSize: 4},
		{TagBits: 12, BucketSize: 4, Magic: true},
		{TagBits: 16, BucketSize: 2},
		{TagBits: 16, BucketSize: 2, Magic: true},
	}
	const n = 1 << 14
	for _, p := range cases {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			f, err := New(p, p.SizeForKeys(n))
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewMT19937(55)
			inserted := make(map[uint32]bool, n)
			for len(inserted) < n {
				k := r.Uint32()
				if inserted[k] {
					continue
				}
				if err := f.Insert(k); err != nil {
					t.Fatalf("insert: %v", err)
				}
				inserted[k] = true
			}
			model := f.FPR(n)
			probes := 1 << 18
			fp, tested := 0, 0
			for tested < probes {
				k := r.Uint32()
				if inserted[k] {
					continue
				}
				tested++
				if f.Contains(k) {
					fp++
				}
			}
			measured := float64(fp) / float64(probes)
			slack := 3.5 * sqrtf(model/float64(probes)) // ~3σ binomial
			if measured > model*1.35+slack+1e-4 || measured < model*0.65-slack-1e-4 {
				t.Fatalf("measured %.6f vs model %.6f", measured, model)
			}
		})
	}
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for tolerance math.
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

func TestSizeAccounting(t *testing.T) {
	p := Params{TagBits: 12, BucketSize: 4, Magic: true}
	f, _ := New(p, 100000)
	if f.SizeBits() != uint64(f.NumBuckets())*48 {
		t.Fatal("SizeBits != buckets · b · l")
	}
	if f.SizeBits() < 100000 || float64(f.SizeBits()) > 100000*1.01 {
		t.Fatalf("size %d far from request", f.SizeBits())
	}
	// pow2 mode rounds buckets to a power of two.
	f2, _ := New(Params{TagBits: 16, BucketSize: 2}, 1000*32)
	nb := f2.NumBuckets()
	if nb&(nb-1) != 0 {
		t.Fatalf("pow2 bucket count %d not a power of two", nb)
	}
}

func TestSizeForKeys(t *testing.T) {
	for _, b := range []uint32{1, 2, 4, 8} {
		p := Params{TagBits: 16, BucketSize: b}
		m := p.SizeForKeys(10000)
		f, err := New(p, m)
		if err != nil {
			t.Fatal(err)
		}
		mustFill(t, f, float64(10000)/(float64(f.NumBuckets())*float64(b))*0.99, 9)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{TagBits: 0, BucketSize: 2},
		{TagBits: 5, BucketSize: 2},
		{TagBits: 20, BucketSize: 2},
		{TagBits: 16, BucketSize: 0},
		{TagBits: 16, BucketSize: 3},
		{TagBits: 16, BucketSize: 16},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
		if _, err := New(p, 1024); err == nil {
			t.Fatalf("case %d: New accepted invalid params", i)
		}
	}
	if _, err := New(Params{TagBits: 16, BucketSize: 2}, 0); err == nil {
		t.Fatal("New accepted zero size")
	}
}

func TestReset(t *testing.T) {
	f, _ := New(Params{TagBits: 16, BucketSize: 2}, 1<<14)
	fill(t, f, 0.3, 21)
	f.Reset()
	if f.Count() != 0 || f.LoadFactor() != 0 {
		t.Fatal("Reset left state behind")
	}
	r := rng.NewSplitMix64(1)
	for i := 0; i < 500; i++ {
		if f.Contains(r.Uint32()) {
			t.Fatal("containment after Reset")
		}
	}
}

func TestQuickInsertContains(t *testing.T) {
	f, _ := New(Params{TagBits: 16, BucketSize: 4, Magic: true}, 1<<17)
	if err := quick.Check(func(key uint32) bool {
		if err := f.Insert(key); err != nil {
			return true // full is acceptable; containment only promised on success
		}
		return f.Contains(key)
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeleteInverse(t *testing.T) {
	f, _ := New(Params{TagBits: 16, BucketSize: 4}, 1<<16)
	if err := quick.Check(func(key uint32) bool {
		if err := f.Insert(key); err != nil {
			return true
		}
		return f.Delete(key)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedTagStorageRoundTrip(t *testing.T) {
	// Direct get/set round-trips across straddling offsets (l=12 straddles
	// 64-bit word boundaries every few slots).
	for _, l := range []uint32{4, 8, 12, 16, 32} {
		p := Params{TagBits: l, BucketSize: 4}
		f, _ := New(p, 1<<12)
		r := rng.NewSplitMix64(uint64(l))
		type slotRef struct{ b, s, tag uint32 }
		var written []slotRef
		for i := 0; i < 200; i++ {
			b := r.Uint32n(f.NumBuckets())
			s := r.Uint32n(p.BucketSize)
			tag := r.Uint32() & f.tagMask
			f.setTag(b, s, tag)
			written = append(written, slotRef{b, s, tag})
		}
		// Later writes may overwrite earlier ones; verify the final state.
		final := map[[2]uint32]uint32{}
		for _, w := range written {
			final[[2]uint32{w.b, w.s}] = w.tag
		}
		for ref, tag := range final {
			if got := f.getTag(ref[0], ref[1]); got != tag {
				t.Fatalf("l=%d: slot (%d,%d) = %d, want %d", l, ref[0], ref[1], got, tag)
			}
		}
	}
}

func TestStringAndAccessors(t *testing.T) {
	p := Params{TagBits: 16, BucketSize: 2, Magic: true}
	if p.String() != "cuckoo[l=16,b=2,magic]" {
		t.Fatalf("String() = %q", p.String())
	}
	f, _ := New(p, 1<<14)
	if f.Params() != p {
		t.Fatal("Params accessor mismatch")
	}
	if f.FPR(100) != p.FPR(f.SizeBits(), 100) {
		t.Fatal("FPR accessor mismatch")
	}
}

// TestResetMatchesFresh pins the Reset contract: after Reset, the filter
// must be byte-for-byte equivalent to a freshly constructed one under the
// same insert sequence. The regression this guards: Reset used to keep
// the kick RNG's advanced state, so post-Reset inserts made different
// eviction choices than a fresh filter and the tables diverged — breaking
// Reset-vs-Rotate(nil) equivalence in the sharded wrapper.
func TestResetMatchesFresh(t *testing.T) {
	p := Params{TagBits: 8, BucketSize: 4, Magic: true}
	const mBits = 1 << 14
	f, err := New(p, mBits)
	if err != nil {
		t.Fatal(err)
	}
	// Fill to 90% load so the kick loop (and its RNG) runs plenty, then
	// reset and replay a fixed insert sequence.
	mustFill(t, f, 0.90, 31)
	f.Reset()
	if f.Count() != 0 || f.LoadFactor() != 0 {
		t.Fatalf("Reset left count=%d load=%v", f.Count(), f.LoadFactor())
	}

	fresh, err := New(p, mBits)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(77)
	for {
		k := r.Uint32()
		errReset := f.Insert(k)
		errFresh := fresh.Insert(k)
		if (errReset == nil) != (errFresh == nil) {
			t.Fatalf("insert divergence: reset filter err=%v, fresh err=%v", errReset, errFresh)
		}
		if errReset != nil || f.LoadFactor() > 0.90 {
			break
		}
	}
	a, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("serialized sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reset filter diverges from fresh at byte %d (kick RNG not reseeded?)", i)
		}
	}
}

func BenchmarkContainsBatch(b *testing.B) {
	for _, p := range []Params{
		{TagBits: 16, BucketSize: 2},
		{TagBits: 16, BucketSize: 2, Magic: true},
		{TagBits: 8, BucketSize: 4},
		{TagBits: 12, BucketSize: 4}, // non-SWAR path
	} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			f, _ := New(p, 1<<17)
			r := rng.NewMT19937(1)
			for i := 0; i < 1<<12; i++ {
				if err := f.Insert(r.Uint32()); err != nil {
					b.Fatal(err)
				}
			}
			probe := make([]uint32, 1024)
			for i := range probe {
				probe[i] = r.Uint32()
			}
			sel := make([]uint32, 0, 1024)
			b.SetBytes(int64(len(probe) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel = f.ContainsBatch(probe, sel[:0])
			}
		})
	}
}
