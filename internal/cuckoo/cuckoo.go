// Package cuckoo implements the Cuckoo filter of Fan et al. (§4 of the
// paper): a cuckoo hash table of l-bit key signatures ("tags") with b slots
// per bucket and partial-key cuckoo hashing for relocation.
//
// Two addressing modes are provided. With power-of-two bucket counts the
// alternate bucket is the classic XOR form (Eq. 6/7):
//
//	i2 = i1 ⊕ hash(sig)
//
// With magic-modulo bucket counts XOR is no longer self-inverse, so the
// filter uses the paper's replacement (Eq. 11), the negated-sum form
//
//	i2 = −(i1 + hash(sig)) mod C
//
// which is self-inverse for any C (TestAltIndexInvolution verifies it).
//
// Tags are stored packed at their exact bit width, so SizeBits reflects the
// true m = C·b·l the paper's space accounting uses. Batch lookups use
// branch-free SWAR bucket comparisons when a bucket fits in a 64-bit word,
// mirroring the paper's SIMD bucket probes. Like the reference
// implementation, a single victim slot holds the last evicted tag when an
// insert fails to place after the kick limit, keeping the no-false-negative
// guarantee; the filter reports ErrFull only when the victim slot is
// occupied too.
//
// Filters are safe for concurrent readers; writes need external
// synchronization.
package cuckoo

import (
	"errors"
	"fmt"
	"math/bits"

	"perfilter/internal/core"
	"perfilter/internal/fpr"
	"perfilter/internal/hashing"
	"perfilter/internal/magic"
	"perfilter/internal/mem"
	"perfilter/internal/rng"
)

// ErrFull is returned by Insert when a tag cannot be placed and the victim
// slot is already occupied. The filter remains queryable for everything
// previously inserted.
var ErrFull = errors.New("cuckoo: filter is full")

// MaxKicks bounds the relocation chain per insert, as in the reference
// implementation.
const MaxKicks = 500

// Params describes a cuckoo filter configuration.
type Params struct {
	// TagBits is the signature length l in bits: 4, 8, 12, 16 or 32.
	TagBits uint32
	// BucketSize is the number of slots b per bucket: 1, 2, 4 or 8.
	BucketSize uint32
	// Magic selects magic-modulo bucket addressing; false selects
	// power-of-two addressing.
	Magic bool
}

// Validate checks the configuration against the space the paper explores.
func (p Params) Validate() error {
	switch p.TagBits {
	case 4, 8, 12, 16, 32:
	default:
		return fmt.Errorf("cuckoo: tag bits %d not in {4,8,12,16,32}", p.TagBits)
	}
	switch p.BucketSize {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("cuckoo: bucket size %d not in {1,2,4,8}", p.BucketSize)
	}
	return nil
}

// String renders the configuration in the paper's notation.
func (p Params) String() string {
	mod := "pow2"
	if p.Magic {
		mod = "magic"
	}
	return fmt.Sprintf("cuckoo[l=%d,b=%d,%s]", p.TagBits, p.BucketSize, mod)
}

// FPR evaluates Eq. 8 for a filter of mBits total size holding n keys.
func (p Params) FPR(mBits, n uint64) float64 {
	return fpr.CuckooFromSize(float64(mBits), float64(n), p.TagBits, p.BucketSize)
}

// SizeForKeys returns a filter size in bits that accommodates n keys within
// the practical load limit for the bucket size (§4: ~50%, 84%, 95%, 98% for
// b = 1, 2, 4, 8).
func (p Params) SizeForKeys(n uint64) uint64 {
	maxLoad := fpr.CuckooMaxLoad(p.BucketSize)
	slots := uint64(float64(n)/maxLoad) + 1
	buckets := (slots + uint64(p.BucketSize) - 1) / uint64(p.BucketSize)
	return buckets * uint64(p.BucketSize) * uint64(p.TagBits)
}

// Filter is a cuckoo filter. Construct with New.
type Filter struct {
	params     Params
	words      []uint64 // packed tags, bucket-major
	numBuckets uint32
	bucketMask uint32        // pow2 addressing
	dv         magic.Divider // magic addressing

	tagMask    uint32
	bucketBits uint32 // b·l
	count      uint64 // currently stored tags (including victim)

	victim    uint32 // evicted tag waiting for a slot
	victimIdx uint32 // one of its candidate buckets
	hasVictim bool

	kickRNG rng.SplitMix64
}

// New builds a filter of the requested size in bits, rounded up to whole
// buckets and then to the addressing granularity (next power of two or next
// class-(ii) magic divisor).
func New(p Params, mBits uint64) (*Filter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mBits == 0 {
		return nil, fmt.Errorf("cuckoo: size must be positive")
	}
	f := &Filter{params: p}
	f.tagMask = uint32(1)<<p.TagBits - 1
	if p.TagBits == 32 {
		f.tagMask = 0xFFFFFFFF
	}
	f.bucketBits = p.TagBits * p.BucketSize
	buckets := (mBits + uint64(f.bucketBits) - 1) / uint64(f.bucketBits)
	if buckets == 0 {
		buckets = 1
	}
	if p.Magic {
		if buckets > 0xFFFFFFFF {
			return nil, fmt.Errorf("cuckoo: %d buckets exceed 2^32", buckets)
		}
		f.dv = magic.Next(uint32(buckets))
		f.numBuckets = f.dv.D()
	} else {
		pow := nextPow2u64(buckets)
		if pow >= 1<<32 {
			return nil, fmt.Errorf("cuckoo: %d buckets exceed addressing range", pow)
		}
		f.numBuckets = uint32(pow)
		f.bucketMask = uint32(pow) - 1
	}
	totalBits := uint64(f.numBuckets) * uint64(f.bucketBits)
	f.words = mem.Aligned[uint64](int((totalBits+63)/64 + 1)) // +1: straddle-free tail reads
	f.kickRNG = *rng.NewSplitMix64(kickSeed)
	return f, nil
}

// kickSeed seeds the kick-loop RNG; New and Reset must use the same seed
// so a reset filter is byte-for-byte equivalent to a fresh one under
// identical inserts.
const kickSeed = 0x6B756B6F6F6B6375

// tagAndIndex hashes a key into its signature and primary bucket index.
// The signature is drawn from hash bits after the index so the two are
// independent; a zero signature (reserved for empty slots) is remapped to 1,
// as in the reference implementation.
func (f *Filter) tagAndIndex(key core.Key) (tag, i1 uint32) {
	sink := hashing.NewSink(key)
	h := sink.Next(32)
	tag = sink.Next(f.params.TagBits) & f.tagMask
	if tag == 0 {
		tag = 1
	}
	if f.params.Magic {
		i1 = f.dv.Mod(h)
	} else {
		i1 = h & f.bucketMask
	}
	return tag, i1
}

// altIndex returns the other candidate bucket for a tag (Eq. 7 / Eq. 11).
// It is an involution: altIndex(altIndex(i, tag), tag) == i.
func (f *Filter) altIndex(i, tag uint32) uint32 {
	h := hashing.TagHash(tag)
	if !f.params.Magic {
		return (i ^ h) & f.bucketMask
	}
	hm := f.dv.Mod(h)
	y := i + hm
	if y >= f.numBuckets {
		y -= f.numBuckets
	}
	if y == 0 {
		return 0
	}
	return f.numBuckets - y
}

// slotBit returns the starting bit offset of a bucket slot.
func (f *Filter) slotBit(bucket, slot uint32) uint64 {
	return uint64(bucket)*uint64(f.bucketBits) + uint64(slot)*uint64(f.params.TagBits)
}

// getTag reads the tag stored in (bucket, slot); 0 means empty.
func (f *Filter) getTag(bucket, slot uint32) uint32 {
	bit := f.slotBit(bucket, slot)
	w, off := bit>>6, bit&63
	v := f.words[w] >> off
	if off+uint64(f.params.TagBits) > 64 {
		v |= f.words[w+1] << (64 - off)
	}
	return uint32(v) & f.tagMask
}

// setTag stores a tag into (bucket, slot).
func (f *Filter) setTag(bucket, slot, tag uint32) {
	bit := f.slotBit(bucket, slot)
	w, off := bit>>6, bit&63
	mask := uint64(f.tagMask) << off
	f.words[w] = f.words[w]&^mask | uint64(tag)<<off
	if off+uint64(f.params.TagBits) > 64 {
		rem := 64 - off
		mask2 := uint64(f.tagMask) >> rem
		f.words[w+1] = f.words[w+1]&^mask2 | uint64(tag)>>rem
	}
}

// insertIntoBucket places the tag in the first empty slot, reporting success.
func (f *Filter) insertIntoBucket(bucket, tag uint32) bool {
	for s := uint32(0); s < f.params.BucketSize; s++ {
		if f.getTag(bucket, s) == 0 {
			f.setTag(bucket, s, tag)
			return true
		}
	}
	return false
}

// Insert adds a key. Duplicate keys may be inserted (bag semantics) as long
// as slots are available. Returns ErrFull when the tag cannot be placed and
// the victim slot is occupied; the filter still answers Contains correctly
// for every successfully inserted key.
func (f *Filter) Insert(key core.Key) error {
	tag, i1 := f.tagAndIndex(key)
	if f.insertIntoBucket(i1, tag) {
		f.count++
		return nil
	}
	i2 := f.altIndex(i1, tag)
	if f.insertIntoBucket(i2, tag) {
		f.count++
		return nil
	}
	// The kick loop displaces existing tags; if its end state (a homeless
	// tag) has nowhere to go it must be parked in the victim slot. With the
	// victim slot already occupied, refuse *before* mutating the table so no
	// inserted key is ever lost (the reference implementation does the same).
	if f.hasVictim {
		return ErrFull
	}
	// Kick loop: evict a random occupant and chase it to its alternate
	// bucket, up to MaxKicks relocations.
	cur := i1
	if f.kickRNG.Uint32n(2) == 1 {
		cur = i2
	}
	for kick := 0; kick < MaxKicks; kick++ {
		slot := f.kickRNG.Uint32n(f.params.BucketSize)
		evicted := f.getTag(cur, slot)
		f.setTag(cur, slot, tag)
		tag = evicted
		cur = f.altIndex(cur, tag)
		if f.insertIntoBucket(cur, tag) {
			f.count++
			return nil
		}
	}
	f.victim, f.victimIdx, f.hasVictim = tag, cur, true
	f.count++
	return nil
}

// Contains reports whether key may be in the set (no false negatives for
// successfully inserted keys).
func (f *Filter) Contains(key core.Key) bool {
	tag, i1 := f.tagAndIndex(key)
	if f.bucketHasTag(i1, tag) {
		return true
	}
	i2 := f.altIndex(i1, tag)
	if f.bucketHasTag(i2, tag) {
		return true
	}
	if f.hasVictim && f.victim == tag {
		// The victim belongs to a specific bucket pair; match it.
		if f.victimIdx == i1 || f.victimIdx == i2 {
			return true
		}
	}
	return false
}

// bucketHasTag scans one bucket for the tag (scalar slot walk; the batch
// kernels use SWAR instead).
func (f *Filter) bucketHasTag(bucket, tag uint32) bool {
	for s := uint32(0); s < f.params.BucketSize; s++ {
		if f.getTag(bucket, s) == tag {
			return true
		}
	}
	return false
}

// Delete removes one occurrence of key's signature from its bucket pair,
// returning whether anything was removed. Deleting a key that was never
// inserted can (rarely) remove a colliding key's tag — the documented
// cuckoo-filter caveat; callers must only delete keys they inserted.
func (f *Filter) Delete(key core.Key) bool {
	tag, i1 := f.tagAndIndex(key)
	i2 := f.altIndex(i1, tag)
	for _, b := range [2]uint32{i1, i2} {
		for s := uint32(0); s < f.params.BucketSize; s++ {
			if f.getTag(b, s) == tag {
				f.setTag(b, s, 0)
				f.count--
				f.reinsertVictim()
				return true
			}
		}
	}
	if f.hasVictim && f.victim == tag && (f.victimIdx == i1 || f.victimIdx == i2) {
		f.hasVictim = false
		f.count--
		return true
	}
	return false
}

// reinsertVictim tries to place a parked victim after a deletion freed a
// slot, as the reference implementation does.
func (f *Filter) reinsertVictim() {
	if !f.hasVictim {
		return
	}
	tag, idx := f.victim, f.victimIdx
	if f.insertIntoBucket(idx, tag) || f.insertIntoBucket(f.altIndex(idx, tag), tag) {
		f.hasVictim = false
	}
}

// SizeBits returns the actual filter size in bits (C·b·l).
func (f *Filter) SizeBits() uint64 {
	return uint64(f.numBuckets) * uint64(f.bucketBits)
}

// NumBuckets returns the bucket count C.
func (f *Filter) NumBuckets() uint32 { return f.numBuckets }

// Count returns the number of stored tags.
func (f *Filter) Count() uint64 { return f.count }

// LoadFactor returns count / (C·b).
func (f *Filter) LoadFactor() float64 {
	return float64(f.count) / (float64(f.numBuckets) * float64(f.params.BucketSize))
}

// Params returns the configuration.
func (f *Filter) Params() Params { return f.params }

// FPR returns the analytic false-positive rate (Eq. 8) with n keys stored.
func (f *Filter) FPR(n uint64) float64 { return f.params.FPR(f.SizeBits(), n) }

// StorageAligned reports whether the tag array starts on a cache-line
// boundary (always true for filters from New).
func (f *Filter) StorageAligned() bool { return mem.IsAligned(f.words) }

// Reset clears the filter, including the kick-loop RNG state, so the
// reset filter behaves identically to a freshly constructed one: the same
// insert sequence yields the same table bytes (and the same eviction
// choices) either way.
func (f *Filter) Reset() {
	clear(f.words)
	f.count = 0
	f.hasVictim = false
	f.kickRNG = *rng.NewSplitMix64(kickSeed)
}

func nextPow2u64(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(x-1))
}
