package scalable

import (
	"testing"

	"perfilter/internal/rng"
)

func TestNoFalseNegativesAcrossGrowth(t *testing.T) {
	f, err := New(DefaultOptions(1000, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(1)
	keys := make([]uint32, 20000) // forces several growth steps
	for i := range keys {
		keys[i] = r.Uint32()
		if err := f.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stages() < 3 {
		t.Fatalf("expected growth, got %d stages", f.Stages())
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if f.Count() != 20000 {
		t.Fatalf("Count=%d", f.Count())
	}
}

func TestCompoundFPRBelowTarget(t *testing.T) {
	const target = 0.01
	f, err := New(DefaultOptions(2000, target))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(2)
	inserted := map[uint32]bool{}
	for len(inserted) < 30000 {
		k := r.Uint32()
		if !inserted[k] {
			inserted[k] = true
			if err := f.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Analytic compound FPR stays below target even after 4+ doublings.
	if got := f.FPR(0); got > target {
		t.Fatalf("compound model FPR %.5f exceeds target %.5f", got, target)
	}
	// Measured FPR within model + sampling tolerance.
	fp, tested := 0, 0
	for tested < 1<<17 {
		k := r.Uint32()
		if inserted[k] {
			continue
		}
		tested++
		if f.Contains(k) {
			fp++
		}
	}
	measured := float64(fp) / float64(tested)
	if measured > target*1.3+0.002 {
		t.Fatalf("measured FPR %.5f vs target %.5f", measured, target)
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	f, _ := New(DefaultOptions(500, 0.02))
	r := rng.NewMT19937(3)
	for i := 0; i < 3000; i++ {
		f.Insert(r.Uint32())
	}
	probe := make([]uint32, 999)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	sel := f.ContainsBatch(probe, nil)
	j := 0
	for i, k := range probe {
		want := f.Contains(k)
		got := j < len(sel) && sel[j] == uint32(i)
		if got != want {
			t.Fatalf("pos %d mismatch", i)
		}
		if got {
			j++
		}
	}
}

func TestStageBudgetsTighten(t *testing.T) {
	f, _ := New(DefaultOptions(100, 0.01))
	r := rng.NewMT19937(4)
	for i := 0; i < 2000; i++ {
		f.Insert(r.Uint32())
	}
	for i := 1; i < len(f.stages); i++ {
		if f.stages[i].fprGoal >= f.stages[i-1].fprGoal {
			t.Fatal("stage budgets must tighten geometrically")
		}
		if f.stages[i].capacity <= f.stages[i-1].capacity {
			t.Fatal("stage capacities must grow")
		}
	}
}

func TestSizeGrowsSublinearlyInStages(t *testing.T) {
	f, _ := New(DefaultOptions(1000, 0.01))
	r := rng.NewMT19937(5)
	size0 := f.SizeBits()
	for i := 0; i < 10000; i++ {
		f.Insert(r.Uint32())
	}
	if f.SizeBits() <= size0 {
		t.Fatal("size did not grow")
	}
	// Bits per key stays bounded: tightening adds ~constant bpk per stage.
	bpk := float64(f.SizeBits()) / float64(f.Count())
	if bpk > 64 {
		t.Fatalf("bits per key exploded: %.1f", bpk)
	}
}

func TestValidation(t *testing.T) {
	bad := []Options{
		{InitialCapacity: 0, TargetFPR: 0.01},
		{InitialCapacity: 10, TargetFPR: 0},
		{InitialCapacity: 10, TargetFPR: 1.5},
		{InitialCapacity: 10, TargetFPR: 0.01, GrowthFactor: 1.0},
		{InitialCapacity: 10, TargetFPR: 0.01, GrowthFactor: 2, TighteningRatio: 1.5},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReset(t *testing.T) {
	f, _ := New(DefaultOptions(100, 0.01))
	r := rng.NewMT19937(6)
	for i := 0; i < 1000; i++ {
		f.Insert(r.Uint32())
	}
	f.Reset()
	if f.Stages() != 1 || f.Count() != 0 {
		t.Fatal("reset incomplete")
	}
	if f.Contains(123) {
		t.Fatal("containment after reset")
	}
}
