package scalable

import (
	"testing"

	"perfilter/internal/rng"
)

func TestNoFalseNegativesAcrossGrowth(t *testing.T) {
	f, err := New(DefaultOptions(1000, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(1)
	keys := make([]uint32, 20000) // forces several growth steps
	for i := range keys {
		keys[i] = r.Uint32()
		if err := f.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stages() < 3 {
		t.Fatalf("expected growth, got %d stages", f.Stages())
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if f.Count() != 20000 {
		t.Fatalf("Count=%d", f.Count())
	}
}

func TestCompoundFPRBelowTarget(t *testing.T) {
	const target = 0.01
	f, err := New(DefaultOptions(2000, target))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(2)
	inserted := map[uint32]bool{}
	for len(inserted) < 30000 {
		k := r.Uint32()
		if !inserted[k] {
			inserted[k] = true
			if err := f.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Analytic compound FPR stays below target even after 4+ doublings.
	if got := f.FPR(0); got > target {
		t.Fatalf("compound model FPR %.5f exceeds target %.5f", got, target)
	}
	// Measured FPR within model + sampling tolerance.
	fp, tested := 0, 0
	for tested < 1<<17 {
		k := r.Uint32()
		if inserted[k] {
			continue
		}
		tested++
		if f.Contains(k) {
			fp++
		}
	}
	measured := float64(fp) / float64(tested)
	if measured > target*1.3+0.002 {
		t.Fatalf("measured FPR %.5f vs target %.5f", measured, target)
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	f, _ := New(DefaultOptions(500, 0.02))
	r := rng.NewMT19937(3)
	for i := 0; i < 3000; i++ {
		f.Insert(r.Uint32())
	}
	probe := make([]uint32, 999)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	sel := f.ContainsBatch(probe, nil)
	j := 0
	for i, k := range probe {
		want := f.Contains(k)
		got := j < len(sel) && sel[j] == uint32(i)
		if got != want {
			t.Fatalf("pos %d mismatch", i)
		}
		if got {
			j++
		}
	}
}

// TestBatchMatchesScalarManyStages is the parity test for the staged
// batch path: a filter grown through many stages, probed with a mix of
// members (leaving the pipeline at different stages) and non-members,
// must produce exactly the selection vector of the per-key scalar loop.
func TestBatchMatchesScalarManyStages(t *testing.T) {
	f, err := New(DefaultOptions(300, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(7)
	inserted := make([]uint32, 12000)
	for i := range inserted {
		inserted[i] = r.Uint32()
		if err := f.Insert(inserted[i]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stages() < 5 {
		t.Fatalf("expected ≥5 stages, got %d", f.Stages())
	}
	for trial := 0; trial < 8; trial++ {
		probe := make([]uint32, 2048)
		for i := range probe {
			switch i % 3 {
			case 0: // old member (early stage)
				probe[i] = inserted[int(r.Uint32())%4000]
			case 1: // recent member (late stage)
				probe[i] = inserted[8000+int(r.Uint32())%4000]
			default: // likely non-member
				probe[i] = r.Uint32()
			}
		}
		// Re-use a previously returned selection to exercise the append
		// contract too.
		sel := f.ContainsBatch(probe, nil)
		var want []uint32
		for i, k := range probe {
			if f.Contains(k) {
				want = append(want, uint32(i))
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("trial %d: %d selected, want %d", trial, len(sel), len(want))
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("trial %d: sel[%d] = %d, want %d", trial, i, sel[i], want[i])
			}
		}
	}
}

// benchFilter builds a multi-stage filter plus a mixed probe batch shared
// by the before/after ContainsBatch benchmarks.
func benchFilter(b *testing.B) (*Filter, []uint32) {
	f, err := New(DefaultOptions(4096, 0.01))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewMT19937(8)
	inserted := make([]uint32, 1<<16)
	for i := range inserted {
		inserted[i] = r.Uint32()
		f.Insert(inserted[i])
	}
	probe := make([]uint32, 1024)
	for i := range probe {
		if i%4 == 0 {
			probe[i] = inserted[int(r.Uint32())%len(inserted)]
		} else {
			probe[i] = r.Uint32()
		}
	}
	return f, probe
}

// BenchmarkContainsBatchStaged measures the stage-batched candidate-list
// path against BenchmarkContainsBatchScalarRef (the pre-rewrite per-key
// behaviour). Note the caveat that applies to every batch kernel in this
// repository (DESIGN/EXPERIMENTS): the pure-Go "software SIMD" kernels
// compress the paper's SIMD speedups, so on hosts without real gather the
// two paths measure close to parity — the batched path pays off on
// AVX2/AVX-512-class hardware, and structurally it replaces one interface
// dispatch per key per stage with one per stage per batch.
func BenchmarkContainsBatchStaged(b *testing.B) {
	f, probe := benchFilter(b)
	b.Logf("stages=%d", f.Stages())
	sel := make([]uint32, 0, len(probe))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = f.ContainsBatch(probe, sel[:0])
	}
}

// BenchmarkContainsBatchScalarRef measures the pre-rewrite behaviour (one
// scalar Contains per key across all stages) for comparison.
func BenchmarkContainsBatchScalarRef(b *testing.B) {
	f, probe := benchFilter(b)
	sel := make([]uint32, 0, len(probe))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = sel[:0]
		for j, k := range probe {
			if f.Contains(k) {
				sel = append(sel, uint32(j))
			}
		}
	}
}

func TestStageBudgetsTighten(t *testing.T) {
	f, _ := New(DefaultOptions(100, 0.01))
	r := rng.NewMT19937(4)
	for i := 0; i < 2000; i++ {
		f.Insert(r.Uint32())
	}
	for i := 1; i < len(f.stages); i++ {
		if f.stages[i].fprGoal >= f.stages[i-1].fprGoal {
			t.Fatal("stage budgets must tighten geometrically")
		}
		if f.stages[i].capacity <= f.stages[i-1].capacity {
			t.Fatal("stage capacities must grow")
		}
	}
}

func TestSizeGrowsSublinearlyInStages(t *testing.T) {
	f, _ := New(DefaultOptions(1000, 0.01))
	r := rng.NewMT19937(5)
	size0 := f.SizeBits()
	for i := 0; i < 10000; i++ {
		f.Insert(r.Uint32())
	}
	if f.SizeBits() <= size0 {
		t.Fatal("size did not grow")
	}
	// Bits per key stays bounded: tightening adds ~constant bpk per stage.
	bpk := float64(f.SizeBits()) / float64(f.Count())
	if bpk > 64 {
		t.Fatalf("bits per key exploded: %.1f", bpk)
	}
}

func TestValidation(t *testing.T) {
	bad := []Options{
		{InitialCapacity: 0, TargetFPR: 0.01},
		{InitialCapacity: 10, TargetFPR: 0},
		{InitialCapacity: 10, TargetFPR: 1.5},
		{InitialCapacity: 10, TargetFPR: 0.01, GrowthFactor: 1.0},
		{InitialCapacity: 10, TargetFPR: 0.01, GrowthFactor: 2, TighteningRatio: 1.5},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReset(t *testing.T) {
	f, _ := New(DefaultOptions(100, 0.01))
	r := rng.NewMT19937(6)
	for i := 0; i < 1000; i++ {
		f.Insert(r.Uint32())
	}
	f.Reset()
	if f.Stages() != 1 || f.Count() != 0 {
		t.Fatal("reset incomplete")
	}
	if f.Contains(123) {
		t.Fatal("containment after reset")
	}
}
