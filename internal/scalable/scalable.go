// Package scalable implements a scalable Bloom filter (the growth scheme
// of Almeida et al., cited as [3] in the paper's related work): when the
// build-side cardinality n is unknown, the filter starts small and appends
// a new, larger stage whenever the current stage reaches its design load.
// Each stage's false-positive budget shrinks geometrically, so the
// compound FPR stays below a configured ceiling no matter how far the
// filter grows; the price is that lookups must consult every stage — the
// "more expensive membership tests" trade-off the paper points out.
//
// Stages are cache-sectorized blocked Bloom filters (the paper's
// best-performing general-purpose variant), so each stage lookup stays a
// single cache line.
package scalable

import (
	"fmt"
	"math"
	"sync"

	"perfilter/internal/blocked"
	"perfilter/internal/core"
	"perfilter/internal/fpr"
	"perfilter/internal/simd"
)

// Options configures a scalable filter.
type Options struct {
	// InitialCapacity is the key capacity of the first stage.
	InitialCapacity uint64
	// TargetFPR is the compound false-positive ceiling (the sum of the
	// stage budgets converges below this).
	TargetFPR float64
	// GrowthFactor scales each new stage's capacity (default 2).
	GrowthFactor float64
	// TighteningRatio scales each new stage's FPR budget (default 0.5).
	TighteningRatio float64
}

// DefaultOptions returns the customary parameters (×2 growth, ×0.5
// tightening).
func DefaultOptions(capacity uint64, targetFPR float64) Options {
	return Options{
		InitialCapacity: capacity,
		TargetFPR:       targetFPR,
		GrowthFactor:    2,
		TighteningRatio: 0.5,
	}
}

// stage is one fixed-size filter plus its design limits.
type stage struct {
	filter   blocked.Probe
	capacity uint64
	inserted uint64
	fprGoal  float64
}

// Filter is a scalable Bloom filter. Not safe for concurrent writes;
// concurrent readers are fine (ContainsBatch scratch is pooled, never
// shared between calls).
type Filter struct {
	opts    Options
	stages  []stage
	scratch sync.Pool // *batchScratch
}

// batchScratch holds one ContainsBatch call's candidate-list buffers,
// pooled so steady-state probing does not allocate.
type batchScratch struct {
	cand  []uint32   // original positions still unresolved
	ckeys []core.Key // their keys, compacted alongside
	hit   []bool     // per-position result
	psel  []uint32   // per-stage selection buffer
}

// maxScratchKeys caps the batch size whose buffers are returned to the
// scratch pool: sync.Pool entries never shrink, so without the cap one
// giant batch would pin its oversized buffers for the filter's lifetime
// (same rule as internal/sharded's scatter/gather scratch).
const maxScratchKeys = 1 << 16

// putScratch returns sc to the pool unless its buffers exceed the
// retention cap.
func (f *Filter) putScratch(sc *batchScratch) {
	if cap(sc.cand) > maxScratchKeys {
		return
	}
	f.scratch.Put(sc)
}

func (sc *batchScratch) resize(n int) {
	if cap(sc.cand) < n {
		sc.cand = make([]uint32, n)
		sc.ckeys = make([]core.Key, n)
		sc.hit = make([]bool, n)
		sc.psel = make([]uint32, 0, n)
	}
	sc.cand = sc.cand[:n]
	sc.ckeys = sc.ckeys[:n]
	sc.hit = sc.hit[:n]
	clear(sc.hit)
}

// New validates options and creates the first stage.
func New(opts Options) (*Filter, error) {
	if opts.InitialCapacity == 0 {
		return nil, fmt.Errorf("scalable: capacity must be positive")
	}
	if opts.TargetFPR <= 0 || opts.TargetFPR >= 1 {
		return nil, fmt.Errorf("scalable: target FPR must be in (0,1)")
	}
	if opts.GrowthFactor == 0 {
		opts.GrowthFactor = 2
	}
	if opts.TighteningRatio == 0 {
		opts.TighteningRatio = 0.5
	}
	if opts.GrowthFactor < 1.2 || opts.TighteningRatio <= 0 || opts.TighteningRatio >= 1 {
		return nil, fmt.Errorf("scalable: invalid growth (%v) or tightening (%v)",
			opts.GrowthFactor, opts.TighteningRatio)
	}
	f := &Filter{opts: opts}
	// First stage budget: target·(1−r) so the geometric series of stage
	// budgets sums to the target.
	if err := f.addStage(opts.InitialCapacity, opts.TargetFPR*(1-opts.TighteningRatio)); err != nil {
		return nil, err
	}
	return f, nil
}

// addStage appends a stage sized for capacity keys at the given FPR goal.
func (f *Filter) addStage(capacity uint64, fprGoal float64) error {
	bpk := bitsPerKeyFor(fprGoal)
	p := blocked.CacheSectorizedParams(64, 512, 2, kFor(bpk), true)
	filt, err := blocked.New(p, uint64(math.Ceil(bpk*float64(capacity))))
	if err != nil {
		return err
	}
	f.stages = append(f.stages, stage{filter: filt, capacity: capacity, fprGoal: fprGoal})
	return nil
}

// bitsPerKeyFor inverts the cache-sectorized FPR model numerically: the
// smallest bits-per-key whose model FPR (at the stage's k) meets the goal.
func bitsPerKeyFor(goal float64) float64 {
	for bpk := 6.0; bpk <= 40; bpk += 0.5 {
		if fpr.CacheSectorized(bpk, 1, kFor(bpk), 512, 64, 2) <= goal {
			return bpk
		}
	}
	return 40
}

// kFor picks the stage's hash count: k=8 is the cache-sectorized sweet
// spot (§6); very tight budgets use k=16.
func kFor(bpk float64) uint32 {
	if bpk > 24 {
		return 16
	}
	return 8
}

// Insert adds a key, growing the filter if the current stage is full.
func (f *Filter) Insert(key core.Key) error {
	cur := &f.stages[len(f.stages)-1]
	if cur.inserted >= cur.capacity {
		nextCap := uint64(float64(cur.capacity) * f.opts.GrowthFactor)
		if nextCap <= cur.capacity {
			nextCap = cur.capacity + 1
		}
		if err := f.addStage(nextCap, cur.fprGoal*f.opts.TighteningRatio); err != nil {
			return err
		}
		cur = &f.stages[len(f.stages)-1]
	}
	cur.filter.Insert(key)
	cur.inserted++
	return nil
}

// Contains consults every stage, newest first (recent keys are the likely
// hits in growing workloads).
func (f *Filter) Contains(key core.Key) bool {
	for i := len(f.stages) - 1; i >= 0; i-- {
		if f.stages[i].filter.Contains(key) {
			return true
		}
	}
	return false
}

// ContainsBatch implements the shared batched contract. Rather than
// falling back to one scalar Contains per key (which probes every stage
// key-at-a-time), the batch is driven through each stage's own batched
// kernel with a shrinking candidate list: stage i sees only the keys no
// earlier stage matched, so the amortized per-key cost of the blocked
// kernels is preserved and most keys leave the pipeline at the first
// (newest, largest) stage. Results are identical to the scalar path —
// positions ascending, exactly the keys some stage matches.
func (f *Filter) ContainsBatch(keys []core.Key, sel core.SelVec) core.SelVec {
	n := len(keys)
	if n == 0 {
		return sel
	}
	if len(f.stages) == 1 {
		return f.stages[0].filter.ContainsBatch(keys, sel)
	}
	// Candidate list: original positions of the keys still unresolved.
	// Newest stage first, matching Contains' probe order (recent keys are
	// the likely hits in growing workloads, so the first stage resolves
	// most of the batch and later stages see short remainders).
	sc, _ := f.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = new(batchScratch)
	}
	sc.resize(n)
	defer f.putScratch(sc)
	cand, ckeys, hit := sc.cand[:0], sc.ckeys, sc.hit

	// Newest stage: probe the caller's batch directly and seed the
	// candidate list with the keys it did not resolve.
	newest := len(f.stages) - 1
	psel := f.stages[newest].filter.ContainsBatch(keys, sc.psel[:0])
	r := 0
	for i, k := range keys {
		if r < len(psel) && uint32(i) == psel[r] {
			hit[i] = true
			r++
			continue
		}
		ckeys[len(cand)] = k
		cand = append(cand, uint32(i))
	}

	for s := newest - 1; s >= 0 && len(cand) > 0; s-- {
		psel = f.stages[s].filter.ContainsBatch(ckeys[:len(cand)], psel[:0])
		if len(psel) == 0 {
			continue
		}
		if s == 0 {
			for _, p := range psel {
				hit[cand[p]] = true
			}
			break
		}
		// One fused pass: record this stage's hits and compact the
		// survivors in place (psel is ascending, so a single cursor walks
		// it alongside the candidate list).
		w := 0
		r = 0
		for i, pos := range cand {
			if r < len(psel) && uint32(i) == psel[r] {
				hit[pos] = true
				r++
				continue
			}
			cand[w] = pos
			ckeys[w] = ckeys[i]
			w++
		}
		cand = cand[:w]
	}
	sc.psel = psel
	buf, cnt := simd.GrowSel(sel, n)
	for i, h := range hit {
		buf[cnt] = uint32(i)
		cnt += simd.B2I(h)
	}
	return buf[:cnt]
}

// SizeBits returns the total footprint across stages.
func (f *Filter) SizeBits() uint64 {
	var total uint64
	for _, s := range f.stages {
		total += s.filter.SizeBits()
	}
	return total
}

// FPR returns the compound analytic false-positive rate at the current
// fill: 1 − Π(1 − f_i).
func (f *Filter) FPR(uint64) float64 {
	pass := 1.0
	for _, s := range f.stages {
		pass *= 1 - s.filter.FPR(s.inserted)
	}
	return 1 - pass
}

// Stages returns the number of stages (diagnostics).
func (f *Filter) Stages() int { return len(f.stages) }

// Count returns the total number of inserted keys.
func (f *Filter) Count() uint64 {
	var n uint64
	for _, s := range f.stages {
		n += s.inserted
	}
	return n
}

// Reset clears back to a single empty first stage.
func (f *Filter) Reset() {
	first := f.stages[0]
	first.filter.Reset()
	first.inserted = 0
	f.stages = f.stages[:1]
	f.stages[0] = first
}

// StorageAligned reports whether every stage's word storage starts on a
// cache-line boundary. Stages are blocked filters built through the
// aligned allocator, so this is always true for filters from New; a stage
// that cannot report alignment counts as misaligned.
func (f *Filter) StorageAligned() bool {
	for i := range f.stages {
		a, ok := f.stages[i].filter.(interface{ StorageAligned() bool })
		if !ok || !a.StorageAligned() {
			return false
		}
	}
	return true
}

// String describes the filter.
func (f *Filter) String() string {
	return fmt.Sprintf("bloom/scalable[stages=%d,n=%d,target=%.2g]",
		len(f.stages), f.Count(), f.opts.TargetFPR)
}
