package scalable

import (
	"encoding/binary"
	"fmt"
	"math"

	"perfilter/internal/blocked"
	"perfilter/internal/magic"
)

// Serialization nests package blocked's format: a fixed little-endian
// header with the growth options, then one length-prefixed blocked
// payload per stage alongside the stage's design limits, so the restored
// filter resumes growing exactly where the original left off.

// WireMagic is the first little-endian uint32 of every serialized
// scalable filter; the perfilter package dispatches decoders on it. The
// value is assigned centrally in internal/magic alongside every other
// format's.
const WireMagic = magic.WireScalable // "pfLG"

const (
	wireVersion    = 1
	headerLen      = 4 + 1 + 3 + 8 + 8 + 8 + 8 + 4
	stageHeaderLen = 8 + 8 + 8 + 4
)

// MarshalBinary serializes the filter (options header + stages).
func (f *Filter) MarshalBinary() ([]byte, error) {
	le := binary.LittleEndian
	payloads := make([][]byte, len(f.stages))
	total := headerLen
	for i, st := range f.stages {
		m, ok := st.filter.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			return nil, fmt.Errorf("scalable: stage %d does not serialize", i)
		}
		p, err := m.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("scalable: stage %d: %w", i, err)
		}
		if uint64(len(p)) > math.MaxUint32 {
			return nil, fmt.Errorf("scalable: stage %d payload (%d bytes) exceeds the 4 GiB record limit", i, len(p))
		}
		payloads[i] = p
		total += stageHeaderLen + len(p)
	}
	out := make([]byte, headerLen, total)
	le.PutUint32(out[0:], WireMagic)
	out[4] = wireVersion
	le.PutUint64(out[8:], f.opts.InitialCapacity)
	le.PutUint64(out[16:], math.Float64bits(f.opts.TargetFPR))
	le.PutUint64(out[24:], math.Float64bits(f.opts.GrowthFactor))
	le.PutUint64(out[32:], math.Float64bits(f.opts.TighteningRatio))
	le.PutUint32(out[40:], uint32(len(f.stages)))
	for i, st := range f.stages {
		var hdr [stageHeaderLen]byte
		le.PutUint64(hdr[0:], st.capacity)
		le.PutUint64(hdr[8:], st.inserted)
		le.PutUint64(hdr[16:], math.Float64bits(st.fprGoal))
		le.PutUint32(hdr[24:], uint32(len(payloads[i])))
		out = append(out, hdr[:]...)
		out = append(out, payloads[i]...)
	}
	return out, nil
}

// Unmarshal reconstructs a filter from MarshalBinary output.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("scalable: truncated header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != WireMagic {
		return nil, fmt.Errorf("scalable: bad magic")
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("scalable: unsupported version %d", data[4])
	}
	opts := Options{
		InitialCapacity: le.Uint64(data[8:]),
		TargetFPR:       math.Float64frombits(le.Uint64(data[16:])),
		GrowthFactor:    math.Float64frombits(le.Uint64(data[24:])),
		TighteningRatio: math.Float64frombits(le.Uint64(data[32:])),
	}
	// New normalized these before they were ever marshaled, so anything
	// out of range here is corruption — reject at decode time rather than
	// on the first stage-growth insert. (NaNs fail every comparison and
	// land in the error branch too.)
	if opts.InitialCapacity == 0 || !(opts.TargetFPR > 0 && opts.TargetFPR < 1) ||
		!(opts.GrowthFactor >= 1.2) || !(opts.TighteningRatio > 0 && opts.TighteningRatio < 1) {
		return nil, fmt.Errorf("scalable: invalid options in encoding (capacity %d, target %v, growth %v, tightening %v)",
			opts.InitialCapacity, opts.TargetFPR, opts.GrowthFactor, opts.TighteningRatio)
	}
	numStages := le.Uint32(data[40:])
	if numStages == 0 {
		return nil, fmt.Errorf("scalable: zero stages")
	}
	f := &Filter{opts: opts}
	off := headerLen
	for i := uint32(0); i < numStages; i++ {
		if len(data) < off+stageHeaderLen {
			return nil, fmt.Errorf("scalable: truncated stage %d header", i)
		}
		st := stage{
			capacity: le.Uint64(data[off:]),
			inserted: le.Uint64(data[off+8:]),
			fprGoal:  math.Float64frombits(le.Uint64(data[off+16:])),
		}
		if st.capacity == 0 || st.inserted > st.capacity || !(st.fprGoal > 0 && st.fprGoal < 1) {
			return nil, fmt.Errorf("scalable: invalid stage %d limits (capacity %d, inserted %d, goal %v)",
				i, st.capacity, st.inserted, st.fprGoal)
		}
		plen32 := le.Uint32(data[off+24:])
		off += stageHeaderLen
		// Compare in uint64 so a crafted length cannot wrap int on 32-bit
		// platforms and slip past the bounds check into a slice panic;
		// after the check, plen fits an int on any platform.
		if uint64(len(data)-off) < uint64(plen32) {
			return nil, fmt.Errorf("scalable: truncated stage %d payload", i)
		}
		plen := int(plen32)
		probe, err := blocked.Unmarshal(data[off : off+plen])
		if err != nil {
			return nil, fmt.Errorf("scalable: stage %d: %w", i, err)
		}
		st.filter = probe
		f.stages = append(f.stages, st)
		off += plen
	}
	if off != len(data) {
		return nil, fmt.Errorf("scalable: %d trailing bytes", len(data)-off)
	}
	return f, nil
}
