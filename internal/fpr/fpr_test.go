package fpr

import (
	"math"
	"testing"
)

func approx(a, b, rel float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den <= rel
}

// stdAt evaluates the classic-Bloom model at a given bits-per-key rate at
// scale (n = 10^6), avoiding the tiny-m discretization that makes
// Std(bpk, 1, k) pessimistic.
func stdAt(bpk float64, k uint32) float64 {
	const n = 1e6
	return Std(bpk*n, n, k)
}

func TestStdTextbookPoint(t *testing.T) {
	// The classic rule of thumb: ~10 bits/key with the optimal k≈7 gives
	// f ≈ 1% (the paper cites exactly this point in §3.1).
	f := stdAt(10, 7)
	if f < 0.007 || f > 0.012 {
		t.Fatalf("Std(10 bits/key, k=7) = %v, want ≈0.01", f)
	}
}

func TestStdEdgeCases(t *testing.T) {
	if Std(100, 0, 4) != 0 {
		t.Fatal("empty filter must have f=0")
	}
	if Std(100, 5, 0) != 1 {
		t.Fatal("k=0 must have f=1")
	}
	// Saturated filter: n >> m drives f → 1.
	if f := Std(64, 1e6, 4); f < 0.999 {
		t.Fatalf("saturated filter f=%v", f)
	}
}

func TestStdMonotoneInM(t *testing.T) {
	prev := 1.0
	for bpk := 2.0; bpk <= 30; bpk++ {
		f := Std(bpk, 1, 6)
		if f > prev+1e-15 {
			t.Fatalf("Std not monotone decreasing in m at %v bits/key", bpk)
		}
		prev = f
	}
}

func TestBlockedWorseThanStd(t *testing.T) {
	// Blocking trades precision for locality: fblocked ≥ fstd at equal
	// m, n, k; smaller blocks are worse (Fig. 4a ordering).
	for _, bpk := range []float64{8, 12, 16, 20} {
		fs := stdAt(bpk, 8)
		f512 := Blocked(bpk, 1, 8, 512)
		f64 := Blocked(bpk, 1, 8, 64)
		f32 := Blocked(bpk, 1, 8, 32)
		if !(fs <= f512 && f512 <= f64 && f64 <= f32) {
			t.Fatalf("ordering violated at %v bpk: std=%g 512=%g 64=%g 32=%g",
				bpk, fs, f512, f64, f32)
		}
	}
}

func TestBlockedPaperReferencePoints(t *testing.T) {
	// §3.1: classic Bloom needs ≈10 bits/key for f=1%; register-blocked
	// needs ≈12 (B=64) and ≈14 (B=32).
	cases := []struct {
		bpk   float64
		block uint32
	}{
		{12, 64},
		{14, 32},
	}
	for _, c := range cases {
		k := OptimalKBlocked(c.bpk, c.block)
		f := Blocked(c.bpk, 1, k, c.block)
		if f > 0.016 || f < 0.004 {
			t.Fatalf("B=%d at %v bpk: f=%g, want ≈0.01", c.block, c.bpk, f)
		}
	}
}

func TestBlockedLargeBlockApproachesStd(t *testing.T) {
	// With blocks much larger than the per-block load variance matters,
	// fblocked(B→m) → fstd. Use a big block and compare.
	fs := stdAt(16, 6)
	fb := Blocked(16, 1, 6, 1<<16)
	if !approx(fs, fb, 0.08) {
		t.Fatalf("large-block fblocked=%g, fstd=%g", fb, fs)
	}
}

func TestSectorizedSingleSectorEqualsBlocked(t *testing.T) {
	// s=1 (S=B) must reproduce Eq. 3 exactly.
	for _, k := range []uint32{1, 4, 8, 16} {
		a := Sectorized(12, 1, k, 512, 512)
		b := Blocked(12, 1, k, 512)
		if !approx(a, b, 1e-12) {
			t.Fatalf("k=%d: sectorized(s=1)=%g != blocked=%g", k, a, b)
		}
	}
}

func TestSectorizedWorseThanBlocked(t *testing.T) {
	// Constraining bits to sectors can only increase f.
	a := Sectorized(16, 1, 8, 512, 64)
	b := Blocked(16, 1, 8, 512)
	if a < b {
		t.Fatalf("sectorized=%g < blocked=%g", a, b)
	}
}

func TestCacheSectorizedBetweenSectorizedAndBlocked(t *testing.T) {
	// Fig. 7: with the same number of accessed words, cache-sectorization
	// spreads bits over a whole cache line and beats plain sectorization,
	// while non-sectorized blocked remains the precision upper bound.
	for _, bpk := range []float64{10, 12, 16, 20} {
		// 4 words accessed: sectorized over a 4-word (256-bit) block vs
		// cache-sectorized z=4 over a 512-bit line.
		sector := Sectorized(bpk, 1, 8, 256, 64)
		cache := CacheSectorized(bpk, 1, 8, 512, 64, 4)
		blocked := Blocked(bpk, 1, 8, 512)
		if !(cache <= sector) {
			t.Fatalf("bpk=%v: cache-sectorized %g > sectorized %g", bpk, cache, sector)
		}
		if cache < blocked-1e-15 {
			t.Fatalf("bpk=%v: cache-sectorized %g beats unconstrained blocked %g",
				bpk, cache, blocked)
		}
	}
}

func TestCacheSectorizedZEqualsSFallsBack(t *testing.T) {
	a := CacheSectorized(14, 1, 8, 512, 64, 8)
	b := Sectorized(14, 1, 8, 512, 64)
	if a != b {
		t.Fatalf("z=s must equal Eq.4: %g vs %g", a, b)
	}
}

func TestCuckooReferencePoints(t *testing.T) {
	// §6: the minimum cuckoo f in the paper's setup is 0.00005 with l=16,
	// b=2 (at 20 bits/key → alpha = 16/20 = 0.8).
	f := Cuckoo(0.8, 16, 2)
	if !approx(f, 0.00005, 0.05) {
		t.Fatalf("Cuckoo(0.8,16,2)=%g, want ≈5e-5", f)
	}
	// b=1 at the same alpha: paper cites 0.000024.
	f1 := Cuckoo(0.8, 16, 1)
	if !approx(f1, 0.000024, 0.05) {
		t.Fatalf("Cuckoo(0.8,16,1)=%g, want ≈2.4e-5", f1)
	}
}

func TestCuckooMonotonicity(t *testing.T) {
	// Longer signatures → lower f; more slots per bucket → higher f;
	// higher load → higher f.
	if !(Cuckoo(0.8, 16, 4) < Cuckoo(0.8, 12, 4) &&
		Cuckoo(0.8, 12, 4) < Cuckoo(0.8, 8, 4)) {
		t.Fatal("f not decreasing in signature length")
	}
	if !(Cuckoo(0.8, 8, 2) < Cuckoo(0.8, 8, 4) &&
		Cuckoo(0.8, 8, 4) < Cuckoo(0.8, 8, 8)) {
		t.Fatal("f not increasing in bucket size")
	}
	if !(Cuckoo(0.5, 12, 4) < Cuckoo(0.95, 12, 4)) {
		t.Fatal("f not increasing in load factor")
	}
}

func TestCuckooFromSize(t *testing.T) {
	// 20 bits/key with l=16 → alpha 0.8.
	a := CuckooFromSize(20, 1, 16, 2)
	b := Cuckoo(0.8, 16, 2)
	if !approx(a, b, 1e-12) {
		t.Fatalf("CuckooFromSize=%g, Cuckoo=%g", a, b)
	}
}

func TestCuckooMaxLoad(t *testing.T) {
	cases := map[uint32]float64{1: 0.50, 2: 0.84, 4: 0.95, 8: 0.98}
	for b, want := range cases {
		if got := CuckooMaxLoad(b); got != want {
			t.Fatalf("CuckooMaxLoad(%d)=%v want %v", b, got, want)
		}
	}
}

func TestOptimalKStd(t *testing.T) {
	// k = ln2·(m/n): 10 bits/key → 7; 14.4 → 10.
	if k := OptimalKStd(10); k != 7 {
		t.Fatalf("OptimalKStd(10)=%d want 7", k)
	}
	if k := OptimalKStd(14.4); k != 10 {
		t.Fatalf("OptimalKStd(14.4)=%d want 10", k)
	}
	if k := OptimalKStd(0.1); k != 1 {
		t.Fatal("k must be clamped to ≥1")
	}
	if k := OptimalKStd(100); k != MaxK {
		t.Fatal("k must be clamped to MaxK")
	}
}

func TestOptimalKBlockedIsArgmin(t *testing.T) {
	for _, bpk := range []float64{6, 10, 16, 20} {
		for _, B := range []uint32{32, 64, 512} {
			k := OptimalKBlocked(bpk, B)
			best := Blocked(bpk, 1, k, B)
			for kk := uint32(1); kk <= MaxK; kk++ {
				if f := Blocked(bpk, 1, kk, B); f < best-1e-18 {
					t.Fatalf("bpk=%v B=%d: k=%d (f=%g) beaten by k=%d (f=%g)",
						bpk, B, k, best, kk, f)
				}
			}
		}
	}
}

func TestOptimalKBlockedSmallerForSmallBlocks(t *testing.T) {
	// Fig. 4b: smaller blocks saturate earlier, so optimal k for B=32 is
	// ≤ optimal k for classic at moderate bits-per-key.
	kReg := OptimalKBlocked(16, 32)
	kStd := OptimalKStd(16)
	if kReg > kStd {
		t.Fatalf("register-blocked optimal k=%d exceeds classic %d", kReg, kStd)
	}
}

func TestOptimalKSectorizedMultipleConstraint(t *testing.T) {
	// 8 sectors → k must be 8 or 16.
	k := OptimalKSectorized(16, 512, 64)
	if k != 8 && k != 16 {
		t.Fatalf("k=%d violates multiple-of-sectors constraint", k)
	}
	// 16 sectors of 32 bits → only k=16 is feasible within MaxK.
	if k := OptimalKSectorized(16, 512, 32); k != 16 {
		t.Fatalf("expected k=16, got %d", k)
	}
}

func TestPoissonMixMassConservation(t *testing.T) {
	// f(i)=1 must integrate to ~1 for a range of lambdas, including large
	// ones that would underflow a naive pmf.
	for _, lambda := range []float64{0.1, 1, 10, 128, 512, 2000} {
		got := poissonMix(lambda, func(float64) float64 { return 1 })
		if !approx(got, 1, 1e-9) {
			t.Fatalf("λ=%v: mass=%v", lambda, got)
		}
	}
}

func TestPoissonMixMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 77, 300} {
		got := poissonMix(lambda, func(i float64) float64 { return i })
		if !approx(got, lambda, 1e-6) {
			t.Fatalf("λ=%v: mean=%v", lambda, got)
		}
	}
}

func TestBlockedMonotoneInM(t *testing.T) {
	for _, B := range []uint32{32, 64, 512} {
		prev := 1.0
		for bpk := 4.0; bpk <= 20; bpk += 0.5 {
			f := Blocked(bpk, 1, 4, B)
			if f > prev+1e-15 {
				t.Fatalf("B=%d: f not decreasing at %v bpk", B, bpk)
			}
			prev = f
		}
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { Std(0, 1, 1) },
		func() { Blocked(10, 1, 1, 0) },
		func() { Sectorized(10, 1, 3, 512, 64) },  // k not multiple of s
		func() { Sectorized(10, 1, 8, 512, 100) }, // S doesn't divide B
		func() { CacheSectorized(10, 1, 8, 512, 64, 3) },
		func() { CacheSectorized(10, 1, 3, 512, 64, 2) },
		func() { Cuckoo(0.8, 0, 2) },
		func() { Cuckoo(0.8, 33, 2) },
		func() { Cuckoo(0.8, 8, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBlockedModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Blocked(16, 1, 8, 512)
	}
}

func BenchmarkCacheSectorizedModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CacheSectorized(16, 1, 8, 512, 64, 2)
	}
}
