// Package fpr implements the paper's analytic false-positive-rate models:
//
//	Eq. 2  fstd     — classic Bloom filter
//	Eq. 3  fblocked — blocked Bloom filter (Poisson mixture over block loads)
//	Eq. 4  fsector  — sectorized blocked Bloom filter
//	Eq. 5  fcache   — cache-sectorized blocked Bloom filter
//	Eq. 8  fcuckoo  — cuckoo filter
//
// plus the optimal-k solvers behind Figure 4b. All functions are pure math
// (no filter state); the filters and the performance model both consume
// them.
//
// Numerical notes: (1−1/m)^{kn} is evaluated as exp(kn·log1p(−1/m)) so it is
// stable for large m and n. The Poisson mixtures evaluate each probability
// mass in log space (via math.Lgamma) so block loads with mean up to the
// thousands neither under- nor overflow; the summation truncates once the
// accumulated mass exceeds 1−1e−12 beyond the mean.
//
// Interpretation note for Eq. 5: the paper's formula prints fstd(S, j, k/s),
// but §3.2 defines cache-sectorization as setting k/z bits in the single
// sector selected per group, so the per-sector bit count is k/z; this
// package implements k/z. When every group contains exactly one sector
// (z == B/S), the sector choice is deterministic and the extra Poisson layer
// in Eq. 5 would be spurious, so CacheSectorized falls back to Eq. 4.
package fpr

import "math"

// Std is Eq. 2: the false-positive rate of a classic Bloom filter with m
// bits, n inserted keys, and k hash functions. m must be ≥ 1. n == 0 gives
// 0; k == 0 gives 1 (no bits are tested, every probe passes).
func Std(m, n float64, k uint32) float64 {
	if m < 1 {
		panic("fpr: m must be >= 1")
	}
	if k == 0 {
		return 1
	}
	if n <= 0 {
		return 0
	}
	// 1 − (1 − 1/m)^{kn}, the probability that one probed bit is set.
	bitSet := -math.Expm1(float64(k) * n * math.Log1p(-1/m))
	return math.Pow(bitSet, float64(k))
}

// Blocked is Eq. 3: a blocked Bloom filter of total size m bits with block
// size B behaves per block like a classic Bloom filter of size B whose load
// is Poisson-distributed with mean B·n/m.
func Blocked(m, n float64, k, blockBits uint32) float64 {
	if blockBits == 0 {
		panic("fpr: block size must be >= 1")
	}
	lambda := float64(blockBits) * n / m
	return poissonMix(lambda, func(i float64) float64 {
		return Std(float64(blockBits), i, k)
	})
}

// Sectorized is Eq. 4: blocks are divided into s = B/S sectors, and each key
// sets k/s bits in every sector. k must be a positive multiple of s.
func Sectorized(m, n float64, k, blockBits, sectorBits uint32) float64 {
	s := sectors(blockBits, sectorBits)
	if k == 0 || k%s != 0 {
		panic("fpr: k must be a positive multiple of the sector count")
	}
	kPerSector := k / s
	lambda := float64(blockBits) * n / m
	return poissonMix(lambda, func(i float64) float64 {
		return math.Pow(Std(float64(sectorBits), i, kPerSector), float64(s))
	})
}

// CacheSectorized is Eq. 5: sectors are grouped into z groups per block;
// a key selects one sector in each group and sets k/z bits there. k must be
// a positive multiple of z, z must divide the sector count, and z == s
// degenerates to Sectorized (see the package comment).
func CacheSectorized(m, n float64, k, blockBits, sectorBits, z uint32) float64 {
	s := sectors(blockBits, sectorBits)
	if z == 0 || s%z != 0 {
		panic("fpr: z must divide the sector count")
	}
	if k == 0 || k%z != 0 {
		panic("fpr: k must be a positive multiple of z")
	}
	if z == s {
		return Sectorized(m, n, k, blockBits, sectorBits)
	}
	kPerGroup := k / z
	lambda := float64(blockBits) * n / m
	// Given i keys in the block, each group routes them over s/z sectors,
	// so a sector's load is Poisson with mean i·z·S/B.
	sectorFrac := float64(z) * float64(sectorBits) / float64(blockBits)
	return poissonMix(lambda, func(i float64) float64 {
		inner := poissonMix(i*sectorFrac, func(j float64) float64 {
			return Std(float64(sectorBits), j, kPerGroup)
		})
		return math.Pow(inner, float64(z))
	})
}

// Cuckoo is Eq. 8: the false-positive rate of a cuckoo filter with load
// factor alpha, signature length l bits, and bucket size b. A negative probe
// compares against 2b candidate slots, each matching with probability 2^-l,
// scaled by the occupancy alpha.
func Cuckoo(alpha float64, l, b uint32) float64 {
	if l == 0 || l > 32 {
		panic("fpr: signature length must be in [1,32]")
	}
	if b == 0 {
		panic("fpr: bucket size must be >= 1")
	}
	perSlot := math.Log1p(-1 / math.Exp2(float64(l)))
	return -math.Expm1(2 * float64(b) * alpha * perSlot)
}

// CuckooFromSize evaluates Eq. 8 for a filter of m total bits holding n
// keys: alpha = l·n/m.
func CuckooFromSize(m, n float64, l, b uint32) float64 {
	return Cuckoo(float64(l)*n/m, l, b)
}

// Xor returns the false-positive rate of an xor/fuse filter with w-bit
// fingerprints: exactly 2^-w, independent of the load — the table is
// solved for its key set, so a negative probe matches only by fingerprint
// collision (Graf & Lemire, PAPERS.md).
func Xor(w uint32) float64 {
	if w == 0 || w > 32 {
		panic("fpr: fingerprint width must be in [1,32]")
	}
	return math.Exp2(-float64(w))
}

// CuckooMaxLoad returns the practical maximum load factor for partial-key
// cuckoo hashing by bucket size, as reported in §4 of the paper (b = 2, 4, 8
// reach 84%, 95%, 98%; b = 1 about 50%).
func CuckooMaxLoad(b uint32) float64 {
	switch {
	case b <= 1:
		return 0.50
	case b == 2:
		return 0.84
	case b <= 4:
		return 0.95
	default:
		return 0.98
	}
}

// MaxK is the largest hash-function count the paper explores (k ∈ [1, 16]).
const MaxK = 16

// OptimalKStd returns argmin_k Std for a classic Bloom filter at the given
// bits-per-key rate: the information-theoretic k = ln2 · m/n rounded to the
// nearest positive integer (clamped to MaxK).
func OptimalKStd(bitsPerKey float64) uint32 {
	k := uint32(math.Round(math.Ln2 * bitsPerKey))
	if k < 1 {
		return 1
	}
	if k > MaxK {
		return MaxK
	}
	return k
}

// OptimalKBlocked returns argmin_k Blocked(m,n,k,B) over k ∈ [1, MaxK] for
// the given bits-per-key rate (Fig. 4b). Ties choose the smaller k (cheaper
// lookups at equal precision).
func OptimalKBlocked(bitsPerKey float64, blockBits uint32) uint32 {
	bestK, bestF := uint32(1), math.Inf(1)
	for k := uint32(1); k <= MaxK; k++ {
		f := Blocked(bitsPerKey, 1, k, blockBits)
		if f < bestF {
			bestK, bestF = k, f
		}
	}
	return bestK
}

// OptimalKSectorized returns the best k ∈ [1, MaxK] that is a multiple of
// the sector count (Eq. 4's validity constraint), or 0 if none exists.
func OptimalKSectorized(bitsPerKey float64, blockBits, sectorBits uint32) uint32 {
	s := sectors(blockBits, sectorBits)
	bestK, bestF := uint32(0), math.Inf(1)
	for k := s; k <= MaxK; k += s {
		f := Sectorized(bitsPerKey, 1, k, blockBits, sectorBits)
		if f < bestF {
			bestK, bestF = k, f
		}
	}
	return bestK
}

// sectors validates the (B, S) pair and returns s = B/S.
func sectors(blockBits, sectorBits uint32) uint32 {
	if sectorBits == 0 || blockBits == 0 || sectorBits > blockBits ||
		blockBits%sectorBits != 0 {
		panic("fpr: sector size must divide block size")
	}
	return blockBits / sectorBits
}

// poissonMix computes Σ_i Poisson(i; λ)·f(i), truncating once the
// accumulated probability mass exceeds 1−1e−12 past the mean. f receives the
// load as a float for direct use in Std.
func poissonMix(lambda float64, f func(i float64) float64) float64 {
	if lambda <= 0 {
		return f(0)
	}
	logLambda := math.Log(lambda)
	var sum, mass float64
	for i := 0; ; i++ {
		p := poissonPMF(float64(i), lambda, logLambda)
		sum += p * f(float64(i))
		mass += p
		if float64(i) > lambda && mass > 1-1e-12 {
			break
		}
		// Hard stop far beyond any conceivable mass (λ + 40√λ + 64).
		if float64(i) > lambda+40*math.Sqrt(lambda)+64 {
			break
		}
	}
	return sum
}

// poissonPMF evaluates the Poisson probability mass in log space so that
// means in the thousands stay finite.
func poissonPMF(i, lambda, logLambda float64) float64 {
	lg, _ := math.Lgamma(i + 1)
	return math.Exp(-lambda + i*logLambda - lg)
}
