package platform

import (
	"strings"
	"testing"
	"time"
)

func TestDetectSane(t *testing.T) {
	info := Detect()
	if info.Name == "" {
		t.Fatal("empty platform name")
	}
	if info.Cores < 1 {
		t.Fatalf("cores = %d", info.Cores)
	}
	if info.L1 < 8<<10 || info.L1 > 1<<20 {
		t.Fatalf("implausible L1 = %d", info.L1)
	}
	if info.L2 < info.L1 {
		t.Fatalf("L2 (%d) smaller than L1 (%d)", info.L2, info.L1)
	}
	if info.CyclesPerNs < 0.5 || info.CyclesPerNs > 6 {
		t.Fatalf("cycle rate %.2f outside clamp", info.CyclesPerNs)
	}
}

func TestCyclesConversion(t *testing.T) {
	info := Info{CyclesPerNs: 3}
	if got := info.Cycles(10 * time.Nanosecond); got != 30 {
		t.Fatalf("Cycles = %v", got)
	}
}

func TestEstimateStability(t *testing.T) {
	a := EstimateCyclesPerNs()
	b := EstimateCyclesPerNs()
	ratio := a / b
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("estimates unstable: %.2f vs %.2f", a, b)
	}
}

func TestStringRendering(t *testing.T) {
	info := Info{Name: "testcpu", L1: 32 << 10, L2: 1 << 20, L3: 0, Cores: 4, CyclesPerNs: 2.5}
	s := info.String()
	for _, want := range []string{"testcpu", "32KiB", "1MiB", "-", "cores=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{0: "-", 512: "512B", 32 << 10: "32KiB", 14 << 20: "14MiB"}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Fatalf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
