// Package platform detects the host's cache hierarchy and estimates its
// clock rate so measurements can be reported in CPU cycles, the unit the
// paper uses throughout.
//
// Cache sizes are read from sysfs (Linux); when unavailable, the defaults
// fall back to a common desktop hierarchy (32 KiB / 1 MiB / 16 MiB). The
// cycle rate is estimated by timing a serially dependent integer-add chain:
// each iteration carries a data dependency, so modern cores retire almost
// exactly one iteration per cycle, making elapsed-nanoseconds → cycles a
// stable conversion without access to the TSC (which pure Go cannot read
// portably — see DESIGN.md §4, substitution 5).
package platform

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Info describes the host (or a simulated platform preset in the model
// package).
type Info struct {
	// Name is a human-readable CPU identifier.
	Name string
	// L1, L2, L3 are per-core data-cache capacities in bytes (L3 typically
	// shared; 0 means the level is absent, as on Knights Landing).
	L1, L2, L3 uint64
	// Cores is the logical CPU count available to the process.
	Cores int
	// CyclesPerNs converts nanoseconds to CPU cycles.
	CyclesPerNs float64
}

// String renders the platform like the paper's Table 1 rows.
func (i Info) String() string {
	return fmt.Sprintf("%s: L1=%s L2=%s L3=%s cores=%d %.2f GHz(est)",
		i.Name, fmtBytes(i.L1), fmtBytes(i.L2), fmtBytes(i.L3),
		i.Cores, i.CyclesPerNs)
}

func fmtBytes(b uint64) string {
	switch {
	case b == 0:
		return "-"
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Detect gathers host information. It is inexpensive enough to call once at
// startup; the cycle estimation takes a few milliseconds.
func Detect() Info {
	info := Info{
		Name:  cpuName(),
		L1:    32 << 10,
		L2:    1 << 20,
		L3:    16 << 20,
		Cores: runtime.NumCPU(),
	}
	if l1, ok := sysfsCache(0, "index0"); ok {
		info.L1 = l1
	}
	if l2, ok := sysfsCache(0, "index2"); ok {
		info.L2 = l2
	}
	if l3, ok := sysfsCache(0, "index3"); ok {
		info.L3 = l3
	} else {
		info.L3 = 0
		if l3b, ok := sysfsCache(0, "index4"); ok {
			info.L3 = l3b
		}
		if info.L3 == 0 {
			info.L3 = 16 << 20
		}
	}
	info.CyclesPerNs = EstimateCyclesPerNs()
	return info
}

// cpuName extracts the model name from /proc/cpuinfo, if present.
func cpuName() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, found := strings.Cut(line, ":"); found {
				return strings.TrimSpace(after)
			}
		}
	}
	return runtime.GOARCH
}

// sysfsCache reads one cache level's size for a CPU from sysfs.
func sysfsCache(cpu int, index string) (uint64, bool) {
	path := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cache/%s/size", cpu, index)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	s := strings.TrimSpace(string(data))
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v * mult, true
}

// EstimateCyclesPerNs times a dependent add chain. The chain length is long
// enough to amortize timer overhead; the best of several runs suppresses
// scheduling noise.
func EstimateCyclesPerNs() float64 {
	const iters = 2_000_000
	best := 1e18
	for run := 0; run < 5; run++ {
		start := time.Now()
		x := uint64(1)
		for i := uint64(0); i < iters; i++ {
			// Serial dependency on x: one add retires per cycle. Adding the
			// loop variable (a value the compiler does not fold into a
			// closed form) keeps the chain alive.
			x += i
		}
		elapsed := float64(time.Since(start).Nanoseconds())
		if x == 0 { // defeat dead-code elimination
			return 1
		}
		if elapsed < best {
			best = elapsed
		}
	}
	cpns := iters / best
	// Clamp to plausible hardware (0.5 – 6 GHz) in case of a degenerate
	// environment (e.g. heavily throttled container).
	if cpns < 0.5 {
		cpns = 0.5
	}
	if cpns > 6 {
		cpns = 6
	}
	return cpns
}

// Cycles converts a duration to estimated CPU cycles on this platform.
func (i Info) Cycles(d time.Duration) float64 {
	return float64(d.Nanoseconds()) * i.CyclesPerNs
}
