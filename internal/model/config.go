// Package model implements the paper's core contribution: the
// performance-optimal filtering model (§2) and the skyline sweeps of §6.
//
// The overhead of a filter configuration F at work saving tw is
//
//	ρ(F) = tl(F) + f(F)·tw                (Eq. 1)
//
// and the performance-optimal filter minimizes ρ. Filtering is beneficial
// at all iff ρ(F_opt) < (1−σ)·tw. f comes from the analytic models in
// package fpr; tl comes from a CostModel — either the analytic machine
// model parameterized with the paper's Table 1 platforms (package model's
// presets) or host measurements (package calibrate).
package model

import (
	"fmt"
	"math/bits"

	"perfilter/internal/blocked"
	"perfilter/internal/bloom"
	"perfilter/internal/cuckoo"
	"perfilter/internal/magic"
	"perfilter/internal/xor"
)

// Kind identifies a filter family.
type Kind uint8

const (
	// KindBlockedBloom covers all blocked variants (register-blocked,
	// plain blocked, sectorized, cache-sectorized).
	KindBlockedBloom Kind = iota
	// KindClassicBloom is the unblocked baseline.
	KindClassicBloom
	// KindCuckoo is the cuckoo filter.
	KindCuckoo
	// KindExact is the exact hash set (f = 0, large footprint).
	KindExact
	// KindXor covers the immutable xor/fuse family (xor8, xor16 and their
	// binary-fuse layouts): space-optimal and probe-cheap, but build-once —
	// the advisor enumerates it only for read-mostly workloads, where a
	// key-log rebuild is an acceptable write path.
	KindXor
	numKinds
)

// NumKinds returns the number of registered filter families (the valid
// Kind values are [0, NumKinds)).
func NumKinds() int { return int(numKinds) }

func (k Kind) String() string {
	if sp := specOf(k); sp != nil {
		return sp.name
	}
	return "invalid"
}

// Config is a tagged union over the filter families' parameter types.
type Config struct {
	Kind    Kind
	Bloom   blocked.Params // Kind == KindBlockedBloom
	Classic bloom.Params   // Kind == KindClassicBloom
	Cuckoo  cuckoo.Params  // Kind == KindCuckoo
	Xor     xor.Params     // Kind == KindXor
}

// Validate checks the embedded parameters.
func (c Config) Validate() error {
	if sp := specOf(c.Kind); sp != nil {
		return sp.validate(c)
	}
	return fmt.Errorf("model: invalid kind %d", c.Kind)
}

// String renders the configuration.
func (c Config) String() string {
	if sp := specOf(c.Kind); sp != nil {
		return sp.render(c)
	}
	return "invalid"
}

// FPR returns the analytic false-positive rate at size mBits with n keys.
func (c Config) FPR(mBits, n uint64) float64 {
	if sp := specOf(c.Kind); sp != nil {
		return sp.fpr(c, mBits, n)
	}
	return 0
}

// Feasible reports whether a filter of mBits can actually be built holding
// n keys. Bloom filters always construct; cuckoo filters require the load
// factor α = l·n/m to stay within the practical limit for their bucket size
// (§4: ~50%, 84%, 95%, 98% for b = 1, 2, 4, 8 — beyond that, construction
// fails). The skyline sweep and the advisor both honour this constraint.
// Xor tables are solved by peeling, which needs the layout's space factor
// (≈1.23 slots/key, ≈1.13 for fuse) — below that the build fails for any
// seed.
func (c Config) Feasible(mBits, n uint64) bool {
	if sp := specOf(c.Kind); sp != nil && sp.feasible != nil {
		return sp.feasible(c, mBits, n)
	}
	return true
}

// GranuleBits is the sizing granule: filters round their size up to whole
// granules (block for blocked Bloom, bucket for cuckoo, bit for classic).
func (c Config) GranuleBits() uint32 {
	if sp := specOf(c.Kind); sp != nil && sp.granule != nil {
		return sp.granule(c)
	}
	return 1
}

// usesMagic reports whether the configuration uses magic-modulo addressing.
func (c Config) usesMagic() bool {
	if sp := specOf(c.Kind); sp != nil && sp.usesMagic != nil {
		return sp.usesMagic(c)
	}
	return false
}

// ActualBits applies the same size rounding the constructors apply, without
// building a filter: magic addressing rounds the granule count to the next
// class-(ii) divisor (Eq. 10), power-of-two addressing to the next power of
// two. Exact and xor structures are sized by key count, not by a byte
// budget (see ExactBits and xor.Params.SizeForKeys); for them the request
// is returned unchanged.
func (c Config) ActualBits(desired uint64) uint64 {
	if SizedByKeys(c.Kind) {
		return desired
	}
	g := uint64(c.GranuleBits())
	granules := (desired + g - 1) / g
	if granules == 0 {
		granules = 1
	}
	if c.usesMagic() {
		if granules > 0xFFFFFFFF {
			granules = 0xFFFFFFFF
		}
		return uint64(magic.Next(uint32(granules)).D()) * g
	}
	return nextPow2(granules) * g
}

// ExactBits returns the footprint of the exact hash set for n keys: slots
// at 85% maximum load, 8 bytes each, power-of-two table.
func ExactBits(n uint64) uint64 {
	slots := nextPow2(uint64(float64(n)/0.85) + 1)
	if slots < 16 {
		slots = 16
	}
	return slots * 64
}

// Overhead is Eq. 1: ρ(F) = tl + f·tw, the per-lookup cost of filtering
// including the false-positive work.
func Overhead(tl, f, tw float64) float64 {
	return tl + f*tw
}

// Beneficial reports whether installing the filter helps at all:
// ρ(F_opt) < (1−σ)·tw (§2). σ is the fraction of probes that truly match.
func Beneficial(rho, sigma, tw float64) bool {
	return rho < (1-sigma)*tw
}

// WorkPerTuple is the σ-aware per-tuple probe-pipeline cost tw′(F) from §2:
//
//	tw′ = (1−σ′)·tlNeg + σ′·(tlPos + tw),  σ′ = σ + f
//
// tlNeg and tlPos are the filter's negative/positive lookup costs (equal
// for everything except the classic Bloom filter).
func WorkPerTuple(tlNeg, tlPos, tw, sigma, f float64) float64 {
	sigmaP := sigma + f
	if sigmaP > 1 {
		sigmaP = 1
	}
	return (1-sigmaP)*tlNeg + sigmaP*(tlPos+tw)
}

// log2f returns log2 of a power-of-two as float64.
func log2f(x uint32) float64 {
	return float64(bits.Len32(x) - 1)
}

func nextPow2(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(x-1))
}

// HashBits returns the number of hash bits one lookup consumes — the
// computational-efficiency axis of §3.1 (blocking reduces hash bits from
// k·log2(m) to k·log2(B) + log2(m/B)). Block/bucket addressing consumes a
// fixed 32 bits in this implementation regardless of addressing mode.
func (c Config) HashBits() float64 {
	if sp := specOf(c.Kind); sp != nil {
		return sp.hashBits(c)
	}
	return 32
}

// LinesAccessed returns how many cache lines one lookup touches: the
// memory-efficiency axis. Cuckoo filters read two buckets; blocked Bloom
// filters read one line; classic Bloom filters read up to k (modelled at
// its short-circuit expectation elsewhere). Xor filters read three slots
// in three table thirds (three independent lines); the fuse layout
// confines them to three adjacent small segments, which keeps them within
// one or two lines/pages in practice — modelled as two.
func (c Config) LinesAccessed() float64 {
	if sp := specOf(c.Kind); sp != nil {
		return sp.lines(c)
	}
	return 1
}
