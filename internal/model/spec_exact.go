package model

// The exact Robin Hood hash set: f = 0, ~75+ bits/key. Gated behind
// AllowExact, sized by key count (ExactBits), and exempt from the
// bits-per-key budget — sweeps admit it under SweepOpts.MaxExactBytes
// instead (Figure 1's "too large & expensive" cap).
var _ = registerSpec(kindSpec{
	kind:   KindExact,
	name:   "exact",
	letter: 'E',

	validate: func(Config) error { return nil },
	render:   func(Config) string { return "exact[robin-hood]" },
	fpr:      func(Config, uint64, uint64) float64 { return 0 },
	hashBits: func(Config) float64 { return 32 },
	lines:    func(Config) float64 { return 1 },
	cycles: func(m Machine, c Config, mBits uint64, simd bool) float64 {
		// Robin-Hood probe: short chains, usually one line, no SIMD.
		return 6.0 + 1.3*m.memCost(float64(mBits)/8)
	},
	enumerate:    func(bool) []Config { return []Config{{Kind: KindExact}} },
	gate:         func(h EnumHints) bool { return h.AllowExact },
	sizeForKeys:  func(_ Config, n uint64) uint64 { return ExactBits(n) },
	budgetExempt: true,
})
