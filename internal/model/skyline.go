package model

import (
	"fmt"
	"math"
)

// Grid is the (n, tw) experiment grid of §6. The paper scans
// n = ⌊2^(i+j·0.0625)⌋ for i ∈ [10,27], j ∈ [0,15] and tw = 2^i for
// i ∈ [4,31].
type Grid struct {
	Ns  []uint64  // problem sizes (build-side key counts)
	Tws []float64 // work saved per true-negative lookup, in cycles
}

// DefaultGrid returns the experiment grid. full selects the paper's
// resolution on the n axis (16 sub-steps per octave); otherwise one point
// per octave is used, which preserves the skyline shape at 1/16 the cost.
func DefaultGrid(full bool) Grid {
	var g Grid
	jStep := 16
	if full {
		jStep = 1
	}
	for i := 10; i <= 27; i++ {
		for j := 0; j < 16; j += jStep {
			g.Ns = append(g.Ns, uint64(math.Pow(2, float64(i)+float64(j)*0.0625)))
		}
	}
	for i := 4; i <= 31; i++ {
		g.Tws = append(g.Tws, math.Pow(2, float64(i)))
	}
	return g
}

// SweepOpts controls the m-axis of the sweep.
type SweepOpts struct {
	// MinBitsPerKey and MaxBitsPerKey bound the memory budget (the paper
	// scans m ∈ [4n, 20n]).
	MinBitsPerKey, MaxBitsPerKey float64
	// MStepsPerOctave is the number of size points per doubling of m (the
	// paper uses 10: powers of two plus nine intermediates).
	MStepsPerOctave int
	// MaxExactBytes caps the exact structure's footprint; beyond it the
	// exact option is "too large & expensive" (Fig. 1) and is skipped.
	// Zero disables the exact option entirely.
	MaxExactBytes uint64
}

// DefaultSweepOpts mirrors the paper's protocol with a 4-step m axis.
func DefaultSweepOpts() SweepOpts {
	return SweepOpts{
		MinBitsPerKey:   4,
		MaxBitsPerKey:   20,
		MStepsPerOctave: 4,
		MaxExactBytes:   0,
	}
}

// Best is the winning entry for one kind in one (n, tw) cell.
type Best struct {
	Config Config
	MBits  uint64  // actual filter size
	F      float64 // analytic false-positive rate
	Tl     float64 // lookup cycles
	Rho    float64 // overhead (Eq. 1)
}

// Cell records the per-kind optima for one (n, tw) point.
type Cell struct {
	ByKind [numKinds]Best
}

// Winner returns the best kind among the given candidates (all kinds if
// none specified). Kinds with no feasible configuration have Rho = +Inf.
func (c Cell) Winner(kinds ...Kind) (Kind, Best) {
	if len(kinds) == 0 {
		kinds = make([]Kind, 0, numKinds)
		for k := Kind(0); k < numKinds; k++ {
			kinds = append(kinds, k)
		}
	}
	bestKind := kinds[0]
	best := c.ByKind[kinds[0]]
	for _, k := range kinds[1:] {
		if c.ByKind[k].Rho < best.Rho {
			bestKind, best = k, c.ByKind[k]
		}
	}
	return bestKind, best
}

// Speedup returns ρ(loser)/ρ(winner) between the two primary families —
// the quantity plotted in Figure 11a.
func (c Cell) Speedup() float64 {
	b, k := c.ByKind[KindBlockedBloom].Rho, c.ByKind[KindCuckoo].Rho
	if b <= 0 || k <= 0 || math.IsInf(b, 1) || math.IsInf(k, 1) {
		return 1
	}
	if b < k {
		return k / b
	}
	return b / k
}

// Skyline is the full sweep result: Cells[ni][ti] corresponds to
// (Grid.Ns[ni], Grid.Tws[ti]).
type Skyline struct {
	Grid  Grid
	Cells [][]Cell
	Model string // cost model used
}

// fprCacheKey memoizes FPR evaluations: the analytic models depend only on
// the configuration and the bits-per-key ratio, so evaluations repeat
// heavily across the n axis. bpk is quantized to 2^-10.
type fprCacheKey struct {
	cfg     int
	bpkMill uint64
}

// ComputeSkyline runs the §6 protocol: for every configuration, problem
// size and memory budget, evaluate (f, tl), then for every tw keep the
// per-kind configuration minimizing ρ. Exact structures are sized by n and
// participate only when within opts.MaxExactBytes.
func ComputeSkyline(grid Grid, configs []Config, cost CostModel, opts SweepOpts) *Skyline {
	sky := &Skyline{Grid: grid, Model: cost.Name()}
	sky.Cells = make([][]Cell, len(grid.Ns))
	for ni := range sky.Cells {
		sky.Cells[ni] = make([]Cell, len(grid.Tws))
		for ti := range sky.Cells[ni] {
			for k := range sky.Cells[ni][ti].ByKind {
				sky.Cells[ni][ti].ByKind[k].Rho = math.Inf(1)
			}
		}
	}

	fprCache := make(map[fprCacheKey]float64, 1<<16)
	mRatios := sizeRatios(opts)

	for ci, cfg := range configs {
		if SizedByKeys(cfg.Kind) {
			continue // handled below, one point per n
		}
		for ni, n := range grid.Ns {
			seen := make(map[uint64]bool, len(mRatios))
			for _, ratio := range mRatios {
				desired := uint64(ratio * float64(n))
				actual := cfg.ActualBits(desired)
				if seen[actual] {
					continue
				}
				seen[actual] = true
				bpk := float64(actual) / float64(n)
				// Power-of-two rounding can overshoot the budget by up to
				// 2×; the paper's pow2 configurations simply cannot hit
				// intermediate sizes, so enforce the budget on actuals.
				if bpk > opts.MaxBitsPerKey*1.0001 || bpk < opts.MinBitsPerKey*0.999 {
					continue
				}
				if !cfg.Feasible(actual, n) {
					continue
				}
				key := fprCacheKey{ci, uint64(bpk * 1024)}
				f, ok := fprCache[key]
				if !ok {
					f = cfg.FPR(actual, n)
					fprCache[key] = f
				}
				tl := cost.LookupCycles(cfg, actual)
				for ti, tw := range grid.Tws {
					rho := Overhead(tl, f, tw)
					b := &sky.Cells[ni][ti].ByKind[cfg.Kind]
					if rho < b.Rho {
						*b = Best{Config: cfg, MBits: actual, F: f, Tl: tl, Rho: rho}
					}
				}
			}
		}
	}

	// Sized-by-keys families (the xor/fuse table is ≈1.23·w, 1.13·w fuse,
	// bits per key and extra budget buys nothing) contribute one point per
	// n, kept only when that point fits the budget. Immutable families
	// additionally carry the rebuild surcharge — a build-once structure
	// pays its construction out of the lookup budget (see
	// BuildSurchargeFor).
	for _, cfg := range configs {
		sp := specOf(cfg.Kind)
		if sp == nil || sp.sizeForKeys == nil || sp.budgetExempt {
			continue
		}
		for ni, n := range grid.Ns {
			mBits := sp.sizeForKeys(cfg, n)
			bpk := float64(mBits) / float64(n)
			if bpk > opts.MaxBitsPerKey*1.0001 || bpk < opts.MinBitsPerKey*0.999 {
				continue
			}
			f := cfg.FPR(mBits, n)
			tl := cost.LookupCycles(cfg, mBits)
			for ti, tw := range grid.Tws {
				rho := Overhead(tl, f, tw) + BuildSurchargeFor(cfg.Kind, tw)
				b := &sky.Cells[ni][ti].ByKind[cfg.Kind]
				if rho < b.Rho {
					*b = Best{Config: cfg, MBits: mBits, F: f, Tl: tl, Rho: rho}
				}
			}
		}
	}

	// Budget-exempt families (the exact set, f = 0) participate whenever
	// their footprint fits the explicit byte cap.
	if opts.MaxExactBytes > 0 {
		for k := Kind(0); k < numKinds; k++ {
			sp := kindSpecs[k]
			if sp == nil || !sp.budgetExempt || sp.sizeForKeys == nil {
				continue
			}
			for _, cfg := range sp.enumerate(false) {
				for ni, n := range grid.Ns {
					mBits := sp.sizeForKeys(cfg, n)
					if mBits/8 > opts.MaxExactBytes {
						continue
					}
					f := cfg.FPR(mBits, n)
					tl := cost.LookupCycles(cfg, mBits)
					for ti := range grid.Tws {
						b := &sky.Cells[ni][ti].ByKind[k]
						if tl < b.Rho {
							*b = Best{Config: cfg, MBits: mBits, F: f, Tl: tl, Rho: tl}
						}
					}
				}
			}
		}
	}
	return sky
}

// sizeRatios returns the bits-per-key grid (geometric, MStepsPerOctave
// points per doubling, inclusive of both bounds).
func sizeRatios(opts SweepOpts) []float64 {
	var rs []float64
	steps := opts.MStepsPerOctave
	if steps < 1 {
		steps = 1
	}
	factor := math.Pow(2, 1/float64(steps))
	for r := opts.MinBitsPerKey; r < opts.MaxBitsPerKey*1.0001; r *= factor {
		rs = append(rs, r)
	}
	if last := rs[len(rs)-1]; last < opts.MaxBitsPerKey {
		rs = append(rs, opts.MaxBitsPerKey)
	}
	return rs
}

// typeMapLetter is the one-character family legend of the type maps,
// declared by each family's spec.
func typeMapLetter(k Kind) byte {
	if sp := specOf(k); sp != nil {
		return sp.letter
	}
	return '?'
}

// RenderTypeMap draws the Figure 10-style ASCII map: rows are problem
// sizes (descending), columns are tw values, and each cell shows the
// winning family between blocked Bloom (B) and Cuckoo (C); '.' marks cells
// where neither family had a feasible configuration.
func (s *Skyline) RenderTypeMap() string {
	return s.RenderTypeMapKinds(KindBlockedBloom, KindCuckoo)
}

// RenderTypeMapKinds is RenderTypeMap over an arbitrary family set — the
// extended maps (e.g. with the xor region) use it. Legend: B blocked
// Bloom, S classic (SIMD) Bloom, C cuckoo, E exact, X xor/fuse; '.' marks
// cells with no feasible configuration among the given kinds.
func (s *Skyline) RenderTypeMapKinds(kinds ...Kind) string {
	out := fmt.Sprintf("skyline (%s): rows n=2^10..2^%d (bottom-up), cols tw=2^4..2^31\n",
		s.Model, 10+len(s.Grid.Ns)-1)
	for ni := len(s.Grid.Ns) - 1; ni >= 0; ni-- {
		row := make([]byte, len(s.Grid.Tws))
		for ti := range s.Grid.Tws {
			kind, best := s.Cells[ni][ti].Winner(kinds...)
			if math.IsInf(best.Rho, 1) {
				row[ti] = '.'
			} else {
				row[ti] = typeMapLetter(kind)
			}
		}
		out += fmt.Sprintf("n=2^%-3d %s\n", 10+ni, string(row))
	}
	return out
}

// CrossoverTw returns, for each problem size, the smallest tw at which the
// Cuckoo filter overtakes the blocked Bloom filter (the Figure 10 boundary),
// or +Inf if Bloom wins the whole row.
func (s *Skyline) CrossoverTw() []float64 {
	cross := make([]float64, len(s.Grid.Ns))
	for ni := range s.Grid.Ns {
		cross[ni] = math.Inf(1)
		for ti, tw := range s.Grid.Tws {
			kind, best := s.Cells[ni][ti].Winner(KindBlockedBloom, KindCuckoo)
			if kind == KindCuckoo && !math.IsInf(best.Rho, 1) {
				cross[ni] = tw
				break
			}
		}
	}
	return cross
}
