package model

import (
	"fmt"

	"perfilter/internal/platform"
)

// CostModel produces the lookup-cost term tl of Eq. 1, in CPU cycles per
// key for batched lookups, for a configuration at a given filter size.
type CostModel interface {
	// LookupCycles estimates/measures tl for config c at size mBits.
	LookupCycles(c Config, mBits uint64) float64
	// Name identifies the model (platform preset or "measured(host)").
	Name() string
}

// Machine is the analytic cost model: a simulated platform described by its
// cache hierarchy, effective access costs, and SIMD capability. It stands
// in for the hardware of the paper's Table 1 (see DESIGN.md §4,
// substitution 2). All latency fields are *effective* cycles per random
// cache-line access under the memory-level parallelism of a batched kernel,
// not raw load-to-use latencies.
type Machine struct {
	// MachineName identifies the preset.
	MachineName string
	// L1, L2, L3 are capacities in bytes (L3 == 0 means absent, as on KNL).
	L1, L2, L3 uint64
	// LatL1..LatMem are effective cycles per line access served by each
	// level.
	LatL1, LatL2, LatL3, LatMem float64
	// SIMDBits is the vector width (256 for AVX2, 512 for AVX-512).
	SIMDBits uint32
	// GatherEff discounts the SIMD speedup for platforms with slow GATHER
	// (≈1 on Intel, low on Ryzen, where the paper measured <50% gains).
	GatherEff float64
	// CuckooSIMDPenalty further discounts cuckoo SIMD (KNL lacks
	// AVX-512BW, forcing mixed AVX2/AVX-512 sequences, §6.1).
	CuckooSIMDPenalty float64
	// GHz is the nominal clock, for converting to wall time in reports.
	GHz float64
	// Threads is the thread count the paper used on this platform.
	Threads int
}

// Name implements CostModel.
func (m Machine) Name() string { return m.MachineName }

// LookupCycles implements CostModel with the batched (SIMD) kernels.
func (m Machine) LookupCycles(c Config, mBits uint64) float64 {
	return m.Cycles(c, mBits, true)
}

// ScalarLookupCycles estimates the one-key-at-a-time cost (the baseline of
// the paper's Figure 15 SIMD-speedup comparison).
func (m Machine) ScalarLookupCycles(c Config, mBits uint64) float64 {
	return m.Cycles(c, mBits, false)
}

// Cycles is the full cost function. The structure mirrors the paper's
// qualitative analysis:
//
//	tl = cpu(F)/simdSpeedup(F) + lines(F)·memCost(m)
//
// cpu grows with consumed hash bits, words touched and the modulo choice;
// memCost interpolates across the cache hierarchy by the probability that a
// uniformly random line of an m-bit filter resides in each level.
// Each family's term lives in its spec file (spec_<family>.go).
func (m Machine) Cycles(c Config, mBits uint64, simd bool) float64 {
	if sp := specOf(c.Kind); sp != nil {
		return sp.cycles(m, c, mBits, simd)
	}
	return 0
}

// XorBuildCyclesPerKey is the modeled construction cost of the xor/fuse
// family: hashing, the peeling pass and the reverse assignment are all
// O(n) with small constants, but the build touches every slot several
// times with poor locality. The advisor amortizes this over the lookup
// budget — an immutable filter pays ≈ XorBuildCyclesPerKey/tw extra
// cycles per lookup (one rebuild per ~tw probes per key), so at small tw
// the rebuild surcharge prices xor out and at large tw it vanishes. See
// XorBuildSurcharge.
const XorBuildCyclesPerKey = 150.0

// XorBuildSurcharge returns the per-lookup rebuild surcharge added to the
// xor family's overhead ρ (Eq. 1 has no build term because mutable
// filters build incrementally; an immutable filter must re-peel from the
// key log instead).
func XorBuildSurcharge(tw float64) float64 {
	if tw <= 0 {
		return XorBuildCyclesPerKey
	}
	return XorBuildCyclesPerKey / tw
}

// simdSpeedup returns the effective lane-parallel speedup for a kernel
// whose lanes are laneBits wide. extraPenalty ∈ [0,1] further discounts
// (cuckoo on KNL); 0 means no extra penalty.
func (m Machine) simdSpeedup(laneBits uint32, extraPenalty float64) float64 {
	lanes := float64(m.SIMDBits) / float64(laneBits)
	eff := m.GatherEff
	if extraPenalty > 0 {
		eff *= extraPenalty
	}
	s := lanes * eff
	if s < 1 {
		return 1
	}
	return s
}

// modCost returns the cycles of the index-reduction sequence: a bitwise AND
// for powers of two, the multiply-shift-subtract sequence (Eq. 9) for magic
// modulo, per reduction performed.
func (m Machine) modCost(useMagic bool, reductions float64) float64 {
	if useMagic {
		return 2.0 * reductions
	}
	return 0.5 * reductions
}

// memCost returns effective cycles per cache-line access for a structure of
// mBytes, assuming uniformly random line accesses: the fraction of the
// structure resident in each level serves that fraction of accesses.
func (m Machine) memCost(mBytes float64) float64 {
	p1 := clamp01(float64(m.L1) / mBytes)
	p2 := clamp01(float64(m.L2)/mBytes) - p1
	var p3 float64
	if m.L3 > 0 {
		p3 = clamp01(float64(m.L3)/mBytes) - p1 - p2
	}
	pm := 1 - p1 - p2 - p3
	return p1*m.LatL1 + p2*m.LatL2 + p3*m.LatL3 + pm*m.LatMem
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// The paper's Table 1 platforms as analytic presets. Cache capacities and
// SIMD widths are from the table; effective access costs follow the
// platforms' documented microarchitectural behaviour (Intel optimization
// manual / AMD 17h guide, [1, 18] in the paper) under batched access.

// Xeon returns the Intel Xeon E5-2680v4 (Broadwell, AVX2) preset.
func Xeon() Machine {
	return Machine{
		MachineName: "Xeon E5-2680v4", GHz: 2.4, Threads: 14,
		L1: 32 << 10, L2: 256 << 10, L3: 35 << 20,
		LatL1: 0.5, LatL2: 2.0, LatL3: 8.0, LatMem: 42,
		SIMDBits: 256, GatherEff: 1.0, CuckooSIMDPenalty: 1.0,
	}
}

// KNL returns the Intel Xeon Phi 7210 (Knights Landing, AVX-512, no L3,
// no AVX-512BW) preset.
func KNL() Machine {
	return Machine{
		MachineName: "Knights Landing 7210", GHz: 1.3, Threads: 128,
		L1: 64 << 10, L2: 1 << 20, L3: 0,
		LatL1: 0.7, LatL2: 3.0, LatL3: 0, LatMem: 55,
		SIMDBits: 512, GatherEff: 0.9, CuckooSIMDPenalty: 0.45,
	}
}

// SKX returns the Intel i9-7900X (Skylake-X, AVX-512) preset — the paper's
// default evaluation platform.
func SKX() Machine {
	return Machine{
		MachineName: "Skylake-X i9-7900X", GHz: 3.3, Threads: 10,
		L1: 32 << 10, L2: 1 << 20, L3: 14 << 20,
		LatL1: 0.5, LatL2: 2.0, LatL3: 8.0, LatMem: 40,
		SIMDBits: 512, GatherEff: 1.0, CuckooSIMDPenalty: 1.0,
	}
}

// Ryzen returns the AMD Ryzen Threadripper 1950X (Zen, AVX2 with slow
// gather) preset.
func Ryzen() Machine {
	return Machine{
		MachineName: "Ryzen 1950X", GHz: 3.4, Threads: 16,
		L1: 32 << 10, L2: 512 << 10, L3: 32 << 20,
		LatL1: 0.5, LatL2: 2.5, LatL3: 10.0, LatMem: 45,
		// §6.1: "barely any significant speedups on Ryzen (mostly less
		// than 50%)", attributed to the poorly performing gather.
		SIMDBits: 256, GatherEff: 0.18, CuckooSIMDPenalty: 1.0,
	}
}

// Presets returns the paper's four platforms in Table 1 order.
func Presets() []Machine {
	return []Machine{Xeon(), KNL(), SKX(), Ryzen()}
}

// HostMachine builds an analytic preset from the detected host, assuming
// AVX2-class SIMD at full gather efficiency. Used when no calibration data
// is available.
func HostMachine() Machine {
	info := platform.Detect()
	return Machine{
		MachineName: fmt.Sprintf("host(%s)", info.Name),
		GHz:         info.CyclesPerNs, Threads: info.Cores,
		L1: info.L1, L2: info.L2, L3: info.L3,
		LatL1: 0.5, LatL2: 2.0, LatL3: 8.0, LatMem: 42,
		SIMDBits: 256, GatherEff: 1.0, CuckooSIMDPenalty: 1.0,
	}
}
