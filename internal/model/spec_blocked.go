package model

// The blocked-Bloom family (register-blocked, plain blocked, sectorized,
// cache-sectorized — distinguished by geometry). Always enumerated: it is
// one of the two families of the paper's headline sweep.
var _ = registerSpec(kindSpec{
	kind:   KindBlockedBloom,
	name:   "bloom",
	letter: 'B',

	validate:  func(c Config) error { return c.Bloom.Validate() },
	render:    func(c Config) string { return c.Bloom.String() },
	fpr:       func(c Config, mBits, n uint64) float64 { return c.Bloom.FPR(mBits, n) },
	granule:   func(c Config) uint32 { return c.Bloom.BlockBits },
	usesMagic: func(c Config) bool { return c.Bloom.Magic },
	// Blocking reduces hash consumption from k·log2(m) to
	// k·log2(S) + z·log2(sectors/z) past the fixed 32-bit block address.
	hashBits: func(c Config) float64 {
		p := c.Bloom
		g := p.Sectors() / p.Z
		return 32 + float64(p.Z)*log2f(g) + float64(p.K)*log2f(p.SectorBits)
	},
	lines: func(Config) float64 { return 1 },
	cycles: func(m Machine, c Config, mBits uint64, simd bool) float64 {
		mem := m.memCost(float64(mBits) / 8)
		p := c.Bloom
		cpu := 2.0 + 0.06*c.HashBits() + 1.0*float64(p.WordsAccessed())
		cpu += m.modCost(p.Magic, 1)
		if simd {
			cpu = cpu/m.simdSpeedup(p.WordBits, 1) + 0.5
		}
		return cpu + mem
	},
	enumerate: EnumerateBloom,
})
