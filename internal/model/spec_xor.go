package model

// The immutable xor/fuse family (xor8, xor16 and their binary-fuse
// layouts). Gated behind ReadMostly — a build-once table absorbs writes
// only through a key-log rebuild — sized by key count
// (xor.Params.SizeForKeys), and carrying the rebuild surcharge that
// amortizes re-peeling over the lookup budget.
var _ = registerSpec(kindSpec{
	kind:   KindXor,
	name:   "xor",
	letter: 'X',

	validate: func(c Config) error { return c.Xor.Validate() },
	render:   func(c Config) string { return c.Xor.String() },
	fpr:      func(c Config, mBits, n uint64) float64 { return c.Xor.FPR() },
	// Peeling needs the layout's space factor (≈1.23 slots/key, ≈1.13
	// fuse); below that the build fails for any seed.
	feasible: func(c Config, mBits, n uint64) bool {
		return mBits >= c.Xor.SizeForKeys(n)
	},
	// One 64-bit mix yields all three slot addresses and the fingerprint.
	hashBits: func(Config) float64 { return 64 },
	// Three independent table thirds; the fuse layout's adjacent small
	// segments stay within one or two lines in practice — modelled as two.
	lines: func(c Config) float64 {
		if c.Xor.Fuse {
			return 2
		}
		return 3
	},
	cycles: func(m Machine, c Config, mBits uint64, simd bool) float64 {
		mem := m.memCost(float64(mBits) / 8)
		// One 64-bit mix, three multiply-shift reductions, three loads
		// and an xor-compare; the three loads are independent, so the
		// batched kernel pipelines them like a gather.
		cpu := 2.0 + 0.06*c.HashBits() + 1.5
		if simd {
			cpu = cpu/m.simdSpeedup(32, 1.0) + 0.5
		}
		return cpu + c.LinesAccessed()*mem
	},
	enumerate:      func(bool) []Config { return EnumerateXor() },
	gate:           func(h EnumHints) bool { return h.ReadMostly },
	sizeForKeys:    func(c Config, n uint64) uint64 { return c.Xor.SizeForKeys(n) },
	buildSurcharge: XorBuildSurcharge,
})
