package model

// The classic (unblocked) Bloom baseline. Gated behind FullSpace: the
// paper includes it in sweeps to demonstrate it is never
// performance-optimal.
var _ = registerSpec(kindSpec{
	kind:   KindClassicBloom,
	name:   "classic",
	letter: 'S', // the SIMD classic baseline, per the paper's naming

	validate:  func(c Config) error { return c.Classic.Validate() },
	render:    func(c Config) string { return c.Classic.String() },
	fpr:       func(c Config, mBits, n uint64) float64 { return c.Classic.FPR(mBits, n) },
	usesMagic: func(c Config) bool { return c.Classic.Magic },
	hashBits:  func(c Config) float64 { return float64(c.Classic.K) * 32 },
	lines:     func(c Config) float64 { return float64(c.Classic.K) },
	cycles: func(m Machine, c Config, mBits uint64, simd bool) float64 {
		mem := m.memCost(float64(mBits) / 8)
		// Negative probes short-circuit after ≈2 bit tests at typical
		// loads; each probe is an independent hash + line access. No SIMD
		// (§7: the refill scheme never paid off).
		probes := 2.0
		if k := float64(c.Classic.K); k < probes {
			probes = k
		}
		cpu := 2.0 + probes*(2.0+m.modCost(c.Classic.Magic, 1))
		return cpu + probes*mem
	},
	enumerate: func(bool) []Config { return EnumerateClassic() },
	gate:      func(h EnumHints) bool { return h.FullSpace },
})
