package model

import "perfilter/internal/fpr"

// The cuckoo-filter family. Always enumerated (the paper's other headline
// family); feasibility enforces the practical load-factor limit per
// bucket size (§4).
var _ = registerSpec(kindSpec{
	kind:   KindCuckoo,
	name:   "cuckoo",
	letter: 'C',

	validate: func(c Config) error { return c.Cuckoo.Validate() },
	render:   func(c Config) string { return c.Cuckoo.String() },
	fpr:      func(c Config, mBits, n uint64) float64 { return c.Cuckoo.FPR(mBits, n) },
	feasible: func(c Config, mBits, n uint64) bool {
		alpha := float64(c.Cuckoo.TagBits) * float64(n) / float64(mBits)
		return alpha <= fpr.CuckooMaxLoad(c.Cuckoo.BucketSize)
	},
	granule:   func(c Config) uint32 { return c.Cuckoo.TagBits * c.Cuckoo.BucketSize },
	usesMagic: func(c Config) bool { return c.Cuckoo.Magic },
	hashBits:  func(c Config) float64 { return 32 + float64(c.Cuckoo.TagBits) },
	lines:     func(c Config) float64 { return 2 },
	cycles: func(m Machine, c Config, mBits uint64, simd bool) float64 {
		mem := m.memCost(float64(mBits) / 8)
		p := c.Cuckoo
		// Tag hash + alternate index + two SWAR bucket compares.
		cpu := 3.0 + 0.06*c.HashBits() + 1.5
		cpu += m.modCost(p.Magic, 2) // two bucket indexes (Eq. 11)
		if simd {
			cpu = cpu/m.simdSpeedup(32, m.CuckooSIMDPenalty) + 1.0
		}
		return cpu + 2*mem
	},
	enumerate: EnumerateCuckoo,
})
