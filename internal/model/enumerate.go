package model

import (
	"perfilter/internal/blocked"
	"perfilter/internal/bloom"
	"perfilter/internal/cuckoo"
	"perfilter/internal/fpr"
	"perfilter/internal/xor"
)

// EnumHints describes the workload properties that gate which filter
// families a sweep or the advisor enumerates. Eligibility is derived from
// the kind-spec table: a family's spec_<family>.go file declares its gate,
// and every caller (Advise, the skyline CLI, the adaptive control loop)
// picks it up through EnumerableKinds and ConfigsFor.
type EnumHints struct {
	// FullSpace additionally enumerates the families the paper includes
	// but never finds optimal (the classic Bloom baseline).
	FullSpace bool
	// AllowExact additionally enumerates the exact hash set (f = 0,
	// ~75 bits/key, ignores the memory budget).
	AllowExact bool
	// ReadMostly declares the key set effectively static after build,
	// which makes the immutable xor/fuse family eligible: its build-once
	// tables can only absorb writes through a key-log rebuild, so the
	// advisor offers it only when writes are rare. The adaptive control
	// loop derives this from the tracked insert fraction.
	ReadMostly bool
}

// EnumerableKinds returns the filter families eligible under the hints,
// in Kind order. The two mutable families of the paper's headline sweep
// are always included.
func EnumerableKinds(h EnumHints) []Kind {
	kinds := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		sp := kindSpecs[k]
		if sp == nil {
			continue
		}
		if sp.gate == nil || sp.gate(h) {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// ConfigsFor returns the sweep configuration space for the given kinds
// (full selects the paper's complete parameter space where one exists).
// The exact kind contributes its single configuration; sweeps size it by
// key count.
func ConfigsFor(kinds []Kind, full bool) []Config {
	var out []Config
	for _, k := range kinds {
		if sp := specOf(k); sp != nil {
			out = append(out, sp.enumerate(full)...)
		}
	}
	return out
}

// EnumerateBloom returns blocked-Bloom configurations over the paper's §6
// sweep dimensions: k ∈ [1,16], B ∈ {32..512} bits (4–64 bytes),
// S ∈ {8..512} bits, W ∈ {32,64}, z ∈ {2,4,8}, both addressing modes.
// full=false curates the subset that the paper's skylines actually select
// from (word-sized sectors, z ∈ {1,2,4}, the headline block sizes), which
// keeps default sweeps fast while spanning every variant.
func EnumerateBloom(full bool) []Config {
	var out []Config
	add := func(p blocked.Params) {
		if p.Validate() == nil {
			out = append(out, Config{Kind: KindBlockedBloom, Bloom: p})
		}
	}
	words := []uint32{32, 64}
	blocks := []uint32{32, 64, 128, 256, 512}
	zs := []uint32{1, 2, 4, 8, 16}
	ks := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16}
	sectors := []uint32{8, 16, 32, 64, 128, 256, 512}
	if !full {
		words = []uint32{64}
		blocks = []uint32{32, 64, 256, 512}
		zs = []uint32{1, 2, 4, 8}
		ks = []uint32{2, 3, 4, 5, 6, 8, 12, 16}
		sectors = []uint32{32, 64, 512}
	}
	for _, magicMod := range []bool{false, true} {
		for _, w := range words {
			for _, b := range blocks {
				if b < w {
					continue
				}
				for _, s := range sectors {
					if s > b || b%s != 0 {
						continue
					}
					for _, z := range zs {
						for _, k := range ks {
							add(blocked.Params{
								WordBits: w, BlockBits: b, SectorBits: s,
								Z: z, K: k, Magic: magicMod,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// EnumerateCuckoo returns cuckoo configurations over the paper's sweep:
// l ∈ {4,8,12,16} bits, b ∈ {1,2,4}, both addressing modes. (The paper
// additionally implements l=32 but never finds it optimal; full=true
// includes it, and b=8.)
func EnumerateCuckoo(full bool) []Config {
	ls := []uint32{4, 8, 12, 16}
	bs := []uint32{1, 2, 4}
	if full {
		ls = append(ls, 32)
		bs = append(bs, 8)
	}
	var out []Config
	for _, magicMod := range []bool{false, true} {
		for _, l := range ls {
			for _, b := range bs {
				p := cuckoo.Params{TagBits: l, BucketSize: b, Magic: magicMod}
				if p.Validate() == nil {
					out = append(out, Config{Kind: KindCuckoo, Cuckoo: p})
				}
			}
		}
	}
	return out
}

// EnumerateClassic returns classic-Bloom baselines (k up to fpr.MaxK).
// The paper includes the SIMD classic filter of Polychroniou & Ross in its
// sweeps and reports it is never performance-optimal; these entries let the
// skylines demonstrate the same.
func EnumerateClassic() []Config {
	var out []Config
	for _, magicMod := range []bool{false, true} {
		for k := uint32(2); k <= fpr.MaxK; k += 2 {
			out = append(out, Config{
				Kind:    KindClassicBloom,
				Classic: bloom.Params{K: k, Magic: magicMod},
			})
		}
	}
	return out
}

// EnumerateXor returns the xor/fuse family: fingerprint widths 8 and 16
// in both the classic three-block and the segmented binary-fuse layouts.
// The family has no addressing-mode or geometry sweep — its size is a
// function of the key count (xor.Params.SizeForKeys), so four
// configurations span it.
func EnumerateXor() []Config {
	var out []Config
	for _, fuse := range []bool{false, true} {
		for _, w := range []uint32{8, 16} {
			out = append(out, Config{
				Kind: KindXor,
				Xor:  xor.Params{FingerprintBits: w, Fuse: fuse},
			})
		}
	}
	return out
}

// DefaultConfigs returns the configuration space for skyline sweeps:
// blocked Bloom + cuckoo (+ classic baselines when full).
func DefaultConfigs(full bool) []Config {
	out := EnumerateBloom(full)
	out = append(out, EnumerateCuckoo(full)...)
	if full {
		out = append(out, EnumerateClassic()...)
	}
	return out
}
