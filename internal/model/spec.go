package model

import "fmt"

// kindSpec is one filter family's model-side registration: every per-kind
// behaviour the analytic layer needs — validation, rendering, the FPR and
// feasibility models, sizing rules, the cost function, the sweep
// enumeration and its workload gate — gathered in one immutable record.
// The Config methods in config.go, the Machine cost model in cost.go and
// the enumeration in enumerate.go are all table lookups over these specs,
// so adding a family is one new spec_<family>.go file and a Kind constant;
// nothing else in the package dispatches on Kind.
//
// Registration is a plain package-level expression in each spec file
// (`var _ = registerSpec(...)`): linking the package registers every
// family, with no init() functions and no blank-import side effects in
// user code paths. NumKinds() cannot drift from the table — the numKinds
// sentinel sizes it, and TestEveryKindRegistered plus the registry
// conformance suite assert every slot is filled.
type kindSpec struct {
	// kind is the slot this spec fills; exactly one spec per Kind.
	kind Kind
	// name is the canonical kind string (Kind.String, server kind names).
	name string
	// letter is the one-character type-map legend (skyline rendering).
	letter byte

	// validate checks the family's parameters embedded in c.
	validate func(c Config) error
	// render prints the configuration in the paper's notation.
	render func(c Config) string
	// fpr is the analytic false-positive model at size mBits with n keys.
	fpr func(c Config, mBits, n uint64) float64
	// feasible reports whether a filter of mBits holding n keys can be
	// built at all (nil: always buildable).
	feasible func(c Config, mBits, n uint64) bool
	// granule is the sizing granule in bits (nil: 1).
	granule func(c Config) uint32
	// usesMagic reports magic-modulo addressing (nil: never).
	usesMagic func(c Config) bool
	// hashBits is the hash-consumption model of §3.1.
	hashBits func(c Config) float64
	// lines is the cache-lines-per-lookup model.
	lines func(c Config) float64
	// cycles is the family's term of the Machine cost model (cost.go).
	cycles func(m Machine, c Config, mBits uint64, simd bool) float64
	// enumerate yields the family's sweep configuration space (full
	// selects the paper's complete space where one exists).
	enumerate func(full bool) []Config
	// gate reports whether the hints admit the family into a sweep
	// (nil: always enumerated).
	gate func(h EnumHints) bool

	// sizeForKeys, when non-nil, declares the family sized by key count
	// rather than by a bits budget (exact, xor): sweeps evaluate one point
	// per n and ActualBits applies no rounding.
	sizeForKeys func(c Config, n uint64) uint64
	// budgetExempt marks a sized-by-keys family that ignores the
	// bits-per-key budget entirely (the exact set, capped by
	// SweepOpts.MaxExactBytes instead).
	budgetExempt bool
	// buildSurcharge, when non-nil, marks the family immutable: a
	// build-once structure pays this extra ρ per lookup to amortize its
	// reconstruction from a key log (xor/fuse; see XorBuildSurcharge).
	buildSurcharge func(tw float64) float64
}

// kindSpecs is the registry, indexed by Kind. The numKinds sentinel sizes
// it, so a spec for an out-of-range kind cannot register.
var kindSpecs [numKinds]*kindSpec

// registerSpec installs a family's spec at package initialization; it
// panics on a duplicate or out-of-range kind because either is a
// programming error a test run must surface immediately.
func registerSpec(s kindSpec) struct{} {
	if s.kind >= numKinds {
		panic(fmt.Sprintf("model: spec for out-of-range kind %d", s.kind))
	}
	if kindSpecs[s.kind] != nil {
		panic(fmt.Sprintf("model: duplicate spec for kind %s", s.kind))
	}
	c := s
	kindSpecs[s.kind] = &c
	return struct{}{}
}

// specOf returns the spec for k, or nil for an invalid/unregistered kind.
// Callers fall back to the pre-registry default behaviour on nil (e.g.
// FPR 0, granule 1), so corrupt kinds degrade exactly as the hand-written
// switches did.
func specOf(k Kind) *kindSpec {
	if k < numKinds {
		return kindSpecs[k]
	}
	return nil
}

// SizedByKeys reports whether the family's footprint is a function of the
// key count rather than a bits budget (exact, xor/fuse) — such kinds get
// one sweep point per n and no size rounding.
func SizedByKeys(k Kind) bool {
	sp := specOf(k)
	return sp != nil && sp.sizeForKeys != nil
}

// KindMutable reports whether the family absorbs inserts in place. An
// immutable (build-once) family pays a rebuild surcharge per lookup and
// forces the adaptive control loop back to a mutable family when writes
// resume; see BuildSurchargeFor.
func KindMutable(k Kind) bool {
	sp := specOf(k)
	return sp == nil || sp.buildSurcharge == nil
}

// BuildSurchargeFor returns the per-lookup rebuild surcharge ρ carries
// for kind k at work saving tw — zero for mutable families, the
// amortized construction cost for immutable ones.
func BuildSurchargeFor(k Kind, tw float64) float64 {
	if sp := specOf(k); sp != nil && sp.buildSurcharge != nil {
		return sp.buildSurcharge(tw)
	}
	return 0
}
