package model

import (
	"math"
	"strings"
	"testing"

	"perfilter/internal/blocked"
	"perfilter/internal/cuckoo"
)

func regBlocked(k uint32) Config {
	return Config{Kind: KindBlockedBloom, Bloom: blocked.RegisterBlockedParams(32, k, false)}
}

func cacheSect() Config {
	return Config{Kind: KindBlockedBloom, Bloom: blocked.CacheSectorizedParams(64, 512, 2, 8, false)}
}

func cuckoo16x2(magic bool) Config {
	return Config{Kind: KindCuckoo, Cuckoo: cuckoo.Params{TagBits: 16, BucketSize: 2, Magic: magic}}
}

func TestOverheadEq1(t *testing.T) {
	if Overhead(3, 0.01, 1000) != 13 {
		t.Fatal("ρ = tl + f·tw broken")
	}
}

func TestBeneficial(t *testing.T) {
	// ρ=10, σ=0.5, tw=100: (1−σ)·tw = 50 > 10 → beneficial.
	if !Beneficial(10, 0.5, 100) {
		t.Fatal("expected beneficial")
	}
	// σ=1 (no negatives): never beneficial.
	if Beneficial(0.1, 1.0, 1e9) {
		t.Fatal("σ=1 must never be beneficial")
	}
}

func TestWorkPerTuple(t *testing.T) {
	// σ′ = σ + f = 0.6; tw′ = 0.4·2 + 0.6·(3+100) = 62.6.
	got := WorkPerTuple(2, 3, 100, 0.5, 0.1)
	if math.Abs(got-62.6) > 1e-9 {
		t.Fatalf("tw′ = %v, want 62.6", got)
	}
	// σ′ clamps at 1.
	got = WorkPerTuple(2, 3, 100, 0.95, 0.2)
	if math.Abs(got-103) > 1e-9 {
		t.Fatalf("clamped tw′ = %v, want 103", got)
	}
}

func TestActualBitsRounding(t *testing.T) {
	c := cacheSect() // pow2, 512-bit blocks
	if got := c.ActualBits(1000 * 512); got != 1024*512 {
		t.Fatalf("pow2 rounding: %d", got)
	}
	cm := c
	cm.Bloom.Magic = true
	desired := uint64(1000 * 512)
	got := cm.ActualBits(desired)
	if got < desired || got > uint64(float64(desired)*1.001) {
		t.Fatalf("magic rounding: %d", got)
	}
	ck := cuckoo16x2(false) // granule = 32 bits
	if g := ck.GranuleBits(); g != 32 {
		t.Fatalf("cuckoo granule %d", g)
	}
}

func TestExactBits(t *testing.T) {
	m := ExactBits(1000)
	// 1000/0.85 ≈ 1177 → 2048 slots → 2048·64 bits.
	if m != 2048*64 {
		t.Fatalf("ExactBits(1000) = %d", m)
	}
}

func TestCostRegisterBlockedCheapest(t *testing.T) {
	// §6: register-blocked filters are the best choice for very low tw —
	// they must have the lowest lookup cost at cache-resident sizes.
	m := SKX()
	small := uint64(16 << 13) // 16 KiB in bits
	rb := m.LookupCycles(regBlocked(4), small)
	cs := m.LookupCycles(cacheSect(), small)
	ck := m.LookupCycles(cuckoo16x2(false), small)
	if !(rb < cs && cs < ck) {
		t.Fatalf("ordering violated: rb=%.2f cs=%.2f cuckoo=%.2f", rb, cs, ck)
	}
}

func TestCostCuckooPaysTwoLines(t *testing.T) {
	// Fig. 14: at DRAM sizes the cuckoo's two cache-line accesses roughly
	// double its cost relative to one-line blocked Bloom filters.
	m := SKX()
	big := uint64(256) << 23 // 256 MiB in bits
	cs := m.LookupCycles(cacheSect(), big)
	ck := m.LookupCycles(cuckoo16x2(false), big)
	ratio := ck / cs
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("DRAM cuckoo/bloom ratio %.2f, want ≈2", ratio)
	}
}

func TestCostGrowsWithSize(t *testing.T) {
	m := SKX()
	cfg := cacheSect()
	prev := 0.0
	for _, bits := range []uint64{1 << 15, 1 << 20, 1 << 25, 1 << 30, 1 << 33} {
		c := m.LookupCycles(cfg, bits)
		if c < prev {
			t.Fatalf("cost decreased at %d bits: %v < %v", bits, c, prev)
		}
		prev = c
	}
}

func TestSIMDSpeedupPlatformOrdering(t *testing.T) {
	// Fig. 15: AVX-512 platforms see the largest batch speedups; Ryzen sees
	// almost none (gather-bound).
	cfg := regBlocked(4)
	small := uint64(16 << 13)
	speedup := func(m Machine) float64 {
		return m.ScalarLookupCycles(cfg, small) / m.LookupCycles(cfg, small)
	}
	skx, xeon, ryzen := speedup(SKX()), speedup(Xeon()), speedup(Ryzen())
	if !(skx > xeon && xeon > ryzen) {
		t.Fatalf("speedups skx=%.1f xeon=%.1f ryzen=%.1f violate platform order",
			skx, xeon, ryzen)
	}
	if ryzen > 2.0 {
		t.Fatalf("Ryzen speedup %.1f; paper reports <1.5×", ryzen)
	}
	if skx < 4 {
		t.Fatalf("SKX speedup %.1f implausibly low", skx)
	}
}

func TestKNLCuckooPenalty(t *testing.T) {
	// §6.1: KNL's cuckoo suffers from mixing AVX2/AVX-512 (no AVX-512BW);
	// its cuckoo speedup must trail its Bloom speedup by a wide margin.
	m := KNL()
	small := uint64(16 << 13)
	bloomSpeedup := m.ScalarLookupCycles(regBlocked(4), small) / m.LookupCycles(regBlocked(4), small)
	cuckooSpeedup := m.ScalarLookupCycles(cuckoo16x2(false), small) / m.LookupCycles(cuckoo16x2(false), small)
	if cuckooSpeedup > bloomSpeedup*0.75 {
		t.Fatalf("KNL cuckoo speedup %.1f not penalized vs bloom %.1f",
			cuckooSpeedup, bloomSpeedup)
	}
}

func TestMagicCostsMoreThanPow2(t *testing.T) {
	m := SKX()
	small := uint64(1 << 20)
	if m.LookupCycles(cuckoo16x2(true), small) <= m.LookupCycles(cuckoo16x2(false), small) {
		t.Fatal("magic modulo should cost more than pow2")
	}
}

func TestEnumerationsValid(t *testing.T) {
	for _, full := range []bool{false, true} {
		configs := DefaultConfigs(full)
		if len(configs) == 0 {
			t.Fatal("empty enumeration")
		}
		for _, c := range configs {
			if err := c.Validate(); err != nil {
				t.Fatalf("invalid enumerated config %s: %v", c, err)
			}
		}
	}
	small := len(DefaultConfigs(false))
	big := len(DefaultConfigs(true))
	if big <= small {
		t.Fatalf("full enumeration (%d) not larger than default (%d)", big, small)
	}
	if small < 40 {
		t.Fatalf("default enumeration suspiciously small: %d", small)
	}
	t.Logf("default configs: %d, full configs: %d", small, big)
}

func TestEnumerationCoversAllVariants(t *testing.T) {
	variants := map[blocked.Variant]bool{}
	for _, c := range EnumerateBloom(false) {
		variants[c.Bloom.Variant()] = true
	}
	for _, v := range []blocked.Variant{
		blocked.RegisterBlocked, blocked.PlainBlocked,
		blocked.Sectorized, blocked.CacheSectorized,
	} {
		if !variants[v] {
			t.Fatalf("default enumeration missing variant %v", v)
		}
	}
}

// computeTestSkyline runs a small sweep shared by the skyline tests.
func computeTestSkyline(t *testing.T) *Skyline {
	t.Helper()
	grid := DefaultGrid(false)
	sky := ComputeSkyline(grid, DefaultConfigs(false), SKX(), DefaultSweepOpts())
	if len(sky.Cells) != len(grid.Ns) {
		t.Fatal("cell grid shape mismatch")
	}
	return sky
}

func TestSkylineBloomWinsHighThroughput(t *testing.T) {
	// The paper's headline: at low tw (high throughput), blocked Bloom
	// wins everywhere.
	sky := computeTestSkyline(t)
	for ni := range sky.Grid.Ns {
		kind, best := sky.Cells[ni][0].Winner(KindBlockedBloom, KindCuckoo) // tw = 2^4
		if math.IsInf(best.Rho, 1) {
			t.Fatalf("n index %d: no feasible config", ni)
		}
		if kind != KindBlockedBloom {
			t.Fatalf("n index %d: %v wins at tw=16, expected bloom", ni, kind)
		}
	}
}

func TestSkylineCuckooWinsLowThroughput(t *testing.T) {
	// At the largest tw (2^31) the precision advantage dominates: Cuckoo
	// must win for small and mid problem sizes.
	sky := computeTestSkyline(t)
	last := len(sky.Grid.Tws) - 1
	cuckooWins := 0
	for ni := range sky.Grid.Ns {
		kind, _ := sky.Cells[ni][last].Winner(KindBlockedBloom, KindCuckoo)
		if kind == KindCuckoo {
			cuckooWins++
		}
	}
	if cuckooWins < len(sky.Grid.Ns)/2 {
		t.Fatalf("cuckoo wins only %d/%d rows at tw=2^31", cuckooWins, len(sky.Grid.Ns))
	}
}

func TestSkylineCrossoverGrowsWithN(t *testing.T) {
	// §6: "the tw-range in which the Bloom filters dominate increases with
	// the problem size" — larger filters make the cuckoo's cache misses
	// costlier. Compare the crossover at small vs large n.
	sky := computeTestSkyline(t)
	cross := sky.CrossoverTw()
	first, last := cross[0], cross[len(cross)-1]
	if math.IsInf(first, 1) {
		t.Fatal("no crossover at smallest n")
	}
	if !(last >= first) {
		t.Fatalf("crossover shrank with n: %g -> %g", first, last)
	}
	if last < first*4 {
		t.Fatalf("crossover barely grew: %g -> %g (paper: ~10^3 to ~10^5)", first, last)
	}
}

func TestSkylineClassicNeverOptimal(t *testing.T) {
	// §2: "A SIMD version of classic Bloom filters was implemented, but it
	// was never performance optimal."
	grid := DefaultGrid(false)
	configs := append(DefaultConfigs(false), EnumerateClassic()...)
	sky := ComputeSkyline(grid, configs, SKX(), DefaultSweepOpts())
	for ni := range grid.Ns {
		for ti := range grid.Tws {
			kind, best := sky.Cells[ni][ti].Winner(
				KindBlockedBloom, KindClassicBloom, KindCuckoo)
			if kind == KindClassicBloom && !math.IsInf(best.Rho, 1) {
				t.Fatalf("classic Bloom optimal at n=%d tw=%g",
					grid.Ns[ni], grid.Tws[ti])
			}
		}
	}
}

func TestSkylineBudgetRespected(t *testing.T) {
	sky := computeTestSkyline(t)
	opts := DefaultSweepOpts()
	for ni, n := range sky.Grid.Ns {
		for ti := range sky.Grid.Tws {
			for kind, b := range sky.Cells[ni][ti].ByKind {
				if math.IsInf(b.Rho, 1) || Kind(kind) == KindExact {
					continue
				}
				bpk := float64(b.MBits) / float64(n)
				if bpk > opts.MaxBitsPerKey*1.001 || bpk < opts.MinBitsPerKey*0.99 {
					t.Fatalf("winner outside budget: %.2f bits/key (%s)", bpk, b.Config)
				}
			}
		}
	}
}

func TestSkylineExactRegion(t *testing.T) {
	// Fig. 1: with an exact structure allowed (within a footprint cap),
	// it wins the small-n / large-tw corner and never the low-tw corner.
	grid := DefaultGrid(false)
	opts := DefaultSweepOpts()
	opts.MaxExactBytes = 14 << 20 // L3-resident exact structures only
	sky := ComputeSkyline(grid, DefaultConfigs(false), SKX(), opts)
	kind, _ := sky.Cells[0][len(grid.Tws)-1].Winner()
	if kind != KindExact {
		t.Fatalf("small-n/high-tw corner won by %v, expected exact", kind)
	}
	kind, _ = sky.Cells[0][0].Winner()
	if kind == KindExact {
		t.Fatal("exact structure won the high-throughput corner")
	}
	// Large n: exact structure exceeds the cap and must be infeasible.
	lastN := len(grid.Ns) - 1
	if !math.IsInf(sky.Cells[lastN][0].ByKind[KindExact].Rho, 1) {
		t.Fatal("oversized exact structure was not excluded")
	}
}

func TestSkylineSpeedupRange(t *testing.T) {
	// Fig. 11a: speedups of the winning family reach >1.5× somewhere and
	// stay finite.
	sky := computeTestSkyline(t)
	maxSpeedup := 0.0
	for ni := range sky.Grid.Ns {
		for ti := range sky.Grid.Tws {
			s := sky.Cells[ni][ti].Speedup()
			if s < 1 {
				t.Fatalf("speedup %v < 1", s)
			}
			if s > maxSpeedup && !math.IsInf(s, 1) {
				maxSpeedup = s
			}
		}
	}
	if maxSpeedup < 1.5 {
		t.Fatalf("max speedup %.2f; paper reports up to 3-5×", maxSpeedup)
	}
}

func TestRenderTypeMap(t *testing.T) {
	sky := computeTestSkyline(t)
	out := sky.RenderTypeMap()
	if !strings.Contains(out, "B") || !strings.Contains(out, "C") {
		t.Fatalf("type map missing regions:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(sky.Grid.Ns)+1 {
		t.Fatalf("map has %d lines, want %d", lines, len(sky.Grid.Ns)+1)
	}
}

func TestGridShapes(t *testing.T) {
	g := DefaultGrid(false)
	if len(g.Ns) != 18 || len(g.Tws) != 28 {
		t.Fatalf("default grid %dx%d, want 18x28", len(g.Ns), len(g.Tws))
	}
	gf := DefaultGrid(true)
	if len(gf.Ns) != 18*16 {
		t.Fatalf("full grid has %d n-values, want 288", len(gf.Ns))
	}
	if g.Ns[0] != 1024 {
		t.Fatalf("grid starts at %d, want 2^10", g.Ns[0])
	}
	if g.Tws[0] != 16 || g.Tws[27] != math.Pow(2, 31) {
		t.Fatal("tw endpoints wrong")
	}
}

func TestPresetsTable1(t *testing.T) {
	ps := Presets()
	if len(ps) != 4 {
		t.Fatalf("%d presets, want 4", len(ps))
	}
	knl := ps[1]
	if knl.L3 != 0 {
		t.Fatal("KNL must have no L3 (Table 1)")
	}
	if ps[2].SIMDBits != 512 || ps[0].SIMDBits != 256 {
		t.Fatal("SIMD widths disagree with Table 1")
	}
	for _, m := range ps {
		if m.LookupCycles(regBlocked(4), 1<<15) <= 0 {
			t.Fatalf("%s: non-positive cost", m.Name())
		}
	}
}

func TestHostMachine(t *testing.T) {
	m := HostMachine()
	if m.L1 == 0 || m.Threads < 1 {
		t.Fatal("host machine not populated")
	}
	if c := m.LookupCycles(cacheSect(), 1<<20); c <= 0 {
		t.Fatal("host cost model broken")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBlockedBloom: "bloom", KindClassicBloom: "classic",
		KindCuckoo: "cuckoo", KindExact: "exact", KindXor: "xor",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

// TestEveryKindRegistered is the family-registry regression test: every
// Kind below numKinds must have a String() name, at least one enumerable
// configuration under some hint set, and a positive cost-model entry —
// so a new family cannot be added to the enum without wiring it through
// the registration seams.
func TestEveryKindRegistered(t *testing.T) {
	allHints := EnumHints{FullSpace: true, AllowExact: true, ReadMostly: true}
	kinds := EnumerableKinds(allHints)
	if len(kinds) != NumKinds() {
		t.Fatalf("EnumerableKinds(all) returned %d kinds, registry has %d", len(kinds), NumKinds())
	}
	byKind := make(map[Kind][]Config)
	for _, cfg := range ConfigsFor(kinds, true) {
		byKind[cfg.Kind] = append(byKind[cfg.Kind], cfg)
	}
	m := SKX()
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "invalid" {
			t.Fatalf("Kind(%d) has no String() name", k)
		}
		cfgs := byKind[k]
		if len(cfgs) == 0 {
			t.Fatalf("kind %s has no enumerable configuration", k)
		}
		for _, cfg := range cfgs[:1] {
			if err := cfg.Validate(); err != nil {
				t.Fatalf("kind %s: enumerated config invalid: %v", k, err)
			}
			if tl := m.LookupCycles(cfg, 1<<20); tl <= 0 {
				t.Fatalf("kind %s has no cost-model entry (tl = %v)", k, tl)
			}
		}
	}
}

// TestSkylineXorRegion: with the xor family enabled (a read-mostly
// workload), the extended type map must contain a non-empty xor region —
// at high tw the family's 2^-w precision at ~1.23·w bits/key beats both
// mutable families once the rebuild surcharge has amortized away.
func TestSkylineXorRegion(t *testing.T) {
	grid := DefaultGrid(false)
	kinds := EnumerableKinds(EnumHints{ReadMostly: true})
	sky := ComputeSkyline(grid, ConfigsFor(kinds, false), SKX(), DefaultSweepOpts())
	xorCells := 0
	for ni := range sky.Cells {
		for ti := range sky.Cells[ni] {
			kind, best := sky.Cells[ni][ti].Winner(kinds...)
			if kind == KindXor && !math.IsInf(best.Rho, 1) {
				xorCells++
				if best.Config.Kind != KindXor || best.MBits == 0 {
					t.Fatalf("xor cell carries wrong best: %+v", best)
				}
			}
		}
	}
	if xorCells == 0 {
		t.Fatal("no cell won by the xor family; the skyline's xor region is empty")
	}
	m := sky.RenderTypeMapKinds(kinds...)
	if !strings.Contains(m, "X") {
		t.Fatalf("extended type map has no X region:\n%s", m)
	}
	// The build surcharge must price xor out of the lowest-tw column:
	// at tw = 2^4 one rebuild per ~16 probes/key dominates ρ.
	for ni := range sky.Cells {
		if kind, _ := sky.Cells[ni][0].Winner(kinds...); kind == KindXor {
			t.Fatal("xor won a tw=2^4 cell; the rebuild surcharge is not being applied")
		}
	}
}

func BenchmarkSkylineDefault(b *testing.B) {
	grid := DefaultGrid(false)
	configs := DefaultConfigs(false)
	cost := SKX()
	opts := DefaultSweepOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeSkyline(grid, configs, cost, opts)
	}
}
