// filter-bench runs the measured experiments on the host: Figure 5
// (sectorization throughput), Figure 9 (magic vs power-of-two sizing),
// Figure 14 (lookup scaling across filter sizes), Figure 15 (batch-kernel
// speedups), Figure 3 (the overhead curve) and the bucket-size ablation.
//
// -parallel N switches to the concurrency experiment beyond the paper:
// aggregate insert and batched-probe throughput (keys/s) across 1..N
// goroutines, sharded filter vs the single-mutex baseline.
//
// -adaptive runs the live-crossover scenario: an adaptive filter advised
// for a small n at -tw starts as Cuckoo and, as inserted keys grow past
// the modeled Bloom/Cuckoo boundary, the control loop migrates it to
// Bloom losslessly — the paper's headline result as a runtime event. The
// JSON summary records the decision trace and the flip point.
//
// -json FILE additionally writes the run as a machine-readable
// BENCH_*.json summary (series + headline-config FPR), which CI archives
// as an artifact so throughput trajectories survive across commits.
//
// Usage:
//
//	filter-bench [-fig 3|5|9|14|15|<family>|ablation] [-quick] [-size MiB] [-json BENCH_fig14.json]
//
// Family tokens (today: xor) come from the filter registry: a -fig value
// naming a registered constructible kind with a runner in familyFigs runs
// that family's measured experiment.
//
//	filter-bench -parallel N [-shards P] [-quick] [-size MiB] [-json BENCH_parallel.json]
//	filter-bench -adaptive [-tw cycles] [-quick] [-json BENCH_adaptive.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfilter"
	"perfilter/internal/bench"
	"perfilter/internal/blocked"
	"perfilter/internal/core"
	"perfilter/internal/model"
)

// familyFigs maps a filter-family name to its measured family experiment.
// The accepted tokens are the intersection of this map with the filter
// registry's constructible kinds, so a family renamed or removed from the
// registry drops out of the -fig vocabulary without touching this file,
// and registering a new family with a runner here adds its token.
var familyFigs = map[string]struct {
	header string
	run    func(bench.Effort) []bench.Series
}{
	"xor": {
		header: "# Xor/fuse family: build (solve) throughput and probe cost vs the Bloom baseline",
		run:    bench.XorThroughput,
	},
}

// figTokens enumerates the accepted -fig values: the numbered figures,
// the registry-derived family experiments, and the ablation.
func figTokens() []string {
	toks := []string{"3", "5", "9", "14", "15", "kernels"}
	for _, name := range perfilter.KindNames() {
		if _, ok := familyFigs[name]; ok {
			toks = append(toks, name)
		}
	}
	return append(toks, "ablation")
}

// familyFig resolves a -fig token to a family experiment, requiring the
// token to name a registered constructible kind.
func familyFig(tok string) (header string, run func(bench.Effort) []bench.Series, ok bool) {
	if _, registered := perfilter.KindByName(tok); !registered || tok == "" {
		return "", nil, false
	}
	e, ok := familyFigs[tok]
	return e.header, e.run, ok
}

func main() {
	fig := flag.String("fig", "14", "experiment: "+strings.Join(figTokens(), ", "))
	quick := flag.Bool("quick", false, "short measurements (noisier)")
	sizeMiB := flag.Uint64("size", 256, "large-filter size in MiB (figures 5, 9 and -parallel)")
	parallel := flag.Int("parallel", 0, "run the parallel-throughput experiment across 1..N goroutines")
	shards := flag.Int("shards", 0, "shard count for -parallel (0 = 4 lock stripes per goroutine)")
	adaptiveRun := flag.Bool("adaptive", false, "run the live Bloom↔Cuckoo crossover scenario (adaptive re-optimization)")
	tw := flag.Float64("tw", 0, "work saved per pruned probe for -adaptive, in cycles (0 = 10000, or 400 with -quick)")
	jsonPath := flag.String("json", "", "also write a BENCH_*.json throughput/FPR summary to this path")
	baseline := flag.String("baseline", "", "compare this run's series against a prior BENCH_*.json; exit non-zero on a large throughput regression")
	flag.Parse()

	eff := bench.FullEffort()
	if *quick {
		eff = bench.QuickEffort()
	}
	bigBits := *sizeMiB << 23 // MiB → bits

	var series []bench.Series
	var fig15 []bench.Fig15Row
	var adaptiveSummary *bench.AdaptiveSummary
	experiment := "fig" + *fig

	if *adaptiveRun {
		experiment = "adaptive"
		twVal := *tw
		if twVal == 0 {
			twVal = 10_000
			if *quick {
				twVal = 400
			}
		}
		fmt.Printf("# Adaptive re-optimization: live Bloom↔Cuckoo crossover at tw=%g\n", twVal)
		var err error
		series, adaptiveSummary, err = runAdaptive(twVal, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "filter-bench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.Format(series))
	} else if *parallel > 0 {
		experiment = "parallel"
		counts := bench.GoroutineCounts(*parallel)
		fmt.Printf("# Parallel insert throughput, %d MiB filter, sharded vs single mutex\n", *sizeMiB)
		ins := bench.ParallelInsert(counts, *shards, bigBits, eff)
		fmt.Print(bench.Format(ins))
		fmt.Printf("# Parallel batched-probe throughput (batch %d)\n", core.DefaultBatch)
		prb := bench.ParallelProbe(counts, *shards, bigBits, eff)
		fmt.Print(bench.Format(prb))
		series = append(append(series, ins...), prb...)
	} else {
		switch *fig {
		case "3":
			cfg := model.Config{Kind: model.KindBlockedBloom,
				Bloom: blocked.CacheSectorizedParams(64, 512, 2, 8, true)}
			fmt.Println("# Figure 3: overhead vs filter size (analytic, SKX model)")
			series = []bench.Series{
				bench.Fig3OverheadCurve(cfg, 1<<22, 1024, model.SKX()),
			}
			fmt.Print(bench.Format(series))
		case "5":
			fmt.Println("# Figure 5a: 16 KiB (cache-resident) filter, k=16")
			a := bench.Fig5Sectorization(16<<10*8, 16, eff)
			fmt.Print(bench.Format(a))
			fmt.Printf("# Figure 5b: %d MiB (DRAM-resident) filter, k=16\n", *sizeMiB)
			b := bench.Fig5Sectorization(bigBits, 16, eff)
			fmt.Print(bench.Format(b))
			series = append(append(series, a...), b...)
		case "9":
			fmt.Println("# Figure 9: magic vs pow2 lookup cost across sizes (cache-sectorized k=8 B=512 z=2)")
			series = bench.Fig9MagicModulo(bigBits, eff)
			fmt.Print(bench.Format(series))
		case "14":
			fmt.Println("# Figure 14: cycles per lookup vs filter size")
			series = bench.Fig14LookupScaling(1<<16, bigBits, eff)
			fmt.Print(bench.Format(series))
		case "15":
			fmt.Println("# Figure 15: batch-kernel speedups (host; see EXPERIMENTS.md for the SIMD gap)")
			fig15 = bench.Fig15BatchSpeedup(eff)
			fmt.Print(bench.FormatFig15(fig15))
		case "kernels":
			fmt.Println("# Hot-path kernels: sharded batched probe, persistent worker pool on vs off")
			pool := bench.KernelsPool(*shards, bigBits, eff)
			fmt.Print(bench.Format(pool))
			fmt.Println("# Cache-sectorized probe, aligned vs misaligned word storage (x = log2 filter bits)")
			align := bench.KernelsAlignment(eff)
			fmt.Print(bench.Format(align))
			series = append(append(series, pool...), align...)
		case "ablation":
			fmt.Println("# Ablation: cuckoo bucket size at tw=2^14 (the b=2 finding, §6)")
			series = []bench.Series{bench.AblationCuckooBucket(1<<14, eff)}
			fmt.Print(bench.Format(series))
		default:
			header, run, ok := familyFig(*fig)
			if !ok {
				fmt.Fprintf(os.Stderr, "filter-bench: unknown experiment %q (accepted: %s)\n",
					*fig, strings.Join(figTokens(), ", "))
				os.Exit(1)
			}
			fmt.Println(header)
			series = run(eff)
			fmt.Print(bench.Format(series))
		}
	}

	if *jsonPath != "" {
		summary := bench.NewSummary(experiment, *quick, *sizeMiB, series)
		summary.Fig15 = fig15
		summary.Adaptive = adaptiveSummary
		if err := summary.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "filter-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("# summary written to %s\n", *jsonPath)
	}

	if *baseline != "" {
		report, err := bench.CompareBaseline(*baseline, series, bench.RegressionTolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "filter-bench:", err)
			os.Exit(1)
		}
		fmt.Print(report.Format())
		if report.Regressed() {
			fmt.Fprintln(os.Stderr, "filter-bench: throughput regression against", *baseline)
			os.Exit(1)
		}
	}
}
