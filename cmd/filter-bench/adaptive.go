package main

import (
	"fmt"
	"time"

	"perfilter"
	"perfilter/internal/bench"
	"perfilter/internal/rng"
)

// runAdaptive is the -adaptive scenario: the paper's headline crossover —
// Bloom overtakes Cuckoo as the problem grows — happening *live*. An
// adaptive filter is built from the advisor's pick for a small n at the
// given tw (Cuckoo, in the crossover regime), then keys stream in until n
// passes twice the modeled Bloom/Cuckoo boundary. The control loop
// (periodic Reoptimize plus the ErrFull emergency path) must carry the
// filter through size migrations and the kind flip without losing a key;
// the emitted series track the deployed configuration's modeled overhead
// ρ against the re-advised optimum, plus measured probe throughput, as
// functions of n.
func runAdaptive(tw float64, quick bool) ([]bench.Series, *bench.AdaptiveSummary, error) {
	start := uint64(1) << 14
	if quick {
		start = 1 << 12
	}
	probeWl := perfilter.Workload{N: start, Tw: tw, BitsPerKeyBudget: 16}

	// The modeled crossover: the smallest probed n where static Advise
	// flips to Bloom.
	var modeled uint64
	for n := start; n <= 1<<24; n *= 2 {
		w := probeWl
		w.N = n
		adv, err := perfilter.Advise(w)
		if err != nil {
			return nil, nil, err
		}
		if adv.Config.Kind == perfilter.BlockedBloom {
			modeled = n
			break
		}
	}
	if modeled == 0 {
		return nil, nil, fmt.Errorf("no modeled Bloom/Cuckoo crossover below 2^24 at tw=%g — pick a tw in the crossover regime (e.g. 400..10000)", tw)
	}

	a, advice, err := perfilter.NewAdaptiveAdvised(perfilter.AdaptiveOptions{
		Workload: probeWl, Shards: 1, MaxDecisions: 4096,
	})
	if err != nil {
		return nil, nil, err
	}
	summary := &bench.AdaptiveSummary{
		Tw: tw, StartN: start, StartKind: advice.Config.Kind.String(),
		ModeledCrossover: modeled,
	}
	fmt.Printf("# start: n=%d advised %s (%d bits), modeled crossover at n=%d\n",
		start, advice.Config, advice.MBits, modeled)

	limit := 2 * modeled
	const waves = 32
	waveSize := limit / waves
	cur := bench.Series{Name: "deployed", XLabel: "n", YLabel: "rho_cycles"}
	best := bench.Series{Name: "advised", XLabel: "n", YLabel: "rho_cycles"}
	tput := bench.Series{Name: "probe", XLabel: "n", YLabel: "Mkeys_per_s"}

	r := rng.NewMT19937(4242)
	probe := make([]perfilter.Key, 4096)
	for i := range probe {
		probe[i] = r.Uint32()
	}
	batch := make([]perfilter.Key, waveSize)
	var n uint64
	for n < limit {
		for i := range batch {
			batch[i] = perfilter.Key(n + uint64(i))
		}
		if _, err := a.InsertBatch(batch); err != nil {
			return nil, nil, fmt.Errorf("insert at n=%d: %w", n, err)
		}
		n += uint64(len(batch))
		d, err := a.Reoptimize()
		if err != nil {
			return nil, nil, fmt.Errorf("reoptimize at n=%d: %w", n, err)
		}
		cur.X = append(cur.X, float64(n))
		cur.Y = append(cur.Y, d.CurrentRho)
		best.X = append(best.X, float64(n))
		best.Y = append(best.Y, d.BestRho)

		reps := 16
		if quick {
			reps = 4
		}
		sel := make([]uint32, 0, len(probe))
		t0 := time.Now()
		for rep := 0; rep < reps; rep++ {
			sel = a.ContainsBatch(probe, sel[:0])
		}
		el := time.Since(t0).Seconds()
		tput.X = append(tput.X, float64(n))
		tput.Y = append(tput.Y, float64(reps*len(probe))/el/1e6)
	}

	for _, d := range a.Decisions() {
		if !d.Migrated {
			continue
		}
		summary.Migrations++
		summary.Decisions = append(summary.Decisions, d)
		if d.KindChanged && summary.KindFlipN == 0 {
			summary.KindFlipN = d.N
		}
		fmt.Printf("# migrated at n=%d: %s -> %s (%s)\n", d.N, d.Current, d.Best, d.Reason)
	}
	summary.FinalN = n
	summary.FinalKind = a.Config().Kind.String()
	fmt.Printf("# final: n=%d kind=%s (%s), %d migrations, kind flip at n=%d\n",
		n, summary.FinalKind, a.Config(), summary.Migrations, summary.KindFlipN)

	// Losslessness spot check: the first wave's keys must still be there.
	checkN := min(int(waveSize), 1<<16)
	check := make([]perfilter.Key, checkN)
	for i := range check {
		check[i] = perfilter.Key(i)
	}
	if got := len(a.ContainsBatch(check, nil)); got != checkN {
		return nil, nil, fmt.Errorf("lost keys across migrations: %d of %d first-wave keys present", got, checkN)
	}
	return []bench.Series{cur, best, tput}, summary, nil
}
