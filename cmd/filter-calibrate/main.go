// filter-calibrate performs the paper's one-time calibration phase (§2):
// it measures the batched lookup cost of a set of filter configurations
// across filter sizes on this machine and writes the results as JSON.
// filter-skyline -calibration consumes the output to build skylines from
// measurements instead of the analytic model.
//
// Usage:
//
//	filter-calibrate [-o calibration.json] [-quick] [-full]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"perfilter/internal/calibrate"
	"perfilter/internal/model"
)

func main() {
	out := flag.String("o", "calibration.json", "output file")
	quick := flag.Bool("quick", false, "short measurements (noisier)")
	full := flag.Bool("full", false, "calibrate the full configuration space (slow)")
	flag.Parse()

	opts := calibrate.DefaultOpts()
	opts.MinTime = 20 * time.Millisecond
	if *quick {
		opts.MinTime = 2 * time.Millisecond
	}

	configs := model.DefaultConfigs(*full)
	var sizes []uint64
	for bits := uint64(1 << 14); bits <= 1<<30; bits <<= 2 {
		sizes = append(sizes, bits)
	}
	fmt.Fprintf(os.Stderr, "calibrating %d configs × %d sizes…\n", len(configs), len(sizes))

	start := time.Now()
	res, err := calibrate.Run(configs, sizes, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "filter-calibrate:", err)
		os.Exit(1)
	}
	data, err := res.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "filter-calibrate:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "filter-calibrate:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d points to %s in %v (platform: %s, %.2f cycles/ns)\n",
		len(res.Points), *out, time.Since(start).Round(time.Millisecond),
		res.Platform, res.CyclesPerNs)
}
