// filter-fpr prints the analytic false-positive-rate experiments: Figure 4
// (impact of blocking and the optimal k), Figure 7 (sectorized vs
// cache-sectorized) and Figure 8 (cuckoo signature/bucket trade-offs), as
// tab-separated tables ready for plotting.
//
// Usage:
//
//	filter-fpr [-fig 4|4k|7|8]
package main

import (
	"flag"
	"fmt"
	"os"

	"perfilter/internal/bench"
)

func main() {
	fig := flag.String("fig", "4", "table to print: 4 (FPR), 4k (optimal k), 7, 8")
	flag.Parse()

	switch *fig {
	case "4":
		fmt.Println("# Figure 4a: false-positive rate vs bits-per-key (optimal k per point)")
		fmt.Print(bench.Format(bench.Fig4BlockingImpact()))
	case "4k":
		fmt.Println("# Figure 4b: optimal k vs bits-per-key")
		fmt.Print(bench.Format(bench.Fig4OptimalK()))
	case "7":
		fmt.Println("# Figure 7: sectorization vs cache-sectorization FPR (k=8)")
		fmt.Print(bench.Format(bench.Fig7SectorizationFPR()))
	case "8":
		fmt.Println("# Figure 8: cuckoo filter FPR by signature length and bucket size")
		fmt.Print(bench.Format(bench.Fig8CuckooFPR()))
	default:
		fmt.Fprintln(os.Stderr, "filter-fpr: unknown figure", *fig)
		os.Exit(1)
	}
}
