// filter-fpr prints the false-positive-rate experiments: Figure 4 (impact
// of blocking and the optimal k), Figure 7 (sectorized vs
// cache-sectorized) and Figure 8 (cuckoo signature/bucket trade-offs) as
// analytic tables ready for plotting, plus -fig xor: the measured-vs-
// modeled FPR table across every family (blocked, classic, cuckoo,
// xor8/xor16/fuse8/fuse16, exact) on real filters and random probes.
//
// Usage:
//
//	filter-fpr [-fig 4|4k|7|8|<family>]
//
// Family tokens (today: xor) come from the filter registry: a -fig value
// naming a registered constructible kind with a runner in familyFigs
// prints that family's measured-vs-modeled table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfilter"
	"perfilter/internal/bench"
)

// familyFigs maps a filter-family name to its measured FPR experiment.
// Accepted tokens are the intersection of this map with the filter
// registry's constructible kinds, so the -fig vocabulary tracks the
// registry rather than a hand-maintained list.
var familyFigs = map[string]struct {
	header string
	run    func() string
}{
	"xor": {
		header: "# Measured vs modeled FPR, all families (100k keys, disjoint probes)",
		run:    func() string { return bench.FormatMeasuredFPR(bench.MeasuredFPRRows(100_000)) },
	},
}

// figTokens enumerates the accepted -fig values: the analytic tables plus
// the registry-derived family experiments.
func figTokens() []string {
	toks := []string{"4", "4k", "7", "8"}
	for _, name := range perfilter.KindNames() {
		if _, ok := familyFigs[name]; ok {
			toks = append(toks, name)
		}
	}
	return toks
}

// familyFig resolves a -fig token to a family experiment, requiring the
// token to name a registered constructible kind.
func familyFig(tok string) (header string, run func() string, ok bool) {
	if _, registered := perfilter.KindByName(tok); !registered || tok == "" {
		return "", nil, false
	}
	e, ok := familyFigs[tok]
	return e.header, e.run, ok
}

func main() {
	fig := flag.String("fig", "4", "table to print: "+strings.Join(figTokens(), ", "))
	flag.Parse()

	switch *fig {
	case "4":
		fmt.Println("# Figure 4a: false-positive rate vs bits-per-key (optimal k per point)")
		fmt.Print(bench.Format(bench.Fig4BlockingImpact()))
	case "4k":
		fmt.Println("# Figure 4b: optimal k vs bits-per-key")
		fmt.Print(bench.Format(bench.Fig4OptimalK()))
	case "7":
		fmt.Println("# Figure 7: sectorization vs cache-sectorization FPR (k=8)")
		fmt.Print(bench.Format(bench.Fig7SectorizationFPR()))
	case "8":
		fmt.Println("# Figure 8: cuckoo filter FPR by signature length and bucket size")
		fmt.Print(bench.Format(bench.Fig8CuckooFPR()))
	default:
		header, run, ok := familyFig(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "filter-fpr: unknown figure %q (accepted: %s)\n",
				*fig, strings.Join(figTokens(), ", "))
			os.Exit(1)
		}
		fmt.Println(header)
		fmt.Print(run())
	}
}
