// filter-fpr prints the false-positive-rate experiments: Figure 4 (impact
// of blocking and the optimal k), Figure 7 (sectorized vs
// cache-sectorized) and Figure 8 (cuckoo signature/bucket trade-offs) as
// analytic tables ready for plotting, plus -fig xor: the measured-vs-
// modeled FPR table across every family (blocked, classic, cuckoo,
// xor8/xor16/fuse8/fuse16, exact) on real filters and random probes.
//
// Usage:
//
//	filter-fpr [-fig 4|4k|7|8|xor]
package main

import (
	"flag"
	"fmt"
	"os"

	"perfilter/internal/bench"
)

func main() {
	fig := flag.String("fig", "4", "table to print: 4 (FPR), 4k (optimal k), 7, 8, xor (measured vs model, all families)")
	flag.Parse()

	switch *fig {
	case "4":
		fmt.Println("# Figure 4a: false-positive rate vs bits-per-key (optimal k per point)")
		fmt.Print(bench.Format(bench.Fig4BlockingImpact()))
	case "4k":
		fmt.Println("# Figure 4b: optimal k vs bits-per-key")
		fmt.Print(bench.Format(bench.Fig4OptimalK()))
	case "7":
		fmt.Println("# Figure 7: sectorization vs cache-sectorization FPR (k=8)")
		fmt.Print(bench.Format(bench.Fig7SectorizationFPR()))
	case "8":
		fmt.Println("# Figure 8: cuckoo filter FPR by signature length and bucket size")
		fmt.Print(bench.Format(bench.Fig8CuckooFPR()))
	case "xor":
		fmt.Println("# Measured vs modeled FPR, all families (100k keys, disjoint probes)")
		fmt.Print(bench.FormatMeasuredFPR(bench.MeasuredFPRRows(100_000)))
	default:
		fmt.Fprintln(os.Stderr, "filter-fpr: unknown figure", *fig)
		os.Exit(1)
	}
}
