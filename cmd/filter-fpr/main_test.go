package main

import (
	"math"
	"testing"

	"perfilter/internal/bench"
)

// TestMeasuredFPRWithinModel pins every family's observed false-positive
// rate to its analytic model: the xor/fuse variants (whose model is the
// exact 2^-w) and the existing families must all measure within 2× of
// the prediction, modulo binomial sampling noise, and the exact set must
// measure zero. This is the table -fig xor prints.
func TestMeasuredFPRWithinModel(t *testing.T) {
	const n = 100_000
	rows := bench.MeasuredFPRRows(n)
	if len(rows) < 8 {
		t.Fatalf("only %d families measured", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Name] = true
		if r.Model == 0 {
			if r.Measured != 0 {
				t.Errorf("%s: measured %.6f, want exactly 0", r.Name, r.Measured)
			}
			continue
		}
		// ~4σ of binomial noise at ~2.6e5 probes, so the rare-event rows
		// (cuckoo l=16, xor16) don't flake.
		slack := 4 * math.Sqrt(r.Model/200_000)
		if r.Measured > 2*r.Model+slack {
			t.Errorf("%s: measured %.6f above 2x model %.6f", r.Name, r.Measured, r.Model)
		}
		if r.Measured < r.Model/2-slack {
			t.Errorf("%s: measured %.6f below half the model %.6f (model too pessimistic?)",
				r.Name, r.Measured, r.Model)
		}
	}
	for _, want := range []string{"xor8", "xor16", "fuse8", "fuse16"} {
		if !seen[want] {
			t.Errorf("xor family member %s missing from the FPR table", want)
		}
	}
}
