// filter-server serves named sharded filters over HTTP: a JSON control
// plane (create/rotate/stats per filter) and a binary little-endian batch
// data plane (insert/probe). See internal/server for the endpoint
// reference and README.md for curl examples.
//
// Usage:
//
//	filter-server [-addr :8077] [-max-batch-bytes 16777216]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"perfilter/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	maxBatch := flag.Int64("max-batch-bytes", server.DefaultMaxBatchBytes,
		"largest accepted insert/probe body in bytes (4 bytes per key)")
	maxBits := flag.Uint64("max-filter-bits", server.DefaultMaxFilterBits,
		"largest filter a create/rotate request may allocate, in bits")
	maxTotal := flag.Uint64("max-total-bits", server.DefaultMaxTotalBits,
		"memory budget across all filters, in bits")
	flag.Parse()

	srv := &http.Server{
		Addr: *addr,
		Handler: server.New(server.Options{
			MaxBatchBytes: *maxBatch, MaxFilterBits: *maxBits, MaxTotalBits: *maxTotal,
		}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("filter-server listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
