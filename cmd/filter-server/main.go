// filter-server serves named sharded filters over HTTP: a JSON control
// plane (create/rotate/snapshot/stats per filter) and a binary
// little-endian batch data plane (insert/probe). See internal/server for
// the endpoint reference and README.md for curl examples.
//
// With -data-dir set the server is durable: every snapshot in the
// directory is restored on start (probe results byte-identical to the
// pre-restart filters), POST /v1/filters/{name}/snapshot persists on
// demand, and SIGINT/SIGTERM trigger a snapshot of every filter before
// the process exits.
//
// With -autotune set the server re-optimizes itself: every filter tracks
// its observed workload (inserts, probes, positive fraction), and on the
// given period each one is re-advised against the paper's cost model and
// migrated live — including Bloom↔Cuckoo kind changes, losslessly, under
// traffic — whenever the recommended configuration's modeled overhead
// beats the deployed one by the hysteresis margin. The post-migration
// configuration persists through the snapshot envelope.
//
// Observability: GET /metrics serves the Prometheus text exposition for
// every layer (batch-plane latency histograms, rotation and dual-write
// timings, control-loop decisions), GET /metrics/history a self-scraped
// ring of periodic snapshots (counter deltas + windowed latency
// quantiles; -history-interval), GET /v1/debug/traces the sampled
// request-scoped span trees (-trace-sample head sampling,
// -trace-slow-ns slow-outlier capture, W3C traceparent ingestion),
// GET /v1/filters/{name}/trace the recent re-optimization decisions,
// GET /healthz uptime and build identity, and GET /readyz readiness
// (503 until the data-dir restore completes and while a migration is in
// flight). Logs are structured (log/slog text format; -log-json for
// JSON). -pprof mounts net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	filter-server [-addr :8077] [-data-dir /var/lib/filter-server] [-max-batch-bytes 16777216]
//	              [-autotune 30s] [-default-tw 1000] [-trace-sample 0.01] [-trace-slow-ns 0]
//	              [-history-interval 10s] [-pprof] [-log-json]
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfilter/internal/obs"
	"perfilter/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	dataDir := flag.String("data-dir", "",
		"snapshot directory; restores *.pf on start, saves all filters on shutdown (empty = no persistence)")
	maxBatch := flag.Int64("max-batch-bytes", server.DefaultMaxBatchBytes,
		"largest accepted insert/probe body in bytes (4 bytes per key)")
	maxBits := flag.Uint64("max-filter-bits", server.DefaultMaxFilterBits,
		"largest filter a create/rotate request may allocate, in bits")
	maxTotal := flag.Uint64("max-total-bits", server.DefaultMaxTotalBits,
		"memory budget across all filters, in bits")
	autotune := flag.Duration("autotune", 0,
		"re-optimization period: re-advise every filter against its tracked workload and migrate when the modeled win clears the hysteresis margin (0 = off)")
	defaultTw := flag.Float64("default-tw", server.DefaultTw,
		"default work saved per pruned probe in cycles, for filters created without tw")
	pprofOn := flag.Bool("pprof", false,
		"mount net/http/pprof under /debug/pprof/ on the service listener")
	logJSON := flag.Bool("log-json", false,
		"emit logs as JSON instead of logfmt-style text")
	traceSample := flag.Float64("trace-sample", 0.01,
		"fraction of batch-plane requests head-sampled into /v1/debug/traces (0 = off, 1 = all; a sampled traceparent flag always samples)")
	traceSlowNs := flag.Int64("trace-slow-ns", 0,
		"also capture unsampled batch requests slower than this many nanoseconds (0 = auto: 2x the live probe p99, re-derived each history scrape; negative = off)")
	historyInterval := flag.Duration("history-interval", 10*time.Second,
		"period between /metrics/history self-scrapes (0 = off)")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	// The tracer's sampling knobs: -trace-slow-ns > 0 is a fixed
	// threshold, 0 delegates to the history scraper (auto: 2x live probe
	// p99), negative disables slow capture entirely.
	obs.DefaultTracer.SetSampleRate(*traceSample)
	if *traceSlowNs > 0 {
		obs.DefaultTracer.SetSlowNs(*traceSlowNs)
	}
	reg := server.New(server.Options{
		MaxBatchBytes: *maxBatch, MaxFilterBits: *maxBits, MaxTotalBits: *maxTotal,
		DataDir: *dataDir, Tw: *defaultTw,
		Logger: logger, Pprof: *pprofOn,
		TraceAutoSlow: *traceSlowNs == 0,
	})
	if *dataDir != "" {
		loaded, err := reg.LoadAll()
		if err != nil {
			logger.Warn("restore finished with errors", "err", err)
		}
		logger.Info("restored filters", "count", loaded, "dir", *dataDir)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *autotune > 0 {
		reg.StartAutotune(ctx, *autotune)
		logger.Info("autotune enabled", "interval", *autotune, "default_tw", *defaultTw)
	}
	reg.StartHistory(ctx, *historyInterval)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "pprof", *pprofOn)

	select {
	case err := <-errCh:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// persist every filter so the restart resumes where this run stopped.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A deadline here means in-flight requests were cut off — the
	// snapshots below may predate writes those clients believe landed, so
	// it must be visible to the operator.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown exceeded deadline", "err", err)
	}
	if *dataDir != "" {
		saved, err := reg.SaveAll()
		if err != nil {
			logger.Warn("snapshot on shutdown finished with errors", "err", err)
		}
		logger.Info("saved filters", "count", saved, "dir", *dataDir)
	}
}
