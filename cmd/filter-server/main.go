// filter-server serves named sharded filters over HTTP: a JSON control
// plane (create/rotate/snapshot/stats per filter) and a binary
// little-endian batch data plane (insert/probe). See internal/server for
// the endpoint reference and README.md for curl examples.
//
// With -data-dir set the server is durable: every snapshot in the
// directory is restored on start (probe results byte-identical to the
// pre-restart filters), POST /v1/filters/{name}/snapshot persists on
// demand, and SIGINT/SIGTERM trigger a snapshot of every filter before
// the process exits.
//
// With -autotune set the server re-optimizes itself: every filter tracks
// its observed workload (inserts, probes, positive fraction), and on the
// given period each one is re-advised against the paper's cost model and
// migrated live — including Bloom↔Cuckoo kind changes, losslessly, under
// traffic — whenever the recommended configuration's modeled overhead
// beats the deployed one by the hysteresis margin. The post-migration
// configuration persists through the snapshot envelope.
//
// Usage:
//
//	filter-server [-addr :8077] [-data-dir /var/lib/filter-server] [-max-batch-bytes 16777216]
//	              [-autotune 30s] [-default-tw 1000]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"perfilter/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	dataDir := flag.String("data-dir", "",
		"snapshot directory; restores *.pf on start, saves all filters on shutdown (empty = no persistence)")
	maxBatch := flag.Int64("max-batch-bytes", server.DefaultMaxBatchBytes,
		"largest accepted insert/probe body in bytes (4 bytes per key)")
	maxBits := flag.Uint64("max-filter-bits", server.DefaultMaxFilterBits,
		"largest filter a create/rotate request may allocate, in bits")
	maxTotal := flag.Uint64("max-total-bits", server.DefaultMaxTotalBits,
		"memory budget across all filters, in bits")
	autotune := flag.Duration("autotune", 0,
		"re-optimization period: re-advise every filter against its tracked workload and migrate when the modeled win clears the hysteresis margin (0 = off)")
	defaultTw := flag.Float64("default-tw", server.DefaultTw,
		"default work saved per pruned probe in cycles, for filters created without tw")
	flag.Parse()

	reg := server.New(server.Options{
		MaxBatchBytes: *maxBatch, MaxFilterBits: *maxBits, MaxTotalBits: *maxTotal,
		DataDir: *dataDir, Tw: *defaultTw,
	})
	if *dataDir != "" {
		loaded, err := reg.LoadAll()
		if err != nil {
			log.Printf("filter-server: restore: %v", err)
		}
		log.Printf("filter-server: restored %d filter(s) from %s", loaded, *dataDir)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *autotune > 0 {
		reg.StartAutotune(ctx, *autotune)
		log.Printf("filter-server: autotune every %s (default tw %g cycles)", *autotune, *defaultTw)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("filter-server listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// persist every filter so the restart resumes where this run stopped.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A deadline here means in-flight requests were cut off — the
	// snapshots below may predate writes those clients believe landed, so
	// it must be visible to the operator.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("filter-server: shutdown: %v", err)
	}
	if *dataDir != "" {
		saved, err := reg.SaveAll()
		if err != nil {
			log.Printf("filter-server: snapshot on shutdown: %v", err)
		}
		log.Printf("filter-server: saved %d filter(s) to %s", saved, *dataDir)
	}
}
