// filter-server serves named sharded filters over HTTP: a JSON control
// plane (create/rotate/snapshot/stats per filter) and a binary
// little-endian batch data plane (insert/probe). See internal/server for
// the endpoint reference and README.md for curl examples.
//
// With -data-dir set the server is durable: every snapshot in the
// directory is restored on start (probe results byte-identical to the
// pre-restart filters), POST /v1/filters/{name}/snapshot persists on
// demand, and SIGINT/SIGTERM trigger a snapshot of every filter before
// the process exits.
//
// Usage:
//
//	filter-server [-addr :8077] [-data-dir /var/lib/filter-server] [-max-batch-bytes 16777216]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"perfilter/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	dataDir := flag.String("data-dir", "",
		"snapshot directory; restores *.pf on start, saves all filters on shutdown (empty = no persistence)")
	maxBatch := flag.Int64("max-batch-bytes", server.DefaultMaxBatchBytes,
		"largest accepted insert/probe body in bytes (4 bytes per key)")
	maxBits := flag.Uint64("max-filter-bits", server.DefaultMaxFilterBits,
		"largest filter a create/rotate request may allocate, in bits")
	maxTotal := flag.Uint64("max-total-bits", server.DefaultMaxTotalBits,
		"memory budget across all filters, in bits")
	flag.Parse()

	reg := server.New(server.Options{
		MaxBatchBytes: *maxBatch, MaxFilterBits: *maxBits, MaxTotalBits: *maxTotal,
		DataDir: *dataDir,
	})
	if *dataDir != "" {
		loaded, err := reg.LoadAll()
		if err != nil {
			log.Printf("filter-server: restore: %v", err)
		}
		log.Printf("filter-server: restored %d filter(s) from %s", loaded, *dataDir)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("filter-server listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// persist every filter so the restart resumes where this run stopped.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A deadline here means in-flight requests were cut off — the
	// snapshots below may predate writes those clients believe landed, so
	// it must be visible to the operator.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("filter-server: shutdown: %v", err)
	}
	if *dataDir != "" {
		saved, err := reg.SaveAll()
		if err != nil {
			log.Printf("filter-server: snapshot on shutdown: %v", err)
		}
		log.Printf("filter-server: saved %d filter(s) to %s", saved, *dataDir)
	}
}
