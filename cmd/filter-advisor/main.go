// filter-advisor recommends the performance-optimal filter for a workload:
// the configuration and size minimizing ρ(F) = tl(F) + f(F)·tw (§2 of the
// paper), plus whether filtering is beneficial at all given the true-hit
// rate σ.
//
// Usage:
//
//	filter-advisor -n 1000000 -tw 200 [-sigma 0.1] [-budget 16]
//	               [-platform host|skx|xeon|knl|ryzen] [-exact] [-full]
//	               [-read-mostly]
//
// -read-mostly declares the key set effectively static after build, which
// makes the immutable xor/fuse family eligible (priced with a rebuild
// surcharge amortized over tw).
//
// tw reference points (Figure 1): CPU cache miss ≈ 10^2 cycles, a network
// tuple ≈ 10^4, an NVMe read ≈ 10^5, a SATA SSD read ≈ 10^6, a magnetic
// disk read ≈ 10^7, a 100 MB S3 Parquet file ≈ 10^9.
package main

import (
	"flag"
	"fmt"
	"os"

	"perfilter"
)

func main() {
	n := flag.Uint64("n", 0, "build-side key count (required)")
	tw := flag.Float64("tw", 0, "work saved per pruned probe, in cycles (required)")
	sigma := flag.Float64("sigma", 0, "true-hit rate of probes [0,1]")
	budget := flag.Float64("budget", 20, "memory budget in bits per key")
	platformName := flag.String("platform", "host", "cost model: host|skx|xeon|knl|ryzen")
	allowExact := flag.Bool("exact", false, "also consider an exact hash set")
	full := flag.Bool("full", false, "search the full configuration space")
	readMostly := flag.Bool("read-mostly", false, "declare the key set static after build (enables the immutable xor/fuse family)")
	flag.Parse()

	if *n == 0 || *tw <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	platforms := map[string]perfilter.Platform{
		"host": perfilter.PlatformHost, "skx": perfilter.PlatformSKX,
		"xeon": perfilter.PlatformXeon, "knl": perfilter.PlatformKNL,
		"ryzen": perfilter.PlatformRyzen,
	}
	p, ok := platforms[*platformName]
	if !ok {
		fmt.Fprintln(os.Stderr, "filter-advisor: unknown platform", *platformName)
		os.Exit(1)
	}
	advice, err := perfilter.Advise(perfilter.Workload{
		N: *n, Tw: *tw, Sigma: *sigma,
		BitsPerKeyBudget: *budget, Platform: p,
		AllowExact: *allowExact, FullSpace: *full, ReadMostly: *readMostly,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "filter-advisor:", err)
		os.Exit(1)
	}
	fmt.Printf("performance-optimal filter (%s):\n", advice.Model)
	fmt.Printf("  config        %s\n", advice.Config)
	fmt.Printf("  size          %d bits (%.2f bits/key, %.1f KiB)\n",
		advice.MBits, float64(advice.MBits)/float64(*n), float64(advice.MBits)/8/1024)
	fmt.Printf("  fpr           %.6g\n", advice.FPR)
	fmt.Printf("  lookup cost   %.2f cycles\n", advice.LookupCycles)
	fmt.Printf("  overhead rho  %.2f cycles  (tl + f*tw)\n", advice.Overhead)
	fmt.Printf("  shards        %d (NewSharded partition count for concurrent writers on this host)\n",
		advice.Shards)
	if advice.Beneficial {
		fmt.Printf("  verdict       install it: rho < (1-sigma)*tw = %.1f\n",
			(1-*sigma)**tw)
	} else {
		fmt.Printf("  verdict       do NOT filter: rho >= (1-sigma)*tw = %.1f\n",
			(1-*sigma)**tw)
	}
}
