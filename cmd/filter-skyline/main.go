// filter-skyline regenerates the paper's skyline experiments: Figure 1
// (conceptual winner map including the exact-structure region), Figure 10
// (Bloom-vs-Cuckoo type maps on the four Table 1 platforms), Figure 11
// (speedup and winner-FPR maps) and Figures 12/13 (winning configuration
// facets).
//
// Usage:
//
//	filter-skyline [-platform skx|xeon|knl|ryzen|host|all] [-fig 1|10|11|12|13]
//	               [-full] [-xor] [-calibration file.json]
//
// -full uses the paper's full n-grid resolution and configuration space
// (slower). -calibration substitutes host measurements from
// filter-calibrate for the analytic cost model. -xor renders the
// read-mostly skyline instead: the type map with the immutable xor/fuse
// family enabled (an X region appears at high tw) plus the mutable
// families' crossover boundary — the extension the adaptive advisor uses
// for read-mostly workloads.
package main

import (
	"flag"
	"fmt"
	"os"

	"perfilter/internal/bench"
	"perfilter/internal/calibrate"
	"perfilter/internal/model"
)

func main() {
	platformFlag := flag.String("platform", "skx", "cost model: skx|xeon|knl|ryzen|host|all")
	fig := flag.Int("fig", 10, "figure to regenerate: 1, 10, 11, 12 or 13")
	full := flag.Bool("full", false, "paper-resolution grid and full config space")
	xorMap := flag.Bool("xor", false, "render the read-mostly type map with the xor/fuse family enabled, plus the crossover boundary")
	calibFile := flag.String("calibration", "", "JSON from filter-calibrate to use as the cost model")
	flag.Parse()

	models, caches, err := costModels(*platformFlag, *calibFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "filter-skyline:", err)
		os.Exit(1)
	}

	if *xorMap {
		fmt.Print(bench.XorSkyline(models, *full))
		return
	}

	switch *fig {
	case 1:
		for _, m := range models {
			fmt.Print(bench.Fig1Summary(m, caches[2], *full))
		}
	case 10:
		fmt.Print(bench.Fig10Skylines(models, *full))
	case 11:
		for _, m := range models {
			fmt.Printf("== %s ==\n%s", m.Name(), bench.Fig11SpeedupAndFPR(m, *full))
		}
	case 12:
		for _, m := range models {
			fmt.Printf("== %s ==\n%s", m.Name(), bench.Fig12BloomFacets(m, caches, *full))
		}
	case 13:
		for _, m := range models {
			fmt.Printf("== %s ==\n%s", m.Name(), bench.Fig13CuckooFacets(m, caches, *full))
		}
	default:
		fmt.Fprintln(os.Stderr, "filter-skyline: unknown figure", *fig)
		os.Exit(1)
	}
}

// costModels resolves the platform flag into cost models and a cache
// hierarchy for size-class facets.
func costModels(name, calibFile string) ([]model.CostModel, [3]uint64, error) {
	if calibFile != "" {
		data, err := os.ReadFile(calibFile)
		if err != nil {
			return nil, [3]uint64{}, err
		}
		res, err := calibrate.Unmarshal(data)
		if err != nil {
			return nil, [3]uint64{}, err
		}
		host := model.HostMachine()
		return []model.CostModel{calibrate.NewMeasuredModel(res)},
			[3]uint64{host.L1, host.L2, host.L3}, nil
	}
	byName := map[string]model.Machine{
		"xeon": model.Xeon(), "knl": model.KNL(),
		"skx": model.SKX(), "ryzen": model.Ryzen(),
		"host": model.HostMachine(),
	}
	if name == "all" {
		var out []model.CostModel
		for _, m := range model.Presets() {
			out = append(out, m)
		}
		skx := model.SKX()
		return out, [3]uint64{skx.L1, skx.L2, skx.L3}, nil
	}
	m, ok := byName[name]
	if !ok {
		return nil, [3]uint64{}, fmt.Errorf("unknown platform %q", name)
	}
	return []model.CostModel{m}, [3]uint64{m.L1, m.L2, m.L3}, nil
}
