package perfilter

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var (
	adaptiveBloomCfg = Config{Kind: BlockedBloom, WordBits: 64, BlockBits: 512,
		SectorBits: 64, Groups: 2, K: 8, Magic: true}
	adaptiveCuckooCfg = Config{Kind: Cuckoo, TagBits: 16, BucketSize: 2, Magic: true}
)

// selBytes renders a selection vector for byte-level comparison.
func selBytes(sel []uint32) []byte {
	out := make([]byte, 4*len(sel))
	for i, v := range sel {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// TestAdaptiveTrackedAdviceMatchesStatic pins the control loop to the
// paper's static advisor: for a stationary workload (fixed n, tw, σ), the
// advice computed from the *tracked* counters must reproduce the static
// Advise answer for the same planned workload exactly.
func TestAdaptiveTrackedAdviceMatchesStatic(t *testing.T) {
	const n = 50_000
	const tw = 400.0
	const sigma = 0.1
	a, err := NewAdaptive(adaptiveBloomCfg, 16*n, AdaptiveOptions{
		Workload: Workload{Tw: tw, Sigma: sigma},
		Shards:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(i)
	}
	if _, err := a.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	// Stationary probe stream at true-hit rate σ: 10% members, 90% misses.
	probe := make([]Key, 0, 1000)
	for b := 0; b < 50; b++ {
		probe = probe[:0]
		for i := 0; i < 1000; i++ {
			if i%10 == 0 {
				probe = append(probe, Key((b*100+i)%n))
			} else {
				probe = append(probe, Key(n+b*1000+i))
			}
		}
		a.ContainsBatch(probe, nil)
	}
	adv, err := a.Advice()
	if err != nil {
		t.Fatal(err)
	}
	c := a.Counters()
	if c.Inserts != n || c.Probes != 50_000 {
		t.Fatalf("counters = %+v", c)
	}
	// Tracked σ = observed positive fraction: the true 10% plus at most
	// the filter's false-positive rate.
	trackedSigma := adv.Workload.Sigma
	if trackedSigma < sigma || trackedSigma > sigma+0.05 {
		t.Fatalf("tracked sigma = %v, want ≈ %v", trackedSigma, sigma)
	}
	static, err := Advise(Workload{N: n, Tw: tw, Sigma: sigma})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Best.Config != static.Config {
		t.Fatalf("tracked advice %+v != static advice %+v", adv.Best.Config, static.Config)
	}
	if adv.Best.MBits != static.MBits {
		t.Fatalf("tracked MBits %d != static MBits %d", adv.Best.MBits, static.MBits)
	}
	if adv.Workload.N != n {
		t.Fatalf("tracked n = %d, want %d", adv.Workload.N, n)
	}
}

// TestAdaptiveMigrationLosslessUnderWriters is the migration-equivalence
// property test: concurrent writers hammer inserts while the filter
// migrates Bloom→Cuckoo and back Cuckoo→Bloom mid-stream. Afterwards no
// acknowledged key may be missing (zero false negatives), the member
// selection vector must be byte-stable across migrations, batch and
// scalar probes must agree, and the final Bloom generation must be
// byte-equivalent to a reference filter built offline from the same keys.
// Run with -race.
func TestAdaptiveMigrationLosslessUnderWriters(t *testing.T) {
	const writers = 4
	perWriter := 30_000
	if testing.Short() {
		perWriter = 8_000
	}
	total := writers * perWriter
	const shards = 4
	mBloom := uint64(16 * total)
	mCuckoo := 2 * CuckooSizeForKeys(16, 2, uint64(total))

	a, err := NewAdaptive(adaptiveBloomCfg, mBloom, AdaptiveOptions{
		Workload: Workload{Tw: 10_000},
		Shards:   shards,
	})
	if err != nil {
		t.Fatal(err)
	}

	var progress [writers]atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Key, 0, 32)
			for i := 0; i < perWriter; i++ {
				k := Key(i*writers + w)
				if i%5 == 4 {
					batch = append(batch[:0], k)
					if _, err := a.InsertBatch(batch); err != nil {
						errCh <- err
						return
					}
				} else if err := a.Insert(k); err != nil {
					errCh <- err
					return
				}
				progress[w].Store(int64(i + 1))
			}
		}(w)
	}

	// A fixed probe batch of keys that are certainly inserted before the
	// first migration: its selection vector must be all positions, before
	// and after every migration, byte for byte. Key(i*writers+w) is
	// acknowledged once writer w has passed iteration i, so the keys below
	// writers*minIters are in once every writer reports that floor.
	waitFor := func(minIters int) {
		for {
			done := true
			for w := range progress {
				if progress[w].Load() < int64(minIters) {
					done = false
				}
			}
			if done {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(perWriter / 4)
	fixed := make([]Key, writers*(perWriter/8))
	for i := range fixed {
		fixed[i] = Key(i)
	}
	selBefore := a.ContainsBatch(fixed, nil)
	if len(selBefore) != len(fixed) {
		t.Fatalf("pre-migration: %d of %d members selected", len(selBefore), len(fixed))
	}

	// Bloom→Cuckoo under live writers.
	if err := a.Migrate(adaptiveCuckooCfg, mCuckoo); err != nil {
		t.Fatalf("bloom→cuckoo: %v", err)
	}
	selMid := a.ContainsBatch(fixed, nil)
	if !bytes.Equal(selBytes(selBefore), selBytes(selMid)) {
		t.Fatal("member selection vector changed across bloom→cuckoo migration")
	}

	waitFor(perWriter / 2)
	// Cuckoo→Bloom under live writers.
	if err := a.Migrate(adaptiveBloomCfg, mBloom); err != nil {
		t.Fatalf("cuckoo→bloom: %v", err)
	}
	selAfter := a.ContainsBatch(fixed, nil)
	if !bytes.Equal(selBytes(selBefore), selBytes(selAfter)) {
		t.Fatal("member selection vector changed across cuckoo→bloom migration")
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Zero false negatives: every acknowledged key is present.
	all := make([]Key, total)
	for i := range all {
		all[i] = Key(i)
	}
	sel := a.ContainsBatch(all, nil)
	if len(sel) != total {
		t.Fatalf("%d of %d keys present after two migrations", len(sel), total)
	}

	// Batch/scalar parity on a mixed member/non-member stream.
	rng := rand.New(rand.NewSource(42))
	mixed := make([]Key, 4096)
	for i := range mixed {
		mixed[i] = Key(rng.Intn(4 * total))
	}
	batchSel := a.ContainsBatch(mixed, nil)
	var scalarSel []uint32
	for i, k := range mixed {
		if a.Contains(k) {
			scalarSel = append(scalarSel, uint32(i))
		}
	}
	if !bytes.Equal(selBytes(batchSel), selBytes(scalarSel)) {
		t.Fatal("ContainsBatch disagrees with scalar Contains after migration")
	}

	// Reference equivalence: the final Bloom generation must answer
	// byte-identically to a filter of the same configuration built offline
	// from the same key set (Bloom insertion is order-independent, so the
	// nondeterministic replay/dual-write order cannot show through).
	ref, err := NewSharded(adaptiveBloomCfg, mBloom, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InsertBatch(all); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		for i := range mixed {
			mixed[i] = Key(rng.Intn(8 * total))
		}
		got := a.ContainsBatch(mixed, nil)
		want := ref.ContainsBatch(mixed, nil)
		if !bytes.Equal(selBytes(got), selBytes(want)) {
			t.Fatalf("trial %d: migrated filter differs from reference rebuild", trial)
		}
	}
}

// TestAdaptiveLiveCrossover drives the paper's headline dynamic: at a
// cache-miss-scale tw the advisor picks Cuckoo while n is small enough for
// the filter to be cache-resident, and Bloom overtakes as n grows. The
// adaptive filter must start as Cuckoo and migrate itself to Bloom as
// inserts accumulate — through the periodic control loop or the ErrFull
// emergency path, whichever fires first — with the flip recorded in its
// decisions and no key lost.
func TestAdaptiveLiveCrossover(t *testing.T) {
	const tw = 400.0
	start := uint64(1) << 12
	a, advice, err := NewAdaptiveAdvised(AdaptiveOptions{
		Workload: Workload{N: start, Tw: tw, BitsPerKeyBudget: 16},
		Shards:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if advice.Config.Kind != Cuckoo {
		t.Fatalf("advisor picked %s at n=%d, tw=%g; expected cuckoo", advice.Config.Kind, start, tw)
	}

	// Find the modeled crossover: the smallest probed n where the static
	// advisor flips to Bloom.
	modeled := uint64(0)
	for n := start; n <= 1<<23; n *= 2 {
		adv, err := Advise(Workload{N: n, Tw: tw, BitsPerKeyBudget: 16})
		if err != nil {
			t.Fatal(err)
		}
		if adv.Config.Kind == BlockedBloom {
			modeled = n
			break
		}
	}
	if modeled == 0 {
		t.Fatal("no modeled crossover below 2^23 — cost model changed?")
	}

	limit := 2 * modeled
	batch := make([]Key, 1<<12)
	var n uint64
	for n < limit {
		for i := range batch {
			batch[i] = Key(n + uint64(i))
		}
		if _, err := a.InsertBatch(batch); err != nil {
			t.Fatalf("insert at n=%d: %v", n, err)
		}
		n += uint64(len(batch))
		if _, err := a.Reoptimize(); err != nil {
			t.Fatalf("reoptimize at n=%d: %v", n, err)
		}
	}
	if a.Config().Kind != BlockedBloom {
		t.Fatalf("filter is still %s at n=%d; expected the tuner to flip to bloom (modeled crossover %d)",
			a.Config().Kind, n, modeled)
	}
	// The flip may come from a periodic Reoptimize or from the ErrFull
	// emergency path; either way it must be in the decision history.
	var flipN uint64
	for _, d := range a.Decisions() {
		if d.Migrated && d.KindChanged {
			flipN = d.N
			break
		}
	}
	if flipN == 0 {
		t.Fatal("no kind-changing migration recorded")
	}
	// The live flip happens within a factor of 4 of the modeled boundary
	// (hysteresis delays it past the exact crossover by design).
	if flipN < modeled/4 || flipN > 4*modeled {
		t.Fatalf("kind flip at n=%d, far from modeled crossover %d", flipN, modeled)
	}
	// Spot-check losslessness after the whole cascade of migrations.
	probe := make([]Key, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range probe {
		probe[i] = Key(rng.Int63n(int64(n)))
	}
	if sel := a.ContainsBatch(probe, nil); len(sel) != len(probe) {
		t.Fatalf("%d of %d inserted keys present after crossover migrations", len(sel), len(probe))
	}
}

// TestAdaptiveEnvelopeRoundTrip checks the serialization path: probe
// equivalence, counter restoration, and — because the key log rides in the
// envelope — the restored filter can still migrate kinds losslessly.
func TestAdaptiveEnvelopeRoundTrip(t *testing.T) {
	const n = 20_000
	a, err := NewAdaptive(adaptiveBloomCfg, 16*n, AdaptiveOptions{
		Workload: Workload{Tw: 5000, Sigma: 0.2},
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(i * 3)
	}
	if _, err := a.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	a.ContainsBatch(keys[:1000], nil)

	data, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := f.(*Adaptive)
	if !ok {
		t.Fatalf("Unmarshal returned %T", f)
	}
	if got := b.Counters(); got != a.Counters() {
		t.Fatalf("counters: got %+v, want %+v", got, a.Counters())
	}
	if b.Config() != a.Config() {
		t.Fatalf("config: got %+v, want %+v", b.Config(), a.Config())
	}
	rng := rand.New(rand.NewSource(9))
	probe := make([]Key, 4096)
	for trial := 0; trial < 4; trial++ {
		for i := range probe {
			probe[i] = Key(rng.Intn(6 * n))
		}
		got := b.ContainsBatch(probe, nil)
		want := a.ContainsBatch(probe, nil)
		if !bytes.Equal(selBytes(got), selBytes(want)) {
			t.Fatalf("trial %d: restored filter differs from original", trial)
		}
	}

	// The restored key log still supports a kind change.
	if err := b.Migrate(adaptiveCuckooCfg, 2*CuckooSizeForKeys(16, 2, n)); err != nil {
		t.Fatalf("migrate after restore: %v", err)
	}
	if sel := b.ContainsBatch(keys, nil); len(sel) != n {
		t.Fatalf("%d of %d keys present after post-restore migration", len(sel), n)
	}
}

// TestAdaptiveErrFullRecovery fills a deliberately undersized cuckoo
// filter far past its capacity: the emergency path must grow it live and
// every insert must be acknowledged and retained.
func TestAdaptiveErrFullRecovery(t *testing.T) {
	capKeys := uint64(4096)
	a, err := NewAdaptive(adaptiveCuckooCfg, CuckooSizeForKeys(16, 2, capKeys), AdaptiveOptions{
		Workload: Workload{N: capKeys, Tw: 100_000, BitsPerKeyBudget: 16},
		Shards:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 8 * int(capKeys)
	for i := 0; i < total; i++ {
		if err := a.Insert(Key(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	all := make([]Key, total)
	for i := range all {
		all[i] = Key(i)
	}
	if sel := a.ContainsBatch(all, nil); len(sel) != total {
		t.Fatalf("%d of %d keys present after emergency growth", len(sel), total)
	}
	grown := false
	for _, d := range a.Decisions() {
		if d.Migrated {
			grown = true
		}
	}
	if !grown {
		t.Fatal("no growth migration recorded")
	}
}

// TestAdaptiveRotateClearsWithoutResurrection pins the adaptive rotation
// contract: Rotate clears (the standard ConcurrentFilter semantics), the
// key log and counters rotate with the generation, and — the regression
// that matters — a later migration must NOT resurrect cleared keys from a
// stale log. Migrate with the current config is the resize-preserving
// operation.
func TestAdaptiveRotateClearsWithoutResurrection(t *testing.T) {
	const n = 10_000
	a, err := NewAdaptive(adaptiveBloomCfg, 16*n, AdaptiveOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	old := make([]Key, n)
	for i := range old {
		old[i] = Key(i)
	}
	if _, err := a.InsertBatch(old); err != nil {
		t.Fatal(err)
	}

	// Migrate at the same config and double the size: contents preserved.
	if err := a.Migrate(a.Config(), 32*n); err != nil {
		t.Fatal(err)
	}
	if sel := a.ContainsBatch(old, nil); len(sel) != n {
		t.Fatalf("%d of %d keys present after resize migration", len(sel), n)
	}
	if a.SizeBits() < 24*n {
		t.Fatalf("size = %d bits after resize, want ≥ %d", a.SizeBits(), 24*n)
	}

	// Rotate: clears contents, restarts the log epoch and the counters.
	gen := a.Generation()
	if err := a.Rotate(16*n, nil); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", a.Generation(), gen+1)
	}
	if sel := a.ContainsBatch(old[:1000], nil); len(sel) > 10 {
		t.Fatalf("%d old keys still probe positive after clearing rotation", len(sel))
	}
	if c := a.Counters(); c.Inserts != 0 {
		t.Fatalf("counters survived rotation: %+v", c)
	}
	if a.LogBits() != 0 {
		t.Fatalf("key log survived rotation: %d bits", a.LogBits())
	}

	// New keys in, then a kind migration: new keys survive, cleared keys
	// stay gone (no resurrection from a stale log epoch).
	fresh := make([]Key, n)
	for i := range fresh {
		fresh[i] = Key(1_000_000 + i)
	}
	if _, err := a.InsertBatch(fresh); err != nil {
		t.Fatal(err)
	}
	if err := a.Migrate(adaptiveCuckooCfg, 2*CuckooSizeForKeys(16, 2, n)); err != nil {
		t.Fatal(err)
	}
	if sel := a.ContainsBatch(fresh, nil); len(sel) != n {
		t.Fatalf("%d of %d fresh keys present after migration", len(sel), n)
	}
	if sel := a.ContainsBatch(old[:1000], nil); len(sel) > 10 {
		t.Fatalf("migration resurrected %d cleared keys", len(sel))
	}

	// Reset clears filter, log and counters too.
	a.Reset()
	if sel := a.ContainsBatch(fresh[:100], nil); len(sel) != 0 {
		t.Fatal("keys survived Reset")
	}
	if c := a.Counters(); c.Inserts != 0 {
		t.Fatalf("counters survived Reset: %+v", c)
	}
}

// TestAdaptiveXorMigrationLosslessUnderWriters proves the immutable
// family is a first-class migration target: concurrent writers hammer
// inserts while the filter migrates Bloom→Xor (the staged xor shards are
// solved from the key-log replay and sealed inside the rotation window)
// and later Xor→Bloom (writes "resume" onto a mutable family). The
// guarantees checked, with -race:
//
//   - zero false negatives against the key log at the end — no
//     acknowledged write is lost by either migration;
//   - keys acknowledged while the Xor generation was live are queryable
//     after the next migration (the acceptance bar; the overflow path in
//     fact makes them queryable immediately, which is also asserted);
//   - the member selection vector over early keys is byte-stable across
//     both migrations;
//   - batch and scalar probes agree on the sealed xor generation.
func TestAdaptiveXorMigrationLosslessUnderWriters(t *testing.T) {
	const writers = 4
	perWriter := 30_000
	if testing.Short() {
		perWriter = 8_000
	}
	total := writers * perWriter
	const shards = 4
	mBloom := uint64(16 * total)
	xorCfg := Config{Kind: Xor, FingerprintBits: 8}

	a, err := NewAdaptive(adaptiveBloomCfg, mBloom, AdaptiveOptions{
		Workload: Workload{Tw: 1 << 20},
		Shards:   shards,
	})
	if err != nil {
		t.Fatal(err)
	}

	var progress [writers]atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Key, 0, 32)
			for i := 0; i < perWriter; i++ {
				k := Key(i*writers + w)
				if i%5 == 4 {
					batch = append(batch[:0], k)
					if _, err := a.InsertBatch(batch); err != nil {
						errCh <- err
						return
					}
				} else if err := a.Insert(k); err != nil {
					errCh <- err
					return
				}
				progress[w].Store(int64(i + 1))
			}
		}(w)
	}
	waitFor := func(minIters int) {
		for {
			done := true
			for w := range progress {
				if progress[w].Load() < int64(minIters) {
					done = false
				}
			}
			if done {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitFor(perWriter / 4)
	fixed := make([]Key, writers*(perWriter/8))
	for i := range fixed {
		fixed[i] = Key(i)
	}
	selBefore := a.ContainsBatch(fixed, nil)
	if len(selBefore) != len(fixed) {
		t.Fatalf("pre-migration: %d of %d members selected", len(selBefore), len(fixed))
	}

	// Bloom→Xor under live writers: the key-log snapshot is replayed into
	// staged xor shards, which are sealed before the swap; dual-writes
	// racing the window land in pending/overflow buffers.
	if err := a.Migrate(xorCfg, 0); err != nil {
		t.Fatalf("bloom→xor: %v", err)
	}
	if got := a.Config().Kind; got != Xor {
		t.Fatalf("deployed kind %v after migration, want Xor", got)
	}
	selMid := a.ContainsBatch(fixed, nil)
	if !bytes.Equal(selBytes(selBefore), selBytes(selMid)) {
		t.Fatal("member selection vector changed across bloom→xor migration")
	}

	// Writes arriving while the Xor generation is live: a distinct key
	// range no writer touches, inserted mid-generation.
	xorEra := make([]Key, 1024)
	for i := range xorEra {
		xorEra[i] = Key(1_000_000_000 + i)
	}
	if _, err := a.InsertBatch(xorEra); err != nil {
		t.Fatalf("insert during xor generation: %v", err)
	}
	if sel := a.ContainsBatch(xorEra, nil); len(sel) != len(xorEra) {
		t.Fatalf("only %d of %d xor-era inserts queryable while xor is live", len(sel), len(xorEra))
	}

	// Batch/scalar parity on the sealed generation. Writers are still
	// running, so the probe set must be membership-stable: established
	// members plus keys from a range no writer ever touches (a racing
	// insert between the two probe passes would otherwise legitimately
	// flip an answer).
	rng := rand.New(rand.NewSource(7))
	mixed := make([]Key, 4096)
	for i := range mixed {
		if i%2 == 0 {
			mixed[i] = fixed[rng.Intn(len(fixed))]
		} else {
			mixed[i] = Key(1<<31 + rng.Intn(1<<20))
		}
	}
	batchSel := a.ContainsBatch(mixed, nil)
	var scalarSel []uint32
	for i, k := range mixed {
		if a.Contains(k) {
			scalarSel = append(scalarSel, uint32(i))
		}
	}
	if !bytes.Equal(selBytes(batchSel), selBytes(scalarSel)) {
		t.Fatal("ContainsBatch disagrees with scalar Contains on the xor generation")
	}

	waitFor(perWriter / 2)
	// Xor→Bloom under live writers: writes resumed, move back to a
	// mutable family. The replay covers the sealed tables' keys, the
	// overflow buffers and every dual-write.
	if err := a.Migrate(adaptiveBloomCfg, mBloom); err != nil {
		t.Fatalf("xor→bloom: %v", err)
	}
	selAfter := a.ContainsBatch(fixed, nil)
	if !bytes.Equal(selBytes(selBefore), selBytes(selAfter)) {
		t.Fatal("member selection vector changed across xor→bloom migration")
	}
	// The xor-era inserts must be queryable after the next migration.
	if sel := a.ContainsBatch(xorEra, nil); len(sel) != len(xorEra) {
		t.Fatalf("only %d of %d xor-era inserts survived the xor→bloom migration", len(sel), len(xorEra))
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Zero false negatives against the key log: every acknowledged key —
	// the writers' full ranges plus the xor-era batch — is present.
	all := make([]Key, total)
	for i := range all {
		all[i] = Key(i)
	}
	if sel := a.ContainsBatch(all, nil); len(sel) != total {
		t.Fatalf("%d of %d keys present after the round trip", len(sel), total)
	}
	if log := a.log.Load(); log != nil {
		missing := 0
		log.Snapshot().Replay(func(k Key) error {
			if !a.Contains(k) {
				missing++
			}
			return nil
		}, true)
		if missing != 0 {
			t.Fatalf("%d logged keys missing from the filter (false negatives)", missing)
		}
	}
}

// TestAdaptiveReadMostlyCrossoverToXor drives the control loop through
// the immutable family's full life cycle without any explicit Migrate
// call: a high-tw workload builds once and then only probes, so the
// tracked insert fraction drops under the read-mostly gate and
// Reoptimize migrates to xor on modeled-ρ merit; when writes later
// resume, the next pass must move back to a mutable family (the
// writes-resumed override, since the mutable candidate is *worse* on ρ
// alone) with every key — including the resumed ones — still present.
func TestAdaptiveReadMostlyCrossoverToXor(t *testing.T) {
	const n = 50_000
	a, err := NewAdaptive(adaptiveBloomCfg, 16*n, AdaptiveOptions{
		Workload: Workload{Tw: 1 << 20, BitsPerKeyBudget: 20},
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(i + 1)
	}
	if _, err := a.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	// Mostly-miss probe traffic until the insert share of the window is
	// safely under ReadMostlyMaxInsertFraction.
	probe := make([]Key, 4096)
	for i := range probe {
		probe[i] = Key(10_000_000 + i)
	}
	for b := 0; b < 1+49*n/len(probe); b++ {
		a.ContainsBatch(probe, nil)
	}
	adv, err := a.Advice()
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Workload.ReadMostly {
		t.Fatalf("workload not read-mostly at insert fraction %.4f", adv.Window.InsertFraction())
	}
	if adv.Best.Config.Kind != Xor {
		t.Fatalf("read-mostly best is %s, want xor", adv.Best.Config)
	}
	d, err := a.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Migrated || a.Config().Kind != Xor {
		t.Fatalf("control loop did not migrate to xor: %+v (kind %v)", d, a.Config().Kind)
	}
	if sel := a.ContainsBatch(keys, nil); len(sel) != n {
		t.Fatalf("%d of %d keys present on the xor generation", len(sel), n)
	}

	// Writes resume: enough inserts to clear the policy floor, making
	// the window decidedly not read-mostly.
	resumed := make([]Key, 2048)
	for i := range resumed {
		resumed[i] = Key(20_000_000 + i)
	}
	if _, err := a.InsertBatch(resumed); err != nil {
		t.Fatal(err)
	}
	if sel := a.ContainsBatch(resumed, nil); len(sel) != len(resumed) {
		t.Fatalf("only %d of %d resumed writes queryable on the live xor generation", len(sel), len(resumed))
	}
	d, err = a.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Migrated || a.Config().Kind == Xor {
		t.Fatalf("writes resumed but the loop kept the immutable filter: %+v (kind %v)", d, a.Config().Kind)
	}
	if !strings.Contains(d.Reason, "writes resumed") {
		t.Fatalf("migration reason %q does not explain the override", d.Reason)
	}
	for _, k := range resumed[:256] {
		if !a.Contains(k) {
			t.Fatal("resumed write lost across the xor→mutable migration")
		}
	}
	if sel := a.ContainsBatch(keys, nil); len(sel) != n {
		t.Fatalf("%d of %d original keys present after the round trip", len(sel), n)
	}
}
