module perfilter

go 1.22
