package perfilter

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"perfilter/internal/adaptive"
	"perfilter/internal/obs"
)

// Control-loop instrumentation, on the process-wide registry: how often
// the tuner evaluates, how often hysteresis holds it back, and which
// kind→kind migrations actually happen. Migration counts are labeled by
// (from, to) so a flapping filter shows up as paired bloom→cuckoo /
// cuckoo→bloom increments instead of hiding inside one total.
var (
	mEvaluations = obs.Default.Counter("perfilter_adaptive_evaluations_total",
		"Re-optimization passes (Reoptimize calls), whatever their verdict.")
	mRejections = obs.Default.Counter("perfilter_adaptive_rejections_total",
		"Re-optimization passes that decided against migrating (hysteresis, cooldown, min inserts, already optimal).")
	mEmergencyGrows = obs.Default.Counter("perfilter_adaptive_emergency_grows_total",
		"Emergency migrations triggered by a saturated (ErrFull) filter.")
)

// countMigration bumps the (from, to) migration counter. Cold path: the
// label lookup may allocate, a migration rebuilds the whole filter.
func countMigration(from, to Kind) {
	obs.Default.Counter("perfilter_adaptive_migrations_total",
		"Completed live migrations, by source and target filter kind.",
		"from", from.String(), "to", to.String()).Inc()
}

// AdaptiveOptions configures NewAdaptive.
type AdaptiveOptions struct {
	// Workload seeds the advisory inputs that cannot be observed: the work
	// saved per pruned probe Tw, the memory budget and the platform. N is
	// tracked live and ignored here; Sigma is only the fallback until the
	// first probes are observed.
	Workload Workload
	// Policy is the migration hysteresis rule (zero fields get defaults:
	// 15% margin, 1024 min inserts).
	Policy adaptive.Policy
	// Interval, when positive, starts a background tuner that calls
	// Reoptimize on this period. Zero means the caller drives the loop
	// (Reoptimize / the server's autotuner).
	Interval time.Duration
	// Shards is the sharded wrapper's partition count (<= 0 picks the host
	// default, as NewSharded does).
	Shards int
	// MaxDecisions bounds the retained decision history (default 64).
	MaxDecisions int
	// DisableKeyLog turns off the insert log. The filter then still tracks
	// the workload and serves advice, but cannot migrate: approximate
	// filters cannot enumerate their keys, so without the log there is no
	// lossless replay source.
	DisableKeyLog bool
	// DisableAutoGrow turns off the ErrFull emergency migration, so cuckoo
	// saturation surfaces to the caller instead of growing the filter in
	// place. The filter server sets this: its memory budget accounting owns
	// every size change, so growth must go through its migrate/autotune
	// paths rather than happen implicitly inside an insert handler.
	DisableAutoGrow bool
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	o.Policy = o.Policy.WithDefaults()
	if o.MaxDecisions == 0 {
		o.MaxDecisions = 64
	}
	return o
}

// Adaptive is a self-re-optimizing concurrent filter: a Sharded filter
// plus the control loop the paper's static Advise lacks. Every insert and
// probe feeds cheap atomic workload counters (observed n, positive
// fraction → σ); Reoptimize re-runs Advise against that observed workload
// and, when the recommended configuration's modeled overhead ρ beats the
// deployed one by the policy's hysteresis margin, migrates live — any
// size change and any kind change, Bloom→Cuckoo or Cuckoo→Bloom — by
// replaying the maintained key log into a staged generation under the
// sharded dual-write window, so no acknowledged write is lost and readers
// never block.
//
// All methods are safe for concurrent use.
type Adaptive struct {
	s     *Sharded
	opts  AdaptiveOptions
	stats adaptive.Stats
	tuner adaptive.Tuner

	// log is the current key-log epoch (nil pointer when DisableKeyLog).
	// Clearing operations (Rotate, Reset) swap in a fresh log rather than
	// truncating in place, and writers re-check the pointer after their
	// insert — the log-side mirror of the sharded dual-write window, so a
	// write racing a clear can never be in the filter but missing from the
	// log (the log stays a conservative superset; see internal/adaptive).
	log atomic.Pointer[adaptive.KeyLog]

	// logComplete reports that the key log covers every key the filter
	// holds. It is false for filters restored from a snapshot that carried
	// no log; migration is refused until the next Reset clears both.
	logComplete atomic.Bool

	// mu serializes re-optimization, migration, rotation and reset.
	mu            sync.Mutex
	lastMigration time.Time
	// trace is the fixed-size ring buffer of re-optimization decisions
	// (the control loop's flight recorder, capacity opts.MaxDecisions);
	// it has its own lock so readers never contend with a migration.
	trace *adaptive.Trace
	// baseline is the counter snapshot at the last migration (zero until
	// then, and after clearing rotations/resets). The control loop
	// evaluates the workload over the delta since this baseline, so the
	// read-mostly gate for the immutable xor family reflects the current
	// generation's traffic, not a long-dead write burst. Guarded by mu.
	baseline adaptive.Counters
}

// NewAdaptive builds an adaptive filter starting from the given
// configuration and size (the same parameters New takes, sharded per
// opts.Shards). If opts.Interval is positive the background tuner starts
// immediately; call Close to stop it.
func NewAdaptive(cfg Config, mBits uint64, opts AdaptiveOptions) (*Adaptive, error) {
	s, err := NewSharded(cfg, mBits, opts.Shards)
	if err != nil {
		return nil, err
	}
	return newAdaptive(s, opts, true), nil
}

// NewAdaptiveAdvised runs Advise on opts.Workload (N must be set to the
// expected initial size) and starts from the recommended configuration.
func NewAdaptiveAdvised(opts AdaptiveOptions) (*Adaptive, Advice, error) {
	advice, err := Advise(opts.Workload)
	if err != nil {
		return nil, Advice{}, err
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = advice.Shards
	}
	s, err := NewSharded(advice.Config, advice.MBits, shards)
	if err != nil {
		return nil, Advice{}, err
	}
	return newAdaptive(s, opts, true), advice, nil
}

func newAdaptive(s *Sharded, opts AdaptiveOptions, logComplete bool) *Adaptive {
	opts = opts.withDefaults()
	a := &Adaptive{s: s, opts: opts, trace: adaptive.NewTrace(opts.MaxDecisions)}
	if !opts.DisableKeyLog {
		a.log.Store(new(adaptive.KeyLog))
		a.logComplete.Store(logComplete)
	}
	if opts.Interval > 0 {
		a.StartTuner(opts.Interval)
	}
	return a
}

// NewAdaptiveFrom wraps an existing sharded filter (e.g. one restored by
// UnmarshalSharded from a pre-adaptive snapshot). Because the filter may
// already hold keys that no log recorded, the key log starts complete only
// when the filter is empty; otherwise the wrapper tracks and advises but
// refuses to migrate until Reset.
func NewAdaptiveFrom(s *Sharded, opts AdaptiveOptions) *Adaptive {
	return newAdaptive(s, opts, s.Count() == 0)
}

// StartTuner launches the background re-optimization loop on the given
// interval (idempotent while running). Decisions, including ones that
// conclude "keep the current filter", are recorded in Decisions.
func (a *Adaptive) StartTuner(interval time.Duration) {
	a.tuner.Start(interval, func() { a.Reoptimize() })
}

// Close stops the background tuner, if any, and releases the underlying
// sharded filter's persistent batch-gather workers. The filter stays
// usable (large batches fall back to their caller's goroutine).
func (a *Adaptive) Close() {
	a.tuner.Stop()
	a.s.Close()
}

// TunerRunning reports whether the background loop is active.
func (a *Adaptive) TunerRunning() bool { return a.tuner.Running() }

// Insert implements Filter; safe for concurrent use. The key is logged
// before it is inserted, so an insert racing a migration's log snapshot is
// covered either by the snapshot or by the rotation's dual-write window —
// never dropped — and the log pointer is re-checked afterwards so a
// concurrent clearing Rotate/Reset cannot leave the key in the filter but
// out of the log. Unless AutoGrow is disabled, a cuckoo ErrFull triggers
// an emergency re-optimization (grow to the advised size for the observed
// n) before the error is surfaced.
func (a *Adaptive) Insert(key Key) error {
	log := a.log.Load()
	if log != nil {
		log.Append(key)
	}
	err := a.s.Insert(key)
	if log != nil {
		if cur := a.log.Load(); cur != log {
			cur.Append(key)
			log = cur
		}
	}
	for attempt := 0; errors.Is(err, ErrFull) && attempt < maxFullRecoveries && a.autoGrows(); attempt++ {
		self, rerr := a.recoverFull(context.Background(), a.s.SizeBits(), 1)
		if rerr != nil {
			break
		}
		if self {
			// This call performed the migration: the key was appended to
			// the log before the failed insert, so the fill snapshot
			// replayed it into the grown generation — nothing to re-insert
			// (a re-insert would double the key's cuckoo occupancy).
			err = nil
			break
		}
		// A concurrent recovery grew the filter; retry there, re-checking
		// the log epoch again so the retried insert can never be in the
		// filter but missing from the current log.
		err = a.s.Insert(key)
		if log != nil {
			if cur := a.log.Load(); cur != log {
				cur.Append(key)
				log = cur
			}
		}
	}
	if err != nil {
		return err
	}
	a.stats.RecordInsert(1)
	return nil
}

// maxFullRecoveries bounds the emergency-grow retries of one insert call:
// each recovery at least doubles the filter, so a handful always suffices
// unless growth itself is failing.
const maxFullRecoveries = 4

// InsertConcurrent implements ConcurrentFilter; identical to Insert.
func (a *Adaptive) InsertConcurrent(key Key) error { return a.Insert(key) }

// InsertBatch adds a batch of keys (see Sharded.InsertBatch for the
// shard-grouped locking and the non-prefix ErrFull contract). On cuckoo
// saturation it grows once via an emergency re-optimization and replays
// the whole batch, which is idempotent for the logged/deduplicated replay
// path.
func (a *Adaptive) InsertBatch(keys []Key) (int, error) {
	return a.InsertBatchCtx(context.Background(), keys)
}

// InsertBatchCtx is InsertBatch with request-scoped tracing: a sampled
// span in ctx gains per-shard "shard.insert" children, and an emergency
// grow triggered by this batch runs its migration under the same trace.
func (a *Adaptive) InsertBatchCtx(ctx context.Context, keys []Key) (int, error) {
	log := a.log.Load()
	if log != nil {
		log.AppendBatch(keys)
	}
	inserted, err := a.s.InsertBatchCtx(ctx, keys)
	if log != nil {
		if cur := a.log.Load(); cur != log {
			cur.AppendBatch(keys)
			log = cur
		}
	}
	for attempt := 0; errors.Is(err, ErrFull) && attempt < maxFullRecoveries && a.autoGrows(); attempt++ {
		self, rerr := a.recoverFull(ctx, a.s.SizeBits(), uint64(len(keys)))
		if rerr != nil {
			break
		}
		if self {
			// The migration's fill snapshot replayed the whole batch (it
			// was logged before the failed attempt), deduplicated — every
			// key is present exactly once, with no partial-insert copies
			// carried over from the retiring generation.
			inserted, err = len(keys), nil
			break
		}
		// A concurrent recovery grew the filter; replay the batch there
		// (shard order, so not an input-order prefix on a further error),
		// re-checking the log epoch afterwards.
		inserted, err = a.s.InsertBatchCtx(ctx, keys)
		if log != nil {
			if cur := a.log.Load(); cur != log {
				cur.AppendBatch(keys)
				log = cur
			}
		}
	}
	if err == nil {
		a.stats.RecordInsert(uint64(inserted))
	}
	return inserted, err
}

// Contains implements Filter, recording the probe.
func (a *Adaptive) Contains(key Key) bool {
	ok := a.s.Contains(key)
	var pos uint64
	if ok {
		pos = 1
	}
	a.stats.RecordProbe(1, pos)
	return ok
}

// ContainsBatch implements Filter, recording the batch.
func (a *Adaptive) ContainsBatch(keys []Key, sel []uint32) []uint32 {
	return a.ContainsBatchCtx(context.Background(), keys, sel)
}

// ContainsBatchCtx is ContainsBatch with request-scoped tracing: a
// sampled span in ctx gains per-shard "shard.probe" children.
func (a *Adaptive) ContainsBatchCtx(ctx context.Context, keys []Key, sel []uint32) []uint32 {
	before := len(sel)
	sel = a.s.ContainsBatchCtx(ctx, keys, sel)
	a.stats.RecordProbe(uint64(len(keys)), uint64(len(sel)-before))
	return sel
}

// SizeBits implements Filter (the live filter only; the key log's 32 bits
// per logged key are reported separately by LogBits).
func (a *Adaptive) SizeBits() uint64 { return a.s.SizeBits() }

// LogBits returns the key log's current footprint in bits.
func (a *Adaptive) LogBits() uint64 {
	log := a.log.Load()
	if log == nil {
		return 0
	}
	return log.Len() * 32
}

// FPR implements Filter.
func (a *Adaptive) FPR(n uint64) float64 { return a.s.FPR(n) }

// Reset implements Filter: clears the filter, the key log and the tracked
// counters, and (re-)establishes the log as complete. The log is swapped,
// not truncated, so writers racing the clear keep the superset invariant
// via their post-insert pointer re-check.
func (a *Adaptive) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.log.Load() != nil {
		a.log.Store(new(adaptive.KeyLog))
	}
	a.s.Reset()
	a.stats.Reset()
	a.baseline = adaptive.Counters{}
	if a.log.Load() != nil {
		a.logComplete.Store(true)
	}
}

// String implements Filter.
func (a *Adaptive) String() string { return "adaptive " + a.s.String() }

// NumShards implements ConcurrentFilter.
func (a *Adaptive) NumShards() int { return a.s.NumShards() }

// Count returns the number of successful inserts into the current
// generation (after a migration: the deduplicated key count plus racing
// dual-writes — the live n estimate the control loop advises against).
func (a *Adaptive) Count() uint64 { return a.s.Count() }

// Generation returns the rotation sequence number.
func (a *Adaptive) Generation() uint64 { return a.s.Generation() }

// Stats implements ConcurrentFilter (shard occupancy; the workload
// counters are returned by Counters).
func (a *Adaptive) Stats() ShardStats { return a.s.Stats() }

// StorageAligned reports whether every shard's word storage is
// cache-line aligned.
func (a *Adaptive) StorageAligned() bool { return a.s.StorageAligned() }

// Counters returns a snapshot of the tracked workload.
func (a *Adaptive) Counters() adaptive.Counters { return a.stats.Snapshot() }

// WorkloadWindow returns the tracked counters since the last migration —
// the window the control loop evaluates — and whether that window
// currently qualifies as read-mostly (insert fraction at or below
// ReadMostlyMaxInsertFraction), which is what makes the immutable xor
// family eligible for this filter.
func (a *Adaptive) WorkloadWindow() (adaptive.Counters, bool) {
	a.mu.Lock()
	baseline := a.baseline
	a.mu.Unlock()
	delta := a.stats.Snapshot().Sub(baseline)
	return delta, delta.InsertFraction() <= ReadMostlyMaxInsertFraction
}

// Config returns the currently served configuration (migrations change it).
func (a *Adaptive) Config() Config { return a.s.Config() }

// Sharded exposes the underlying sharded filter (shared with the
// serialization envelope; mutating rotations should go through the
// Adaptive methods so the key log stays consistent).
func (a *Adaptive) Sharded() *Sharded { return a.s }

// Rotate implements ConcurrentFilter with the standard clearing contract:
// the filter's contents are replaced by a fresh generation of mBits total
// bits (0 keeps the size), populated by fill if non-nil. The key log
// rotates in lockstep: a fresh log epoch is published before the sharded
// rotation opens its dual-write window, writers re-check the log pointer
// after every insert, and fill's inserts are logged into the new epoch —
// so after the swap the new log covers exactly (a superset of) the new
// generation, the tracked counters restart, and later migrations cannot
// resurrect cleared keys. To resize *without* clearing, use Migrate with
// the current configuration.
func (a *Adaptive) Rotate(mBits uint64, fill func(insert func(Key) error) error) error {
	return a.RotateCtx(context.Background(), mBits, fill)
}

// RotateCtx is Rotate with request-scoped tracing: a sampled span in ctx
// gains the sharded layer's "sharded.rotate" child.
func (a *Adaptive) RotateCtx(ctx context.Context, mBits uint64, fill func(insert func(Key) error) error) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.log.Load()
	if old == nil {
		if err := a.s.RotateCtx(ctx, mBits, fill); err != nil {
			return err
		}
		a.stats.Reset()
		a.baseline = adaptive.Counters{}
		return nil
	}
	fresh := new(adaptive.KeyLog)
	// Publish the new epoch before the rotation starts: a writer whose
	// insert lands in the staged generation observed the staging pointer,
	// which was published after this store, so its post-insert re-check
	// sees the new log and records the key there.
	a.log.Store(fresh)
	wrapped := fill
	if fill != nil {
		wrapped = func(insert func(Key) error) error {
			return fill(func(k Key) error {
				fresh.Append(k)
				return insert(k)
			})
		}
	}
	if err := a.s.RotateCtx(ctx, mBits, wrapped); err != nil {
		// The rotation aborted: the retiring generation still serves, so
		// restore its log and fold in the keys writers logged into the
		// aborted epoch (their inserts landed in the retiring generation).
		// Writers still holding the aborted epoch re-check after their
		// insert and re-append to the restored log, so the merge and the
		// re-checks together keep the superset invariant.
		a.log.Store(old)
		fresh.Snapshot().Replay(func(k Key) error { old.Append(k); return nil }, false)
		return err
	}
	a.stats.Reset()
	a.baseline = adaptive.Counters{}
	a.logComplete.Store(true)
	return nil
}

// canMigrate reports whether a lossless rebuild source exists.
func (a *Adaptive) canMigrate() bool { return a.log.Load() != nil && a.logComplete.Load() }

// autoGrows reports whether the ErrFull emergency path is armed.
func (a *Adaptive) autoGrows() bool { return !a.opts.DisableAutoGrow && a.canMigrate() }

// workload returns the observed workload: the configured Tw/budget with
// the tracked n, σ and read-mostliness substituted in. The σ and insert
// fraction come from the counter deltas since the given baseline (the
// last migration), so a filter that long ago absorbed its build burst
// and now only serves probes qualifies as read-mostly — which is what
// makes the immutable xor family enumerable for it.
func (a *Adaptive) workload(baseline adaptive.Counters) Workload {
	w := a.opts.Workload
	delta := a.stats.Snapshot().Sub(baseline)
	w.N = a.s.Count()
	if w.N == 0 {
		w.N = 1
	}
	w.Sigma = delta.Sigma(w.Sigma)
	w.ReadMostly = delta.InsertFraction() <= ReadMostlyMaxInsertFraction
	return w
}

// AdaptiveAdvice is the advice endpoint's full answer: what was observed,
// what is deployed, what the model now recommends, and what the policy
// would do about it.
type AdaptiveAdvice struct {
	// Counters is the tracked workload at evaluation time.
	Counters adaptive.Counters
	// Window is the tracked workload since the last migration (equal to
	// Counters until one happens) — the slice the σ estimate and the
	// read-mostly gate are computed from.
	Window adaptive.Counters
	// Workload is the advisory input derived from it.
	Workload Workload
	// Current models the deployed configuration at its actual size.
	Current Advice
	// Best is the static Advise answer for the observed workload.
	Best Advice
	// KindChange reports that Best switches the filter family.
	KindChange bool
	// WouldMigrate is the hysteresis policy's verdict; Reason explains it.
	WouldMigrate bool
	Reason       string
}

// Advice re-runs the advisor against the observed workload without acting
// on the answer. For a stationary workload whose Tw and σ match the
// configured ones, Best reproduces the static Advise answer exactly.
func (a *Adaptive) Advice() (AdaptiveAdvice, error) { return a.AdviceTw(0) }

// AdviceTw is Advice with the work-saved term overridden (tw <= 0 keeps
// the configured value) — the exploration knob behind the server's
// ?tw= query parameter: "what would the optimum be if a pruned probe
// saved this much?".
func (a *Adaptive) AdviceTw(tw float64) (AdaptiveAdvice, error) {
	a.mu.Lock()
	lastMigration, baseline := a.lastMigration, a.baseline
	a.mu.Unlock()
	return a.adviceAt(lastMigration, baseline, tw)
}

func (a *Adaptive) adviceAt(lastMigration time.Time, baseline adaptive.Counters, tw float64) (AdaptiveAdvice, error) {
	w := a.workload(baseline)
	if tw > 0 {
		w.Tw = tw
	}
	cur, err := EvaluateOverhead(w, a.s.Config(), a.s.SizeBits())
	if err != nil {
		return AdaptiveAdvice{}, err
	}
	best, err := Advise(w)
	if err != nil {
		return AdaptiveAdvice{}, err
	}
	counters := a.stats.Snapshot()
	adv := AdaptiveAdvice{
		Counters:   counters,
		Window:     counters.Sub(baseline),
		Workload:   w,
		Current:    cur,
		Best:       best,
		KindChange: best.Config.Kind != cur.Config.Kind,
	}
	sinceLast := time.Duration(-1)
	if !lastMigration.IsZero() {
		sinceLast = time.Since(lastMigration)
	}
	ok, reason := a.opts.Policy.ShouldMigrate(cur.Overhead, best.Overhead, adv.Counters.Inserts, sinceLast)
	if !ok && !KindMutable(cur.Config.Kind) && !w.ReadMostly && KindMutable(best.Config.Kind) &&
		adv.Window.Inserts >= a.opts.Policy.MinInserts &&
		a.opts.Policy.CooldownCleared(sinceLast) {
		// Writes resumed on an immutable filter: the deployed build-once
		// table cannot absorb them (they pile up in overflow buffers and
		// the key log), so move back to a mutable family even when the
		// modeled ρ gap alone would not clear the hysteresis margin.
		ok = true
		reason = fmt.Sprintf("writes resumed on an immutable filter (%d inserts, %.1f%% of the window)",
			adv.Window.Inserts, adv.Window.InsertFraction()*100)
	}
	if ok && best.Config == cur.Config && best.MBits == cur.MBits {
		ok, reason = false, "already at the recommended configuration"
	}
	if ok && !a.canMigrate() {
		ok, reason = false, "key log unavailable (disabled or incomplete after restore)"
	}
	adv.WouldMigrate, adv.Reason = ok, reason
	return adv, nil
}

// Reoptimize runs one control-loop pass: re-advise against the observed
// workload and migrate if the policy's hysteresis margin is cleared. The
// returned decision is also appended to the history. It is what the
// background tuner calls on its interval.
func (a *Adaptive) Reoptimize() (adaptive.Decision, error) {
	return a.ReoptimizeCtx(context.Background())
}

// ReoptimizeCtx is Reoptimize with tracing: the pass runs under an
// "adaptive.evaluate" span — a child when ctx already carries a sampled
// span (the server's autotune sweep), otherwise a forced root on the
// process tracer (the background tuner) — annotated with the observed
// workload (n, σ), the modeled overheads ρ_cur/ρ_new, the verdict and
// its reason, so a migration in the trace ring links back to the
// workload evidence that triggered it.
func (a *Adaptive) ReoptimizeCtx(ctx context.Context) (adaptive.Decision, error) {
	var sp *obs.Span
	if obs.SpanFromContext(ctx) != nil {
		ctx, sp = obs.StartSpan(ctx, "adaptive.evaluate")
	} else {
		ctx, sp = obs.DefaultTracer.StartRootForced(ctx, "adaptive.evaluate")
	}
	defer sp.End()
	a.mu.Lock()
	defer a.mu.Unlock()
	mEvaluations.Inc()
	adv, err := a.adviceAt(a.lastMigration, a.baseline, 0)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return adaptive.Decision{}, err
	}
	sp.SetAttr("n", adv.Workload.N)
	sp.SetAttr("sigma", adv.Workload.Sigma)
	sp.SetAttr("rho_cur", adv.Current.Overhead)
	sp.SetAttr("rho_new", adv.Best.Overhead)
	sp.SetAttr("current", adv.Current.Config.String())
	sp.SetAttr("best", adv.Best.Config.String())
	sp.SetAttr("would_migrate", adv.WouldMigrate)
	sp.SetAttr("reason", adv.Reason)
	d := decisionFrom(adv)
	d.Margin = a.opts.Policy.Margin
	if adv.WouldMigrate {
		if err := a.migrateLocked(ctx, adv.Best.Config, adv.Best.MBits); err != nil {
			d.Reason = "migration failed: " + err.Error()
			sp.SetAttr("error", err.Error())
			a.record(d)
			return d, err
		}
		d.Migrated = true
		a.lastMigration = d.At
	} else {
		mRejections.Inc()
	}
	sp.SetAttr("migrated", d.Migrated)
	a.record(d)
	return d, nil
}

// Migrate forces a live migration to an explicit configuration and size,
// bypassing the hysteresis policy (the server's migrate endpoint). mBits 0
// keeps the current size. The same losslessness guarantees apply.
func (a *Adaptive) Migrate(cfg Config, mBits uint64) error {
	return a.MigrateCtx(context.Background(), cfg, mBits)
}

// MigrateCtx is Migrate with request-scoped tracing: a sampled span in
// ctx gains the sharded layer's "sharded.rotate" child (and seal span
// for build-once targets).
func (a *Adaptive) MigrateCtx(ctx context.Context, cfg Config, mBits uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	prev := a.s.Config()
	if err := a.migrateLocked(ctx, cfg, mBits); err != nil {
		return err
	}
	now := time.Now().UTC()
	a.lastMigration = now
	a.record(adaptive.Decision{
		At: now, N: a.s.Count(), Current: prev.String(), Best: cfg.String(),
		BestMBits: mBits, KindChanged: cfg.Kind != prev.Kind, Migrated: true,
		Reason: "explicit migration",
	})
	return nil
}

// migrateLocked rebuilds the filter as cfg/mBits from a key-log snapshot
// under the sharded dual-write window. The snapshot is taken *inside* the
// fill callback — i.e. after Rotate has published the staging generation —
// so the two windows overlap: a write that completes too early for the
// dual-write re-checks to see the rotation has, by then, already appended
// to the log and is in the snapshot, and a write the snapshot misses
// observes the staging pointer and dual-writes itself. (Snapshotting
// before the publication would leave a gap where a whole append+insert
// could fall between the two.) The replay is deduplicated so a
// multiply-inserted key cannot saturate a cuckoo bucket — and so a
// duplicated key cannot make an xor target's peeling unsolvable.
//
// An immutable (xor) target needs no special path here: the staged
// shards buffer the replayed keys and the sharded rotation seals them
// into solved tables before the swap; writes racing the window land in
// the shards' overflow buffers and stay queryable.
func (a *Adaptive) migrateLocked(ctx context.Context, cfg Config, mBits uint64) error {
	if !a.canMigrate() {
		return fmt.Errorf("perfilter: adaptive filter cannot migrate without a complete key log")
	}
	prev := a.s.Config()
	log := a.log.Load()
	if err := a.s.MigrateCtx(ctx, cfg, mBits, func(insert func(Key) error) error {
		return log.Snapshot().Replay(insert, true)
	}); err != nil {
		return err
	}
	countMigration(prev.Kind, cfg.Kind)
	// Open a fresh evaluation window: σ and the read-mostly gate are
	// computed over traffic since this migration.
	a.baseline = a.stats.Snapshot()
	return nil
}

// recoverFull is the ErrFull emergency path: grow to the advised size for
// twice the observed n plus the incoming keys (falling back to doubling
// the current size when the advisor has nothing better). It reports
// whether this call performed the migration itself: if another writer's
// recovery already grew the filter past what the failing insert saw, the
// caller must retry its insert — the concurrent migration's log snapshot
// may predate the caller's log append, so only its own migration is
// guaranteed to have replayed the caller's keys.
func (a *Adaptive) recoverFull(ctx context.Context, sawBits, incoming uint64) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.s.SizeBits() > sawBits {
		return false, nil // a concurrent recovery already grew the filter
	}
	mEmergencyGrows.Inc()
	w := a.workload(a.baseline)
	w.N = 2 * (w.N + incoming)
	// An emergency grow is triggered by inserts, so never pick an
	// immutable target whatever the window's fraction says.
	w.ReadMostly = false
	prev := a.s.Config()
	cfg, mBits := prev, 2*sawBits
	if adv, err := Advise(w); err == nil && adv.MBits > sawBits {
		cfg, mBits = adv.Config, adv.MBits
	}
	if err := a.migrateLocked(ctx, cfg, mBits); err != nil {
		return false, err
	}
	now := time.Now().UTC()
	a.lastMigration = now
	a.record(adaptive.Decision{
		At: now, N: w.N / 2, Current: prev.String(), Best: cfg.String(),
		BestMBits: mBits, KindChanged: cfg.Kind != prev.Kind, Migrated: true,
		Reason: "emergency grow after ErrFull",
	})
	return true, nil
}

func decisionFrom(adv AdaptiveAdvice) adaptive.Decision {
	return adaptive.Decision{
		At:          time.Now().UTC(),
		N:           adv.Workload.N,
		Sigma:       adv.Workload.Sigma,
		Current:     adv.Current.Config.String(),
		CurrentRho:  adv.Current.Overhead,
		Best:        adv.Best.Config.String(),
		BestMBits:   adv.Best.MBits,
		BestRho:     adv.Best.Overhead,
		KindChanged: adv.KindChange,
		Reason:      adv.Reason,
		Window:      adv.Window,
	}
}

// record appends to the decision trace ring buffer.
func (a *Adaptive) record(d adaptive.Decision) {
	a.trace.Add(d)
}

// Decisions returns a copy of the retained decision history, oldest
// first (at most MaxDecisions entries — the trace ring's capacity).
func (a *Adaptive) Decisions() []adaptive.Decision {
	return a.trace.Snapshot()
}

// TraceTotal returns the number of re-optimization decisions ever
// recorded, including ones the bounded trace has since overwritten.
func (a *Adaptive) TraceTotal() uint64 { return a.trace.Total() }

// LastMigration returns the most recent decision that actually migrated
// the filter (explicit, control-loop or emergency), if one is still
// retained in the trace.
func (a *Adaptive) LastMigration() (adaptive.Decision, bool) {
	return a.trace.Last(func(d adaptive.Decision) bool { return d.Migrated })
}

// Skew reports the per-shard insert imbalance as max/mean (1 = even).
func (a *Adaptive) Skew() float64 { return a.s.Skew() }

// compile-time interface checks
var (
	_ Filter           = (*Adaptive)(nil)
	_ ConcurrentFilter = (*Adaptive)(nil)
)
