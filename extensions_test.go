package perfilter

import (
	"testing"

	"perfilter/internal/rng"
)

func TestCountingBloomPublic(t *testing.T) {
	f, err := NewCountingBloom(5, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(1)
	keys := make([]uint32, 500)
	for i := range keys {
		keys[i] = r.Uint32()
		if err := f.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatal("false negative")
		}
	}
	for _, k := range keys {
		if !f.Delete(k) {
			t.Fatal("delete failed")
		}
	}
	neg := 0
	for i := 0; i < 1000; i++ {
		if !f.Contains(r.Uint32()) {
			neg++
		}
	}
	if neg < 995 {
		t.Fatalf("only %d/1000 negative after deletion", neg)
	}
	if f.Overflowed() != 0 {
		t.Fatal("unexpected overflow at this load")
	}
}

func TestScalableBloomPublic(t *testing.T) {
	f, err := NewScalableBloom(500, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewMT19937(2)
	keys := make([]uint32, 10000)
	for i := range keys {
		keys[i] = r.Uint32()
		if err := f.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stages() < 3 {
		t.Fatalf("no growth: %d stages", f.Stages())
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatal("false negative across stages")
		}
	}
	if f.FPR(0) > 0.01 {
		t.Fatalf("compound FPR %.4f above target", f.FPR(0))
	}
	if f.Count() != 10000 {
		t.Fatalf("Count=%d", f.Count())
	}
}

func TestMarshalRoundTripBloom(t *testing.T) {
	f, _ := NewCacheSectorizedBloom(8, 2, 1<<14)
	r := rng.NewMT19937(3)
	keys := make([]uint32, 300)
	for i := range keys {
		keys[i] = r.Uint32()
		f.Insert(keys[i])
	}
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != f.String() || back.SizeBits() != f.SizeBits() {
		t.Fatalf("metadata changed: %s vs %s", back, f)
	}
	for _, k := range keys {
		if !back.Contains(k) {
			t.Fatal("false negative after round trip")
		}
	}
}

func TestMarshalRoundTripCuckoo(t *testing.T) {
	f, err := NewCuckoo(16, 2, CuckooSizeForKeys(16, 2, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1000; i++ {
		if err := f.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	cf, ok := back.(*CuckooFilter)
	if !ok {
		t.Fatalf("deserialized to %T", back)
	}
	if cf.Count() != 1000 {
		t.Fatalf("count %d after round trip", cf.Count())
	}
	for i := uint32(0); i < 1000; i++ {
		if !cf.Contains(i) {
			t.Fatal("false negative after round trip")
		}
	}
	if !cf.Delete(5) {
		t.Fatal("delete after round trip failed")
	}
}

// stubFilter is a Filter from outside the package's families: Marshal
// must reject it rather than guess an encoding.
type stubFilter struct{ Filter }

func TestMarshalUnsupported(t *testing.T) {
	if _, err := Marshal(stubFilter{}); err == nil {
		t.Fatal("foreign filter type should not claim to serialize")
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestHash64Distribution(t *testing.T) {
	seen := map[uint32]bool{}
	for i := uint64(0); i < 10000; i++ {
		seen[Hash64(i)] = true
	}
	if len(seen) < 9990 {
		t.Fatalf("Hash64 collides too much: %d distinct", len(seen))
	}
	f, _ := NewRegisterBlockedBloom(4, 1<<14)
	for i := uint64(0); i < 1000; i++ {
		f.Insert(Hash64(i << 32)) // keys differing only in high bits
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Contains(Hash64(i << 32)) {
			t.Fatal("wide-key workflow broken")
		}
	}
}

func TestHashString(t *testing.T) {
	a, b := HashString("hello"), HashString("hellp")
	if a == b {
		t.Fatal("adjacent strings collide")
	}
	if HashString("hello") != a {
		t.Fatal("not deterministic")
	}
	seen := map[uint32]bool{}
	for i := 0; i < 5000; i++ {
		seen[HashString(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)))] = true
	}
	if len(seen) < 4000 {
		t.Fatalf("HashString collides too much: %d distinct", len(seen))
	}
}
